// Replicated sequencer: a multi-Paxos core shared by both protocol bindings.
//
// The paper's sequencer (Kaashoek, §2/§4.3) is a single point of failure; the
// ROADMAP names a replicated sequencer as the next step. This module replaces
// the sequencer *role* with a replicated state machine: a small set of
// replicas runs multi-Paxos over the ordered log of group messages, with a
// stable leader that plays the sequencer (assigns slots = seqnos) and
// disseminates the accept phase over the segment's hardware multicast, per
// Ring Paxos ("Ring Paxos: High-Throughput Atomic Broadcast"): the accept for
// a slot carries the full value and is multicast once to the whole group, so
// acceptors and plain learners share one transmission.
//
// The Participant is transport- and binding-agnostic: it never touches the
// simulator queue, never draws randomness, and does no I/O. The bindings —
// kernel-space (amoeba::KernelGroup, driven from the FLIP interrupt handlers)
// and user-space (panda::PanGroup, driven from the receive daemon and the
// sequencer thread) — feed it wire payloads and timer ticks, and flush the
// resulting sends/decisions through their own stacks with their own cost
// models. That replays the paper's kernel-vs-user axis against a consensus
// workload: same algorithm, different crossings.
//
// Covered failure modes (exercised by the failover workloads/sweeps):
//   * leader crash mid-stream: followers detect silence past the lease,
//     elect by rank-staggered prepare, recover uncommitted slots from
//     promises (highest ballot wins), fill holes with noops, re-propose;
//   * lost accepts/commits: leader re-multicasts the lowest uncommitted slot
//     while not quiescent; learners fetch missed committed slots (log
//     catch-up) from the leader or, escalated, from any replica;
//   * member join/leave: sequenced through the same log as commands, so
//     every member agrees on the exact slot a membership window opens/closes.
//
// Safety invariants (proved per run by trace::TraceChecker):
//   * a slot is applied only when known chosen ("safe"): covered by a commit
//     horizon under the ballot that accepted it locally, or learned from an
//     authoritative catch-up response;
//   * a new leader re-proposes above max(promise commit horizons) only, and
//     adopts the highest-ballot promise entry per slot below its range.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/buffer.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "trace/tracer.h"

namespace paxos {

using NodeId = std::uint32_t;
using Slot = std::uint32_t;
using Ballot = std::uint64_t;

/// Sender id for leader-generated hole-filling noops.
inline constexpr NodeId kNoopSender = 0xFFFF'FFFF;

/// What a log entry carries. Everything is sequenced — including membership
/// changes, so all members agree on the slot where a window opens or closes.
enum class CmdKind : std::uint8_t { kApp = 0, kNoop = 1, kJoin = 2, kLeave = 3 };

struct Config {
  /// Acceptor set; replicas[view % replicas.size()] leads that view. The
  /// initial leader is replicas[0]. Replicas must not leave the group.
  std::vector<NodeId> replicas;
  NodeId self = 0;
  /// Initial delivery membership (replicas included).
  std::vector<NodeId> members;
  /// Trace tag: the `d` field of group events emitted by this core.
  std::uint64_t group = 0;
  /// Leader silence beyond this makes interested followers start an election.
  sim::Time lease = sim::msec(60);
  /// Timer granularity: bindings call on_tick() at this period while
  /// need_tick() holds.
  sim::Time tick = sim::msec(10);
  /// Election stagger per replica rank; keeps followers from duelling.
  sim::Time stagger = sim::msec(20);
  /// Probe rounds without a sign of life before the leader stops waiting for
  /// a member (excludes it from quiescence — but never from the trim floor:
  /// a suspect may just be backing off between retries, and a trimmed slot
  /// can never be served again).
  int suspect_after = 5;
};

/// One applied log entry, in slot (= seqno) order.
struct Decision {
  Slot seqno = 0;
  CmdKind kind = CmdKind::kApp;
  NodeId sender = 0;
  std::uint64_t uid = 0;
  net::Payload payload;
};

struct Send {
  bool multicast = false;
  NodeId dst = 0;  // meaningful when !multicast
  net::Payload wire;
};

/// Everything one core invocation asks the binding to do. The binding owns
/// transport, cost charging, delivery tracing, and sender wakeups.
struct Out {
  std::vector<Send> sends;
  std::vector<Decision> decisions;
  /// The view moved: pending requests should be re-aimed at leader() now.
  bool view_changed = false;
  /// This member finished (re)joining; the send carrying `activated_uid`
  /// is complete.
  bool activated = false;
  std::uint64_t activated_uid = 0;
  /// This member's leave was applied; deliveries stop after `decisions`.
  bool deactivated = false;
  std::uint64_t deactivated_uid = 0;
};

class Participant {
 public:
  Participant(sim::Simulator& sim, Config cfg);

  Participant(const Participant&) = delete;
  Participant& operator=(const Participant&) = delete;

  /// Serialize a client request the binding can (re)send to leader(). With
  /// `escalated` set the binding multicasts it instead — any replica forwards
  /// it to the leader it believes in, and repeated escalations count as
  /// evidence the leader is gone. kJoin requests also arm the join watch.
  [[nodiscard]] net::Payload make_request(CmdKind kind, std::uint64_t uid,
                                          const net::Payload& body,
                                          bool escalated);

  /// Same for a log catch-up request (used internally; exposed for tests).
  [[nodiscard]] net::Payload make_learn_request(Slot from);

  /// Feed one core wire (the payload the binding unwrapped from its own
  /// group header). Appends to `out`.
  void on_wire(const net::Payload& wire, Out& out);

  /// Timer tick; bindings arm a repeating tick while need_tick() holds.
  void on_tick(Out& out);
  [[nodiscard]] bool need_tick() const noexcept;

  /// Stop participating (crash injection). The core goes silent; it never
  /// recovers within a run.
  void crash();

  // Introspection.
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }
  [[nodiscard]] bool is_replica() const noexcept { return rank_ >= 0; }
  [[nodiscard]] bool is_leader() const noexcept { return leading_; }
  [[nodiscard]] NodeId leader() const noexcept;
  [[nodiscard]] Ballot view() const noexcept { return view_; }
  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] Slot applied() const noexcept { return applied_; }
  [[nodiscard]] Slot committed() const noexcept { return commit_known_; }
  [[nodiscard]] std::uint64_t view_changes() const noexcept {
    return view_changes_;
  }
  [[nodiscard]] std::uint64_t sequenced_count() const noexcept {
    return sequenced_;
  }

 private:
  enum class MsgType : std::uint8_t {
    kReq = 1,       // client -> leader (or multicast when escalated)
    kPrepare = 2,   // candidate -> replicas (multicast)
    kPromise = 3,   // replica -> candidate, with log tail
    kAccept = 4,    // leader -> group (multicast, full value — Ring Paxos)
    kAccepted = 5,  // replica -> leader
    kCommit = 6,    // leader -> group (commit horizon; doubles as probe)
    kNewView = 7,   // leader -> group after winning an election
    kLearnReq = 8,  // learner -> leader (escalated: multicast) catch-up ask
    kLearnRsp = 9,  // authoritative committed entries
    kHorizon = 10,  // member -> leader: applied horizon (probe answer)
    kJoinAck = 11,  // leader -> joiner: your join committed at this slot
  };

  struct Entry {
    bool have = false;
    bool safe = false;  // known chosen; may be applied
    Ballot ballot = 0;
    CmdKind kind = CmdKind::kNoop;
    NodeId sender = kNoopSender;
    std::uint64_t uid = 0;
    net::Payload payload;
  };

  // Message handlers (wire already parsed down to the shared header).
  void on_request(NodeId from, net::Reader& r, std::uint8_t flags,
                  const net::Payload& wire, Out& out);
  void on_prepare(NodeId from, Ballot b, net::Reader& r, Out& out);
  void on_promise(NodeId from, Ballot b, net::Reader& r, Out& out);
  void on_accept(NodeId from, Ballot b, net::Reader& r, Out& out);
  void on_accepted(NodeId from, Ballot b, net::Reader& r, Out& out);
  void on_commit(NodeId from, Ballot b, std::uint8_t flags, net::Reader& r,
                 Out& out);
  void on_new_view(NodeId from, Ballot b, net::Reader& r, Out& out);
  void on_learn_req(NodeId from, net::Reader& r, Out& out);
  void on_learn_rsp(net::Reader& r, Out& out);
  void serve_learn(NodeId to, Slot from, Out& out);

  // Leader side.
  void propose(CmdKind kind, NodeId sender, std::uint64_t uid,
               net::Payload body, Out& out);
  void leader_advance_commit(Out& out);
  void send_accept(Slot s, Out& out);
  [[nodiscard]] Slot trim_floor() const;
  [[nodiscard]] bool quiescent() const;

  // Election.
  void start_election(Out& out);
  void become_leader(Out& out);

  // Learner side.
  void note_leader(Ballot b, Out& out);
  void mark_safe_up_to(Slot upto, Ballot b);
  void apply_ready(Out& out);
  void try_activate(Out& out);
  void request_learn(Out& out);
  void trim_log(Slot upto);

  void begin(MsgType type, std::uint8_t flags, Ballot ballot);
  [[nodiscard]] int rank_of(NodeId n) const;
  [[nodiscard]] std::size_t quorum() const {
    return cfg_.replicas.size() / 2 + 1;
  }
  void trace(trace::EventKind k, std::uint64_t a = 0, std::uint64_t b = 0,
             std::uint64_t c = 0);

  sim::Simulator* sim_;
  Config cfg_;
  int rank_ = -1;  // index in cfg_.replicas, -1 for plain members
  net::Writer writer_;

  // Shared learner state.
  Ballot view_ = 0;           // highest ballot whose leadership we've seen
  Ballot promised_ = 0;       // highest ballot promised (replicas)
  Slot applied_ = 0;          // delivered prefix
  Slot commit_known_ = 0;     // highest commit horizon heard
  std::map<Slot, Entry> log_;
  bool active_ = true;        // delivering? (false between leave and re-join)
  bool crashed_ = false;
  std::set<NodeId> members_;
  std::uint64_t view_changes_ = 0;

  // Leader state (valid while leading_).
  bool leading_ = false;
  Slot next_slot_ = 1;
  std::map<std::uint64_t, Slot> uid_slot_;
  std::map<Slot, std::set<NodeId>> acks_;
  std::map<NodeId, Slot> member_horizon_;
  std::map<NodeId, int> silent_rounds_;
  std::set<NodeId> suspects_;
  Slot tick_commit_seen_ = 0;  // progress marker between probe rounds
  std::uint64_t sequenced_ = 0;

  // Election state (replicas).
  bool electing_ = false;
  Ballot candidate_ballot_ = 0;
  std::set<NodeId> promisers_;
  std::map<Slot, Entry> merged_;
  Slot merged_commit_ = 0;
  sim::Time election_deadline_ = 0;
  sim::Time last_leader_heard_ = 0;
  sim::Time last_request_seen_ = 0;

  // Learner catch-up state.
  bool learn_outstanding_ = false;
  sim::Time learn_sent_ = 0;
  int learn_tries_ = 0;

  // Join watch (set by make_request(kJoin)).
  std::uint64_t join_uid_ = 0;
  Slot join_slot_ = 0;  // 0 = unknown
};

}  // namespace paxos
