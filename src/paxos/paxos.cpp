#include "paxos/paxos.h"

#include <algorithm>
#include <utility>

#include "sim/require.h"

namespace paxos {

namespace {
constexpr std::uint8_t kFlagEscalated = 0x80;
constexpr std::uint8_t kFlagProbe = 0x01;
constexpr Slot kLearnBatch = 16;
}  // namespace

Participant::Participant(sim::Simulator& sim, Config cfg)
    : sim_(&sim), cfg_(std::move(cfg)) {
  sim::require(!cfg_.replicas.empty(), "paxos: empty replica set");
  rank_ = rank_of(cfg_.self);
  members_.insert(cfg_.members.begin(), cfg_.members.end());
  for (const NodeId r : cfg_.replicas) {
    sim::require(members_.contains(r), "paxos: replicas must be members");
  }
  active_ = members_.contains(cfg_.self);
  leading_ = rank_ == 0;  // replicas[0] leads view 0
  if (leading_) {
    for (const NodeId m : members_) member_horizon_[m] = 0;
  }
  if (active_) trace(trace::EventKind::kMemberJoin, 1);
}

int Participant::rank_of(NodeId n) const {
  for (std::size_t i = 0; i < cfg_.replicas.size(); ++i) {
    if (cfg_.replicas[i] == n) return static_cast<int>(i);
  }
  return -1;
}

NodeId Participant::leader() const noexcept {
  return cfg_.replicas[view_ % cfg_.replicas.size()];
}

void Participant::trace(trace::EventKind k, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c) {
  if (auto* tr = sim_->tracer()) tr->record(cfg_.self, k, a, b, c, cfg_.group);
}

void Participant::begin(MsgType type, std::uint8_t flags, Ballot ballot) {
  writer_.u8(static_cast<std::uint8_t>(type));
  writer_.u8(flags);
  writer_.u16(0);
  writer_.u32(cfg_.self);
  writer_.u64(ballot);
}

net::Payload Participant::make_request(CmdKind kind, std::uint64_t uid,
                                       const net::Payload& body,
                                       bool escalated) {
  if (kind == CmdKind::kJoin) {
    join_uid_ = uid;
    join_slot_ = 0;
  }
  begin(MsgType::kReq, static_cast<std::uint8_t>(kind) |
                           (escalated ? kFlagEscalated : 0),
        view_);
  writer_.u64(uid);
  writer_.u32(applied_);
  writer_.payload(body);
  return writer_.take();
}

net::Payload Participant::make_learn_request(Slot from) {
  begin(MsgType::kLearnReq, 0, view_);
  writer_.u32(from);
  writer_.u32(applied_);
  return writer_.take();
}

// --- Ingress ----------------------------------------------------------------

void Participant::on_wire(const net::Payload& wire, Out& out) {
  if (crashed_) return;
  net::Reader r(wire);
  const auto type = static_cast<MsgType>(r.u8());
  const std::uint8_t flags = r.u8();
  (void)r.u16();
  const NodeId from = r.u32();
  const Ballot b = r.u64();
  switch (type) {
    case MsgType::kReq:
      on_request(from, r, flags, wire, out);
      break;
    case MsgType::kPrepare:
      on_prepare(from, b, r, out);
      break;
    case MsgType::kPromise:
      on_promise(from, b, r, out);
      break;
    case MsgType::kAccept:
      on_accept(from, b, r, out);
      break;
    case MsgType::kAccepted:
      on_accepted(from, b, r, out);
      break;
    case MsgType::kCommit:
      on_commit(from, b, flags, r, out);
      break;
    case MsgType::kNewView:
      on_new_view(from, b, r, out);
      break;
    case MsgType::kLearnReq:
      on_learn_req(from, r, out);
      break;
    case MsgType::kLearnRsp:
      on_learn_rsp(r, out);
      break;
    case MsgType::kHorizon: {
      const Slot h = r.u32();
      if (leading_) {
        member_horizon_[from] = std::max(member_horizon_[from], h);
        silent_rounds_[from] = 0;
        suspects_.erase(from);
      }
      break;
    }
    case MsgType::kJoinAck: {
      const Slot s = r.u32();
      const std::uint64_t uid = r.u64();
      if (!active_ && join_uid_ != 0 && uid == join_uid_) {
        join_slot_ = s;
        commit_known_ = std::max(commit_known_, s);
        apply_ready(out);
      }
      break;
    }
  }
}

void Participant::on_request(NodeId from, net::Reader& r, std::uint8_t flags,
                             const net::Payload& wire, Out& out) {
  const auto kind = static_cast<CmdKind>(flags & 0x3F);
  const std::uint64_t uid = r.u64();
  const Slot horizon = r.u32();
  net::Payload body = r.rest();
  if (leading_) {
    member_horizon_[from] = std::max(member_horizon_[from], horizon);
    silent_rounds_[from] = 0;
    suspects_.erase(from);
    if (const auto it = uid_slot_.find(uid); it != uid_slot_.end()) {
      // Duplicate: the sender missed its outcome. A committed slot is served
      // back from the log (a join gets its compact ack); an in-flight slot
      // is covered by the tick's accept resend.
      if (it->second <= commit_known_) {
        if (kind == CmdKind::kJoin) {
          begin(MsgType::kJoinAck, 0, view_);
          writer_.u32(it->second);
          writer_.u64(uid);
          out.sends.push_back({false, from, writer_.take()});
        } else {
          serve_learn(from, horizon + 1, out);
        }
      }
      return;
    }
    propose(kind, from, uid, std::move(body), out);
    return;
  }
  last_request_seen_ = sim_->now();
  // A replica relays a misdirected request to the leader it believes in;
  // escalated (multicast) requests already reached that leader directly.
  if (is_replica() && (flags & kFlagEscalated) == 0 &&
      leader() != cfg_.self) {
    out.sends.push_back({false, leader(), wire});
  }
}

// --- Leader -----------------------------------------------------------------

void Participant::propose(CmdKind kind, NodeId sender, std::uint64_t uid,
                          net::Payload body, Out& out) {
  const Slot s = next_slot_++;
  Entry& e = log_[s];
  e.have = true;
  e.safe = quorum() == 1;
  e.ballot = view_;
  e.kind = kind;
  e.sender = sender;
  e.uid = uid;
  e.payload = std::move(body);
  if (uid != 0) uid_slot_[uid] = s;
  acks_[s] = {cfg_.self};
  ++sequenced_;
  trace(trace::EventKind::kSeqnoAssign, s, sender, uid);
  send_accept(s, out);
  leader_advance_commit(out);
}

void Participant::send_accept(Slot s, Out& out) {
  const Entry& e = log_.at(s);
  begin(MsgType::kAccept, 0, view_);
  writer_.u32(s);
  writer_.u32(commit_known_);
  writer_.u32(trim_floor());
  writer_.u8(static_cast<std::uint8_t>(e.kind));
  writer_.u8(0);
  writer_.u16(0);
  writer_.u32(e.sender);
  writer_.u64(e.uid);
  writer_.payload(e.payload);
  out.sends.push_back({true, 0, writer_.take()});
}

void Participant::on_accepted(NodeId from, Ballot b, net::Reader& r, Out& out) {
  const Slot s = r.u32();
  const Slot their_applied = r.u32();
  if (!leading_ || b != view_) return;
  member_horizon_[from] = std::max(member_horizon_[from], their_applied);
  silent_rounds_[from] = 0;
  suspects_.erase(from);
  acks_[s].insert(from);
  leader_advance_commit(out);
}

void Participant::leader_advance_commit(Out& out) {
  bool advanced = false;
  while (true) {
    const auto it = log_.find(commit_known_ + 1);
    if (it == log_.end() || !it->second.have) break;
    Entry& e = it->second;
    if (!e.safe) {
      const auto a = acks_.find(commit_known_ + 1);
      if (a == acks_.end() || a->second.size() < quorum()) break;
      e.safe = true;
    }
    ++commit_known_;
    advanced = true;
  }
  if (!advanced) return;
  begin(MsgType::kCommit, 0, view_);
  writer_.u32(commit_known_);
  writer_.u32(trim_floor());
  out.sends.push_back({true, 0, writer_.take()});
  apply_ready(out);
  trim_log(trim_floor());
}

Slot Participant::trim_floor() const {
  // Suspects are NOT skipped here, unlike in quiescent(): a "suspect" may
  // merely be backing off between retries (sender retry intervals dwarf the
  // suspicion clock), and a trimmed slot can never be served again — a trim
  // past a live member would turn a false suspicion into real loss. The
  // price is that a genuinely crashed member pins the log for the rest of
  // the run; bounded-history pressure is the classic sequencer's story.
  Slot floor = applied_;
  for (const NodeId m : members_) {
    if (m == cfg_.self) continue;
    const auto it = member_horizon_.find(m);
    floor = std::min(floor, it == member_horizon_.end() ? 0 : it->second);
  }
  return floor;
}

bool Participant::quiescent() const {
  if (commit_known_ + 1 != next_slot_) return false;
  if (applied_ != commit_known_) return false;
  for (const NodeId m : members_) {
    if (m == cfg_.self || suspects_.contains(m)) continue;
    const auto it = member_horizon_.find(m);
    if (it == member_horizon_.end() || it->second < commit_known_) return false;
  }
  return true;
}

// --- Election ---------------------------------------------------------------

void Participant::on_prepare(NodeId from, Ballot b, net::Reader& r, Out& out) {
  const Slot from_slot = r.u32();
  if (!is_replica()) return;
  if (b <= promised_ || b <= view_) {
    // Stale candidate: point it at the regime we know.
    begin(MsgType::kNewView, 0, view_);
    writer_.u32(commit_known_);
    writer_.u32(0);
    out.sends.push_back({false, from, writer_.take()});
    return;
  }
  promised_ = b;
  leading_ = false;
  electing_ = electing_ && candidate_ballot_ > b;
  // The candidate's activity counts as leadership liveness: suppress our own
  // stagger clock while it works.
  last_leader_heard_ = sim_->now();
  std::vector<std::pair<Slot, const Entry*>> entries;
  for (const auto& [s, e] : log_) {
    if (s >= from_slot && e.have) entries.emplace_back(s, &e);
  }
  begin(MsgType::kPromise, 0, b);
  writer_.u32(applied_);
  writer_.u32(commit_known_);
  writer_.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [s, e] : entries) {
    writer_.u32(s);
    writer_.u64(e->ballot);
    writer_.u8(static_cast<std::uint8_t>(e->kind));
    writer_.u8(e->safe ? 1 : 0);
    writer_.u16(0);
    writer_.u32(e->sender);
    writer_.u64(e->uid);
    writer_.u32(static_cast<std::uint32_t>(e->payload.size()));
    writer_.payload(e->payload);
  }
  out.sends.push_back({false, from, writer_.take()});
}

void Participant::on_promise(NodeId from, Ballot b, net::Reader& r, Out& out) {
  if (!electing_ || b != candidate_ballot_) return;
  const Slot their_applied = r.u32();
  (void)their_applied;
  const Slot their_commit = r.u32();
  merged_commit_ = std::max(merged_commit_, their_commit);
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const Slot s = r.u32();
    Entry e;
    e.have = true;
    e.ballot = r.u64();
    e.kind = static_cast<CmdKind>(r.u8());
    e.safe = r.u8() != 0;
    (void)r.u16();
    e.sender = r.u32();
    e.uid = r.u64();
    const std::uint32_t len = r.u32();
    e.payload = r.raw(len);
    Entry& m = merged_[s];
    // A safe entry is the chosen value; otherwise the highest ballot wins.
    if (e.safe) {
      if (!m.safe) m = std::move(e);
    } else if (!m.safe && (!m.have || e.ballot > m.ballot)) {
      m = std::move(e);
    }
  }
  promisers_.insert(from);
  if (promisers_.size() >= quorum()) become_leader(out);
}

void Participant::start_election(Out& out) {
  if (crashed_ || !is_replica()) return;
  Ballot b = std::max({view_, promised_, candidate_ballot_}) + 1;
  const std::size_t R = cfg_.replicas.size();
  while (cfg_.replicas[b % R] != cfg_.self) ++b;
  electing_ = true;
  candidate_ballot_ = b;
  promised_ = b;
  promisers_.clear();
  promisers_.insert(cfg_.self);
  merged_.clear();
  const Slot from = applied_ + 1;
  for (const auto& [s, e] : log_) {
    if (s >= from && e.have) merged_[s] = e;
  }
  merged_commit_ = commit_known_;
  election_deadline_ = sim_->now() + cfg_.lease;
  begin(MsgType::kPrepare, 0, b);
  writer_.u32(from);
  out.sends.push_back({true, 0, writer_.take()});
  if (promisers_.size() >= quorum()) become_leader(out);
}

void Participant::become_leader(Out& out) {
  electing_ = false;
  view_ = candidate_ballot_;
  leading_ = true;
  ++view_changes_;
  trace(trace::EventKind::kGroupView, view_, cfg_.self);
  out.view_changed = true;

  // Adopt the promise union. Slots at or below the recovered commit floor
  // are chosen (quorum intersection guarantees the value survived); above
  // it, the highest-ballot value is re-proposed and true holes are filled
  // with noops so the delivered stream stays gapless.
  for (auto& [s, e] : merged_) {
    Entry& mine = log_[s];
    if (e.safe) {
      if (!mine.safe) mine = e;
    } else if (!mine.safe && (!mine.have || e.ballot > mine.ballot)) {
      mine = e;
    }
  }
  const Slot floor = std::max(commit_known_, merged_commit_);
  for (auto& [s, e] : log_) {
    if (s <= floor && e.have) e.safe = true;
  }
  commit_known_ = std::max(commit_known_, floor);
  const Slot maxs = log_.empty() ? 0 : log_.rbegin()->first;
  next_slot_ = std::max(maxs, floor) + 1;

  uid_slot_.clear();
  acks_.clear();
  for (const auto& [s, e] : log_) {
    if (e.uid != 0) uid_slot_[e.uid] = s;
  }
  member_horizon_.clear();
  for (const NodeId m : members_) member_horizon_[m] = 0;
  member_horizon_[cfg_.self] = applied_;
  silent_rounds_.clear();
  suspects_.clear();
  tick_commit_seen_ = commit_known_;

  for (Slot s = floor + 1; s < next_slot_; ++s) {
    Entry& e = log_[s];
    if (!e.have) {
      e.have = true;
      e.kind = CmdKind::kNoop;
      e.sender = kNoopSender;
      e.uid = 0;
      e.payload = net::Payload();
    }
    e.ballot = view_;
    e.safe = quorum() == 1;
    acks_[s] = {cfg_.self};
    ++sequenced_;
    trace(trace::EventKind::kSeqnoAssign, s, e.sender, e.uid);
    send_accept(s, out);
  }
  begin(MsgType::kNewView, 0, view_);
  writer_.u32(commit_known_);
  writer_.u32(trim_floor());
  out.sends.push_back({true, 0, writer_.take()});
  leader_advance_commit(out);
  apply_ready(out);
}

// --- Learner ----------------------------------------------------------------

void Participant::note_leader(Ballot b, Out& out) {
  last_leader_heard_ = sim_->now();
  if (b <= view_) return;
  view_ = b;
  leading_ = false;
  if (electing_ && candidate_ballot_ <= b) electing_ = false;
  ++view_changes_;
  trace(trace::EventKind::kGroupView, b, leader());
  out.view_changed = true;
}

void Participant::mark_safe_up_to(Slot upto, Ballot b) {
  commit_known_ = std::max(commit_known_, upto);
  for (Slot s = applied_ + 1; s <= commit_known_; ++s) {
    const auto it = log_.find(s);
    if (it == log_.end()) continue;
    Entry& e = it->second;
    if (e.have && !e.safe && e.ballot == b) e.safe = true;
  }
}

void Participant::on_accept(NodeId from, Ballot b, net::Reader& r, Out& out) {
  if (is_replica() && b < promised_) return;  // stale leader
  const Slot s = r.u32();
  const Slot commit_upto = r.u32();
  const Slot trim_upto = r.u32();
  const auto kind = static_cast<CmdKind>(r.u8());
  (void)r.u8();
  (void)r.u16();
  const NodeId sender = r.u32();
  const std::uint64_t uid = r.u64();
  net::Payload body = r.rest();
  note_leader(b, out);
  if (s > applied_) {
    Entry& e = log_[s];
    if (!e.safe && (!e.have || b >= e.ballot)) {
      e.have = true;
      e.ballot = b;
      e.kind = kind;
      e.sender = sender;
      e.uid = uid;
      e.payload = std::move(body);
    }
  }
  if (!active_ && join_uid_ != 0 && kind == CmdKind::kJoin &&
      sender == cfg_.self && uid == join_uid_) {
    join_slot_ = s;  // our join is in the log; activation waits for commit
  }
  if (is_replica()) {
    promised_ = std::max(promised_, b);
    begin(MsgType::kAccepted, 0, b);
    writer_.u32(s);
    writer_.u32(applied_);
    out.sends.push_back({false, from, writer_.take()});
  }
  mark_safe_up_to(commit_upto, b);
  trim_log(trim_upto);
  apply_ready(out);
}

void Participant::on_commit(NodeId from, Ballot b, std::uint8_t flags,
                            net::Reader& r, Out& out) {
  const Slot upto = r.u32();
  const Slot trim_upto = r.u32();
  note_leader(b, out);
  mark_safe_up_to(upto, b);
  trim_log(trim_upto);
  apply_ready(out);
  if ((flags & kFlagProbe) != 0 && from != cfg_.self) {
    begin(MsgType::kHorizon, 0, view_);
    writer_.u32(applied_);
    out.sends.push_back({false, from, writer_.take()});
  }
}

void Participant::on_new_view(NodeId from, Ballot b, net::Reader& r, Out& out) {
  (void)from;
  const Slot floor = r.u32();
  const Slot trim_upto = r.u32();
  note_leader(b, out);
  commit_known_ = std::max(commit_known_, floor);
  trim_log(trim_upto);
  apply_ready(out);
}

void Participant::on_learn_req(NodeId from, net::Reader& r, Out& out) {
  const Slot want = r.u32();
  const Slot their_applied = r.u32();
  if (leading_) {
    member_horizon_[from] = std::max(member_horizon_[from], their_applied);
    silent_rounds_[from] = 0;
    suspects_.erase(from);
  } else {
    // Repeated catch-up asks are evidence the asker cannot reach a leader.
    last_request_seen_ = sim_->now();
  }
  serve_learn(from, want, out);
}

void Participant::serve_learn(NodeId to, Slot from, Out& out) {
  if (from > commit_known_) return;
  const Slot last = std::min(commit_known_, from + kLearnBatch - 1);
  std::vector<std::pair<Slot, const Entry*>> entries;
  for (Slot s = from; s <= last; ++s) {
    const auto it = log_.find(s);
    if (it != log_.end() && it->second.have && it->second.safe) {
      entries.emplace_back(s, &it->second);
    }
  }
  if (entries.empty()) return;
  trace(trace::EventKind::kRetransmit, from, trace::kReasonSequencerResend);
  begin(MsgType::kLearnRsp, 0, view_);
  writer_.u32(commit_known_);
  writer_.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [s, e] : entries) {
    writer_.u32(s);
    writer_.u8(static_cast<std::uint8_t>(e->kind));
    writer_.u8(0);
    writer_.u16(0);
    writer_.u32(e->sender);
    writer_.u64(e->uid);
    writer_.u32(static_cast<std::uint32_t>(e->payload.size()));
    writer_.payload(e->payload);
  }
  out.sends.push_back({false, to, writer_.take()});
}

void Participant::on_learn_rsp(net::Reader& r, Out& out) {
  const Slot upto = r.u32();
  commit_known_ = std::max(commit_known_, upto);
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const Slot s = r.u32();
    const auto kind = static_cast<CmdKind>(r.u8());
    (void)r.u8();
    (void)r.u16();
    const NodeId sender = r.u32();
    const std::uint64_t uid = r.u64();
    const std::uint32_t len = r.u32();
    net::Payload body = r.raw(len);
    if (s <= applied_) continue;
    Entry& e = log_[s];
    if (e.safe) continue;
    e.have = true;
    e.safe = true;  // authoritative: served from a committed prefix
    e.kind = kind;
    e.sender = sender;
    e.uid = uid;
    e.payload = std::move(body);
  }
  learn_outstanding_ = false;  // tries persist so escalation sticks
  apply_ready(out);
}

void Participant::request_learn(Out& out) {
  learn_outstanding_ = true;
  learn_sent_ = sim_->now();
  ++learn_tries_;
  trace(trace::EventKind::kRetransmit, applied_ + 1, trace::kReasonGapRequest);
  net::Payload wire = make_learn_request(applied_ + 1);
  // Escalate to the whole replica set once the believed leader looks dead:
  // any replica may serve its committed prefix.
  if (learn_tries_ >= 3 || leader() == cfg_.self) {
    out.sends.push_back({true, 0, std::move(wire)});
  } else {
    out.sends.push_back({false, leader(), std::move(wire)});
  }
}

void Participant::try_activate(Out& out) {
  if (active_ || crashed_ || join_slot_ == 0 || commit_known_ < join_slot_) {
    return;
  }
  applied_ = std::max(applied_, join_slot_);
  log_.erase(log_.begin(), log_.upper_bound(applied_));
  active_ = true;
  learn_outstanding_ = false;
  learn_tries_ = 0;
  trace(trace::EventKind::kMemberJoin, applied_ + 1);
  out.activated = true;
  out.activated_uid = join_uid_;
  join_uid_ = 0;
  join_slot_ = 0;
}

void Participant::apply_ready(Out& out) {
  if (!active_) {
    try_activate(out);
    if (!active_) return;
  }
  while (applied_ < commit_known_) {
    const auto it = log_.find(applied_ + 1);
    if (it == log_.end() || !it->second.have || !it->second.safe) break;
    const Entry e = it->second;
    const Slot s = ++applied_;
    learn_outstanding_ = false;
    learn_tries_ = 0;
    if (e.kind == CmdKind::kJoin) {
      members_.insert(e.sender);
      if (leading_) {
        member_horizon_[e.sender] = s;  // the joiner starts applied at s
        silent_rounds_[e.sender] = 0;
        suspects_.erase(e.sender);
        if (e.sender != cfg_.self) {
          begin(MsgType::kJoinAck, 0, view_);
          writer_.u32(s);
          writer_.u64(e.uid);
          out.sends.push_back({false, e.sender, writer_.take()});
        }
      }
    } else if (e.kind == CmdKind::kLeave) {
      members_.erase(e.sender);
      if (leading_) {
        member_horizon_.erase(e.sender);
        silent_rounds_.erase(e.sender);
        suspects_.erase(e.sender);
      }
    }
    out.decisions.push_back(Decision{s, e.kind, e.sender, e.uid, e.payload});
    if (e.kind == CmdKind::kLeave && e.sender == cfg_.self) {
      // Our own leave: the leave slot is the last one we deliver.
      trace(trace::EventKind::kMemberLeave, s);
      active_ = false;
      out.deactivated = true;
      out.deactivated_uid = e.uid;
      break;
    }
  }
  if (leading_) {
    member_horizon_[cfg_.self] = applied_;
  } else if (active_ && applied_ < commit_known_ && !learn_outstanding_) {
    request_learn(out);
  }
}

void Participant::trim_log(Slot upto) {
  const Slot cut = std::min(upto, applied_);
  if (cut == 0) return;
  log_.erase(log_.begin(), log_.upper_bound(cut));
}

// --- Timers -----------------------------------------------------------------

bool Participant::need_tick() const noexcept {
  if (crashed_) return false;
  if (leading_) return !quiescent();
  if (is_replica()) {
    if (electing_) return true;
    const Slot maxs = log_.empty() ? 0 : log_.rbegin()->first;
    if (maxs > commit_known_) return true;
    if (last_request_seen_ > last_leader_heard_) return true;
  }
  return learn_outstanding_ && applied_ < commit_known_;
}

void Participant::on_tick(Out& out) {
  if (crashed_) return;
  const sim::Time now = sim_->now();
  if (leading_) {
    if (quiescent()) return;
    if (commit_known_ == tick_commit_seen_) {
      // No progress since the last tick: nudge the uncommitted head and
      // probe member horizons (the probe doubles as the suspicion clock for
      // members that have gone silent — a crashed old leader, say).
      if (commit_known_ + 1 < next_slot_) {
        const auto it = log_.find(commit_known_ + 1);
        if (it != log_.end() && it->second.have) {
          trace(trace::EventKind::kRetransmit, commit_known_ + 1,
                trace::kReasonSequencerResend);
          send_accept(commit_known_ + 1, out);
        }
      }
      bool lagging = false;
      for (const NodeId m : members_) {
        if (m == cfg_.self || suspects_.contains(m)) continue;
        if (member_horizon_[m] >= commit_known_) continue;
        lagging = true;
        if (++silent_rounds_[m] > cfg_.suspect_after) suspects_.insert(m);
      }
      if (lagging) {
        begin(MsgType::kCommit, kFlagProbe, view_);
        writer_.u32(commit_known_);
        writer_.u32(trim_floor());
        out.sends.push_back({true, 0, writer_.take()});
      }
    }
    tick_commit_seen_ = commit_known_;
    return;
  }
  if (is_replica()) {
    if (electing_) {
      if (now >= election_deadline_) start_election(out);
    } else {
      const Slot maxs = log_.empty() ? 0 : log_.rbegin()->first;
      const bool interest = maxs > commit_known_ ||
                            last_request_seen_ > last_leader_heard_;
      if (interest &&
          now >= last_leader_heard_ + cfg_.lease +
                     cfg_.stagger * static_cast<sim::Time>(rank_)) {
        start_election(out);
      }
    }
  }
  if (active_ && learn_outstanding_ && applied_ < commit_known_ &&
      now - learn_sent_ >= cfg_.lease / 2) {
    request_learn(out);
  }
}

void Participant::crash() { crashed_ = true; }

}  // namespace paxos
