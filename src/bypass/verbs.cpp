#include "bypass/verbs.h"

#include <algorithm>
#include <utility>

#include "net/network.h"
#include "sim/require.h"

namespace bypass {

using amoeba::CostModel;
using sim::Mechanism;
using sim::Prio;

namespace {

net::Payload serialize(net::Writer& w, const BypassDevice* dev,
                       std::uint8_t opcode, std::uint32_t psn,
                       std::uint32_t ack, std::uint32_t msg_id,
                       std::uint32_t offset, std::uint32_t total,
                       std::uint64_t wr, std::uint64_t rkey,
                       std::uint64_t raddr, const net::Payload& data,
                       NodeId src_node, std::size_t header_bytes) {
  (void)dev;
  w.u8(kMagic).u8(opcode).u16(static_cast<std::uint16_t>(src_node));
  w.u32(psn).u32(ack).u32(msg_id).u32(offset).u32(total);
  w.u64(wr).u64(rkey).u64(raddr);
  // Pad to the modelled transport header size so header bytes hit the wire
  // exactly as the cost model states them.
  if (header_bytes > w.size()) w.zeros(header_bytes - w.size());
  w.payload(data);
  return w.take();
}

}  // namespace

BypassDevice::BypassDevice(Kernel& kernel)
    : kernel_(&kernel), cq_cv_(kernel.sim()) {
  // Map the NIC into user space: from here on every frame this station
  // accepts goes to the bypass engine, not to kernel FLIP.
  kernel_->nic().set_rx_handler([this](const net::Frame& f) { on_frame(f); });
}

// --- Small helpers -----------------------------------------------------------

BypassDevice::Conn& BypassDevice::conn(NodeId peer) {
  auto [c, fresh] = conns_.try_emplace(peer, kernel_->sim());
  if (fresh) {
    c->peer = peer;
    c->mac = net::Network::mac_of(peer);
  }
  return *c;
}

std::uint64_t BypassDevice::make_wr() noexcept {
  return (static_cast<std::uint64_t>(node()) << 32) | wr_seq_++;
}

std::size_t BypassDevice::frag_capacity() const noexcept {
  const std::size_t mtu = kernel_->nic().segment().wire().mtu;
  const std::size_t header = kernel_->costs().bypass_header;
  return mtu > header ? mtu - header : 1;
}

sim::Time BypassDevice::dma_time(std::size_t bytes) const noexcept {
  const std::size_t rate = kernel_->costs().bypass_dma_bytes_per_ns;
  if (rate == 0) return 0;
  return static_cast<sim::Time>(bytes / rate);
}

sim::Co<void> BypassDevice::nic_charge(Mechanism m, sim::Time cost,
                                       std::uint64_t count) {
  kernel_->ledger().add(m, cost, count);
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(node(), trace::EventKind::kCharge,
               static_cast<std::uint64_t>(m), static_cast<std::uint64_t>(cost),
               count);
  }
  if (cost > 0) co_await sim::delay(kernel_->sim(), cost);
}

void BypassDevice::record(trace::EventKind kind, std::uint64_t a,
                          std::uint64_t b, std::uint64_t c, std::uint64_t d) {
  if (auto* tr = kernel_->sim().tracer()) tr->record(node(), kind, a, b, c, d);
}

// --- Memory registration -----------------------------------------------------

RegionHandle BypassDevice::register_region(std::size_t bytes) {
  const std::uint64_t rkey = region_rkey(node(), next_region_++);
  regions_[rkey].bytes.assign(bytes, 0);
  const std::uint64_t pages = (bytes + 4095) / 4096;
  const CostModel& c = kernel_->costs();
  const sim::Time cost =
      c.bypass_reg_base + c.bypass_reg_per_page * static_cast<sim::Time>(pages);
  // Pinning runs driver code on this node's CPU; it is setup cost, charged
  // when the simulation starts executing, never on the data path.
  sim::spawn(kernel_->charge(Prio::kUser, Mechanism::kMemoryRegistration, cost));
  return {rkey, bytes};
}

void BypassDevice::set_read_hook(std::uint64_t rkey, ReadHook hook) {
  const auto it = regions_.find(rkey);
  sim::require(it != regions_.end(), "bypass: read hook on unknown rkey");
  it->second.hook = std::move(hook);
}

std::uint8_t* BypassDevice::region_data(std::uint64_t rkey) {
  const auto it = regions_.find(rkey);
  sim::require(it != regions_.end(), "bypass: unknown rkey");
  return it->second.bytes.data();
}

std::size_t BypassDevice::region_size(std::uint64_t rkey) const {
  const auto it = regions_.find(rkey);
  sim::require(it != regions_.end(), "bypass: unknown rkey");
  return it->second.bytes.size();
}

// --- Send path ---------------------------------------------------------------

sim::Co<std::uint64_t> BypassDevice::post_send(NodeId peer, net::Payload msg,
                                               bool signaled) {
  const std::uint64_t wr = make_wr();
  co_await kernel_->charge(Prio::kUser, Mechanism::kDoorbell,
                           kernel_->costs().bypass_doorbell);
  record(trace::EventKind::kBypassPost, wr, peer, msg.size(),
         static_cast<std::uint64_t>(Opcode::kSend));
  OutMsg m;
  m.op = Opcode::kSend;
  m.wr = wr;
  m.msg_id = next_msg_id_++;
  m.payload = std::move(msg);
  m.ack_completes = signaled;
  if (peer == node()) {
    deliver_local(std::move(m));
  } else {
    enqueue(peer, std::move(m));
  }
  co_return wr;
}

void BypassDevice::deliver_local(OutMsg m) {
  // Loopback: the NIC short-circuits self-addressed WQEs without touching
  // the wire (the sequencer delivering to itself).
  record(trace::EventKind::kFlipSend, bypass_addr(node()), m.msg_id,
         m.payload.size(), 1);
  record(trace::EventKind::kFlipDeliver, bypass_addr(node()), m.msg_id,
         m.payload.size(), 1);
  Completion cqe;
  cqe.wr = m.wr;
  cqe.op = Opcode::kSend;
  cqe.peer = node();
  cqe.bytes = static_cast<std::uint32_t>(m.payload.size());
  cqe.payload = std::move(m.payload);
  complete(std::move(cqe));
}

void BypassDevice::enqueue(NodeId peer, OutMsg m) {
  Conn& c = conn(peer);
  c.sendq.push_back(std::move(m));
  if (!c.pumping) {
    c.pumping = true;
    sim::spawn(pump(c));
  }
}

sim::Co<void> BypassDevice::pump(Conn& c) {
  const CostModel& cm = kernel_->costs();
  while (!c.sendq.empty()) {
    OutMsg m = std::move(c.sendq.front());
    c.sendq.pop_front();
    const std::size_t capacity = frag_capacity();
    record(trace::EventKind::kFlipSend, bypass_addr(c.peer), m.msg_id,
           m.payload.size());
    std::size_t offset = 0;
    do {
      const std::size_t chunk = std::min(capacity, m.payload.size() - offset);
      // The NIC engine fetches the WQE and DMAs the fragment out of the
      // registered buffer: NIC time, not CPU time.
      co_await nic_charge(Mechanism::kWqeProcessing,
                          cm.bypass_wqe + dma_time(chunk + cm.bypass_header));
      const std::uint32_t psn = c.next_psn++;
      const bool last = offset + chunk == m.payload.size();
      net::Frame frame;
      frame.dst = c.mac;
      frame.id = (static_cast<std::uint64_t>(node()) << 48) |
                 (static_cast<std::uint64_t>(m.msg_id) << 16) |
                 static_cast<std::uint64_t>(offset / capacity);
      // Outgoing data always piggybacks our cumulative ack; a pending
      // explicit-ack shot becomes redundant.
      c.ack_timer.cancel();
      frame.payload = serialize(
          frame_writer_, this, static_cast<std::uint8_t>(m.op), psn,
          c.expect - 1, m.msg_id, static_cast<std::uint32_t>(offset),
          static_cast<std::uint32_t>(m.payload.size()), m.wr, m.rkey, m.raddr,
          m.payload.slice(offset, chunk), node(), cm.bypass_header);
      record(trace::EventKind::kFragment, frame.id, m.msg_id,
             bypass_addr(node()), chunk);
      Outgoing out;
      out.psn = psn;
      out.frame = frame;
      out.wr = (last && m.ack_completes) ? m.wr : 0;
      out.op = m.op;
      out.bytes = static_cast<std::uint32_t>(m.payload.size());
      c.unacked.push_back(std::move(out));
      ++frames_sent_;
      kernel_->nic().send(std::move(frame));
      offset += chunk;
    } while (offset < m.payload.size());
    arm_rto(c);
  }
  c.pumping = false;
}

void BypassDevice::arm_rto(Conn& c) {
  if (c.unacked.empty() || silenced_) {
    c.rto.cancel();
    return;
  }
  // The NIC knows its own transmit queue: the timeout covers the wire time
  // of everything still unacked plus the ack's return path, so a slow medium
  // never triggers retransmission of frames that simply have not finished
  // transmitting yet. Consecutive no-progress rounds back off exponentially
  // (the window replay itself occupies the wire).
  const net::WireParams& wp = kernel_->nic().segment().wire();
  const CostModel& cm = kernel_->costs();
  sim::Time outstanding = 0;
  for (const Outgoing& o : c.unacked) {
    outstanding += net::wire_time(wp, o.frame.payload.size());
  }
  const sim::Time ack_path = net::wire_time(wp, cm.bypass_header) +
                             2 * wp.propagation + cm.bypass_ack_delay;
  const sim::Time interval = cm.bypass_retransmit_interval
                             << std::min<std::uint32_t>(c.backoff, 6);
  c.rto.schedule(interval + outstanding + ack_path,
                 [this, &c] { sim::spawn(retransmit(c)); });
}

sim::Co<void> BypassDevice::retransmit(Conn& c) {
  if (silenced_ || c.unacked.empty()) co_return;
  ++retransmit_rounds_;
  ++c.backoff;
  record(trace::EventKind::kRetransmit, c.unacked.front().psn,
         trace::kReasonGoBackN);
  // Go-back-N: replay the whole window from the oldest unacked PSN. Snapshot
  // first — an ack arriving between NIC charges may shrink the deque.
  std::vector<net::Frame> window;
  window.reserve(c.unacked.size());
  for (const Outgoing& o : c.unacked) window.push_back(o.frame);
  const CostModel& cm = kernel_->costs();
  for (net::Frame& f : window) {
    co_await nic_charge(Mechanism::kWqeProcessing,
                        cm.bypass_wqe + dma_time(f.payload.size()));
    if (silenced_) co_return;
    ++frames_sent_;
    kernel_->nic().send(std::move(f));
  }
  arm_rto(c);
}

void BypassDevice::schedule_ack(Conn& c) {
  if (c.ack_timer.pending() || silenced_) return;
  c.ack_timer.schedule(kernel_->costs().bypass_ack_delay,
                       [this, &c] { sim::spawn(send_ack(c)); });
}

sim::Co<void> BypassDevice::send_ack(Conn& c) {
  if (silenced_) co_return;
  const CostModel& cm = kernel_->costs();
  co_await nic_charge(Mechanism::kWqeProcessing,
                      cm.bypass_wqe + dma_time(cm.bypass_header));
  if (silenced_) co_return;
  const std::uint32_t acked = c.expect - 1;
  net::Frame frame;
  frame.dst = c.mac;
  // Acks are unsequenced control frames; msg_id 0 keeps them outside the
  // fragment-lineage namespace.
  frame.id = (static_cast<std::uint64_t>(node()) << 48) |
             static_cast<std::uint64_t>(ack_seq_++ & 0xFFFF);
  frame.payload =
      serialize(frame_writer_, this, static_cast<std::uint8_t>(Opcode::kAck),
                0, acked, 0, 0, 0, 0, 0, 0, {}, node(), cm.bypass_header);
  record(trace::EventKind::kAck,
         (static_cast<std::uint64_t>(c.peer) << 32) | acked, 1);
  ++frames_sent_;
  kernel_->nic().send(std::move(frame));
}

void BypassDevice::process_ack(Conn& c, std::uint32_t ack) {
  if (ack <= c.acked) return;
  c.acked = ack;
  c.backoff = 0;  // cumulative progress: the path works, reset the backoff
  while (!c.unacked.empty() && c.unacked.front().psn <= ack) {
    Outgoing o = std::move(c.unacked.front());
    c.unacked.pop_front();
    if (o.wr != 0) {
      Completion cqe;
      cqe.wr = o.wr;
      cqe.op = o.op;
      cqe.peer = c.peer;
      cqe.bytes = o.bytes;
      complete(std::move(cqe));
    }
  }
  arm_rto(c);
}

// --- Receive path ------------------------------------------------------------

void BypassDevice::on_frame(const net::Frame& f) {
  if (silenced_) return;
  if (f.payload.empty() || f.payload.byte_at(0) != kMagic) return;
  // The rx engine is one pipeline: frames are processed strictly in arrival
  // order. Spawning a handler per frame would let a small trailing fragment
  // (short validate+DMA charge) overtake the large fragment before it, and
  // the PSN gate would drop the overtaken frame as stale — turning every
  // fragmented message into an RTO round trip.
  rxq_.push_back(f);
  if (!rx_pumping_) {
    rx_pumping_ = true;
    sim::spawn(rx_pump());
  }
}

sim::Co<void> BypassDevice::rx_pump() {
  while (!rxq_.empty() && !silenced_) {
    net::Frame f = std::move(rxq_.front());
    rxq_.pop_front();
    co_await handle_frame(std::move(f));
  }
  rx_pumping_ = false;
}

sim::Co<void> BypassDevice::handle_frame(net::Frame f) {
  const CostModel& cm = kernel_->costs();
  // The receiving NIC engine validates the frame and DMAs it to host memory.
  co_await nic_charge(Mechanism::kWqeProcessing,
                      cm.bypass_wqe + dma_time(f.payload.size()));
  if (silenced_) co_return;

  net::Reader r(f.payload);
  (void)r.u8();  // magic, checked in on_frame
  WireHeader h;
  h.op = static_cast<Opcode>(r.u8());
  h.src_node = r.u16();
  h.psn = r.u32();
  h.ack = r.u32();
  h.msg_id = r.u32();
  h.offset = r.u32();
  h.total = r.u32();
  h.wr = r.u64();
  h.rkey = r.u64();
  h.raddr = r.u64();
  const std::size_t pad = cm.bypass_header > 48 ? cm.bypass_header - 48 : 0;
  if (pad > 0) (void)r.raw(pad);
  net::Payload data = r.rest();

  Conn& c = conn(h.src_node);
  // Every bypass frame carries the peer's cumulative ack for our direction.
  process_ack(c, h.ack);
  if (h.op == Opcode::kAck) co_return;

  if (h.psn != c.expect) {
    // Stale duplicate or go-back-N gap: drop, and re-ack so the sender's
    // window can advance (or rewind) quickly.
    ++stale_frames_;
    schedule_ack(c);
    co_return;
  }
  c.expect = h.psn + 1;
  schedule_ack(c);

  // Frames of one message arrive strictly in order (PSN-gated), so
  // reassembly is a plain accumulator.
  if (h.offset == 0) {
    c.rx_msg_id = h.msg_id;
    c.rx_received = 0;
    (void)c.rx_writer.take();  // reset any abandoned partial message
  } else if (h.msg_id != c.rx_msg_id) {
    co_return;  // fragment of an abandoned message (cannot happen in-order)
  }
  c.rx_writer.payload(data);
  c.rx_received += static_cast<std::uint32_t>(data.size());
  if (c.rx_received < h.total) co_return;

  net::Payload whole = c.rx_writer.take();
  record(trace::EventKind::kFlipDeliver, bypass_addr(h.src_node), h.msg_id,
         whole.size());
  co_await handle_message(c, h, std::move(whole));
}

sim::Co<void> BypassDevice::handle_message(Conn& c, WireHeader h,
                                           net::Payload whole) {
  const CostModel& cm = kernel_->costs();
  switch (h.op) {
    case Opcode::kSend: {
      Completion cqe;
      cqe.wr = h.wr;
      cqe.op = Opcode::kSend;
      cqe.peer = h.src_node;
      cqe.bytes = h.total;
      cqe.payload = std::move(whole);
      complete(std::move(cqe));
      break;
    }
    case Opcode::kWrite: {
      // One-sided WRITE: the NIC lands the bytes in the registered region.
      // No thread is scheduled; the target CPU never notices.
      co_await nic_charge(Mechanism::kRemoteAccess,
                          cm.bypass_remote_access + dma_time(h.total));
      const auto it = regions_.find(h.rkey);
      if (it != regions_.end() &&
          h.raddr + whole.size() <= it->second.bytes.size()) {
        whole.copy_out(0, whole.size(), it->second.bytes.data() + h.raddr);
        record(trace::EventKind::kBypassRemote, h.wr, h.src_node, h.total,
               static_cast<std::uint64_t>(Opcode::kWrite));
      }
      break;
    }
    case Opcode::kReadReq: {
      net::Reader rr(whole);
      const std::uint32_t len = rr.u32();
      net::Payload args = rr.rest();
      const auto it = regions_.find(h.rkey);
      net::Payload result;
      if (it != regions_.end()) {
        if (it->second.hook) {
          result = it->second.hook(h.raddr, len, args);
        } else if (h.raddr + len <= it->second.bytes.size()) {
          std::vector<std::uint8_t> out(
              it->second.bytes.begin() + static_cast<std::ptrdiff_t>(h.raddr),
              it->second.bytes.begin() +
                  static_cast<std::ptrdiff_t>(h.raddr + len));
          result = net::Payload(std::move(out));
        }
      }
      co_await nic_charge(Mechanism::kRemoteAccess,
                          cm.bypass_remote_access + dma_time(result.size()));
      record(trace::EventKind::kBypassRemote, h.wr, h.src_node, result.size(),
             static_cast<std::uint64_t>(Opcode::kReadReq));
      OutMsg resp;
      resp.op = Opcode::kReadResp;
      resp.wr = h.wr;
      resp.msg_id = next_msg_id_++;
      resp.payload = std::move(result);
      enqueue(c.peer, std::move(resp));
      break;
    }
    case Opcode::kAtomicReq: {
      net::Reader rr(whole);
      const std::uint64_t delta = rr.u64();
      co_await nic_charge(Mechanism::kRemoteAccess, cm.bypass_remote_access);
      std::uint64_t old = 0;
      const auto it = regions_.find(h.rkey);
      if (it != regions_.end() && h.raddr + 8 <= it->second.bytes.size()) {
        std::uint8_t* p = it->second.bytes.data() + h.raddr;
        for (int i = 0; i < 8; ++i) old = (old << 8) | p[i];
        const std::uint64_t updated = old + delta;
        for (int i = 0; i < 8; ++i) {
          p[i] = static_cast<std::uint8_t>(updated >> (56 - 8 * i));
        }
        record(trace::EventKind::kBypassRemote, h.wr, h.src_node, 8,
               static_cast<std::uint64_t>(Opcode::kAtomicReq));
      }
      net::Writer w;
      w.u64(old);
      OutMsg resp;
      resp.op = Opcode::kAtomicResp;
      resp.wr = h.wr;
      resp.msg_id = next_msg_id_++;
      resp.payload = w.take();
      enqueue(c.peer, std::move(resp));
      break;
    }
    case Opcode::kReadResp:
    case Opcode::kAtomicResp: {
      Completion cqe;
      cqe.wr = h.wr;
      cqe.op = h.op == Opcode::kReadResp ? Opcode::kReadReq : Opcode::kAtomicReq;
      cqe.peer = h.src_node;
      cqe.bytes = h.total;
      cqe.payload = std::move(whole);
      complete(std::move(cqe));
      break;
    }
    case Opcode::kAck:
      break;  // handled before reassembly
  }
}

// --- Completion delivery -----------------------------------------------------

void BypassDevice::complete(Completion cqe) {
  const auto it = waiters_.find(cqe.wr);
  if (it != waiters_.end()) {
    const std::shared_ptr<Waiter> w = it->second;
    w->result = std::move(cqe);
    w->done = true;
    w->cv.notify_all();
    return;
  }
  cq_.push_back(std::move(cqe));
  cq_cv_.notify_one();
}

sim::Co<Completion> BypassDevice::poll() {
  while (cq_.empty()) co_await cq_cv_.wait();
  Completion cqe = std::move(cq_.front());
  cq_.pop_front();
  co_await kernel_->charge(Prio::kUser, Mechanism::kCqPoll,
                           kernel_->costs().bypass_cq_poll);
  record(trace::EventKind::kBypassComplete, cqe.wr, cqe.ok ? 0 : 1, cqe.bytes,
         static_cast<std::uint64_t>(cqe.op));
  co_return cqe;
}

// --- One-sided verbs ---------------------------------------------------------

sim::Co<Completion> BypassDevice::post_and_wait(NodeId peer, OutMsg m,
                                                std::uint32_t post_bytes) {
  sim::require(peer != node(), "bypass: one-sided verb to self");
  const Opcode posted = m.op;
  const std::uint64_t wr = m.wr;
  auto waiter = std::make_shared<Waiter>(kernel_->sim());
  waiters_.emplace(wr, waiter);
  co_await kernel_->charge(Prio::kUser, Mechanism::kDoorbell,
                           kernel_->costs().bypass_doorbell);
  record(trace::EventKind::kBypassPost, wr, peer, post_bytes,
         static_cast<std::uint64_t>(posted));
  enqueue(peer, std::move(m));
  while (!waiter->done) co_await waiter->cv.wait();
  waiters_.erase(wr);
  // The initiating thread spins on its own CQ; reaping the CQE is the only
  // CPU cost of completion — no interrupt, no dispatch.
  co_await kernel_->charge(Prio::kUser, Mechanism::kCqPoll,
                           kernel_->costs().bypass_cq_poll);
  record(trace::EventKind::kBypassComplete, wr,
         waiter->result.ok ? 0 : 1, waiter->result.payload.size(),
         static_cast<std::uint64_t>(posted));
  co_return std::move(waiter->result);
}

sim::Co<Completion> BypassDevice::read(NodeId peer, std::uint64_t rkey,
                                       std::uint64_t addr, std::uint32_t len,
                                       net::Payload args) {
  net::Writer w;
  w.u32(len);
  w.payload(args);
  OutMsg m;
  m.op = Opcode::kReadReq;
  m.wr = make_wr();
  m.msg_id = next_msg_id_++;
  m.rkey = rkey;
  m.raddr = addr;
  m.payload = w.take();
  co_return co_await post_and_wait(peer, std::move(m), len);
}

sim::Co<Completion> BypassDevice::write(NodeId peer, std::uint64_t rkey,
                                        std::uint64_t addr, net::Payload data) {
  OutMsg m;
  m.op = Opcode::kWrite;
  m.wr = make_wr();
  m.msg_id = next_msg_id_++;
  m.rkey = rkey;
  m.raddr = addr;
  const auto bytes = static_cast<std::uint32_t>(data.size());
  m.payload = std::move(data);
  m.ack_completes = true;  // WRITE completes when the QP acks the last PSN
  co_return co_await post_and_wait(peer, std::move(m), bytes);
}

sim::Co<Completion> BypassDevice::fetch_add(NodeId peer, std::uint64_t rkey,
                                            std::uint64_t addr,
                                            std::uint64_t delta) {
  net::Writer w;
  w.u64(delta);
  OutMsg m;
  m.op = Opcode::kAtomicReq;
  m.wr = make_wr();
  m.msg_id = next_msg_id_++;
  m.rkey = rkey;
  m.raddr = addr;
  m.payload = w.take();
  co_return co_await post_and_wait(peer, std::move(m), 8);
}

void BypassDevice::silence() {
  silenced_ = true;
  rxq_.clear();
  conns_.for_each([](NodeId, Conn& c) {
    c.rto.cancel();
    c.ack_timer.cancel();
  });
}

}  // namespace bypass
