// The kernel-bypass Panda binding (Binding::kBypass).
//
// Panda's RPC and totally-ordered group protocols re-expressed over the
// bypass verbs (verbs.h) instead of kernel Amoeba (§3.1) or user-space FLIP
// (§3.2). The shape follows the paper's user-space binding — the protocol is
// a library in the application's address space — but the transport underneath
// is reliable NIC hardware, which deletes most of the protocol itself:
//
//   * RPC is a single two-sided SEND each way. The QP is exactly-once, so
//     there are no client retransmit timers, no reply cache, no duplicate
//     detection — an RPC can't time out, it can only complete.
//   * The group protocol is the PB method reduced to its skeleton: a member
//     SENDs to the sequencer, the sequencer assigns the next seqno and fans
//     the message out with one SEND per member. Hardware reliability means
//     no history buffer, no status rounds, no gap requests.
//   * One CQ-poller thread per node replaces interrupt-driven daemons: every
//     upcall runs from the poller, woken by kCqPoll, never by
//     interrupt_thread_switch.
//
// The classic single sequencer is the only group mode (make_bypass_panda
// rejects replicated_sequencer configs); sequenced leave/rejoin is
// unsupported.
#pragma once

#include <memory>

#include "bypass/verbs.h"
#include "panda/panda.h"

namespace bypass {

/// Instantiate the bypass binding for `kernel`'s node. Requires
/// config.binding == kBypass and !config.replicated_sequencer.
[[nodiscard]] std::unique_ptr<panda::Panda> make_bypass_panda(
    amoeba::Kernel& kernel, const panda::ClusterConfig& config);

}  // namespace bypass
