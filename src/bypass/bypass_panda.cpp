#include "bypass/bypass_panda.h"

#include <unordered_map>
#include <utility>

#include "metrics/handles.h"
#include "sim/require.h"

namespace bypass {

namespace {

using panda::Binding;
using panda::ClusterConfig;
using panda::Panda;
using panda::RpcReply;
using panda::RpcStatus;
using panda::RpcTicket;
using panda::Thread;
using sim::Mechanism;
using sim::Prio;

// Message type tags (first byte of every bypass-Panda message).
constexpr std::uint8_t kRpcReq = 1;    // u32 tid, u32 client, body
constexpr std::uint8_t kRpcRep = 2;    // u32 tid, u32 client, body
constexpr std::uint8_t kGroupPub = 3;  // u64 uid, u32 sender, body
constexpr std::uint8_t kGroupDel = 4;  // u32 seqno, u32 sender, u64 uid, body

class BypassPanda final : public Panda {
 public:
  BypassPanda(Kernel& kernel, ClusterConfig config)
      : Panda(kernel, std::move(config)), dev_(kernel) {
    const metrics::NodeMetrics nm(kernel.sim().metrics(), kernel.node());
    m_calls_ = nm.counter("rpc.calls");
    m_latency_ = nm.histogram("rpc.latency_ns");
    m_group_sends_ = nm.counter("group.sends");
    m_deliveries_ = nm.counter("group.deliveries");
    m_group_latency_ = nm.histogram("group.send_latency_ns");
  }

  void start() override {
    start_thread("bypass-cq-poller",
                 [this](Thread& t) { return poll_loop(t); });
  }

  [[nodiscard]] bypass::BypassDevice* bypass_device() noexcept override {
    return &dev_;
  }

  sim::Co<RpcReply> rpc(Thread& self, NodeId dst, net::Payload request) override {
    (void)self;  // the QP carries identity; no daemon thread to signal
    const std::uint32_t tid = next_trans_++;
    const std::uint64_t key = (static_cast<std::uint64_t>(node()) << 32) | tid;
    record(trace::EventKind::kRpcSend, key, dst, request.size());
    m_calls_.add();
    const sim::Time t0 = sim().now();
    co_await kernel_->charge(Prio::kUser, Mechanism::kProtocolProcessing,
                             kernel_->costs().bypass_protocol_processing);
    auto call = std::make_shared<PendingCall>(sim());
    calls_.emplace(tid, call);
    net::Writer w;
    w.u8(kRpcReq).u32(tid).u32(node()).payload(request);
    (void)co_await dev_.post_send(dst, w.take());
    while (!call->done) co_await call->cv.wait();
    calls_.erase(tid);
    record(trace::EventKind::kRpcDone, key, 0);
    m_latency_.record(static_cast<std::uint64_t>(sim().now() - t0));
    co_return RpcReply{RpcStatus::kOk, std::move(call->reply)};
  }

  sim::Co<void> rpc_reply(Thread& self, RpcTicket ticket,
                          net::Payload reply) override {
    (void)self;
    const auto it = tickets_.find(ticket.id);
    sim::require(it != tickets_.end(), "bypass: rpc_reply for unknown ticket");
    const Served served = it->second;
    tickets_.erase(it);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(served.client) << 32) | served.tid;
    record(trace::EventKind::kRpcReply, key, served.client, reply.size());
    co_await kernel_->charge(Prio::kUser, Mechanism::kProtocolProcessing,
                             kernel_->costs().bypass_protocol_processing);
    net::Writer w;
    w.u8(kRpcRep).u32(served.tid).u32(served.client).payload(reply);
    (void)co_await dev_.post_send(served.client, w.take());
  }

  sim::Co<void> group_send(Thread& self, net::Payload message) override {
    if (crashed_) {  // a crashed member's send never returns (contract)
      while (true) co_await dead_cv_.wait();
    }
    (void)self;
    const std::uint64_t uid =
        (static_cast<std::uint64_t>(node()) << 32) | next_group_uid_++;
    record(trace::EventKind::kGroupSend, uid, 0, message.size());
    m_group_sends_.add();
    const sim::Time t0 = sim().now();
    co_await kernel_->charge(Prio::kUser, Mechanism::kProtocolProcessing,
                             kernel_->costs().bypass_protocol_processing);
    auto pending = std::make_shared<PendingSend>(sim());
    group_pending_.emplace(uid, pending);
    net::Writer w;
    w.u8(kGroupPub).u64(uid).u32(node()).payload(message);
    (void)co_await dev_.post_send(config_.sequencer, w.take());
    while (!pending->done) co_await pending->cv.wait();
    group_pending_.erase(uid);
    m_group_latency_.record(static_cast<std::uint64_t>(sim().now() - t0));
  }

  sim::Co<void> group_leave(Thread& self) override {
    (void)self;
    sim::require(false, "bypass: sequenced group membership is unsupported");
    co_return;
  }

  sim::Co<void> group_rejoin(Thread& self) override {
    (void)self;
    sim::require(false, "bypass: sequenced group membership is unsupported");
    co_return;
  }

  void group_crash() override { crashed_ = true; }

  std::uint64_t group_view_changes() const override { return 0; }
  std::uint64_t group_status_rounds() const override { return 0; }

 private:
  struct PendingCall {
    explicit PendingCall(sim::Simulator& s) : cv(s) {}
    bool done = false;
    net::Payload reply;
    sim::CondVar cv;
  };
  struct PendingSend {
    explicit PendingSend(sim::Simulator& s) : cv(s) {}
    bool done = false;
    sim::CondVar cv;
  };
  struct Served {  // an accepted request awaiting its pan_rpc_reply
    NodeId client = 0;
    std::uint32_t tid = 0;
  };

  void record(trace::EventKind kind, std::uint64_t a, std::uint64_t b = 0,
              std::uint64_t c = 0, std::uint64_t d = 0) {
    if (auto* tr = sim().tracer()) tr->record(node(), kind, a, b, c, d);
  }

  sim::Co<void> poll_loop(Thread& t) {
    while (true) {
      Completion cqe = co_await dev_.poll();
      if (cqe.op != Opcode::kSend) continue;  // signaled sends: nothing to do
      co_await dispatch(t, std::move(cqe.payload));
    }
  }

  sim::Co<void> dispatch(Thread& t, net::Payload msg) {
    net::Reader r(std::move(msg));
    const std::uint8_t type = r.u8();
    switch (type) {
      case kRpcReq: {
        const std::uint32_t tid = r.u32();
        const NodeId client = r.u32();
        net::Payload body = r.rest();
        const std::uint64_t key =
            (static_cast<std::uint64_t>(client) << 32) | tid;
        // Hardware exactly-once: every arriving request is fresh.
        record(trace::EventKind::kRpcExec, key);
        record(trace::EventKind::kUpcall, key, 1);
        co_await kernel_->charge(Prio::kUser, Mechanism::kProtocolProcessing,
                                 kernel_->costs().bypass_protocol_processing);
        const std::uint64_t ticket = next_ticket_++;
        tickets_.emplace(ticket, Served{client, tid});
        if (rpc_handler_) {
          co_await rpc_handler_(t, RpcTicket{ticket}, std::move(body));
        }
        break;
      }
      case kRpcRep: {
        const std::uint32_t tid = r.u32();
        (void)r.u32();  // client (us)
        const auto it = calls_.find(tid);
        if (it == calls_.end()) break;
        const std::shared_ptr<PendingCall> call = it->second;
        call->reply = r.rest();
        call->done = true;
        call->cv.notify_all();
        break;
      }
      case kGroupPub: {
        if (crashed_) break;
        const std::uint64_t uid = r.u64();
        const NodeId sender = r.u32();
        net::Payload body = r.rest();
        const std::uint32_t seqno = next_seqno_++;
        record(trace::EventKind::kSeqnoAssign, seqno, sender, uid);
        co_await kernel_->charge(Prio::kUser, Mechanism::kProtocolProcessing,
                                 kernel_->costs().bypass_protocol_processing);
        // PB fan-out: one reliable SEND per member (self included — the
        // loopback path keeps delivery order uniform).
        net::Writer w;
        for (const NodeId member : config_.nodes) {
          w.u8(kGroupDel).u32(seqno).u32(sender).u64(uid).payload(body);
          (void)co_await dev_.post_send(member, w.take());
        }
        break;
      }
      case kGroupDel: {
        if (crashed_) break;
        const std::uint32_t seqno = r.u32();
        const NodeId sender = r.u32();
        const std::uint64_t uid = r.u64();
        net::Payload body = r.rest();
        record(trace::EventKind::kGroupDeliver, seqno, sender, body.size());
        m_deliveries_.add();
        co_await kernel_->charge(Prio::kUser, Mechanism::kProtocolProcessing,
                                 kernel_->costs().bypass_protocol_processing);
        if (group_handler_) {
          co_await group_handler_(t, sender, seqno, std::move(body));
        }
        if (sender == node()) {
          const auto it = group_pending_.find(uid);
          if (it != group_pending_.end()) {
            it->second->done = true;
            it->second->cv.notify_all();
          }
        }
        break;
      }
      default:
        sim::require(false, "bypass: unknown panda message type");
    }
  }

  BypassDevice dev_;
  std::unordered_map<std::uint32_t, std::shared_ptr<PendingCall>> calls_;
  std::unordered_map<std::uint64_t, Served> tickets_;
  std::unordered_map<std::uint64_t, std::shared_ptr<PendingSend>> group_pending_;
  sim::CondVar dead_cv_{kernel_->sim()};
  std::uint32_t next_trans_ = 1;
  std::uint64_t next_ticket_ = 1;
  std::uint32_t next_group_uid_ = 1;
  std::uint32_t next_seqno_ = 1;
  bool crashed_ = false;

  metrics::CounterHandle m_calls_;
  metrics::HistogramHandle m_latency_;
  metrics::CounterHandle m_group_sends_;
  metrics::CounterHandle m_deliveries_;
  metrics::HistogramHandle m_group_latency_;
};

}  // namespace

std::unique_ptr<Panda> make_bypass_panda(amoeba::Kernel& kernel,
                                         const ClusterConfig& config) {
  sim::require(config.binding == Binding::kBypass,
               "make_bypass_panda: config.binding must be kBypass");
  sim::require(!config.replicated_sequencer,
               "bypass: replicated sequencer is unsupported");
  return std::make_unique<BypassPanda>(kernel, config);
}

}  // namespace bypass
