// Kernel-bypass (RDMA-style) verbs over the simulated NIC.
//
// The paper's axis is *where the protocol stack lives* — kernel space vs user
// space — on hardware where every network event costs a trap, an interrupt
// and often a context switch. This module models the modern third answer:
// the protocol lives in NIC hardware and the host touches it through mapped
// queues. Concretely:
//
//   * Registered memory regions: pinned byte arenas with rkey handles.
//     Registration is charged (kMemoryRegistration) once at setup; the data
//     path never pays it again.
//   * Doorbell-rung send queues: posting a work request is an MMIO write
//     (kDoorbell) — no syscall_enter, ever. The NIC then fetches and
//     executes the WQE on its own engine (kWqeProcessing + DMA time),
//     charged to the node's ledger but *not* occupying the node CPU.
//   * Completion queues discovered by polling (kCqPoll per reaped CQE) —
//     no interrupt_thread_switch, ever. The Nic's kInterrupt trace event
//     still marks hardware frame acceptance, but it carries no CPU charge
//     on this path.
//   * One-sided READ / WRITE / ATOMIC verbs execute at the *target NIC*
//     (kRemoteAccess) without scheduling any target-side thread.
//   * Two-sided SEND/RECV with hardware reliability: per-peer RC queue
//     pairs, PSN-sequenced frames, cumulative acks (piggybacked on reverse
//     data, or delayed explicit acks), and go-back-N retransmission — so the
//     layers above never retransmit and exactly-once falls out of the QP.
//
// Trace linking reuses the FLIP conventions (kFlipSend / kFragment /
// kFlipDeliver with frame.id = node<<48 | msg_id<<16 | fragment), so the
// causal profiler and the TraceChecker's frame-lineage invariant work on
// bypass traffic unchanged; three new event kinds (kBypassPost,
// kBypassRemote, kBypassComplete) record the verb lifecycle itself.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "amoeba/kernel.h"
#include "net/buffer.h"
#include "net/frame.h"
#include "sim/flat_map.h"
#include "sim/sync.h"
#include "sim/timer.h"
#include "trace/tracer.h"

namespace bypass {

using amoeba::Kernel;
using NodeId = net::NodeId;

/// Wire opcodes. The first payload byte of every bypass frame is kMagic, the
/// second is the opcode (the dissector classifies on this pair).
enum class Opcode : std::uint8_t {
  kSend = 1,        // two-sided message fragment
  kAck = 2,         // explicit cumulative ack (unsequenced control)
  kReadReq = 3,     // one-sided READ request
  kReadResp = 4,    // READ response data
  kWrite = 5,       // one-sided WRITE data
  kAtomicReq = 6,   // one-sided fetch-and-add request
  kAtomicResp = 7,  // fetch-and-add old value
};

inline constexpr std::uint8_t kMagic = 0xBD;

/// FLIP-style endpoint address of a bypass device (trace linking only; the
/// transport resolves MACs directly — "connection setup" is out of band).
[[nodiscard]] constexpr std::uint64_t bypass_addr(std::uint32_t node) noexcept {
  return 0x00D0'0000'0000'0000ULL | node;
}

/// The rkey of the `index`-th region registered on `node` (1-based).
/// Registration order is deterministic, so peers derive well-known handles
/// the way real systems exchange them during connection setup.
[[nodiscard]] constexpr std::uint64_t region_rkey(NodeId node,
                                                  std::uint32_t index) noexcept {
  return (static_cast<std::uint64_t>(node) << 32) | index;
}

struct RegionHandle {
  std::uint64_t rkey = 0;
  std::size_t bytes = 0;
};

/// A reaped CQE. `wr` identifies the originating work request
/// (initiator_node << 32 | sequence); for receive completions it is the
/// *sender's* wr key.
struct Completion {
  std::uint64_t wr = 0;
  Opcode op = Opcode::kSend;
  NodeId peer = 0;        // remote end (sender for recv completions)
  std::uint32_t bytes = 0;
  net::Payload payload;   // recv: the message; READ: data; ATOMIC: old value
  bool ok = true;
};

/// One node's bypass NIC context. Constructing it maps the NIC into user
/// space: the device takes over the Nic rx handler (FLIP goes dark on this
/// node — a bypass node speaks only the bypass transport).
class BypassDevice {
 public:
  /// Serves a one-sided READ against a region at the target NIC: returns the
  /// bytes for (addr, len). Installed by the region owner; models the NIC
  /// fetching host memory, so it runs with no target-side CPU charge.
  using ReadHook = std::function<net::Payload(
      std::uint64_t addr, std::uint32_t len, const net::Payload& args)>;

  explicit BypassDevice(Kernel& kernel);

  [[nodiscard]] Kernel& kernel() noexcept { return *kernel_; }
  [[nodiscard]] NodeId node() const noexcept { return kernel_->node(); }

  // --- Memory registration -------------------------------------------------

  /// Pin a region of `bytes` and hand out its rkey. The registration cost
  /// (base + per-4KiB-page) is charged asynchronously on this node's CPU —
  /// setup cost, off the data path.
  RegionHandle register_region(std::size_t bytes);

  /// Install a READ hook for `rkey` (replaces raw byte service).
  void set_read_hook(std::uint64_t rkey, ReadHook hook);

  /// Host access to a region's backing bytes (owner-side initialisation and
  /// WRITE-visibility checks in tests).
  [[nodiscard]] std::uint8_t* region_data(std::uint64_t rkey);
  [[nodiscard]] std::size_t region_size(std::uint64_t rkey) const;

  // --- Two-sided SEND/RECV -------------------------------------------------

  /// Post a SEND WQE to `peer` and ring the doorbell; returns the wr key
  /// immediately after the doorbell (the NIC transmits asynchronously).
  /// With `signaled`, a send completion is pushed to the CQ once the QP has
  /// acked the last fragment; unsignaled sends complete silently.
  [[nodiscard]] sim::Co<std::uint64_t> post_send(NodeId peer, net::Payload msg,
                                                 bool signaled = false);

  /// Reap the next CQE from the shared completion queue (receive completions
  /// and signaled send completions), polling-style: charges kCqPoll per
  /// reap, never a syscall or a dispatch.
  [[nodiscard]] sim::Co<Completion> poll();

  // --- One-sided verbs -----------------------------------------------------
  // Each posts a WQE (doorbell), then polls its own completion. The target
  // NIC serves the request (kRemoteAccess) without scheduling any thread.

  [[nodiscard]] sim::Co<Completion> read(NodeId peer, std::uint64_t rkey,
                                         std::uint64_t addr, std::uint32_t len,
                                         net::Payload args = {});
  [[nodiscard]] sim::Co<Completion> write(NodeId peer, std::uint64_t rkey,
                                          std::uint64_t addr, net::Payload data);
  [[nodiscard]] sim::Co<Completion> fetch_add(NodeId peer, std::uint64_t rkey,
                                              std::uint64_t addr,
                                              std::uint64_t delta);

  /// Fault injection: the device stops receiving and retransmitting.
  void silence();

  // --- Introspection (tests / DESIGN numbers) ------------------------------
  [[nodiscard]] std::uint64_t retransmit_rounds() const noexcept {
    return retransmit_rounds_;
  }
  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return frames_sent_; }
  [[nodiscard]] std::uint64_t stale_frames() const noexcept { return stale_frames_; }

 private:
  struct OutMsg {
    Opcode op = Opcode::kSend;
    std::uint64_t wr = 0;
    std::uint32_t msg_id = 0;
    std::uint64_t rkey = 0;
    std::uint64_t raddr = 0;
    net::Payload payload;
    bool ack_completes = false;  // CQE when the last fragment is acked
  };

  struct Outgoing {  // one in-flight frame (go-back-N window entry)
    std::uint32_t psn = 0;
    net::Frame frame;
    std::uint64_t wr = 0;  // != 0: completes on cumulative ack of this psn
    Opcode op = Opcode::kSend;
    std::uint32_t bytes = 0;
  };

  struct Conn {  // one RC queue pair (per peer, bidirectional)
    explicit Conn(sim::Simulator& s) : rto(s), ack_timer(s) {}
    NodeId peer = 0;
    net::MacAddr mac = net::kNoMac;
    // Send direction.
    std::uint32_t next_psn = 1;
    std::uint32_t acked = 0;
    std::deque<Outgoing> unacked;
    std::deque<OutMsg> sendq;
    bool pumping = false;
    sim::Timer rto;
    std::uint32_t backoff = 0;  // consecutive no-progress retransmit rounds
    // Receive direction.
    std::uint32_t expect = 1;
    sim::Timer ack_timer;
    // In-order reassembly of the message currently arriving.
    std::uint32_t rx_msg_id = 0;
    std::uint32_t rx_received = 0;
    net::Writer rx_writer;
  };

  struct Waiter {  // a one-sided initiator parked on its own completion
    explicit Waiter(sim::Simulator& s) : cv(s) {}
    bool done = false;
    Completion result;
    sim::CondVar cv;
  };

  struct Region {
    std::vector<std::uint8_t> bytes;
    ReadHook hook;
  };

  struct WireHeader {
    Opcode op = Opcode::kSend;
    NodeId src_node = 0;
    std::uint32_t psn = 0;
    std::uint32_t ack = 0;
    std::uint32_t msg_id = 0;
    std::uint32_t offset = 0;
    std::uint32_t total = 0;
    std::uint64_t wr = 0;
    std::uint64_t rkey = 0;
    std::uint64_t raddr = 0;
  };

  [[nodiscard]] Conn& conn(NodeId peer);
  [[nodiscard]] std::uint64_t make_wr() noexcept;
  [[nodiscard]] std::size_t frag_capacity() const noexcept;
  [[nodiscard]] sim::Time dma_time(std::size_t bytes) const noexcept;

  /// Ledger charge for NIC-engine work: records kCharge and elapses time
  /// without occupying the node CPU (the NIC is its own resource).
  [[nodiscard]] sim::Co<void> nic_charge(sim::Mechanism m, sim::Time cost,
                                         std::uint64_t count = 1);

  void record(trace::EventKind kind, std::uint64_t a, std::uint64_t b = 0,
              std::uint64_t c = 0, std::uint64_t d = 0);

  void enqueue(NodeId peer, OutMsg m);
  [[nodiscard]] sim::Co<void> pump(Conn& c);
  [[nodiscard]] sim::Co<void> retransmit(Conn& c);
  void arm_rto(Conn& c);
  void schedule_ack(Conn& c);
  [[nodiscard]] sim::Co<void> send_ack(Conn& c);
  void process_ack(Conn& c, std::uint32_t ack);

  void on_frame(const net::Frame& f);
  [[nodiscard]] sim::Co<void> rx_pump();
  [[nodiscard]] sim::Co<void> handle_frame(net::Frame f);
  [[nodiscard]] sim::Co<void> handle_message(Conn& c, WireHeader h,
                                             net::Payload whole);

  /// Deliver a completion: to the registered one-sided waiter for `wr`, or
  /// to the shared CQ otherwise.
  void complete(Completion cqe);

  void deliver_local(OutMsg m);

  [[nodiscard]] sim::Co<Completion> post_and_wait(NodeId peer, OutMsg m,
                                                  std::uint32_t post_bytes);

  Kernel* kernel_;
  // Per-peer QP state packed in a slab (sim/flat_map.h): dense NodeId
  // lookup, stable Conn addresses (pump/retransmit hold Conn& across
  // suspensions), and no per-connection heap node.
  sim::SlabMap<NodeId, Conn> conns_;
  std::unordered_map<std::uint64_t, Region> regions_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Waiter>> waiters_;
  std::deque<Completion> cq_;
  sim::CondVar cq_cv_;
  std::deque<net::Frame> rxq_;
  bool rx_pumping_ = false;
  net::Writer frame_writer_;
  std::uint32_t next_region_ = 1;
  std::uint32_t next_msg_id_ = 1;
  std::uint32_t wr_seq_ = 1;
  std::uint32_t ack_seq_ = 0;
  bool silenced_ = false;
  std::uint64_t retransmit_rounds_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t stale_frames_ = 0;
};

}  // namespace bypass
