// The Orca runtime system (one instance per node, over one Panda binding).
//
// Invocation paths (paper §2):
//   * read on a replicated object  -> applied to the local replica, no
//     communication;
//   * write on a replicated object -> broadcast via totally-ordered group
//     communication; every replica applies it in the same order;
//   * any op on a single-copy object owned here -> local;
//   * any op on a remote single-copy object -> Panda RPC to the owner.
//
// Guards: an operation whose guard is false blocks. On the owner of a
// single-copy object a *remote* blocked invocation is turned into a
// continuation — the RPC server upcall returns without replying, and when a
// later write makes the guard true, the reply is sent by the thread that
// applied that write via the asynchronous pan_rpc_reply. The user-space
// binding does this directly; the kernel-space binding must signal the
// original daemon thread (an extra context switch), which is the
// application-visible difference the paper measures with RL and SOR.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "orca/object.h"
#include "panda/panda.h"
#include "sim/co.h"
#include "sim/sync.h"

namespace orca {

using amoeba::NodeId;
using amoeba::Thread;

class Rts;

/// An Orca process: a thread on some node with access to that node's RTS.
/// `work(t)` charges application compute (preemptible at user priority).
class Process {
 public:
  Process(Rts& rts, Thread& thread) : rts_(&rts), thread_(&thread) {}

  [[nodiscard]] Rts& rts() noexcept { return *rts_; }
  [[nodiscard]] Thread& thread() noexcept { return *thread_; }
  [[nodiscard]] NodeId node() const noexcept;

  /// Consume `amount` of CPU as application compute.
  [[nodiscard]] sim::Co<void> work(sim::Time amount);

  /// Invoke `op` on `obj` with `args`; blocks per guard semantics.
  [[nodiscard]] sim::Co<net::Payload> invoke(const ObjHandle& obj, OpId op,
                                             net::Payload args = {});

 private:
  Rts* rts_;
  Thread* thread_;
};

class Rts {
 public:
  Rts(panda::Panda& panda, const TypeRegistry& registry);

  Rts(const Rts&) = delete;
  Rts& operator=(const Rts&) = delete;

  /// Install handlers on the Panda instance. Call before Panda::start().
  void attach();

  [[nodiscard]] panda::Panda& panda() noexcept { return *panda_; }
  [[nodiscard]] NodeId node() const noexcept { return panda_->node(); }
  [[nodiscard]] const TypeRegistry& registry() const noexcept { return *registry_; }

  /// Create a shared object. The RTS picks the placement from the hints:
  /// replicate when the expected read fraction is high, else keep a single
  /// copy on this node. Replicated creation is broadcast so every node
  /// instantiates the replica before any subsequent write reaches it.
  [[nodiscard]] sim::Co<ObjHandle> create_object(Thread& self, TypeId type,
                                                 net::Payload init,
                                                 ObjectHints hints = {});

  /// Invoke an operation; blocks until the guard holds and the operation has
  /// executed (for replicated writes: until the local replica applied it).
  [[nodiscard]] sim::Co<net::Payload> invoke(Thread& self, const ObjHandle& obj,
                                             OpId op, net::Payload args);

  /// Fork an Orca process on this node.
  Thread& fork(std::string name, std::function<sim::Co<void>(Process&)> body);

  // Statistics for the evaluation section.
  [[nodiscard]] std::uint64_t local_reads() const noexcept { return local_reads_; }
  [[nodiscard]] std::uint64_t group_writes() const noexcept { return group_writes_; }
  [[nodiscard]] std::uint64_t remote_invocations() const noexcept {
    return remote_invocations_;
  }
  [[nodiscard]] std::uint64_t continuations_created() const noexcept {
    return continuations_created_;
  }
  [[nodiscard]] std::uint64_t continuations_resumed() const noexcept {
    return continuations_resumed_;
  }
  /// Unguarded reads on remote single-copy objects served by a one-sided
  /// bypass READ instead of an RPC (kBypass binding only; 0 otherwise).
  [[nodiscard]] std::uint64_t one_sided_reads() const noexcept {
    return one_sided_reads_;
  }

 private:
  enum class GroupKind : std::uint8_t { kCreate = 1, kWrite = 2 };
  enum class RpcKind : std::uint8_t { kInvoke = 1 };
  enum class ReplyStatus : std::uint8_t { kOk = 1, kNoSuchObject = 2 };

  struct Replica {
    TypeId type = 0;
    std::unique_ptr<ObjectState> state;
    // Blocked invocations (guards pending), FIFO. Entries are co-owned by
    // the queue and (for local invocations) the waiting coroutine.
    struct Blocked {
      OpId op = 0;
      net::Payload args;
      bool done = false;
      net::Payload result;
      sim::CondVar* wake = nullptr;             // local waiter
      std::optional<panda::RpcTicket> ticket;   // remote continuation
      NodeId origin = 0;                        // replicated guarded write:
      std::uint64_t origin_wseq = 0;            //   who to report the result to
    };
    std::deque<std::shared_ptr<Blocked>> blocked;
  };

  struct PendingWrite {
    bool done = false;
    net::Payload result;
    sim::CondVar* wake = nullptr;
  };

  [[nodiscard]] sim::Co<void> on_group(NodeId sender, std::uint32_t seqno,
                                       net::Payload msg);
  [[nodiscard]] sim::Co<void> on_rpc_upcall(Thread& upcall,
                                            panda::RpcTicket ticket,
                                            net::Payload request);

  /// Apply `op` to a replica (charging its cost), then re-evaluate blocked
  /// operations whose guards may have become true. Replies to any remote
  /// continuations from the *current* thread (the paper's optimization).
  [[nodiscard]] sim::Co<net::Payload> apply_and_wake(Thread& ctx, ObjId id,
                                                     Replica& replica, OpId op,
                                                     const net::Payload& args);
  [[nodiscard]] sim::Co<void> reevaluate_blocked(Thread& ctx, ObjId id,
                                                 Replica& replica);

  [[nodiscard]] Replica& replica(ObjId id);
  [[nodiscard]] sim::Co<void> wait_for_replica(ObjId id);

  /// Serve a one-sided READ against this node's objects (installed as the
  /// bypass read hook; runs NIC-side with no local thread or CPU charge).
  /// `addr` is the ObjId; `args` is [u32 opid][op args]. Reply:
  /// [u8 ok][result] — ok=0 when the object is unknown here.
  [[nodiscard]] net::Payload serve_one_sided_read(std::uint64_t addr,
                                                  const net::Payload& args);

  panda::Panda* panda_;
  const TypeRegistry* registry_;
  Thread* group_upcall_thread_ = nullptr;
  std::unordered_map<ObjId, Replica> objects_;
  sim::CondVar replica_created_;
  std::uint32_t next_obj_ = 1;
  std::uint64_t next_write_ = 1;
  std::map<std::uint64_t, PendingWrite*> pending_writes_;
  std::uint64_t local_reads_ = 0;
  std::uint64_t group_writes_ = 0;
  std::uint64_t remote_invocations_ = 0;
  std::uint64_t continuations_created_ = 0;
  std::uint64_t continuations_resumed_ = 0;
  std::uint64_t one_sided_reads_ = 0;
};

}  // namespace orca
