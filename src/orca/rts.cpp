#include "orca/rts.h"

#include <utility>

#include "bypass/verbs.h"
#include "sim/require.h"

namespace orca {

using panda::RpcStatus;
using panda::RpcTicket;
using sim::Mechanism;
using sim::Prio;

NodeId Process::node() const noexcept { return rts_->node(); }

sim::Co<void> Process::work(sim::Time amount) {
  co_await rts_->panda().kernel().compute(*thread_, amount);
}

sim::Co<net::Payload> Process::invoke(const ObjHandle& obj, OpId op,
                                      net::Payload args) {
  co_return co_await rts_->invoke(*thread_, obj, op, std::move(args));
}

Rts::Rts(panda::Panda& panda, const TypeRegistry& registry)
    : panda_(&panda), registry_(&registry), replica_created_(panda.sim()) {}

void Rts::attach() {
  panda_->set_group_handler(
      [this](Thread& upcall, NodeId sender, std::uint32_t seqno,
             net::Payload msg) -> sim::Co<void> {
        group_upcall_thread_ = &upcall;
        co_await on_group(sender, seqno, std::move(msg));
      });
  panda_->set_rpc_handler(
      [this](Thread& upcall, RpcTicket ticket, net::Payload req) -> sim::Co<void> {
        co_await on_rpc_upcall(upcall, ticket, std::move(req));
      });
  if (auto* dev = panda_->bypass_device()) {
    // Kernel-bypass binding: expose this RTS through a registered region so
    // peers can fetch unguarded reads with a one-sided READ. The RTS
    // registers first, so its rkey is the well-known region_rkey(node, 1).
    const bypass::RegionHandle mr = dev->register_region(4096);
    dev->set_read_hook(mr.rkey,
                       [this](std::uint64_t addr, std::uint32_t,
                              const net::Payload& args) -> net::Payload {
                         return serve_one_sided_read(addr, args);
                       });
  }
}

Thread& Rts::fork(std::string name, std::function<sim::Co<void>(Process&)> body) {
  return panda_->kernel().start_thread(
      std::move(name),
      [this, body = std::move(body)](Thread& self) -> sim::Co<void> {
        Process process(*this, self);
        co_await body(process);
      });
}

Rts::Replica& Rts::replica(ObjId id) {
  const auto it = objects_.find(id);
  sim::require(it != objects_.end(), "Rts: unknown object");
  return it->second;
}

sim::Co<void> Rts::wait_for_replica(ObjId id) {
  while (!objects_.contains(id)) co_await replica_created_.wait();
}

sim::Co<ObjHandle> Rts::create_object(Thread& self, TypeId type, net::Payload init,
                                      ObjectHints hints) {
  const ObjId id = (static_cast<ObjId>(node()) << 32) | next_obj_++;
  if (hints.expected_read_fraction >= ObjectHints::kReplicateThreshold) {
    // Replicate: broadcast the creation so every node instantiates a copy
    // before any (totally ordered, hence later) write arrives.
    net::Writer w;
    w.u8(static_cast<std::uint8_t>(GroupKind::kCreate));
    w.u64(id);
    w.u32(type);
    w.payload(init);
    co_await panda_->group_send(self, w.take());
    co_await wait_for_replica(id);
    co_return ObjHandle(id, type, Placement::kReplicated, node());
  }
  Replica r;
  r.type = type;
  r.state = registry_->type(type).make_state(init);
  objects_.emplace(id, std::move(r));
  replica_created_.notify_all();
  co_return ObjHandle(id, type, Placement::kSingleCopy, node());
}

sim::Co<net::Payload> Rts::invoke(Thread& self, const ObjHandle& obj, OpId opid,
                                  net::Payload args) {
  const OpDef& op = registry_->type(obj.type).op(opid);

  if (obj.placement == Placement::kReplicated) {
    if (!op.is_write) {
      // Read-only on a replicated object: local, no communication.
      co_await wait_for_replica(obj.id);
      Replica& r = replica(obj.id);
      if (op.guard && !op.guard(*r.state, args)) {
        // Block locally; a later (broadcast) write re-evaluates the guard.
        sim::CondVar cv(panda_->sim());
        auto blocked = std::make_shared<Replica::Blocked>();
        blocked->op = opid;
        blocked->args = std::move(args);
        blocked->wake = &cv;
        r.blocked.push_back(blocked);
        while (!blocked->done) co_await cv.wait();
        co_return std::move(blocked->result);
      }
      ++local_reads_;
      if (op.cost > 0) {
        co_await panda_->kernel().charge(Prio::kUser,
                                         Mechanism::kProtocolProcessing, op.cost);
      }
      co_return op.apply(*r.state, args);
    }
    // Write on a replicated object: totally-ordered broadcast; every replica
    // applies it; we wait until *our* replica has (guard included).
    ++group_writes_;
    const std::uint64_t wseq = next_write_++;
    sim::CondVar cv(panda_->sim());
    PendingWrite pending;
    pending.wake = &cv;
    pending_writes_.emplace(wseq, &pending);
    net::Writer w;
    w.u8(static_cast<std::uint8_t>(GroupKind::kWrite));
    w.u64(obj.id);
    w.u32(opid);
    w.u32(node());
    w.u64(wseq);
    w.payload(args);
    co_await panda_->group_send(self, w.take());
    while (!pending.done) co_await cv.wait();
    pending_writes_.erase(wseq);
    co_return std::move(pending.result);
  }

  // Single-copy object.
  if (obj.owner == node()) {
    co_await wait_for_replica(obj.id);
    Replica& r = replica(obj.id);
    if (op.guard && !op.guard(*r.state, args)) {
      sim::CondVar cv(panda_->sim());
      auto blocked = std::make_shared<Replica::Blocked>();
      blocked->op = opid;
      blocked->args = std::move(args);
      blocked->wake = &cv;
      r.blocked.push_back(blocked);
      while (!blocked->done) co_await cv.wait();
      co_return std::move(blocked->result);
    }
    if (!op.is_write) ++local_reads_;
    co_return co_await apply_and_wake(self, obj.id, r, opid, args);
  }

  // Unguarded read on a remote single-copy object over the bypass binding:
  // fetch the result with a one-sided READ — the owner's CPU never runs.
  // The operation cost is charged here (the reader computes on the fetched
  // bytes); the owner pays only the NIC's kRemoteAccess service time.
  if (auto* dev = panda_->bypass_device();
      dev != nullptr && !op.is_write && !op.guard) {
    ++one_sided_reads_;
    net::Writer w;
    w.u32(opid);
    w.payload(args);
    const bypass::Completion c = co_await dev->read(
        obj.owner, bypass::region_rkey(obj.owner, 1), obj.id, 64, w.take());
    if (op.cost > 0) {
      co_await panda_->kernel().charge(Prio::kUser,
                                       Mechanism::kProtocolProcessing, op.cost);
    }
    net::Reader r(c.payload);
    sim::require(r.u8() == 1, "Rts::invoke: one-sided read missed at owner");
    co_return r.rest();
  }

  // Remote invocation via Panda RPC.
  ++remote_invocations_;
  net::Writer w;
  w.u8(static_cast<std::uint8_t>(RpcKind::kInvoke));
  w.u64(obj.id);
  w.u32(opid);
  w.payload(args);
  panda::RpcReply reply = co_await panda_->rpc(self, obj.owner, w.take());
  sim::require(reply.status == RpcStatus::kOk,
               "Rts::invoke: remote invocation failed (op " +
                   registry_->type(obj.type).op(opid).name + " on node " +
                   std::to_string(node()) + " -> owner " +
                   std::to_string(obj.owner) + ")");
  net::Reader r(reply.reply);
  const auto status = static_cast<ReplyStatus>(r.u8());
  sim::require(status == ReplyStatus::kOk,
               "Rts::invoke: no such object at owner");
  co_return r.rest();
}

sim::Co<net::Payload> Rts::apply_and_wake(Thread& ctx, ObjId id, Replica& r,
                                          OpId opid, const net::Payload& args) {
  const OpDef& op = registry_->type(r.type).op(opid);
  if (op.cost > 0) {
    co_await panda_->kernel().charge(Prio::kUserHigh,
                                     Mechanism::kProtocolProcessing, op.cost);
  }
  net::Payload result = op.apply(*r.state, args);
  if (op.is_write && !r.blocked.empty()) {
    co_await reevaluate_blocked(ctx, id, r);
  }
  co_return result;
}

sim::Co<void> Rts::reevaluate_blocked(Thread& ctx, ObjId id, Replica& r) {
  // Repeatedly scan the FIFO queue; applying one blocked operation can make
  // another guard true.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = r.blocked.begin(); it != r.blocked.end(); ++it) {
      const OpDef& op = registry_->type(r.type).op((*it)->op);
      if (op.guard && !op.guard(*r.state, (*it)->args)) continue;
      std::shared_ptr<Replica::Blocked> entry = *it;
      r.blocked.erase(it);
      if (op.cost > 0) {
        co_await panda_->kernel().charge(Prio::kUserHigh,
                                         Mechanism::kProtocolProcessing, op.cost);
      }
      net::Payload result = op.apply(*r.state, entry->args);
      if (entry->ticket.has_value()) {
        // A parked remote invocation: reply from *this* thread — the Orca
        // continuation optimization. Cheap on the user-space binding; the
        // kernel-space binding pays the signal + context switch here.
        ++continuations_resumed_;
        net::Writer w;
        w.u8(static_cast<std::uint8_t>(ReplyStatus::kOk));
        w.payload(result);
        co_await panda_->rpc_reply(ctx, *entry->ticket, w.take());
      } else if (entry->wake != nullptr) {
        entry->done = true;
        entry->result = std::move(result);
        entry->wake->notify_all();
      } else if (entry->origin_wseq != 0 && entry->origin == node()) {
        // A replicated guarded write originated here: report its result.
        const auto pit = pending_writes_.find(entry->origin_wseq);
        if (pit != pending_writes_.end()) {
          pit->second->done = true;
          pit->second->result = std::move(result);
          pit->second->wake->notify_all();
        }
      }
      progress = true;
      break;  // iterator invalidated; rescan
    }
  }
  (void)id;
}

net::Payload Rts::serve_one_sided_read(std::uint64_t addr,
                                       const net::Payload& args) {
  net::Writer w;
  const auto it = objects_.find(addr);
  if (it == objects_.end()) {
    w.u8(0);
    return w.take();
  }
  Replica& r = it->second;
  net::Reader rd(args);
  const OpId opid = rd.u32();
  const OpDef& op = registry_->type(r.type).op(opid);
  sim::require(!op.is_write && !op.guard,
               "Rts: one-sided read on a write/guarded op");
  w.u8(1);
  w.payload(op.apply(*r.state, rd.rest()));
  return w.take();
}

sim::Co<void> Rts::on_group(NodeId sender, std::uint32_t seqno, net::Payload msg) {
  (void)seqno;
  net::Reader rd(msg);
  const auto kind = static_cast<GroupKind>(rd.u8());
  switch (kind) {
    case GroupKind::kCreate: {
      const ObjId id = rd.u64();
      const TypeId type = rd.u32();
      net::Payload init = rd.rest();
      Replica r;
      r.type = type;
      r.state = registry_->type(type).make_state(init);
      objects_.emplace(id, std::move(r));
      replica_created_.notify_all();
      break;
    }
    case GroupKind::kWrite: {
      const ObjId id = rd.u64();
      const OpId opid = rd.u32();
      const NodeId origin = rd.u32();
      const std::uint64_t wseq = rd.u64();
      net::Payload args = rd.rest();
      Replica& r = replica(id);
      const OpDef& op = registry_->type(r.type).op(opid);
      Thread* upcall = group_upcall_thread_;
      sim::require(upcall != nullptr, "Rts::on_group: no upcall thread");
      if (op.guard && !op.guard(*r.state, args)) {
        auto blocked = std::make_shared<Replica::Blocked>();
        blocked->op = opid;
        blocked->args = std::move(args);
        blocked->origin = origin;
        blocked->origin_wseq = wseq;
        r.blocked.push_back(std::move(blocked));
        co_return;
      }
      net::Payload result = co_await apply_and_wake(*upcall, id, r, opid, args);
      if (origin == node()) {
        const auto it = pending_writes_.find(wseq);
        if (it != pending_writes_.end()) {
          it->second->done = true;
          it->second->result = std::move(result);
          it->second->wake->notify_all();
        }
      }
      break;
    }
  }
}

sim::Co<void> Rts::on_rpc_upcall(Thread& upcall, RpcTicket ticket,
                                 net::Payload request) {
  net::Reader rd(request);
  const auto kind = static_cast<RpcKind>(rd.u8());
  sim::require(kind == RpcKind::kInvoke, "Rts: unknown RPC kind");
  const ObjId id = rd.u64();
  const OpId opid = rd.u32();
  net::Payload args = rd.rest();

  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    net::Writer w;
    w.u8(static_cast<std::uint8_t>(ReplyStatus::kNoSuchObject));
    co_await panda_->rpc_reply(upcall, ticket, w.take());
    co_return;
  }
  Replica& r = it->second;
  const OpDef& op = registry_->type(r.type).op(opid);
  if (op.guard && !op.guard(*r.state, args)) {
    // Queue a continuation at the object instead of blocking the server
    // thread; the reply will be sent by whichever thread makes the guard
    // true (§2: "queues a continuation at the object").
    ++continuations_created_;
    auto blocked = std::make_shared<Replica::Blocked>();
    blocked->op = opid;
    blocked->args = std::move(args);
    blocked->ticket = ticket;
    r.blocked.push_back(std::move(blocked));
    co_return;  // no reply yet
  }
  net::Payload result = co_await apply_and_wake(upcall, id, r, opid, args);
  net::Writer w;
  w.u8(static_cast<std::uint8_t>(ReplyStatus::kOk));
  w.payload(result);
  co_await panda_->rpc_reply(upcall, ticket, w.take());
}

}  // namespace orca
