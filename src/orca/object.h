// Orca shared data-objects: types, operations, guards, placement hints.
//
// An Orca object is an instance of an abstract data type whose operations
// execute indivisibly. The runtime may keep an object on one processor
// (operations from elsewhere become RPCs) or replicate it on all processors
// (read operations run locally; write operations are broadcast with total
// ordering so all copies stay consistent). Operations may carry a guard: the
// operation blocks until the guard holds.
//
// Application code defines a state class, registers operations on an
// ObjectType, and interacts with objects exclusively through Rts::invoke.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/buffer.h"
#include "sim/require.h"
#include "sim/time.h"

namespace orca {

/// Base class for application-defined object state. Lives per replica.
class ObjectState {
 public:
  virtual ~ObjectState() = default;
};

using TypeId = std::uint32_t;
using OpId = std::uint32_t;
using ObjId = std::uint64_t;

/// One operation of an abstract data type.
struct OpDef {
  std::string name;
  /// Write operations mutate state; on replicated objects they are
  /// broadcast. Read operations run on the local replica without
  /// communication.
  bool is_write = false;
  /// Optional guard: the operation may not start until this holds.
  std::function<bool(const ObjectState&, const net::Payload& args)> guard;
  /// The operation body; returns the marshalled result.
  std::function<net::Payload(ObjectState&, const net::Payload& args)> apply;
  /// Simulated CPU cost of executing the operation body.
  sim::Time cost = sim::usec(5);
};

/// An abstract data type: a state factory plus its operations.
class ObjectType {
 public:
  ObjectType(std::string name,
             std::function<std::unique_ptr<ObjectState>(const net::Payload& init)>
                 factory)
      : name_(std::move(name)), factory_(std::move(factory)) {}

  OpId add_operation(OpDef op) {
    ops_.push_back(std::move(op));
    return static_cast<OpId>(ops_.size() - 1);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const OpDef& op(OpId id) const {
    sim::require(id < ops_.size(), "ObjectType: unknown operation");
    return ops_[id];
  }
  [[nodiscard]] std::size_t op_count() const noexcept { return ops_.size(); }
  [[nodiscard]] std::unique_ptr<ObjectState> make_state(
      const net::Payload& init) const {
    return factory_(init);
  }

 private:
  std::string name_;
  std::function<std::unique_ptr<ObjectState>(const net::Payload&)> factory_;
  std::vector<OpDef> ops_;
};

/// The shared catalogue of types — identical on every node, mirroring an
/// Orca program whose compiled code is the same everywhere.
class TypeRegistry {
 public:
  TypeId register_type(ObjectType type) {
    types_.push_back(std::move(type));
    return static_cast<TypeId>(types_.size() - 1);
  }
  [[nodiscard]] const ObjectType& type(TypeId id) const {
    sim::require(id < types_.size(), "TypeRegistry: unknown type");
    return types_[id];
  }

 private:
  std::vector<ObjectType> types_;
};

/// Compiler-derived placement hints (Bal & Kaashoek, OOPSLA'93): the RTS
/// replicates objects expected to be read frequently and keeps
/// low-read-ratio objects on a single processor.
struct ObjectHints {
  /// Expected fraction of operations that are reads.
  double expected_read_fraction = 0.5;
  /// Threshold above which the RTS replicates.
  static constexpr double kReplicateThreshold = 0.75;
};

enum class Placement : std::uint8_t { kReplicated, kSingleCopy };

/// A location-transparent object reference, passable between processes.
struct ObjHandle {
  ObjHandle() = default;
  ObjHandle(ObjId i, TypeId t, Placement p, std::uint32_t o)
      : id(i), type(t), placement(p), owner(o) {}
  ObjId id = 0;
  TypeId type = 0;
  Placement placement = Placement::kSingleCopy;
  std::uint32_t owner = 0;  // meaningful for single-copy objects
};

}  // namespace orca
