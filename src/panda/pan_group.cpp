#include "panda/pan_group.h"

#include <algorithm>
#include <utility>

#include "metrics/registry.h"
#include "sim/require.h"
#include "trace/tracer.h"

namespace panda {

using amoeba::CostModel;
using sim::Mechanism;
using sim::Prio;

namespace {
/// User data per sequencing unit: unit (40-byte group header + chunk) must
/// fit PanSys::kFragmentData so one unit is one FLIP packet.
constexpr std::size_t kUnitData = 1400;
constexpr sim::Time kSendRetryInterval = sim::msec(100);
constexpr sim::Time kGapRequestDelay = sim::msec(5);
constexpr sim::Time kLagWatchdogInterval = sim::msec(200);
constexpr sim::Time kPaxTickInterval = sim::msec(10);
}  // namespace

net::Payload PanGroup::make_wire(MsgType type, const Unit& unit,
                                 std::uint32_t horizon) {
  net::Writer& w = wire_writer_;
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(0);
  w.u16(unit.frag_idx);
  w.u16(unit.frag_count);
  w.u16(0);
  w.u32(unit.seqno);
  w.u32(unit.sender);
  w.u32(unit.msg_id);
  w.u32(horizon);
  // Pad to Panda's 40-byte group header (§4.3: "small headers of 40 bytes").
  w.zeros(kernel_->costs().panda_group_header - w.size());
  w.payload(unit.payload);
  return w.take();
}

PanGroup::Unit PanGroup::parse_wire(const net::Payload& p,
                                    std::size_t header_bytes,
                                    std::uint8_t& type_out,
                                    std::uint32_t& horizon_out) {
  net::Reader r(p);
  type_out = r.u8();
  (void)r.u8();
  Unit u;
  u.frag_idx = r.u16();
  u.frag_count = r.u16();
  (void)r.u16();
  u.seqno = r.u32();
  u.sender = r.u32();
  u.msg_id = r.u32();
  horizon_out = r.u32();
  u.payload = p.slice(header_bytes, p.size() - header_bytes);
  return u;
}

void PanGroup::start() {
  sys_->register_handler(PanSys::Module::kGroup,
                         [this](SysMsg m) { return on_group_message(std::move(m)); });
  if (config_->replicated_sequencer) {
    paxos::Config pc;
    pc.replicas = config_->replica_set();
    pc.self = kernel_->node();
    pc.members = config_->nodes;
    pc.group = 0;
    pax_ = std::make_unique<paxos::Participant>(kernel_->sim(), std::move(pc));
    if (pax_->is_replica()) {
      // Every replica runs the Paxos core in a sequencer thread: each wire
      // pays the daemon -> sequencer thread switch, the user-space cost the
      // paper measures (§4.3) — now on the whole replica set.
      seq_thread_ = &kernel_->start_thread(
          "pan_group-sequencer",
          [this](Thread& self) { return sequencer_loop(self); });
      sys_->set_sequencer_thread(*seq_thread_);
    }
    return;
  }
  if (is_sequencer()) {
    seq_ = std::make_unique<SequencerState>();
    seq_thread_ = &kernel_->start_thread(
        "pan_group-sequencer",
        [this](Thread& self) { return sequencer_loop(self); });
    sys_->set_sequencer_thread(*seq_thread_);
  }
}

sim::Co<void> PanGroup::send(Thread& self, net::Payload msg) {
  if (pax_) {
    co_await paxos_submit(self, paxos::CmdKind::kApp, std::move(msg));
    co_return;
  }
  const CostModel& c = kernel_->costs();
  const sim::Time t0 = kernel_->sim().now();
  // One fragmentation-layer pass at the sending member only: "the user-space
  // group protocol only incurs a 20 us overhead" (§4.3).
  co_await kernel_->charge(Prio::kUserHigh, Mechanism::kFragmentationLayer,
                           c.user_fragmentation_layer);
  co_await kernel_->charge(Prio::kUserHigh, Mechanism::kProtocolProcessing,
                           c.group_protocol_processing);

  const std::uint32_t msg_id = next_msg_id_++;
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kGroupSend,
               (static_cast<std::uint64_t>(kernel_->node()) << 32) | msg_id, 0,
               msg.size());
  }
  const std::size_t total = msg.size();
  const auto frag_count = static_cast<std::uint16_t>(
      total == 0 ? 1 : (total + kUnitData - 1) / kUnitData);
  const bool bb = total > config_->bb_threshold;
  if (bb) ++bb_sends_;

  PendingSend pending;
  pending.thread = &self;
  pending.bb = bb;
  sends_in_flight_.emplace(msg_id, &pending);

  std::size_t offset = 0;
  for (std::uint16_t idx = 0; idx < frag_count; ++idx) {
    const std::size_t chunk = std::min(kUnitData, total - offset);
    Unit u;
    u.sender = kernel_->node();
    u.msg_id = msg_id;
    u.frag_idx = idx;
    u.frag_count = frag_count;
    u.payload = msg.slice(offset, chunk);
    offset += chunk;

    const MsgType type = bb ? MsgType::kBody : MsgType::kReq;
    net::Payload wire = make_wire(type, u, next_expected_ - 1);
    pending.wires.push_back(wire);

    if (bb) {
      // BB: broadcast the body; everyone (incl. the sequencer) stashes it.
      bb_bodies_.emplace(UnitKey{u.sender, u.msg_id, u.frag_idx}, u.payload);
      if (is_sequencer()) {
        co_await sys_->inject_sequencer(SysMsg(kernel_->node(), wire));
        co_await sys_->multicast_unit(self, PanSys::Module::kGroup, wire);
      } else {
        co_await sys_->multicast_unit(self, PanSys::Module::kGroup, wire);
      }
    } else if (is_sequencer()) {
      // Local hand-off to our own sequencer thread.
      co_await sys_->inject_sequencer(SysMsg(kernel_->node(), wire));
    } else {
      co_await sys_->unicast_unit(self, config_->sequencer,
                                  PanSys::Module::kSequencer, wire);
    }
  }

  if (!is_sequencer()) {
    pending.retry = kernel_->sim().after(
        kSendRetryInterval, [this, msg_id] { send_retry_tick(msg_id); });
  }
  // Sleep on the condition variable until the daemon notifies us; both the
  // sleep and the wake cross the user/kernel boundary (§4.3).
  co_await kernel_->syscall_enter();
  while (!pending.done) co_await self.block();
  co_await kernel_->syscall_return(c.panda_stack_depth);
  sends_in_flight_.erase(msg_id);
  m_sends_.add();
  m_send_latency_.record(static_cast<std::uint64_t>(kernel_->sim().now() - t0));
}

void PanGroup::send_retry_tick(std::uint32_t msg_id) {
  if (crashed_) return;
  // The retry is cancelled when the send completes, so a live fire always
  // finds an unfinished send.
  const auto it = sends_in_flight_.find(msg_id);
  if (it == sends_in_flight_.end()) return;
  PendingSend& pending = *it->second;
  Thread* daemon = sys_->daemon_thread();
  if (pax_) {
    // After repeated silence a plain member escalates to multicast: any
    // replica forwards to the leader it believes in, and the escalations
    // double as failure evidence. Replicas never escalate — they feed their
    // own core, which relays.
    const bool esc = !pax_->is_replica() && pending.retries >= 2;
    sim::spawn(pax_send_request(*daemon, pending, msg_id, esc));
  } else {
    for (const net::Payload& wire : pending.wires) {
      if (pending.bb) {
        sim::spawn(sys_->multicast_unit(*daemon, PanSys::Module::kGroup, wire));
      } else {
        sim::spawn(sys_->unicast_unit(*daemon, config_->sequencer,
                                      PanSys::Module::kSequencer, wire));
      }
    }
  }
  ++pending.retries;
  m_retransmits_.add();
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kRetransmit,
               (static_cast<std::uint64_t>(kernel_->node()) << 32) | msg_id,
               trace::kReasonGroupSendRetry);
  }
  // A replicated group repairs itself, so its backoff caps at 4x — the
  // classic 16x cap would let a sender sleep past a bounded failover window
  // after an unlucky run of drops.
  const sim::Time backoff =
      kSendRetryInterval * (1LL << std::min(pending.retries, pax_ ? 2 : 4));
  pending.retry = kernel_->sim().after(
      backoff, [this, msg_id] { send_retry_tick(msg_id); });
}

// --- Sequencer thread --------------------------------------------------------

sim::Co<void> PanGroup::sequencer_loop(Thread& self) {
  for (;;) {
    SysMsg msg = co_await sys_->seq_receive(self);
    if (pax_) {
      co_await pax_seq_handle(self, std::move(msg));
    } else {
      co_await seq_handle(self, std::move(msg));
    }
  }
}

sim::Co<void> PanGroup::seq_handle(Thread& self, SysMsg msg) {
  if (crashed_) co_return;  // sequencer wires bypass on_group_message
  const CostModel& c = kernel_->costs();
  co_await kernel_->charge(Prio::kUserHigh, Mechanism::kProtocolProcessing,
                           c.group_protocol_processing);
  std::uint8_t type_raw = 0;
  std::uint32_t horizon = 0;
  Unit unit = parse_wire(msg.payload, c.panda_group_header, type_raw, horizon);
  SequencerState& seq = *seq_;
  seq.horizon[unit.sender] = std::max(seq.horizon[unit.sender], horizon);

  switch (static_cast<MsgType>(type_raw)) {
    case MsgType::kReq:
    case MsgType::kBody: {
      // Dedupe at message granularity: one accept per message.
      const UnitKey msg_key{unit.sender, unit.msg_id, 0};
      if (const auto it = seq.sequenced.find(msg_key); it != seq.sequenced.end()) {
        // Duplicate. Still held pending (seqno 0): the real accept is
        // coming, drop. Otherwise the sender missed its accept. A BB sender
        // still has the body, so a small accept-ref suffices (a full
        // retransmission would feed the congestion that delayed the accept);
        // a PB sender does not, so it gets the full message back — or
        // nothing, if the slot was already trimmed (every horizon, the
        // sender's included, has passed it).
        if (it->second == 0) co_return;
        const bool was_bb = static_cast<MsgType>(type_raw) == MsgType::kBody;
        if (auto* tr = kernel_->sim().tracer()) {
          tr->record(kernel_->node(), trace::EventKind::kRetransmit,
                     it->second, trace::kReasonSequencerResend);
        }
        if (was_bb) {
          Unit ref;
          ref.seqno = it->second;
          ref.sender = unit.sender;
          ref.msg_id = unit.msg_id;
          ref.frag_count = unit.frag_count;
          net::Payload wire = make_wire(MsgType::kAcceptRef, ref, 0);
          co_await sys_->unicast_unit(self, unit.sender, PanSys::Module::kGroup,
                                      std::move(wire));
        } else {
          for (const Unit& h : seq.history) {
            if (h.seqno == it->second) {
              net::Payload wire = make_wire(MsgType::kRetrans, h, 0);
              co_await sys_->unicast(self, unit.sender, PanSys::Module::kGroup,
                                     std::move(wire));
              break;
            }
          }
        }
        co_return;
      }
      if (static_cast<MsgType>(type_raw) == MsgType::kReq) {
        // PB: always a single unit (small message).
        co_await seq_sequence(self, std::move(unit), /*bb=*/false);
        break;
      }
      // BB: collect the broadcast body fragments; sequence once complete.
      // "the sequencer is written to order group messages at the fragment
      // level" — it tracks fragments without reassembling until it must
      // store the message in its history.
      bb_bodies_.emplace(UnitKey{unit.sender, unit.msg_id, unit.frag_idx},
                         unit.payload);
      bool complete = true;
      for (std::uint16_t i = 0; i < unit.frag_count; ++i) {
        if (!bb_bodies_.contains(UnitKey{unit.sender, unit.msg_id, i})) {
          complete = false;
          break;
        }
      }
      if (!complete) break;
      net::Writer& assembled = assembled_writer_;
      for (std::uint16_t i = 0; i < unit.frag_count; ++i) {
        const UnitKey k{unit.sender, unit.msg_id, i};
        assembled.payload(bb_bodies_.at(k));
        bb_bodies_.erase(k);
      }
      Unit whole;
      whole.sender = unit.sender;
      whole.msg_id = unit.msg_id;
      whole.frag_idx = 0;
      whole.frag_count = unit.frag_count;
      whole.payload = assembled.take();
      co_await seq_sequence(self, std::move(whole), /*bb=*/true);
      break;
    }
    case MsgType::kRetReq: {
      ++retreqs_;
      for (const Unit& h : seq.history) {
        if (h.seqno == unit.seqno) {
          if (auto* tr = kernel_->sim().tracer()) {
            tr->record(kernel_->node(), trace::EventKind::kRetransmit,
                       h.seqno, trace::kReasonSequencerResend);
          }
          net::Payload wire = make_wire(MsgType::kRetrans, h, 0);
          co_await sys_->unicast(self, unit.sender, PanSys::Module::kGroup,
                                 std::move(wire));
          break;
        }
      }
      break;
    }
    case MsgType::kStatus:
      seq_trim();
      co_await seq_drain(self);
      break;
    default:
      break;
  }
}

sim::Co<void> PanGroup::seq_sequence(Thread& self, Unit unit, bool bb) {
  SequencerState& seq = *seq_;
  seq_trim();  // piggybacked horizons may already allow progress
  if (seq.history.size() >= config_->group_history) {
    // The seqno-0 dedup entry makes retries of the held message no-ops.
    seq.sequenced[UnitKey{unit.sender, unit.msg_id, 0}] = 0;
    unit.pending_bb = bb;
    seq.pending.push_back(std::move(unit));
    if (!seq.status_round_active) {
      seq.status_round_active = true;
      ++status_rounds_;
      seq.horizon[kernel_->node()] = next_expected_ - 1;
      Unit probe;
      probe.sender = kernel_->node();
      net::Payload wire = make_wire(MsgType::kStatusReq, probe, 0);
      co_await sys_->multicast_unit(self, PanSys::Module::kGroup, wire);
      // Our own horizon may be enough (e.g. a single-member group).
      seq_trim();
      co_await seq_drain(self);
    }
    co_return;
  }
  unit.seqno = seq.next_seqno++;
  unit.pending_bb = bb;
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kSeqnoAssign, unit.seqno,
               unit.sender, unit.msg_id);
  }
  seq.sequenced[UnitKey{unit.sender, unit.msg_id, 0}] = unit.seqno;
  seq.history.push_back(unit);
  ++seq.total_sequenced;
  seq.last_progress = kernel_->sim().now();
  co_await seq_emit(self, unit, bb);
  arm_lag_watchdog();
}

void PanGroup::arm_lag_watchdog() {
  if (seq_->lag_probe.active()) return;
  seq_->lag_probe =
      kernel_->sim().after(kLagWatchdogInterval, [this] { lag_watchdog_tick(); });
}

void PanGroup::lag_watchdog_tick() {
  SequencerState& seq = *seq_;
  // Only probe once sequencing has gone quiet: while traffic flows, the
  // members' own gap machinery recovers faster and probe traffic would eat
  // into a saturated wire.
  if (kernel_->sim().now() - seq.last_progress < kLagWatchdogInterval) {
    seq.lag_probe =
        kernel_->sim().after(kLagWatchdogInterval, [this] { lag_watchdog_tick(); });
    return;
  }
  const std::uint32_t target = seq.next_seqno - 1;
  bool lagging = false;
  Thread* daemon = sys_->daemon_thread();
  for (const NodeId member : config_->nodes) {
    const std::uint32_t h = member == kernel_->node()
                                ? next_expected_ - 1
                                : [&] {
                                    const std::uint32_t* hm =
                                        seq.horizon.find(member);
                                    return hm ? *hm : 0u;
                                  }();
    if (h >= target) continue;
    lagging = true;
    // Resend the first message this member is missing (if still in history);
    // its own gap machinery recovers the rest once traffic flows again.
    for (const Unit& u : seq.history) {
      if (u.seqno == h + 1) {
        if (auto* tr = kernel_->sim().tracer()) {
          tr->record(kernel_->node(), trace::EventKind::kRetransmit, u.seqno,
                     trace::kReasonLagWatchdog);
        }
        net::Payload wire = make_wire(MsgType::kRetrans, u, 0);
        sim::spawn(sys_->unicast(*daemon, member, PanSys::Module::kGroup,
                                 std::move(wire)));
        break;
      }
    }
  }
  if (lagging) {
    // Refresh horizons for the next round.
    Unit probe;
    probe.sender = kernel_->node();
    net::Payload wire = make_wire(MsgType::kStatusReq, probe, 0);
    sim::spawn(sys_->multicast_unit(*daemon, PanSys::Module::kGroup,
                                    std::move(wire)));
    seq_->lag_probe =
        kernel_->sim().after(kLagWatchdogInterval, [this] { lag_watchdog_tick(); });
  }
}

sim::Co<void> PanGroup::seq_emit(Thread& self, const Unit& unit, bool bb) {
  // The multicast syscall (§4.3: "another to multicast the message including
  // the sequence number").
  if (bb) {
    Unit ref = unit;
    ref.payload = net::Payload();
    net::Payload wire = make_wire(MsgType::kAcceptRef, ref, 0);
    co_await sys_->multicast_unit(self, PanSys::Module::kGroup, wire);
  } else {
    net::Payload wire = make_wire(MsgType::kAcceptFull, unit, 0);
    co_await sys_->multicast_unit(self, PanSys::Module::kGroup, wire);
  }
  // Our NIC does not hear our own multicast: deliver locally. With an
  // application on this node "an extra thread runs to deliver the group
  // message to the user. Since this thread has run last to deliver the
  // previous message, a full context switch is needed" for the next request.
  // A *dedicated* sequencer delivers to nobody, so its context stays loaded.
  if (handler_ || !sends_in_flight_.empty()) {
    // kRetrans carries the full payload, so the daemon-side parse works for
    // both the PB and BB cases.
    net::Payload local = make_wire(MsgType::kRetrans, unit, 0);
    co_await sys_->inject_daemon(PanSys::Module::kGroup,
                                 SysMsg(kernel_->node(), std::move(local)));
  } else {
    co_await member_accept(unit);  // ordering bookkeeping only
  }
}

void PanGroup::seq_trim() {
  SequencerState& seq = *seq_;
  std::uint32_t min_horizon = next_expected_ - 1;
  for (const NodeId member : config_->nodes) {
    if (member == kernel_->node()) continue;
    const std::uint32_t* h = seq.horizon.find(member);
    if (!h) return;  // someone has never reported
    min_horizon = std::min(min_horizon, *h);
  }
  while (!seq.history.empty() && seq.history.front().seqno <= min_horizon) {
    // Keep the dedup entry past the trim (a retry may still be in flight;
    // without it the message would be sequenced twice); it ages out of the
    // bounded `retired` FIFO instead.
    seq.retired.push_back(UnitKey{seq.history.front().sender,
                                  seq.history.front().msg_id, 0});
    seq.history.pop_front();
  }
  const std::size_t keep =
      std::max<std::size_t>(256, 4 * config_->group_history);
  while (seq.retired.size() > keep) {
    seq.sequenced.erase(seq.retired.front());
    seq.retired.pop_front();
  }
}

sim::Co<void> PanGroup::seq_drain(Thread& self) {
  SequencerState& seq = *seq_;
  while (!seq.pending.empty() && seq.history.size() < config_->group_history) {
    seq.status_round_active = false;
    Unit unit = std::move(seq.pending.front());
    seq.pending.pop_front();
    const bool bb = unit.pending_bb;
    co_await seq_sequence(self, std::move(unit), bb);
  }
}

// --- Member side -------------------------------------------------------------

sim::Co<void> PanGroup::on_group_message(SysMsg msg) {
  if (crashed_) co_return;  // a crashed node's stack is silent
  const CostModel& c = kernel_->costs();
  co_await kernel_->charge(Prio::kUserHigh, Mechanism::kProtocolProcessing,
                           c.group_protocol_processing);
  std::uint8_t type_raw = 0;
  std::uint32_t horizon = 0;
  Unit unit = parse_wire(msg.payload, c.panda_group_header, type_raw, horizon);

  if (pax_) {
    switch (static_cast<MsgType>(type_raw)) {
      case MsgType::kPax:
        if (pax_->is_replica()) {
          // Replicas run the core in the sequencer thread (§4.3's switch).
          co_await sys_->inject_sequencer(std::move(msg));
        } else {
          paxos::Out out;
          pax_->on_wire(unit.payload, out);
          co_await pax_flush(*sys_->daemon_thread(), std::move(out));
        }
        break;
      case MsgType::kPaxDeliver:
        // Decision handed from our own sequencer thread; the kind rides the
        // (otherwise unused) horizon field.
        co_await deliver_paxos(unit.seqno, unit.sender,
                               static_cast<paxos::CmdKind>(horizon),
                               unit.msg_id, std::move(unit.payload));
        break;
      default:
        break;
    }
    co_return;
  }

  switch (static_cast<MsgType>(type_raw)) {
    case MsgType::kBody: {
      bb_bodies_.emplace(UnitKey{unit.sender, unit.msg_id, unit.frag_idx},
                         unit.payload);
      // A stashed accept may now be satisfiable.
      if (const auto pa = pending_accepts_.find({unit.sender, unit.msg_id});
          pa != pending_accepts_.end()) {
        bool complete = true;
        for (std::uint16_t i = 0; i < pa->second.frag_count; ++i) {
          if (!bb_bodies_.contains(UnitKey{unit.sender, unit.msg_id, i})) {
            complete = false;
            break;
          }
        }
        if (complete) {
          Unit ready = pa->second;
          pending_accepts_.erase(pa);
          net::Writer& assembled = assembled_writer_;
          for (std::uint16_t i = 0; i < ready.frag_count; ++i) {
            const UnitKey k{ready.sender, ready.msg_id, i};
            assembled.payload(bb_bodies_.at(k));
            bb_bodies_.erase(k);
          }
          ready.payload = assembled.take();
          co_await member_accept(std::move(ready));
        }
      }
      if (is_sequencer()) {
        // Hand the body to the sequencer thread as an implicit request.
        co_await sys_->inject_sequencer(std::move(msg));
      }
      break;
    }
    case MsgType::kAcceptFull:
    case MsgType::kRetrans:
      pending_accepts_.erase({unit.sender, unit.msg_id});
      co_await member_accept(std::move(unit));
      break;
    case MsgType::kAcceptRef: {
      bool complete = true;
      for (std::uint16_t i = 0; i < unit.frag_count; ++i) {
        if (!bb_bodies_.contains(UnitKey{unit.sender, unit.msg_id, i})) {
          complete = false;
          break;
        }
      }
      if (!complete) {
        // Remember the accept; the remaining body fragments complete it.
        pending_accepts_[{unit.sender, unit.msg_id}] = unit;
        break;
      }
      net::Writer& assembled = assembled_writer_;
      for (std::uint16_t i = 0; i < unit.frag_count; ++i) {
        const UnitKey k{unit.sender, unit.msg_id, i};
        assembled.payload(bb_bodies_.at(k));
        bb_bodies_.erase(k);
      }
      unit.payload = assembled.take();
      co_await member_accept(std::move(unit));
      break;
    }
    case MsgType::kStatusReq: {
      Unit status;
      status.sender = kernel_->node();
      Thread* daemon = sys_->daemon_thread();
      net::Payload wire = make_wire(MsgType::kStatus, status, next_expected_ - 1);
      if (is_sequencer()) {
        co_await sys_->inject_sequencer(SysMsg(kernel_->node(), std::move(wire)));
      } else {
        co_await sys_->unicast_unit(*daemon, config_->sequencer,
                                    PanSys::Module::kSequencer, wire);
      }
      break;
    }
    default:
      break;
  }
}

sim::Co<void> PanGroup::member_accept(Unit unit) {
  if (unit.seqno < next_expected_) co_return;  // duplicate
  out_of_order_.emplace(unit.seqno, std::move(unit));
  co_await deliver_ready();
  if (!out_of_order_.empty()) arm_gap_timer();
}

sim::Co<void> PanGroup::deliver_ready() {
  // Bookkeeping is synchronous; suspending charges (signals, upcalls) are
  // deferred so concurrent accepts cannot interleave deliveries.
  struct Delivery {
    Delivery(NodeId s, std::uint32_t n, net::Payload p, bool own)
        : sender(s), seqno(n), payload(std::move(p)), own_message(own) {}
    NodeId sender;
    std::uint32_t seqno;
    net::Payload payload;
    bool own_message;
    Thread* sender_thread = nullptr;
  };
  std::vector<Delivery> ready;

  while (true) {
    const auto it = out_of_order_.find(next_expected_);
    if (it == out_of_order_.end()) break;
    Unit unit = std::move(it->second);
    out_of_order_.erase(it);
    ++next_expected_;
    gap_probe_.cancel();

    const bool own = unit.sender == kernel_->node();
    Delivery d(unit.sender, unit.seqno, std::move(unit.payload), own);
    if (own) {
      const auto sit = sends_in_flight_.find(unit.msg_id);
      if (sit != sends_in_flight_.end() && !sit->second->done) {
        sit->second->done = true;
        sit->second->retry.cancel();
        d.sender_thread = sit->second->thread;
      }
    }
    m_deliveries_.add();
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kGroupDeliver, d.seqno,
                 d.sender, d.payload.size());
    }
    ready.push_back(std::move(d));
  }

  const CostModel& c = kernel_->costs();
  for (Delivery& d : ready) {
    if (d.sender_thread != nullptr) {
      // Notify the blocked sender: "the client thread is sleeping on a
      // condition variable and has to be notified by the daemon thread.
      // This requires a system call and causes a number of underflow traps"
      // (§4.3).
      co_await kernel_->signal_thread(*d.sender_thread, c.panda_stack_depth);
    }
    if (handler_) {
      if (auto* tr = kernel_->sim().tracer()) {
        tr->record(kernel_->node(), trace::EventKind::kUpcall, d.seqno, 2);
      }
      co_await handler_(*sys_->daemon_thread(), d.sender, d.seqno,
                        std::move(d.payload));
    }
  }
}

// --- Replicated-sequencer mode ----------------------------------------------

sim::Co<void> PanGroup::leave(Thread& self) {
  sim::require(pax_ != nullptr, "PanGroup::leave: replicated mode only");
  co_await paxos_submit(self, paxos::CmdKind::kLeave, net::Payload());
}

sim::Co<void> PanGroup::rejoin(Thread& self) {
  sim::require(pax_ != nullptr, "PanGroup::rejoin: replicated mode only");
  co_await paxos_submit(self, paxos::CmdKind::kJoin, net::Payload());
}

void PanGroup::crash() {
  crashed_ = true;
  gap_probe_.cancel();
  pax_tick_.cancel();
  if (seq_) seq_->lag_probe.cancel();
  for (auto& [id, p] : sends_in_flight_) p->retry.cancel();
  if (pax_) pax_->crash();
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kCrash);
  }
}

sim::Co<void> PanGroup::paxos_submit(Thread& self, paxos::CmdKind cmd,
                                     net::Payload msg) {
  const CostModel& c = kernel_->costs();
  const sim::Time t0 = kernel_->sim().now();
  co_await kernel_->charge(Prio::kUserHigh, Mechanism::kFragmentationLayer,
                           c.user_fragmentation_layer);
  co_await kernel_->charge(Prio::kUserHigh, Mechanism::kProtocolProcessing,
                           c.group_protocol_processing);

  const std::uint32_t msg_id = next_msg_id_++;
  if (cmd == paxos::CmdKind::kApp) {
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kGroupSend,
                 (static_cast<std::uint64_t>(kernel_->node()) << 32) | msg_id, 0,
                 msg.size());
    }
  }
  PendingSend pending;
  pending.thread = &self;
  pending.cmd = cmd;
  pending.body = std::move(msg);
  sends_in_flight_.emplace(msg_id, &pending);

  co_await pax_send_request(self, pending, msg_id, /*escalate=*/false);

  if (!pending.done && !crashed_) {
    pending.retry = kernel_->sim().after(
        kSendRetryInterval, [this, msg_id] { send_retry_tick(msg_id); });
  }
  co_await kernel_->syscall_enter();
  while (!pending.done) co_await self.block();
  co_await kernel_->syscall_return(c.panda_stack_depth);
  sends_in_flight_.erase(msg_id);
  if (cmd == paxos::CmdKind::kApp) {
    m_sends_.add();
    m_send_latency_.record(
        static_cast<std::uint64_t>(kernel_->sim().now() - t0));
  }
}

sim::Co<void> PanGroup::pax_send_request(Thread& ctx, PendingSend& p,
                                         std::uint32_t msg_id, bool escalate) {
  const std::uint64_t uid =
      (static_cast<std::uint64_t>(kernel_->node()) << 32) | msg_id;
  net::Payload req = pax_->make_request(p.cmd, uid, p.body, escalate);
  if (pax_->is_replica()) {
    // Feed our own core; it sequences (leader) or relays (follower).
    Unit u;
    u.sender = kernel_->node();
    u.payload = std::move(req);
    net::Payload wire = make_wire(MsgType::kPax, u, 0);
    co_await sys_->inject_sequencer(SysMsg(kernel_->node(), std::move(wire)));
  } else {
    if (escalate) {
      // A multicast is a single frame, i.e. a single loss draw: dropped, it
      // silences the whole round. Pair it with a direct copy to the believed
      // leader so one drop cannot erase the escalation.
      co_await pax_wire_out(ctx, /*multicast=*/false, pax_->leader(), req);
    }
    co_await pax_wire_out(ctx, escalate, pax_->leader(), req);
  }
}

sim::Co<void> PanGroup::pax_seq_handle(Thread& self, SysMsg msg) {
  if (crashed_) co_return;
  const CostModel& c = kernel_->costs();
  co_await kernel_->charge(Prio::kUserHigh, Mechanism::kProtocolProcessing,
                           c.group_protocol_processing);
  std::uint8_t type_raw = 0;
  std::uint32_t kind_raw = 0;
  Unit unit = parse_wire(msg.payload, c.panda_group_header, type_raw, kind_raw);
  if (static_cast<MsgType>(type_raw) != MsgType::kPax) co_return;
  paxos::Out out;
  pax_->on_wire(unit.payload, out);
  co_await pax_flush(self, std::move(out));
}

sim::Co<void> PanGroup::pax_wire_out(Thread& ctx, bool multicast, NodeId dst,
                                     const net::Payload& core) {
  Unit u;
  u.sender = kernel_->node();
  u.payload = core;
  net::Payload wire = make_wire(MsgType::kPax, u, 0);
  if (wire.size() <= PanSys::kFragmentData) {
    if (multicast) {
      co_await sys_->multicast_unit(ctx, PanSys::Module::kGroup,
                                    std::move(wire));
    } else {
      co_await sys_->unicast_unit(ctx, dst, PanSys::Module::kGroup,
                                  std::move(wire));
    }
  } else if (multicast) {
    // Oversized core wire (an accept carrying a big value, or a batched
    // catch-up response): let the system layer fragment it.
    co_await sys_->multicast(ctx, PanSys::Module::kGroup, std::move(wire));
  } else {
    co_await sys_->unicast(ctx, dst, PanSys::Module::kGroup, std::move(wire));
  }
}

sim::Co<void> PanGroup::pax_flush(Thread& ctx, paxos::Out out) {
  const CostModel& c = kernel_->costs();

  for (paxos::Decision& d : out.decisions) {
    if (pax_->is_replica() && (handler_ || !sends_in_flight_.empty())) {
      // As on the classic sequencer node: "an extra thread runs to deliver
      // the group message to the user" — hand the decision to the daemon.
      Unit u;
      u.seqno = d.seqno;
      u.sender = d.sender;
      u.msg_id = static_cast<std::uint32_t>(d.uid);
      u.payload = std::move(d.payload);
      net::Payload wire =
          make_wire(MsgType::kPaxDeliver, u, static_cast<std::uint32_t>(d.kind));
      co_await sys_->inject_daemon(PanSys::Module::kGroup,
                                   SysMsg(kernel_->node(), std::move(wire)));
    } else {
      co_await deliver_paxos(d.seqno, d.sender, d.kind,
                             static_cast<std::uint32_t>(d.uid),
                             std::move(d.payload));
    }
  }

  if (out.activated || out.deactivated) {
    const std::uint64_t uid =
        out.activated ? out.activated_uid : out.deactivated_uid;
    const auto sit = sends_in_flight_.find(static_cast<std::uint32_t>(uid));
    if (sit != sends_in_flight_.end() && !sit->second->done) {
      sit->second->done = true;
      sit->second->retry.cancel();
      co_await kernel_->signal_thread(*sit->second->thread,
                                      c.panda_stack_depth);
    }
  }

  for (paxos::Send& s : out.sends) {
    if (!s.multicast && s.dst == kernel_->node()) {
      paxos::Out nested;
      pax_->on_wire(s.wire, nested);
      co_await pax_flush(ctx, std::move(nested));
      continue;
    }
    co_await pax_wire_out(ctx, s.multicast, s.dst, s.wire);
  }

  if (out.view_changed && !sends_in_flight_.empty()) {
    // Re-aim pending requests at the new leader (deterministic order).
    std::vector<std::uint32_t> ids;
    for (const auto& [id, p] : sends_in_flight_) {
      if (!p->done) ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    for (const std::uint32_t id : ids) {
      const auto it = sends_in_flight_.find(id);
      if (it == sends_in_flight_.end() || it->second->done) continue;
      const bool esc = !pax_->is_replica() && it->second->retries >= 2;
      co_await pax_send_request(ctx, *it->second, id, esc);
    }
  }

  arm_pax_tick();
}

sim::Co<void> PanGroup::deliver_paxos(std::uint32_t seqno, NodeId sender,
                                      paxos::CmdKind kind, std::uint32_t msg_id,
                                      net::Payload payload) {
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kGroupDeliver, seqno, sender,
               payload.size());
  }
  if (kind != paxos::CmdKind::kApp) co_return;
  m_deliveries_.add();
  const CostModel& c = kernel_->costs();
  if (sender == kernel_->node()) {
    const auto sit = sends_in_flight_.find(msg_id);
    if (sit != sends_in_flight_.end() && !sit->second->done) {
      sit->second->done = true;
      sit->second->retry.cancel();
      co_await kernel_->signal_thread(*sit->second->thread,
                                      c.panda_stack_depth);
    }
  }
  if (handler_) {
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kUpcall, seqno, 2);
    }
    co_await handler_(*sys_->daemon_thread(), sender, seqno,
                      std::move(payload));
  }
}

void PanGroup::arm_pax_tick() {
  if (!pax_ || crashed_ || pax_tick_.active() || !pax_->need_tick()) return;
  pax_tick_ = kernel_->sim().after(kPaxTickInterval, [this] {
    if (crashed_) return;
    paxos::Out out;
    pax_->on_tick(out);
    sim::spawn(pax_flush(*sys_->daemon_thread(), std::move(out)));
  });
}

void PanGroup::arm_gap_timer() {
  if (gap_probe_.active()) return;
  gap_probe_ = kernel_->sim().after(kGapRequestDelay, [this] {
    if (out_of_order_.empty()) return;
    ++retreqs_;
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kRetransmit,
                 next_expected_, trace::kReasonGapRequest);
    }
    Unit ask;
    ask.sender = kernel_->node();
    ask.seqno = next_expected_;
    net::Payload wire = make_wire(MsgType::kRetReq, ask, next_expected_ - 1);
    Thread* daemon = sys_->daemon_thread();
    if (is_sequencer()) {
      sim::spawn(sys_->inject_sequencer(SysMsg(kernel_->node(), std::move(wire))));
    } else {
      sim::spawn(sys_->unicast_unit(*daemon, config_->sequencer,
                                    PanSys::Module::kSequencer, std::move(wire)));
    }
    arm_gap_timer();
  });
}

}  // namespace panda
