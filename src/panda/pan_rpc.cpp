#include "panda/pan_rpc.h"

#include <utility>

#include "metrics/registry.h"
#include "sim/require.h"
#include "trace/tracer.h"

namespace panda {

using amoeba::CostModel;
using sim::Mechanism;
using sim::Prio;

namespace {
constexpr sim::Time kExplicitAckDelay = sim::msec(20);

[[nodiscard]] constexpr std::uint64_t trans_key(NodeId client,
                                                std::uint32_t trans_id) noexcept {
  return (static_cast<std::uint64_t>(client) << 32) | trans_id;
}
}  // namespace

void PanRpc::start() {
  sys_->register_handler(PanSys::Module::kRpc,
                         [this](SysMsg m) { return on_message(std::move(m)); });
}

net::Payload PanRpc::make_wire(MsgType type, std::uint32_t trans_id,
                               std::uint32_t piggyback_ack,
                               const net::Payload& body) {
  net::Writer& w = wire_writer_;
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(trans_id);
  w.u32(piggyback_ack);
  w.u32(0);
  // Pad to Panda's 64-byte RPC header (§4.2: "64 bytes vs. 56 bytes").
  w.zeros(kernel_->costs().panda_rpc_header - w.size());
  w.payload(body);
  return w.take();
}

sim::Co<void> PanRpc::charge_locks(int n) {
  lock_ops_ += static_cast<std::uint64_t>(n);
  co_await kernel_->charge(Prio::kUserHigh, Mechanism::kLockOp,
                           kernel_->costs().lock_op * n,
                           static_cast<std::uint64_t>(n));
}

sim::Co<RpcReply> PanRpc::call(Thread& self, NodeId dst, net::Payload request) {
  const CostModel& c = kernel_->costs();
  const sim::Time t0 = kernel_->sim().now();
  // The user-space protocol takes more locks: "it does seven times more
  // lock() calls than the kernel-space implementation" (§4.2); four of the
  // seven happen on the client's send/receive paths.
  co_await charge_locks(2);
  co_await kernel_->charge(Prio::kUserHigh, Mechanism::kProtocolProcessing,
                           c.rpc_protocol_processing);

  const std::uint32_t trans_id = next_trans_++;
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kRpcSend,
               trans_key(kernel_->node(), trans_id), dst, request.size());
  }
  std::uint32_t piggyback = 0;
  if (const std::uint32_t* unacked = unacked_reply_.find(dst)) {
    piggyback = *unacked;
    unacked_reply_.erase(dst);
    if (sim::EventHandle* t = ack_timers_.find(dst)) t->cancel();
    ++piggy_acks_;
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kAck,
                 trans_key(kernel_->node(), piggyback), 2);
    }
  }

  Outstanding* raw = outstanding_.try_emplace(trans_id).first;
  raw->thread = &self;
  raw->dst = dst;
  raw->wire = make_wire(MsgType::kRequest, trans_id, piggyback, request);

  ++raw->sends;
  co_await sys_->unicast(self, dst, PanSys::Module::kRpc, raw->wire);
  raw->retransmit = kernel_->sim().after(
      c.rpc_retransmit_interval, [this, trans_id] { retransmit_tick(trans_id); });

  // Block in user space on a condition variable. With only kernel threads,
  // sleeping and waking both cross the user/kernel boundary (§4.2).
  co_await kernel_->syscall_enter();
  while (!raw->done) co_await self.block();
  co_await kernel_->syscall_return(c.panda_stack_depth);
  co_await charge_locks(2);

  RpcReply result(raw->status, std::move(raw->reply));
  outstanding_.erase(trans_id);
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kRpcDone,
               trans_key(kernel_->node(), trans_id),
               result.status == RpcStatus::kOk ? 0 : 1);
  }
  m_calls_.add();
  if (result.status == RpcStatus::kOk) {
    m_latency_.record(static_cast<std::uint64_t>(kernel_->sim().now() - t0));
  } else {
    m_timeouts_.add();
  }
  co_return result;
}

void PanRpc::retransmit_tick(std::uint32_t trans_id) {
  // The tick is cancelled when the call settles, so a live fire always finds
  // an unfinished call.
  Outstanding* found = outstanding_.find(trans_id);
  if (!found) return;
  Outstanding& out = *found;
  const CostModel& c = kernel_->costs();
  if (out.sends > c.rpc_max_retransmits) {
    out.done = true;
    out.status = RpcStatus::kTimeout;
    out.thread->unblock();
    return;
  }
  ++out.sends;
  ++retransmits_;
  m_retransmits_.add();
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kRetransmit,
               trans_key(kernel_->node(), trans_id),
               trace::kReasonClientRetry);
  }
  Thread* daemon = sys_->daemon_thread();
  sim::spawn(sys_->unicast(*daemon, out.dst, PanSys::Module::kRpc, out.wire));
  out.retransmit = kernel_->sim().after(
      c.rpc_retransmit_interval, [this, trans_id] { retransmit_tick(trans_id); });
}

void PanRpc::ack_tick(NodeId dst) {
  const std::uint32_t* unacked = unacked_reply_.find(dst);
  if (!unacked) return;
  const std::uint32_t trans_id = *unacked;
  unacked_reply_.erase(dst);
  ++explicit_acks_;
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kAck,
               trans_key(kernel_->node(), trans_id), 1);
  }
  Thread* daemon = sys_->daemon_thread();
  sim::spawn(sys_->unicast(*daemon, dst, PanSys::Module::kRpc,
                           make_wire(MsgType::kAck, trans_id, trans_id,
                                     net::Payload())));
}

sim::Co<void> PanRpc::reply(Thread& self, RpcTicket ticket, net::Payload payload) {
  const TicketState* found = tickets_.find(ticket.id);
  sim::require(found != nullptr, "PanRpc::reply: unknown ticket");
  const TicketState ts = *found;
  tickets_.erase(ticket.id);

  const CostModel& c = kernel_->costs();
  co_await charge_locks(1);
  co_await kernel_->charge(Prio::kUserHigh, Mechanism::kProtocolProcessing,
                           c.rpc_protocol_processing);
  net::Payload wire = make_wire(MsgType::kReply, ts.trans_id, 0, payload);
  served_[trans_key(ts.client, ts.trans_id)] = ServedEntry{true, wire};
  ++served_count_;
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kRpcReply,
               trans_key(ts.client, ts.trans_id));
  }
  co_await sys_->unicast(self, ts.client, PanSys::Module::kRpc, std::move(wire));
}

sim::Co<void> PanRpc::on_message(SysMsg msg) {
  const CostModel& c = kernel_->costs();
  net::Reader r(msg.payload);
  const auto type = static_cast<MsgType>(r.u8());
  const std::uint32_t trans_id = r.u32();
  const std::uint32_t piggyback = r.u32();
  net::Payload body = msg.payload.slice(c.panda_rpc_header,
                                        msg.payload.size() - c.panda_rpc_header);
  co_await charge_locks(1);

  if (piggyback != 0) {
    served_.erase(trans_key(msg.src, piggyback));
  }

  switch (type) {
    case MsgType::kRequest: {
      const std::uint64_t key = trans_key(msg.src, trans_id);
      if (const ServedEntry* entry = served_.find(key)) {
        Thread* daemon = sys_->daemon_thread();
        if (entry->replied) {
          ++retransmits_;
          m_retransmits_.add();
          if (auto* tr = kernel_->sim().tracer()) {
            tr->record(kernel_->node(), trace::EventKind::kRetransmit,
                       trans_key(msg.src, trans_id),
                       trace::kReasonCachedReply);
          }
          co_await sys_->unicast(*daemon, msg.src, PanSys::Module::kRpc,
                                 entry->cached_reply_wire);
        } else {
          // Reply still pending (parked continuation): keepalive.
          co_await sys_->unicast(*daemon, msg.src, PanSys::Module::kRpc,
                                 make_wire(MsgType::kServerBusy, trans_id, 0,
                                           net::Payload()));
        }
        co_return;  // duplicate
      }
      // The exactly-once commit point of the user-space protocol.
      if (auto* tr = kernel_->sim().tracer()) {
        tr->record(kernel_->node(), trace::EventKind::kRpcExec,
                   trans_key(msg.src, trans_id));
      }
      served_.try_emplace(key);
      const std::uint64_t ticket_id = next_ticket_++;
      tickets_[ticket_id] = TicketState{msg.src, trans_id};
      co_await kernel_->charge(Prio::kUserHigh, Mechanism::kProtocolProcessing,
                               c.rpc_protocol_processing);
      if (handler_) {
        // Implicit message receipt: upcall directly from the daemon.
        if (auto* tr = kernel_->sim().tracer()) {
          tr->record(kernel_->node(), trace::EventKind::kUpcall,
                     trans_key(msg.src, trans_id), 1);
        }
        co_await handler_(*sys_->daemon_thread(), RpcTicket(ticket_id),
                          std::move(body));
      }
      break;
    }
    case MsgType::kReply: {
      Outstanding* found = outstanding_.find(trans_id);
      if (!found || found->done) co_return;
      Outstanding& out = *found;
      out.retransmit.cancel();
      out.done = true;
      out.status = RpcStatus::kOk;
      out.reply = std::move(body);
      // Remember to acknowledge this reply: piggyback on the next request to
      // that server "and only send an explicit message after a certain
      // timeout".
      unacked_reply_[msg.src] = trans_id;
      const NodeId dst = msg.src;
      sim::EventHandle& ack = ack_timers_[dst];
      ack.cancel();  // re-arm: at most one explicit-ack event per server
      ack = kernel_->sim().after(kExplicitAckDelay,
                                 [this, dst] { ack_tick(dst); });
      // Wake the blocked client thread: a kernel signal from the daemon —
      // the crossing + underflow-trap bundle plus the second context switch
      // of §4.2.
      co_await kernel_->signal_thread(*out.thread, c.panda_stack_depth);
      break;
    }
    case MsgType::kAck:
      served_.erase(trans_key(msg.src, trans_id));
      break;
    case MsgType::kServerBusy: {
      Outstanding* busy = outstanding_.find(trans_id);
      if (busy && !busy->done) busy->sends = 1;
      break;
    }
  }
}

}  // namespace panda
