// Panda's user-space RPC: a 2-way stop-and-wait protocol (§2, §3.2).
//
// The client sends a request and blocks on a condition variable in user
// space. The server's reply implicitly acknowledges the request; the client
// acknowledges the reply by piggybacking on its next request to the same
// server, falling back to an explicit ack message after a timeout — "this
// optimization is the major difference with Amoeba's 3-way RPC protocol".
//
// The reply may be produced asynchronously (pan_rpc_reply) by any thread,
// which is what lets the Orca RTS resume a guarded operation from the thread
// that made the guard true, with no extra context switch — the flexibility
// the kernel-space binding cannot offer.
#pragma once

#include <cstdint>

#include "amoeba/kernel.h"
#include "metrics/handles.h"
#include "panda/pan_sys.h"
#include "panda/panda.h"
#include "sim/co.h"
#include "sim/flat_map.h"

namespace panda {

class PanRpc {
 public:
  PanRpc(Kernel& kernel, PanSys& sys, const ClusterConfig& config)
      : kernel_(&kernel), sys_(&sys), config_(&config) {
    const metrics::NodeMetrics nm(kernel.sim().metrics(), kernel.node());
    m_calls_ = nm.counter("rpc.calls");
    m_timeouts_ = nm.counter("rpc.timeouts");
    m_retransmits_ = nm.counter("rpc.retransmits");
    m_latency_ = nm.histogram("rpc.latency_ns");
  }

  PanRpc(const PanRpc&) = delete;
  PanRpc& operator=(const PanRpc&) = delete;

  void set_handler(RpcHandler h) { handler_ = std::move(h); }
  void start();

  /// Client: blocking call.
  [[nodiscard]] sim::Co<RpcReply> call(Thread& self, NodeId dst,
                                       net::Payload request);

  /// Server: asynchronous reply (any thread).
  [[nodiscard]] sim::Co<void> reply(Thread& self, RpcTicket ticket,
                                    net::Payload payload);

  [[nodiscard]] std::uint64_t lock_ops() const noexcept { return lock_ops_; }
  [[nodiscard]] std::uint64_t piggybacked_acks() const noexcept { return piggy_acks_; }
  [[nodiscard]] std::uint64_t explicit_acks() const noexcept { return explicit_acks_; }
  [[nodiscard]] std::uint64_t retransmissions() const noexcept { return retransmits_; }
  [[nodiscard]] std::uint64_t requests_served() const noexcept { return served_count_; }

 private:
  enum class MsgType : std::uint8_t {
    kRequest = 1,
    kReply = 2,
    kAck = 3,
    kServerBusy = 4,  // keepalive while a guarded op is parked
  };

  struct Outstanding {
    Thread* thread = nullptr;
    bool done = false;
    RpcStatus status = RpcStatus::kTimeout;
    net::Payload reply;
    net::Payload wire;
    NodeId dst = 0;
    sim::EventHandle retransmit;  // next retransmit_tick; cancelled on reply
    int sends = 0;
  };

  struct ServedEntry {
    bool replied = false;
    net::Payload cached_reply_wire;
  };

  struct TicketState {
    NodeId client = 0;
    std::uint32_t trans_id = 0;
  };

  [[nodiscard]] sim::Co<void> on_message(SysMsg msg);
  [[nodiscard]] net::Payload make_wire(MsgType type, std::uint32_t trans_id,
                                       std::uint32_t piggyback_ack,
                                       const net::Payload& body);
  void retransmit_tick(std::uint32_t trans_id);
  void ack_tick(NodeId dst);
  [[nodiscard]] sim::Co<void> charge_locks(int n);

  Kernel* kernel_;
  PanSys* sys_;
  net::Writer wire_writer_;
  metrics::CounterHandle m_calls_;
  metrics::CounterHandle m_timeouts_;
  metrics::CounterHandle m_retransmits_;
  metrics::HistogramHandle m_latency_;
  const ClusterConfig* config_;
  RpcHandler handler_;
  std::uint32_t next_trans_ = 1;
  std::uint64_t next_ticket_ = 1;
  // Dense protocol state (sim/flat_map.h): outstanding calls hand a raw
  // pointer across suspensions, so they live in a slab; everything else is
  // looked up fresh per packet and sits in flat tables. The reply cache is
  // keyed by the packed (client, trans_id) word.
  sim::SlabMap<std::uint32_t, Outstanding> outstanding_;
  sim::FlatMap<std::uint64_t, ServedEntry> served_;
  sim::FlatMap<std::uint64_t, TicketState> tickets_;
  // Per-server unacknowledged reply (piggyback state) + explicit-ack event.
  sim::FlatMap<NodeId, std::uint32_t> unacked_reply_;
  sim::FlatMap<NodeId, sim::EventHandle> ack_timers_;
  std::uint64_t lock_ops_ = 0;
  std::uint64_t piggy_acks_ = 0;
  std::uint64_t explicit_acks_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t served_count_ = 0;
};

}  // namespace panda
