#include "panda/panda.h"

#include <unordered_map>
#include <utility>

#include "amoeba/group.h"
#include "amoeba/rpc.h"
#include "bypass/bypass_panda.h"
#include "panda/pan_group.h"
#include "panda/pan_rpc.h"
#include "panda/pan_sys.h"
#include "sim/require.h"

namespace panda {

namespace {

constexpr amoeba::GroupId kOrcaGroup = 1;

/// Panda RPC service of node `n` in the kernel binding.
[[nodiscard]] constexpr amoeba::ServiceId panda_service(NodeId n) noexcept {
  return 0x5000 + n;
}

// ---------------------------------------------------------------------------
// Kernel-space binding (§3.1): wrapper routines around Amoeba's protocols.
// ---------------------------------------------------------------------------
class KernelPanda final : public Panda {
 public:
  KernelPanda(Kernel& kernel, ClusterConfig config)
      : Panda(kernel, std::move(config)), rpc_(kernel), group_(kernel) {}

  void start() override {
    amoeba::GroupConfig gc;
    gc.members = config_.nodes;
    for (std::size_t i = 0; i < config_.nodes.size(); ++i) {
      if (config_.nodes[i] == config_.sequencer) gc.sequencer_index = i;
    }
    gc.history_capacity = config_.group_history;
    gc.bb_threshold = config_.bb_threshold;
    if (config_.replicated_sequencer) {
      gc.replicated = true;
      gc.replicas = config_.replica_set();
    }
    group_.join(kOrcaGroup, gc);

    // Group listener daemon: bridges Amoeba's explicit receive to Panda's
    // implicit upcall model.
    start_thread("grp-listener", [this](Thread& self) -> sim::Co<void> {
      for (;;) {
        amoeba::GroupMsg m = co_await group_.receive(self, kOrcaGroup);
        if (group_handler_) {
          co_await group_handler_(self, m.sender, m.seqno, std::move(m.payload));
        }
      }
    });

    // RPC daemons: each loops get_request -> upcall -> put_reply. The
    // same-thread put_reply restriction means a deferred (asynchronous)
    // reply must signal this daemon — "which works around the inflexible
    // kernel RPC, undoes the Orca RTS optimizations and re-introduces an
    // additional context switch" (§3.1). A daemon that parks on a deferred
    // reply spawns a replacement if it was the last idle one — the
    // "increased memory usage because of the blocked server thread".
    for (int i = 0; i < config_.rpc_daemon_threads; ++i) spawn_daemon();
  }

  void spawn_daemon() {
    ++daemon_count_;
    start_thread("rpc-daemon",
                 [this](Thread& self) { return rpc_daemon_loop(self); });
  }

  sim::Co<RpcReply> rpc(Thread& self, NodeId dst, net::Payload request) override {
    co_return co_await rpc_.trans(self, panda_service(dst), std::move(request));
  }

  sim::Co<void> rpc_reply(Thread& self, RpcTicket ticket,
                          net::Payload reply) override {
    const auto it = tickets_.find(ticket.id);
    sim::require(it != tickets_.end(), "KernelPanda::rpc_reply: unknown ticket");
    TicketState& t = *it->second;
    t.reply = std::move(reply);
    t.has_reply = true;
    if (t.daemon->id() == self.id()) co_return;  // inline reply: fast path
    // Asynchronous reply from another thread: wake the parked daemon.
    co_await kernel_->signal_thread(*t.daemon,
                                    kernel_->costs().panda_stack_depth);
  }

  sim::Co<void> group_send(Thread& self, net::Payload message) override {
    co_await group_.send(self, kOrcaGroup, std::move(message));
  }

  sim::Co<void> group_leave(Thread& self) override {
    co_await group_.leave(self, kOrcaGroup);
  }

  sim::Co<void> group_rejoin(Thread& self) override {
    co_await group_.rejoin(self, kOrcaGroup);
  }

  void group_crash() override { group_.crash(kOrcaGroup); }

  std::uint64_t group_view_changes() const override {
    return group_.view_changes(kOrcaGroup);
  }

  std::uint64_t group_status_rounds() const override {
    return group_.status_rounds();
  }

 private:
  struct TicketState {
    amoeba::RpcRequestHandle handle;
    Thread* daemon = nullptr;
    bool has_reply = false;
    net::Payload reply;
  };

  sim::Co<void> rpc_daemon_loop(Thread& self) {
    for (;;) {
      ++idle_daemons_;
      amoeba::RpcRequestHandle handle =
          co_await rpc_.get_request(self, panda_service(kernel_->node()));
      --idle_daemons_;
      const std::uint64_t id = next_ticket_++;
      auto state = std::make_unique<TicketState>();
      state->handle = std::move(handle);
      state->daemon = &self;
      TicketState* raw = state.get();
      tickets_.emplace(id, std::move(state));

      net::Payload request = raw->handle.payload;
      if (rpc_handler_) {
        co_await rpc_handler_(self, RpcTicket(id), std::move(request));
      }
      // If the upcall did not reply, park until rpc_reply() signals us —
      // the blocked-server-thread cost of the kernel binding. Keep the
      // service alive while we are parked.
      if (!raw->has_reply && idle_daemons_ == 0 &&
          daemon_count_ < kMaxDaemons) {
        spawn_daemon();
      }
      while (!raw->has_reply) co_await self.block();
      co_await rpc_.put_reply(self, raw->handle, std::move(raw->reply));
      tickets_.erase(id);
    }
  }

  static constexpr int kMaxDaemons = 128;

  amoeba::KernelRpc rpc_;
  amoeba::KernelGroup group_;
  std::unordered_map<std::uint64_t, std::unique_ptr<TicketState>> tickets_;
  std::uint64_t next_ticket_ = 1;
  int idle_daemons_ = 0;
  int daemon_count_ = 0;
};

// ---------------------------------------------------------------------------
// User-space binding (§3.2): Panda's own protocols over raw FLIP.
// ---------------------------------------------------------------------------
class UserPanda final : public Panda {
 public:
  UserPanda(Kernel& kernel, ClusterConfig config)
      : Panda(kernel, std::move(config)),
        sys_(kernel),
        rpc_(kernel, sys_, config_),
        group_(kernel, sys_, config_) {}

  void start() override {
    if (rpc_handler_) rpc_.set_handler(rpc_handler_);
    if (group_handler_) group_.set_handler(group_handler_);
    rpc_.start();
    group_.start();
    sys_.start();
  }

  sim::Co<RpcReply> rpc(Thread& self, NodeId dst, net::Payload request) override {
    co_return co_await rpc_.call(self, dst, std::move(request));
  }

  sim::Co<void> rpc_reply(Thread& self, RpcTicket ticket,
                          net::Payload reply) override {
    co_await rpc_.reply(self, ticket, std::move(reply));
  }

  sim::Co<void> group_send(Thread& self, net::Payload message) override {
    co_await group_.send(self, std::move(message));
  }

  sim::Co<void> group_leave(Thread& self) override {
    co_await group_.leave(self);
  }

  sim::Co<void> group_rejoin(Thread& self) override {
    co_await group_.rejoin(self);
  }

  void group_crash() override { group_.crash(); }

  std::uint64_t group_view_changes() const override {
    return group_.view_changes();
  }

  std::uint64_t group_status_rounds() const override {
    return group_.status_rounds();
  }

  [[nodiscard]] PanSys& sys() noexcept { return sys_; }
  [[nodiscard]] PanRpc& pan_rpc() noexcept { return rpc_; }
  [[nodiscard]] PanGroup& pan_group() noexcept { return group_; }

 private:
  PanSys sys_;
  PanRpc rpc_;
  PanGroup group_;
};

}  // namespace

std::unique_ptr<Panda> make_panda(Kernel& kernel, const ClusterConfig& config) {
  if (config.binding == Binding::kKernelSpace) {
    return std::make_unique<KernelPanda>(kernel, config);
  }
  if (config.binding == Binding::kBypass) {
    return bypass::make_bypass_panda(kernel, config);
  }
  return std::make_unique<UserPanda>(kernel, config);
}

}  // namespace panda
