// Panda's system layer on the user-space binding (§3.2).
//
// Library routines wrap the raw FLIP syscalls: sends cross the user/kernel
// boundary per fragment (Panda fragments messages itself — the duplicated
// fragmentation layer the paper charges 20 us/message for), and one receive
// daemon thread per process blocks in the kernel, reassembles fragments into
// messages, and makes run-to-completion upcalls to the protocol modules.
//
// Messages destined for the user-space group sequencer are routed to the
// sequencer thread's own queue: resuming that thread from the interrupt path
// is the 110/60 us thread switch of §4.3.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>

#include "amoeba/flip.h"
#include "amoeba/kernel.h"
#include "net/buffer.h"
#include "sim/co.h"

namespace panda {

using amoeba::Kernel;
using amoeba::NodeId;
using amoeba::Thread;

/// The FLIP endpoint of the Panda process on node `n`.
[[nodiscard]] constexpr amoeba::FlipAddr process_addr(NodeId n) noexcept {
  return 0x00C0'0000'0000'0000ULL | n;
}
/// The FLIP multicast group all Panda processes join.
[[nodiscard]] constexpr amoeba::FlipAddr process_group_addr() noexcept {
  return amoeba::kFlipGroupBit | 0x00C0'0000'0000'0000ULL;
}

/// A complete (reassembled) Panda system-layer message.
struct SysMsg {
  SysMsg() = default;
  SysMsg(NodeId s, net::Payload p) : src(s), payload(std::move(p)) {}
  NodeId src = 0;
  net::Payload payload;
};

class PanSys {
 public:
  /// Which protocol module a message belongs to (demultiplexed by the
  /// receive daemon).
  enum class Module : std::uint8_t { kRpc = 1, kGroup = 2, kSequencer = 3 };

  /// Upcall into a protocol module; runs to completion in the daemon.
  using Handler = std::function<sim::Co<void>(SysMsg msg)>;

  /// Bytes of user data per FLIP send so Panda fragments never make FLIP
  /// fragment again (1500 - 32 FLIP header - 16 pan header = 1452; rounded).
  static constexpr std::size_t kFragmentData = 1440;
  static constexpr std::size_t kPanHeader = 16;

  explicit PanSys(Kernel& kernel) : kernel_(&kernel) {}

  PanSys(const PanSys&) = delete;
  PanSys& operator=(const PanSys&) = delete;

  void register_handler(Module m, Handler h);

  /// Route Module::kSequencer traffic to a private queue served by `t`
  /// (the user-space sequencer thread) instead of the daemon.
  void set_sequencer_thread(Thread& t) { sequencer_thread_ = &t; }

  /// Register FLIP endpoints and start the receive daemon.
  void start();

  /// Send `msg` to the Panda process on `dst`, fragmenting at user level.
  [[nodiscard]] sim::Co<void> unicast(Thread& self, NodeId dst, Module m,
                                      net::Payload msg);

  /// Multicast `msg` to every Panda process (hardware multicast underneath).
  [[nodiscard]] sim::Co<void> multicast(Thread& self, Module m, net::Payload msg);

  /// Send a pre-fragmented protocol unit (fits one FLIP packet). The caller
  /// already paid the user-level fragmentation charge; none is added here.
  [[nodiscard]] sim::Co<void> unicast_unit(Thread& self, NodeId dst, Module m,
                                           net::Payload unit);
  [[nodiscard]] sim::Co<void> multicast_unit(Thread& self, Module m,
                                             net::Payload unit);

  /// Local hand-off into the sequencer queue (same process, no wire) — used
  /// by the group module when the sequencer's own node originates or relays
  /// a unit.
  [[nodiscard]] sim::Co<void> inject_sequencer(SysMsg msg);

  /// Local hand-off into the receive daemon (same process): the sequencer
  /// node's own deliveries go through "an extra thread [that] runs to
  /// deliver the group message to the user" (§4.3).
  [[nodiscard]] sim::Co<void> inject_daemon(Module m, SysMsg msg);

  /// Sequencer thread: fetch the next request (blocking; models the fetch
  /// syscall of §4.3).
  [[nodiscard]] sim::Co<SysMsg> seq_receive(Thread& self);

  [[nodiscard]] Thread* daemon_thread() noexcept { return daemon_; }
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t fragments_sent() const noexcept { return fragments_; }

 private:
  struct ReKey {
    NodeId src;
    std::uint32_t msg_id;
    bool operator<(const ReKey& o) const noexcept {
      return src != o.src ? src < o.src : msg_id < o.msg_id;
    }
  };
  struct Partial {
    std::uint16_t received = 0;
    std::uint16_t expected = 0;
    std::map<std::uint16_t, net::Payload> chunks;
    Module module = Module::kRpc;
  };

  [[nodiscard]] sim::Co<void> send_impl(Thread& self, amoeba::FlipAddr dst,
                                        bool is_multicast, Module m,
                                        net::Payload msg, bool charge_frag_layer);
  [[nodiscard]] sim::Co<void> on_flip_message(amoeba::FlipMessage m);
  [[nodiscard]] sim::Co<void> daemon_loop(Thread& self);

  Kernel* kernel_;
  // Reusable frame/reassembly serializers (host-side; never held across a
  // suspend — each is fully built and taken within one resume).
  net::Writer frame_writer_;
  net::Writer reasm_writer_;
  std::unordered_map<std::uint8_t, Handler> handlers_;
  Thread* daemon_ = nullptr;
  Thread* sequencer_thread_ = nullptr;
  std::deque<std::pair<Module, SysMsg>> daemon_queue_;
  std::deque<SysMsg> sequencer_queue_;
  std::map<ReKey, Partial> partials_;
  std::uint32_t next_msg_id_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t fragments_ = 0;
  bool started_ = false;
};

}  // namespace panda
