#include "panda/pan_sys.h"

#include <algorithm>
#include <utility>

#include "sim/require.h"
#include "trace/tracer.h"

namespace panda {

using amoeba::CostModel;
using sim::Mechanism;
using sim::Prio;

void PanSys::register_handler(Module m, Handler h) {
  handlers_[static_cast<std::uint8_t>(m)] = std::move(h);
}

void PanSys::start() {
  sim::require(!started_, "PanSys::start: already started");
  started_ = true;
  kernel_->flip().register_endpoint(
      process_addr(kernel_->node()),
      [this](amoeba::FlipMessage m) { return on_flip_message(std::move(m)); });
  kernel_->flip().register_group(
      process_group_addr(),
      [this](amoeba::FlipMessage m) { return on_flip_message(std::move(m)); });
  daemon_ = &kernel_->start_thread(
      "pan_sys-daemon", [this](Thread& self) { return daemon_loop(self); });
}

sim::Co<void> PanSys::unicast(Thread& self, NodeId dst, Module m,
                              net::Payload msg) {
  co_await send_impl(self, process_addr(dst), /*is_multicast=*/false, m,
                     std::move(msg), /*charge_frag_layer=*/true);
}

sim::Co<void> PanSys::multicast(Thread& self, Module m, net::Payload msg) {
  co_await send_impl(self, process_group_addr(), /*is_multicast=*/true, m,
                     std::move(msg), /*charge_frag_layer=*/true);
}

sim::Co<void> PanSys::unicast_unit(Thread& self, NodeId dst, Module m,
                                   net::Payload unit) {
  sim::require(unit.size() <= kFragmentData + 64,
               "PanSys::unicast_unit: unit exceeds one packet");
  co_await send_impl(self, process_addr(dst), /*is_multicast=*/false, m,
                     std::move(unit), /*charge_frag_layer=*/false);
}

sim::Co<void> PanSys::multicast_unit(Thread& self, Module m, net::Payload unit) {
  sim::require(unit.size() <= kFragmentData + 64,
               "PanSys::multicast_unit: unit exceeds one packet");
  co_await send_impl(self, process_group_addr(), /*is_multicast=*/true, m,
                     std::move(unit), /*charge_frag_layer=*/false);
}

sim::Co<void> PanSys::inject_sequencer(SysMsg msg) {
  sim::require(sequencer_thread_ != nullptr,
               "PanSys::inject_sequencer: no sequencer thread here");
  sequencer_queue_.push_back(std::move(msg));
  co_await kernel_->dispatch(*sequencer_thread_);
}

sim::Co<void> PanSys::inject_daemon(Module m, SysMsg msg) {
  daemon_queue_.emplace_back(m, std::move(msg));
  if (daemon_ != nullptr) co_await kernel_->dispatch(*daemon_);
}

sim::Co<void> PanSys::send_impl(Thread& self, amoeba::FlipAddr dst,
                                bool is_multicast, Module m, net::Payload msg,
                                bool charge_frag_layer) {
  (void)self;
  const CostModel& c = kernel_->costs();
  ++sent_;
  // Panda's portable fragmentation layer duplicates what FLIP already does:
  // "an overhead of about 20 us per message".
  if (charge_frag_layer) {
    co_await kernel_->charge(Prio::kUserHigh, Mechanism::kFragmentationLayer,
                             c.user_fragmentation_layer);
  }
  // Going down the deeply layered protocol stack allocates register windows:
  // "generating overflow traps" (§4.2).
  co_await kernel_->charge(Prio::kUserHigh, Mechanism::kOverflowTrap,
                           c.overflow_trap * 2, 2);

  const std::uint32_t msg_id = next_msg_id_++;
  const std::size_t total = msg.size();
  const auto frag_count = static_cast<std::uint16_t>(
      total == 0 ? 1 : (total + kFragmentData - 1) / kFragmentData);

  std::size_t offset = 0;
  for (std::uint16_t idx = 0; idx < frag_count; ++idx) {
    const std::size_t chunk = std::min(kFragmentData, total - offset);
    ++fragments_;
    // User-level fragment: no frame id / FLIP address yet (a=0, c=0); the
    // FLIP layer below traces the wire-level fragments.
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kFragment, 0, msg_id, 0,
                 chunk);
    }

    // Each fragment is one FLIP syscall from user space.
    co_await kernel_->syscall_enter();
    co_await kernel_->user_flip_translation();
    co_await kernel_->copy_boundary(chunk + kPanHeader);
    // Serialize only after the charges above: the member writer must never be
    // held across a suspend, and none of those costs depend on the bytes.
    net::Writer& w = frame_writer_;
    w.u8(static_cast<std::uint8_t>(m));
    w.u8(0);
    w.u16(idx);
    w.u16(frag_count);
    w.u16(0);
    w.u32(kernel_->node());
    w.u32(msg_id);
    w.payload(msg.slice(offset, chunk));
    offset += chunk;
    if (is_multicast) {
      co_await kernel_->flip().multicast(dst, w.take(), Prio::kKernel);
    } else {
      co_await kernel_->flip().unicast(dst, w.take(), Prio::kKernel);
    }
    co_await kernel_->syscall_return(c.panda_stack_depth);
  }
}

sim::Co<void> PanSys::on_flip_message(amoeba::FlipMessage m) {
  // Interrupt context: the kernel has a complete FLIP message for this
  // process. Charge the queue handling and boundary costs, then wake the
  // right thread.
  const CostModel& c = kernel_->costs();
  net::Reader r(m.payload);
  const auto module = static_cast<Module>(r.u8());
  (void)r.u8();
  const std::uint16_t idx = r.u16();
  const std::uint16_t count = r.u16();
  (void)r.u16();
  const NodeId src = r.u32();
  const std::uint32_t msg_id = r.u32();
  net::Payload chunk = r.rest();

  if (src == kernel_->node()) co_return;  // own multicast looped via switch: drop

  co_await kernel_->charge(Prio::kInterrupt, Mechanism::kProtocolProcessing,
                           c.deliver_to_process);
  co_await kernel_->user_flip_translation();
  co_await kernel_->copy_boundary(chunk.size() + kPanHeader);

  SysMsg complete;
  Module complete_module = module;
  if (count == 1) {
    complete = SysMsg(src, std::move(chunk));
  } else {
    const ReKey key{src, msg_id};
    Partial& p = partials_[key];
    p.expected = count;
    p.module = module;
    if (p.chunks.emplace(idx, std::move(chunk)).second) ++p.received;
    if (p.received != p.expected) co_return;
    net::Writer& w = reasm_writer_;
    for (auto& [i, part] : p.chunks) w.payload(part);
    complete = SysMsg(src, w.take());
    complete_module = p.module;
    partials_.erase(key);
    // Panda's user-level reassembly concatenates the fragments: a real
    // message-sized copy in user space.
    co_await kernel_->charge(Prio::kUserHigh, Mechanism::kFragmentationLayer,
                             c.copy_ns_per_byte *
                                 static_cast<sim::Time>(complete.payload.size()));
  }

  ++delivered_;
  if (complete_module == Module::kSequencer && sequencer_thread_ != nullptr) {
    sequencer_queue_.push_back(std::move(complete));
    // Resuming the sequencer thread from the interrupt path: the 110 us
    // thread switch (60 us when its context is still loaded — the dedicated
    // sequencer machine).
    co_await kernel_->dispatch_from_interrupt(*sequencer_thread_);
    co_return;
  }
  daemon_queue_.emplace_back(complete_module, std::move(complete));
  if (daemon_ != nullptr) co_await kernel_->dispatch(*daemon_);
}

sim::Co<SysMsg> PanSys::seq_receive(Thread& self) {
  const CostModel& c = kernel_->costs();
  // The fetch syscall (§4.3: "one to fetch a message from the network").
  co_await kernel_->syscall_enter();
  while (sequencer_queue_.empty()) co_await self.block();
  SysMsg msg = std::move(sequencer_queue_.front());
  sequencer_queue_.pop_front();
  co_await kernel_->syscall_return(c.panda_stack_depth);
  co_return msg;
}

sim::Co<void> PanSys::daemon_loop(Thread& self) {
  const CostModel& c = kernel_->costs();
  for (;;) {
    co_await kernel_->syscall_enter();  // block in the kernel receive call
    while (daemon_queue_.empty()) co_await self.block();
    auto [module, msg] = std::move(daemon_queue_.front());
    daemon_queue_.pop_front();
    co_await kernel_->syscall_return(c.panda_stack_depth);

    const auto it = handlers_.find(static_cast<std::uint8_t>(module));
    if (it != handlers_.end()) {
      // Run-to-completion upcall in the daemon thread.
      co_await it->second(std::move(msg));
    }
  }
}

}  // namespace panda
