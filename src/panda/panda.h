// Panda — the portable platform underneath the Orca runtime (paper §2).
//
// Panda provides threads, RPC, and totally-ordered group communication. This
// reproduction implements the two Amoeba bindings the paper compares:
//
//   * KernelPanda (§3.1): the interface layer wraps Amoeba's kernel-space
//     RPC and group protocols. RPC daemon threads bridge Amoeba's explicit
//     get_request model to Panda's implicit-receipt upcalls, and the
//     asynchronous pan_rpc_reply has to be faked by signalling the original
//     daemon thread (undoing the Orca continuation optimization).
//
//   * UserPanda (§3.2): Panda's own 2-way RPC and user-space sequencer group
//     protocols run as a library over the raw FLIP syscall interface, with a
//     single receive daemon making run-to-completion upcalls.
//
// The Orca RTS is written against this interface only; switching bindings
// swaps the entire protocol stack underneath it, exactly as in the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "amoeba/kernel.h"
#include "amoeba/rpc.h"
#include "net/buffer.h"
#include "sim/co.h"

namespace bypass {
class BypassDevice;
}  // namespace bypass

namespace panda {

using amoeba::Kernel;
using amoeba::NodeId;
using amoeba::Thread;
using RpcStatus = amoeba::RpcStatus;
using RpcReply = amoeba::RpcResult;

/// Identifies an in-flight request so the reply can be sent asynchronously
/// ("pan_rpc_reply"), possibly from a different thread than the upcall.
struct RpcTicket {
  RpcTicket() = default;
  explicit RpcTicket(std::uint64_t i) : id(i) {}
  std::uint64_t id = 0;
};

/// Request upcall. Runs to completion in the receive context (`upcall` is
/// the daemon thread making the call); it may reply inline (fast path) or
/// stash the ticket and let another thread reply later (the
/// guarded-operation path).
using RpcHandler = std::function<sim::Co<void>(Thread& upcall, RpcTicket ticket,
                                               net::Payload request)>;

/// Ordered group-message upcall; invoked in total order on every member,
/// in the context of the delivering thread.
using GroupHandler =
    std::function<sim::Co<void>(Thread& upcall, NodeId sender,
                                std::uint32_t seqno, net::Payload message)>;

enum class Binding : std::uint8_t {
  kKernelSpace,  // Amoeba kernel RPC + group protocols (paper §3.1)
  kUserSpace,    // Panda user-space protocols over raw FLIP (paper §3.2)
  kBypass,       // kernel-bypass RDMA-style verbs (src/bypass, post-paper)
};

struct ClusterConfig {
  Binding binding = Binding::kUserSpace;
  /// All Panda nodes; they form one group (the Orca broadcast group).
  std::vector<NodeId> nodes;
  /// Which node hosts the group sequencer.
  NodeId sequencer = 0;
  /// Kernel binding: size of the RPC daemon-thread pool per node.
  int rpc_daemon_threads = 3;
  /// Group protocol history capacity at the sequencer.
  std::size_t group_history = 512;
  /// Messages above this use the BB (sender-broadcast) method.
  std::size_t bb_threshold = 1400;
  /// Replicated-sequencer mode: the sequencer role is a multi-Paxos replica
  /// set (led from `sequencer`) instead of a single node, and survives
  /// sequencer crashes by election. Both bindings support it.
  bool replicated_sequencer = false;
  /// Size of the replica set (clamped to the cluster size).
  std::size_t sequencer_replicas = 3;

  /// The replica set: `sequencer` first, then the following nodes in ring
  /// order, so every node derives the identical list.
  [[nodiscard]] std::vector<NodeId> replica_set() const {
    std::size_t start = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == sequencer) start = i;
    }
    std::vector<NodeId> replicas;
    const std::size_t count =
        sequencer_replicas < nodes.size() ? sequencer_replicas : nodes.size();
    for (std::size_t i = 0; i < count; ++i) {
      replicas.push_back(nodes[(start + i) % nodes.size()]);
    }
    return replicas;
  }
};

/// One node's Panda instance. Create one per node via make_panda(), install
/// handlers, then start().
class Panda {
 public:
  virtual ~Panda() = default;

  [[nodiscard]] Kernel& kernel() noexcept { return *kernel_; }
  [[nodiscard]] NodeId node() const noexcept { return kernel_->node(); }
  [[nodiscard]] sim::Simulator& sim() noexcept { return kernel_->sim(); }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }

  /// Install the request upcall (before start()).
  void set_rpc_handler(RpcHandler handler) { rpc_handler_ = std::move(handler); }
  /// Install the ordered group upcall (before start()).
  void set_group_handler(GroupHandler handler) {
    group_handler_ = std::move(handler);
  }

  /// Boot daemons and join the group.
  virtual void start() = 0;

  /// Client side: remote procedure call to the Panda instance on `dst`.
  [[nodiscard]] virtual sim::Co<RpcReply> rpc(Thread& self, NodeId dst,
                                              net::Payload request) = 0;

  /// Server side: send the reply for `ticket`. May be called from the upcall
  /// itself or (asynchronously) from any other thread — the latter is cheap
  /// only in the user-space binding.
  [[nodiscard]] virtual sim::Co<void> rpc_reply(Thread& self, RpcTicket ticket,
                                                net::Payload reply) = 0;

  /// Totally-ordered, blocking group send (returns after own delivery).
  [[nodiscard]] virtual sim::Co<void> group_send(Thread& self,
                                                 net::Payload message) = 0;

  /// Sequenced leave / re-join of the broadcast group (replicated-sequencer
  /// mode only): the membership change rides the ordered log, so every
  /// member agrees on the seqno where this node's window closes / reopens.
  [[nodiscard]] virtual sim::Co<void> group_leave(Thread& self) = 0;
  [[nodiscard]] virtual sim::Co<void> group_rejoin(Thread& self) = 0;

  /// Fault injection: this node's group stack goes silent — timers
  /// cancelled, ingress dropped, the Paxos core (if any) crashed. Blocked
  /// group_send callers on this node never return.
  virtual void group_crash() = 0;

  /// Views adopted by this member (replicated-sequencer mode; 0 classic).
  [[nodiscard]] virtual std::uint64_t group_view_changes() const = 0;
  /// Sequencer history-overflow status rounds run on this node.
  [[nodiscard]] virtual std::uint64_t group_status_rounds() const = 0;

  /// The kernel-bypass verbs device backing this Panda, or nullptr for the
  /// kernel/user bindings. Orca uses it to issue one-sided READs against
  /// remote shared objects instead of full RPCs.
  [[nodiscard]] virtual bypass::BypassDevice* bypass_device() noexcept {
    return nullptr;
  }

  /// Convenience: spawn a thread on this node.
  Thread& start_thread(std::string name,
                       std::function<sim::Co<void>(Thread&)> body) {
    return kernel_->start_thread(std::move(name), std::move(body));
  }

 protected:
  Panda(Kernel& kernel, ClusterConfig config)
      : kernel_(&kernel), config_(std::move(config)) {}

  Kernel* kernel_;
  ClusterConfig config_;
  RpcHandler rpc_handler_;
  GroupHandler group_handler_;
};

/// Instantiate the binding selected by `config.binding` for `kernel`'s node.
[[nodiscard]] std::unique_ptr<Panda> make_panda(Kernel& kernel,
                                                const ClusterConfig& config);

}  // namespace panda
