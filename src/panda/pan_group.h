// Panda's user-space totally-ordered group protocol (§3.2, §4.3).
//
// Same sequencer design as the kernel protocol (PB for small messages, BB
// for large ones, history buffer with status rounds, gap-triggered
// retransmission) with two structural differences the paper measures:
//
//   * The sequencer is an ordinary user thread. Every request costs a thread
//     switch out of the interrupt path (110 us, or 60 us when the sequencer
//     machine is dedicated and its context stays loaded) plus two syscalls
//     (fetch + multicast) and user/kernel copies.
//
//   * Ordering happens at the *fragment* level: the sender fragments first
//     (one 20 us fragmentation-layer charge at the sending member only) and
//     each fragment is sequenced independently; receivers deliver a message
//     when its last fragment arrives in order. The sequencer never
//     reassembles.
//
// Senders block on a condition variable and are notified by the receive
// daemon — a kernel signal with its crossing and underflow traps, which the
// in-kernel protocol avoids (§4.3's 40 us).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>

#include "amoeba/kernel.h"
#include "metrics/handles.h"
#include "panda/pan_sys.h"
#include "panda/panda.h"
#include "paxos/paxos.h"
#include "sim/flat_map.h"
#include "sim/co.h"

namespace panda {

class PanGroup {
 public:
  PanGroup(Kernel& kernel, PanSys& sys, const ClusterConfig& config)
      : kernel_(&kernel), sys_(&sys), config_(&config) {
    const metrics::NodeMetrics nm(kernel.sim().metrics(), kernel.node());
    m_sends_ = nm.counter("group.sends");
    m_retransmits_ = nm.counter("group.retransmits");
    m_deliveries_ = nm.counter("group.deliveries");
    m_send_latency_ = nm.histogram("group.send_latency_ns");
  }

  PanGroup(const PanGroup&) = delete;
  PanGroup& operator=(const PanGroup&) = delete;

  void set_handler(GroupHandler h) { handler_ = std::move(h); }

  /// Register module handlers; on the sequencer node, start the sequencer
  /// thread.
  void start();

  /// Blocking, totally-ordered send.
  [[nodiscard]] sim::Co<void> send(Thread& self, net::Payload msg);

  /// Sequenced leave / re-join (replicated-sequencer mode only).
  [[nodiscard]] sim::Co<void> leave(Thread& self);
  [[nodiscard]] sim::Co<void> rejoin(Thread& self);

  /// Fault injection: this node's group stack goes silent (timers cancelled,
  /// ingress dropped, Paxos core crashed).
  void crash();

  [[nodiscard]] std::uint32_t delivered_up_to() const noexcept {
    return pax_ ? pax_->applied() : next_expected_ - 1;
  }
  [[nodiscard]] bool is_sequencer() const noexcept {
    return config_->sequencer == kernel_->node();
  }
  [[nodiscard]] std::uint64_t sequenced_count() const noexcept {
    if (pax_) return pax_->sequenced_count();
    return seq_ ? seq_->total_sequenced : 0;
  }
  [[nodiscard]] std::uint64_t view_changes() const noexcept {
    return pax_ ? pax_->view_changes() : 0;
  }
  [[nodiscard]] std::uint64_t retransmit_requests() const noexcept { return retreqs_; }
  [[nodiscard]] std::uint64_t status_rounds() const noexcept { return status_rounds_; }
  [[nodiscard]] std::uint64_t bb_sends() const noexcept { return bb_sends_; }

 private:
  enum class MsgType : std::uint8_t {
    kReq = 1,
    kBody = 2,
    kAcceptFull = 3,
    kAcceptRef = 4,
    kRetReq = 5,
    kRetrans = 6,
    kStatusReq = 7,
    kStatus = 8,
    kPax = 9,         // replicated mode: payload is one paxos::Participant wire
    kPaxDeliver = 10,  // replica seq thread -> own daemon: one applied decision
  };

  /// One sequencing unit: a single fragment of a member message.
  struct Unit {
    Unit() = default;
    std::uint32_t seqno = 0;
    NodeId sender = 0;
    std::uint32_t msg_id = 0;
    std::uint16_t frag_idx = 0;
    std::uint16_t frag_count = 0;
    net::Payload payload;
    bool pending_bb = false;  // only meaningful on the sequencer's hold queue
  };

  struct UnitKey {
    NodeId sender;
    std::uint32_t msg_id;
    std::uint16_t frag_idx;
    bool operator<(const UnitKey& o) const noexcept {
      if (sender != o.sender) return sender < o.sender;
      if (msg_id != o.msg_id) return msg_id < o.msg_id;
      return frag_idx < o.frag_idx;
    }
  };

  struct PendingSend {
    Thread* thread = nullptr;
    bool done = false;
    std::vector<net::Payload> wires;  // per-fragment, for retries
    net::Payload body;                // app payload (replicated-mode resends)
    paxos::CmdKind cmd = paxos::CmdKind::kApp;
    bool bb = false;
    int retries = 0;
    sim::EventHandle retry;  // next send_retry_tick; cancelled on completion
  };

  struct SequencerState {
    std::uint32_t next_seqno = 1;
    std::deque<Unit> history;
    // Message-key -> seqno dedup map. An entry is created (seqno 0) when the
    // message is held on the pending queue and kept after its history slot
    // is trimmed — until it ages out of `retired` — so a late retry is
    // answered from history or dropped, never sequenced a second time.
    std::map<UnitKey, std::uint32_t> sequenced;
    std::deque<UnitKey> retired;  // trimmed message keys, oldest first
    sim::FlatMap<NodeId, std::uint32_t> horizon;
    std::deque<Unit> pending;
    bool status_round_active = false;
    std::uint64_t total_sequenced = 0;
    // Tail-loss watchdog: while any member's delivery horizon lags the
    // sequencing horizon, periodically solicit status and retransmit the
    // next missing message to each laggard. Without this, an accept lost on
    // the *last* message of a burst would never be detected (receivers only
    // notice gaps when later traffic arrives).
    sim::EventHandle lag_probe;
    sim::Time last_progress = 0;
  };

  [[nodiscard]] sim::Co<void> sequencer_loop(Thread& self);
  [[nodiscard]] sim::Co<void> seq_handle(Thread& self, SysMsg msg);
  [[nodiscard]] sim::Co<void> seq_sequence(Thread& self, Unit unit, bool bb);
  [[nodiscard]] sim::Co<void> seq_emit(Thread& self, const Unit& unit, bool bb);
  void seq_trim();
  void arm_lag_watchdog();
  void lag_watchdog_tick();
  [[nodiscard]] sim::Co<void> seq_drain(Thread& self);

  [[nodiscard]] sim::Co<void> on_group_message(SysMsg msg);
  [[nodiscard]] sim::Co<void> member_accept(Unit unit);
  [[nodiscard]] sim::Co<void> deliver_ready();
  void arm_gap_timer();
  void send_retry_tick(std::uint32_t msg_id);

  // Replicated-sequencer mode. The Paxos core runs in the sequencer thread
  // on replica nodes (every wire pays the daemon->sequencer thread switch,
  // the user-space cost the paper measures) and inline in the receive daemon
  // on plain members.
  [[nodiscard]] sim::Co<void> paxos_submit(Thread& self, paxos::CmdKind cmd,
                                           net::Payload msg);
  [[nodiscard]] sim::Co<void> pax_send_request(Thread& ctx, PendingSend& p,
                                               std::uint32_t msg_id,
                                               bool escalate);
  [[nodiscard]] sim::Co<void> pax_seq_handle(Thread& self, SysMsg msg);
  [[nodiscard]] sim::Co<void> pax_flush(Thread& ctx, paxos::Out out);
  [[nodiscard]] sim::Co<void> pax_wire_out(Thread& ctx, bool multicast,
                                           NodeId dst, const net::Payload& core);
  [[nodiscard]] sim::Co<void> deliver_paxos(std::uint32_t seqno, NodeId sender,
                                            paxos::CmdKind kind,
                                            std::uint32_t msg_id,
                                            net::Payload payload);
  void arm_pax_tick();

  [[nodiscard]] net::Payload make_wire(MsgType type, const Unit& unit,
                                       std::uint32_t horizon);
  [[nodiscard]] static Unit parse_wire(const net::Payload& p,
                                       std::size_t header_bytes,
                                       std::uint8_t& type_out,
                                       std::uint32_t& horizon_out);

  Kernel* kernel_;
  PanSys* sys_;
  const ClusterConfig* config_;
  net::Writer wire_writer_;
  net::Writer assembled_writer_;  // reassembles BB bodies; never held across a suspend
  metrics::CounterHandle m_sends_;
  metrics::CounterHandle m_retransmits_;
  metrics::CounterHandle m_deliveries_;
  metrics::HistogramHandle m_send_latency_;
  GroupHandler handler_;
  Thread* seq_thread_ = nullptr;
  std::unique_ptr<SequencerState> seq_;
  std::unique_ptr<paxos::Participant> pax_;
  sim::EventHandle pax_tick_;
  bool crashed_ = false;

  std::uint32_t next_expected_ = 1;
  std::map<std::uint32_t, Unit> out_of_order_;
  std::map<UnitKey, net::Payload> bb_bodies_;
  // Accepts that arrived before their (BB) bodies, keyed (sender, msg_id).
  std::map<std::pair<NodeId, std::uint32_t>, Unit> pending_accepts_;
  std::unordered_map<std::uint32_t, PendingSend*> sends_in_flight_;
  sim::EventHandle gap_probe_;  // pending gap-request; cancelled as gaps close
  std::uint32_t next_msg_id_ = 1;
  std::uint64_t retreqs_ = 0;
  std::uint64_t status_rounds_ = 0;
  std::uint64_t bb_sends_ = 0;
};

}  // namespace panda
