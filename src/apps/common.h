// Shared harness for the six parallel Orca applications of §5.
//
// A Cluster boots `processors` nodes with the chosen Panda binding, an Orca
// RTS per node, and runs an application: a setup phase on node 0 (creating
// the shared objects) followed by one worker process per worker node. The
// paper's "user-space-dedicated" configuration sacrifices one of the
// processors to run only the group sequencer; the workers run on the rest.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "amoeba/world.h"
#include "orca/rts.h"
#include "panda/panda.h"
#include "sim/rng.h"

namespace apps {

using orca::ObjHandle;
using orca::Process;
using orca::Rts;

struct RunConfig {
  panda::Binding binding = panda::Binding::kUserSpace;
  /// Total processors (pool size). With a dedicated sequencer, one of them
  /// runs only the sequencer and workers() == processors - 1.
  std::size_t processors = 1;
  bool dedicated_sequencer = false;
  std::uint64_t seed = 42;
  /// Attach a metrics::Metrics hub to the cluster's World (pure observation,
  /// never perturbs the run).
  bool metrics = false;
};

struct ClusterStats {
  std::uint64_t group_writes = 0;
  std::uint64_t remote_invocations = 0;
  std::uint64_t continuations_created = 0;
  std::uint64_t continuations_resumed = 0;
  std::uint64_t bytes_on_wire = 0;
  double max_segment_utilization = 0.0;
};

class Cluster {
 public:
  Cluster(const RunConfig& config, const orca::TypeRegistry& registry);
  ~Cluster();

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }
  [[nodiscard]] Rts& rts(std::size_t worker) { return *rtses_.at(worker); }
  [[nodiscard]] amoeba::World& world() noexcept { return *world_; }
  [[nodiscard]] sim::Simulator& sim() noexcept { return world_->sim(); }

  using SetupFn = std::function<sim::Co<void>(Process&)>;
  using WorkerFn =
      std::function<sim::Co<void>(Process&, std::size_t index, std::size_t count)>;

  /// Run `setup` on worker 0 to completion, then fork one worker process per
  /// worker node and drive the simulation until all complete. Returns the
  /// simulated time the parallel phase took.
  sim::Time run(const SetupFn& setup, const WorkerFn& worker);

  [[nodiscard]] ClusterStats stats() const;

 private:
  RunConfig config_;
  std::size_t workers_;
  std::unique_ptr<amoeba::World> world_;
  std::vector<std::unique_ptr<panda::Panda>> pandas_;
  std::vector<std::unique_ptr<Rts>> rtses_;
};

/// Deterministic helper shared by the workload generators.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace apps
