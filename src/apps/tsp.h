// The Travelling Salesman Problem (§5): replicated branch-and-bound.
//
// "The frequently accessed data object holding the shortest path is
//  replicated by the Orca RTS, so it can be read locally. The only
//  communication that takes place is needed for operations to fetch jobs
//  from a central queue object, but the number of jobs is small: 2184."
//
// 2184 = 14 x 13 x 12: a 15-city instance with jobs generated to prefix
// depth 4 (start city fixed). Workers expand jobs with depth-first search,
// pruning on (partial cost + minimum-outgoing-edge bound) against the
// replicated global bound; improvements are broadcast as totally-ordered
// writes. Superlinear speedups can occur because parallel search finds good
// bounds earlier.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.h"

namespace apps {

struct TspParams {
  RunConfig run;
  int cities = 15;
  std::uint64_t instance_seed = 11;
  /// Simulated CPU per search-tree node (calibrated to Table 3's
  /// single-processor time).
  sim::Time work_per_node = sim::usec(1100);
  /// Nodes searched between global-bound refreshes / work charges.
  int batch = 512;
  int prefix_depth = 4;
};

struct TspResult {
  sim::Time elapsed = 0;
  std::int64_t best_cost = 0;
  std::uint64_t nodes_expanded = 0;
  std::uint64_t jobs = 0;
  std::uint64_t bound_updates = 0;
  ClusterStats stats;
};

/// Deterministic distance matrix for the instance.
[[nodiscard]] std::vector<std::vector<int>> tsp_distances(int cities,
                                                          std::uint64_t seed);

/// Sequential exact solver (for verification at small sizes).
[[nodiscard]] std::int64_t tsp_reference(int cities, std::uint64_t seed);

/// Run the parallel Orca TSP application.
[[nodiscard]] TspResult run_tsp(const TspParams& params);

}  // namespace apps
