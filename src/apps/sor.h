// Successive Overrelaxation (§5): red-black SOR on a 2-D grid.
//
// Like Region Labeling, a finite-element method whose workers exchange
// boundary rows with their neighbours through shared buffer objects (remote
// guarded BufGet/BufPut) once per colour phase, plus a per-iteration
// max-delta reduction. The fine grain is what makes the kernel-space
// binding's extra context switch per blocked guarded operation visible.
#pragma once

#include <cstdint>

#include "apps/common.h"

namespace apps {

struct SorParams {
  RunConfig run;
  int n = 512;
  int iterations = 100;
  double omega = 1.2;
  std::uint64_t instance_seed = 33;
  /// Simulated CPU per cell update (calibrated to Table 3's 118 s).
  sim::Time work_per_cell = sim::nsec(4500);
};

struct SorResult {
  sim::Time elapsed = 0;
  std::uint64_t checksum = 0;  // bit pattern hash of the final grid
  double final_delta = 0.0;
  std::uint64_t buffer_ops = 0;
  ClusterStats stats;
};

[[nodiscard]] std::uint64_t sor_reference(const SorParams& params,
                                          double* final_delta);

[[nodiscard]] SorResult run_sor(const SorParams& params);

}  // namespace apps
