#include "apps/common.h"

#include "sim/require.h"

namespace apps {

Cluster::Cluster(const RunConfig& config, const orca::TypeRegistry& registry)
    : config_(config) {
  sim::require(config.processors >= 1, "Cluster: need at least one processor");
  sim::require(!config.dedicated_sequencer || config.processors >= 2,
               "Cluster: a dedicated sequencer needs a second processor");
  workers_ = config.dedicated_sequencer ? config.processors - 1 : config.processors;

  amoeba::WorldConfig wc;
  wc.seed = config.seed;
  wc.metrics = config.metrics;
  world_ = std::make_unique<amoeba::World>(wc);
  world_->add_nodes(config.processors);

  panda::ClusterConfig cc;
  cc.binding = config.binding;
  for (amoeba::NodeId i = 0; i < config.processors; ++i) cc.nodes.push_back(i);
  // With a dedicated sequencer the *last* node runs only the sequencer; the
  // default places the sequencer on worker 0's node.
  cc.sequencer = config.dedicated_sequencer
                     ? static_cast<amoeba::NodeId>(config.processors - 1)
                     : 0;
  for (amoeba::NodeId i = 0; i < config.processors; ++i) {
    pandas_.push_back(panda::make_panda(world_->kernel(i), cc));
    rtses_.push_back(std::make_unique<Rts>(*pandas_.back(), registry));
    rtses_.back()->attach();
  }
  for (auto& p : pandas_) p->start();
}

Cluster::~Cluster() = default;

sim::Time Cluster::run(const SetupFn& setup, const WorkerFn& worker) {
  bool setup_done = false;
  rtses_[0]->fork("setup", [&](Process& p) -> sim::Co<void> {
    co_await setup(p);
    setup_done = true;
  });
  world_->sim().run();
  sim::require(setup_done, "Cluster::run: setup did not complete");

  const sim::Time t0 = world_->sim().now();
  std::size_t done = 0;
  for (std::size_t w = 0; w < workers_; ++w) {
    rtses_[w]->fork("worker", [&, w](Process& p) -> sim::Co<void> {
      co_await worker(p, w, workers_);
      ++done;
    });
  }
  world_->sim().run();
  sim::require(done == workers_, "Cluster::run: a worker failed to finish");
  return world_->sim().now() - t0;
}

ClusterStats Cluster::stats() const {
  ClusterStats s;
  for (const auto& r : rtses_) {
    s.group_writes += r->group_writes();
    s.remote_invocations += r->remote_invocations();
    s.continuations_created += r->continuations_created();
    s.continuations_resumed += r->continuations_resumed();
  }
  s.bytes_on_wire = world_->network().total_bytes_carried();
  amoeba::World& w = const_cast<amoeba::World&>(*world_);
  for (std::size_t i = 0; i < w.network().segment_count(); ++i) {
    s.max_segment_utilization = std::max(s.max_segment_utilization,
                                         w.network().segment(i).utilization());
  }
  return s;
}

}  // namespace apps
