// Region Labeling (§5): iterative connected-component labeling.
//
// A finite-element-style grid method: every iteration each cell of the
// foreground takes the minimum label of its 4-neighbourhood; iterate until
// nothing changes anywhere. Workers own row blocks and "exchange boundary
// elements with their neighbors by means of shared buffer objects" —
// remote guarded BufGet/BufPut operations, the workload where the
// user-space protocols beat the kernel-space ones in Table 3.
#pragma once

#include <cstdint>

#include "apps/common.h"

namespace apps {

struct RlParams {
  RunConfig run;
  int n = 512;
  /// Foreground density in percent; drives cluster diameters and hence the
  /// iteration count.
  int density_pct = 58;
  std::uint64_t instance_seed = 20;
  /// Simulated CPU per cell update (calibrated to Table 3's 759 s).
  sim::Time work_per_cell = sim::nsec(4700);
};

struct RlResult {
  sim::Time elapsed = 0;
  std::uint64_t checksum = 0;
  int iterations = 0;
  std::uint64_t buffer_ops = 0;  // remote guarded Put/Get invocations
  ClusterStats stats;
};

[[nodiscard]] std::uint64_t rl_reference(int n, int density_pct,
                                         std::uint64_t seed, int* iterations);

[[nodiscard]] RlResult run_rl(const RlParams& params);

}  // namespace apps
