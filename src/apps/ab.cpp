#include "apps/ab.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "sim/require.h"

namespace apps {

namespace {

using orca::ObjectHints;
using orca::ObjectState;
using orca::OpDef;
using orca::TypeRegistry;

constexpr int kInfScore = 1 << 20;

/// Deterministic synthetic game tree: a node is identified by the hash of
/// its path; leaves evaluate to a pseudo-random score.
struct Tree {
  int depth;
  int branching;
  std::uint64_t seed;

  [[nodiscard]] int leaf_value(std::uint64_t node) const {
    return static_cast<int>(mix64(node ^ seed) % 2001) - 1000;
  }
  [[nodiscard]] std::uint64_t child(std::uint64_t node, int i) const {
    return mix64(node * 31 + static_cast<std::uint64_t>(i) + 1);
  }
};

/// Negamax alpha-beta. Counts visited nodes.
int alphabeta(const Tree& t, std::uint64_t node, int depth, int alpha, int beta,
              std::uint64_t& nodes) {
  ++nodes;
  if (depth == 0) return t.leaf_value(node);
  int best = -kInfScore;
  for (int i = 0; i < t.branching; ++i) {
    const int v =
        -alphabeta(t, t.child(node, i), depth - 1, -beta, -alpha, nodes);
    best = std::max(best, v);
    alpha = std::max(alpha, v);
    if (alpha >= beta) break;
  }
  return best;
}

// --- Orca objects ------------------------------------------------------------

struct JobsState final : ObjectState {
  std::deque<int> moves;
};

struct ScoreState final : ObjectState {
  int best = -kInfScore;
  int best_move = -1;
};

struct AbTypes {
  orca::TypeId jobs = 0;
  orca::TypeId score = 0;
  orca::OpId get_move = 0;
  orca::OpId read_score = 0;
  orca::OpId offer_score = 0;
};

AbTypes register_types(TypeRegistry& reg) {
  AbTypes t;
  orca::ObjectType jobs("ab-jobs", [](const net::Payload& init) {
    auto s = std::make_unique<JobsState>();
    net::Reader r(init);
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) s->moves.push_back(r.i32());
    return s;
  });
  t.get_move = jobs.add_operation(OpDef{
      .name = "get_move",
      .is_write = true,
      .guard = nullptr,
      .apply =
          [](ObjectState& s, const net::Payload&) {
            auto& q = static_cast<JobsState&>(s);
            net::Writer w;
            if (q.moves.empty()) {
              w.i32(-1);
            } else {
              w.i32(q.moves.front());
              q.moves.pop_front();
            }
            return w.take();
          },
      .cost = sim::usec(10)});
  t.jobs = reg.register_type(std::move(jobs));

  orca::ObjectType score("ab-score", [](const net::Payload&) {
    return std::make_unique<ScoreState>();
  });
  t.read_score = score.add_operation(OpDef{
      .name = "read",
      .is_write = false,
      .guard = nullptr,
      .apply =
          [](ObjectState& s, const net::Payload&) {
            auto& sc = static_cast<ScoreState&>(s);
            net::Writer w;
            w.i32(sc.best);
            w.i32(sc.best_move);
            return w.take();
          },
      .cost = 0});
  t.offer_score = score.add_operation(OpDef{
      .name = "offer",
      .is_write = true,
      .guard = nullptr,
      .apply =
          [](ObjectState& s, const net::Payload& args) {
            auto& sc = static_cast<ScoreState&>(s);
            net::Reader r(args);
            const int v = r.i32();
            const int move = r.i32();
            if (v > sc.best) {
              sc.best = v;
              sc.best_move = move;
            }
            net::Writer w;
            w.i32(sc.best);
            w.i32(sc.best_move);
            return w.take();
          },
      .cost = sim::usec(5)});
  t.score = reg.register_type(std::move(score));
  return t;
}

}  // namespace

AbResult ab_reference(const AbParams& params) {
  const Tree tree{params.depth, params.branching, params.instance_seed};
  AbResult r;
  int alpha = -kInfScore;
  for (int move = 0; move < params.root_moves; ++move) {
    const std::uint64_t subtree = mix64(0xAB00 + move);
    const int v = -alphabeta(tree, subtree, params.depth, -kInfScore, -alpha,
                             r.nodes_visited);
    if (v > r.best_score || r.best_move < 0) {
      r.best_score = v;
      r.best_move = move;
      alpha = std::max(alpha, v);
    }
  }
  return r;
}

AbResult run_ab(const AbParams& params) {
  TypeRegistry registry;
  const AbTypes types = register_types(registry);
  Cluster cluster(params.run, registry);
  const Tree tree{params.depth, params.branching, params.instance_seed};

  ObjHandle jobs;
  ObjHandle score;
  const auto setup = [&](Process& p) -> sim::Co<void> {
    net::Writer jinit;
    jinit.u32(static_cast<std::uint32_t>(params.root_moves));
    for (int m = 0; m < params.root_moves; ++m) jinit.i32(m);
    jobs = co_await p.rts().create_object(
        p.thread(), types.jobs, jinit.take(),
        ObjectHints{.expected_read_fraction = 0.0});
    score = co_await p.rts().create_object(
        p.thread(), types.score, net::Payload(),
        ObjectHints{.expected_read_fraction = 0.95});
  };

  std::uint64_t total_nodes = 0;
  int best_score = -kInfScore;
  int best_move = -1;

  const auto worker = [&](Process& p, std::size_t, std::size_t) -> sim::Co<void> {
    for (;;) {
      net::Payload mp = co_await p.invoke(jobs, types.get_move);
      net::Reader mr(mp);
      const int move = mr.i32();
      if (move < 0) break;
      // Read the global alpha from the local replica (possibly stale:
      // this is the source of parallel search overhead).
      net::Payload sp = co_await p.invoke(score, types.read_score);
      net::Reader sr(sp);
      const int alpha = sr.i32();
      std::uint64_t nodes = 0;
      const std::uint64_t subtree = mix64(0xAB00 + move);
      const int v = -alphabeta(tree, subtree, params.depth, -kInfScore, -alpha,
                               nodes);
      total_nodes += nodes;
      co_await p.work(params.work_per_node * static_cast<sim::Time>(nodes));
      if (v > alpha) {
        net::Writer w;
        w.i32(v);
        w.i32(move);
        net::Payload res = co_await p.invoke(score, types.offer_score, w.take());
        net::Reader rr(res);
        // Offer results are monotone in total order; keep the maximum seen.
        const int cur = rr.i32();
        const int cur_move = rr.i32();
        if (cur > best_score) {
          best_score = cur;
          best_move = cur_move;
        }
      }
    }
  };

  AbResult result;
  result.elapsed = cluster.run(setup, worker);
  result.nodes_visited = total_nodes;
  result.best_score = best_score;
  result.best_move = best_move;
  result.stats = cluster.stats();
  return result;
}

}  // namespace apps
