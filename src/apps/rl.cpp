#include "apps/rl.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "apps/exchange.h"
#include "sim/require.h"

namespace apps {

namespace {

std::vector<std::vector<int>> make_image(int n, int density_pct,
                                         std::uint64_t seed) {
  // Foreground cells carry unique labels; background is 0.
  std::vector<std::vector<int>> labels(n, std::vector<int>(n, 0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const auto h =
          mix64(seed ^ (static_cast<std::uint64_t>(i) << 32 | static_cast<std::uint64_t>(j)));
      if (static_cast<int>(h % 100) < density_pct) labels[i][j] = i * n + j + 1;
    }
  }
  return labels;
}

/// One Jacobi relabeling pass over rows [lo, hi). `up` and `down` are the
/// ghost rows (empty at the image edges). Returns true if anything changed.
bool relabel_block(const std::vector<std::vector<int>>& cur,
                   std::vector<std::vector<int>>& next, int lo, int hi,
                   const std::vector<int>& up, const std::vector<int>& down) {
  const int n = static_cast<int>(cur[0].size());
  bool changed = false;
  for (int i = lo; i < hi; ++i) {
    const std::vector<int>* above =
        i > lo ? &cur[i - 1] : (up.empty() ? nullptr : &up);
    const std::vector<int>* below =
        i + 1 < hi ? &cur[i + 1] : (down.empty() ? nullptr : &down);
    for (int j = 0; j < n; ++j) {
      const int old = cur[i][j];
      if (old == 0) {
        next[i][j] = 0;
        continue;
      }
      int m = old;
      if (above != nullptr && (*above)[j] != 0) m = std::min(m, (*above)[j]);
      if (below != nullptr && (*below)[j] != 0) m = std::min(m, (*below)[j]);
      if (j > 0 && cur[i][j - 1] != 0) m = std::min(m, cur[i][j - 1]);
      if (j + 1 < n && cur[i][j + 1] != 0) m = std::min(m, cur[i][j + 1]);
      next[i][j] = m;
      changed = changed || m != old;
    }
  }
  return changed;
}

std::uint64_t grid_checksum(const std::vector<std::vector<int>>& g) {
  std::uint64_t sum = 0;
  for (const auto& row : g) {
    for (const int v : row) sum = sum * 1099511628211ULL + static_cast<unsigned>(v);
  }
  return sum;
}

}  // namespace

std::uint64_t rl_reference(int n, int density_pct, std::uint64_t seed,
                           int* iterations) {
  auto cur = make_image(n, density_pct, seed);
  auto next = cur;
  int iters = 0;
  for (;;) {
    ++iters;
    const bool changed =
        relabel_block(cur, next, 0, n, std::vector<int>(), std::vector<int>());
    std::swap(cur, next);
    if (!changed) break;
  }
  if (iterations != nullptr) *iterations = iters;
  return grid_checksum(cur);
}

RlResult run_rl(const RlParams& params) {
  orca::TypeRegistry registry;
  const BufferTypes buf = register_buffer_type(registry);
  const ReduceTypes red = register_reduce_type(registry);
  Cluster cluster(params.run, registry);
  const int n = params.n;
  const std::size_t workers = cluster.workers();
  const auto lo = [&](std::size_t w) { return static_cast<int>(w * n / workers); };
  const auto hi = [&](std::size_t w) {
    return static_cast<int>((w + 1) * n / workers);
  };

  auto cur = make_image(params.n, params.density_pct, params.instance_seed);
  auto next = cur;

  // Buffers: up_out[w] carries w's top row to w-1; down_out[w] carries w's
  // bottom row to w+1. Each lives on the producer's node.
  std::vector<ObjHandle> up_out(workers);
  std::vector<ObjHandle> down_out(workers);
  ObjHandle reduce;

  const auto setup = [&](Process& p) -> sim::Co<void> {
    net::Writer rinit;
    rinit.u32(static_cast<std::uint32_t>(workers));
    reduce = co_await p.rts().create_object(
        p.thread(), red.type, rinit.take(),
        orca::ObjectHints{.expected_read_fraction = 0.0});
    co_return;
  };

  // Per-worker buffer creation happens inside the worker (so the object
  // lives on the producer's node); a host-side latch hands the handles over.
  std::vector<bool> buffers_ready(workers, false);

  int iterations = 0;
  std::uint64_t buffer_ops = 0;

  const auto worker = [&](Process& p, std::size_t w, std::size_t) -> sim::Co<void> {
    if (w > 0) {
      up_out[w] = co_await p.rts().create_object(
          p.thread(), buf.type, net::Payload(),
          orca::ObjectHints{.expected_read_fraction = 0.0});
    }
    if (w + 1 < workers) {
      down_out[w] = co_await p.rts().create_object(
          p.thread(), buf.type, net::Payload(),
          orca::ObjectHints{.expected_read_fraction = 0.0});
    }
    buffers_ready[w] = true;
    // Wait until the neighbours' buffers exist.
    const auto neighbours_ready = [&] {
      return (w == 0 || buffers_ready[w - 1]) &&
             (w + 1 >= workers || buffers_ready[w + 1]);
    };
    while (!neighbours_ready()) co_await sim::delay(p.rts().panda().sim(), sim::usec(200));

    for (int iter = 1;; ++iter) {
      // 1. Publish boundary rows (non-blocking unless the buffer is full).
      if (w > 0) {
        (void)co_await p.invoke(up_out[w], buf.put, encode_row(cur[lo(w)]));
        ++buffer_ops;
      }
      if (w + 1 < workers) {
        (void)co_await p.invoke(down_out[w], buf.put, encode_row(cur[hi(w) - 1]));
        ++buffer_ops;
      }
      // 2. Fetch ghost rows (remote guarded BufGet on the neighbour's node).
      std::vector<int> up_ghost;
      std::vector<int> down_ghost;
      if (w > 0) {
        up_ghost = decode_row(co_await p.invoke(down_out[w - 1], buf.get));
        ++buffer_ops;
      }
      if (w + 1 < workers) {
        down_ghost = decode_row(co_await p.invoke(up_out[w + 1], buf.get));
        ++buffer_ops;
      }
      // 3. Relabel the block.
      const bool changed =
          relabel_block(cur, next, lo(w), hi(w), up_ghost, down_ghost);
      co_await p.work(params.work_per_cell * static_cast<sim::Time>(n) *
                      static_cast<sim::Time>(hi(w) - lo(w)));
      for (int i = lo(w); i < hi(w); ++i) cur[i] = next[i];
      // 4. Global convergence test through the reduction object.
      net::Writer rep;
      rep.i32(iter);
      rep.u8(changed ? 1 : 0);
      rep.f64(0.0);
      (void)co_await p.invoke(reduce, red.report, rep.take());
      net::Writer ask;
      ask.i32(iter);
      net::Payload verdict = co_await p.invoke(reduce, red.await_verdict, ask.take());
      net::Reader vr(verdict);
      const bool any_changed = vr.u8() != 0;
      if (w == 0) iterations = iter;
      if (!any_changed) break;
    }
  };

  RlResult result;
  result.elapsed = cluster.run(setup, worker);
  result.checksum = grid_checksum(cur);
  result.iterations = iterations;
  result.buffer_ops = buffer_ops;
  result.stats = cluster.stats();
  return result;
}

}  // namespace apps
