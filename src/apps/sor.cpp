#include "apps/sor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "apps/exchange.h"
#include "sim/require.h"

namespace apps {

namespace {

using Grid = std::vector<std::vector<double>>;

Grid make_grid(int n, std::uint64_t seed) {
  Grid g(n, std::vector<double>(n, 0.0));
  // Fixed boundary values; interior starts at 0.
  for (int j = 0; j < n; ++j) {
    g[0][j] = static_cast<double>(mix64(seed ^ j) % 1000) / 10.0;
    g[n - 1][j] = static_cast<double>(mix64(seed ^ (j + 7777)) % 1000) / 10.0;
  }
  for (int i = 0; i < n; ++i) {
    g[i][0] = static_cast<double>(mix64(seed ^ (i + 3333)) % 1000) / 10.0;
    g[i][n - 1] = static_cast<double>(mix64(seed ^ (i + 5555)) % 1000) / 10.0;
  }
  return g;
}

/// One colour phase over rows [max(lo,1), min(hi,n-1)). Ghost rows stand in
/// for rows lo-1 / hi when they belong to a neighbour. Returns max |change|.
double sor_phase(Grid& g, int lo, int hi, int colour, double omega,
                 const std::vector<double>& up, const std::vector<double>& down) {
  const int n = static_cast<int>(g[0].size());
  double delta = 0.0;
  for (int i = std::max(lo, 1); i < std::min(hi, n - 1); ++i) {
    const std::vector<double>& above = (i - 1 >= lo) ? g[i - 1] : up;
    const std::vector<double>& below = (i + 1 < hi) ? g[i + 1] : down;
    for (int j = 1 + (i + colour) % 2; j < n - 1; j += 2) {
      const double nb = above[j] + below[j] + g[i][j - 1] + g[i][j + 1];
      const double updated = (1.0 - omega) * g[i][j] + omega * nb / 4.0;
      delta = std::max(delta, std::fabs(updated - g[i][j]));
      g[i][j] = updated;
    }
  }
  return delta;
}

std::uint64_t grid_hash(const Grid& g) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& row : g) {
    for (const double v : row) {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      h = (h ^ bits) * 1099511628211ULL;
    }
  }
  return h;
}

net::Payload encode_drow(const std::vector<double>& row) {
  net::Writer w;
  w.u32(static_cast<std::uint32_t>(row.size()));
  for (const double v : row) w.f64(v);
  return w.take();
}

std::vector<double> decode_drow(const net::Payload& p) {
  net::Reader r(p);
  std::vector<double> row(r.u32());
  for (auto& v : row) v = r.f64();
  return row;
}

}  // namespace

std::uint64_t sor_reference(const SorParams& params, double* final_delta) {
  Grid g = make_grid(params.n, params.instance_seed);
  double delta = 0.0;
  const std::vector<double> none;
  for (int iter = 0; iter < params.iterations; ++iter) {
    delta = sor_phase(g, 0, params.n, 0, params.omega, none, none);
    delta = std::max(delta,
                     sor_phase(g, 0, params.n, 1, params.omega, none, none));
  }
  if (final_delta != nullptr) *final_delta = delta;
  return grid_hash(g);
}

SorResult run_sor(const SorParams& params) {
  orca::TypeRegistry registry;
  const BufferTypes buf = register_buffer_type(registry);
  const ReduceTypes red = register_reduce_type(registry);
  Cluster cluster(params.run, registry);
  const int n = params.n;
  const std::size_t workers = cluster.workers();
  const auto lo = [&](std::size_t w) { return static_cast<int>(w * n / workers); };
  const auto hi = [&](std::size_t w) {
    return static_cast<int>((w + 1) * n / workers);
  };

  Grid grid = make_grid(params.n, params.instance_seed);

  std::vector<ObjHandle> up_out(workers);
  std::vector<ObjHandle> down_out(workers);
  ObjHandle reduce;
  std::vector<bool> buffers_ready(workers, false);

  const auto setup = [&](Process& p) -> sim::Co<void> {
    net::Writer rinit;
    rinit.u32(static_cast<std::uint32_t>(workers));
    reduce = co_await p.rts().create_object(
        p.thread(), red.type, rinit.take(),
        orca::ObjectHints{.expected_read_fraction = 0.0});
  };

  std::uint64_t buffer_ops = 0;
  double final_delta = 0.0;

  const auto worker = [&](Process& p, std::size_t w, std::size_t) -> sim::Co<void> {
    if (w > 0) {
      up_out[w] = co_await p.rts().create_object(
          p.thread(), buf.type, net::Payload(),
          orca::ObjectHints{.expected_read_fraction = 0.0});
    }
    if (w + 1 < workers) {
      down_out[w] = co_await p.rts().create_object(
          p.thread(), buf.type, net::Payload(),
          orca::ObjectHints{.expected_read_fraction = 0.0});
    }
    buffers_ready[w] = true;
    const auto neighbours_ready = [&] {
      return (w == 0 || buffers_ready[w - 1]) &&
             (w + 1 >= workers || buffers_ready[w + 1]);
    };
    while (!neighbours_ready()) {
      co_await sim::delay(p.rts().panda().sim(), sim::usec(200));
    }

    std::vector<double> none;
    for (int iter = 0; iter < params.iterations; ++iter) {
      double delta = 0.0;
      for (int colour = 0; colour < 2; ++colour) {
        // Exchange boundary rows for this phase.
        if (w > 0) {
          (void)co_await p.invoke(up_out[w], buf.put, encode_drow(grid[lo(w)]));
          ++buffer_ops;
        }
        if (w + 1 < workers) {
          (void)co_await p.invoke(down_out[w], buf.put,
                                  encode_drow(grid[hi(w) - 1]));
          ++buffer_ops;
        }
        std::vector<double> up_ghost;
        std::vector<double> down_ghost;
        if (w > 0) {
          up_ghost = decode_drow(co_await p.invoke(down_out[w - 1], buf.get));
          ++buffer_ops;
        }
        if (w + 1 < workers) {
          down_ghost = decode_drow(co_await p.invoke(up_out[w + 1], buf.get));
          ++buffer_ops;
        }
        delta = std::max(delta, sor_phase(grid, lo(w), hi(w), colour,
                                          params.omega, up_ghost, down_ghost));
        co_await p.work(params.work_per_cell * static_cast<sim::Time>(n) *
                        static_cast<sim::Time>(hi(w) - lo(w)) / 2);
      }
      // Per-iteration max-delta reduction (the convergence test).
      net::Writer rep;
      rep.i32(iter);
      rep.u8(0);
      rep.f64(delta);
      (void)co_await p.invoke(reduce, red.report, rep.take());
      net::Writer ask;
      ask.i32(iter);
      net::Payload verdict =
          co_await p.invoke(reduce, red.await_verdict, ask.take());
      net::Reader vr(verdict);
      (void)vr.u8();
      final_delta = vr.f64();
    }
  };

  SorResult result;
  result.elapsed = cluster.run(setup, worker);
  result.checksum = grid_hash(grid);
  result.final_delta = final_delta;
  result.buffer_ops = buffer_ops;
  result.stats = cluster.stats();
  return result;
}

}  // namespace apps
