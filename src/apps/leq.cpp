#include "apps/leq.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "sim/require.h"

namespace apps {

namespace {

using orca::ObjectHints;
using orca::ObjectState;
using orca::OpDef;

/// Diagonally dominant dense system Ax = b (Jacobi converges).
struct System {
  int n;
  std::uint64_t seed;
  std::vector<std::vector<double>> a;
  std::vector<double> b;
};

System make_system(int n, std::uint64_t seed) {
  System s;
  s.n = n;
  s.seed = seed;
  s.a.assign(n, std::vector<double>(n, 0.0));
  s.b.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      s.a[i][j] =
          static_cast<double>(mix64(seed ^ (static_cast<std::uint64_t>(i) << 32 |
                                            static_cast<std::uint64_t>(j))) %
                              100) /
          100.0;
    }
    s.a[i][i] = static_cast<double>(n) + 1.0;
    s.b[i] = static_cast<double>(mix64(seed ^ (i + 424242)) % 1000) / 10.0;
  }
  return s;
}

std::uint64_t vec_hash(const std::vector<double>& x) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const double v : x) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h = (h ^ bits) * 1099511628211ULL;
  }
  return h;
}

/// The replicated iteration board: per iteration, the P solution blocks and
/// the running max-delta.
struct BoardState final : ObjectState {
  std::size_t expected = 0;
  struct Round {
    std::size_t blocks = 0;
    std::vector<double> x;
    double delta = 0.0;
  };
  int n = 0;
  std::map<std::int32_t, Round> rounds;
};

struct LeqTypes {
  orca::TypeId board = 0;
  orca::OpId publish = 0;     // write: (iter, offset, block values, delta)
  orca::OpId await_iter = 0;  // guarded read: all blocks in -> (x, delta)
};

LeqTypes register_types(orca::TypeRegistry& reg) {
  LeqTypes t;
  orca::ObjectType board("leq-board", [](const net::Payload& init) {
    auto s = std::make_unique<BoardState>();
    net::Reader r(init);
    s->expected = r.u32();
    s->n = r.i32();
    return s;
  });
  t.publish = board.add_operation(OpDef{
      .name = "publish",
      .is_write = true,
      .guard = nullptr,
      .apply =
          [](ObjectState& s, const net::Payload& args) {
            auto& st = static_cast<BoardState&>(s);
            net::Reader r(args);
            const std::int32_t iter = r.i32();
            const std::int32_t offset = r.i32();
            const std::uint32_t len = r.u32();
            const double delta = r.f64();
            auto& round = st.rounds[iter];
            if (round.x.empty()) round.x.assign(st.n, 0.0);
            for (std::uint32_t k = 0; k < len; ++k) {
              round.x[offset + static_cast<std::int32_t>(k)] = r.f64();
            }
            ++round.blocks;
            round.delta = std::max(round.delta, delta);
            while (st.rounds.size() > 3) st.rounds.erase(st.rounds.begin());
            return net::Payload();
          },
      .cost = sim::usec(30)});
  t.await_iter = board.add_operation(OpDef{
      .name = "await_iter",
      .is_write = false,
      .guard =
          [](const ObjectState& s, const net::Payload& args) {
            const auto& st = static_cast<const BoardState&>(s);
            net::Reader r(args);
            const auto it = st.rounds.find(r.i32());
            return it != st.rounds.end() && it->second.blocks >= st.expected;
          },
      .apply =
          [](ObjectState& s, const net::Payload& args) {
            auto& st = static_cast<BoardState&>(s);
            net::Reader r(args);
            const auto& round = st.rounds.at(r.i32());
            net::Writer w;
            w.f64(round.delta);
            w.u32(static_cast<std::uint32_t>(round.x.size()));
            for (const double v : round.x) w.f64(v);
            return w.take();
          },
      .cost = sim::usec(25)});
  t.board = reg.register_type(std::move(board));
  return t;
}

}  // namespace

std::uint64_t leq_reference(const LeqParams& params, double* residual) {
  const System sys = make_system(params.n, params.instance_seed);
  std::vector<double> x(params.n, 0.0);
  std::vector<double> next(params.n, 0.0);
  for (int iter = 0; iter < params.iterations; ++iter) {
    for (int i = 0; i < params.n; ++i) {
      double acc = sys.b[i];
      const auto& row = sys.a[i];
      for (int j = 0; j < params.n; ++j) {
        if (j != i) acc -= row[j] * x[j];
      }
      next[i] = acc / row[i];
    }
    std::swap(x, next);
  }
  if (residual != nullptr) {
    double r = 0.0;
    for (int i = 0; i < params.n; ++i) {
      double acc = -sys.b[i];
      for (int j = 0; j < params.n; ++j) acc += sys.a[i][j] * x[j];
      r = std::max(r, std::fabs(acc));
    }
    *residual = r;
  }
  return vec_hash(x);
}

LeqResult run_leq(const LeqParams& params) {
  orca::TypeRegistry registry;
  const LeqTypes types = register_types(registry);
  Cluster cluster(params.run, registry);
  const int n = params.n;
  const std::size_t workers = cluster.workers();
  const auto lo = [&](std::size_t w) { return static_cast<int>(w * n / workers); };
  const auto hi = [&](std::size_t w) {
    return static_cast<int>((w + 1) * n / workers);
  };

  const System sys = make_system(params.n, params.instance_seed);
  std::vector<double> x_final(n, 0.0);
  double residual = 0.0;

  ObjHandle board;
  const auto setup = [&](Process& p) -> sim::Co<void> {
    net::Writer init;
    init.u32(static_cast<std::uint32_t>(workers));
    init.i32(n);
    board = co_await p.rts().create_object(
        p.thread(), types.board, init.take(),
        ObjectHints{.expected_read_fraction = 0.9});
  };

  const auto worker = [&](Process& p, std::size_t w, std::size_t) -> sim::Co<void> {
    std::vector<double> x(n, 0.0);
    std::vector<double> block(hi(w) - lo(w), 0.0);
    for (int iter = 0; iter < params.iterations; ++iter) {
      // Recompute my block from the previous global x.
      double delta = 0.0;
      for (int i = lo(w); i < hi(w); ++i) {
        double acc = sys.b[i];
        const auto& row = sys.a[i];
        for (int j = 0; j < n; ++j) {
          if (j != i) acc -= row[j] * x[j];
        }
        const double v = acc / row[i];
        delta = std::max(delta, std::fabs(v - x[i]));
        block[i - lo(w)] = v;
      }
      co_await p.work(params.work_per_cell * static_cast<sim::Time>(n) *
                      static_cast<sim::Time>(hi(w) - lo(w)));
      // Broadcast my block (a totally-ordered group write).
      net::Writer pub;
      pub.i32(iter);
      pub.i32(lo(w));
      pub.u32(static_cast<std::uint32_t>(block.size()));
      pub.f64(delta);
      for (const double v : block) pub.f64(v);
      (void)co_await p.invoke(board, types.publish, pub.take());
      // Barrier: wait for every block of this iteration, read the new x.
      net::Writer ask;
      ask.i32(iter);
      net::Payload xp = co_await p.invoke(board, types.await_iter, ask.take());
      net::Reader xr(xp);
      (void)xr.f64();  // global delta (available for convergence tests)
      const std::uint32_t len = xr.u32();
      sim::require(len == static_cast<std::uint32_t>(n), "leq: bad board");
      for (int i = 0; i < n; ++i) x[i] = xr.f64();
    }
    if (w == 0) x_final = x;
  };

  LeqResult result;
  result.elapsed = cluster.run(setup, worker);
  result.checksum = vec_hash(x_final);
  for (int i = 0; i < n; ++i) {
    double acc = -sys.b[i];
    for (int j = 0; j < n; ++j) acc += sys.a[i][j] * x_final[j];
    residual = std::max(residual, std::fabs(acc));
  }
  result.residual = residual;
  result.group_messages = cluster.stats().group_writes;
  result.stats = cluster.stats();
  return result;
}

}  // namespace apps
