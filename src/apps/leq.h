// Linear Equation Solver (§5): Jacobi iteration on a dense system.
//
// Every iteration each worker recomputes its block of the solution vector
// and broadcasts it (a totally-ordered write on a replicated board object);
// the iteration barrier is the guarded read that waits for all blocks.
//
// This is the group-communication-bound application: "the only application
// that shows a clear advantage for the kernel-space protocol. The poor
// performance on the user-space implementation is due to the sequencer's
// machine ... overloaded". Dedicating a processor to the sequencer
// (RunConfig::dedicated_sequencer) reproduces the paper's
// "user-space-dedicated" row. Halving the processor count doubles the
// per-iteration message count of half the size — the effect that makes the
// 32-processor runs *slower* than the 16-processor ones.
#pragma once

#include <cstdint>

#include "apps/common.h"

namespace apps {

struct LeqParams {
  RunConfig run;
  int n = 600;
  int iterations = 2400;
  std::uint64_t instance_seed = 77;
  /// Simulated CPU per multiply-accumulate (calibrated to Table 3's 521 s).
  sim::Time work_per_cell = sim::nsec(600);
};

struct LeqResult {
  sim::Time elapsed = 0;
  std::uint64_t checksum = 0;  // bit hash of the final solution vector
  double residual = 0.0;
  std::uint64_t group_messages = 0;
  ClusterStats stats;
};

[[nodiscard]] std::uint64_t leq_reference(const LeqParams& params,
                                          double* residual);

[[nodiscard]] LeqResult run_leq(const LeqParams& params);

}  // namespace apps
