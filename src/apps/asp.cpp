#include "apps/asp.h"

#include <algorithm>
#include <map>
#include <memory>

#include "sim/require.h"

namespace apps {

namespace {

using orca::ObjectHints;
using orca::ObjectState;
using orca::OpDef;
using orca::TypeRegistry;

constexpr int kInf = 1 << 28;

std::vector<std::vector<int>> make_graph(int n, std::uint64_t seed) {
  // Sparse-ish random digraph: ~8 out-edges per vertex plus a ring for
  // connectivity.
  std::vector<std::vector<int>> d(n, std::vector<int>(n, kInf));
  for (int i = 0; i < n; ++i) {
    d[i][i] = 0;
    d[i][(i + 1) % n] = 1 + static_cast<int>(mix64(seed ^ i) % 16);
    for (int e = 0; e < 8; ++e) {
      const auto h = mix64(seed ^ (static_cast<std::uint64_t>(i) << 20 | e));
      const int j = static_cast<int>(h % n);
      if (j != i) d[i][j] = std::min(d[i][j], 1 + static_cast<int>(h >> 32 & 63));
    }
  }
  return d;
}

std::uint64_t checksum(const std::vector<std::vector<int>>& d) {
  std::uint64_t sum = 0;
  for (const auto& row : d) {
    for (const int v : row) sum = sum * 1099511628211ULL + static_cast<unsigned>(v);
  }
  return sum;
}

/// The replicated pivot-row board: rows published so far (a sliding window;
/// consumers only ever wait for the current iteration's row).
struct BoardState final : ObjectState {
  std::map<int, std::vector<int>> rows;
};

struct AspTypes {
  orca::TypeId board = 0;
  orca::OpId publish = 0;   // write: add row k
  orca::OpId await_row = 0; // guarded read: block until row k present
};

AspTypes register_types(TypeRegistry& reg) {
  AspTypes t;
  orca::ObjectType board("asp-board", [](const net::Payload&) {
    return std::make_unique<BoardState>();
  });
  t.publish = board.add_operation(OpDef{
      .name = "publish",
      .is_write = true,
      .guard = nullptr,
      .apply =
          [](ObjectState& s, const net::Payload& args) {
            auto& b = static_cast<BoardState&>(s);
            net::Reader r(args);
            const int k = r.i32();
            const std::uint32_t len = r.u32();
            std::vector<int> row(len);
            for (auto& v : row) v = r.i32();
            b.rows.emplace(k, std::move(row));
            // Old rows are dead; keep a window generous enough for any
            // worker lag (workers self-synchronize through the guard, so the
            // lag is bounded by the compute pipeline depth).
            while (b.rows.size() > 40) b.rows.erase(b.rows.begin());
            return net::Payload();
          },
      .cost = sim::usec(40)});
  t.await_row = board.add_operation(OpDef{
      .name = "await_row",
      .is_write = false,
      .guard =
          [](const ObjectState& s, const net::Payload& args) {
            net::Reader r(args);
            return static_cast<const BoardState&>(s).rows.contains(r.i32());
          },
      .apply =
          [](ObjectState& s, const net::Payload& args) {
            auto& b = static_cast<BoardState&>(s);
            net::Reader r(args);
            const int k = r.i32();
            sim::require(b.rows.contains(k), "asp: pivot row evicted too early");
            const auto& row = b.rows.at(k);
            net::Writer w;
            w.u32(static_cast<std::uint32_t>(row.size()));
            for (const int v : row) w.i32(v);
            return w.take();
          },
      .cost = sim::usec(20)});
  t.board = reg.register_type(std::move(board));
  return t;
}

}  // namespace

std::uint64_t asp_reference(int n, std::uint64_t seed) {
  auto d = make_graph(n, seed);
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      const int dik = d[i][k];
      if (dik >= kInf) continue;
      for (int j = 0; j < n; ++j) {
        d[i][j] = std::min(d[i][j], dik + d[k][j]);
      }
    }
  }
  return checksum(d);
}

AspResult run_asp(const AspParams& params) {
  TypeRegistry registry;
  const AspTypes types = register_types(registry);
  Cluster cluster(params.run, registry);
  const int n = params.n;
  const std::size_t workers = cluster.workers();

  // Row-block partition. Worker w owns rows [lo(w), hi(w)).
  const auto lo = [&](std::size_t w) { return static_cast<int>(w * n / workers); };
  const auto hi = [&](std::size_t w) {
    return static_cast<int>((w + 1) * n / workers);
  };

  // Host-side matrix, row-partitioned: each worker touches only its rows,
  // except through published pivot rows (which travel through the object).
  auto matrix = make_graph(n, params.instance_seed);

  ObjHandle board;
  const auto setup = [&](Process& p) -> sim::Co<void> {
    board = co_await p.rts().create_object(
        p.thread(), types.board, net::Payload(),
        ObjectHints{.expected_read_fraction = 0.9});
  };

  const auto worker = [&](Process& p, std::size_t w, std::size_t) -> sim::Co<void> {
    for (int k = 0; k < n; ++k) {
      // The owner of row k publishes it (a ~3.1 KB group message).
      if (k >= lo(w) && k < hi(w)) {
        net::Writer pub;
        pub.i32(k);
        pub.u32(static_cast<std::uint32_t>(n));
        for (int j = 0; j < n; ++j) pub.i32(matrix[k][j]);
        (void)co_await p.invoke(board, types.publish, pub.take());
      }
      // Everyone waits for the pivot row, then relaxes its block.
      net::Writer ask;
      ask.i32(k);
      net::Payload rp = co_await p.invoke(board, types.await_row, ask.take());
      net::Reader rr(rp);
      const std::uint32_t len = rr.u32();
      sim::require(len == static_cast<std::uint32_t>(n), "asp: bad row");
      std::vector<int> pivot(n);
      for (auto& v : pivot) v = rr.i32();

      std::uint64_t relaxations = 0;
      for (int i = lo(w); i < hi(w); ++i) {
        const int dik = matrix[i][k];
        if (dik >= kInf) continue;
        auto& row = matrix[i];
        for (int j = 0; j < n; ++j) {
          row[j] = std::min(row[j], dik + pivot[j]);
        }
        relaxations += static_cast<std::uint64_t>(n);
      }
      co_await p.work(params.work_per_cell *
                      static_cast<sim::Time>(n) *
                      static_cast<sim::Time>(hi(w) - lo(w)));
      (void)relaxations;
    }
  };

  AspResult result;
  result.elapsed = cluster.run(setup, worker);
  result.checksum = checksum(matrix);
  result.group_messages = cluster.stats().group_writes;
  result.stats = cluster.stats();
  return result;
}

}  // namespace apps
