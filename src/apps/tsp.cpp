#include "apps/tsp.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "sim/require.h"

namespace apps {

namespace {

using orca::ObjectHints;
using orca::ObjectState;
using orca::OpDef;
using orca::TypeRegistry;

std::vector<std::vector<int>> make_distances(int cities, std::uint64_t seed) {
  std::vector<std::vector<int>> d(cities, std::vector<int>(cities, 0));
  for (int i = 0; i < cities; ++i) {
    for (int j = i + 1; j < cities; ++j) {
      const int w = static_cast<int>(
          mix64(seed ^ (static_cast<std::uint64_t>(i) << 32 | j)) % 99 + 1);
      d[i][j] = w;
      d[j][i] = w;
    }
  }
  return d;
}

/// Nearest-neighbour tour cost: the initial global bound.
std::int64_t nn_tour(const std::vector<std::vector<int>>& d) {
  const int n = static_cast<int>(d.size());
  std::vector<bool> used(n, false);
  used[0] = true;
  int at = 0;
  std::int64_t cost = 0;
  for (int step = 1; step < n; ++step) {
    int best = -1;
    for (int c = 0; c < n; ++c) {
      if (!used[c] && (best < 0 || d[at][c] < d[at][best])) best = c;
    }
    cost += d[at][best];
    used[best] = true;
    at = best;
  }
  return cost + d[at][0];
}

/// Branch-and-bound search state shared by workers (host-side; the shared
/// *simulated* state lives in the Orca objects).
struct SearchContext {
  std::vector<std::vector<int>> dist;
  std::vector<int> min_edge;  // minimum incident edge per city
  int cities = 0;
};

SearchContext make_context(int cities, std::uint64_t seed) {
  SearchContext ctx;
  ctx.cities = cities;
  ctx.dist = make_distances(cities, seed);
  ctx.min_edge.resize(cities);
  for (int i = 0; i < cities; ++i) {
    int m = 1 << 30;
    for (int j = 0; j < cities; ++j) {
      if (j != i) m = std::min(m, ctx.dist[i][j]);
    }
    ctx.min_edge[i] = m;
  }
  return ctx;
}

/// DFS with pruning. Returns nodes visited; updates `best` (host-local copy
/// of the bound) and `best_found` when improving.
struct Dfs {
  const SearchContext* ctx;
  std::int64_t best;
  bool improved = false;
  std::uint64_t nodes = 0;

  void run(std::vector<int>& path, std::uint64_t visited_mask, std::int64_t cost) {
    ++nodes;
    const int n = ctx->cities;
    const int at = path.back();
    if (static_cast<int>(path.size()) == n) {
      const std::int64_t total = cost + ctx->dist[at][0];
      if (total < best) {
        best = total;
        improved = true;
      }
      return;
    }
    // Lower bound: current cost + min incident edge of every unvisited city
    // and of the current city (we must leave it).
    std::int64_t lb = cost + ctx->min_edge[at];
    for (int c = 0; c < n; ++c) {
      if (!(visited_mask & (1ULL << c))) lb += ctx->min_edge[c];
    }
    if (lb >= best) return;
    for (int c = 0; c < n; ++c) {
      if (visited_mask & (1ULL << c)) continue;
      const std::int64_t next = cost + ctx->dist[at][c];
      if (next + ctx->min_edge[c] >= best) continue;
      path.push_back(c);
      run(path, visited_mask | (1ULL << c), next);
      path.pop_back();
    }
  }
};

// --- Orca object types -------------------------------------------------------

struct QueueState final : ObjectState {
  std::deque<std::vector<int>> jobs;
};

struct BoundState final : ObjectState {
  std::int64_t best = 0;
};

struct TspTypes {
  orca::TypeId queue_type = 0;
  orca::TypeId bound_type = 0;
  orca::OpId get_job = 0;
  orca::OpId read_bound = 0;
  orca::OpId update_bound = 0;
};

TspTypes register_types(TypeRegistry& reg) {
  TspTypes t;
  orca::ObjectType queue("tsp-queue", [](const net::Payload& init) {
    auto s = std::make_unique<QueueState>();
    net::Reader r(init);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint8_t len = r.u8();
      std::vector<int> job(len);
      for (auto& c : job) c = r.u8();
      s->jobs.push_back(std::move(job));
    }
    return s;
  });
  t.get_job = queue.add_operation(OpDef{
      .name = "get_job",
      .is_write = true,
      .guard = nullptr,
      .apply =
          [](ObjectState& s, const net::Payload&) {
            auto& q = static_cast<QueueState&>(s);
            net::Writer w;
            if (q.jobs.empty()) {
              w.u8(0);
            } else {
              w.u8(1);
              const auto& job = q.jobs.front();
              w.u8(static_cast<std::uint8_t>(job.size()));
              for (const int c : job) w.u8(static_cast<std::uint8_t>(c));
              q.jobs.pop_front();
            }
            return w.take();
          },
      .cost = sim::usec(10)});
  t.queue_type = reg.register_type(std::move(queue));

  orca::ObjectType bound("tsp-bound", [](const net::Payload& init) {
    auto s = std::make_unique<BoundState>();
    net::Reader r(init);
    s->best = r.i64();
    return s;
  });
  t.read_bound = bound.add_operation(OpDef{
      .name = "read",
      .is_write = false,
      .guard = nullptr,
      .apply =
          [](ObjectState& s, const net::Payload&) {
            net::Writer w;
            w.i64(static_cast<BoundState&>(s).best);
            return w.take();
          },
      .cost = 0});
  t.update_bound = bound.add_operation(OpDef{
      .name = "update_min",
      .is_write = true,
      .guard = nullptr,
      .apply =
          [](ObjectState& s, const net::Payload& args) {
            net::Reader r(args);
            auto& b = static_cast<BoundState&>(s);
            b.best = std::min(b.best, r.i64());
            net::Writer w;
            w.i64(b.best);
            return w.take();
          },
      .cost = sim::usec(5)});
  t.bound_type = reg.register_type(std::move(bound));
  return t;
}

}  // namespace

std::vector<std::vector<int>> tsp_distances(int cities, std::uint64_t seed) {
  return make_distances(cities, seed);
}

std::int64_t tsp_reference(int cities, std::uint64_t seed) {
  SearchContext ctx = make_context(cities, seed);
  Dfs dfs{&ctx, nn_tour(ctx.dist)};
  std::vector<int> path{0};
  dfs.run(path, 1ULL, 0);
  return dfs.best;
}

TspResult run_tsp(const TspParams& params) {
  sim::require(params.cities <= 24, "run_tsp: at most 24 cities");
  TypeRegistry registry;
  const TspTypes types = register_types(registry);
  Cluster cluster(params.run, registry);

  const SearchContext ctx = make_context(params.cities, params.instance_seed);
  const std::int64_t initial_bound = nn_tour(ctx.dist);

  // Generate jobs: all prefixes [0, a, b, c, ...] of the configured depth.
  std::vector<std::vector<int>> jobs;
  std::vector<int> prefix{0};
  const std::function<void(int)> gen = [&](int depth) {
    if (depth == 0) {
      jobs.push_back(prefix);
      return;
    }
    for (int c = 1; c < params.cities; ++c) {
      if (std::find(prefix.begin(), prefix.end(), c) != prefix.end()) continue;
      prefix.push_back(c);
      gen(depth - 1);
      prefix.pop_back();
    }
  };
  gen(params.prefix_depth - 1);

  TspResult result;
  result.jobs = jobs.size();

  ObjHandle queue;
  ObjHandle bound;
  const auto setup = [&](Process& p) -> sim::Co<void> {
    net::Writer qinit;
    qinit.u32(static_cast<std::uint32_t>(jobs.size()));
    for (const auto& job : jobs) {
      qinit.u8(static_cast<std::uint8_t>(job.size()));
      for (const int c : job) qinit.u8(static_cast<std::uint8_t>(c));
    }
    // Job queue: low read ratio -> single copy on node 0.
    queue = co_await p.rts().create_object(
        p.thread(), types.queue_type, qinit.take(),
        ObjectHints{.expected_read_fraction = 0.0});
    net::Writer binit;
    binit.i64(initial_bound);
    // Bound: read-heavy -> replicated.
    bound = co_await p.rts().create_object(
        p.thread(), types.bound_type, binit.take(),
        ObjectHints{.expected_read_fraction = 0.99});
  };

  std::uint64_t total_nodes = 0;
  std::uint64_t updates = 0;
  std::int64_t best_seen = initial_bound;

  const auto worker = [&](Process& p, std::size_t, std::size_t) -> sim::Co<void> {
    for (;;) {
      net::Payload jp = co_await p.invoke(queue, types.get_job);
      net::Reader jr(jp);
      if (jr.u8() == 0) break;  // queue drained
      const std::uint8_t len = jr.u8();
      std::vector<int> path(len);
      std::uint64_t mask = 0;
      std::int64_t cost = 0;
      for (int i = 0; i < len; ++i) {
        path[i] = jr.u8();
        mask |= 1ULL << path[i];
        if (i > 0) cost += ctx.dist[path[i - 1]][path[i]];
      }
      // Search the job one top-level branch at a time, re-reading the
      // replicated bound (a free local operation) between branches so other
      // workers' improvements prune our subtree promptly.
      bool improved_any = false;
      std::int64_t job_best = 0;
      for (int c = 0; c < ctx.cities; ++c) {
        if (mask & (1ULL << c)) continue;
        net::Payload bp = co_await p.invoke(bound, types.read_bound);
        net::Reader br(bp);
        Dfs dfs{&ctx, br.i64()};
        const int at = path.back();
        path.push_back(c);
        dfs.run(path, mask | (1ULL << c), cost + ctx.dist[at][c]);
        path.pop_back();
        total_nodes += dfs.nodes;
        co_await p.work(params.work_per_node * static_cast<sim::Time>(dfs.nodes));
        if (dfs.improved) {
          improved_any = true;
          job_best = improved_any && job_best != 0
                         ? std::min(job_best, dfs.best)
                         : dfs.best;
          // Publish promptly so other workers prune with it.
          net::Writer w;
          w.i64(dfs.best);
          net::Payload res =
              co_await p.invoke(bound, types.update_bound, w.take());
          net::Reader rr(res);
          best_seen = std::min(best_seen, rr.i64());
          ++updates;
        }
      }
    }
  };

  result.elapsed = cluster.run(setup, worker);
  result.nodes_expanded = total_nodes;
  result.bound_updates = updates;
  result.best_cost = best_seen;
  result.stats = cluster.stats();
  return result;
}

}  // namespace apps
