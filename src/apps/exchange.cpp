#include "apps/exchange.h"

#include <deque>
#include <map>
#include <memory>

#include "sim/require.h"

namespace apps {

namespace {

using orca::ObjectState;
using orca::OpDef;

constexpr std::size_t kBufferCapacity = 2;

struct BufferState final : ObjectState {
  std::deque<net::Payload> rows;
};

struct ReduceState final : ObjectState {
  std::size_t expected = 0;
  struct Round {
    std::size_t reports = 0;
    bool flag = false;
    double value = 0.0;
  };
  std::map<std::int32_t, Round> rounds;
};

}  // namespace

BufferTypes register_buffer_type(orca::TypeRegistry& reg) {
  BufferTypes t;
  orca::ObjectType buffer("exchange-buffer", [](const net::Payload&) {
    return std::make_unique<BufferState>();
  });
  t.put = buffer.add_operation(OpDef{
      .name = "buf_put",
      .is_write = true,
      .guard =
          [](const ObjectState& s, const net::Payload&) {
            return static_cast<const BufferState&>(s).rows.size() <
                   kBufferCapacity;
          },
      .apply =
          [](ObjectState& s, const net::Payload& args) {
            static_cast<BufferState&>(s).rows.push_back(args);
            return net::Payload();
          },
      .cost = sim::usec(15)});
  t.get = buffer.add_operation(OpDef{
      .name = "buf_get",
      .is_write = true,  // pops
      .guard =
          [](const ObjectState& s, const net::Payload&) {
            return !static_cast<const BufferState&>(s).rows.empty();
          },
      .apply =
          [](ObjectState& s, const net::Payload&) {
            auto& b = static_cast<BufferState&>(s);
            net::Payload row = std::move(b.rows.front());
            b.rows.pop_front();
            return row;
          },
      .cost = sim::usec(15)});
  t.type = reg.register_type(std::move(buffer));
  return t;
}

ReduceTypes register_reduce_type(orca::TypeRegistry& reg) {
  ReduceTypes t;
  orca::ObjectType reduce("exchange-reduce", [](const net::Payload& init) {
    auto s = std::make_unique<ReduceState>();
    net::Reader r(init);
    s->expected = r.u32();
    return s;
  });
  t.report = reduce.add_operation(OpDef{
      .name = "report",
      .is_write = true,
      .guard = nullptr,
      .apply =
          [](ObjectState& s, const net::Payload& args) {
            auto& st = static_cast<ReduceState&>(s);
            net::Reader r(args);
            const std::int32_t iter = r.i32();
            const bool flag = r.u8() != 0;
            const double value = r.f64();
            auto& round = st.rounds[iter];
            ++round.reports;
            round.flag = round.flag || flag;
            round.value = std::max(round.value, value);
            // Old rounds can never be awaited again.
            while (st.rounds.size() > 4) st.rounds.erase(st.rounds.begin());
            return net::Payload();
          },
      .cost = sim::usec(10)});
  t.await_verdict = reduce.add_operation(OpDef{
      .name = "await_verdict",
      .is_write = false,
      .guard =
          [](const ObjectState& s, const net::Payload& args) {
            const auto& st = static_cast<const ReduceState&>(s);
            net::Reader r(args);
            const auto it = st.rounds.find(r.i32());
            return it != st.rounds.end() && it->second.reports >= st.expected;
          },
      .apply =
          [](ObjectState& s, const net::Payload& args) {
            auto& st = static_cast<ReduceState&>(s);
            net::Reader r(args);
            const auto& round = st.rounds.at(r.i32());
            net::Writer w;
            w.u8(round.flag ? 1 : 0);
            w.f64(round.value);
            return w.take();
          },
      .cost = sim::usec(5)});
  t.type = reg.register_type(std::move(reduce));
  return t;
}

net::Payload encode_row(const std::vector<int>& row) {
  net::Writer w;
  w.u32(static_cast<std::uint32_t>(row.size()));
  for (const int v : row) w.i32(v);
  return w.take();
}

std::vector<int> decode_row(const net::Payload& p) {
  net::Reader r(p);
  std::vector<int> row(r.u32());
  for (auto& v : row) v = r.i32();
  return row;
}

}  // namespace apps
