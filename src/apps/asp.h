// All-pairs Shortest Paths (§5): row-parallel Floyd-Warshall.
//
// "the program sends 768 group messages to coordinate an iterative process
//  ... each group message of 3200 bytes incurs about 5 ms" — an n=768
// instance where, in iteration k, the owner of row k broadcasts it (a
// totally-ordered write on a replicated pivot-row object) and every worker
// relaxes its own block of rows against it.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.h"

namespace apps {

struct AspParams {
  RunConfig run;
  int n = 768;
  std::uint64_t instance_seed = 5;
  /// Simulated CPU per relaxation (calibrated to Table 3's single-processor
  /// 213 s: n^3 relaxations).
  sim::Time work_per_cell = sim::nsec(470);
};

struct AspResult {
  sim::Time elapsed = 0;
  std::uint64_t checksum = 0;  // sum of all shortest distances
  std::uint64_t group_messages = 0;
  ClusterStats stats;
};

/// Sequential Floyd-Warshall checksum for verification.
[[nodiscard]] std::uint64_t asp_reference(int n, std::uint64_t seed);

[[nodiscard]] AspResult run_asp(const AspParams& params);

}  // namespace apps
