// Shared-object building blocks for the grid applications (RL, SOR).
//
// Boundary rows travel through *shared buffer objects* exactly as in the
// paper: "processors exchange boundary elements with their neighbors by
// means of shared buffer objects. ... the kernel-space implementation
// suffers from an additional context switch per remote guarded BufGet
// operation that blocks until the buffer is filled by its owning processor.
// Likewise the BufPut operation blocks if the buffer is full."
//
// Each buffer is a bounded queue placed on the *producer's* node; the
// consumer's BufGet is a remote guarded operation (a continuation at the
// owner until the producer fills the buffer).
//
// Global convergence tests go through a reduction object on node 0: every
// worker Reports its local flag for iteration k, then blocks in a guarded
// AwaitVerdict until all reports for k are in.
#pragma once

#include <cstdint>

#include "apps/common.h"

namespace apps {

struct BufferTypes {
  orca::TypeId type = 0;
  orca::OpId put = 0;  // guarded write: blocks while full
  orca::OpId get = 0;  // guarded write (pops): blocks while empty
};

/// Register the bounded-buffer type (capacity 2 rows).
[[nodiscard]] BufferTypes register_buffer_type(orca::TypeRegistry& reg);

struct ReduceTypes {
  orca::TypeId type = 0;
  orca::OpId report = 0;         // write: (iteration, flag, value)
  orca::OpId await_verdict = 0;  // guarded read: all reports in -> verdict
};

/// Register the per-iteration OR/MAX reduction type. The object is created
/// with the worker count as init payload.
[[nodiscard]] ReduceTypes register_reduce_type(orca::TypeRegistry& reg);

/// Helpers used by the workers.
[[nodiscard]] net::Payload encode_row(const std::vector<int>& row);
[[nodiscard]] std::vector<int> decode_row(const net::Payload& p);

}  // namespace apps
