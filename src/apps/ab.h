// Alpha-Beta game-tree search (§5).
//
// "The Alpha-Beta Search program has also been written in a coarse-grained
//  style and does not communicate a lot. The poor speedups are caused by the
//  search overhead the parallel algorithm incurs; efficient pruning in
//  parallel search is a known hard problem."
//
// Workers take root moves from a central job queue and search their subtrees
// with negamax alpha-beta. The best root score so far is a replicated object:
// workers read it locally as their alpha and broadcast improvements. Search
// overhead arises naturally — a worker starting a subtree with a stale alpha
// prunes less than the sequential left-to-right search would.
#pragma once

#include <cstdint>

#include "apps/common.h"

namespace apps {

struct AbParams {
  RunConfig run;
  int root_moves = 24;
  int depth = 6;       // plies below the root move
  int branching = 8;   // internal branching factor
  std::uint64_t instance_seed = 9;
  /// Simulated CPU per visited tree node.
  sim::Time work_per_node = sim::usec(1860);
};

struct AbResult {
  sim::Time elapsed = 0;
  int best_score = 0;
  int best_move = -1;
  std::uint64_t nodes_visited = 0;   // across all workers (search overhead!)
  ClusterStats stats;
};

/// Sequential alpha-beta over the same tree (verification + overhead
/// baseline).
[[nodiscard]] AbResult ab_reference(const AbParams& params);

[[nodiscard]] AbResult run_ab(const AbParams& params);

}  // namespace apps
