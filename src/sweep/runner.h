// The sweep runner: expand a Matrix, fan the trials out over the
// work-stealing pool (one isolated single-threaded simulation per trial),
// and aggregate the per-trial samples into a SweepReport.
//
// Determinism contract: each trial writes its samples into its own
// pre-allocated slot; aggregation runs after the pool joins, walking slots
// in trial-index order and metrics in name order. The report bytes are
// therefore identical for any thread count and any scheduling order —
// committed tests prove it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "metrics/report.h"
#include "sweep/matrix.h"
#include "sweep/pool.h"
#include "sweep/report.h"

namespace sweep {

/// One named measurement a trial produced.
struct Sample {
  std::string metric;
  double value = 0.0;
  metrics::Better better = metrics::Better::kInfo;
  std::string unit;
};

/// Runs one trial (on a pool worker thread — must not touch shared mutable
/// state) and returns its measurements. Metric names must be consistent
/// across the trials of a cell; a metric missing from some replicates is
/// aggregated over the replicates that did report it.
using TrialFn = std::function<std::vector<Sample>(const Trial&)>;

struct SweepOptions {
  /// Worker threads; 0 = all hardware cores.
  unsigned threads = 0;
  /// Live "[done/total] cell" progress line on stderr.
  bool progress = false;
};

/// Expand, run, aggregate. Throws whatever the first failing trial threw
/// (remaining trials are cancelled). The returned report carries per-cell
/// per-metric Stats over the cell's replicates; matrix shape and seeding go
/// into the report config, worker count deliberately does not.
[[nodiscard]] SweepReport run_sweep(const Matrix& matrix, const TrialFn& fn,
                                    const std::string& name,
                                    const SweepOptions& options = {});

/// The aggregation stage of run_sweep, exposed for tests and for callers
/// that execute trials themselves: `results[i]` must hold trial i's samples.
[[nodiscard]] SweepReport aggregate_trials(
    const Matrix& matrix, const std::vector<Trial>& trials,
    const std::vector<std::vector<Sample>>& results, const std::string& name);

}  // namespace sweep
