#include "sweep/runner.h"

#include <cstdio>
#include <map>

#include "sim/require.h"

namespace sweep {

SweepReport aggregate_trials(const Matrix& matrix,
                             const std::vector<Trial>& trials,
                             const std::vector<std::vector<Sample>>& results,
                             const std::string& name) {
  sim::require(trials.size() == results.size(),
               "sweep::aggregate_trials: one result slot per trial required");

  // (cell, metric) -> samples in trial-index order. std::map keys give the
  // deterministic iteration order; values carry the direction/unit tag of
  // the first trial that reported the metric.
  struct Series {
    std::vector<double> values;
    metrics::Better better = metrics::Better::kInfo;
    std::string unit;
  };
  std::map<std::pair<std::string, std::string>, Series> series;
  for (std::size_t i = 0; i < trials.size(); ++i) {
    for (const Sample& s : results[i]) {
      Series& entry = series[{trials[i].cell, s.metric}];
      if (entry.values.empty()) {
        entry.better = s.better;
        entry.unit = s.unit;
      }
      entry.values.push_back(s.value);
    }
  }

  SweepReport report(name);
  report.set_config("cells", static_cast<std::uint64_t>(matrix.cell_count()));
  report.set_config("trials", static_cast<std::uint64_t>(trials.size()));
  report.set_config("seeds_per_cell", matrix.seeds_per_cell());
  report.set_config("base_seed", matrix.base_seed());
  for (const Axis& a : matrix.axes()) {
    std::string joined;
    for (const std::string& v : a.values) {
      if (!joined.empty()) joined += ',';
      joined += v;
    }
    report.set_config("axis." + a.name, joined);
  }
  for (const auto& [key, s] : series) {
    report.add(key.first, key.second, summarize(s.values), s.better, s.unit);
  }
  return report;
}

SweepReport run_sweep(const Matrix& matrix, const TrialFn& fn,
                      const std::string& name, const SweepOptions& options) {
  const std::vector<Trial> trials = matrix.expand();
  std::vector<std::vector<Sample>> results(trials.size());

  std::vector<std::function<void()>> tasks;
  tasks.reserve(trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    tasks.push_back([&fn, &trials, &results, i] {
      results[i] = fn(trials[i]);
    });
  }

  PoolOptions pool;
  pool.threads = options.threads;
  if (options.progress) {
    pool.progress = [&trials](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r[%zu/%zu] %-60s", done, total,
                   done < trials.size() ? trials[done].cell.c_str() : "done");
      if (done == total) std::fprintf(stderr, "\n");
      std::fflush(stderr);
    };
  }
  run_tasks(std::move(tasks), pool);

  return aggregate_trials(matrix, trials, results, name);
}

}  // namespace sweep
