// A persistent team of worker threads with a barrier primitive.
//
// run_tasks() (pool.h) parallelises one fan-out and tears its threads down;
// the conservative parallel event core (sim/partition.h) needs the opposite
// shape: thousands of short synchronized rounds — one per lookahead window —
// where spawning threads per round would dominate the work. PersistentPool
// keeps the workers alive across rounds:
//
//   * Construction spawns `threads - 1` workers; the caller is the team's
//     member 0 and participates in every round. threads == 1 spawns nothing,
//     and barrier() then executes the queued tasks inline on the caller in
//     index order — the deterministic single-threaded reference path.
//   * submit(n, body) opens a round of index-tasks 0..n-1, dealt round-robin
//     into per-member deques; members pop their own back and steal from a
//     victim's front (the same balancing idiom as run_tasks).
//   * barrier() blocks until every task of the round has finished, with the
//     caller working alongside the team, then rethrows the round's first
//     exception (wall-clock order; the remaining unstarted tasks of the
//     round are cancelled). Completing barrier() gives the caller a
//     happens-before edge on everything the workers wrote during the round,
//     which is what makes partition-exclusive simulation state safe to hand
//     between workers across windows.
//
// Rounds are strictly sequential: submit() requires the previous round to
// have been closed by barrier().
#pragma once

#include <cstddef>
#include <functional>

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sweep {

class PersistentPool {
 public:
  /// Total team size, caller included; spawns `threads - 1` workers.
  explicit PersistentPool(unsigned threads);
  ~PersistentPool();

  PersistentPool(const PersistentPool&) = delete;
  PersistentPool& operator=(const PersistentPool&) = delete;

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Open a round: tasks 0..n-1, each `body(i)`. Does not wait.
  void submit(std::size_t n, std::function<void(std::size_t)> body);

  /// Work on and wait out the current round; rethrows its first exception
  /// once the round has fully drained. No-op if no round is open.
  void barrier();

  /// submit + barrier.
  void run(std::size_t n, std::function<void(std::size_t)> body) {
    submit(n, std::move(body));
    barrier();
  }

 private:
  /// Pop from member `self`'s back, else steal from the front of the next
  /// non-empty victim. Caller holds mu_.
  bool take(unsigned self, std::size_t& out);
  [[nodiscard]] bool has_queued() const;  // caller holds mu_
  void record_error_and_cancel();  // caller holds mu_
  void worker_loop(unsigned self);

  const unsigned threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: new round or shutdown
  std::condition_variable done_cv_;  // barrier(): round drained
  std::vector<std::deque<std::size_t>> queues_;  // per member, [0] = caller
  std::function<void(std::size_t)> body_;
  std::size_t outstanding_ = 0;  // round tasks not yet finished
  bool open_ = false;            // a round has been submitted, not yet joined
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace sweep
