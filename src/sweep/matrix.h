// Declarative scenario matrices: named axes of string values, expanded into
// the cross product × N seed replicates as independent trial descriptors.
//
// A Trial carries its cell name ("app=tsp/binding=user/nodes=8"), its value
// index along every axis, its replicate number, and a derived RNG seed that
// is a pure function of (base seed, cell, replicate) — see sweep/seed.h —
// so trial identity survives matrix edits and reordering. The runner maps
// trials to simulations; the matrix layer knows nothing about Testbeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sweep {

struct Axis {
  std::string name;
  std::vector<std::string> values;
};

struct Trial {
  /// Row-major index into the expansion (cells × replicates); the slot the
  /// runner stores this trial's samples into.
  std::size_t index = 0;
  /// Value index per axis, aligned with Matrix::axes().
  std::vector<std::size_t> coords;
  /// Replicate number in [0, seeds_per_cell).
  std::uint64_t rep = 0;
  /// Derived RNG seed (stable under matrix reordering/extension).
  std::uint64_t seed = 0;
  /// "axis=value/axis=value/..." in axis declaration order; trials of one
  /// cell share it, and it keys the aggregated statistics.
  std::string cell;
};

class Matrix {
 public:
  /// Declare an axis. Axes expand in declaration order (first axis slowest).
  /// Empty `values` is invalid and trips expand().
  void axis(std::string name, std::vector<std::string> values);

  /// Replicates per cell (default 1) and the base seed they derive from.
  void seeds(std::uint64_t per_cell, std::uint64_t base_seed);

  [[nodiscard]] const std::vector<Axis>& axes() const noexcept { return axes_; }
  [[nodiscard]] std::uint64_t seeds_per_cell() const noexcept { return seeds_; }
  [[nodiscard]] std::uint64_t base_seed() const noexcept { return base_seed_; }

  /// Number of cells (product of axis sizes; 1 with no axes).
  [[nodiscard]] std::size_t cell_count() const noexcept;
  /// cells × replicates.
  [[nodiscard]] std::size_t trial_count() const noexcept;

  /// The value a trial takes on the named axis. Throws sim::SimError on an
  /// unknown axis name.
  [[nodiscard]] const std::string& value(const Trial& trial,
                                         std::string_view axis) const;

  /// Expand into trial descriptors: replicates of a cell are adjacent,
  /// cells in row-major axis order. Throws sim::SimError on an empty axis.
  [[nodiscard]] std::vector<Trial> expand() const;

 private:
  std::vector<Axis> axes_;
  std::uint64_t seeds_ = 1;
  std::uint64_t base_seed_ = 42;
};

}  // namespace sweep
