#include "sweep/pool.h"

#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace sweep {
namespace {

/// Shared state of one run_tasks() invocation.
struct PoolRun {
  explicit PoolRun(std::vector<std::function<void()>> t, unsigned workers)
      : tasks(std::move(t)), queues(workers) {}

  std::vector<std::function<void()>> tasks;

  struct Queue {
    std::mutex mu;
    std::deque<std::size_t> indices;
  };
  std::vector<Queue> queues;

  std::atomic<bool> cancelled{false};
  std::atomic<std::size_t> done{0};

  std::mutex error_mu;
  std::exception_ptr first_error;

  std::mutex progress_mu;

  void fail(std::exception_ptr e) {
    {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::move(e);
    }
    cancelled.store(true, std::memory_order_release);
  }

  /// Pop from our own back, else steal from the front of the next non-empty
  /// victim (scanning forward from our id keeps contention spread out).
  bool next(unsigned self, std::size_t& out) {
    {
      Queue& mine = queues[self];
      const std::lock_guard<std::mutex> lock(mine.mu);
      if (!mine.indices.empty()) {
        out = mine.indices.back();
        mine.indices.pop_back();
        return true;
      }
    }
    for (std::size_t i = 1; i < queues.size(); ++i) {
      Queue& victim = queues[(self + i) % queues.size()];
      const std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.indices.empty()) {
        out = victim.indices.front();
        victim.indices.pop_front();
        return true;
      }
    }
    return false;
  }
};

void worker_loop(PoolRun& run, unsigned self,
                 const PoolOptions& options) {
  std::size_t index = 0;
  while (!run.cancelled.load(std::memory_order_acquire) &&
         run.next(self, index)) {
    try {
      run.tasks[index]();
    } catch (...) {
      run.fail(std::current_exception());
      return;
    }
    if (options.progress) {
      // Increment and callback under one lock so `done` is strictly
      // monotone across workers as the callback observes it.
      const std::lock_guard<std::mutex> lock(run.progress_mu);
      const std::size_t done =
          run.done.fetch_add(1, std::memory_order_acq_rel) + 1;
      options.progress(done, run.tasks.size());
    } else {
      run.done.fetch_add(1, std::memory_order_acq_rel);
    }
  }
}

}  // namespace

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

void run_tasks(std::vector<std::function<void()>> tasks,
               const PoolOptions& options) {
  const std::size_t total = tasks.size();
  const unsigned workers = resolve_threads(options.threads);

  if (workers == 1) {
    // Inline path: same cancellation-on-first-failure contract, no threads.
    std::size_t done = 0;
    for (std::function<void()>& task : tasks) {
      task();
      ++done;
      if (options.progress) options.progress(done, total);
    }
    return;
  }

  PoolRun run(std::move(tasks), workers);
  // Round-robin initial distribution; stealing rebalances uneven trials.
  for (std::size_t i = 0; i < total; ++i) {
    run.queues[i % workers].indices.push_back(i);
  }

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back(
        [&run, w, &options] { worker_loop(run, w, options); });
  }
  for (std::thread& t : threads) t.join();

  if (run.first_error) std::rethrow_exception(run.first_error);
}

}  // namespace sweep
