#include "sweep/pool.h"

#include <mutex>
#include <thread>
#include <utility>

#include "sweep/persistent_pool.h"

namespace sweep {

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

void run_tasks(std::vector<std::function<void()>> tasks,
               const PoolOptions& options) {
  const std::size_t total = tasks.size();
  const unsigned workers = resolve_threads(options.threads);

  if (workers == 1) {
    // Inline path: same cancellation-on-first-failure contract, no threads.
    std::size_t done = 0;
    for (std::function<void()>& task : tasks) {
      task();
      ++done;
      if (options.progress) options.progress(done, total);
    }
    return;
  }

  // One round on a persistent team: the caller works as member 0, the
  // barrier inside run() joins the round and rethrows the first failure
  // (remaining tasks cancelled) — the same contract the bespoke per-run
  // spawn used to implement.
  PersistentPool pool(workers);
  std::mutex progress_mu;
  std::size_t done = 0;
  pool.run(total, [&](std::size_t index) {
    tasks[index]();
    if (options.progress) {
      // Increment and callback under one lock so `done` is strictly
      // monotone across workers as the callback observes it.
      const std::lock_guard<std::mutex> lock(progress_mu);
      options.progress(++done, total);
    }
  });
}

}  // namespace sweep
