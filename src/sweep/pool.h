// A work-stealing thread pool for trial fan-out.
//
// Each worker owns a deque seeded round-robin with task indices; it pops
// from its own back and, when empty, steals from the front of a victim's.
// Every task is one fully isolated, single-threaded simulation — the pool
// parallelises only the fan-out, so results stay deterministic as long as
// each task writes exclusively to its own pre-allocated slot.
//
// Failure semantics: the first exception (in wall-clock order) cancels all
// not-yet-started tasks and is rethrown from run_tasks() on the calling
// thread; tasks already running finish. With threads == 1 the tasks execute
// inline on the caller, in index order, with identical semantics.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace sweep {

struct PoolOptions {
  /// Worker count; 0 means std::thread::hardware_concurrency() (min 1).
  unsigned threads = 0;
  /// Called after each task completes with (done, total). Serialised by the
  /// pool (never concurrent with itself); keep it cheap.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// The worker count `options.threads` resolves to.
[[nodiscard]] unsigned resolve_threads(unsigned requested) noexcept;

/// Run every task, stealing across `options.threads` workers. Tasks must be
/// independent; they may run in any order and concurrently. Rethrows the
/// first failure after joining all workers (remaining tasks cancelled).
void run_tasks(std::vector<std::function<void()>> tasks,
               const PoolOptions& options = {});

}  // namespace sweep
