// Stable per-trial seed derivation for parameter sweeps.
//
// A trial's RNG stream must be a pure function of (base seed, which cell it
// is, which replicate it is) — NOT of the trial's position in the expanded
// matrix. Any `seed + i` scheme fails that: appending one value to one axis
// renumbers every later trial and silently reruns the whole sweep on new
// randomness, which makes before/after sweep reports incomparable. Here each
// (axis name, axis value) pair is hashed independently through SplitMix64
// and the pair hashes are XOR-combined, so a trial's seed is invariant under
// reordering axes, reordering values within an axis, and adding new values
// or whole new axes that the trial does not use.
#pragma once

#include <cstdint>
#include <string_view>

namespace sweep {

/// The SplitMix64 finalizer: a bijective 64-bit mix with full avalanche
/// (Steele, Lea & Flood 2014). Also used to seed xoshiro in sim::Rng.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a string, as the pre-mix for axis names/values.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Order-independent accumulator for one trial's cell identity. Feed every
/// (axis, value) pair of the cell, then call seed().
class SeedDeriver {
 public:
  explicit constexpr SeedDeriver(std::uint64_t base_seed) noexcept
      : base_(base_seed) {}

  /// Mix one axis assignment into the cell identity. Each pair is mixed to a
  /// 64-bit token on its own (so "a=bc" and "ab=c" differ) and the tokens
  /// XOR-combine, making the result independent of feeding order.
  constexpr void bind(std::string_view axis, std::string_view value) noexcept {
    acc_ ^= splitmix64(splitmix64(fnv1a(axis)) ^ fnv1a(value));
  }

  /// The seed for replicate `rep` of this cell. Distinct reps get
  /// independent streams; rep 0 is not the base seed itself.
  [[nodiscard]] constexpr std::uint64_t seed(std::uint64_t rep) const noexcept {
    return splitmix64(splitmix64(base_ ^ acc_) ^ splitmix64(rep ^ kRepSalt));
  }

 private:
  // Arbitrary odd constant so rep-mixing cannot collide with cell-mixing.
  static constexpr std::uint64_t kRepSalt = 0xA24BAED4963EE407ULL;
  std::uint64_t base_;
  std::uint64_t acc_ = 0;
};

}  // namespace sweep
