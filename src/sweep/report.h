// The versioned sweep-report artifact: `amoeba-sweepreport/v1`.
//
// One sweep run produces one JSON document: schema tag, sweep name, git
// describe, the sweep configuration (matrix shape, seeds, thread count is
// deliberately excluded — it must not affect the bytes), and per-cell
// per-metric statistics (n/mean/stddev/min/max/p50/p95/ci95) each tagged
// with the regression direction, mirroring RunReport's conventions so
// report_compare can gate on them with CI-overlap noise suppression.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/report.h"
#include "sweep/stats.h"

namespace sweep {

class SweepReport {
 public:
  static constexpr std::string_view kSchema = "amoeba-sweepreport/v1";
  static constexpr int kSchemaVersion = 1;

  explicit SweepReport(std::string sweep) : sweep_(std::move(sweep)) {}

  // Sweep configuration (axes, seed count, base seed, filters).
  void set_config(std::string key, std::string value);
  void set_config(std::string key, std::int64_t value);
  void set_config(std::string key, std::uint64_t value);
  void set_config(std::string key, double value);
  void set_config(std::string key, bool value);

  /// Record one metric's statistics for one cell. (cell, metric) pairs are
  /// unique; re-adding overwrites. Insertion order is irrelevant — cells and
  /// metrics serialize name-sorted.
  void add(std::string cell, std::string metric, const Stats& stats,
           metrics::Better better, std::string unit = {});

  struct Entry {
    std::string cell;
    std::string metric;
    Stats stats;
    metrics::Better better = metrics::Better::kInfo;
    std::string unit;
  };

  [[nodiscard]] std::size_t cell_metric_count() const noexcept {
    return entries_.size();
  }

  /// Entries sorted by (cell, metric) — the serialization order.
  [[nodiscard]] std::vector<const Entry*> sorted_entries() const;

  [[nodiscard]] std::string json() const;

  /// Writes the report to `path`. Returns false (errno intact) on failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  std::string sweep_;
  std::vector<std::pair<std::string, std::string>> config_;  // key -> raw JSON
  std::vector<Entry> entries_;
};

}  // namespace sweep
