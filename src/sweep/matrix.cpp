#include "sweep/matrix.h"

#include <utility>

#include "sim/require.h"
#include "sweep/seed.h"

namespace sweep {

void Matrix::axis(std::string name, std::vector<std::string> values) {
  axes_.push_back(Axis{std::move(name), std::move(values)});
}

void Matrix::seeds(std::uint64_t per_cell, std::uint64_t base_seed) {
  seeds_ = per_cell;
  base_seed_ = base_seed;
}

std::size_t Matrix::cell_count() const noexcept {
  std::size_t n = 1;
  for (const Axis& a : axes_) n *= a.values.size();
  return n;
}

std::size_t Matrix::trial_count() const noexcept {
  return cell_count() * static_cast<std::size_t>(seeds_);
}

const std::string& Matrix::value(const Trial& trial,
                                 std::string_view axis) const {
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    if (axes_[i].name == axis) return axes_[i].values.at(trial.coords.at(i));
  }
  sim::require(false, "sweep::Matrix: unknown axis '" + std::string(axis) + "'");
  // Unreachable; require throws.
  static const std::string empty;
  return empty;
}

std::vector<Trial> Matrix::expand() const {
  sim::require(seeds_ > 0, "sweep::Matrix: seeds_per_cell must be positive");
  for (const Axis& a : axes_) {
    sim::require(!a.values.empty(),
                 "sweep::Matrix: axis '" + a.name + "' has no values");
  }
  std::vector<Trial> trials;
  trials.reserve(trial_count());
  std::vector<std::size_t> coords(axes_.size(), 0);
  for (std::size_t cell = 0; cell < cell_count(); ++cell) {
    SeedDeriver deriver(base_seed_);
    std::string name;
    for (std::size_t i = 0; i < axes_.size(); ++i) {
      const Axis& a = axes_[i];
      deriver.bind(a.name, a.values[coords[i]]);
      if (!name.empty()) name += '/';
      name += a.name;
      name += '=';
      name += a.values[coords[i]];
    }
    for (std::uint64_t rep = 0; rep < seeds_; ++rep) {
      Trial t;
      t.index = trials.size();
      t.coords = coords;
      t.rep = rep;
      t.seed = deriver.seed(rep);
      t.cell = name;
      trials.push_back(std::move(t));
    }
    // Odometer increment, last axis fastest.
    for (std::size_t i = axes_.size(); i-- > 0;) {
      if (++coords[i] < axes_[i].values.size()) break;
      coords[i] = 0;
    }
  }
  return trials;
}

}  // namespace sweep
