#include "sweep/stats.h"

#include <algorithm>
#include <cmath>

namespace sweep {
namespace {

/// Nearest-rank percentile of ascending `sorted`: the smallest sample with
/// at least ceil(p/100 * n) samples at or below it.
double nearest_rank(const std::vector<double>& sorted, double p) {
  const std::size_t n = sorted.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace

double t_critical_95(std::size_t df) noexcept {
  // Two-sided 95% points of the t distribution, df = 1..30.
  static constexpr double kTable[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df - 1];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

Stats summarize(const std::vector<double>& samples) {
  Stats s;
  s.n = samples.size();
  if (s.n == 0) return s;

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = nearest_rank(sorted, 50.0);
  s.p95 = nearest_rank(sorted, 95.0);

  double sum = 0.0;
  for (const double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.n);

  if (s.n >= 2) {
    double ss = 0.0;
    for (const double v : sorted) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
    s.ci95 = t_critical_95(s.n - 1) * s.stddev /
             std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

}  // namespace sweep
