#include "sweep/persistent_pool.h"

#include <utility>

namespace sweep {

PersistentPool::PersistentPool(unsigned threads)
    : threads_(threads == 0 ? 1 : threads), queues_(threads_) {
  workers_.reserve(threads_ - 1);
  for (unsigned w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

PersistentPool::~PersistentPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void PersistentPool::submit(std::size_t n, std::function<void(std::size_t)> body) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (open_) std::terminate();  // rounds are sequential: barrier() first
  body_ = std::move(body);
  for (std::size_t i = 0; i < n; ++i) queues_[i % threads_].push_back(i);
  outstanding_ = n;
  open_ = true;
  first_error_ = nullptr;
  if (threads_ > 1) work_cv_.notify_all();
}

bool PersistentPool::has_queued() const {
  for (const std::deque<std::size_t>& q : queues_) {
    if (!q.empty()) return true;
  }
  return false;
}

bool PersistentPool::take(unsigned self, std::size_t& out) {
  std::deque<std::size_t>& mine = queues_[self];
  if (!mine.empty()) {
    out = mine.back();
    mine.pop_back();
    return true;
  }
  for (unsigned i = 1; i < threads_; ++i) {
    std::deque<std::size_t>& victim = queues_[(self + i) % threads_];
    if (!victim.empty()) {
      out = victim.front();
      victim.pop_front();
      return true;
    }
  }
  return false;
}

void PersistentPool::record_error_and_cancel() {
  if (!first_error_) first_error_ = std::current_exception();
  // Cancel the round's unstarted tasks; running ones finish and count down.
  for (std::deque<std::size_t>& q : queues_) {
    outstanding_ -= q.size();
    q.clear();
  }
}

void PersistentPool::worker_loop(unsigned self) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::size_t index = 0;
    if (take(self, index)) {
      lock.unlock();
      try {
        body_(index);
        lock.lock();
      } catch (...) {
        lock.lock();
        record_error_and_cancel();
      }
      if (--outstanding_ == 0) done_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock, [this] { return stop_ || has_queued(); });
  }
}

void PersistentPool::barrier() {
  if (threads_ == 1) {
    // Inline reference path: index order, exceptions propagate directly
    // (remaining tasks of the round are dropped, matching the cancellation
    // semantics of the threaded path).
    if (!open_) return;
    std::deque<std::size_t>& q = queues_[0];
    open_ = false;
    try {
      while (!q.empty()) {
        const std::size_t index = q.front();
        q.pop_front();
        --outstanding_;
        body_(index);
      }
    } catch (...) {
      outstanding_ -= q.size();
      q.clear();
      body_ = nullptr;
      throw;
    }
    body_ = nullptr;
    return;
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (!open_ && outstanding_ == 0) return;
  // The caller is member 0: work the round down alongside the team.
  for (;;) {
    std::size_t index = 0;
    if (!take(0, index)) break;
    lock.unlock();
    try {
      body_(index);
      lock.lock();
    } catch (...) {
      lock.lock();
      record_error_and_cancel();
    }
    if (--outstanding_ == 0) done_cv_.notify_all();
  }
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  open_ = false;
  body_ = nullptr;
  if (first_error_) {
    std::exception_ptr e = std::move(first_error_);
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace sweep
