#include "sweep/report.h"

#include <algorithm>
#include <fstream>

#include "metrics/json.h"

#ifndef AMOEBA_GIT_DESCRIBE
#define AMOEBA_GIT_DESCRIBE "unknown"
#endif

namespace sweep {

using metrics::JsonWriter;

void SweepReport::set_config(std::string key, std::string value) {
  config_.emplace_back(std::move(key), JsonWriter::quote(value));
}

void SweepReport::set_config(std::string key, std::int64_t value) {
  config_.emplace_back(std::move(key), std::to_string(value));
}

void SweepReport::set_config(std::string key, std::uint64_t value) {
  config_.emplace_back(std::move(key), std::to_string(value));
}

void SweepReport::set_config(std::string key, double value) {
  JsonWriter w;
  w.value(value);
  config_.emplace_back(std::move(key), w.take());
}

void SweepReport::set_config(std::string key, bool value) {
  config_.emplace_back(std::move(key), value ? "true" : "false");
}

void SweepReport::add(std::string cell, std::string metric, const Stats& stats,
                      metrics::Better better, std::string unit) {
  for (Entry& e : entries_) {
    if (e.cell == cell && e.metric == metric) {
      e.stats = stats;
      e.better = better;
      e.unit = std::move(unit);
      return;
    }
  }
  entries_.push_back(
      Entry{std::move(cell), std::move(metric), stats, better, std::move(unit)});
}

std::vector<const SweepReport::Entry*> SweepReport::sorted_entries() const {
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    return a->cell != b->cell ? a->cell < b->cell : a->metric < b->metric;
  });
  return sorted;
}

std::string SweepReport::json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kSchema);
  w.key("schema_version");
  w.value(static_cast<std::int64_t>(kSchemaVersion));
  w.key("sweep");
  w.value(sweep_);
  w.key("git");
  w.value(AMOEBA_GIT_DESCRIBE);

  w.key("config");
  w.begin_object();
  for (const auto& [key, raw] : config_) {
    w.key(key);
    w.raw(raw);
  }
  w.end_object();

  // (cell, metric) sorted: the serialization is independent of insertion
  // order, which the pool does not guarantee.
  const std::vector<const Entry*> sorted = sorted_entries();

  w.key("cells");
  w.begin_object();
  const std::string* open_cell = nullptr;
  for (const Entry* e : sorted) {
    if (open_cell == nullptr || *open_cell != e->cell) {
      if (open_cell != nullptr) {
        w.end_object();  // metrics
        w.end_object();  // cell
      }
      w.key(e->cell);
      w.begin_object();
      w.key("metrics");
      w.begin_object();
      open_cell = &e->cell;
    }
    w.key(e->metric);
    w.begin_object();
    w.key("better");
    w.value(metrics::better_name(e->better));
    if (!e->unit.empty()) {
      w.key("unit");
      w.value(e->unit);
    }
    w.key("n");
    w.value(static_cast<std::uint64_t>(e->stats.n));
    w.key("mean");
    w.value(e->stats.mean);
    w.key("stddev");
    w.value(e->stats.stddev);
    w.key("min");
    w.value(e->stats.min);
    w.key("max");
    w.value(e->stats.max);
    w.key("p50");
    w.value(e->stats.p50);
    w.key("p95");
    w.value(e->stats.p95);
    w.key("ci95");
    w.value(e->stats.ci95);
    w.end_object();
  }
  if (open_cell != nullptr) {
    w.end_object();  // metrics
    w.end_object();  // cell
  }
  w.end_object();  // cells

  w.end_object();
  std::string out = w.take();
  out += '\n';
  return out;
}

bool SweepReport::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << json();
  f.flush();
  return f.good();
}

}  // namespace sweep
