// Statistical summary of per-trial metric samples.
//
// Aggregation happens after the pool joins, over samples stored in trial
// index order, so the summary is a pure function of the sample values and
// byte-identical regardless of thread count or completion order. Percentiles
// use the nearest-rank rule on the sorted samples (consistent with
// metrics::Histogram's never-under-report convention); the confidence
// interval is the two-sided 95% Student-t interval on the mean.
#pragma once

#include <cstddef>
#include <vector>

namespace sweep {

struct Stats {
  std::size_t n = 0;
  double mean = 0.0;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Nearest-rank percentiles of the samples.
  double p50 = 0.0;
  double p95 = 0.0;
  /// Half-width of the 95% confidence interval on the mean (t-based);
  /// 0 for n < 2. The interval is [mean - ci95, mean + ci95].
  double ci95 = 0.0;
};

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (df >= 1; large df converge to the normal 1.96).
[[nodiscard]] double t_critical_95(std::size_t df) noexcept;

/// Summarise `samples` (unsorted is fine; the input is not modified).
/// Returns a zero Stats for an empty input.
[[nodiscard]] Stats summarize(const std::vector<double>& samples);

/// True if [a_lo, a_hi] and [b_lo, b_hi] share at least one point.
[[nodiscard]] constexpr bool intervals_overlap(double a_lo, double a_hi,
                                               double b_lo,
                                               double b_hi) noexcept {
  return a_lo <= b_hi && b_lo <= a_hi;
}

}  // namespace sweep
