#include "trace/profile.h"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstddef>
#include <unordered_map>

#include "metrics/json.h"

namespace trace {
namespace {

constexpr auto kMechCount = static_cast<std::size_t>(sim::Mechanism::kCount);

const char* op_kind_name(Operation::Kind k) {
  return k == Operation::Kind::kRpc ? "rpc" : "group";
}

const char* role_name(const Operation& op, std::uint32_t node) {
  if (op.kind == Operation::Kind::kRpc) {
    return node == op.initiator ? "client" : "server";
  }
  if (node == op.initiator) return "sender";
  if (node == op.responder) return "sequencer";
  return "member";
}

// One on-node critical-path window: charges overlapping it are on-path.
struct Segment {
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  std::uint32_t op = 0;
  std::uint32_t node = 0;
  bool ends_at_assign = false;  // residual is sequencer (not CPU) queueing
  sim::Time covered = 0;        // charge overlap, clipped to the segment
};

struct NodeSegments {
  std::vector<Segment> segs;  // sorted by (t0, creation order)
  std::size_t lo = 0;         // rolling lower bound: charges arrive in
                              // ascending time, dead segments never revive
};

LatencyStats latency_stats(std::vector<sim::Time>& v) {
  LatencyStats s;
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  s.count = v.size();
  s.min = v.front();
  s.max = v.back();
  for (sim::Time t : v) s.total += t;
  const auto rank = [&](double p) {
    const auto n = static_cast<double>(v.size());
    auto r = static_cast<std::size_t>(p * n + 0.999999);  // ceil(p*n)
    if (r == 0) r = 1;
    if (r > v.size()) r = v.size();
    return v[r - 1];
  };
  s.p50 = rank(0.50);
  s.p99 = rank(0.99);
  return s;
}

}  // namespace

sim::Time Profile::on_path_total() const noexcept {
  sim::Time t = 0;
  for (const MechanismSlice& m : mechanisms) t += m.on_path;
  return t;
}

sim::Time Profile::off_path_total() const noexcept {
  sim::Time t = 0;
  for (const MechanismSlice& m : mechanisms) t += m.off_path;
  return t;
}

Profile profile_trace(const std::vector<Event>& events) {
  return profile_trace(events, build_causal_graph(events));
}

Profile profile_trace(const std::vector<Event>& events,
                      const CausalGraph& graph) {
  Profile p;
  p.events = events.size();
  p.ops_total = graph.ops.size();

  // Latency stats over completed operations.
  std::vector<sim::Time> rpc_lat;
  std::vector<sim::Time> group_lat;
  for (const Operation& op : graph.ops) {
    if (!op.complete) continue;
    ++p.ops_complete;
    (op.kind == Operation::Kind::kRpc ? rpc_lat : group_lat)
        .push_back(op.end - op.start);
  }
  p.rpc = latency_stats(rpc_lat);
  p.group = latency_stats(group_lat);

  // Critical-path edges -> on-node segments plus wire residuals.
  std::unordered_map<std::uint32_t, NodeSegments> by_node;
  for (std::uint32_t oi = 0; oi < graph.ops.size(); ++oi) {
    const Operation& op = graph.ops[oi];
    const char* kind = op_kind_name(op.kind);
    for (std::size_t k = 1; k < op.critical_path.size(); ++k) {
      const std::uint32_t u = op.critical_path[k - 1];
      const std::uint32_t v = op.critical_path[k];
      const Event& eu = events[u];
      const Event& ev_ = events[v];
      const sim::Time dt = ev_.t - eu.t;
      if (eu.node == ev_.node && eu.node != kNoNode) {
        Segment s;
        s.t0 = eu.t;
        s.t1 = ev_.t;
        s.op = oi;
        s.node = eu.node;
        s.ends_at_assign = ev_.kind == EventKind::kSeqnoAssign;
        by_node[eu.node].segs.push_back(s);
      } else if (eu.kind == EventKind::kFragment &&
                 ev_.kind == EventKind::kWireTx) {
        p.residuals.medium_wait += dt;
        p.folded[std::string(kind) + ";wire;medium_wait"] += dt;
      } else if (eu.kind == EventKind::kWireTx &&
                 ev_.kind == EventKind::kInterrupt) {
        p.residuals.wire_occupancy += dt;
        p.folded[std::string(kind) + ";wire;wire_occupancy"] += dt;
      } else {
        p.residuals.unattributed += dt;
        p.folded[std::string(kind) + ";cross;unattributed"] += dt;
      }
    }
  }
  for (auto& [node, ns] : by_node) {
    std::stable_sort(ns.segs.begin(), ns.segs.end(),
                     [](const Segment& a, const Segment& b) {
                       return a.t0 < b.t0;
                     });
  }

  // Join charges against segments. Each charge lands in exactly one bucket,
  // with its full cost and count — that is what makes conservation exact.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (e.kind != EventKind::kCharge || e.a >= kMechCount) continue;
    const auto mech = static_cast<sim::Mechanism>(e.a);
    const auto cost = static_cast<sim::Time>(e.b);
    p.ledger.add(mech, cost, e.c);
    MechanismSlice& slice = p.mechanisms[e.a];
    slice.count += e.c;

    Segment* hit = nullptr;
    const auto it = by_node.find(e.node);
    if (it != by_node.end()) {
      NodeSegments& ns = it->second;
      const sim::Time t0 = e.t;
      const sim::Time t1 = e.t + cost;
      while (ns.lo < ns.segs.size() && ns.segs[ns.lo].t1 < t0) ++ns.lo;
      for (std::size_t s = ns.lo; s < ns.segs.size(); ++s) {
        Segment& seg = ns.segs[s];
        if (seg.t0 > t1) break;  // sorted by t0: nothing later can overlap
        if (seg.t1 < t0) continue;
        hit = &seg;
        break;
      }
    }
    if (hit != nullptr) {
      slice.on_count += e.c;
      slice.on_path += cost;
      hit->covered += std::min(hit->t1, e.t + cost) - std::max(hit->t0, e.t);
      const Operation& op = graph.ops[hit->op];
      p.folded[std::string(op_kind_name(op.kind)) + ";" +
               role_name(op, e.node) + ";" +
               std::string(sim::mechanism_name(mech))] += cost;
    } else {
      slice.off_path += cost;
      p.folded["offpath;" + std::string(sim::mechanism_name(mech))] += cost;
    }
  }

  // Uncharged time inside on-node segments: CPU (or sequencer) queueing.
  for (const auto& [node, ns] : by_node) {
    for (const Segment& seg : ns.segs) {
      const sim::Time residual =
          std::max<sim::Time>(0, (seg.t1 - seg.t0) - seg.covered);
      if (residual == 0) continue;
      const Operation& op = graph.ops[seg.op];
      const char* bucket = seg.ends_at_assign ? "sequencer_queue" : "cpu_queue";
      (seg.ends_at_assign ? p.residuals.sequencer_queue
                          : p.residuals.cpu_queue) += residual;
      p.folded[std::string(op_kind_name(op.kind)) + ";" +
               role_name(op, seg.node) + ";" + bucket] += residual;
    }
  }
  return p;
}

bool conservation_ok(const Profile& p, std::string* why) {
  for (std::size_t m = 0; m < kMechCount; ++m) {
    const auto mech = static_cast<sim::Mechanism>(m);
    const sim::Ledger::Entry& e = p.ledger.get(mech);
    const MechanismSlice& s = p.mechanisms[m];
    if (s.total() != e.total || s.count != e.count) {
      if (why != nullptr) {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "%s: attributed %" PRId64 " ns / %" PRIu64
                      " charges != ledger %" PRId64 " ns / %" PRIu64,
                      std::string(sim::mechanism_name(mech)).c_str(),
                      s.total(), s.count, e.total, e.count);
        *why = buf;
      }
      return false;
    }
  }
  return true;
}

std::string profile_json(const Profile& p, std::string_view source) {
  metrics::JsonWriter w;
  const auto time_key = [&](const char* k, sim::Time t) {
    w.key(k);
    w.value(static_cast<std::int64_t>(t));
  };
  w.begin_object();
  w.key("schema");
  w.value("amoeba-profile/v1");
  w.key("schema_version");
  w.value(std::int64_t{1});
  w.key("source");
  w.value(source);
  w.key("events");
  w.value(static_cast<std::uint64_t>(p.events));
  w.key("ops");
  w.begin_object();
  w.key("total");
  w.value(static_cast<std::uint64_t>(p.ops_total));
  w.key("complete");
  w.value(static_cast<std::uint64_t>(p.ops_complete));
  const auto lat = [&](const char* name, const LatencyStats& s) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(s.count);
    time_key("total_ns", s.total);
    time_key("min_ns", s.min);
    time_key("max_ns", s.max);
    time_key("p50_ns", s.p50);
    time_key("p99_ns", s.p99);
    w.end_object();
  };
  lat("rpc", p.rpc);
  lat("group", p.group);
  w.end_object();
  w.key("mechanisms");
  w.begin_object();
  for (std::size_t m = 0; m < kMechCount; ++m) {
    const MechanismSlice& s = p.mechanisms[m];
    if (s.count == 0 && s.total() == 0) continue;
    w.key(sim::mechanism_name(static_cast<sim::Mechanism>(m)));
    w.begin_object();
    w.key("count");
    w.value(s.count);
    w.key("on_path_count");
    w.value(s.on_count);
    time_key("on_path_ns", s.on_path);
    time_key("off_path_ns", s.off_path);
    time_key("total_ns", s.total());
    w.end_object();
  }
  w.end_object();
  w.key("residuals");
  w.begin_object();
  time_key("wire_occupancy_ns", p.residuals.wire_occupancy);
  time_key("medium_wait_ns", p.residuals.medium_wait);
  time_key("cpu_queue_ns", p.residuals.cpu_queue);
  time_key("sequencer_queue_ns", p.residuals.sequencer_queue);
  time_key("unattributed_ns", p.residuals.unattributed);
  w.end_object();
  w.key("conservation");
  w.begin_object();
  w.key("exact");
  std::string why;
  w.value(conservation_ok(p, &why));
  time_key("on_path_ns", p.on_path_total());
  time_key("off_path_ns", p.off_path_total());
  time_key("ledger_ns", p.ledger.total_time());
  w.end_object();
  w.end_object();
  std::string out = w.take();
  out.push_back('\n');
  return out;
}

std::string folded_stacks(const Profile& p) {
  std::string out;
  char line[256];
  for (const auto& [stack, ns] : p.folded) {
    if (ns == 0) continue;
    const int n =
        std::snprintf(line, sizeof line, "%s %" PRId64 "\n", stack.c_str(), ns);
    out.append(line, static_cast<std::size_t>(n));
  }
  return out;
}

void print_profile(const Profile& p, std::FILE* out) {
  std::fprintf(out,
               "ops: %zu (%zu complete)  rpc n=%" PRIu64 " p50=%.1fus p99=%.1fus"
               "  group n=%" PRIu64 " p50=%.1fus p99=%.1fus\n",
               p.ops_total, p.ops_complete, p.rpc.count, sim::to_us(p.rpc.p50),
               sim::to_us(p.rpc.p99), p.group.count, sim::to_us(p.group.p50),
               sim::to_us(p.group.p99));
  std::fprintf(out, "%-22s %12s %12s %12s %8s\n", "mechanism", "on-path us",
               "off-path us", "total us", "charges");
  for (std::size_t m = 0; m < kMechCount; ++m) {
    const MechanismSlice& s = p.mechanisms[m];
    if (s.count == 0 && s.total() == 0) continue;
    std::fprintf(out, "%-22s %12.1f %12.1f %12.1f %8" PRIu64 "\n",
                 std::string(
                     sim::mechanism_name(static_cast<sim::Mechanism>(m)))
                     .c_str(),
                 sim::to_us(s.on_path), sim::to_us(s.off_path),
                 sim::to_us(s.total()), s.count);
  }
  std::fprintf(out,
               "residuals (us): wire_occupancy %.1f  medium_wait %.1f  "
               "cpu_queue %.1f  sequencer_queue %.1f  unattributed %.1f\n",
               sim::to_us(p.residuals.wire_occupancy),
               sim::to_us(p.residuals.medium_wait),
               sim::to_us(p.residuals.cpu_queue),
               sim::to_us(p.residuals.sequencer_queue),
               sim::to_us(p.residuals.unattributed));
  std::string why;
  if (conservation_ok(p, &why)) {
    std::fprintf(out,
                 "conservation: exact (on-path %.1f us + off-path %.1f us == "
                 "ledger %.1f us)\n",
                 sim::to_us(p.on_path_total()), sim::to_us(p.off_path_total()),
                 sim::to_us(p.ledger.total_time()));
  } else {
    std::fprintf(out, "conservation: VIOLATED — %s\n", why.c_str());
  }
}

namespace {

// Per-operation on-path nanoseconds for one mechanism: the unit the paper's
// §4.2 table uses (completed RPCs dominate our canonical traces; fall back
// to group ops for group-only traces).
double per_op_on_path(const Profile& p, std::size_t m) {
  const std::uint64_t n = p.rpc.count != 0 ? p.rpc.count : p.group.count;
  if (n == 0) return 0.0;
  return static_cast<double>(p.mechanisms[m].on_path) / static_cast<double>(n);
}

// §4.2 decomposes the user-space penalty into categories, not raw mechanism
// rows: its "140 us context switches" and "~50 us traps+crossings" bundles
// are both protection-boundary switching costs (this model charges every
// register-window trap and crossing individually where the paper nets them
// against the kernel's own — see EXPERIMENTS.md), its "~54 us untuned FLIP
// user interface" is translation + boundary copies, and the user-level
// fragmentation layer stands alone.
enum class GapCategory : std::size_t {
  kSwitching = 0,   // switches + signals + the traps/crossings they force
  kFlipInterface,   // address translation + user/kernel boundary copies
  kFragmentation,   // user-level (second) fragmentation layer
  kInterrupt,       // network interrupt dispatch
  kProtocol,        // generic protocol CPU work + locks
  kWire,            // header/payload wire-time charges
  kCount
};

constexpr std::size_t kGapCategoryCount =
    static_cast<std::size_t>(GapCategory::kCount);

constexpr const char* kGapCategoryName[kGapCategoryCount] = {
    "switching+traps+crossings", "flip-interface", "fragmentation-layer",
    "interrupt-dispatch",        "protocol+locks", "wire",
};

GapCategory gap_category(std::size_t mech) {
  switch (static_cast<sim::Mechanism>(mech)) {
    case sim::Mechanism::kContextSwitch:
    case sim::Mechanism::kThreadSwitch:
    case sim::Mechanism::kSyscallCrossing:
    case sim::Mechanism::kUnderflowTrap:
    case sim::Mechanism::kOverflowTrap:
    case sim::Mechanism::kWindowSave:
    case sim::Mechanism::kSignal:
      return GapCategory::kSwitching;
    case sim::Mechanism::kUserKernelCopy:
    case sim::Mechanism::kAddressTranslation:
      return GapCategory::kFlipInterface;
    case sim::Mechanism::kFragmentationLayer:
      return GapCategory::kFragmentation;
    case sim::Mechanism::kInterruptDispatch:
      return GapCategory::kInterrupt;
    case sim::Mechanism::kHeaderWire:
    case sim::Mechanism::kPayloadWire:
      return GapCategory::kWire;
    default:
      return GapCategory::kProtocol;
  }
}

}  // namespace

void print_profile_vs(const Profile& a, const char* name_a, const Profile& b,
                      const char* name_b, std::FILE* out) {
  struct Row {
    std::size_t mech;
    double va, vb;
  };
  std::vector<Row> rows;
  for (std::size_t m = 0; m < kMechCount; ++m) {
    const double va = per_op_on_path(a, m);
    const double vb = per_op_on_path(b, m);
    if (va == 0.0 && vb == 0.0) continue;
    rows.push_back({m, va, vb});
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
    return (x.va - x.vb) > (y.va - y.vb);
  });
  std::fprintf(out, "%-22s %14s %14s %12s   (on-path us/op)\n", "mechanism",
               name_a, name_b, "delta");
  double ta = 0.0;
  double tb = 0.0;
  for (const Row& r : rows) {
    ta += r.va;
    tb += r.vb;
    std::fprintf(out, "%-22s %14.2f %14.2f %+12.2f\n",
                 std::string(
                     sim::mechanism_name(static_cast<sim::Mechanism>(r.mech)))
                     .c_str(),
                 r.va / 1000.0, r.vb / 1000.0, (r.va - r.vb) / 1000.0);
  }
  std::fprintf(out, "%-22s %14.2f %14.2f %+12.2f\n", "total", ta / 1000.0,
               tb / 1000.0, (ta - tb) / 1000.0);

  std::array<double, kGapCategoryCount> cat{};
  for (std::size_t m = 0; m < kMechCount; ++m) {
    cat[static_cast<std::size_t>(gap_category(m))] +=
        per_op_on_path(a, m) - per_op_on_path(b, m);
  }
  std::fprintf(out, "\nsection 4.2 categories       delta us/op\n");
  std::array<std::size_t, kGapCategoryCount> order{};
  for (std::size_t c = 0; c < kGapCategoryCount; ++c) order[c] = c;
  std::stable_sort(order.begin(), order.end(), [&cat](std::size_t x,
                                                      std::size_t y) {
    return cat[x] > cat[y];
  });
  for (std::size_t c : order) {
    if (cat[c] == 0.0) continue;
    std::fprintf(out, "%-26s %+12.2f\n", kGapCategoryName[c], cat[c] / 1000.0);
  }
}

bool check_headline_gap(const Profile& user, const Profile& kernel,
                        std::string* why) {
  std::array<double, kGapCategoryCount> cat{};
  for (std::size_t m = 0; m < kMechCount; ++m) {
    cat[static_cast<std::size_t>(gap_category(m))] +=
        per_op_on_path(user, m) - per_op_on_path(kernel, m);
  }
  std::array<std::size_t, kGapCategoryCount> order{};
  for (std::size_t c = 0; c < kGapCategoryCount; ++c) order[c] = c;
  std::stable_sort(order.begin(), order.end(), [&cat](std::size_t x,
                                                      std::size_t y) {
    return cat[x] > cat[y];
  });
  const auto rank_of = [&order](GapCategory c) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == static_cast<std::size_t>(c)) return i;
    }
    return order.size();
  };
  const std::size_t sw = rank_of(GapCategory::kSwitching);
  const std::size_t frag = rank_of(GapCategory::kFragmentation);
  const double sw_us =
      cat[static_cast<std::size_t>(GapCategory::kSwitching)] / 1000.0;
  if (sw != 0 || sw_us <= 0.0) {
    if (why != nullptr) {
      char buf[192];
      std::snprintf(buf, sizeof buf,
                    "the switching category (context switches + signals + the "
                    "window traps/crossings they force) is not the largest "
                    "user-vs-kernel on-path regression (rank %zu, %+.1f us/op)",
                    sw + 1, sw_us);
      *why = buf;
    }
    return false;
  }
  if (frag > 2) {
    if (why != nullptr) {
      *why = "fragmentation-layer is not in the top 3 user-vs-kernel "
             "on-path category regressions (rank " +
             std::to_string(frag + 1) + ")";
    }
    return false;
  }
  return true;
}

}  // namespace trace
