// Per-operation causal DAG reconstruction from a flat event trace.
//
// The Tracer records what happened; this module recovers *why*. From a raw
// `trace::Event` stream it rebuilds, per operation (one RPC transaction, one
// totally-ordered group send):
//
//  * the set of events that belong to the operation, including every
//    retransmission branch and dropped frame,
//  * a causal edge set: protocol edges (kRpcSend -> kRpcExec -> kRpcReply ->
//    kRpcDone; kGroupSend -> kSeqnoAssign -> kGroupDeliver per member) joined
//    to network edges (kFlipSend -> kFragment -> kWireTx -> kInterrupt ->
//    kFlipDeliver) through FLIP message instances. Instances are keyed by
//    (sender node, msg id); wire frames key back to their instance because
//    frame ids embed (node << 48 | msg_id << 16 | fragment index),
//  * the operation's critical path: the backward max-time walk from its
//    terminal event (kRpcDone; for group sends the *last* kGroupDeliver, i.e.
//    the makespan across members).
//
// Everything is deterministic: ties break on event index, containers iterate
// in insertion or sorted order, and the output is a pure function of the
// event vector. profile.h turns these paths into the paper's §4.2/§4.3
// breakdowns.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/tracer.h"

namespace trace {

/// Sentinel for "event claimed by no operation".
inline constexpr std::uint32_t kNoOp = 0xFFFF'FFFF;

/// One reconstructed operation.
struct Operation {
  enum class Kind : std::uint8_t { kRpc, kGroup };

  Kind kind = Kind::kRpc;
  std::uint64_t key = 0;        // RPC transaction key, or group message uid
  std::uint64_t gid = 0;        // group id (0 for RPC and the panda binding)
  std::uint32_t initiator = kNoNode;  // client / sending member
  std::uint32_t responder = kNoNode;  // RPC server / sequencer (if observed)
  sim::Time start = 0;          // t of kRpcSend / kGroupSend
  sim::Time end = 0;            // t of the terminal event
  bool complete = false;        // saw kRpcDone / at least one kGroupDeliver
  bool ok = false;              // kRpcDone with b==0; groups: any delivery

  /// Indices (into the source event vector) of every event claimed by this
  /// operation, ascending.
  std::vector<std::uint32_t> events;

  /// Critical path, root (kRpcSend/kGroupSend) to terminal, as event indices.
  /// Empty only for degenerate operations with no terminal event.
  std::vector<std::uint32_t> critical_path;
};

/// The reconstructed DAG over one trace.
struct CausalGraph {
  std::vector<Operation> ops;

  /// preds[i]: causal predecessors of event i (event indices, each with
  /// t <= events[i].t). Events outside any reconstructed edge have none.
  std::vector<std::vector<std::uint32_t>> preds;

  /// op_of[i]: index into `ops` of the operation that claimed event i, or
  /// kNoOp. kCharge events are never claimed here — profile.h joins them
  /// against critical-path windows instead.
  std::vector<std::uint32_t> op_of;
};

/// Rebuild the causal graph. Pure function of `events`.
[[nodiscard]] CausalGraph build_causal_graph(const std::vector<Event>& events);

}  // namespace trace
