#include "trace/trace_io.h"

#include <cerrno>
#include <cinttypes>
#include <cstring>

namespace trace {
namespace {

// Fast unsigned decimal parse over [p, end). Returns nullptr on empty or
// non-digit input, else one past the last digit consumed.
const char* parse_u64(const char* p, const char* end, std::uint64_t& out) {
  if (p == end || *p < '0' || *p > '9') return nullptr;
  std::uint64_t v = 0;
  while (p != end && *p >= '0' && *p <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(*p - '0');
    ++p;
  }
  out = v;
  return p;
}

const char* skip_spaces(const char* p, const char* end) {
  while (p != end && *p == ' ') ++p;
  return p;
}

}  // namespace

std::string trace_text(const std::vector<Event>& events) {
  std::string out;
  out.reserve(events.size() * 40 + 32);
  out.append(kTraceTextHeader);
  out.push_back('\n');
  char line[160];
  for (const Event& e : events) {
    const int n = std::snprintf(
        line, sizeof line,
        "%" PRId64 " %" PRIu32 " %u %" PRIu64 " %" PRIu64 " %" PRIu64
        " %" PRIu64 "\n",
        e.t, e.node, static_cast<unsigned>(e.kind), e.a, e.b, e.c, e.d);
    out.append(line, static_cast<std::size_t>(n));
  }
  return out;
}

bool write_trace_text_file(const std::vector<Event>& events,
                           const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open %s for writing: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  const std::string text = trace_text(events);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::fprintf(stderr, "trace: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

bool parse_trace_text(std::string_view text, std::vector<Event>& out,
                      std::string* error) {
  auto fail = [&](std::size_t lineno, const char* what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + what;
    }
    return false;
  };
  out.clear();
  std::size_t pos = 0;
  std::size_t lineno = 0;
  bool saw_header = false;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    const bool last = eol == text.size();
    pos = eol + 1;
    ++lineno;
    if (!saw_header) {
      if (line != kTraceTextHeader) return fail(lineno, "bad header (want '# amoeba-trace/v1')");
      saw_header = true;
      if (last) break;
      continue;
    }
    if (line.empty()) {
      if (last) break;
      return fail(lineno, "empty line");
    }
    const char* p = line.data();
    const char* end = p + line.size();
    std::uint64_t f[7];
    for (int i = 0; i < 7; ++i) {
      p = skip_spaces(p, end);
      p = parse_u64(p, end, f[i]);
      if (p == nullptr) return fail(lineno, "expected 7 decimal fields");
    }
    if (skip_spaces(p, end) != end) return fail(lineno, "trailing garbage");
    if (f[1] > 0xFFFF'FFFFu) return fail(lineno, "node out of range");
    if (f[2] >= static_cast<std::uint64_t>(EventKind::kKindCount)) {
      return fail(lineno, "unknown event kind");
    }
    Event e;
    e.t = static_cast<sim::Time>(f[0]);
    e.node = static_cast<std::uint32_t>(f[1]);
    e.kind = static_cast<EventKind>(f[2]);
    e.a = f[3];
    e.b = f[4];
    e.c = f[5];
    e.d = f[6];
    out.push_back(e);
    if (last) break;
  }
  if (!saw_header) return fail(1, "empty file");
  return true;
}

bool read_trace_text_file(const std::string& path, std::vector<Event>& out,
                          std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    if (error != nullptr) *error = "read error on " + path;
    return false;
  }
  if (!parse_trace_text(text, out, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

}  // namespace trace
