// Per-message protocol event tracing.
//
// The Ledger (sim/ledger.h) answers "where did the time go in aggregate"; the
// Tracer answers "what happened to *this* message, in order, on which node".
// Every lifecycle site in the protocol stacks — rpc_send, fragment, wire_tx,
// frame_drop, interrupt, upcall, deliver, retransmit, seqno_assign, ack —
// records a timestamped, node-tagged event when a Tracer is attached to the
// Simulator. When no Tracer is attached the instrumentation is a single null
// pointer check, and recording never schedules events, draws random numbers,
// or charges simulated time, so traced and untraced runs are time-identical.
//
// A finished trace feeds two consumers: the Chrome trace-event exporter
// (chrome_export.h) for timeline visualisation, and the TraceChecker
// (checker.h) which replays the trace and proves protocol invariants.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace trace {

/// Node tag for events that happen on the wire rather than at a station.
inline constexpr std::uint32_t kNoNode = 0xFFFF'FFFF;

enum class EventKind : std::uint8_t {
  // RPC lifecycle. `a` is the transaction key (client_node << 32 | trans_id).
  kRpcSend = 0,   // client issues a call       b=server, c=request bytes
  kRpcExec,       // server accepts a *fresh* request (the exactly-once point)
  kRpcReply,      // server sends the reply
  kRpcDone,       // client call returns        b=0 ok, 1 timeout/failure
  kAck,           // ack transmitted            b=1 explicit, 2 piggybacked

  // Group (totally ordered broadcast) lifecycle.
  kGroupSend,     // member starts a send       a=message uid, c=bytes
  kSeqnoAssign,   // sequencer assigns order    a=seqno, b=sender, c=uid, d=group
  kGroupDeliver,  // in-order commit at member  a=seqno, b=sender, c=bytes, d=group

  // FLIP / network layer.
  kFlipSend,      // message enters FLIP        a=dst addr, b=msg_id, c=bytes, d=1 local
  kFragment,      // one fragment produced      a=frame id (0: user-level), b=msg_id,
                  //                            c=src addr (0: user-level), d=chunk bytes
  kFlipDeliver,   // reassembled delivery       a=src addr, b=msg_id, c=bytes, d=1 local
  kWireTx,        // frame occupies the medium  a=frame id, b=bytes, c=src<<32|dst
  kFrameDrop,     // frame lost                 a=frame id, b=bytes, c=src<<32|dst,
                  //                            d=(FrameClass<<1)|site (0 wire, 1 nic)
  kInterrupt,     // NIC accepted a frame       a=frame id, b=bytes, c=src<<32|dst

  // Cross-cutting.
  kRetransmit,    // recovery action            a=key/uid/seqno, b=RetransmitReason
  kUpcall,        // handler invocation         a=key/seqno, b=1 rpc, 2 group
  kCharge,        // ledger charge              a=Mechanism index, b=cost ns, c=count

  // Replicated-sequencer (Paxos) group lifecycle. New kinds append here so
  // the numeric values of everything above — and therefore the committed
  // fixture digests of non-replicated runs — never move.
  kGroupView,     // node adopted a new view    a=view, b=leader node, d=group
  kMemberJoin,    // membership window opens    a=first deliverable seqno, d=group
  kMemberLeave,   // membership window closes   a=last deliverable seqno, d=group
  kCrash,         // node stops participating   d=group

  // Kernel-bypass (RDMA-style) verbs. Appended after the Paxos kinds so the
  // numeric values of everything above keep their committed-fixture meaning.
  kBypassPost,     // WQE posted + doorbell rung  a=wr key (node<<32|seq),
                   //                             b=peer, c=bytes, d=opcode
  kBypassRemote,   // one-sided op served by the  a=wr key, b=initiator node,
                   // *target NIC*, no thread     c=bytes, d=opcode
  kBypassComplete, // CQE reaped by a poller      a=wr key, b=0 ok / 1 error,
                   //                             c=bytes, d=opcode

  kKindCount
};

[[nodiscard]] std::string_view kind_name(EventKind k) noexcept;

/// Why a retransmission (or retransmission request) happened.
enum RetransmitReason : std::uint64_t {
  kReasonClientRetry = 1,   // RPC client timer expired
  kReasonCachedReply = 2,   // server re-sent a cached reply for a dup request
  kReasonLocateRetry = 3,   // FLIP locate broadcast repeated
  kReasonGroupSendRetry = 4,  // member re-sent an unsequenced message
  kReasonSequencerResend = 5,  // sequencer re-emitted an already-ordered message
  kReasonGapRequest = 6,    // member asked for a missing seqno
  kReasonLagWatchdog = 7,   // sequencer pushed history at a lagging member
  kReasonGoBackN = 8,       // bypass NIC go-back-N window retransmit
};

/// Wire-frame classification, used by the checker's loss-recovery invariant.
/// Produced by the payload classifier at frame-drop time.
enum FrameClass : std::uint64_t {
  kClassUnknown = 0,  // no classifier installed / unparseable
  kClassControl = 1,  // ack/status traffic: losing it needs no retransmission
  kClassData = 2,     // request/reply/group body: recovery must follow a loss
  kClassMeta = 3,     // FLIP locate/here-is
};

/// One traced event. Plain data; `operator==` lets the determinism test
/// compare whole traces.
struct Event {
  sim::Time t = 0;
  std::uint32_t node = kNoNode;
  EventKind kind = EventKind::kKindCount;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;

  [[nodiscard]] bool operator==(const Event&) const = default;
};

class Tracer {
 public:
  /// Classifies a raw frame payload into a FrameClass (see dissect.h for the
  /// default implementation).
  using Classifier = std::function<std::uint64_t(const std::uint8_t* data,
                                                 std::size_t size)>;

  /// Attaches to the simulator (sets its tracer pointer); detaches on
  /// destruction. The simulator must outlive the tracer.
  explicit Tracer(sim::Simulator& s);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Record one event at the current simulated time. No simulation side
  /// effects whatsoever.
  void record(std::uint32_t node, EventKind kind, std::uint64_t a = 0,
              std::uint64_t b = 0, std::uint64_t c = 0, std::uint64_t d = 0) {
    events_.push_back(Event{sim_->now(), node, kind, a, b, c, d});
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }

  /// Number of events of one kind.
  [[nodiscard]] std::size_t count(EventKind k) const noexcept;

  void clear() { events_.clear(); }

  /// Replace the payload classifier (defaults to trace::dissect_frame_class).
  /// Pass nullptr to disable classification (drops become kClassUnknown).
  void set_classifier(Classifier c) { classify_ = std::move(c); }

  [[nodiscard]] std::uint64_t classify(const std::uint8_t* data,
                                       std::size_t size) const {
    return classify_ ? classify_(data, size)
                     : static_cast<std::uint64_t>(kClassUnknown);
  }

 private:
  sim::Simulator* sim_;
  std::vector<Event> events_;
  Classifier classify_;
};

}  // namespace trace
