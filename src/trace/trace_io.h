// Raw trace serialization: the `amoeba-trace/v1` text format.
//
// The Chrome exporter (chrome_export.h) is a lossy visualisation format; the
// causal profiler (causal.h / profile.h) and the amoeba_prof CLI need every
// field of every Event back, byte-exact. This format is deliberately dumb:
// one header line, then one space-separated decimal line per event in record
// order:
//
//   # amoeba-trace/v1
//   <t> <node> <kind> <a> <b> <c> <d>
//
// `node` is the raw uint32 (4294967295 for kNoNode) and `kind` the stable
// numeric EventKind value, so the bytes are a pure function of the trace and
// a round-trip reproduces the event vector exactly.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "trace/tracer.h"

namespace trace {

inline constexpr std::string_view kTraceTextHeader = "# amoeba-trace/v1";

/// Serialize a trace to amoeba-trace/v1 text. Deterministic bytes.
[[nodiscard]] std::string trace_text(const std::vector<Event>& events);

/// Write amoeba-trace/v1 text to `path`. Returns false (and prints to stderr)
/// on I/O failure.
bool write_trace_text_file(const std::vector<Event>& events,
                           const std::string& path);

/// Parse amoeba-trace/v1 text. On failure returns false and, when `error` is
/// non-null, stores a one-line description (bad header, short line, ...).
bool parse_trace_text(std::string_view text, std::vector<Event>& out,
                      std::string* error);

/// Read and parse an amoeba-trace/v1 file.
bool read_trace_text_file(const std::string& path, std::vector<Event>& out,
                          std::string* error);

}  // namespace trace
