// Chrome trace-event JSON exporter.
//
// Serializes a trace into the Trace Event Format understood by
// chrome://tracing and https://ui.perfetto.dev. Each simulated node becomes a
// "process"; within a node, events are grouped onto named lanes (rpc, group,
// flip, wire, charge). Ledger charges export as duration events ("ph":"X") so
// the mechanism costs of §4.2/§4.3 render as visible time spans; everything
// else exports as instant events ("ph":"i").
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "trace/tracer.h"

namespace trace {

void write_chrome_trace(const std::vector<Event>& events, std::ostream& os);

[[nodiscard]] std::string chrome_trace_json(const std::vector<Event>& events);

/// Writes the trace to `path`; returns false if the file cannot be opened.
bool write_chrome_trace_file(const std::vector<Event>& events,
                             const std::string& path);

}  // namespace trace
