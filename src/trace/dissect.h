// Wire-format dissector for trace enrichment.
//
// Classifies a raw Ethernet frame payload (FLIP fragment header + protocol
// bytes) so the TraceChecker can tell whether losing that frame requires a
// retransmission. Like a protocol-analyzer dissector this duplicates a little
// wire-format knowledge from the protocol implementations (flip.cpp, rpc.cpp,
// group.cpp, pan_sys.cpp, pan_rpc.cpp, pan_group.cpp); the tracer tests pin
// the two against each other.
#pragma once

#include <cstddef>
#include <cstdint>

namespace trace {

/// Returns a trace::FrameClass value (declared in tracer.h):
///   kClassMeta    — FLIP LOCATE/HERE-IS, or unparseable;
///   kClassControl — RPC acks/server-busy, group status traffic: losing one
///                   is absorbed without any retransmission;
///   kClassData    — everything else (requests, replies, group bodies,
///                   sequenced messages, non-first fragments): a loss must be
///                   followed by recovery activity.
[[nodiscard]] std::uint64_t dissect_frame_class(const std::uint8_t* data,
                                                std::size_t size) noexcept;

}  // namespace trace
