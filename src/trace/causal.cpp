#include "trace/causal.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <unordered_map>
#include <utility>

namespace trace {
namespace {

constexpr std::uint32_t kNone = 0xFFFF'FFFF;

// Frame ids are minted by the FLIP fragmenter as
// (node << 48) | (msg_id << 16) | fragment_index, so a wire-level event keys
// straight back to its message instance.
constexpr std::uint32_t frame_node(std::uint64_t frame_id) {
  return static_cast<std::uint32_t>(frame_id >> 48);
}
constexpr std::uint64_t frame_msg(std::uint64_t frame_id) {
  return (frame_id >> 16) & 0xFFFF'FFFFull;
}

// (sender node, msg_id) -> flat key. msg ids are per-node 32-bit counters.
constexpr std::uint64_t inst_key(std::uint32_t node, std::uint64_t msg_id) {
  return (static_cast<std::uint64_t>(node) << 32) | (msg_id & 0xFFFF'FFFFull);
}

// Group message uids are (sender << 32 | per-sender counter) in both
// bindings; kSeqnoAssign carries b=sender and c=uid-or-counter, so this
// normalisation reproduces the full uid either way.
constexpr std::uint64_t full_uid(std::uint64_t sender, std::uint64_t c) {
  return (sender << 32) | (c & 0xFFFF'FFFFull);
}

// One transmission attempt's wire footprint: the fragment, its wire slot, and
// every NIC that accepted it (several for multicast, or under duplication).
struct FrameRec {
  std::uint64_t id = 0;
  std::uint32_t frag = kNone;
  std::uint32_t wire = kNone;
  std::vector<std::uint32_t> interrupts;
  std::vector<std::uint32_t> drops;
};

// One FLIP message instance: a single kFlipSend and everything downstream of
// it. A retransmission is a *new* instance (fresh msg_id), which is what lets
// the graph keep retransmit branches distinct.
struct Inst {
  std::uint32_t node = kNoNode;
  std::uint64_t msg_id = 0;
  std::uint32_t flip_send = kNone;
  std::uint64_t dst_addr = 0;
  std::uint64_t src_addr = 0;  // learned from the first fragment
  std::vector<FrameRec> frames;
  std::vector<std::uint32_t> delivers;  // kFlipDeliver, possibly many nodes
  std::uint32_t claimed_by = kNoOp;

  FrameRec& frame(std::uint64_t id) {
    for (FrameRec& f : frames) {
      if (f.id == id) return f;
    }
    frames.push_back(FrameRec{id, kNone, kNone, {}, {}});
    return frames.back();
  }
};

// Per-operation protocol anchors, kept out of the public Operation struct.
struct OpScratch {
  std::uint32_t send = kNone;   // kRpcSend / kGroupSend
  std::uint32_t exec = kNone;   // kRpcExec
  std::uint32_t reply = kNone;  // kRpcReply
  std::uint32_t done = kNone;   // kRpcDone
  std::uint32_t assign = kNone;  // kSeqnoAssign
  std::vector<std::uint32_t> delivers;     // kGroupDeliver
  std::vector<std::uint32_t> upcalls;      // kUpcall
  std::vector<std::uint32_t> retransmits;  // kRetransmit
};

struct Builder {
  const std::vector<Event>& ev;
  CausalGraph g;
  std::vector<OpScratch> scratch;

  std::vector<Inst> insts;
  std::unordered_map<std::uint64_t, std::uint32_t> inst_by_key;
  // (src FLIP addr, msg_id) -> instance, for joining kFlipDeliver.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> inst_by_src;
  // node -> its instances, in flip-send order.
  std::map<std::uint32_t, std::vector<std::uint32_t>> insts_of_node;

  std::unordered_map<std::uint64_t, std::uint32_t> rpc_op;  // trans key
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> group_op;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> seqno_op;
  std::map<std::uint64_t, std::vector<std::uint32_t>> ops_of_seqno;
  std::map<std::uint64_t, std::vector<std::uint32_t>> ops_of_uid;
  // node -> last local (d==1) kFlipSend seen there.
  std::unordered_map<std::uint32_t, std::uint32_t> last_local_send;

  explicit Builder(const std::vector<Event>& events) : ev(events) {
    g.preds.assign(ev.size(), {});
    g.op_of.assign(ev.size(), kNoOp);
  }

  // u happened-before v. Trace order is execution order, so a real causal
  // predecessor always has a smaller index; the guard also keeps the
  // backward critical-path walk strictly decreasing (no cycles).
  void add_pred(std::uint32_t v, std::uint32_t u) {
    if (u == kNone || v == kNone || u >= v) return;
    if (ev[u].t > ev[v].t) return;
    g.preds[v].push_back(u);
  }

  std::uint32_t new_op(Operation::Kind kind, std::uint64_t key,
                       std::uint64_t gid, std::uint32_t node, sim::Time t) {
    Operation op;
    op.kind = kind;
    op.key = key;
    op.gid = gid;
    op.initiator = node;
    op.start = t;
    op.end = t;
    g.ops.push_back(std::move(op));
    scratch.emplace_back();
    return static_cast<std::uint32_t>(g.ops.size() - 1);
  }

  void attach(std::uint32_t op, std::uint32_t idx) {
    if (g.op_of[idx] == kNoOp) g.op_of[idx] = op;
    g.ops[op].events.push_back(idx);
    g.ops[op].end = std::max(g.ops[op].end, ev[idx].t);
  }

  void claim_inst(std::uint32_t op, std::uint32_t ii) {
    Inst& in = insts[ii];
    if (in.claimed_by != kNoOp) return;
    in.claimed_by = op;
    if (in.flip_send != kNone) attach(op, in.flip_send);
    for (const FrameRec& f : in.frames) {
      if (f.frag != kNone) attach(op, f.frag);
      if (f.wire != kNone) attach(op, f.wire);
      for (std::uint32_t i : f.interrupts) attach(op, i);
      for (std::uint32_t i : f.drops) attach(op, i);
    }
    for (std::uint32_t i : in.delivers) attach(op, i);
  }

  // Latest kFlipDeliver of instance `ii` at `node` with t <= hi (kNone if
  // none). Ties break toward the later event index.
  std::uint32_t deliver_at(std::uint32_t ii, std::uint32_t node,
                           sim::Time hi) const {
    std::uint32_t best = kNone;
    for (std::uint32_t d : insts[ii].delivers) {
      if (ev[d].node != node || ev[d].t > hi) continue;
      if (best == kNone || ev[d].t > ev[best].t ||
          (ev[d].t == ev[best].t && d > best)) {
        best = d;
      }
    }
    return best;
  }

  void index_network(std::uint32_t i) {
    const Event& e = ev[i];
    switch (e.kind) {
      case EventKind::kFlipSend: {
        if (e.d == 1) {  // local fast path: no instance, link at deliver
          last_local_send[e.node] = i;
          break;
        }
        Inst in;
        in.node = e.node;
        in.msg_id = e.b;
        in.flip_send = i;
        in.dst_addr = e.a;
        insts.push_back(std::move(in));
        const auto ii = static_cast<std::uint32_t>(insts.size() - 1);
        inst_by_key[inst_key(e.node, e.b)] = ii;
        insts_of_node[e.node].push_back(ii);
        break;
      }
      case EventKind::kFragment: {
        if (e.a == 0) break;  // user-level fragmentation marker, no frame
        const auto it = inst_by_key.find(inst_key(e.node, e.b));
        if (it == inst_by_key.end()) break;
        Inst& in = insts[it->second];
        if (in.src_addr == 0) {
          in.src_addr = e.c;
          inst_by_src[{e.c, e.b}] = it->second;
        }
        FrameRec& f = in.frame(e.a);
        f.frag = i;
        add_pred(i, in.flip_send);
        break;
      }
      case EventKind::kWireTx: {
        const auto it =
            inst_by_key.find(inst_key(frame_node(e.a), frame_msg(e.a)));
        if (it == inst_by_key.end()) break;
        FrameRec& f = insts[it->second].frame(e.a);
        f.wire = i;
        add_pred(i, f.frag);
        break;
      }
      case EventKind::kInterrupt: {
        const auto it =
            inst_by_key.find(inst_key(frame_node(e.a), frame_msg(e.a)));
        if (it == inst_by_key.end()) break;
        FrameRec& f = insts[it->second].frame(e.a);
        f.interrupts.push_back(i);
        add_pred(i, f.wire);
        break;
      }
      case EventKind::kFrameDrop: {
        const auto it =
            inst_by_key.find(inst_key(frame_node(e.a), frame_msg(e.a)));
        if (it == inst_by_key.end()) break;
        FrameRec& f = insts[it->second].frame(e.a);
        f.drops.push_back(i);
        // A loss descends from the transmission attempt it destroyed, so a
        // retransmit rooted at the drop walks back through the lost branch.
        const std::uint32_t tx = f.wire != kNone ? f.wire : f.frag;
        if (tx != kNone) add_pred(i, tx);
        break;
      }
      case EventKind::kFlipDeliver: {
        if (e.d == 1) {  // local fast path: pair with the adjacent local send
          const auto it = last_local_send.find(e.node);
          if (it != last_local_send.end()) add_pred(i, it->second);
          break;
        }
        const auto it = inst_by_src.find({e.a, e.b});
        if (it == inst_by_src.end()) break;
        Inst& in = insts[it->second];
        in.delivers.push_back(i);
        // Reassembled delivery depends on every fragment's interrupt at the
        // delivering node; the critical path picks the latest.
        bool linked = false;
        for (const FrameRec& f : in.frames) {
          for (std::uint32_t intr : f.interrupts) {
            if (ev[intr].node == e.node && ev[intr].t <= e.t) {
              add_pred(i, intr);
              linked = true;
            }
          }
        }
        if (!linked) add_pred(i, in.flip_send);
        break;
      }
      default:
        break;
    }
  }

  void index_protocol(std::uint32_t i) {
    const Event& e = ev[i];
    switch (e.kind) {
      case EventKind::kRpcSend: {
        const std::uint32_t op =
            new_op(Operation::Kind::kRpc, e.a, 0, e.node, e.t);
        rpc_op[e.a] = op;
        scratch[op].send = i;
        attach(op, i);
        break;
      }
      case EventKind::kRpcExec:
      case EventKind::kRpcReply:
      case EventKind::kRpcDone:
      case EventKind::kAck: {
        const auto it = rpc_op.find(e.a);
        if (it == rpc_op.end()) break;
        const std::uint32_t op = it->second;
        attach(op, i);
        if (e.kind == EventKind::kRpcExec) {
          if (scratch[op].exec == kNone) scratch[op].exec = i;
          g.ops[op].responder = e.node;
        } else if (e.kind == EventKind::kRpcReply) {
          if (scratch[op].reply == kNone) scratch[op].reply = i;
        } else if (e.kind == EventKind::kRpcDone) {
          scratch[op].done = i;
          g.ops[op].complete = true;
          g.ops[op].ok = e.b == 0;
        }
        break;
      }
      case EventKind::kGroupSend: {
        const std::uint32_t op =
            new_op(Operation::Kind::kGroup, e.a, e.d, e.node, e.t);
        group_op[{e.d, e.a}] = op;
        ops_of_uid[e.a].push_back(op);
        scratch[op].send = i;
        attach(op, i);
        break;
      }
      case EventKind::kSeqnoAssign: {
        const auto it = group_op.find({e.d, full_uid(e.b, e.c)});
        if (it == group_op.end()) break;
        const std::uint32_t op = it->second;
        attach(op, i);
        if (scratch[op].assign == kNone) {
          scratch[op].assign = i;
          g.ops[op].responder = e.node;
        }
        seqno_op[{e.d, e.a}] = op;
        ops_of_seqno[e.a].push_back(op);
        break;
      }
      case EventKind::kGroupDeliver: {
        const auto it = seqno_op.find({e.d, e.a});
        if (it == seqno_op.end()) break;
        const std::uint32_t op = it->second;
        attach(op, i);
        scratch[op].delivers.push_back(i);
        g.ops[op].complete = true;
        g.ops[op].ok = true;
        break;
      }
      case EventKind::kUpcall: {
        if (e.b == 1) {
          const auto it = rpc_op.find(e.a);
          if (it == rpc_op.end()) break;
          attach(it->second, i);
          scratch[it->second].upcalls.push_back(i);
        } else {
          const auto it = ops_of_seqno.find(e.a);
          if (it == ops_of_seqno.end() || it->second.size() != 1) break;
          attach(it->second.front(), i);
          scratch[it->second.front()].upcalls.push_back(i);
        }
        break;
      }
      case EventKind::kRetransmit: {
        std::uint32_t op = kNoOp;
        switch (e.b) {
          case kReasonClientRetry:
          case kReasonCachedReply: {
            const auto it = rpc_op.find(e.a);
            if (it != rpc_op.end()) op = it->second;
            break;
          }
          case kReasonGroupSendRetry: {
            auto it = ops_of_uid.find(e.a);
            if (it == ops_of_uid.end()) {
              it = ops_of_uid.find(full_uid(e.node, e.a));
            }
            if (it != ops_of_uid.end() && it->second.size() == 1) {
              op = it->second.front();
            }
            break;
          }
          case kReasonSequencerResend:
          case kReasonGapRequest:
          case kReasonLagWatchdog: {
            const auto it = ops_of_seqno.find(e.a);
            if (it != ops_of_seqno.end() && it->second.size() == 1) {
              op = it->second.front();
            }
            break;
          }
          default:
            break;
        }
        if (op != kNoOp) {
          attach(op, i);
          scratch[op].retransmits.push_back(i);
        }
        break;
      }
      default:
        break;
    }
  }

  // Claim unclaimed instances sent by `node` whose flip-send falls in
  // [lo, hi]. FLIP destinations are service addresses (unmappable to nodes),
  // so the destination filter uses the instance's own delivery record: an
  // instance that delivered somewhere must have delivered at `want_dst`
  // (multicast delivers everywhere, so sequencer broadcasts pass), while an
  // instance with no deliveries (dropped, or a retransmit branch still in
  // flight) stays eligible — the sender and time window already pin it to
  // this operation.
  std::vector<std::uint32_t> claim_window(std::uint32_t op, std::uint32_t node,
                                          sim::Time lo, sim::Time hi,
                                          std::uint32_t want_dst) {
    std::vector<std::uint32_t> out;
    const auto it = insts_of_node.find(node);
    if (it == insts_of_node.end()) return out;
    for (std::uint32_t ii : it->second) {
      Inst& in = insts[ii];
      if (in.claimed_by != kNoOp || in.flip_send == kNone) continue;
      const sim::Time t = ev[in.flip_send].t;
      if (t < lo || t > hi) continue;
      if (want_dst != kNoNode && !in.delivers.empty()) {
        bool at_dst = false;
        for (std::uint32_t d : in.delivers) {
          if (ev[d].node == want_dst) {
            at_dst = true;
            break;
          }
        }
        if (!at_dst) continue;
      }
      claim_inst(op, ii);
      out.push_back(ii);
    }
    return out;
  }

  // Latest event already claimed by `op` on `node` ordered before event `r`
  // (by (t, index)), else `fallback`. A retransmission is triggered by local
  // state — a client timer armed at the last transmission attempt, a server
  // answering a duplicate request it just received, a member noticing a gap
  // after a delivery — so its causal root is the op's most recent local
  // event. Wire-level events (node == kNoNode) also qualify: when the op's
  // own frame was dropped, that drop *is* what the recovery answers, and
  // keeping it upstream of the retransmit puts the whole loss story (first
  // attempt, drop, timeout wait, retry) on one causal chain.
  std::uint32_t local_root(std::uint32_t op, std::uint32_t node,
                           std::uint32_t r, std::uint32_t fallback) const {
    std::uint32_t best = kNone;
    for (std::uint32_t e : g.ops[op].events) {
      if ((ev[e].node != node && ev[e].node != kNoNode) || e == r) continue;
      if (ev[e].t > ev[r].t || (ev[e].t == ev[r].t && e > r)) continue;
      if (best == kNone || ev[e].t > ev[best].t ||
          (ev[e].t == ev[best].t && e > best)) {
        best = e;
      }
    }
    return best == kNone ? fallback : best;
  }

  // Latest retransmit event of `op` at `node` with t <= hi, else `fallback`.
  std::uint32_t resend_root(std::uint32_t op, std::uint32_t node, sim::Time hi,
                            std::uint32_t fallback) const {
    std::uint32_t best = fallback;
    for (std::uint32_t r : scratch[op].retransmits) {
      if (ev[r].node != node || ev[r].t > hi) continue;
      if (best == kNone || ev[r].t > ev[best].t ||
          (ev[r].t == ev[best].t && r > best)) {
        best = r;
      }
    }
    return best;
  }

  void link_rpc(std::uint32_t op) {
    const OpScratch& s = scratch[op];
    Operation& o = g.ops[op];
    if (s.send == kNone) return;
    const std::uint32_t client = o.initiator;
    // Fall back to the kRpcSend service field (the server node in both
    // bindings) when the exec side of the transaction was never traced.
    const std::uint32_t server =
        o.responder != kNoNode ? o.responder
                               : static_cast<std::uint32_t>(ev[s.send].b);
    const sim::Time t_exec = s.exec != kNone ? ev[s.exec].t : o.end;
    const sim::Time t_end = s.done != kNone ? ev[s.done].t : o.end;

    // Request journey: every transmission attempt. The window runs to the
    // call's completion, not just to exec — when a *reply* is lost the client
    // retries after the server already executed, and that retry (plus the
    // client's explicit ack) still belongs to this operation. Only delivers
    // up to t_exec can carry the exec edge (deliver_at bounds them below).
    const auto req = claim_window(op, client, ev[s.send].t, t_end, server);
    std::uint32_t exec_deliver = kNone;
    for (std::uint32_t ii : req) {
      add_pred(insts[ii].flip_send,
               resend_root(op, client, ev[insts[ii].flip_send].t, s.send));
      if (s.exec != kNone) {
        const std::uint32_t d = deliver_at(ii, server, t_exec);
        if (d != kNone &&
            (exec_deliver == kNone || ev[d].t > ev[exec_deliver].t ||
             (ev[d].t == ev[exec_deliver].t && d > exec_deliver))) {
          exec_deliver = d;
        }
      }
    }
    if (s.exec != kNone) {
      std::uint32_t prev = exec_deliver != kNone ? exec_deliver : s.send;
      for (std::uint32_t u : s.upcalls) {
        if (ev[u].node == server && u < s.exec) {
          add_pred(u, prev);
          prev = u;
        }
      }
      add_pred(s.exec, prev);
    }
    if (s.reply != kNone) {
      add_pred(s.reply, s.exec != kNone ? s.exec : s.send);
      // Reply journey, bounded by the call completing (or the op dying).
      const sim::Time t_done = s.done != kNone ? ev[s.done].t : o.end;
      const auto rep = claim_window(op, server, ev[s.reply].t, t_done, client);
      std::uint32_t done_deliver = kNone;
      for (std::uint32_t ii : rep) {
        add_pred(insts[ii].flip_send,
                 resend_root(op, server, ev[insts[ii].flip_send].t, s.reply));
        if (s.done != kNone) {
          const std::uint32_t d = deliver_at(ii, client, t_done);
          if (d != kNone &&
              (done_deliver == kNone || ev[d].t > ev[done_deliver].t ||
               (ev[d].t == ev[done_deliver].t && d > done_deliver))) {
            done_deliver = d;
          }
        }
      }
      if (s.done != kNone) {
        add_pred(s.done, done_deliver != kNone ? done_deliver : s.reply);
      }
    } else if (s.done != kNone) {
      add_pred(s.done, s.send);  // timed out: terminal links to the root
    }
    for (std::uint32_t r : s.retransmits) {
      add_pred(r, local_root(op, ev[r].node, r, s.send));
    }
  }

  void link_group(std::uint32_t op) {
    const OpScratch& s = scratch[op];
    Operation& o = g.ops[op];
    if (s.send == kNone) return;
    const std::uint32_t sender = o.initiator;
    const std::uint32_t sequencer = o.responder;

    if (s.assign != kNone && sequencer != kNoNode && sequencer != sender) {
      // Sender -> sequencer journey (PB request, or BB body broadcast that
      // the sequencer also receives — either way it delivers at the
      // sequencer, which is what the claim filter checks).
      const auto req =
          claim_window(op, sender, ev[s.send].t, ev[s.assign].t, sequencer);
      std::uint32_t assign_deliver = kNone;
      for (std::uint32_t ii : req) {
        add_pred(insts[ii].flip_send,
                 resend_root(op, sender, ev[insts[ii].flip_send].t, s.send));
        const std::uint32_t d = deliver_at(ii, sequencer, ev[s.assign].t);
        if (d != kNone &&
            (assign_deliver == kNone || ev[d].t > ev[assign_deliver].t ||
             (ev[d].t == ev[assign_deliver].t && d > assign_deliver))) {
          assign_deliver = d;
        }
      }
      add_pred(s.assign, assign_deliver != kNone ? assign_deliver : s.send);
    } else if (s.assign != kNone) {
      add_pred(s.assign, s.send);  // sender is the sequencer: local hop
    }

    // Member deliveries: each rides the latest FLIP delivery at that member
    // from an instance originating at the sequencer (ordered broadcast /
    // history resend) or the sender (big-blob body broadcast).
    for (std::uint32_t gd : s.delivers) {
      const std::uint32_t member = ev[gd].node;
      std::uint32_t carrier_inst = kNone;
      std::uint32_t carrier = kNone;
      const std::uint32_t origins[2] = {sequencer, sender};
      for (int oi = 0; oi < 2; ++oi) {
        const std::uint32_t origin = origins[oi];
        if (origin == kNoNode) continue;
        if (oi == 1 && origin == sequencer) break;  // scanned already
        const auto it = insts_of_node.find(origin);
        if (it == insts_of_node.end()) continue;
        for (std::uint32_t ii : it->second) {
          const Inst& in = insts[ii];
          if (in.flip_send == kNone || ev[in.flip_send].t < o.start) continue;
          if (in.claimed_by != kNoOp && in.claimed_by != op) continue;
          const std::uint32_t d = deliver_at(ii, member, ev[gd].t);
          if (d != kNone && (carrier == kNone || ev[d].t > ev[carrier].t ||
                             (ev[d].t == ev[carrier].t && d > carrier))) {
            carrier = d;
            carrier_inst = ii;
          }
        }
      }
      std::uint32_t prev = carrier;
      if (carrier_inst != kNone) {
        claim_inst(op, carrier_inst);
        const Inst& in = insts[carrier_inst];
        if (in.node == sequencer && s.assign != kNone) {
          add_pred(in.flip_send, s.assign);
        } else {
          add_pred(in.flip_send,
                   resend_root(op, in.node, ev[in.flip_send].t, s.send));
        }
      }
      if (prev == kNone) prev = s.assign != kNone ? s.assign : s.send;
      for (std::uint32_t u : s.upcalls) {
        if (ev[u].node == member && u < gd && u > prev) {
          add_pred(u, prev);
          prev = u;
        }
      }
      add_pred(gd, prev);
    }
    for (std::uint32_t r : s.retransmits) {
      add_pred(r, local_root(op, ev[r].node, r, s.send));
    }
  }

  void finish_op(std::uint32_t op) {
    Operation& o = g.ops[op];
    std::sort(o.events.begin(), o.events.end());
    o.events.erase(std::unique(o.events.begin(), o.events.end()),
                   o.events.end());

    // Terminal event: kRpcDone, or the last kGroupDeliver (the makespan
    // across members), falling back to the op's latest event.
    std::uint32_t terminal = scratch[op].done;
    if (o.kind == Operation::Kind::kGroup) {
      terminal = kNone;
      for (std::uint32_t gd : scratch[op].delivers) {
        if (terminal == kNone || ev[gd].t > ev[terminal].t ||
            (ev[gd].t == ev[terminal].t && gd > terminal)) {
          terminal = gd;
        }
      }
    }
    if (terminal == kNone && !o.events.empty()) terminal = o.events.back();
    if (terminal == kNone) return;
    o.end = ev[terminal].t;

    // Backward max-time walk. add_pred guarantees pred < cur, so the walk
    // strictly decreases and must terminate.
    std::vector<std::uint32_t> path;
    std::uint32_t cur = terminal;
    path.push_back(cur);
    while (!g.preds[cur].empty()) {
      std::uint32_t best = kNone;
      for (std::uint32_t p : g.preds[cur]) {
        if (best == kNone || ev[p].t > ev[best].t ||
            (ev[p].t == ev[best].t && p > best)) {
          best = p;
        }
      }
      cur = best;
      path.push_back(cur);
    }
    std::reverse(path.begin(), path.end());
    o.critical_path = std::move(path);
  }

  CausalGraph build() {
    const auto n = static_cast<std::uint32_t>(ev.size());
    for (std::uint32_t i = 0; i < n; ++i) index_network(i);
    for (std::uint32_t i = 0; i < n; ++i) index_protocol(i);
    for (std::uint32_t op = 0; op < g.ops.size(); ++op) {
      if (g.ops[op].kind == Operation::Kind::kRpc) {
        link_rpc(op);
      } else {
        link_group(op);
      }
    }
    for (std::uint32_t op = 0; op < g.ops.size(); ++op) finish_op(op);
    return std::move(g);
  }
};

}  // namespace

CausalGraph build_causal_graph(const std::vector<Event>& events) {
  return Builder(events).build();
}

}  // namespace trace
