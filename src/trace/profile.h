// Critical-path latency attribution: the paper's §4.2/§4.3 accounting,
// reproduced automatically from a trace.
//
// Given a raw event stream, the profiler rebuilds the causal graph
// (causal.h), then joins every kCharge event against the per-node time
// windows spanned by critical-path edges. Each charge lands in exactly one
// bucket — (mechanism, on-path) if its window overlaps a critical-path
// segment on its node, (mechanism, off-path) otherwise — so the attribution
// is *conservative* by construction:
//
//     for every mechanism m:
//       on_path(m) + off_path(m) == Ledger total(m)      (time and count)
//
// That is a hard invariant (`conservation_ok`), gated in CI against
// bench_table1 traces of both bindings. Critical-path time not covered by
// any charge is classified into explicit residual categories instead of
// disappearing: wire occupancy (kWireTx -> kInterrupt), medium-arbitration
// wait (kFragment -> kWireTx), CPU queueing (uncharged time inside an
// on-node segment), and sequencer queueing (the same, when the segment ends
// in kSeqnoAssign).
//
// Output formats: a §4.2-style breakdown table (print_profile /
// print_profile_vs), a folded-stack flamegraph file (folded_stacks, one
// `stack;frames count` line per bucket, flamegraph.pl-compatible), and the
// versioned `amoeba-profile/v1` JSON (profile_json) understood by
// report_compare. All outputs are byte-deterministic functions of the trace.
#pragma once

#include <array>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/ledger.h"
#include "trace/causal.h"
#include "trace/tracer.h"

namespace trace {

/// Where one mechanism's charged time went, relative to critical paths.
struct MechanismSlice {
  std::uint64_t count = 0;     // total charges (on + off path)
  std::uint64_t on_count = 0;  // charges that landed on a critical path
  sim::Time on_path = 0;
  sim::Time off_path = 0;

  [[nodiscard]] sim::Time total() const noexcept { return on_path + off_path; }
};

/// Exact order statistics over completed-operation latencies (nearest-rank).
struct LatencyStats {
  std::uint64_t count = 0;
  sim::Time total = 0;
  sim::Time min = 0;
  sim::Time max = 0;
  sim::Time p50 = 0;
  sim::Time p99 = 0;
};

/// Critical-path time charged to no mechanism, by residual category.
struct Residuals {
  sim::Time wire_occupancy = 0;   // kWireTx -> kInterrupt edges
  sim::Time medium_wait = 0;      // kFragment -> kWireTx edges (CSMA backoff,
                                  // queueing behind a busy segment)
  sim::Time cpu_queue = 0;        // uncharged time inside on-node segments
  sim::Time sequencer_queue = 0;  // the same, for segments ending in
                                  // kSeqnoAssign (waiting to be ordered)
  sim::Time unattributed = 0;     // cross-node edges the model cannot name
};

struct Profile {
  std::size_t events = 0;
  std::size_t ops_total = 0;
  std::size_t ops_complete = 0;
  LatencyStats rpc;
  LatencyStats group;
  std::array<MechanismSlice, static_cast<std::size_t>(sim::Mechanism::kCount)>
      mechanisms{};
  Residuals residuals;
  /// The Ledger recomputed from the trace's kCharge events; conservation is
  /// checked against this (and the TraceChecker separately proves it equals
  /// the aggregate in-sim Ledger).
  sim::Ledger ledger;
  /// Folded flamegraph stacks: "kind;role;frame" -> nanoseconds.
  std::map<std::string, sim::Time> folded;

  [[nodiscard]] sim::Time on_path_total() const noexcept;
  [[nodiscard]] sim::Time off_path_total() const noexcept;
};

/// Profile a trace (rebuilds the causal graph internally).
[[nodiscard]] Profile profile_trace(const std::vector<Event>& events);

/// Profile a trace against an already-built graph for the same events.
[[nodiscard]] Profile profile_trace(const std::vector<Event>& events,
                                    const CausalGraph& graph);

/// The conservation invariant: per-mechanism on+off time and counts equal
/// the trace Ledger exactly. On failure describes the first divergence.
[[nodiscard]] bool conservation_ok(const Profile& p, std::string* why = nullptr);

/// amoeba-profile/v1 JSON. `source` labels where the trace came from.
[[nodiscard]] std::string profile_json(const Profile& p,
                                       std::string_view source);

/// Folded stacks, lexicographically sorted, one "stack value" line each.
[[nodiscard]] std::string folded_stacks(const Profile& p);

/// §4.2-style table: per-mechanism on/off-path time plus residuals.
void print_profile(const Profile& p, std::FILE* out);

/// Side-by-side per-operation breakdown of two profiles (e.g. user-space vs
/// kernel-space), sorted by on-path delta: the paper's kernel-vs-user gap
/// table, reproduced from traces alone.
void print_profile_vs(const Profile& a, const char* name_a, const Profile& b,
                      const char* name_b, std::FILE* out);

/// The paper's headline check, on §4.2's category decomposition: comparing
/// `user` against `kernel` 8-byte RPC profiles, the switching category
/// (context/thread switches, signals, and the register-window traps and
/// address-space crossings they force) must be the largest per-operation
/// on-path regression, and the user-level fragmentation layer must rank in
/// the top three categories. Used by `amoeba_prof --check-gap` and the CI
/// gate.
[[nodiscard]] bool check_headline_gap(const Profile& user,
                                      const Profile& kernel, std::string* why);

}  // namespace trace
