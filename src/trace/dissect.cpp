#include "trace/dissect.h"

#include "trace/tracer.h"

namespace trace {
namespace {

std::uint32_t be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

std::uint64_t be64(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint64_t>(be32(p)) << 32) | be32(p + 4);
}

std::uint16_t be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

// FLIP fragment header layout (flip.cpp): type u8 @0, flags u8 @1, pad @2,
// dst u64 @4, src u64 @12, msg_id u32 @20, offset u32 @24, total_len u32 @28.
constexpr std::size_t kFlipHeader = 32;

// Inner protocol message-type bytes that are pure acknowledgement/status
// traffic (rpc.cpp + pan_rpc.cpp use the same numbering, as do group.cpp and
// pan_group.cpp).
bool rpc_control(std::uint8_t type) noexcept {
  return type == 3 /* kAck */ || type == 4 /* kServerBusy */;
}
bool group_control(std::uint8_t type) noexcept {
  return type == 7 /* kStatusReq */ || type == 8 /* kStatus */;
}

}  // namespace

std::uint64_t dissect_frame_class(const std::uint8_t* data,
                                  std::size_t size) noexcept {
  if (data == nullptr || size == 0) return kClassMeta;
  // Kernel-bypass frames (verbs.cpp): magic 0xBD @0, opcode @1. Only the
  // explicit cumulative ack is pure control; everything else carries a verb.
  if (data[0] == 0xBD) {
    if (size < 2) return kClassMeta;
    return data[1] == 2 /* Opcode::kAck */ ? kClassControl : kClassData;
  }
  if (size < kFlipHeader) return kClassMeta;
  if (data[0] != 1 /* FrameType::kData */) return kClassMeta;
  // A non-first fragment carries no protocol header; it always belongs to a
  // multi-fragment body, which is never pure control traffic.
  if (be32(data + 24) != 0) return kClassData;

  const std::uint64_t dst = be64(data + 4);
  const std::uint16_t family =
      static_cast<std::uint16_t>(dst >> 48) & 0x7FFF;  // clear the group bit
  const std::uint8_t* inner = data + kFlipHeader;
  const std::size_t inner_size = size - kFlipHeader;
  if (inner_size == 0) return kClassData;

  switch (family) {
    case 0x00A0:  // kernel RPC service address
    case 0x00A1:  // kernel RPC client reply address
      return rpc_control(inner[0]) ? kClassControl : kClassData;
    case 0x00B0:  // kernel group multicast
    case 0x00B1:  // kernel group sequencer
    case 0x00B2:  // kernel group member
      return group_control(inner[0]) ? kClassControl : kClassData;
    case 0x00C0: {  // Panda user-space stack (pan_sys header first)
      // pan_sys header: module u8 @0, pad @1, frag_idx u16 @2, frag_count
      // u16 @4, pad @6, node u32 @8, msg_id u32 @12 — 16 bytes.
      if (inner_size < 17) return kClassData;
      if (be16(inner + 2) != 0) return kClassData;  // non-first user fragment
      const std::uint8_t module = inner[0];
      const std::uint8_t type = inner[16];
      if (module == 1 /* kRpc */) {
        return rpc_control(type) ? kClassControl : kClassData;
      }
      return group_control(type) ? kClassControl : kClassData;
    }
    default:
      return kClassData;
  }
}

}  // namespace trace
