// Trace-driven protocol invariant checking.
//
// The TraceChecker replays a finished event trace and proves the properties
// the paper's protocols claim over unreliable FLIP:
//
//   * exactly-once RPC: no transaction id executes twice at the server, and
//     every successful call executed exactly once — retransmissions and
//     duplicated frames notwithstanding;
//   * gapless total order: every group member delivers consecutive seqnos
//     within its membership window(s) with no gap or reorder, all members
//     agree on (sender, size) per seqno, and deliveries match what the
//     sequencer actually assigned. Membership windows come from the
//     kMemberJoin/kMemberLeave events the replicated sequencer emits (a node
//     with no membership events is open from seqno 1, the classic protocol).
//     In a trace with view changes (kGroupView) a new leader may legally
//     re-assign a seqno — but never with a different value once any member
//     has delivered it (the Paxos safety clause);
//   * no loss across failover: every seqno delivered by any surviving member
//     is delivered by every member whose window covers it, crashed nodes
//     (kCrash) exempted;
//   * frame lineage: every NIC interrupt stems from a traced wire
//     transmission, every wire-path FLIP delivery is backed by a received
//     interrupt for each of its fragments (so no delivery was derived from a
//     dropped frame), and a lost data frame implies recovery activity
//     somewhere in the trace;
//   * ledger consistency: per-mechanism Ledger totals equal the sum of the
//     traced charge events — the aggregate accounting and the event stream
//     tell the same story;
//   * bypass verb lifecycle: every work request is posted at most once and
//     only at the node its key names, remote service and completion always
//     follow a post, the same (wr, node) never completes twice — duplicated
//     or replayed frames notwithstanding — and one-sided completions at an
//     initiator occur in post order per peer (the RC QP promise).
//
// Each check returns human-readable violation strings; an empty vector means
// the invariant holds.
#pragma once

#include <string>
#include <vector>

#include "sim/ledger.h"
#include "trace/tracer.h"

namespace trace {

class TraceChecker {
 public:
  explicit TraceChecker(const std::vector<Event>& events) : events_(&events) {}

  [[nodiscard]] std::vector<std::string> check_exactly_once_rpc() const;
  [[nodiscard]] std::vector<std::string> check_total_order() const;
  [[nodiscard]] std::vector<std::string> check_no_loss() const;
  [[nodiscard]] std::vector<std::string> check_frame_lineage() const;
  [[nodiscard]] std::vector<std::string> check_loss_recovery() const;
  [[nodiscard]] std::vector<std::string> check_bypass_verbs() const;

  /// `aggregate` is the sum of every node's ledger (World::aggregate_ledger).
  [[nodiscard]] std::vector<std::string> check_ledger(
      const sim::Ledger& aggregate) const;

  /// Runs every check (the ledger check only when `aggregate` is non-null).
  [[nodiscard]] std::vector<std::string> check_all(
      const sim::Ledger* aggregate = nullptr) const;

 private:
  const std::vector<Event>* events_;
};

}  // namespace trace
