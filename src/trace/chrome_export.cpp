#include "trace/chrome_export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "sim/ledger.h"
#include "trace/causal.h"

namespace trace {
namespace {

// Lane (Chrome "thread") a kind renders on within its node.
int lane_of(EventKind k) noexcept {
  switch (k) {
    case EventKind::kRpcSend:
    case EventKind::kRpcExec:
    case EventKind::kRpcReply:
    case EventKind::kRpcDone:
    case EventKind::kAck:
      return 0;
    case EventKind::kGroupSend:
    case EventKind::kSeqnoAssign:
    case EventKind::kGroupDeliver:
    case EventKind::kGroupView:
    case EventKind::kMemberJoin:
    case EventKind::kMemberLeave:
    case EventKind::kCrash:
      return 1;
    case EventKind::kFlipSend:
    case EventKind::kFragment:
    case EventKind::kFlipDeliver:
      return 2;
    case EventKind::kWireTx:
    case EventKind::kFrameDrop:
    case EventKind::kInterrupt:
      return 3;
    case EventKind::kRetransmit:
    case EventKind::kUpcall:
      return 4;
    default:
      return 5;  // kCharge
  }
}

const char* lane_name(int lane) noexcept {
  switch (lane) {
    case 0: return "rpc";
    case 1: return "group";
    case 2: return "flip";
    case 3: return "wire";
    case 4: return "recovery";
    default: return "charge";
  }
}

// Chrome pids must be plain integers; the wire pseudo-node gets its own.
constexpr std::uint32_t kWirePid = 0xFFFF;

std::uint32_t pid_of(const Event& e) noexcept {
  return e.node == kNoNode ? kWirePid : e.node;
}

void write_meta(std::ostream& os, std::uint32_t pid, int tid, const char* what,
                const std::string& name, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << what << R"(","ph":"M","pid":)" << pid << R"(,"tid":)"
     << tid << R"(,"args":{"name":")" << name << R"("}})";
}

}  // namespace

void write_chrome_trace(const std::vector<Event>& events, std::ostream& os) {
  os << "{\"traceEvents\":[\n";
  bool first = true;

  std::set<std::uint32_t> pids;
  std::set<std::pair<std::uint32_t, int>> lanes;
  for (const Event& e : events) {
    pids.insert(pid_of(e));
    lanes.insert({pid_of(e), lane_of(e.kind)});
  }
  for (const std::uint32_t pid : pids) {
    write_meta(os, pid, 0, "process_name",
               pid == kWirePid ? std::string("wire")
                               : "node " + std::to_string(pid),
               first);
  }
  for (const auto& [pid, lane] : lanes) {
    write_meta(os, pid, lane, "thread_name", lane_name(lane), first);
  }

  char buf[256];
  for (const Event& e : events) {
    if (!first) os << ",\n";
    first = false;
    const double ts_us = static_cast<double>(e.t) / 1000.0;
    if (e.kind == EventKind::kCharge) {
      const auto m = static_cast<sim::Mechanism>(e.a);
      const std::string_view mname =
          e.a < static_cast<std::uint64_t>(sim::Mechanism::kCount)
              ? sim::mechanism_name(m)
              : std::string_view("?");
      std::snprintf(buf, sizeof buf,
                    R"({"name":"charge:%.*s","ph":"X","ts":%.3f,"dur":%.3f,)"
                    R"("pid":%u,"tid":%d,"args":{"count":%)" PRIu64 "}}",
                    static_cast<int>(mname.size()), mname.data(), ts_us,
                    static_cast<double>(e.b) / 1000.0, pid_of(e),
                    lane_of(e.kind), e.c);
    } else {
      std::snprintf(buf, sizeof buf,
                    R"({"name":"%.*s","ph":"i","ts":%.3f,"pid":%u,"tid":%d,)"
                    R"("s":"t","args":{"a":%)" PRIu64 R"(,"b":%)" PRIu64
                    R"(,"c":%)" PRIu64 R"(,"d":%)" PRIu64 "}}",
                    static_cast<int>(kind_name(e.kind).size()),
                    kind_name(e.kind).data(), ts_us, pid_of(e),
                    lane_of(e.kind), e.a, e.b, e.c, e.d);
    }
    os << buf;
  }

  // Flow events along the causal protocol chains, so Perfetto draws
  // send -> sequence -> deliver arrows: "s" opens the flow at the initiating
  // event, "t" threads each intermediate hop, "f" closes it at the terminal.
  const CausalGraph graph = build_causal_graph(events);
  for (std::size_t oi = 0; oi < graph.ops.size(); ++oi) {
    const Operation& op = graph.ops[oi];
    std::vector<std::uint32_t> chain;
    for (std::uint32_t idx : op.events) {
      switch (events[idx].kind) {
        case EventKind::kRpcSend:
        case EventKind::kRpcExec:
        case EventKind::kRpcReply:
        case EventKind::kRpcDone:
        case EventKind::kGroupSend:
        case EventKind::kSeqnoAssign:
        case EventKind::kGroupDeliver:
          chain.push_back(idx);
          break;
        default:
          break;
      }
    }
    if (chain.size() < 2) continue;
    const char* flow =
        op.kind == Operation::Kind::kRpc ? "rpc-flow" : "group-flow";
    for (std::size_t k = 0; k < chain.size(); ++k) {
      const Event& e = events[chain[k]];
      const char* ph = k == 0 ? "s" : k + 1 == chain.size() ? "f" : "t";
      const char* bp = k + 1 == chain.size() ? R"(,"bp":"e")" : "";
      std::snprintf(buf, sizeof buf,
                    R"({"name":"%s","cat":"causal","ph":"%s","id":%zu,)"
                    R"("ts":%.3f,"pid":%u,"tid":%d%s})",
                    flow, ph, oi, static_cast<double>(e.t) / 1000.0, pid_of(e),
                    lane_of(e.kind), bp);
      os << ",\n" << buf;
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string chrome_trace_json(const std::vector<Event>& events) {
  std::ostringstream os;
  write_chrome_trace(events, os);
  return os.str();
}

bool write_chrome_trace_file(const std::vector<Event>& events,
                             const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(events, f);
  return f.good();
}

}  // namespace trace
