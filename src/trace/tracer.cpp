#include "trace/tracer.h"

#include <algorithm>

#include "trace/dissect.h"

namespace trace {

std::string_view kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kRpcSend: return "rpc_send";
    case EventKind::kRpcExec: return "rpc_exec";
    case EventKind::kRpcReply: return "rpc_reply";
    case EventKind::kRpcDone: return "rpc_done";
    case EventKind::kAck: return "ack";
    case EventKind::kGroupSend: return "group_send";
    case EventKind::kSeqnoAssign: return "seqno_assign";
    case EventKind::kGroupDeliver: return "deliver";
    case EventKind::kFlipSend: return "flip_send";
    case EventKind::kFragment: return "fragment";
    case EventKind::kFlipDeliver: return "flip_deliver";
    case EventKind::kWireTx: return "wire_tx";
    case EventKind::kFrameDrop: return "frame_drop";
    case EventKind::kInterrupt: return "interrupt";
    case EventKind::kRetransmit: return "retransmit";
    case EventKind::kUpcall: return "upcall";
    case EventKind::kCharge: return "charge";
    case EventKind::kGroupView: return "group_view";
    case EventKind::kMemberJoin: return "member_join";
    case EventKind::kMemberLeave: return "member_leave";
    case EventKind::kCrash: return "crash";
    case EventKind::kBypassPost: return "bypass_post";
    case EventKind::kBypassRemote: return "bypass_remote";
    case EventKind::kBypassComplete: return "bypass_complete";
    case EventKind::kKindCount: break;
  }
  return "?";
}

Tracer::Tracer(sim::Simulator& s)
    : sim_(&s), classify_(&dissect_frame_class) {
  sim_->set_tracer(this);
}

Tracer::~Tracer() {
  if (sim_->tracer() == this) sim_->set_tracer(nullptr);
}

std::size_t Tracer::count(EventKind k) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [k](const Event& e) { return e.kind == k; }));
}

}  // namespace trace
