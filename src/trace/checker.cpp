#include "trace/checker.h"

#include <cstdio>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace trace {
namespace {

std::string fmt(const char* format, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, format, args...);
  return std::string(buf);
}

}  // namespace

std::vector<std::string> TraceChecker::check_exactly_once_rpc() const {
  std::vector<std::string> out;
  // Per transaction key (client_node<<32 | trans_id).
  std::unordered_map<std::uint64_t, int> sends, execs, replies;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> dones;  // key, status
  for (const Event& e : *events_) {
    switch (e.kind) {
      case EventKind::kRpcSend: ++sends[e.a]; break;
      case EventKind::kRpcExec: ++execs[e.a]; break;
      case EventKind::kRpcReply: ++replies[e.a]; break;
      case EventKind::kRpcDone: dones.emplace_back(e.a, e.b); break;
      default: break;
    }
  }
  for (const auto& [key, n] : execs) {
    if (n > 1) {
      out.push_back(fmt("rpc %llx executed %d times (exactly-once violated)",
                        static_cast<unsigned long long>(key), n));
    }
    if (!sends.contains(key)) {
      out.push_back(fmt("rpc %llx executed but never sent",
                        static_cast<unsigned long long>(key)));
    }
  }
  for (const auto& [key, n] : sends) {
    if (n != 1) {
      out.push_back(fmt("rpc %llx sent %d times (trans ids must be unique)",
                        static_cast<unsigned long long>(key), n));
    }
  }
  for (const auto& [key, status] : dones) {
    if (status != 0) continue;  // timed-out calls may legally never execute
    if (execs[key] != 1) {
      out.push_back(fmt("rpc %llx completed ok but executed %d times",
                        static_cast<unsigned long long>(key), execs[key]));
    }
    if (replies[key] < 1) {
      out.push_back(fmt("rpc %llx completed ok without a traced reply",
                        static_cast<unsigned long long>(key)));
    }
  }
  return out;
}

std::vector<std::string> TraceChecker::check_total_order() const {
  std::vector<std::string> out;
  // Groups where leadership moved: a new leader legally re-assigns slots it
  // recovered from promises, so the classic one-shot assignment rules relax.
  std::set<std::uint64_t> has_view_change;
  for (const Event& e : *events_) {
    if (e.kind == EventKind::kGroupView) has_view_change.insert(e.d);
  }

  // group -> seqno -> every sender it was ever assigned to.
  std::map<std::uint64_t, std::map<std::uint64_t, std::set<std::uint64_t>>>
      assigned;
  std::map<std::uint64_t, std::uint64_t> last_assigned;
  // (group, node) -> next expected seqno - 1; join events reposition it.
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint64_t> expect;
  // (group, node) -> closed window end (node left at that slot).
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint64_t> left_at;
  // group -> seqno -> (sender, bytes) as first delivered anywhere.
  std::map<std::uint64_t, std::map<std::uint64_t,
                                   std::pair<std::uint64_t, std::uint64_t>>>
      content;

  for (const Event& e : *events_) {
    if (e.kind == EventKind::kMemberJoin) {
      // Window opens at e.a: the next delivery must be exactly e.a.
      expect[{e.d, e.node}] = e.a == 0 ? 0 : e.a - 1;
      left_at.erase({e.d, e.node});
    } else if (e.kind == EventKind::kMemberLeave) {
      // Window closes after slot e.a (the leave is itself delivered).
      left_at[{e.d, e.node}] = e.a;
    } else if (e.kind == EventKind::kSeqnoAssign) {
      const std::uint64_t g = e.d;
      auto& senders = assigned[g][e.a];
      if (!has_view_change.contains(g)) {
        // Single stable sequencer: strictly consecutive, never repeated.
        if (e.a != last_assigned[g] + 1) {
          out.push_back(fmt("group %llu: sequencer assigned %llu after %llu",
                            static_cast<unsigned long long>(g),
                            static_cast<unsigned long long>(e.a),
                            static_cast<unsigned long long>(last_assigned[g])));
        }
        if (!senders.empty()) {
          out.push_back(fmt("group %llu: seqno %llu assigned twice",
                            static_cast<unsigned long long>(g),
                            static_cast<unsigned long long>(e.a)));
        }
      } else {
        // Re-assignment is legal across views — but a slot some member has
        // already delivered is chosen, and choosing a different value for it
        // would violate Paxos safety.
        const auto cit = content[g].find(e.a);
        if (cit != content[g].end() && cit->second.first != e.b) {
          out.push_back(
              fmt("group %llu: delivered seqno %llu re-assigned from sender "
                  "%llu to %llu (chosen value changed)",
                  static_cast<unsigned long long>(g),
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(cit->second.first),
                  static_cast<unsigned long long>(e.b)));
        }
      }
      last_assigned[g] = e.a;
      senders.insert(e.b);
    } else if (e.kind == EventKind::kGroupDeliver) {
      const std::uint64_t g = e.d;
      if (const auto lit = left_at.find({g, e.node});
          lit != left_at.end() && e.a > lit->second) {
        out.push_back(
            fmt("group %llu node %u: delivered seqno %llu after leaving at "
                "%llu",
                static_cast<unsigned long long>(g), e.node,
                static_cast<unsigned long long>(e.a),
                static_cast<unsigned long long>(lit->second)));
      }
      auto& next = expect[{g, e.node}];
      if (e.a != next + 1) {
        out.push_back(
            fmt("group %llu node %u: delivered seqno %llu after %llu "
                "(gap/reorder)",
                static_cast<unsigned long long>(g), e.node,
                static_cast<unsigned long long>(e.a),
                static_cast<unsigned long long>(next)));
      }
      next = e.a;
      const auto it = assigned[g].find(e.a);
      if (it == assigned[g].end()) {
        out.push_back(fmt("group %llu node %u: delivered unassigned seqno %llu",
                          static_cast<unsigned long long>(g), e.node,
                          static_cast<unsigned long long>(e.a)));
      } else if (!it->second.contains(e.b)) {
        out.push_back(
            fmt("group %llu node %u: seqno %llu delivered from sender %llu "
                "but never assigned to it",
                static_cast<unsigned long long>(g), e.node,
                static_cast<unsigned long long>(e.a),
                static_cast<unsigned long long>(e.b)));
      }
      auto [cit, fresh] = content[g].emplace(e.a, std::make_pair(e.b, e.c));
      if (!fresh && cit->second != std::make_pair(e.b, e.c)) {
        out.push_back(
            fmt("group %llu: members disagree on seqno %llu content",
                static_cast<unsigned long long>(g),
                static_cast<unsigned long long>(e.a)));
      }
    }
  }
  return out;
}

std::vector<std::string> TraceChecker::check_no_loss() const {
  std::vector<std::string> out;
  struct Member {
    std::uint64_t window_from = 1;    // current window start
    std::uint64_t delivered = 0;      // max delivered in the current window
    bool crashed = false;
    bool left = false;
    std::uint64_t left_slot = 0;
  };
  std::map<std::uint64_t, std::map<std::uint32_t, Member>> groups;

  for (const Event& e : *events_) {
    switch (e.kind) {
      case EventKind::kMemberJoin: {
        Member& m = groups[e.d][e.node];
        m.window_from = e.a == 0 ? 1 : e.a;
        m.delivered = m.window_from - 1;
        m.left = false;
        break;
      }
      case EventKind::kMemberLeave: {
        Member& m = groups[e.d][e.node];
        m.left = true;
        m.left_slot = e.a;
        break;
      }
      case EventKind::kCrash:
        groups[e.d][e.node].crashed = true;
        break;
      case EventKind::kGroupDeliver: {
        Member& m = groups[e.d][e.node];
        m.delivered = std::max(m.delivered, e.a);
        break;
      }
      default:
        break;
    }
  }

  for (const auto& [g, members] : groups) {
    // The horizon every surviving member must reach: the highest seqno any
    // non-crashed member delivered.
    std::uint64_t horizon = 0;
    for (const auto& [node, m] : members) {
      if (!m.crashed) horizon = std::max(horizon, m.delivered);
    }
    for (const auto& [node, m] : members) {
      if (m.crashed) continue;  // a crashed node's stream may stop anywhere
      const std::uint64_t need = m.left ? m.left_slot : horizon;
      if (m.delivered < need && need >= m.window_from) {
        out.push_back(
            fmt("group %llu node %u: delivered up to %llu but the group "
                "reached %llu (loss across failover)",
                static_cast<unsigned long long>(g), node,
                static_cast<unsigned long long>(m.delivered),
                static_cast<unsigned long long>(need)));
      }
    }
  }
  return out;
}

std::vector<std::string> TraceChecker::check_frame_lineage() const {
  std::vector<std::string> out;
  std::unordered_set<std::uint64_t> wire_tx;
  std::set<std::pair<std::uint32_t, std::uint64_t>> interrupts;  // node, frame
  // (src flip addr, msg_id) -> frame ids of the message's fragments.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::vector<std::uint64_t>>
      fragments;

  for (const Event& e : *events_) {
    switch (e.kind) {
      case EventKind::kWireTx:
        wire_tx.insert(e.a);
        break;
      case EventKind::kInterrupt:
        if (!wire_tx.contains(e.a)) {
          out.push_back(fmt("node %u: interrupt for frame %llx never on wire",
                            e.node, static_cast<unsigned long long>(e.a)));
        }
        interrupts.insert({e.node, e.a});
        break;
      case EventKind::kFragment:
        // Kernel-level (FLIP) fragments carry the frame id; user-level
        // (pan_sys) fragments trace with a=0 and are covered by the FLIP
        // fragments of the frames that carry them.
        if (e.a != 0) fragments[{e.c, e.b}].push_back(e.a);
        break;
      case EventKind::kFlipDeliver: {
        if (e.d == 1 || e.b == 0) break;  // local delivery never hit the wire
        const auto it = fragments.find({e.a, e.b});
        if (it == fragments.end()) {
          out.push_back(
              fmt("node %u: flip delivery (src %llx, msg %llu) with no traced "
                  "fragments",
                  e.node, static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b)));
          break;
        }
        for (const std::uint64_t frame : it->second) {
          if (!interrupts.contains({e.node, frame})) {
            out.push_back(
                fmt("node %u: flip delivery (src %llx, msg %llu) without an "
                    "interrupt for fragment frame %llx — derived from a "
                    "dropped frame?",
                    e.node, static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b),
                    static_cast<unsigned long long>(frame)));
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

std::vector<std::string> TraceChecker::check_loss_recovery() const {
  std::vector<std::string> out;
  std::size_t data_drops = 0, retransmits = 0;
  bool replicated = false;
  for (const Event& e : *events_) {
    if (e.kind == EventKind::kFrameDrop && (e.d >> 1) == kClassData) {
      ++data_drops;
    }
    if (e.kind == EventKind::kRetransmit) ++retransmits;
    if (e.kind == EventKind::kGroupView) replicated = true;
  }
  if (replicated) {
    // Only the replicated sequencer emits kGroupView. There, loss repair is
    // leader-driven — re-sent accepts and learn requests at tick cadence —
    // and never surfaces as a binding-level retransmit, so "drops imply
    // retransmits" does not hold. Recovery is instead proven by the no-gap
    // delivery invariants above.
    return out;
  }
  if (data_drops > 0 && retransmits == 0) {
    out.push_back(fmt(
        "%zu data frames dropped but no retransmission activity in the trace",
        data_drops));
  }
  return out;
}

std::vector<std::string> TraceChecker::check_bypass_verbs() const {
  std::vector<std::string> out;
  std::unordered_map<std::uint64_t, int> posts;    // wr -> post count
  std::unordered_map<std::uint64_t, int> remotes;  // wr -> remote-service count
  std::set<std::pair<std::uint64_t, std::uint32_t>> completed;  // (wr, node)
  // (initiator, peer) -> last one-sided wr completed at the initiator.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> last_one_sided;
  std::unordered_map<std::uint64_t, std::uint64_t> post_peer;  // wr -> peer

  for (const Event& e : *events_) {
    switch (e.kind) {
      case EventKind::kBypassPost: {
        if (++posts[e.a] > 1) {
          out.push_back(fmt("bypass wr %llx posted %d times",
                            static_cast<unsigned long long>(e.a), posts[e.a]));
        }
        if (e.node != static_cast<std::uint32_t>(e.a >> 32)) {
          out.push_back(fmt("bypass wr %llx posted at node %u, not its owner",
                            static_cast<unsigned long long>(e.a), e.node));
        }
        post_peer[e.a] = e.b;
        break;
      }
      case EventKind::kBypassRemote: {
        if (!posts.contains(e.a)) {
          out.push_back(fmt("bypass wr %llx served remotely but never posted",
                            static_cast<unsigned long long>(e.a)));
        }
        if (++remotes[e.a] > 1) {
          out.push_back(
              fmt("bypass wr %llx served remotely %d times (duplicate one-"
                  "sided execution)",
                  static_cast<unsigned long long>(e.a), remotes[e.a]));
        }
        if (e.node == static_cast<std::uint32_t>(e.a >> 32)) {
          out.push_back(
              fmt("bypass wr %llx served remotely at its own initiator node %u",
                  static_cast<unsigned long long>(e.a), e.node));
        }
        break;
      }
      case EventKind::kBypassComplete: {
        if (!posts.contains(e.a)) {
          out.push_back(fmt("bypass wr %llx completed but never posted",
                            static_cast<unsigned long long>(e.a)));
        }
        if (!completed.insert({e.a, e.node}).second) {
          out.push_back(fmt("bypass wr %llx completed twice at node %u",
                            static_cast<unsigned long long>(e.a), e.node));
        }
        // One-sided verbs (READ / WRITE / ATOMIC) complete at the initiator
        // in post order per peer: the RC QP is FIFO and acks are cumulative.
        const bool one_sided = e.d == 3 || e.d == 5 || e.d == 6;
        if (one_sided && e.node == static_cast<std::uint32_t>(e.a >> 32)) {
          const auto key = std::make_pair(e.node, post_peer[e.a]);
          auto& last = last_one_sided[key];
          if (e.a <= last) {
            out.push_back(
                fmt("bypass wr %llx completed after wr %llx (one-sided "
                    "completion order violated)",
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(last)));
          }
          last = e.a;
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

std::vector<std::string> TraceChecker::check_ledger(
    const sim::Ledger& aggregate) const {
  std::vector<std::string> out;
  sim::Ledger traced;
  for (const Event& e : *events_) {
    if (e.kind != EventKind::kCharge) continue;
    if (e.a >= static_cast<std::uint64_t>(sim::Mechanism::kCount)) {
      out.push_back(fmt("charge event with bad mechanism index %llu",
                        static_cast<unsigned long long>(e.a)));
      continue;
    }
    traced.add(static_cast<sim::Mechanism>(e.a),
               static_cast<sim::Time>(e.b), e.c);
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(sim::Mechanism::kCount);
       ++i) {
    const auto m = static_cast<sim::Mechanism>(i);
    const auto& want = aggregate.get(m);
    const auto& got = traced.get(m);
    if (want.count != got.count || want.total != got.total) {
      out.push_back(
          fmt("ledger mismatch for %.*s: ledger (%llu ops, %lld ns) vs trace "
              "(%llu ops, %lld ns)",
              static_cast<int>(sim::mechanism_name(m).size()),
              sim::mechanism_name(m).data(),
              static_cast<unsigned long long>(want.count),
              static_cast<long long>(want.total),
              static_cast<unsigned long long>(got.count),
              static_cast<long long>(got.total)));
    }
  }
  return out;
}

std::vector<std::string> TraceChecker::check_all(
    const sim::Ledger* aggregate) const {
  std::vector<std::string> out = check_exactly_once_rpc();
  for (auto&& v : check_total_order()) out.push_back(std::move(v));
  for (auto&& v : check_no_loss()) out.push_back(std::move(v));
  for (auto&& v : check_frame_lineage()) out.push_back(std::move(v));
  for (auto&& v : check_loss_recovery()) out.push_back(std::move(v));
  for (auto&& v : check_bypass_verbs()) out.push_back(std::move(v));
  if (aggregate != nullptr) {
    for (auto&& v : check_ledger(*aggregate)) out.push_back(std::move(v));
  }
  return out;
}

}  // namespace trace
