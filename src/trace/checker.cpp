#include "trace/checker.h"

#include <cstdio>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace trace {
namespace {

std::string fmt(const char* format, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, format, args...);
  return std::string(buf);
}

}  // namespace

std::vector<std::string> TraceChecker::check_exactly_once_rpc() const {
  std::vector<std::string> out;
  // Per transaction key (client_node<<32 | trans_id).
  std::unordered_map<std::uint64_t, int> sends, execs, replies;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> dones;  // key, status
  for (const Event& e : *events_) {
    switch (e.kind) {
      case EventKind::kRpcSend: ++sends[e.a]; break;
      case EventKind::kRpcExec: ++execs[e.a]; break;
      case EventKind::kRpcReply: ++replies[e.a]; break;
      case EventKind::kRpcDone: dones.emplace_back(e.a, e.b); break;
      default: break;
    }
  }
  for (const auto& [key, n] : execs) {
    if (n > 1) {
      out.push_back(fmt("rpc %llx executed %d times (exactly-once violated)",
                        static_cast<unsigned long long>(key), n));
    }
    if (!sends.contains(key)) {
      out.push_back(fmt("rpc %llx executed but never sent",
                        static_cast<unsigned long long>(key)));
    }
  }
  for (const auto& [key, n] : sends) {
    if (n != 1) {
      out.push_back(fmt("rpc %llx sent %d times (trans ids must be unique)",
                        static_cast<unsigned long long>(key), n));
    }
  }
  for (const auto& [key, status] : dones) {
    if (status != 0) continue;  // timed-out calls may legally never execute
    if (execs[key] != 1) {
      out.push_back(fmt("rpc %llx completed ok but executed %d times",
                        static_cast<unsigned long long>(key), execs[key]));
    }
    if (replies[key] < 1) {
      out.push_back(fmt("rpc %llx completed ok without a traced reply",
                        static_cast<unsigned long long>(key)));
    }
  }
  return out;
}

std::vector<std::string> TraceChecker::check_total_order() const {
  std::vector<std::string> out;
  struct Assigned {
    std::uint64_t sender = 0;
    bool seen = false;
  };
  // group id -> seqno -> assignment; events appear in trace (= time) order.
  std::map<std::uint64_t, std::map<std::uint64_t, Assigned>> assigned;
  std::map<std::uint64_t, std::uint64_t> last_assigned;
  // (group, node) -> next expected seqno.
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint64_t> expect;
  // group -> seqno -> (sender, bytes) as first delivered anywhere.
  std::map<std::uint64_t, std::map<std::uint64_t,
                                   std::pair<std::uint64_t, std::uint64_t>>>
      content;

  for (const Event& e : *events_) {
    if (e.kind == EventKind::kSeqnoAssign) {
      const std::uint64_t g = e.d;
      if (e.a != last_assigned[g] + 1) {
        out.push_back(fmt("group %llu: sequencer assigned %llu after %llu",
                          static_cast<unsigned long long>(g),
                          static_cast<unsigned long long>(e.a),
                          static_cast<unsigned long long>(last_assigned[g])));
      }
      last_assigned[g] = e.a;
      auto& slot = assigned[g][e.a];
      if (slot.seen) {
        out.push_back(fmt("group %llu: seqno %llu assigned twice",
                          static_cast<unsigned long long>(g),
                          static_cast<unsigned long long>(e.a)));
      }
      slot = Assigned{e.b, true};
    } else if (e.kind == EventKind::kGroupDeliver) {
      const std::uint64_t g = e.d;
      auto& next = expect[{g, e.node}];
      if (e.a != next + 1) {
        out.push_back(
            fmt("group %llu node %u: delivered seqno %llu after %llu "
                "(gap/reorder)",
                static_cast<unsigned long long>(g), e.node,
                static_cast<unsigned long long>(e.a),
                static_cast<unsigned long long>(next)));
      }
      next = e.a;
      const auto it = assigned[g].find(e.a);
      if (it == assigned[g].end()) {
        out.push_back(fmt("group %llu node %u: delivered unassigned seqno %llu",
                          static_cast<unsigned long long>(g), e.node,
                          static_cast<unsigned long long>(e.a)));
      } else if (it->second.sender != e.b) {
        out.push_back(
            fmt("group %llu node %u: seqno %llu delivered from sender %llu "
                "but assigned to %llu",
                static_cast<unsigned long long>(g), e.node,
                static_cast<unsigned long long>(e.a),
                static_cast<unsigned long long>(e.b),
                static_cast<unsigned long long>(it->second.sender)));
      }
      auto [cit, fresh] = content[g].emplace(e.a, std::make_pair(e.b, e.c));
      if (!fresh && cit->second != std::make_pair(e.b, e.c)) {
        out.push_back(
            fmt("group %llu: members disagree on seqno %llu content",
                static_cast<unsigned long long>(g),
                static_cast<unsigned long long>(e.a)));
      }
    }
  }
  return out;
}

std::vector<std::string> TraceChecker::check_frame_lineage() const {
  std::vector<std::string> out;
  std::unordered_set<std::uint64_t> wire_tx;
  std::set<std::pair<std::uint32_t, std::uint64_t>> interrupts;  // node, frame
  // (src flip addr, msg_id) -> frame ids of the message's fragments.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::vector<std::uint64_t>>
      fragments;

  for (const Event& e : *events_) {
    switch (e.kind) {
      case EventKind::kWireTx:
        wire_tx.insert(e.a);
        break;
      case EventKind::kInterrupt:
        if (!wire_tx.contains(e.a)) {
          out.push_back(fmt("node %u: interrupt for frame %llx never on wire",
                            e.node, static_cast<unsigned long long>(e.a)));
        }
        interrupts.insert({e.node, e.a});
        break;
      case EventKind::kFragment:
        // Kernel-level (FLIP) fragments carry the frame id; user-level
        // (pan_sys) fragments trace with a=0 and are covered by the FLIP
        // fragments of the frames that carry them.
        if (e.a != 0) fragments[{e.c, e.b}].push_back(e.a);
        break;
      case EventKind::kFlipDeliver: {
        if (e.d == 1 || e.b == 0) break;  // local delivery never hit the wire
        const auto it = fragments.find({e.a, e.b});
        if (it == fragments.end()) {
          out.push_back(
              fmt("node %u: flip delivery (src %llx, msg %llu) with no traced "
                  "fragments",
                  e.node, static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b)));
          break;
        }
        for (const std::uint64_t frame : it->second) {
          if (!interrupts.contains({e.node, frame})) {
            out.push_back(
                fmt("node %u: flip delivery (src %llx, msg %llu) without an "
                    "interrupt for fragment frame %llx — derived from a "
                    "dropped frame?",
                    e.node, static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b),
                    static_cast<unsigned long long>(frame)));
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

std::vector<std::string> TraceChecker::check_loss_recovery() const {
  std::vector<std::string> out;
  std::size_t data_drops = 0, retransmits = 0;
  for (const Event& e : *events_) {
    if (e.kind == EventKind::kFrameDrop && (e.d >> 1) == kClassData) {
      ++data_drops;
    }
    if (e.kind == EventKind::kRetransmit) ++retransmits;
  }
  if (data_drops > 0 && retransmits == 0) {
    out.push_back(fmt(
        "%zu data frames dropped but no retransmission activity in the trace",
        data_drops));
  }
  return out;
}

std::vector<std::string> TraceChecker::check_ledger(
    const sim::Ledger& aggregate) const {
  std::vector<std::string> out;
  sim::Ledger traced;
  for (const Event& e : *events_) {
    if (e.kind != EventKind::kCharge) continue;
    if (e.a >= static_cast<std::uint64_t>(sim::Mechanism::kCount)) {
      out.push_back(fmt("charge event with bad mechanism index %llu",
                        static_cast<unsigned long long>(e.a)));
      continue;
    }
    traced.add(static_cast<sim::Mechanism>(e.a),
               static_cast<sim::Time>(e.b), e.c);
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(sim::Mechanism::kCount);
       ++i) {
    const auto m = static_cast<sim::Mechanism>(i);
    const auto& want = aggregate.get(m);
    const auto& got = traced.get(m);
    if (want.count != got.count || want.total != got.total) {
      out.push_back(
          fmt("ledger mismatch for %.*s: ledger (%llu ops, %lld ns) vs trace "
              "(%llu ops, %lld ns)",
              static_cast<int>(sim::mechanism_name(m).size()),
              sim::mechanism_name(m).data(),
              static_cast<unsigned long long>(want.count),
              static_cast<long long>(want.total),
              static_cast<unsigned long long>(got.count),
              static_cast<long long>(got.total)));
    }
  }
  return out;
}

std::vector<std::string> TraceChecker::check_all(
    const sim::Ledger* aggregate) const {
  std::vector<std::string> out = check_exactly_once_rpc();
  for (auto&& v : check_total_order()) out.push_back(std::move(v));
  for (auto&& v : check_frame_lineage()) out.push_back(std::move(v));
  for (auto&& v : check_loss_recovery()) out.push_back(std::move(v));
  if (aggregate != nullptr) {
    for (auto&& v : check_ledger(*aggregate)) out.push_back(std::move(v));
  }
  return out;
}

}  // namespace trace
