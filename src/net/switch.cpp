#include "net/switch.h"

#include <utility>

namespace net {

void Switch::connect(Segment& segment) {
  auto port = std::make_unique<Port>(*this, segment);
  segment.attach(*port);
  ports_.push_back(std::move(port));
}

void Switch::forward(Segment& from, const Frame& frame) {
  if (is_unicast(frame.dst)) {
    const auto it = where_.find(frame.dst);
    if (it == where_.end()) return;  // unknown station: drop
    Segment* egress = it->second;
    if (egress == &from) return;  // local traffic: nothing to do
    emit(*egress, frame);
    return;
  }
  // Broadcast / multicast: flood all other ports.
  for (const auto& port : ports_) {
    if (&port->segment() != &from) emit(port->segment(), frame);
  }
}

void Switch::emit(Segment& to, Frame frame) {
  ++forwarded_;
  // Store-and-forward: the frame was fully received at on_frame time; after
  // the forwarding latency it contends for the egress medium. The port that
  // enqueues it must not hear the copy back (loop prevention), which
  // transmit() guarantees via the originator argument — but the originator
  // here must be the egress port, so find it.
  const Port* egress_port = nullptr;
  for (const auto& port : ports_) {
    if (&port->segment() == &to) {
      egress_port = port.get();
      break;
    }
  }
  sim_->after(forward_latency_, [&to, frame = std::move(frame), egress_port]() mutable {
    to.transmit(std::move(frame), egress_port);
  });
}

}  // namespace net
