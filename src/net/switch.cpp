#include "net/switch.h"

#include <utility>

namespace net {

void Switch::connect(Segment& segment) {
  auto port = std::make_unique<Port>(*this, segment);
  segment.attach(*port);
  ports_.push_back(std::move(port));
}

void Switch::forward(Segment& from, const Frame& frame) {
  if (is_unicast(frame.dst)) {
    const auto it = where_.find(frame.dst);
    if (it == where_.end()) return;  // unknown station: drop
    Segment* egress = it->second;
    if (egress == &from) return;  // local traffic: nothing to do
    emit(from, *egress, frame);
    return;
  }
  // Broadcast / multicast: flood all other ports.
  for (const auto& port : ports_) {
    if (&port->segment() != &from) emit(from, port->segment(), frame);
  }
}

void Switch::emit(Segment& from, Segment& to, Frame frame) {
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  // Store-and-forward: the frame was fully received at on_frame time; after
  // the forwarding latency it contends for the egress medium. The port that
  // enqueues it must not hear the copy back (loop prevention), which
  // transmit() guarantees via the originator argument — but the originator
  // here must be the egress port, so find it.
  const Port* egress_port = nullptr;
  for (const auto& port : ports_) {
    if (&port->segment() == &to) {
      egress_port = port.get();
      break;
    }
  }
  // The one delivery call site shared by single- and multi-partition runs:
  // the ingress engine's clock stamps the arrival, the delivery port decides
  // how the event reaches the egress engine.
  const sim::Time t = from.simulator().now() + forward_latency_;
  delivery_->deliver(from, to, t, std::move(frame), egress_port);
}

}  // namespace net
