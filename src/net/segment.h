// A shared 10 Mbit/s Ethernet segment.
//
// One frame occupies the medium at a time; stations contend FIFO (an
// approximation of CSMA/CD that is exact under light load and fair under
// saturation, which is all the paper's results depend on). Hardware
// multicast: one transmission reaches every attached station, which is why
// the paper's unicast and multicast latencies are nearly identical (§4.1).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/frame.h"
#include "sim/simulator.h"

namespace net {

/// Anything listening on a segment: a NIC or a switch port.
class Attachment {
 public:
  virtual ~Attachment() = default;
  /// Called at frame arrival time. Filtering (is this frame for me?) is the
  /// attachment's business.
  virtual void on_frame(const Frame& frame) = 0;
};

class Segment {
 public:
  Segment(sim::Simulator& s, WireParams wp) : sim_(&s), wire_(wp) {}

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  void attach(Attachment& a) { attachments_.push_back(&a); }

  /// Queue a frame for transmission. `originator` (if given) does not hear
  /// its own transmission.
  void transmit(Frame frame, const Attachment* originator = nullptr);

  /// Schedule `frame` to enter transmit() on this segment at absolute time
  /// `t`, coalescing same-tick deliveries into one engine event when that is
  /// provably invisible: a pending batch absorbs another frame only while
  /// the engine's next sequence number is exactly where the batch left it —
  /// i.e. *nothing at all* was scheduled on this engine in between, so no
  /// other event can order between the folded frames and the relabelling is
  /// observationally exact (the trace fixtures replay byte-identical with
  /// coalescing on or off). This is the intra-partition mirror of the
  /// cross-partition mailboxes, which already batch at window barriers.
  void enqueue_delivery(sim::Time t, Frame frame, const Attachment* originator);

  /// Process-wide test hook: disable same-tick delivery coalescing so replay
  /// suites can pin batched == unbatched. Flip only between runs.
  static void set_delivery_coalescing(bool on) noexcept;
  [[nodiscard]] static bool delivery_coalescing() noexcept;

  /// Install a wire-level loss hook: return true to drop the frame after it
  /// consumed wire time (no station receives it).
  void set_loss_hook(std::function<bool(const Frame&)> hook) {
    loss_hook_ = std::move(hook);
  }

  /// Duplication injection: return true to deliver the frame twice
  /// back-to-back (models a receive-path duplicate; the medium is only
  /// occupied once).
  void set_dup_hook(std::function<bool(const Frame&)> hook) {
    dup_hook_ = std::move(hook);
  }

  /// Reordering injection: return extra delivery latency for this frame.
  /// The medium still frees after the occupy time, so a delayed frame can
  /// arrive after frames transmitted later.
  void set_delay_hook(std::function<sim::Time(const Frame&)> hook) {
    delay_hook_ = std::move(hook);
  }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }

  /// The partition this segment (and everything attached to it) lives in.
  /// 0 in a single-partition world; set once by the topology builder.
  [[nodiscard]] unsigned partition() const noexcept { return partition_; }
  void set_partition(unsigned p) noexcept { partition_ = p; }

  [[nodiscard]] const WireParams& wire() const noexcept { return wire_; }
  [[nodiscard]] sim::Time busy_time() const noexcept { return busy_time_; }
  [[nodiscard]] std::uint64_t frames_carried() const noexcept { return frames_; }
  [[nodiscard]] std::uint64_t bytes_carried() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.size(); }
  /// High-water mark of the transmit queue (frames waiting for the medium,
  /// including the one on the wire) — the saturation signal of Table 2.
  [[nodiscard]] std::size_t queue_peak() const noexcept { return queue_peak_; }

  /// Fraction of [0, now] the medium was busy.
  [[nodiscard]] double utilization() const noexcept;

 private:
  struct Pending {
    Frame frame;
    const Attachment* originator;
  };

  void start_next();
  void flush_delivery_batch();

  sim::Simulator* sim_;
  unsigned partition_ = 0;
  WireParams wire_;
  std::vector<Attachment*> attachments_;
  std::deque<Pending> queue_;
  bool busy_ = false;
  std::function<bool(const Frame&)> loss_hook_;
  std::function<bool(const Frame&)> dup_hook_;
  std::function<sim::Time(const Frame&)> delay_hook_;
  sim::Time busy_time_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t dropped_ = 0;
  std::size_t queue_peak_ = 0;

  // Same-tick delivery batch (see enqueue_delivery). Only this segment's
  // engine touches it, so it is partition-local by construction. The items
  // and scratch vectors ping-pong in flush to keep their capacity without
  // aliasing a re-armed batch while the flush loop is still draining.
  std::vector<Pending> batch_items_;
  std::vector<Pending> batch_scratch_;
  sim::Time batch_t_ = 0;
  std::uint64_t batch_guard_seq_ = 0;
  bool batch_armed_ = false;

  static bool coalesce_deliveries_;
};

}  // namespace net
