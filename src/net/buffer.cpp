#include "net/buffer.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "sim/require.h"

namespace net {

namespace {

const std::uint8_t kNoData = 0;

// The process-shared zero page backing Payload::zeros. Lives in .bss: the OS
// maps it copy-on-write onto shared zero pages and nothing ever writes it, so
// a 1 MB "allocation" of zeros costs neither memory nor a memset.
constexpr std::size_t kZeroPageBytes = std::size_t{1} << 20;
std::uint8_t g_zero_page[kZeroPageBytes];

thread_local PayloadAllocStats t_alloc_stats;

void note_payload_alloc(std::size_t bytes) noexcept {
  ++t_alloc_stats.count;
  t_alloc_stats.bytes += bytes;
}

}  // namespace

PayloadAllocStats payload_alloc_stats() noexcept { return t_alloc_stats; }

// ---------------------------------------------------------------------------
// Payload

Payload::Payload(std::vector<std::uint8_t> bytes) {
  length_ = bytes.size();
  if (length_ == 0) return;
  if (length_ <= kInlineBytes) {
    InlineRep r;
    std::memcpy(r.bytes.data(), bytes.data(), length_);
    rep_ = r;
    return;
  }
  note_payload_alloc(length_);
  auto sp = std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
  const std::uint8_t* d = sp->data();
  const std::size_t n = sp->size();
  rep_ = ChunkRep{1, {Chunk{std::move(sp), d, n}}};
}

Payload Payload::zeros(std::size_t n) {
  Payload out;
  out.length_ = n;
  if (n == 0) return out;
  if (n <= kInlineBytes) {
    out.rep_ = InlineRep{};  // value-initialized: all zero
    return out;
  }
  const std::size_t nchunks = (n + kZeroPageBytes - 1) / kZeroPageBytes;
  auto page_chunk = [](std::size_t sz) {
    return Chunk{nullptr, g_zero_page, sz};
  };
  if (nchunks <= kInlineChunks) {
    ChunkRep r;
    std::size_t left = n;
    while (left > 0) {
      const std::size_t sz = std::min(left, kZeroPageBytes);
      r.chunk[r.count++] = page_chunk(sz);
      left -= sz;
    }
    out.rep_ = std::move(r);
    return out;
  }
  auto v = std::make_shared<std::vector<Chunk>>();
  note_payload_alloc(nchunks * sizeof(Chunk));
  v->reserve(nchunks);
  std::size_t left = n;
  while (left > 0) {
    const std::size_t sz = std::min(left, kZeroPageBytes);
    v->push_back(page_chunk(sz));
    left -= sz;
  }
  out.rep_ = SharedRep{std::move(v)};
  return out;
}

Payload Payload::from_shared(std::shared_ptr<const void> owner,
                             const std::uint8_t* data, std::size_t size) {
  Payload out;
  out.length_ = size;
  if (size == 0) return out;
  out.rep_ = ChunkRep{1, {Chunk{std::move(owner), data, size}}};
  return out;
}

Payload Payload::make_inline(const std::uint8_t* data, std::size_t n) {
  Payload out;
  out.length_ = n;
  if (n == 0) return out;
  InlineRep r;
  std::memcpy(r.bytes.data(), data, n);
  out.rep_ = r;
  return out;
}

Payload Payload::single_chunk(Chunk c, std::size_t size) {
  Payload out;
  out.length_ = size;
  if (size == 0) return out;
  out.rep_ = ChunkRep{1, {std::move(c)}};
  return out;
}

std::size_t Payload::raw_count() const noexcept {
  if (std::holds_alternative<std::monostate>(rep_)) return 0;
  if (std::holds_alternative<InlineRep>(rep_)) return 1;
  if (const auto* cr = std::get_if<ChunkRep>(&rep_)) return cr->count;
  return std::get<SharedRep>(rep_).chunks->size();
}

std::pair<const std::uint8_t*, std::size_t> Payload::raw_piece(
    std::size_t i) const noexcept {
  if (const auto* ir = std::get_if<InlineRep>(&rep_)) {
    return {ir->bytes.data(), offset_ + length_};
  }
  if (const auto* cr = std::get_if<ChunkRep>(&rep_)) {
    return {cr->chunk[i].data, cr->chunk[i].size};
  }
  const Chunk& c = (*std::get<SharedRep>(rep_).chunks)[i];
  return {c.data, c.size};
}

Payload::Piece Payload::locate(std::size_t pos, std::size_t& idx,
                               std::size_t& raw_begin) const noexcept {
  const std::size_t target = offset_ + pos;
  const std::size_t n = raw_count();
  if (idx >= n || raw_begin > target) {
    idx = 0;
    raw_begin = 0;
  }
  for (;;) {
    const auto [d, sz] = raw_piece(idx);
    if (target < raw_begin + sz) {
      const std::size_t lo = std::max(raw_begin, offset_);
      const std::size_t hi = std::min(raw_begin + sz, offset_ + length_);
      return Piece{d + (lo - raw_begin), hi - lo, lo - offset_};
    }
    raw_begin += sz;
    ++idx;
  }
}

template <typename F>
void Payload::visit_chunks(F&& f) const {
  std::size_t skip = offset_, want = length_;
  const std::size_t n = raw_count();
  const std::shared_ptr<const void> no_owner;
  for (std::size_t i = 0; i < n && want > 0; ++i) {
    const Chunk* c = nullptr;
    const std::uint8_t* d = nullptr;
    std::size_t sz = 0;
    if (const auto* cr = std::get_if<ChunkRep>(&rep_)) {
      c = &cr->chunk[i];
    } else if (const auto* sr = std::get_if<SharedRep>(&rep_)) {
      c = &(*sr->chunks)[i];
    }
    if (c != nullptr) {
      d = c->data;
      sz = c->size;
    } else {
      std::tie(d, sz) = raw_piece(i);
    }
    if (skip >= sz) {
      skip -= sz;
      continue;
    }
    const std::size_t take = std::min(sz - skip, want);
    f(c != nullptr ? c->owner : no_owner, d + skip, take);
    want -= take;
    skip = 0;
  }
}

bool Payload::contiguous() const noexcept {
  if (length_ == 0) return true;
  std::size_t idx = 0, rb = 0;
  Piece p = locate(0, idx, rb);
  return p.size >= length_;
}

std::size_t Payload::chunk_count() const noexcept {
  std::size_t count = 0;
  for_each_chunk([&count](const std::uint8_t*, std::size_t) { ++count; });
  return count;
}

void Payload::collapse() const {
  std::vector<std::uint8_t> flat(length_);
  copy_out(0, length_, flat.data());
  note_payload_alloc(length_);
  auto sp = std::make_shared<const std::vector<std::uint8_t>>(std::move(flat));
  const std::uint8_t* d = sp->data();
  rep_ = ChunkRep{1, {Chunk{std::move(sp), d, length_}}};
  offset_ = 0;
}

const std::uint8_t* Payload::data() const {
  if (length_ == 0) return &kNoData;
  std::size_t idx = 0, rb = 0;
  Piece p = locate(0, idx, rb);
  if (p.size >= length_) return p.data;
  collapse();
  idx = 0;
  rb = 0;
  return locate(0, idx, rb).data;
}

std::span<const std::uint8_t> Payload::bytes() const { return {data(), length_}; }

std::uint8_t Payload::byte_at(std::size_t i) const {
  sim::require(i < length_, "Payload::byte_at: out of range");
  std::size_t idx = 0, rb = 0;
  const Piece p = locate(i, idx, rb);
  return p.data[i - p.view_begin];
}

void Payload::copy_out(std::size_t pos, std::size_t n,
                       std::uint8_t* out) const noexcept {
  std::size_t idx = 0, rb = 0;
  while (n > 0) {
    const Piece p = locate(pos, idx, rb);
    const std::size_t off = pos - p.view_begin;
    const std::size_t take = std::min(p.size - off, n);
    if (p.data >= g_zero_page && p.data < g_zero_page + kZeroPageBytes) {
      // Zero-page-backed chunk: a memset writes the same bytes without
      // streaming reads through the source page.
      std::memset(out, 0, take);
    } else {
      std::memcpy(out, p.data + off, take);
    }
    out += take;
    pos += take;
    n -= take;
  }
}

std::size_t Payload::copy_prefix(std::uint8_t* out, std::size_t n) const noexcept {
  const std::size_t take = std::min(n, length_);
  copy_out(0, take, out);
  return take;
}

Payload Payload::slice(std::size_t offset, std::size_t length) const {
  sim::require(offset <= length_ && length <= length_ - offset,
               "Payload::slice: out of range");
  Payload out = *this;
  out.offset_ += offset;
  out.length_ = length;
  if (length == 0) out.rep_ = std::monostate{};
  return out;
}

bool Payload::content_equals(const Payload& other) const noexcept {
  if (length_ != other.length_) return false;
  std::size_t ai = 0, ab = 0, bi = 0, bb = 0;
  std::size_t pos = 0;
  while (pos < length_) {
    const Piece pa = locate(pos, ai, ab);
    const Piece pb = other.locate(pos, bi, bb);
    const std::size_t na = pa.size - (pos - pa.view_begin);
    const std::size_t nb = pb.size - (pos - pb.view_begin);
    const std::size_t n = std::min({na, nb, length_ - pos});
    if (std::memcmp(pa.data + (pos - pa.view_begin),
                    pb.data + (pos - pb.view_begin), n) != 0) {
      return false;
    }
    pos += n;
  }
  return true;
}

// ---------------------------------------------------------------------------
// BufferPool

std::shared_ptr<std::vector<std::uint8_t>> BufferPool::acquire(std::size_t n) {
  for (auto& s : slots_) {
    if (s && s.use_count() == 1) {
      if (s->capacity() < n) note_payload_alloc(n);
      s->resize(n);
      return s;
    }
  }
  note_payload_alloc(n);
  auto buf = std::make_shared<std::vector<std::uint8_t>>(n);
  for (auto& s : slots_) {
    if (!s) {
      s = buf;
      return buf;
    }
  }
  slots_[victim_++ % slots_.size()] = buf;
  return buf;
}

// ---------------------------------------------------------------------------
// Writer

Writer& Writer::raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  return *this;
}

Writer& Writer::payload(const Payload& p) {
  if (p.empty()) return *this;
  if (p.size() <= Payload::kInlineBytes) {
    // Header-sized: cheaper to copy into the literal stream than to carry a
    // chunk (and inline-stored payloads have no stable backing to reference).
    const std::size_t at = buf_.size();
    buf_.resize(at + p.size());
    p.copy_out(0, p.size(), buf_.data() + at);
    return *this;
  }
  refs_.push_back(Ref{p, buf_.size()});
  ref_bytes_ += p.size();
  return *this;
}

Writer& Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
  return *this;
}

Writer& Writer::zeros(std::size_t n) {
  if (n <= Payload::kInlineBytes) {
    buf_.insert(buf_.end(), n, 0);
    return *this;
  }
  return payload(Payload::zeros(n));
}

void Writer::rotate(std::size_t need) {
  const std::size_t want = std::max(need, kArenaBlockBytes);
  for (auto& s : slots_) {
    // use_count()==1 means only the pool slot holds it: no frame still
    // references bytes inside, so it is safe to overwrite.
    if (s && s != cur_ && s.use_count() == 1) {
      if (s->size() < want) {
        note_payload_alloc(want);
        s = std::make_shared<std::vector<std::uint8_t>>(want);
      }
      cur_ = s;
      cur_used_ = 0;
      return;
    }
  }
  note_payload_alloc(want);
  auto blk = std::make_shared<std::vector<std::uint8_t>>(want);
  for (auto& s : slots_) {
    if (!s) {
      s = blk;
      cur_ = std::move(blk);
      cur_used_ = 0;
      return;
    }
  }
  // All blocks are still referenced by in-flight frames; retire the oldest
  // slot (its storage stays alive until those frames release it).
  slots_[victim_++ % slots_.size()] = blk;
  cur_ = std::move(blk);
  cur_used_ = 0;
}

Payload::Chunk Writer::commit(const std::uint8_t* src, std::size_t n) {
  if (!cur_ || cur_used_ + n > cur_->size()) rotate(n);
  std::uint8_t* dst = cur_->data() + cur_used_;
  std::memcpy(dst, src, n);
  cur_used_ += n;
  return Payload::Chunk{cur_, dst, n};
}

std::shared_ptr<std::vector<Payload::Chunk>> Writer::acquire_chunk_vec() {
  for (auto& s : chunk_slots_) {
    if (s && s.use_count() == 1) {
      s->clear();  // releases the previous message's chunk references
      return s;
    }
  }
  note_payload_alloc(sizeof(Payload::Chunk) * Payload::kInlineChunks);
  auto v = std::make_shared<std::vector<Payload::Chunk>>();
  for (auto& s : chunk_slots_) {
    if (!s) {
      s = v;
      return v;
    }
  }
  chunk_slots_[chunk_victim_++ % chunk_slots_.size()] = v;
  return v;
}

void Writer::reset() {
  if (buf_.capacity() != buf_cap_seen_) {
    note_payload_alloc(buf_.capacity());
    buf_cap_seen_ = buf_.capacity();
  }
  if (refs_.capacity() != refs_cap_seen_) {
    note_payload_alloc(refs_.capacity() * sizeof(Ref));
    refs_cap_seen_ = refs_.capacity();
  }
  buf_.clear();
  refs_.clear();
  ref_bytes_ = 0;
}

Payload Writer::take() {
  const std::size_t total = size();
  if (total == 0) {
    reset();
    return Payload{};
  }
  if (refs_.empty()) {
    Payload out = total <= Payload::kInlineBytes
                      ? Payload::make_inline(buf_.data(), total)
                      : Payload::single_chunk(commit(buf_.data(), total), total);
    reset();
    return out;
  }

  // General case: commit all literal bytes as one arena run, then assemble
  // the cord by interleaving literal sub-chunks with the referenced chunks.
  Payload::Chunk lit;
  if (!buf_.empty()) lit = commit(buf_.data(), buf_.size());

  std::array<Payload::Chunk, Payload::kInlineChunks> small;
  std::size_t count = 0;
  std::shared_ptr<std::vector<Payload::Chunk>> big;
  auto push = [&](const std::shared_ptr<const void>& owner,
                  const std::uint8_t* d, std::size_t sz) {
    if (sz == 0) return;
    Payload::Chunk* last = nullptr;
    if (big != nullptr && !big->empty()) {
      last = &big->back();
    } else if (big == nullptr && count > 0) {
      last = &small[count - 1];
    }
    // Coalesce physically adjacent chunks from the same owner (common when
    // consecutive refs were sliced out of one buffer).
    if (last != nullptr && last->data + last->size == d &&
        last->owner.get() == owner.get()) {
      last->size += sz;
      return;
    }
    if (big != nullptr) {
      big->push_back(Payload::Chunk{owner, d, sz});
      return;
    }
    if (count < Payload::kInlineChunks) {
      small[count++] = Payload::Chunk{owner, d, sz};
      return;
    }
    big = acquire_chunk_vec();
    big->assign(small.begin(), small.end());
    big->push_back(Payload::Chunk{owner, d, sz});
  };

  std::size_t lit_pos = 0;
  auto push_literal = [&](std::size_t upto) {
    if (upto > lit_pos) {
      push(lit.owner, lit.data + lit_pos, upto - lit_pos);
      lit_pos = upto;
    }
  };
  // Small referenced chunks (nested protocol headers, mostly) are copied
  // into the arena instead of kept as separate chunks: the copy lands right
  // after the literal run in the same block, so it coalesces and the usual
  // header+header+body wrap stays within the inline chunk budget instead of
  // forcing a heap chunk vector per message.
  auto push_ref = [&](const std::shared_ptr<const void>& owner,
                      const std::uint8_t* d, std::size_t sz) {
    if (sz != 0 && sz <= Payload::kInlineBytes) {
      const Payload::Chunk c = commit(d, sz);
      push(c.owner, c.data, c.size);
    } else {
      push(owner, d, sz);
    }
  };
  for (const Ref& r : refs_) {
    push_literal(r.at);
    r.p.visit_chunks(push_ref);
  }
  push_literal(buf_.size());

  Payload out;
  out.length_ = total;
  if (big != nullptr) {
    out.rep_ = Payload::SharedRep{std::move(big)};
  } else {
    Payload::ChunkRep r;
    r.count = static_cast<std::uint32_t>(count);
    for (std::size_t i = 0; i < count; ++i) r.chunk[i] = std::move(small[i]);
    out.rep_ = std::move(r);
  }
  reset();
  return out;
}

// ---------------------------------------------------------------------------
// Reader

void Reader::need(std::size_t n) const {
  sim::require(n <= payload_.size() - offset_, "Reader: payload underrun");
}

const std::uint8_t* Reader::fetch_slow(std::size_t n, std::uint8_t* scratch) {
  need(n);
  const Payload::Piece p = payload_.locate(offset_, cur_idx_, cur_raw_begin_);
  piece_data_ = p.data;
  piece_begin_ = p.view_begin;
  piece_size_ = p.size;
  const std::size_t off = offset_ - p.view_begin;
  if (off + n <= p.size) {
    offset_ += n;
    return p.data + off;
  }
  payload_.copy_out(offset_, n, scratch);
  offset_ += n;
  return scratch;
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(n, '\0');
  payload_.copy_out(offset_, n, reinterpret_cast<std::uint8_t*>(s.data()));
  offset_ += n;
  return s;
}

Payload Reader::raw(std::size_t n) {
  need(n);
  Payload out = payload_.slice(offset_, n);
  offset_ += n;
  return out;
}

Payload Reader::rest() { return raw(remaining()); }

}  // namespace net
