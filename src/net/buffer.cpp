#include "net/buffer.h"

#include <bit>
#include <cstring>
#include <utility>

#include "sim/require.h"

namespace net {

namespace {
const std::uint8_t kNoData = 0;
}

Payload::Payload(std::vector<std::uint8_t> bytes)
    : storage_(std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes))),
      offset_(0),
      length_(storage_->size()) {}

Payload Payload::zeros(std::size_t n) {
  return Payload(std::vector<std::uint8_t>(n, 0));
}

const std::uint8_t* Payload::data() const noexcept {
  if (storage_ == nullptr || length_ == 0) return &kNoData;
  return storage_->data() + offset_;
}

std::span<const std::uint8_t> Payload::bytes() const noexcept {
  return {data(), length_};
}

Payload Payload::slice(std::size_t offset, std::size_t length) const {
  sim::require(offset + length <= length_, "Payload::slice: out of range");
  Payload out;
  out.storage_ = storage_;
  out.offset_ = offset_ + offset;
  out.length_ = length;
  return out;
}

bool Payload::content_equals(const Payload& other) const noexcept {
  if (length_ != other.length_) return false;
  return std::memcmp(data(), other.data(), length_) == 0;
}

Writer& Writer::u8(std::uint8_t v) {
  bytes_.push_back(v);
  return *this;
}

Writer& Writer::u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
  bytes_.push_back(static_cast<std::uint8_t>(v));
  return *this;
}

Writer& Writer::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
  return *this;
}

Writer& Writer::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
  return *this;
}

Writer& Writer::i32(std::int32_t v) { return u32(static_cast<std::uint32_t>(v)); }
Writer& Writer::i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }

Writer& Writer::f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }

Writer& Writer::raw(std::span<const std::uint8_t> bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  return *this;
}

Writer& Writer::payload(const Payload& p) { return raw(p.bytes()); }

Writer& Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
  return *this;
}

Writer& Writer::zeros(std::size_t n) {
  bytes_.insert(bytes_.end(), n, 0);
  return *this;
}

Payload Writer::take() { return Payload(std::exchange(bytes_, {})); }

void Reader::need(std::size_t n) const {
  sim::require(offset_ + n <= payload_.size(), "Reader: payload underrun");
}

std::uint8_t Reader::u8() {
  need(1);
  return payload_.data()[offset_++];
}

std::uint16_t Reader::u16() {
  need(2);
  const auto* p = payload_.data() + offset_;
  offset_ += 2;
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t Reader::u32() {
  need(4);
  const auto* p = payload_.data() + offset_;
  offset_ += 4;
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

std::uint64_t Reader::u64() {
  const std::uint64_t hi = u32();
  const std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }
std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(payload_.data() + offset_), n);
  offset_ += n;
  return s;
}

Payload Reader::raw(std::size_t n) {
  need(n);
  Payload out = payload_.slice(offset_, n);
  offset_ += n;
  return out;
}

Payload Reader::rest() { return raw(remaining()); }

}  // namespace net
