// A network interface attached to a segment.
//
// Receive filtering happens "in hardware": a NIC passes up only frames
// addressed to its own station address, the broadcast address, or a
// multicast group it joined — non-members take no interrupt (this matters
// for CPU-load fidelity at nodes outside a FLIP group).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>

#include "net/frame.h"
#include "net/segment.h"

namespace net {

class Nic final : public Attachment {
 public:
  Nic(MacAddr mac, Segment& segment) : mac_(mac), segment_(&segment) {
    segment.attach(*this);
  }

  [[nodiscard]] MacAddr mac() const noexcept { return mac_; }

  /// Transmit a frame (non-blocking; the segment arbitrates).
  void send(Frame frame) {
    frame.src = mac_;
    ++tx_frames_;
    segment_->transmit(std::move(frame), this);
  }

  /// The kernel hooks this to take the receive interrupt.
  void set_rx_handler(std::function<void(const Frame&)> handler) {
    rx_handler_ = std::move(handler);
  }

  /// Receiver-side loss (buffer overrun injection): return true to drop.
  void set_rx_drop_hook(std::function<bool(const Frame&)> hook) {
    rx_drop_hook_ = std::move(hook);
  }

  void join_multicast(MacAddr group) { groups_.insert(group); }
  void leave_multicast(MacAddr group) { groups_.erase(group); }
  [[nodiscard]] bool member_of(MacAddr group) const {
    return groups_.contains(group);
  }

  void on_frame(const Frame& frame) override;

  [[nodiscard]] std::uint64_t rx_frames() const noexcept { return rx_frames_; }
  [[nodiscard]] std::uint64_t tx_frames() const noexcept { return tx_frames_; }
  [[nodiscard]] std::uint64_t rx_dropped() const noexcept { return rx_dropped_; }
  [[nodiscard]] Segment& segment() noexcept { return *segment_; }
  /// The partition this NIC lives in (its segment's partition).
  [[nodiscard]] unsigned partition() const noexcept {
    return segment_->partition();
  }

 private:
  MacAddr mac_;
  Segment* segment_;
  std::function<void(const Frame&)> rx_handler_;
  std::function<bool(const Frame&)> rx_drop_hook_;
  std::unordered_set<MacAddr> groups_;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t tx_frames_ = 0;
  std::uint64_t rx_dropped_ = 0;
};

}  // namespace net
