// Byte-level message payloads and (de)serialization.
//
// Protocol headers in this reproduction are serialized for real: header sizes
// show up on the simulated wire exactly as the paper reports them (56-byte
// Amoeba RPC headers vs 64-byte Panda RPC headers, 52 vs 40 for the group
// protocols). Payload is an immutable, cheaply copyable view over shared
// bytes, with zero-copy slicing for fragmentation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace net {

/// Immutable shared byte string with zero-copy slicing.
class Payload {
 public:
  Payload() = default;
  explicit Payload(std::vector<std::uint8_t> bytes);

  /// A payload of `n` zero bytes (bulk data whose content is irrelevant).
  static Payload zeros(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return length_; }
  [[nodiscard]] bool empty() const noexcept { return length_ == 0; }
  [[nodiscard]] const std::uint8_t* data() const noexcept;
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept;

  /// Zero-copy sub-range view. Throws SimError if out of range.
  [[nodiscard]] Payload slice(std::size_t offset, std::size_t length) const;

  /// Byte-wise equality (for tests).
  [[nodiscard]] bool content_equals(const Payload& other) const noexcept;

 private:
  std::shared_ptr<const std::vector<std::uint8_t>> storage_;
  std::size_t offset_ = 0;
  std::size_t length_ = 0;
};

/// Serializer producing a Payload. All multi-byte values are big-endian.
class Writer {
 public:
  Writer& u8(std::uint8_t v);
  Writer& u16(std::uint16_t v);
  Writer& u32(std::uint32_t v);
  Writer& u64(std::uint64_t v);
  Writer& i32(std::int32_t v);
  Writer& i64(std::int64_t v);
  Writer& f64(double v);
  Writer& raw(std::span<const std::uint8_t> bytes);
  Writer& payload(const Payload& p);
  Writer& str(const std::string& s);  // u32 length prefix + bytes
  Writer& zeros(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

  /// Finalize; the Writer is empty afterwards.
  [[nodiscard]] Payload take();

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Deserializer over a Payload. Underruns throw SimError (a protocol bug,
/// not a simulated failure).
class Reader {
 public:
  explicit Reader(Payload p) : payload_(std::move(p)) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  std::string str();
  /// Consume `n` bytes as a zero-copy sub-payload.
  Payload raw(std::size_t n);
  /// Consume the rest as a zero-copy sub-payload.
  Payload rest();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return payload_.size() - offset_;
  }

 private:
  void need(std::size_t n) const;
  Payload payload_;
  std::size_t offset_ = 0;
};

}  // namespace net
