// Byte-level message payloads and (de)serialization.
//
// Protocol headers in this reproduction are serialized for real: header sizes
// show up on the simulated wire exactly as the paper reports them (56-byte
// Amoeba RPC headers vs 64-byte Panda RPC headers, 52 vs 40 for the group
// protocols). Payload is an immutable, cheaply copyable view over shared
// bytes, with zero-copy slicing for fragmentation.
//
// Host-cost design (simulated Ledger charges are unaffected by any of this):
//
//   * Payload is a cord: a gather list of up to three inline chunks (or a
//     shared chunk vector beyond that), so header-prepend, fragmentation and
//     reassembly splice pointers instead of copying bytes. A contiguous view
//     is materialized lazily, only where one is truly required.
//   * Header-sized payloads (<= 64 B, covering all four protocol headers)
//     are stored inline in the Payload object itself: no heap traffic.
//   * Payload::zeros references a process-shared static zero page, so bulk
//     "content-irrelevant" data costs no allocation or memset at any size.
//   * Writer keeps a reusable scratch buffer plus a small arena of pooled
//     blocks recycled when no frame references them any more; a long-lived
//     Writer reaches a steady state of zero allocations per message.
//
// Every host allocation made on behalf of payload storage is counted in a
// thread-local channel (payload_alloc_stats) so tests can assert the steady
// state really is allocation-free.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace net {

/// Thread-local running totals of payload-storage acquisitions (arena blocks,
/// shared buffers, chunk vectors, lazy flattens). Monotonic; sample before
/// and after a region to measure its allocation cost.
struct PayloadAllocStats {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};
[[nodiscard]] PayloadAllocStats payload_alloc_stats() noexcept;

/// Immutable shared byte string with zero-copy slicing and concatenation.
class Payload {
 public:
  /// Payloads at or below this size are stored inline (no heap storage).
  static constexpr std::size_t kInlineBytes = 64;
  /// Cords up to this many chunks avoid a shared chunk vector.
  static constexpr std::size_t kInlineChunks = 3;

  Payload() = default;
  explicit Payload(std::vector<std::uint8_t> bytes);

  /// A payload of `n` zero bytes (bulk data whose content is irrelevant).
  /// Backed by a process-shared zero page: no allocation, no memset.
  static Payload zeros(std::size_t n);

  /// Wrap externally owned bytes; `owner` keeps them alive. Zero-copy.
  static Payload from_shared(std::shared_ptr<const void> owner,
                             const std::uint8_t* data, std::size_t size);

  [[nodiscard]] std::size_t size() const noexcept { return length_; }
  [[nodiscard]] bool empty() const noexcept { return length_ == 0; }

  /// Contiguous view; flattens the cord first if needed (allocates once and
  /// caches the flat form — prefer byte_at/copy_prefix/for_each_chunk on
  /// potentially-fragmented payloads).
  [[nodiscard]] const std::uint8_t* data() const;
  [[nodiscard]] std::span<const std::uint8_t> bytes() const;

  /// True when the view is already a single contiguous run (data() is free).
  [[nodiscard]] bool contiguous() const noexcept;
  /// Number of chunks visible through the view.
  [[nodiscard]] std::size_t chunk_count() const noexcept;

  /// Random access without flattening.
  [[nodiscard]] std::uint8_t byte_at(std::size_t i) const;
  /// Copy up to `n` leading bytes into `out`; returns the count copied.
  std::size_t copy_prefix(std::uint8_t* out, std::size_t n) const noexcept;
  /// Copy `n` bytes starting at view-offset `pos` (callers check bounds).
  void copy_out(std::size_t pos, std::size_t n, std::uint8_t* out) const noexcept;

  /// Visit each visible chunk in order: f(const std::uint8_t*, std::size_t).
  template <typename F>
  void for_each_chunk(F&& f) const {
    std::size_t idx = 0, raw_begin = 0, pos = 0;
    while (pos < length_) {
      const Piece p = locate(pos, idx, raw_begin);
      f(p.data, p.size);
      pos = p.view_begin + p.size;
    }
  }

  /// Zero-copy sub-range view. Throws SimError if out of range.
  [[nodiscard]] Payload slice(std::size_t offset, std::size_t length) const;

  /// Byte-wise equality (for tests).
  [[nodiscard]] bool content_equals(const Payload& other) const noexcept;

 private:
  friend class Writer;
  friend class Reader;

  /// One gather-list entry. `owner` keeps `data` alive; a null owner means
  /// the bytes are static (the zero page). Inline-stored payloads have no
  /// Chunk at all — their bytes live in the Payload object itself.
  struct Chunk {
    std::shared_ptr<const void> owner;
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
  };
  struct InlineRep {
    std::array<std::uint8_t, kInlineBytes> bytes;
  };
  struct ChunkRep {
    std::uint32_t count = 0;
    std::array<Chunk, kInlineChunks> chunk;
  };
  struct SharedRep {
    std::shared_ptr<const std::vector<Chunk>> chunks;
  };

  /// A visible run of bytes: covers view offsets
  /// [view_begin, view_begin + size).
  struct Piece {
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
    std::size_t view_begin = 0;
  };

  [[nodiscard]] std::size_t raw_count() const noexcept;
  /// Raw chunk `i` as (data, size), ignoring the view.
  [[nodiscard]] std::pair<const std::uint8_t*, std::size_t> raw_piece(
      std::size_t i) const noexcept;
  /// The visible piece containing view-offset `pos`. (idx, raw_begin) is a
  /// resumable cursor hint: raw chunk index and the raw offset of its first
  /// byte; both are updated. pos must be < size().
  Piece locate(std::size_t pos, std::size_t& idx,
               std::size_t& raw_begin) const noexcept;
  /// Visit visible chunks with their owners:
  /// f(const std::shared_ptr<const void>&, const std::uint8_t*, std::size_t).
  /// Inline-backed payloads yield a null owner and a pointer into *this.
  template <typename F>
  void visit_chunks(F&& f) const;
  /// Replace the cord with a single flat chunk (allocates; cached).
  void collapse() const;

  static Payload make_inline(const std::uint8_t* data, std::size_t n);
  static Payload single_chunk(Chunk c, std::size_t size);

  // The view [offset_, offset_ + length_) over the rep's raw bytes. rep_ and
  // offset_ are mutable so data() can cache the flattened form.
  mutable std::variant<std::monostate, InlineRep, ChunkRep, SharedRep> rep_;
  mutable std::size_t offset_ = 0;
  std::size_t length_ = 0;
};

/// A pool of reusable byte buffers for receive-side reassembly: acquire()
/// prefers a pooled buffer no frame references any more, so a steady-state
/// receive loop recycles the same storage instead of allocating per message.
class BufferPool {
 public:
  explicit BufferPool(std::size_t slots = 4) : slots_(slots) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A writable buffer of exactly `n` bytes (contents unspecified). Wrap the
  /// filled buffer with Payload::from_shared to hand it off zero-copy.
  [[nodiscard]] std::shared_ptr<std::vector<std::uint8_t>> acquire(
      std::size_t n);

 private:
  std::vector<std::shared_ptr<std::vector<std::uint8_t>>> slots_;
  std::size_t victim_ = 0;
};

/// Serializer producing a Payload. All multi-byte values are big-endian.
///
/// Literal bytes accumulate in a reusable scratch buffer; payload() splices
/// payloads >64 B in as chunk references (zero-copy). take() commits the
/// literal bytes into a pooled arena block and assembles the cord. Reuse one
/// Writer per protocol object: after warm-up it allocates nothing.
class Writer {
 public:
  Writer() = default;
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Writer& u8(std::uint8_t v) {
    buf_.push_back(v);
    return *this;
  }
  Writer& u16(std::uint16_t v) {
    std::uint8_t* p = grow(2);
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
    return *this;
  }
  Writer& u32(std::uint32_t v) {
    std::uint8_t* p = grow(4);
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
    return *this;
  }
  Writer& u64(std::uint64_t v) {
    std::uint8_t* p = grow(8);
    for (int i = 0; i < 8; ++i) {
      p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
    }
    return *this;
  }
  Writer& i32(std::int32_t v) { return u32(static_cast<std::uint32_t>(v)); }
  Writer& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  Writer& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }
  Writer& raw(std::span<const std::uint8_t> bytes);
  Writer& payload(const Payload& p);
  Writer& str(const std::string& s);  // u32 length prefix + bytes
  Writer& zeros(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept {
    return buf_.size() + ref_bytes_;
  }

  /// Finalize; the Writer is empty (and reusable) afterwards.
  [[nodiscard]] Payload take();

 private:
  static constexpr std::size_t kArenaBlockBytes = 64 * 1024;
  static constexpr std::size_t kArenaSlots = 8;
  static constexpr std::size_t kChunkVecSlots = 4;

  /// A payload spliced into the byte stream after literal offset `at`.
  struct Ref {
    Payload p;
    std::size_t at = 0;
  };

  /// Append `n` uninitialized-ish bytes to the literal stream and return a
  /// pointer to them (scalar writers fill them in place).
  [[nodiscard]] std::uint8_t* grow(std::size_t n) {
    const std::size_t at = buf_.size();
    buf_.resize(at + n);
    return buf_.data() + at;
  }

  /// Copy `n` bytes into the current arena block (rotating to a free pooled
  /// block, or allocating, as needed) and return the owning chunk.
  Payload::Chunk commit(const std::uint8_t* src, std::size_t n);
  void rotate(std::size_t need);
  [[nodiscard]] std::shared_ptr<std::vector<Payload::Chunk>> acquire_chunk_vec();
  void reset();

  std::vector<std::uint8_t> buf_;  // literal bytes of the message being built
  std::vector<Ref> refs_;
  std::size_t ref_bytes_ = 0;
  std::size_t buf_cap_seen_ = 0;
  std::size_t refs_cap_seen_ = 0;

  std::shared_ptr<std::vector<std::uint8_t>> cur_;
  std::size_t cur_used_ = 0;
  std::array<std::shared_ptr<std::vector<std::uint8_t>>, kArenaSlots> slots_;
  std::size_t victim_ = 0;
  std::array<std::shared_ptr<std::vector<Payload::Chunk>>, kChunkVecSlots>
      chunk_slots_;
  std::size_t chunk_victim_ = 0;
};

/// Deserializer over a Payload. Underruns throw SimError (a protocol bug,
/// not a simulated failure). Reads walk the cord with a sequential cursor —
/// no flattening, even for scalar reads that straddle a chunk boundary.
class Reader {
 public:
  explicit Reader(Payload p) : payload_(std::move(p)) {}

  std::uint8_t u8() {
    std::uint8_t tmp;
    return *fetch(1, &tmp);
  }
  std::uint16_t u16() {
    std::uint8_t tmp[2];
    const std::uint8_t* p = fetch(2, tmp);
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
  }
  std::uint32_t u32() {
    std::uint8_t tmp[4];
    const std::uint8_t* p = fetch(4, tmp);
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
  }
  std::uint64_t u64() {
    std::uint8_t tmp[8];
    const std::uint8_t* p = fetch(8, tmp);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str();
  /// Consume `n` bytes as a zero-copy sub-payload.
  Payload raw(std::size_t n);
  /// Consume the rest as a zero-copy sub-payload.
  Payload rest();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return payload_.size() - offset_;
  }

 private:
  void need(std::size_t n) const;
  /// `n` contiguous bytes at the cursor, either in place or staged into
  /// `scratch` when the read straddles chunks. Advances the cursor. The
  /// common case — the read lies inside the piece the cursor already sits
  /// in — stays inline; everything else goes through fetch_slow.
  const std::uint8_t* fetch(std::size_t n, std::uint8_t* scratch) {
    const std::size_t off = offset_ - piece_begin_;
    if (off + n <= piece_size_) {
      offset_ += n;
      return piece_data_ + off;
    }
    return fetch_slow(n, scratch);
  }
  const std::uint8_t* fetch_slow(std::size_t n, std::uint8_t* scratch);

  Payload payload_;
  std::size_t offset_ = 0;
  // Cord cursor hint (raw chunk index / raw offset of its first byte).
  std::size_t cur_idx_ = 0;
  std::size_t cur_raw_begin_ = 0;
  // The piece the cursor last resolved to: view span
  // [piece_begin_, piece_begin_ + piece_size_) is contiguous at piece_data_.
  const std::uint8_t* piece_data_ = nullptr;
  std::size_t piece_begin_ = 0;
  std::size_t piece_size_ = 0;
};

}  // namespace net
