#include "net/network.h"

#include "sim/require.h"

namespace net {

Network::Network(sim::Simulator& s, NetworkConfig config)
    : sim_(&s), config_(config), switch_(config.switch_forward_latency) {
  sim::require(config_.nodes_per_segment > 0, "Network: nodes_per_segment must be positive");
}

Network::Network(sim::PartitionedSimulator& ps, NetworkConfig config)
    : sim_(&ps.engine(0)),
      psim_(&ps),
      config_(config),
      switch_(config.switch_forward_latency) {
  sim::require(config_.nodes_per_segment > 0, "Network: nodes_per_segment must be positive");
  sim::require(ps.partitions() == 1 || config_.switch_forward_latency > 0,
               "Network: partitions > 1 needs switch_forward_latency > 0 "
               "(it is the cross-partition lookahead)");
  partitioned_delivery_ = std::make_unique<PartitionedDeliveryPort>(ps);
  switch_.set_delivery_port(*partitioned_delivery_);
  // Safe even before any cross-partition pair exists: with none, no message
  // ever crosses, and any positive lookahead is conservatively valid.
  ps.set_lookahead(config_.switch_forward_latency);
}

NodeId Network::add_node() {
  const NodeId id = static_cast<NodeId>(nics_.size());
  const std::size_t segment_index = id / config_.nodes_per_segment;
  if (segment_index == segments_.size()) {
    const unsigned partition =
        psim_ != nullptr
            ? static_cast<unsigned>(segment_index % psim_->partitions())
            : 0;
    sim::Simulator& engine =
        psim_ != nullptr ? psim_->engine(partition) : *sim_;
    segments_.push_back(std::make_unique<Segment>(engine, config_.wire));
    segments_.back()->set_partition(partition);
    switch_.connect(*segments_.back());
  }
  Segment& home = *segments_[segment_index];
  nics_.push_back(std::make_unique<Nic>(mac_of(id), home));
  switch_.learn(mac_of(id), home);
  return id;
}

Nic& Network::nic(NodeId id) {
  sim::require(id < nics_.size(), "Network::nic: unknown node");
  return *nics_[id];
}

const Nic& Network::nic(NodeId id) const {
  sim::require(id < nics_.size(), "Network::nic: unknown node");
  return *nics_[id];
}

std::uint64_t Network::total_bytes_carried() const noexcept {
  std::uint64_t total = 0;
  for (const auto& seg : segments_) total += seg->bytes_carried();
  return total;
}

unsigned Network::partition_of(NodeId id) const {
  sim::require(id < nics_.size(), "Network::partition_of: unknown node");
  const std::size_t segment_index = id / config_.nodes_per_segment;
  return segments_[segment_index]->partition();
}

sim::Simulator& Network::node_simulator(NodeId id) {
  if (psim_ == nullptr) return *sim_;
  return psim_->engine(partition_of(id));
}

sim::Time Network::cross_partition_lookahead() const noexcept {
  // Every cross-partition path runs through the one store-and-forward
  // switch, so the minimum over cross-partition segment pairs is the
  // switch's forward latency whenever at least one pair crosses. (The wire
  // time the frame already spent on the ingress segment only adds slack.)
  for (std::size_t i = 0; i + 1 < segments_.size(); ++i) {
    for (std::size_t j = i + 1; j < segments_.size(); ++j) {
      if (segments_[i]->partition() != segments_[j]->partition()) {
        return config_.switch_forward_latency;
      }
    }
  }
  return sim::Simulator::kNever;
}

}  // namespace net
