#include "net/network.h"

#include "sim/require.h"

namespace net {

Network::Network(sim::Simulator& s, NetworkConfig config)
    : sim_(&s), config_(config), switch_(s, config.switch_forward_latency) {
  sim::require(config_.nodes_per_segment > 0, "Network: nodes_per_segment must be positive");
}

NodeId Network::add_node() {
  const NodeId id = static_cast<NodeId>(nics_.size());
  const std::size_t segment_index = id / config_.nodes_per_segment;
  if (segment_index == segments_.size()) {
    segments_.push_back(std::make_unique<Segment>(*sim_, config_.wire));
    switch_.connect(*segments_.back());
  }
  Segment& home = *segments_[segment_index];
  nics_.push_back(std::make_unique<Nic>(mac_of(id), home));
  switch_.learn(mac_of(id), home);
  return id;
}

Nic& Network::nic(NodeId id) {
  sim::require(id < nics_.size(), "Network::nic: unknown node");
  return *nics_[id];
}

const Nic& Network::nic(NodeId id) const {
  sim::require(id < nics_.size(), "Network::nic: unknown node");
  return *nics_[id];
}

std::uint64_t Network::total_bytes_carried() const noexcept {
  std::uint64_t total = 0;
  for (const auto& seg : segments_) total += seg->bytes_carried();
  return total;
}

}  // namespace net
