#include "net/segment.h"

#include <utility>

#include "sim/require.h"

namespace net {

void Segment::transmit(Frame frame, const Attachment* originator) {
  sim::require(frame.payload.size() <= wire_.mtu,
               "Segment::transmit: frame exceeds the 1500-byte MTU; the "
               "network layer must fragment");
  queue_.push_back(Pending{std::move(frame), originator});
  if (!busy_) start_next();
}

void Segment::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Pending p = std::move(queue_.front());
  queue_.pop_front();

  const sim::Time occupy = wire_time(wire_, p.frame.payload.size());
  busy_time_ += occupy;
  ++frames_;
  bytes_ += p.frame.payload.size();

  sim_->after(occupy + wire_.propagation,
              [this, p = std::move(p)]() mutable {
                const bool lost = loss_hook_ && loss_hook_(p.frame);
                if (lost) {
                  ++dropped_;
                } else {
                  for (Attachment* a : attachments_) {
                    if (a != p.originator) a->on_frame(p.frame);
                  }
                }
              });
  // The medium frees up after the occupy time (propagation overlaps the next
  // transmission on real Ethernet once the carrier drops).
  sim_->after(occupy, [this] { start_next(); });
}

double Segment::utilization() const noexcept {
  const sim::Time now = sim_->now();
  if (now <= 0) return 0.0;
  return static_cast<double>(busy_time_) / static_cast<double>(now);
}

}  // namespace net
