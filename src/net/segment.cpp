#include "net/segment.h"

#include <algorithm>
#include <array>
#include <utility>

#include "sim/require.h"
#include "trace/tracer.h"

namespace net {
namespace {

// Node tag for a frame's sender: unicast source MACs are node + 1 (see
// Network::mac_of); anything else is untagged wire traffic.
std::uint32_t src_node(const Frame& f) noexcept {
  return is_unicast(f.src) ? f.src - 1 : trace::kNoNode;
}

std::uint64_t pack_src_dst(const Frame& f) noexcept {
  return (static_cast<std::uint64_t>(f.src) << 32) | f.dst;
}

}  // namespace

bool Segment::coalesce_deliveries_ = true;

void Segment::set_delivery_coalescing(bool on) noexcept {
  coalesce_deliveries_ = on;
}

bool Segment::delivery_coalescing() noexcept { return coalesce_deliveries_; }

void Segment::enqueue_delivery(sim::Time t, Frame frame,
                               const Attachment* originator) {
  // Absorb into the armed batch only when nothing was scheduled on this
  // engine since the batch event: next_seq() still where arming left it.
  // Then no event can order between the folded frames, so dispatching them
  // from one event is indistinguishable from one event per frame.
  if (batch_armed_ && batch_t_ == t && sim_->next_seq() == batch_guard_seq_) {
    batch_items_.push_back(Pending{std::move(frame), originator});
    return;
  }
  if (!coalesce_deliveries_ || batch_armed_) {
    // Coalescing off, or a batch is in flight that cannot absorb this frame
    // (other events intervened): a plain per-frame event, carrying exactly
    // the sequence number the unbatched reference would have drawn.
    sim_->at(t, [this, frame = std::move(frame), originator]() mutable {
      transmit(std::move(frame), originator);
    });
    return;
  }
  batch_armed_ = true;
  batch_t_ = t;
  batch_items_.push_back(Pending{std::move(frame), originator});
  sim_->at(t, [this] { flush_delivery_batch(); });
  batch_guard_seq_ = sim_->next_seq();
}

void Segment::flush_delivery_batch() {
  batch_armed_ = false;
  // Swap the items out before transmitting: a transmit can re-arm a fresh
  // batch on this very segment, which must not alias the draining list.
  batch_scratch_.swap(batch_items_);
  for (Pending& p : batch_scratch_) transmit(std::move(p.frame), p.originator);
  batch_scratch_.clear();
}

void Segment::transmit(Frame frame, const Attachment* originator) {
  sim::require(frame.payload.size() <= wire_.mtu,
               "Segment::transmit: frame exceeds the 1500-byte MTU; the "
               "network layer must fragment");
  queue_.push_back(Pending{std::move(frame), originator});
  queue_peak_ = std::max(queue_peak_, queue_.size() + (busy_ ? 1 : 0));
  if (!busy_) start_next();
}

void Segment::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Pending p = std::move(queue_.front());
  queue_.pop_front();

  const sim::Time occupy = wire_time(wire_, p.frame.payload.size());
  busy_time_ += occupy;
  ++frames_;
  bytes_ += p.frame.payload.size();

  if (auto* tr = sim_->tracer()) {
    tr->record(src_node(p.frame), trace::EventKind::kWireTx, p.frame.id,
               p.frame.payload.size(), pack_src_dst(p.frame));
  }

  const sim::Time extra = delay_hook_ ? delay_hook_(p.frame) : 0;
  const bool duplicate = dup_hook_ && dup_hook_(p.frame);

  sim_->after(occupy + wire_.propagation + extra,
              [this, p = std::move(p), duplicate]() mutable {
                const bool lost = loss_hook_ && loss_hook_(p.frame);
                if (lost) {
                  ++dropped_;
                  if (auto* tr = sim_->tracer()) {
                    const Payload& pl = p.frame.payload;
                    // Classification reads at most the first 49 bytes (FLIP
                    // header + inner type fields); copy a prefix instead of
                    // flattening a fragmented payload.
                    std::array<std::uint8_t, 64> head;
                    const std::size_t n = pl.copy_prefix(head.data(), head.size());
                    tr->record(trace::kNoNode, trace::EventKind::kFrameDrop,
                               p.frame.id, pl.size(), pack_src_dst(p.frame),
                               (tr->classify(head.data(), n) << 1) | 0);
                  }
                } else {
                  const int copies = duplicate ? 2 : 1;
                  for (int i = 0; i < copies; ++i) {
                    for (Attachment* a : attachments_) {
                      if (a != p.originator) a->on_frame(p.frame);
                    }
                  }
                }
              });
  // The medium frees up after the occupy time (propagation overlaps the next
  // transmission on real Ethernet once the carrier drops).
  sim_->after(occupy, [this] { start_next(); });
}

double Segment::utilization() const noexcept {
  const sim::Time now = sim_->now();
  if (now <= 0) return 0.0;
  return static_cast<double>(busy_time_) / static_cast<double>(now);
}

}  // namespace net
