// The delivery seam between the switch and the event engine(s).
//
// Historically net::Switch scheduled forwarded frames directly into the one
// global simulator — a layering smell that became a blocker the moment
// segments could live on different partition engines: a callback running on
// partition A's worker must never touch partition B's heap. DeliveryPort
// abstracts "enqueue this frame on that segment at time t" so single- and
// multi-partition delivery share the one call site in Switch::emit():
//
//   * DirectDeliveryPort schedules straight into the destination segment's
//     engine — in a single-partition world that is the same simulator the
//     switch always used, with identical (time, seq) ordering.
//   * PartitionedDeliveryPort routes same-partition frames directly and
//     turns cross-partition frames into time-stamped mailbox messages
//     (sim::PartitionedSimulator::post), which the driver merges into the
//     destination heap at the next lookahead barrier.
#pragma once

#include <utility>

#include "net/frame.h"
#include "net/segment.h"
#include "sim/partition.h"
#include "sim/time.h"

namespace net {

class DeliveryPort {
 public:
  virtual ~DeliveryPort() = default;

  /// Enqueue `frame` for transmission on `to` at absolute time `t`.
  /// `originator` is the egress attachment that must not hear its own copy
  /// back (loop prevention). `from` identifies the ingress segment — the
  /// partitioned implementation reads both partition ids off the segments.
  virtual void deliver(Segment& from, Segment& to, sim::Time t, Frame frame,
                       const Attachment* originator) = 0;
};

/// Single-engine delivery: schedule into the destination segment's simulator,
/// coalescing same-tick frames per destination (Segment::enqueue_delivery)
/// into one dispatched event.
class DirectDeliveryPort final : public DeliveryPort {
 public:
  void deliver(Segment& /*from*/, Segment& to, sim::Time t, Frame frame,
               const Attachment* originator) override {
    to.enqueue_delivery(t, std::move(frame), originator);
  }
};

/// Partitioned delivery: cross-partition frames become mailbox messages and
/// never schedule into a foreign heap; same-partition frames take the
/// coalescing path of the single-engine port, so the intra-partition hot path
/// batches exactly like the mailboxes batch across the barrier.
class PartitionedDeliveryPort final : public DeliveryPort {
 public:
  explicit PartitionedDeliveryPort(sim::PartitionedSimulator& psim)
      : psim_(&psim) {}

  void deliver(Segment& from, Segment& to, sim::Time t, Frame frame,
               const Attachment* originator) override {
    if (from.partition() == to.partition()) {
      to.enqueue_delivery(t, std::move(frame), originator);
      return;
    }
    psim_->post(from.partition(), to.partition(), t,
                sim::EventFn([&to, frame = std::move(frame),
                              originator]() mutable {
                  to.transmit(std::move(frame), originator);
                }));
  }

 private:
  sim::PartitionedSimulator* psim_;
};

}  // namespace net
