#include "net/nic.h"

#include <array>

#include "trace/tracer.h"

namespace net {

void Nic::on_frame(const Frame& frame) {
  const bool for_me = frame.dst == mac_ || frame.dst == kBroadcast ||
                      (is_multicast(frame.dst) && groups_.contains(frame.dst));
  if (!for_me) return;
  const std::uint64_t src_dst =
      (static_cast<std::uint64_t>(frame.src) << 32) | frame.dst;
  if (rx_drop_hook_ && rx_drop_hook_(frame)) {
    ++rx_dropped_;
    if (auto* tr = segment_->simulator().tracer()) {
      // Classification reads at most the first 49 bytes; copy a prefix
      // instead of flattening a fragmented payload.
      std::array<std::uint8_t, 64> head;
      const std::size_t n = frame.payload.copy_prefix(head.data(), head.size());
      tr->record(mac_ - 1, trace::EventKind::kFrameDrop, frame.id,
                 frame.payload.size(), src_dst,
                 (tr->classify(head.data(), n) << 1) | 1);
    }
    return;
  }
  ++rx_frames_;
  if (auto* tr = segment_->simulator().tracer()) {
    tr->record(mac_ - 1, trace::EventKind::kInterrupt, frame.id,
               frame.payload.size(), src_dst);
  }
  if (rx_handler_) rx_handler_(frame);
}

}  // namespace net
