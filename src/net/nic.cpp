#include "net/nic.h"

namespace net {

void Nic::on_frame(const Frame& frame) {
  const bool for_me = frame.dst == mac_ || frame.dst == kBroadcast ||
                      (is_multicast(frame.dst) && groups_.contains(frame.dst));
  if (!for_me) return;
  if (rx_drop_hook_ && rx_drop_hook_(frame)) {
    ++rx_dropped_;
    return;
  }
  ++rx_frames_;
  if (rx_handler_) rx_handler_(frame);
}

}  // namespace net
