// Topology builder for the paper's processor pool.
//
// Nodes are added one at a time; every `nodes_per_segment` nodes a fresh
// segment is created and connected to the central switch. With 8 nodes per
// segment (the paper's pool layout) a 32-node run spans four segments.
//
// Partitioned construction: built on a sim::PartitionedSimulator, segments
// are dealt round-robin across partitions (segment s lives on engine
// s % partitions) and the switch routes cross-partition frames through a
// PartitionedDeliveryPort. The conservative lookahead is derived from the
// topology — the minimum latency of any cross-partition path, which with a
// single store-and-forward switch is its forward latency — and pushed into
// the driver as segments appear.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/delivery.h"
#include "net/frame.h"
#include "net/nic.h"
#include "net/segment.h"
#include "net/switch.h"
#include "sim/partition.h"
#include "sim/simulator.h"

namespace net {

using NodeId = std::uint32_t;

struct NetworkConfig {
  WireParams wire;
  std::size_t nodes_per_segment = 8;
  sim::Time switch_forward_latency = sim::usec(10);
};

class Network {
 public:
  Network(sim::Simulator& s, NetworkConfig config = {});
  /// Partitioned topology: segments map round-robin onto the driver's
  /// engines. Requires switch_forward_latency > 0 when the driver has more
  /// than one partition (it is the lookahead source).
  Network(sim::PartitionedSimulator& ps, NetworkConfig config = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Create a node (a NIC on the appropriate segment). Node ids are dense
  /// from 0; station addresses are id + 1 (0 is reserved as "no address").
  NodeId add_node();

  [[nodiscard]] Nic& nic(NodeId id);
  [[nodiscard]] const Nic& nic(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nics_.size(); }

  [[nodiscard]] Segment& segment(std::size_t index) { return *segments_.at(index); }
  [[nodiscard]] std::size_t segment_count() const noexcept { return segments_.size(); }
  [[nodiscard]] Switch& backbone() noexcept { return switch_; }

  [[nodiscard]] static MacAddr mac_of(NodeId id) noexcept { return id + 1; }

  /// Aggregate bytes carried across all segments (throughput accounting).
  [[nodiscard]] std::uint64_t total_bytes_carried() const noexcept;

  /// The partition a node's home segment lives in (0 without partitioning).
  [[nodiscard]] unsigned partition_of(NodeId id) const;
  /// The engine a node's events must be scheduled on: its partition's.
  [[nodiscard]] sim::Simulator& node_simulator(NodeId id);

  /// Minimum latency of any cross-partition path in the current topology, or
  /// sim::Simulator::kNever when no segment pair crosses a partition
  /// boundary. This is the conservative lookahead the parallel driver runs
  /// with: a frame leaving one partition reaches another no sooner than this
  /// many nanoseconds after the event that sent it.
  [[nodiscard]] sim::Time cross_partition_lookahead() const noexcept;

  [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }
  /// The parallel driver, or nullptr for a single-engine network.
  [[nodiscard]] sim::PartitionedSimulator* partitioned() noexcept {
    return psim_;
  }
  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }

 private:
  sim::Simulator* sim_;
  sim::PartitionedSimulator* psim_ = nullptr;
  NetworkConfig config_;
  Switch switch_;
  std::unique_ptr<PartitionedDeliveryPort> partitioned_delivery_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace net
