// Topology builder for the paper's processor pool.
//
// Nodes are added one at a time; every `nodes_per_segment` nodes a fresh
// segment is created and connected to the central switch. With 8 nodes per
// segment (the paper's pool layout) a 32-node run spans four segments.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/frame.h"
#include "net/nic.h"
#include "net/segment.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace net {

using NodeId = std::uint32_t;

struct NetworkConfig {
  WireParams wire;
  std::size_t nodes_per_segment = 8;
  sim::Time switch_forward_latency = sim::usec(10);
};

class Network {
 public:
  Network(sim::Simulator& s, NetworkConfig config = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Create a node (a NIC on the appropriate segment). Node ids are dense
  /// from 0; station addresses are id + 1 (0 is reserved as "no address").
  NodeId add_node();

  [[nodiscard]] Nic& nic(NodeId id);
  [[nodiscard]] const Nic& nic(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nics_.size(); }

  [[nodiscard]] Segment& segment(std::size_t index) { return *segments_.at(index); }
  [[nodiscard]] std::size_t segment_count() const noexcept { return segments_.size(); }
  [[nodiscard]] Switch& backbone() noexcept { return switch_; }

  [[nodiscard]] static MacAddr mac_of(NodeId id) noexcept { return id + 1; }

  /// Aggregate bytes carried across all segments (throughput accounting).
  [[nodiscard]] std::uint64_t total_bytes_carried() const noexcept;

  [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }
  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }

 private:
  sim::Simulator* sim_;
  NetworkConfig config_;
  Switch switch_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace net
