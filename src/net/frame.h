// Ethernet frames and addressing.
#pragma once

#include <cstdint>

#include "net/buffer.h"
#include "sim/time.h"

namespace net {

/// A link-layer address. Unicast addresses are small positive integers
/// assigned by the Network; multicast group addresses have the high bit set;
/// kBroadcast reaches every station.
using MacAddr = std::uint32_t;

inline constexpr MacAddr kNoMac = 0;
inline constexpr MacAddr kBroadcast = 0xFFFF'FFFF;
inline constexpr MacAddr kMulticastBit = 0x8000'0000;

[[nodiscard]] constexpr bool is_multicast(MacAddr a) noexcept {
  return a != kBroadcast && (a & kMulticastBit) != 0;
}
[[nodiscard]] constexpr bool is_unicast(MacAddr a) noexcept {
  return a != kNoMac && a != kBroadcast && (a & kMulticastBit) == 0;
}
[[nodiscard]] constexpr MacAddr multicast_group(std::uint32_t group_id) noexcept {
  return kMulticastBit | group_id;
}

/// One Ethernet frame. `payload` is what the network layer handed down
/// (FLIP header + fragment data); the physical overhead (preamble, MAC
/// header, CRC, interframe gap) is added by the wire-time model.
struct Frame {
  MacAddr src = kNoMac;
  MacAddr dst = kNoMac;
  Payload payload;
  std::uint64_t id = 0;  // globally unique, for tracing and loss injection
};

/// Physical-layer parameters. Defaults model the paper's 10 Mbit/s Ethernet.
struct WireParams {
  /// 10 Mbit/s = 1.25 MB/s = 0.8 us/byte = 800 ns/byte.
  std::int64_t ns_per_byte = 800;
  /// Preamble(8) + MAC header(14) + CRC(4) + interframe gap(12 byte-times).
  std::size_t frame_overhead = 38;
  /// Minimum MAC payload (padding applies below this).
  std::size_t min_payload = 46;
  /// Maximum MAC payload: the 1500-byte fragmentation limit of §4.1.
  std::size_t mtu = 1500;
  /// Signal propagation + receiver latch time per segment.
  sim::Time propagation = sim::usec(2);
};

/// Time the medium is occupied transmitting `payload_bytes` of MAC payload.
[[nodiscard]] constexpr sim::Time wire_time(const WireParams& wp,
                                            std::size_t payload_bytes) noexcept {
  const std::size_t padded =
      payload_bytes < wp.min_payload ? wp.min_payload : payload_bytes;
  return static_cast<sim::Time>(padded + wp.frame_overhead) * wp.ns_per_byte;
}

}  // namespace net
