// A store-and-forward Ethernet switch joining segments.
//
// The paper's processor pool is "several Ethernet segments connected by an
// Ethernet switch", eight processors per segment. Unicast frames whose
// destination is on the ingress segment are not forwarded; broadcast and
// multicast frames flood every other segment (each forwarded copy consumes
// wire time on its egress segment).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/delivery.h"
#include "net/frame.h"
#include "net/segment.h"
#include "sim/simulator.h"

namespace net {

class Switch {
 public:
  explicit Switch(sim::Time forward_latency)
      : forward_latency_(forward_latency) {}
  /// Compatibility constructor: forwarding is scheduled through the delivery
  /// port on the *destination* segment's engine, so the switch itself no
  /// longer holds a simulator.
  Switch(sim::Simulator& /*s*/, sim::Time forward_latency)
      : Switch(forward_latency) {}

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Connect a segment as a switch port.
  void connect(Segment& segment);

  /// Register which segment a station lives on (static topology; no
  /// dynamic MAC learning needed for a fixed pool).
  void learn(MacAddr mac, Segment& segment) { where_[mac] = &segment; }

  /// Route forwarded frames through `port` instead of the default direct
  /// scheduling. The port must outlive the switch; topology must be frozen
  /// before the simulation runs (the pointer is not synchronized).
  void set_delivery_port(DeliveryPort& port) noexcept { delivery_ = &port; }

  [[nodiscard]] sim::Time forward_latency() const noexcept {
    return forward_latency_;
  }

  [[nodiscard]] std::uint64_t frames_forwarded() const noexcept {
    return forwarded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t port_count() const noexcept { return ports_.size(); }

 private:
  class Port final : public Attachment {
   public:
    Port(Switch& owner, Segment& segment) : owner_(&owner), segment_(&segment) {}
    void on_frame(const Frame& frame) override { owner_->forward(*segment_, frame); }
    [[nodiscard]] Segment& segment() noexcept { return *segment_; }

   private:
    Switch* owner_;
    Segment* segment_;
  };

  void forward(Segment& from, const Frame& frame);
  void emit(Segment& from, Segment& to, Frame frame);

  sim::Time forward_latency_;
  DirectDeliveryPort direct_;
  DeliveryPort* delivery_ = &direct_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::unordered_map<MacAddr, Segment*> where_;
  // Ports on different partitions forward concurrently within a window; the
  // counter is the only mutable shared state on that path.
  std::atomic<std::uint64_t> forwarded_{0};
};

}  // namespace net
