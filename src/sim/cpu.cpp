#include "sim/cpu.h"

#include "sim/require.h"

namespace sim {

// NOTE: every awaiter in this codebase has a user-declared constructor. GCC
// 12 double-destroys *aggregate* awaiter temporaries in co_await expressions
// (observed as a use-after-free of members with nontrivial destructors);
// a user-declared constructor makes the type a non-aggregate and avoids the
// miscompile. See tests/sim/co_test.cpp (AwaiterLifetime).
struct Cpu::RunAwaiter {
  RunAwaiter(Cpu& c, std::shared_ptr<Job> j) : cpu(c), job(std::move(j)) {}
  Cpu& cpu;
  std::shared_ptr<Job> job;

  bool await_ready() const noexcept { return job->remaining <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    job->waiter = h;
    cpu.submit(job);
  }
  void await_resume() const noexcept {}
};

Co<void> Cpu::run(Time duration, Prio prio,
                  std::uint64_t* thread_preemptions_out) {
  auto job = std::make_shared<Job>();
  job->remaining = duration;
  job->prio = prio;
  std::shared_ptr<Job> observer = job;
  co_await RunAwaiter(*this, std::move(job));
  if (thread_preemptions_out != nullptr) {
    *thread_preemptions_out = observer->preempted_by_thread;
  }
}

void Cpu::submit(const std::shared_ptr<Job>& job) {
  if (active_ == nullptr) {
    start(job);
    return;
  }
  if (static_cast<int>(job->prio) < static_cast<int>(active_->prio)) {
    // Preempt: bank the elapsed slice, park the current job at the front of
    // its priority class, and run the newcomer.
    const Time elapsed = sim_->now() - active_since_;
    busy_[static_cast<std::size_t>(active_->prio)] += elapsed;
    active_->remaining -= elapsed;
    if (active_->remaining < 0) active_->remaining = 0;
    completion_.cancel();  // the preempted job will get a fresh finish event
    active_->parked = true;
    active_->park_mark = thread_jobs_started_;
    ready_[static_cast<std::size_t>(active_->prio)].push_front(active_);
    ++preemptions_;
    start(job);
    return;
  }
  ready_[static_cast<std::size_t>(job->prio)].push_back(job);
}

void Cpu::start(const std::shared_ptr<Job>& job) {
  if (job->prio == Prio::kKernel || job->prio == Prio::kUserHigh) {
    ++thread_jobs_started_;
  }
  if (job->parked) {
    job->parked = false;
    // One suspend/resume episode; it involved a genuine thread switch only
    // if thread-level work ran while this job was parked.
    if (thread_jobs_started_ > job->park_mark) ++job->preempted_by_thread;
  }
  active_ = job;
  active_since_ = sim_->now();
  completion_ = sim_->after(job->remaining, [this] { finish(); });
}

void Cpu::finish() {
  require(active_ != nullptr, "Cpu::finish: no active job");
  busy_[static_cast<std::size_t>(active_->prio)] += sim_->now() - active_since_;
  const std::coroutine_handle<> waiter = active_->waiter;
  active_ = nullptr;
  ++completed_;
  dispatch_next();
  // Resume after dispatching so a newly submitted job from the resumed
  // activity sees a consistent scheduler state.
  waiter.resume();
}

void Cpu::dispatch_next() {
  for (auto& queue : ready_) {
    if (!queue.empty()) {
      auto job = queue.front();
      queue.pop_front();
      start(job);
      return;
    }
  }
}

}  // namespace sim
