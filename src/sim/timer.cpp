#include "sim/timer.h"

#include <utility>

namespace sim {

Timer::Timer(Simulator& s) : sim_(&s), state_(std::make_shared<State>()) {}

void Timer::schedule(Time delay, std::function<void()> fn) {
  const std::uint64_t gen = ++state_->generation;
  state_->pending = true;
  state_->fn = std::move(fn);
  sim_->after(delay, [st = state_, gen] {
    if (gen != st->generation || !st->pending) return;
    st->pending = false;
    auto fire = std::move(st->fn);
    st->fn = nullptr;
    fire();
  });
}

void Timer::cancel() {
  ++state_->generation;
  state_->pending = false;
  state_->fn = nullptr;
}

bool Timer::pending() const noexcept { return state_->pending; }

}  // namespace sim
