// The discrete-event simulation core.
//
// A Simulator owns a time-ordered event queue. Events with equal timestamps
// execute in submission order (a monotonically increasing sequence number
// breaks ties), which together with the seeded Rng makes every run fully
// deterministic.
//
// Engine internals (see DESIGN.md for the full story):
//
//  * Event records live in a slab threaded with a free list, so steady-state
//    scheduling recycles slots instead of allocating. The slab is split for
//    locality: per-slot bookkeeping (generation, heap position, free link) is
//    a dense 12-byte POD array that heap fixups touch constantly and that
//    stays cache-resident, while the fat callables live in chunked storage
//    with stable addresses — growing the slab never moves an existing
//    callable, and a callback can be invoked in place while new events are
//    scheduled under it.
//  * Callbacks are stored in EventFn, a move-only callable with an 88-byte
//    inline buffer: every closure in the hot paths (frame delivery, timer
//    wrappers, coroutine resumption) fits inline, so the common path never
//    touches the heap.
//  * Ordering is a 4-ary implicit heap of 24-byte (time, seq, slot) entries.
//    Each slot records its heap position, so cancel() and reschedule() are
//    eager O(log n) heap fixups — no tombstones, pending() counts only live
//    events, and a drained queue really is empty.
//  * Dispatch is batched: once the heap is big enough, the run loop drains it
//    wholesale into a sorted run buffer and walks that buffer linearly,
//    two-way merging against whatever the callbacks schedule back into the
//    (now small) live heap. Sequence numbers are globally monotone, so every
//    event scheduled *during* the drain orders after the drained entries it
//    ties with, and the merge reproduces exact pop-per-event order. For the
//    common monotone schedule pattern the heap array is already sorted and
//    the drain is a single O(n) is_sorted check plus a pointer swap.
//  * at()/after() return an EventHandle: a weak, copyable reference carrying
//    the slot index and a generation number. The generation bumps when the
//    slot is freed, so a stale handle's cancel()/reschedule() is a safe no-op
//    (including self-cancellation from inside the running callback: the slot
//    leaves the heap *before* the callback is invoked).
//
// Determinism contract: scheduling consumes one sequence number per at() or
// after() call, reschedule() consumes a fresh one (it is equivalent to
// cancel-then-schedule), and cancel() consumes none. Equal-timestamp events
// fire in sequence order. A refactor of this engine must reproduce the traces
// in tests/trace/fixtures/engine_traces.txt byte for byte.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/require.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace metrics {
class Metrics;
}  // namespace metrics

namespace trace {
class Tracer;
}  // namespace trace

namespace sim {

/// Host-side hook invoked once per dispatched event, after `now()` has
/// advanced but before the event's callback runs. Observers are pure
/// observation: they must never schedule events, draw from the Rng, or
/// otherwise perturb the simulation (the committed trace fixtures are the
/// proof obligation, same as for Tracer and Metrics). The time-series
/// sampler (metrics::SeriesSampler) is the canonical implementation.
class StepObserver {
 public:
  virtual void on_step(Time now) = 0;

 protected:
  ~StepObserver() = default;
};

/// A move-only type-erased `void()` callable with a small-buffer optimization
/// sized for the engine's hot-path closures (an MTU-sized frame capture plus
/// bookkeeping). Callables that fit 88 bytes, are nothrow-move-constructible,
/// and need no extended alignment are stored inline; anything else is boxed on
/// the heap. Unlike std::function it never copies and never allocates for the
/// common case.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 88;

  EventFn() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    construct<F, D>(std::forward<F>(fn));
  }

  EventFn(EventFn&& other) noexcept { steal(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  /// Destroys any current callable and builds `fn` directly in the buffer.
  /// The engine's schedule path constructs closures in their slab slot with
  /// this, skipping the type-erased move that construct-then-assign would pay.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& fn) {
    reset();
    construct<F, D>(std::forward<F>(fn));
  }

  /// emplace() without the destroy-first test, for callers that know *this is
  /// empty. The engine's slab recycles slots only after reset() (dispatch,
  /// cancel), so its schedule path skips the dead branch.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace_empty(F&& fn) {
    construct<F, D>(std::forward<F>(fn));
  }

  /// Destroys the held callable (if any), leaving the EventFn empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when destroying the held callable is a no-op (trivially
  /// destructible capture, stored inline). Precondition: non-empty.
  [[nodiscard]] bool trivially_destructible() const noexcept {
    return ops_->destroy == nullptr;
  }

  /// Dispatch fast lane for trivially destructible callables: empties the
  /// EventFn *first* (legal exactly because destruction is a no-op — there is
  /// nothing to unwind if the callable throws), then invokes the closure
  /// still sitting in the buffer. Skips the destroy-op test and the post-call
  /// ops_ reload that reset() would pay. Precondition: trivially_destructible().
  void invoke_trivial() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke(buf_);
  }

  /// Whether a callable of type D would be stored inline (no allocation).
  template <typename D>
  static constexpr bool fits_inline() noexcept {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-constructs *dst from *src and leaves *src destroyed.
    void (*relocate)(void* dst, void* src) noexcept;
    // nullptr when destruction is a no-op (trivially destructible captures),
    // so the dispatch loop skips the indirect call entirely.
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static void inline_invoke(void* self) {
    (*static_cast<D*>(self))();
  }
  template <typename D>
  static void inline_relocate(void* dst, void* src) noexcept {
    D* from = static_cast<D*>(src);
    ::new (dst) D(std::move(*from));
    from->~D();
  }
  template <typename D>
  static void inline_destroy(void* self) noexcept {
    static_cast<D*>(self)->~D();
  }
  template <typename D>
  static void boxed_invoke(void* self) {
    (**static_cast<D**>(self))();
  }
  template <typename D>
  static void boxed_relocate(void* dst, void* src) noexcept {
    ::new (dst) D*(*static_cast<D**>(src));
  }
  template <typename D>
  static void boxed_destroy(void* self) noexcept {
    delete *static_cast<D**>(self);
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      &inline_invoke<D>,
      &inline_relocate<D>,
      std::is_trivially_destructible_v<D> ? nullptr : &inline_destroy<D>,
  };

  template <typename D>
  static constexpr Ops kBoxedOps = {
      &boxed_invoke<D>,
      &boxed_relocate<D>,
      &boxed_destroy<D>,
  };

  template <typename F, typename D>
  void construct(F&& fn) {
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kBoxedOps<D>;
    }
  }

  void steal(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class Simulator;

/// A weak, copyable reference to a scheduled event. Default-constructed
/// handles (and handles whose event has fired, been cancelled, or been
/// superseded by a slot reuse) are inert: active() is false and
/// cancel()/reschedule() do nothing and return false. This replaces the
/// per-layer "generation counter + settled flag" tombstone idioms.
class EventHandle {
 public:
  EventHandle() noexcept = default;

  /// True while the referenced event is still queued.
  [[nodiscard]] bool active() const noexcept;

  /// Removes the event from the queue without running it. Returns true if
  /// this call cancelled a live event, false if it had already fired, been
  /// cancelled, or the handle is empty.
  bool cancel() noexcept;

  /// Moves a still-queued event to `now() + delay`, consuming a fresh
  /// sequence number (identical ordering semantics to cancel-then-schedule).
  /// Returns false (scheduling nothing) if the event is no longer live.
  bool reschedule(Time delay);

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t idx, std::uint32_t gen) noexcept
      : sim_(sim), idx_(idx), gen_(gen) {}

  Simulator* sim_ = nullptr;
  std::uint32_t idx_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 42);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (clamped to `now()` if in the past).
  template <typename F>
  EventHandle at(Time t, F&& fn) {
    reject_empty(fn);
    const std::uint32_t idx = alloc_slot();
    fn_slot(idx).emplace_empty(std::forward<F>(fn));
    return commit(t < now_ ? now_ : t, idx);
  }

  /// Schedule `fn` after `delay` (clamped to zero if negative). Throws
  /// SimError if `now() + delay` would overflow simulated time.
  template <typename F>
  EventHandle after(Time delay, F&& fn) {
    reject_empty(fn);
    const Time t = after_time(delay);  // may throw; nothing allocated yet
    const std::uint32_t idx = alloc_slot();
    fn_slot(idx).emplace_empty(std::forward<F>(fn));
    return commit(t, idx);
  }

  /// Schedule an already-type-erased callable at absolute time `t` (clamped
  /// to `now()` if in the past). Identical ordering semantics to at(): one
  /// fresh sequence number per call. This is the cross-partition delivery
  /// path of the parallel driver (sim/partition.h), where the closure was
  /// type-erased on another partition's engine before crossing the boundary.
  EventHandle schedule_fn(Time t, EventFn&& fn);

  /// Execute the next event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains or `max_events` have executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = std::numeric_limits<std::size_t>::max());

  /// Run all events with timestamp <= t, then advance `now()` to t.
  void run_until(Time t);

  /// Run all events with timestamp strictly below `t`, leaving `now()` at the
  /// last executed event — it never advances to `t` itself. This is one
  /// conservative lookahead window of the parallel driver: the bound is
  /// exclusive so an event at exactly the horizon waits for the barrier's
  /// cross-partition deliveries, and `now()` is left untouched so a
  /// partitioned run finishes with the same clock a plain run() would.
  /// Returns the number of events executed.
  std::size_t run_before(Time t);

  /// Advance `now()` to `t` if `t` is ahead; runs nothing. Closes a
  /// partitioned run_until() horizon with single-engine run_until semantics.
  void advance_to(Time t) noexcept { now_ = std::max(now_, t); }

  /// Run all events within the next `delay` of simulated time.
  void run_for(Time delay);

  /// Number of pending events. Cancelled events leave the queue eagerly
  /// (from the heap or the run buffer alike), so they are never counted.
  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() + buffered_live_;
  }

  /// Timestamp of the earliest pending event, or kNever when the queue is
  /// empty. The partitioned driver's window placement reads this to pick the
  /// global minimum across engines; it must see run-buffer leftovers from the
  /// previous window, so both stores are consulted.
  static constexpr Time kNever = std::numeric_limits<Time>::max();
  [[nodiscard]] Time next_event_time() const noexcept {
    Time t = heap_.empty() ? kNever : heap_[0].t;
    // The buffer is sorted, so the first live entry is the buffered minimum.
    for (std::size_t i = run_pos_; i < run_buf_.size(); ++i) {
      if (meta_[run_buf_[i].idx].heap_pos == kInBuffer) {
        return std::min(t, run_buf_[i].t);
      }
    }
    return t;
  }

  /// The sequence number the next at()/after()/schedule_fn() call will
  /// consume. The delivery-coalescing layer (net/delivery.h) uses this as its
  /// exactness guard: a pending batch may only absorb another same-tick frame
  /// if no event whatsoever was scheduled on this engine in between —
  /// otherwise the batched schedule would be distinguishable from the
  /// one-event-per-frame reference.
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Total events cancelled (via EventHandle::cancel) since construction.
  [[nodiscard]] std::uint64_t events_cancelled() const noexcept { return cancelled_; }

  /// The simulation-wide deterministic random stream.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// The attached event tracer, or nullptr (the common case). Instrumented
  /// sites do `if (auto* tr = sim.tracer()) tr->record(...)`, so a disabled
  /// tracer costs one pointer test. Managed by trace::Tracer's ctor/dtor.
  [[nodiscard]] trace::Tracer* tracer() const noexcept { return tracer_; }
  void set_tracer(trace::Tracer* t) noexcept { tracer_ = t; }

  /// The attached metrics hub, or nullptr (same contract as the tracer:
  /// recording is pure observation and never perturbs the simulation).
  /// Managed by metrics::Metrics's ctor/dtor.
  [[nodiscard]] metrics::Metrics* metrics() const noexcept { return metrics_; }
  void set_metrics(metrics::Metrics* m) noexcept { metrics_ = m; }

  /// The attached per-step observer, or nullptr (the common case). Called
  /// once per dispatched event after `now()` advances; costs one pointer test
  /// when disabled. Same observation-only contract as tracer()/metrics().
  [[nodiscard]] StepObserver* step_observer() const noexcept {
    return step_observer_;
  }
  void set_step_observer(StepObserver* o) noexcept { step_observer_ = o; }

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNoPos = std::numeric_limits<std::uint32_t>::max();
  // `heap_pos` sentinel for "queued, but in the sorted run buffer rather than
  // the heap". Real heap positions never reach it: the slab is capped below
  // kNoPos slots, so positions top out at kNoPos - 2.
  static constexpr std::uint32_t kInBuffer = kNoPos - 1;
  // Heaps smaller than this are dispatched pop-per-event: a sort-and-drain of
  // a handful of entries costs more than the sift work it saves.
  static constexpr std::size_t kBatchMin = 32;

  // Callables live in fixed-size chunks so slot addresses are stable: growing
  // the slab never relocates an existing EventFn, and a callback can safely be
  // invoked in place even while it schedules new events underneath itself.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  // Per-slot bookkeeping, kept separate from the fat callables: heap fixups
  // write `heap_pos` backlinks constantly, and a dense 12-byte POD array keeps
  // those writes cache-resident. `gen` increments every time the slot is
  // freed, so an EventHandle minted for a previous occupant can never touch
  // the next one; `heap_pos` is the backlink into heap_ while the event is
  // queued (kNoPos otherwise); `next_free` threads the free list.
  struct Meta {
    std::uint32_t gen = 0;
    std::uint32_t heap_pos = kNoPos;
    std::uint32_t next_free = kNoPos;
  };

  // 4-ary implicit heap entry: the comparison key (t, seq) is stored here so
  // sift operations never chase the slab.
  struct HeapEntry {
    Time t;
    std::uint64_t seq;
    std::uint32_t idx;
  };

  template <typename F>
  static void reject_empty(const F& fn) {
    // std::function, function pointers, and similar nullable callables are
    // bool-testable; reject the empty ones up front like the old engine did.
    // (Lambdas with captures are not bool-constructible and skip the test.)
    if constexpr (std::is_constructible_v<bool, const F&>) {
      require(static_cast<bool>(fn), "Simulator::at: empty callable");
    }
  }

  [[nodiscard]] Time after_time(Time delay) const;

  // Inline on the schedule fast path: the common monotone pattern (each new
  // event at or beyond everything pending) parks the entry as a heap leaf
  // with a single parent comparison; only out-of-order inserts pay the
  // out-of-line sift.
  EventHandle commit(Time t, std::uint32_t idx) {
    const std::size_t pos = heap_.size();
    heap_.push_back(HeapEntry{t, next_seq_++, idx});
    if (pos == 0 || !before(heap_[pos], heap_[(pos - 1) / 4])) {
      meta_[idx].heap_pos = static_cast<std::uint32_t>(pos);
    } else {
      sift_up(pos);  // writes the final backlink for idx
    }
    return EventHandle(this, idx, meta_[idx].gen);
  }
  [[nodiscard]] bool is_live(std::uint32_t idx, std::uint32_t gen) const noexcept;
  bool cancel_event(std::uint32_t idx, std::uint32_t gen) noexcept;
  bool reschedule_event(std::uint32_t idx, std::uint32_t gen, Time delay);

  static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void remove_heap_entry(std::size_t pos);

  /// Drain the whole heap into the sorted run buffer. Only called when the
  /// buffer is exhausted, so no live buffered entry is ever overwritten.
  void fill_run_buffer();
  /// First live buffered entry, advancing past entries cancelled (or
  /// rescheduled back into the heap) while they waited; nullptr when the
  /// buffer is exhausted.
  [[nodiscard]] const HeapEntry* peek_buffered() noexcept;
  /// Dispatch the next event if its timestamp passes the bound (t > limit
  /// stops an inclusive run, t >= limit an exclusive one), two-way merging
  /// the run buffer against the live heap by (t, seq). This is the one
  /// dispatch path: step()/run()/run_until()/run_before() all funnel here.
  bool step_limit(Time limit, bool exclusive);
  /// now_/observer/invoke/free for one event already removed from its queue.
  void execute(Time t, std::uint32_t idx);

  // Free-list pop stays inline on the schedule fast path; growing the slab
  // (new chunk, metadata reserve) is the cold out-of-line branch.
  std::uint32_t alloc_slot() {
    if (free_head_ != kNoPos) {
      const std::uint32_t idx = free_head_;
      free_head_ = meta_[idx].next_free;
      meta_[idx].next_free = kNoPos;
      return idx;
    }
    return grow_slot();
  }
  std::uint32_t grow_slot();
  void free_slot(std::uint32_t idx) noexcept;

  [[nodiscard]] EventFn& fn_slot(std::uint32_t idx) noexcept {
    return fn_chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  std::vector<HeapEntry> heap_;
  // The sorted run buffer: drained heap entries awaiting dispatch, consumed
  // from run_pos_ forward. buffered_live_ counts entries at or beyond
  // run_pos_ whose slot still has heap_pos == kInBuffer (cancel and
  // reschedule leave dead entries behind; dispatch skips them).
  std::vector<HeapEntry> run_buf_;
  std::size_t run_pos_ = 0;
  std::size_t buffered_live_ = 0;
  std::vector<Meta> meta_;
  std::vector<std::unique_ptr<EventFn[]>> fn_chunks_;
  std::uint32_t free_head_ = kNoPos;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  Rng rng_;
  trace::Tracer* tracer_ = nullptr;
  metrics::Metrics* metrics_ = nullptr;
  StepObserver* step_observer_ = nullptr;
};

inline bool EventHandle::active() const noexcept {
  return sim_ != nullptr && sim_->is_live(idx_, gen_);
}

inline bool EventHandle::cancel() noexcept {
  return sim_ != nullptr && sim_->cancel_event(idx_, gen_);
}

inline bool EventHandle::reschedule(Time delay) {
  return sim_ != nullptr && sim_->reschedule_event(idx_, gen_, delay);
}

}  // namespace sim
