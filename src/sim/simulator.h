// The discrete-event simulation core.
//
// A Simulator owns a time-ordered event queue. Events with equal timestamps
// execute in submission order (a monotonically increasing sequence number
// breaks ties), which together with the seeded Rng makes every run fully
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace metrics {
class Metrics;
}  // namespace metrics

namespace trace {
class Tracer;
}  // namespace trace

namespace sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 42);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (clamped to `now()` if in the past).
  void at(Time t, std::function<void()> fn);

  /// Schedule `fn` after `delay` (clamped to zero if negative).
  void after(Time delay, std::function<void()> fn);

  /// Execute the next event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains or `max_events` have executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = std::numeric_limits<std::size_t>::max());

  /// Run all events with timestamp <= t, then advance `now()` to t.
  void run_until(Time t);

  /// Run all events within the next `delay` of simulated time.
  void run_for(Time delay);

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// The simulation-wide deterministic random stream.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// The attached event tracer, or nullptr (the common case). Instrumented
  /// sites do `if (auto* tr = sim.tracer()) tr->record(...)`, so a disabled
  /// tracer costs one pointer test. Managed by trace::Tracer's ctor/dtor.
  [[nodiscard]] trace::Tracer* tracer() const noexcept { return tracer_; }
  void set_tracer(trace::Tracer* t) noexcept { tracer_ = t; }

  /// The attached metrics hub, or nullptr (same contract as the tracer:
  /// recording is pure observation and never perturbs the simulation).
  /// Managed by metrics::Metrics's ctor/dtor.
  [[nodiscard]] metrics::Metrics* metrics() const noexcept { return metrics_; }
  void set_metrics(metrics::Metrics* m) noexcept { metrics_ = m; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  Rng rng_;
  trace::Tracer* tracer_ = nullptr;
  metrics::Metrics* metrics_ = nullptr;
};

}  // namespace sim
