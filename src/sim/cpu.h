// A preemptive, priority-scheduled CPU resource.
//
// Every activity that consumes processor time on a simulated node — interrupt
// handlers, kernel protocol code, daemon threads, application compute — calls
// `co_await cpu.run(duration, prio)`. Only one job runs at a time; a job of
// strictly higher priority (lower Prio value) preempts the running job, whose
// remaining time is resumed later. Jobs of equal priority run FIFO and never
// preempt each other (Amoeba schedules internal kernel threads
// non-preemptively; interrupts always win).
//
// The Cpu charges no switching overhead by itself: the protocol stacks charge
// each mechanism (context switch, trap, crossing) explicitly where the paper
// accounts for it. What the Cpu provides is *contention*: on an overloaded
// node (e.g. the LEQ sequencer machine in §5) those charges and the
// application's compute serialize, which is exactly the effect the paper
// reports.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>

#include "sim/co.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace sim {

enum class Prio : int {
  kInterrupt = 0,  // hardware/software interrupt handlers
  kKernel = 1,     // in-kernel protocol code (syscall service)
  kUserHigh = 2,   // freshly woken I/O-bound user threads (daemons) — Amoeba
                   // dispatches these ahead of CPU-bound threads
  kUser = 3,       // CPU-bound user threads (application compute)
};
inline constexpr int kPrioLevels = 4;

class Cpu {
 public:
  explicit Cpu(Simulator& s) : sim_(&s) {}

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Consume `duration` of CPU at priority `prio`. May be preempted (the
  /// remaining time is served later); completes once the full duration has
  /// been served. A non-positive duration completes immediately.
  /// If `thread_preemptions_out` is given, it receives the number of times
  /// this job was preempted by *thread-level* (non-interrupt) work — each of
  /// those resumptions is a real context switch for the caller to charge.
  [[nodiscard]] Co<void> run(Time duration, Prio prio,
                             std::uint64_t* thread_preemptions_out = nullptr);

  [[nodiscard]] bool idle() const noexcept { return active_ == nullptr; }
  [[nodiscard]] Time busy_time(Prio prio) const noexcept {
    return busy_[static_cast<std::size_t>(prio)];
  }
  [[nodiscard]] Time total_busy_time() const noexcept {
    Time total = 0;
    for (const Time t : busy_) total += t;
    return total;
  }
  [[nodiscard]] std::uint64_t preemptions() const noexcept { return preemptions_; }
  [[nodiscard]] std::uint64_t jobs_completed() const noexcept { return completed_; }

 private:
  struct Job {
    Time remaining = 0;
    Prio prio = Prio::kUser;
    std::coroutine_handle<> waiter;
    std::uint64_t preempted_by_thread = 0;  // resume episodes w/ thread work
    bool parked = false;
    std::uint64_t park_mark = 0;  // thread_jobs_started_ at preemption time
  };

  struct RunAwaiter;

  void submit(const std::shared_ptr<Job>& job);
  void start(const std::shared_ptr<Job>& job);
  void finish();
  void dispatch_next();

  Simulator* sim_;
  std::array<std::deque<std::shared_ptr<Job>>, kPrioLevels> ready_;
  std::shared_ptr<Job> active_;
  Time active_since_ = 0;
  EventHandle completion_;  // the active job's pending finish event
  std::array<Time, kPrioLevels> busy_{};
  std::uint64_t preemptions_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t thread_jobs_started_ = 0;
};

}  // namespace sim
