#include "sim/rng.h"

#include <cmath>

namespace sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

}  // namespace sim
