// Mechanism-cost accounting.
//
// The paper's §4.2/§4.3 analysis decomposes the user-vs-kernel latency gap
// into named mechanisms (context switches, register-window underflow traps,
// address-space crossings, fragmentation layers, header bytes on the wire...).
// Every site in the protocol stacks that charges simulated time also records
// the charge here, so the breakdown benchmarks can print the same accounting
// the paper does and tests can assert that the parts sum to the whole.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "sim/time.h"

namespace sim {

enum class Mechanism : std::size_t {
  kContextSwitch = 0,    // full thread context switch
  kThreadSwitch,         // interrupt-to-thread dispatch (sequencer path)
  kSyscallCrossing,      // user/kernel address-space crossing
  kUnderflowTrap,        // SPARC register-window underflow trap
  kOverflowTrap,         // SPARC register-window overflow trap
  kWindowSave,           // saving in-use register windows on kernel entry
  kUserKernelCopy,       // copying message data across the boundary
  kAddressTranslation,   // user-to-kernel address translation (untuned path)
  kFragmentationLayer,   // user-level (second) fragmentation/reassembly
  kHeaderWire,           // wire time spent on protocol headers
  kPayloadWire,          // wire time spent on payload bytes
  kInterruptDispatch,    // taking a network interrupt
  kProtocolProcessing,   // generic protocol CPU work
  kLockOp,               // mutex lock/unlock pairs
  kSignal,               // signalling another thread (condvar/kernel signal)
  // Kernel-bypass (RDMA-style) binding. Appended after the 1995 mechanisms so
  // existing numeric indices in committed traces keep their meaning.
  kMemoryRegistration,   // pinning a memory region + rkey setup
  kDoorbell,             // user-space MMIO doorbell ring (no syscall)
  kWqeProcessing,        // NIC work-queue-element fetch/processing + DMA
  kCqPoll,               // completion-queue poll + CQE reap
  kRemoteAccess,         // target-NIC service of a one-sided READ/WRITE/ATOMIC
  kCount
};

[[nodiscard]] std::string_view mechanism_name(Mechanism m) noexcept;

/// Accumulated (count, total simulated time) per mechanism.
class Ledger {
 public:
  struct Entry {
    std::uint64_t count = 0;
    Time total = 0;
  };

  void add(Mechanism m, Time amount, std::uint64_t n = 1) noexcept {
    auto& e = entries_[static_cast<std::size_t>(m)];
    e.count += n;
    e.total += amount;
  }

  [[nodiscard]] const Entry& get(Mechanism m) const noexcept {
    return entries_[static_cast<std::size_t>(m)];
  }

  [[nodiscard]] Time total_time() const noexcept;

  void reset() noexcept { entries_.fill(Entry{}); }

  Ledger& operator+=(const Ledger& other) noexcept;

  /// Per-mechanism difference (this - other), useful for protocol-vs-protocol
  /// breakdowns.
  [[nodiscard]] Ledger diff(const Ledger& other) const noexcept;

  /// Percentage-of-total breakdown table: one row per non-zero mechanism
  /// (count, total us, % of total_time()), descending by share. `divisor`
  /// scales counts and times to a per-operation view (e.g. rounds).
  void print_breakdown(std::FILE* out, const char* title,
                       std::uint64_t divisor = 1) const;

  /// JSON object: mechanism -> {count, time_ns, pct}; embedded verbatim in
  /// RunReports (self-contained so sim does not depend on the metrics lib).
  [[nodiscard]] std::string json() const;

 private:
  std::array<Entry, static_cast<std::size_t>(Mechanism::kCount)> entries_{};
};

}  // namespace sim
