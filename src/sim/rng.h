// Deterministic pseudo-random number generation.
//
// xoshiro256** seeded via SplitMix64. Every stochastic element of the
// simulation (loss injection, workload generation, tie-breaking jitter) draws
// from an Rng owned by the Simulator so runs are reproducible from a single
// seed.
#pragma once

#include <array>
#include <cstdint>

namespace sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) noexcept;

  /// Derive an independent child generator (for per-node streams).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace sim
