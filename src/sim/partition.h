// The conservative parallel discrete-event driver.
//
// A PartitionedSimulator owns N logical processes — each a full sim::Simulator
// with its own event heap, slab, sequence counter, and Rng — and synchronizes
// them with a window-barrier protocol built on the topology's lookahead:
//
//   * Every simulated object (segment, NIC, kernel, timer) lives in exactly
//     one partition and schedules only into its own engine, so within a
//     window the engines share nothing and can run on separate workers.
//   * Cross-partition influence exists only where the topology routes a frame
//     through the store-and-forward switch, which delays it by at least the
//     lookahead L (the minimum cross-partition forward latency, computed from
//     the topology by net::Network — never hard-coded). If the globally
//     earliest pending event is at time M, no event executed in [M, M+L) can
//     affect another partition before M+L, so the window [M, M+L) is safe to
//     run concurrently. At the window barrier the driver drains the
//     cross-partition mailboxes and opens the next window.
//   * A cross-partition frame is posted as a time-stamped message into a
//     per-(source, destination) mailbox — single writer (the source
//     partition's worker), drained only at barriers — and never scheduled
//     directly into a foreign heap. Mailbox sequence numbers are allocated
//     deterministically per source, and deliveries are merged per destination
//     in (time, source, seq) order, so the destination engine observes the
//     same schedule no matter how the window's work was interleaved across
//     threads.
//
// Determinism contract: results are a pure function of (topology, partition
// count, seed). The thread count never affects results — threads only decide
// how many windows run concurrently, and `threads == 1` executes the very
// same windows inline in partition order. With partitions == 1 the driver
// delegates to the single engine's run()/run_until() directly: the exact
// single-threaded code path that produced the committed trace fixtures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace sweep {
class PersistentPool;
}  // namespace sweep

namespace sim {

class PartitionedSimulator {
 public:
  struct Config {
    /// Logical processes; 1 (the default) is the plain single-engine path.
    unsigned partitions = 1;
    /// Worker team size for window execution, capped at `partitions`;
    /// 1 runs every window inline on the caller in partition order.
    unsigned threads = 1;
    /// Root seed. Engine 0 is seeded with it exactly (a 1-partition run is
    /// bit-identical to a bare Simulator); engines p > 0 get seeds derived
    /// deterministically from (seed, p).
    std::uint64_t seed = 42;
  };

  PartitionedSimulator() : PartitionedSimulator(Config{}) {}
  explicit PartitionedSimulator(const Config& config);
  ~PartitionedSimulator();

  PartitionedSimulator(const PartitionedSimulator&) = delete;
  PartitionedSimulator& operator=(const PartitionedSimulator&) = delete;

  [[nodiscard]] unsigned partitions() const noexcept {
    return static_cast<unsigned>(engines_.size());
  }
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// The engine of partition `p`. engine(0) is "the" simulator of a
  /// single-partition run.
  [[nodiscard]] Simulator& engine(unsigned p) {
    require(p < engines_.size(), "PartitionedSimulator::engine: bad partition");
    return *engines_[p];
  }
  [[nodiscard]] const Simulator& engine(unsigned p) const {
    require(p < engines_.size(), "PartitionedSimulator::engine: bad partition");
    return *engines_[p];
  }

  /// The conservative lookahead L (minimum cross-partition latency), set by
  /// the topology layer. Running with partitions > 1 requires L > 0.
  void set_lookahead(Time lookahead);
  [[nodiscard]] Time lookahead() const noexcept { return lookahead_; }

  /// Deliver `fn` to partition `to` at absolute time `t`. Same-partition
  /// posts schedule directly (one fresh sequence number, like at()); cross-
  /// partition posts go through the (from, to) mailbox and are merged into
  /// the destination heap at the next window barrier. During a window a
  /// cross-partition post must land at or beyond the window bound — that is
  /// the conservative-safety invariant, and it is checked.
  void post(unsigned from, unsigned to, Time t, EventFn fn);

  /// Run until every engine's queue drains. Returns events executed.
  std::size_t run();

  /// Run all events with timestamp <= t, then advance every engine's clock
  /// to t (single-engine run_until semantics, per partition).
  void run_until(Time t);

  /// Lookahead windows executed so far (0 with partitions == 1).
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }

  /// Cross-partition messages posted so far (sum over mailboxes).
  [[nodiscard]] std::uint64_t cross_posts() const noexcept;

  /// Events executed across all engines since construction.
  [[nodiscard]] std::uint64_t events_executed() const noexcept;

 private:
  struct Msg {
    Time t;
    std::uint64_t seq;  // per-mailbox, deterministic in source execution order
    unsigned from;
    EventFn fn;
  };
  struct Mailbox {
    std::vector<Msg> msgs;        // single writer: partition `from`'s worker
    std::uint64_t next_seq = 0;   // survives drains: seq is monotone per edge
  };

  /// Drain every mailbox into its destination engine, merged per destination
  /// by (t, from, seq). Caller must hold the window barrier (no worker runs).
  void deliver_mailboxes();
  /// Earliest pending timestamp across engines, or Simulator::kNever.
  [[nodiscard]] Time next_event_time() const noexcept;
  /// One window: run_before(bound) on every engine, inline or on the pool.
  std::size_t run_window(Time bound);

  const unsigned threads_;
  Time lookahead_ = 0;
  Time window_bound_ = 0;  // exclusive bound of the window in flight, else 0
  std::vector<std::unique_ptr<Simulator>> engines_;
  std::vector<Mailbox> mailboxes_;  // indexed from * partitions + to
  std::vector<Msg> merge_scratch_;
  std::vector<std::size_t> window_counts_;  // per-partition, reused
  std::unique_ptr<sweep::PersistentPool> pool_;
  std::uint64_t windows_ = 0;
};

}  // namespace sim
