// A cancellable one-shot timer, the building block for protocol
// retransmission and acknowledgement timeouts.
//
// A thin wrapper over EventHandle: re-arming cancels the previous shot
// eagerly (the engine removes the event from the queue; there is no tombstone
// left behind). Destroying the Timer does NOT cancel a pending shot — the
// scheduled callable owns everything it captured and fires normally, exactly
// as with the previous shared-state implementation.
#pragma once

#include <utility>

#include "sim/simulator.h"
#include "sim/time.h"

namespace sim {

class Timer {
 public:
  explicit Timer(Simulator& s) : sim_(&s) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arm the timer to fire `fn` after `delay`. Re-arming cancels any pending
  /// shot. `fn` runs from the event queue; it is not retained after firing.
  template <typename F>
  void schedule(Time delay, F&& fn) {
    shot_.cancel();
    shot_ = sim_->after(delay, std::forward<F>(fn));
  }

  /// Cancel the pending shot, if any.
  void cancel() { shot_.cancel(); }

  [[nodiscard]] bool pending() const noexcept { return shot_.active(); }

 private:
  Simulator* sim_;
  EventHandle shot_;
};

}  // namespace sim
