// A cancellable one-shot timer, the building block for protocol
// retransmission and acknowledgement timeouts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/simulator.h"
#include "sim/time.h"

namespace sim {

class Timer {
 public:
  explicit Timer(Simulator& s);

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arm the timer to fire `fn` after `delay`. Re-arming cancels any pending
  /// shot. `fn` runs from the event queue; it is not retained after firing.
  void schedule(Time delay, std::function<void()> fn);

  /// Cancel the pending shot, if any.
  void cancel();

  [[nodiscard]] bool pending() const noexcept;

 private:
  struct State {
    std::uint64_t generation = 0;
    bool pending = false;
    std::function<void()> fn;
  };
  Simulator* sim_;
  std::shared_ptr<State> state_;
};

}  // namespace sim
