#include "sim/simulator.h"

#include <algorithm>

namespace sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

Time Simulator::after_time(Time delay) const {
  if (delay < 0) delay = 0;
  require(delay <= std::numeric_limits<Time>::max() - now_,
          "Simulator::after: delay overflows simulated time");
  return now_ + delay;
}

std::uint32_t Simulator::grow_slot() {
  require(meta_.size() < kNoPos, "Simulator: event slab exhausted");
  const std::size_t capacity =
      fn_chunks_.size() * static_cast<std::size_t>(kChunkSize);
  if (meta_.size() == capacity) {
    // Default-init, not make_unique's value-init: a fresh chunk must not pay
    // a zero-fill of buffers that placement-new immediately overwrites.
    fn_chunks_.emplace_back(new EventFn[kChunkSize]);
    meta_.reserve(capacity + kChunkSize);
  }
  meta_.emplace_back();
  return static_cast<std::uint32_t>(meta_.size() - 1);
}

void Simulator::free_slot(std::uint32_t idx) noexcept {
  Meta& m = meta_[idx];
  ++m.gen;  // invalidate every outstanding handle to this occupant
  m.heap_pos = kNoPos;
  m.next_free = free_head_;
  free_head_ = idx;
}

EventHandle Simulator::commit(Time t, std::uint32_t idx) {
  const std::size_t pos = heap_.size();
  heap_.push_back(HeapEntry{t, next_seq_++, idx});
  sift_up(pos);  // writes the final backlink for idx
  return EventHandle(this, idx, meta_[idx].gen);
}

bool Simulator::is_live(std::uint32_t idx, std::uint32_t gen) const noexcept {
  return idx < meta_.size() && meta_[idx].gen == gen &&
         meta_[idx].heap_pos != kNoPos;
}

bool Simulator::cancel_event(std::uint32_t idx, std::uint32_t gen) noexcept {
  if (!is_live(idx, gen)) return false;
  remove_heap_entry(meta_[idx].heap_pos);
  fn_slot(idx).reset();  // destroy the callable eagerly
  free_slot(idx);
  ++cancelled_;
  return true;
}

bool Simulator::reschedule_event(std::uint32_t idx, std::uint32_t gen,
                                 Time delay) {
  if (!is_live(idx, gen)) return false;
  const std::size_t pos = meta_[idx].heap_pos;
  heap_[pos].t = after_time(delay);
  // A fresh sequence number keeps equal-timestamp FIFO semantics identical to
  // cancel-then-schedule, without destroying and re-erasing the callable.
  heap_[pos].seq = next_seq_++;
  sift_up(pos);
  sift_down(meta_[idx].heap_pos);
  return true;
}

void Simulator::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    meta_[heap_[pos].idx].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = e;
  meta_[e.idx].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::sift_down(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[pos] = heap_[best];
    meta_[heap_[pos].idx].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = e;
  meta_[e.idx].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::remove_heap_entry(std::size_t pos) {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;
  heap_[pos] = last;
  sift_up(pos);  // writes the final backlink; at most one of the two sifts moves
  sift_down(meta_[last.idx].heap_pos);
}

EventHandle Simulator::schedule_fn(Time t, EventFn&& fn) {
  require(static_cast<bool>(fn), "Simulator::schedule_fn: empty callable");
  const std::uint32_t idx = alloc_slot();
  fn_slot(idx) = std::move(fn);  // relocates the (possibly boxed) callable
  return commit(t < now_ ? now_ : t, idx);
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  now_ = top.t;
  // Take the event out of the heap before invoking it: every handle to *this*
  // event goes inactive, so self-cancellation from inside the callback is an
  // inert no-op.
  meta_[top.idx].heap_pos = kNoPos;
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    sift_down(0);
  }
  ++executed_;
  // Observe before the callback runs: window boundaries close on the state
  // left by all events strictly earlier than `now_`.
  if (step_observer_ != nullptr) step_observer_->on_step(now_);
  // Invoke the callable in place — chunked storage guarantees its address is
  // stable across any scheduling the callback does — then destroy it and
  // recycle the slot, even if the callback throws (a SimError escaping run()
  // must not leak the closure).
  struct Finally {
    Simulator* s;
    std::uint32_t idx;
    ~Finally() {
      s->fn_slot(idx).reset();
      s->free_slot(idx);
    }
  } finally{this, top.idx};
  fn_slot(top.idx)();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Simulator::run_until(Time t) {
  while (!heap_.empty() && heap_[0].t <= t) step();
  now_ = std::max(now_, t);
}

std::size_t Simulator::run_before(Time t) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_[0].t < t) {
    step();
    ++n;
  }
  return n;
}

void Simulator::run_for(Time delay) { run_until(now_ + std::max<Time>(delay, 0)); }

}  // namespace sim
