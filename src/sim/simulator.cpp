#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "sim/require.h"

namespace sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void Simulator::at(Time t, std::function<void()> fn) {
  require(static_cast<bool>(fn), "Simulator::at: empty callable");
  heap_.push_back(Event{std::max(t, now_), next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Simulator::after(Time delay, std::function<void()> fn) {
  at(now_ + std::max<Time>(delay, 0), std::move(fn));
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.t;
  ++executed_;
  ev.fn();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Simulator::run_until(Time t) {
  while (!heap_.empty() && heap_.front().t <= t) step();
  now_ = std::max(now_, t);
}

void Simulator::run_for(Time delay) { run_until(now_ + std::max<Time>(delay, 0)); }

}  // namespace sim
