#include "sim/simulator.h"

#include <algorithm>

namespace sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

Time Simulator::after_time(Time delay) const {
  if (delay < 0) delay = 0;
  require(delay <= std::numeric_limits<Time>::max() - now_,
          "Simulator::after: delay overflows simulated time");
  return now_ + delay;
}

std::uint32_t Simulator::grow_slot() {
  require(meta_.size() < kNoPos, "Simulator: event slab exhausted");
  const std::size_t capacity =
      fn_chunks_.size() * static_cast<std::size_t>(kChunkSize);
  if (meta_.size() == capacity) {
    // Default-init, not make_unique's value-init: a fresh chunk must not pay
    // a zero-fill of buffers that placement-new immediately overwrites.
    // meta_ grows by emplace_back's geometric policy — an exact-size reserve
    // here would force a full copy of the bookkeeping array every chunk,
    // turning large scheduling bursts quadratic.
    fn_chunks_.emplace_back(new EventFn[kChunkSize]);
  }
  meta_.emplace_back();
  return static_cast<std::uint32_t>(meta_.size() - 1);
}

void Simulator::free_slot(std::uint32_t idx) noexcept {
  Meta& m = meta_[idx];
  ++m.gen;  // invalidate every outstanding handle to this occupant
  m.heap_pos = kNoPos;
  m.next_free = free_head_;
  free_head_ = idx;
}

bool Simulator::is_live(std::uint32_t idx, std::uint32_t gen) const noexcept {
  return idx < meta_.size() && meta_[idx].gen == gen &&
         meta_[idx].heap_pos != kNoPos;
}

bool Simulator::cancel_event(std::uint32_t idx, std::uint32_t gen) noexcept {
  if (!is_live(idx, gen)) return false;
  if (meta_[idx].heap_pos == kInBuffer) {
    // Buffered: the slot dies now, the stale buffer entry stays behind and is
    // skipped at dispatch (its heap_pos is no longer kInBuffer — and a reused
    // slot cannot re-enter the buffer before the buffer is fully consumed).
    --buffered_live_;
  } else {
    remove_heap_entry(meta_[idx].heap_pos);
  }
  fn_slot(idx).reset();  // destroy the callable eagerly
  free_slot(idx);
  ++cancelled_;
  return true;
}

bool Simulator::reschedule_event(std::uint32_t idx, std::uint32_t gen,
                                 Time delay) {
  if (!is_live(idx, gen)) return false;
  const Time t = after_time(delay);  // may throw; nothing mutated yet
  if (meta_[idx].heap_pos == kInBuffer) {
    // Buffered: move the event back into the heap with a fresh sequence
    // number; the merge in step_limit() re-orders it against the remaining
    // buffered entries exactly as cancel-then-schedule would. The stale
    // buffer entry is skipped at dispatch.
    --buffered_live_;
    const std::size_t pos = heap_.size();
    heap_.push_back(HeapEntry{t, next_seq_++, idx});
    sift_up(pos);  // overwrites heap_pos with the real position
    return true;
  }
  const std::size_t pos = meta_[idx].heap_pos;
  heap_[pos].t = t;
  // A fresh sequence number keeps equal-timestamp FIFO semantics identical to
  // cancel-then-schedule, without destroying and re-erasing the callable.
  heap_[pos].seq = next_seq_++;
  sift_up(pos);
  sift_down(meta_[idx].heap_pos);
  return true;
}

void Simulator::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    meta_[heap_[pos].idx].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = e;
  meta_[e.idx].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::sift_down(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[pos] = heap_[best];
    meta_[heap_[pos].idx].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = e;
  meta_[e.idx].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::remove_heap_entry(std::size_t pos) {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;
  heap_[pos] = last;
  sift_up(pos);  // writes the final backlink; at most one of the two sifts moves
  sift_down(meta_[last.idx].heap_pos);
}

EventHandle Simulator::schedule_fn(Time t, EventFn&& fn) {
  require(static_cast<bool>(fn), "Simulator::schedule_fn: empty callable");
  const std::uint32_t idx = alloc_slot();
  fn_slot(idx) = std::move(fn);  // relocates the (possibly boxed) callable
  return commit(t < now_ ? now_ : t, idx);
}

void Simulator::fill_run_buffer() {
  run_buf_.clear();
  run_pos_ = 0;
  run_buf_.swap(heap_);  // both keep their capacity across the exchange
  // For the monotone schedule pattern — every new event later than all its
  // predecessors — sift_up never moves anything and the heap array *is* the
  // sorted order, so the common drain is one linear scan and no sort at all.
  if (!std::is_sorted(run_buf_.begin(), run_buf_.end(), &before)) {
    std::sort(run_buf_.begin(), run_buf_.end(), &before);
  }
  for (const HeapEntry& e : run_buf_) meta_[e.idx].heap_pos = kInBuffer;
  buffered_live_ = run_buf_.size();
}

const Simulator::HeapEntry* Simulator::peek_buffered() noexcept {
  while (run_pos_ < run_buf_.size()) {
    const HeapEntry& e = run_buf_[run_pos_];
    if (meta_[e.idx].heap_pos == kInBuffer) return &e;
    ++run_pos_;  // cancelled or rescheduled while buffered: skip the husk
  }
  return nullptr;
}

void Simulator::execute(Time t, std::uint32_t idx) {
  now_ = t;
  ++executed_;
  // Observe before the callback runs: window boundaries close on the state
  // left by all events strictly earlier than `now_`.
  if (step_observer_ != nullptr) step_observer_->on_step(now_);
  // Invoke the callable in place — chunked storage guarantees its address is
  // stable across any scheduling the callback does — then destroy it and
  // recycle the slot, even if the callback throws (a SimError escaping run()
  // must not leak the closure). Trivially destructible callables take the
  // fast lane: clear first (nothing to unwind), invoke, free — no destroy-op
  // test after the call.
  EventFn& fn = fn_slot(idx);
  if (fn.trivially_destructible()) {
    struct FreeOnly {
      Simulator* s;
      std::uint32_t idx;
      ~FreeOnly() { s->free_slot(idx); }
    } finally{this, idx};
    fn.invoke_trivial();
    return;
  }
  struct Finally {
    Simulator* s;
    std::uint32_t idx;
    ~Finally() {
      s->fn_slot(idx).reset();
      s->free_slot(idx);
    }
  } finally{this, idx};
  fn();
}

bool Simulator::step_limit(Time limit, bool exclusive) {
  if (run_pos_ == run_buf_.size() && heap_.size() >= kBatchMin) {
    fill_run_buffer();
  }
  const HeapEntry* b = peek_buffered();
  // Everything scheduled since the drain carries a later sequence number than
  // every drained entry, so the two-way (t, seq) merge below reproduces exact
  // pop-per-event order.
  if (b != nullptr && (heap_.empty() || before(*b, heap_[0]))) {
    if (exclusive ? b->t >= limit : b->t > limit) return false;
    const std::uint32_t idx = b->idx;
    const Time t = b->t;  // copy out: a nested run() could refill the buffer
    ++run_pos_;
    --buffered_live_;
    meta_[idx].heap_pos = kNoPos;  // handles go inactive before the callback
    execute(t, idx);
    return true;
  }
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  if (exclusive ? top.t >= limit : top.t > limit) return false;
  // Take the event out of the heap before invoking it: every handle to *this*
  // event goes inactive, so self-cancellation from inside the callback is an
  // inert no-op.
  meta_[top.idx].heap_pos = kNoPos;
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    sift_down(0);
  }
  execute(top.t, top.idx);
  return true;
}

bool Simulator::step() { return step_limit(kNever, /*exclusive=*/false); }

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step_limit(kNever, /*exclusive=*/false)) ++n;
  return n;
}

void Simulator::run_until(Time t) {
  while (step_limit(t, /*exclusive=*/false)) {
  }
  now_ = std::max(now_, t);
}

std::size_t Simulator::run_before(Time t) {
  std::size_t n = 0;
  while (step_limit(t, /*exclusive=*/true)) ++n;
  return n;
}

void Simulator::run_for(Time delay) { run_until(now_ + std::max<Time>(delay, 0)); }

}  // namespace sim
