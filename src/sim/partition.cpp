#include "sim/partition.h"

#include <algorithm>
#include <utility>

#include "sweep/persistent_pool.h"

namespace sim {
namespace {

/// Per-partition seed derivation: one SplitMix64 step keyed by the partition
/// id. Partition 0 keeps the root seed itself, so a 1-partition run draws the
/// exact stream a bare Simulator(seed) would.
std::uint64_t derive_seed(std::uint64_t root, unsigned p) noexcept {
  if (p == 0) return root;
  std::uint64_t z = root + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(p);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

unsigned clamp_min_one(unsigned n) noexcept { return n == 0 ? 1 : n; }

}  // namespace

PartitionedSimulator::PartitionedSimulator(const Config& config)
    : threads_(std::min(clamp_min_one(config.threads),
                        clamp_min_one(config.partitions))) {
  const unsigned p_count = clamp_min_one(config.partitions);
  engines_.reserve(p_count);
  for (unsigned p = 0; p < p_count; ++p) {
    engines_.push_back(std::make_unique<Simulator>(derive_seed(config.seed, p)));
  }
  mailboxes_.resize(static_cast<std::size_t>(p_count) * p_count);
  window_counts_.resize(p_count, 0);
  if (threads_ > 1) pool_ = std::make_unique<sweep::PersistentPool>(threads_);
}

PartitionedSimulator::~PartitionedSimulator() = default;

void PartitionedSimulator::set_lookahead(Time lookahead) {
  require(lookahead >= 0, "PartitionedSimulator: lookahead must be >= 0");
  require(window_bound_ == 0,
          "PartitionedSimulator: lookahead cannot change inside a window");
  lookahead_ = lookahead;
}

void PartitionedSimulator::post(unsigned from, unsigned to, Time t,
                                EventFn fn) {
  require(from < engines_.size() && to < engines_.size(),
          "PartitionedSimulator::post: bad partition");
  require(static_cast<bool>(fn), "PartitionedSimulator::post: empty callable");
  if (from == to) {
    engines_[to]->schedule_fn(t, std::move(fn));
    return;
  }
  // Conservative safety: while a window [M, bound) is running, anything that
  // crosses partitions must land at or beyond the bound — otherwise the
  // lookahead the topology reported was wrong.
  require(window_bound_ == 0 || t >= window_bound_,
          "PartitionedSimulator::post: cross-partition message inside the "
          "lookahead window (topology lookahead too large)");
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(from) * engines_.size() + to];
  mb.msgs.push_back(Msg{t, mb.next_seq++, from, std::move(fn)});
}

void PartitionedSimulator::deliver_mailboxes() {
  const unsigned p_count = partitions();
  for (unsigned to = 0; to < p_count; ++to) {
    merge_scratch_.clear();
    for (unsigned from = 0; from < p_count; ++from) {
      if (from == to) continue;
      Mailbox& mb =
          mailboxes_[static_cast<std::size_t>(from) * p_count + to];
      for (Msg& m : mb.msgs) merge_scratch_.push_back(std::move(m));
      mb.msgs.clear();
    }
    if (merge_scratch_.empty()) continue;
    // Deterministic merge order: time, then source partition, then the
    // source's own post order. Each mailbox's contents are a pure function of
    // its source partition's (deterministic) execution, so this order is
    // independent of how the window's work was spread across threads.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const Msg& a, const Msg& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.from != b.from) return a.from < b.from;
                return a.seq < b.seq;
              });
    for (Msg& m : merge_scratch_) {
      engines_[to]->schedule_fn(m.t, std::move(m.fn));
    }
  }
  merge_scratch_.clear();
}

Time PartitionedSimulator::next_event_time() const noexcept {
  Time m = Simulator::kNever;
  for (const std::unique_ptr<Simulator>& e : engines_) {
    m = std::min(m, e->next_event_time());
  }
  return m;
}

std::size_t PartitionedSimulator::run_window(Time bound) {
  window_bound_ = bound;
  struct CloseWindow {
    Time* bound;
    ~CloseWindow() { *bound = 0; }
  } close{&window_bound_};
  std::fill(window_counts_.begin(), window_counts_.end(), std::size_t{0});
  if (pool_) {
    pool_->run(engines_.size(), [this, bound](std::size_t p) {
      window_counts_[p] = engines_[p]->run_before(bound);
    });
  } else {
    for (std::size_t p = 0; p < engines_.size(); ++p) {
      window_counts_[p] = engines_[p]->run_before(bound);
    }
  }
  ++windows_;
  std::size_t total = 0;
  for (const std::size_t c : window_counts_) total += c;
  return total;
}

std::size_t PartitionedSimulator::run() {
  if (partitions() == 1) return engines_[0]->run();
  require(lookahead_ > 0,
          "PartitionedSimulator::run: partitions > 1 needs positive lookahead");
  std::size_t total = 0;
  for (;;) {
    deliver_mailboxes();
    const Time m = next_event_time();
    if (m == Simulator::kNever) break;
    const Time bound =
        lookahead_ > Simulator::kNever - m ? Simulator::kNever : m + lookahead_;
    total += run_window(bound);
  }
  return total;
}

void PartitionedSimulator::run_until(Time t) {
  if (partitions() == 1) {
    engines_[0]->run_until(t);
    return;
  }
  require(lookahead_ > 0,
          "PartitionedSimulator::run_until: partitions > 1 needs positive "
          "lookahead");
  // run_until executes t itself, so the exclusive limit is t + 1.
  const Time limit = t == Simulator::kNever ? t : t + 1;
  for (;;) {
    deliver_mailboxes();
    const Time m = next_event_time();
    if (m > t) break;
    Time bound =
        lookahead_ > Simulator::kNever - m ? Simulator::kNever : m + lookahead_;
    if (bound > limit) bound = limit;
    run_window(bound);
  }
  for (const std::unique_ptr<Simulator>& e : engines_) e->advance_to(t);
}

std::uint64_t PartitionedSimulator::cross_posts() const noexcept {
  std::uint64_t n = 0;
  for (const Mailbox& mb : mailboxes_) n += mb.next_seq;
  return n;
}

std::uint64_t PartitionedSimulator::events_executed() const noexcept {
  std::uint64_t n = 0;
  for (const std::unique_ptr<Simulator>& e : engines_) {
    n += e->events_executed();
  }
  return n;
}

}  // namespace sim
