#include "sim/ledger.h"

#include <algorithm>
#include <cinttypes>
#include <vector>

namespace sim {

std::string_view mechanism_name(Mechanism m) noexcept {
  switch (m) {
    case Mechanism::kContextSwitch: return "context-switch";
    case Mechanism::kThreadSwitch: return "thread-switch";
    case Mechanism::kSyscallCrossing: return "syscall-crossing";
    case Mechanism::kUnderflowTrap: return "underflow-trap";
    case Mechanism::kOverflowTrap: return "overflow-trap";
    case Mechanism::kWindowSave: return "window-save";
    case Mechanism::kUserKernelCopy: return "user-kernel-copy";
    case Mechanism::kAddressTranslation: return "address-translation";
    case Mechanism::kFragmentationLayer: return "fragmentation-layer";
    case Mechanism::kHeaderWire: return "header-wire";
    case Mechanism::kPayloadWire: return "payload-wire";
    case Mechanism::kInterruptDispatch: return "interrupt-dispatch";
    case Mechanism::kProtocolProcessing: return "protocol-processing";
    case Mechanism::kLockOp: return "lock-op";
    case Mechanism::kSignal: return "signal";
    case Mechanism::kMemoryRegistration: return "memory-registration";
    case Mechanism::kDoorbell: return "doorbell";
    case Mechanism::kWqeProcessing: return "wqe-processing";
    case Mechanism::kCqPoll: return "cq-poll";
    case Mechanism::kRemoteAccess: return "remote-access";
    case Mechanism::kCount: break;
  }
  return "unknown";
}

Time Ledger::total_time() const noexcept {
  Time sum = 0;
  for (const auto& e : entries_) sum += e.total;
  return sum;
}

Ledger& Ledger::operator+=(const Ledger& other) noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i].count += other.entries_[i].count;
    entries_[i].total += other.entries_[i].total;
  }
  return *this;
}

Ledger Ledger::diff(const Ledger& other) const noexcept {
  Ledger out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out.entries_[i].count = entries_[i].count - other.entries_[i].count;
    out.entries_[i].total = entries_[i].total - other.entries_[i].total;
  }
  return out;
}

void Ledger::print_breakdown(std::FILE* out, const char* title,
                             std::uint64_t divisor) const {
  const double total = static_cast<double>(total_time());
  const double div = divisor == 0 ? 1.0 : static_cast<double>(divisor);
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].count != 0 || entries_[i].total != 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return entries_[a].total > entries_[b].total;
  });
  std::fprintf(out, "%s (total %.1f us)\n", title, to_us(total_time()) / div);
  std::fprintf(out, "  %-22s | %9s | %10s | %6s\n", "mechanism", "count",
               "time [us]", "share");
  for (const std::size_t i : order) {
    const Entry& e = entries_[i];
    std::fprintf(out, "  %-22s | %9.1f | %10.1f | %5.1f%%\n",
                 std::string(mechanism_name(static_cast<Mechanism>(i))).c_str(),
                 static_cast<double>(e.count) / div,
                 to_us(e.total) / div,
                 total > 0 ? static_cast<double>(e.total) / total * 100.0 : 0.0);
  }
}

std::string Ledger::json() const {
  const double total = static_cast<double>(total_time());
  std::string out = "{";
  bool first = true;
  char buf[160];
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.count == 0 && e.total == 0) continue;
    const std::string_view name = mechanism_name(static_cast<Mechanism>(i));
    std::snprintf(buf, sizeof buf,
                  "%s\"%.*s\": {\"count\": %" PRIu64
                  ", \"time_ns\": %" PRId64 ", \"pct\": %.2f}",
                  first ? "" : ", ", static_cast<int>(name.size()), name.data(),
                  e.count, e.total,
                  total > 0 ? static_cast<double>(e.total) / total * 100.0 : 0.0);
    out += buf;
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace sim
