#include "sim/ledger.h"

namespace sim {

std::string_view mechanism_name(Mechanism m) noexcept {
  switch (m) {
    case Mechanism::kContextSwitch: return "context-switch";
    case Mechanism::kThreadSwitch: return "thread-switch";
    case Mechanism::kSyscallCrossing: return "syscall-crossing";
    case Mechanism::kUnderflowTrap: return "underflow-trap";
    case Mechanism::kOverflowTrap: return "overflow-trap";
    case Mechanism::kWindowSave: return "window-save";
    case Mechanism::kUserKernelCopy: return "user-kernel-copy";
    case Mechanism::kAddressTranslation: return "address-translation";
    case Mechanism::kFragmentationLayer: return "fragmentation-layer";
    case Mechanism::kHeaderWire: return "header-wire";
    case Mechanism::kPayloadWire: return "payload-wire";
    case Mechanism::kInterruptDispatch: return "interrupt-dispatch";
    case Mechanism::kProtocolProcessing: return "protocol-processing";
    case Mechanism::kLockOp: return "lock-op";
    case Mechanism::kSignal: return "signal";
    case Mechanism::kCount: break;
  }
  return "unknown";
}

Time Ledger::total_time() const noexcept {
  Time sum = 0;
  for (const auto& e : entries_) sum += e.total;
  return sum;
}

Ledger& Ledger::operator+=(const Ledger& other) noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i].count += other.entries_[i].count;
    entries_[i].total += other.entries_[i].total;
  }
  return *this;
}

Ledger Ledger::diff(const Ledger& other) const noexcept {
  Ledger out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out.entries_[i].count = entries_[i].count - other.entries_[i].count;
    out.entries_[i].total = entries_[i].total - other.entries_[i].total;
  }
  return out;
}

}  // namespace sim
