// Invariant checking for the simulation engine and protocol stacks.
//
// A failed requirement indicates a bug in the simulator or a protocol
// implementation, not a simulated failure (simulated failures such as lost
// frames or timeouts are ordinary values). Following the Core Guidelines'
// advice on preconditions, violations throw a distinct exception type so
// tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace sim {

/// Thrown when a simulator or protocol invariant is violated.
class SimError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Throws SimError with `what` unless `condition` holds.
inline void require(bool condition, const std::string& what) {
  if (!condition) throw SimError(what);
}

}  // namespace sim
