// Coroutine plumbing for simulated concurrency.
//
// Co<T> is a lazily-started awaitable coroutine: awaiting it starts the child
// and transfers control back to the awaiter (via symmetric transfer) when the
// child completes. Exceptions propagate to the awaiter. The Co object owns
// the coroutine frame.
//
// spawn() launches a Co<void> as a detached root activity: it runs until its
// first suspension immediately and thereafter is driven entirely by Simulator
// events; the frame self-destroys on completion. run() is the test/benchmark
// helper that spawns a coroutine, drives the simulator until it finishes, and
// returns its result (rethrowing any exception).
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/require.h"
#include "sim/simulator.h"

namespace sim {

template <typename T>
class Co;

namespace detail {

// Resumes the awaiting coroutine (if any) when a Co completes.
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
    std::coroutine_handle<> cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

template <typename Derived>
struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started simulated activity yielding a value of type T.
template <typename T>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::PromiseBase<promise_type> {
    std::optional<T> value;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Co() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    require(static_cast<bool>(handle_), "Co<T>: awaiting a moved-from coroutine");
    handle_.promise().continuation = cont;
    return handle_;
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
    require(p.value.has_value(), "Co<T>: coroutine finished without a value");
    return std::move(*p.value);
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

/// A lazily-started simulated activity yielding nothing.
template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::PromiseBase<promise_type> {
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Co() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    require(static_cast<bool>(handle_), "Co<void>: awaiting a moved-from coroutine");
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

namespace detail {

// An eagerly-started, self-destroying coroutine used as the root of every
// detached activity. Exceptions escaping a detached root are bugs.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() noexcept { std::terminate(); }
  };
};

inline Detached spawn_impl(Co<void> co) { co_await std::move(co); }

template <typename T>
Detached run_impl(Co<T> co, std::optional<T>& out, std::exception_ptr& error, bool& done) {
  try {
    out.emplace(co_await std::move(co));
  } catch (...) {
    error = std::current_exception();
  }
  done = true;
}

inline Detached run_impl(Co<void> co, std::exception_ptr& error, bool& done) {
  try {
    co_await std::move(co);
  } catch (...) {
    error = std::current_exception();
  }
  done = true;
}

}  // namespace detail

/// Launch a detached root activity. It runs to its first suspension now and
/// is driven by Simulator events afterwards.
inline void spawn(Co<void> co) { detail::spawn_impl(std::move(co)); }

/// Drive the simulator until `co` completes; return its value.
/// Throws SimError if the event queue drains first.
template <typename T>
T run(Simulator& s, Co<T> co) {
  std::optional<T> out;
  std::exception_ptr error;
  bool done = false;
  detail::run_impl(std::move(co), out, error, done);
  while (!done && s.step()) {
  }
  require(done, "sim::run: event queue drained before the coroutine completed");
  if (error) std::rethrow_exception(error);
  return std::move(*out);
}

/// Drive the simulator until `co` completes.
inline void run(Simulator& s, Co<void> co) {
  std::exception_ptr error;
  bool done = false;
  detail::run_impl(std::move(co), error, done);
  while (!done && s.step()) {
  }
  require(done, "sim::run: event queue drained before the coroutine completed");
  if (error) std::rethrow_exception(error);
}

/// Awaitable that suspends the current activity for `d` of simulated time.
///
/// NOTE (project-wide rule): every custom awaiter type has a user-declared
/// constructor. GCC 12 double-destroys aggregate awaiter temporaries inside
/// co_await expressions, which is a use-after-free for awaiters holding
/// nontrivially-destructible members. Keeping all awaiters non-aggregates
/// sidesteps the miscompile uniformly.
struct DelayAwaiter {
  DelayAwaiter(Simulator& s, Time d) : simulator(s), delay(d) {}
  Simulator& simulator;
  Time delay;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    simulator.after(delay, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

/// Suspend for `d` of simulated time (a zero delay still yields, putting the
/// resumption behind already-queued events — a deterministic "yield").
inline DelayAwaiter delay(Simulator& s, Time d) { return DelayAwaiter{s, d}; }

/// Deterministic yield: reschedule behind all currently queued events.
inline DelayAwaiter yield(Simulator& s) { return DelayAwaiter{s, 0}; }

}  // namespace sim
