// Cache-conscious associative containers for hot protocol state.
//
// The protocol layers (Amoeba RPC, FLIP, Panda RPC, bypass verbs) key their
// per-transaction and per-connection state by small integers — transaction
// ids, FLIP addresses, node ids. std::map and std::unordered_map put every
// entry in its own heap node, so the per-packet lookup walks two or three
// cache lines of pointers before it touches the state it wanted. The
// containers here keep entries in flat arrays instead:
//
//   * FlatMap: open-addressing hash table, linear probing, backward-shift
//     deletion (no tombstones). One contiguous slot array; a lookup is a
//     hash, a masked index, and a short scan of adjacent slots. Values live
//     inline, so rehashing MOVES them — never hold a reference across an
//     operation that can insert, and never across a co_await (another
//     coroutine may insert while this one is suspended).
//   * Slab: chunked arena with stable addresses and O(1) free-list reuse,
//     the same layout as the event engine's callable storage. For state
//     whose address must survive inserts (a raw pointer held across a
//     co_await, a handler whose coroutine frames point into it).
//   * SlabMap: FlatMap<K, slot-index> over a Slab<V> — dense index-addressed
//     lookup AND stable value addresses. The replacement for
//     unordered_map<K, unique_ptr<V>> without the per-entry allocation.
//
// Determinism: layout depends only on the operation sequence and the hash
// function (a fixed 64-bit mixer — no per-process seeding), so iteration
// order is reproducible across runs, machines, and partition counts. It is
// NOT insertion order: code must not let iteration order reach anything
// observable (traces, wire traffic). Every converted call site was audited
// for that; new iterating code should use erase_if/for_each and stay
// order-independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/require.h"

namespace sim {

/// Fixed 64-bit finalizer (splitmix64): full avalanche, so sequential ids —
/// the common key distribution here — spread over the whole table.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Default hash: any integral or enum key up to 64 bits.
template <typename K>
struct DenseHash {
  [[nodiscard]] std::uint64_t operator()(const K& k) const noexcept {
    return mix64(static_cast<std::uint64_t>(k));
  }
};

// V must be default-constructible and movable: values live inline, empty
// slots default-construct, and rehash/backward-shift relocate by move. (Not
// a static_assert: nested classes with default member initializers only
// become default-constructible once the enclosing class is complete, which
// would reject valid member-of-member uses.)
template <typename K, typename V, typename Hash = DenseHash<K>>
class FlatMap {
 public:
  FlatMap() = default;
  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;
  FlatMap(FlatMap&&) = default;
  FlatMap& operator=(FlatMap&&) = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Pointer to the mapped value, or nullptr. Invalidated by any insert.
  [[nodiscard]] V* find(const K& key) noexcept {
    if (size_ == 0) return nullptr;
    for (std::size_t i = ideal(key);; i = next(i)) {
      Slot& s = slots_[i];
      if (!s.used) return nullptr;
      if (s.key == key) return &s.value;
    }
  }
  [[nodiscard]] const V* find(const K& key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }
  [[nodiscard]] bool contains(const K& key) const noexcept {
    return find(key) != nullptr;
  }

  /// Insert a default-constructed value if absent. Returns {value, inserted}.
  std::pair<V*, bool> try_emplace(const K& key) {
    reserve_one();
    for (std::size_t i = ideal(key);; i = next(i)) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        ++size_;
        return {&s.value, true};
      }
      if (s.key == key) return {&s.value, false};
    }
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  /// Erase by key; returns whether an entry was removed. Backward-shift
  /// deletion keeps probe chains hole-free without tombstones.
  bool erase(const K& key) {
    if (size_ == 0) return false;
    for (std::size_t i = ideal(key);; i = next(i)) {
      Slot& s = slots_[i];
      if (!s.used) return false;
      if (s.key == key) {
        erase_slot(i);
        return true;
      }
    }
  }

  /// Erase every entry for which pred(key, value) is true. Safe with respect
  /// to the backward-shift relocation (keys are collected first); use this
  /// instead of iterate-and-erase.
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    std::vector<K> doomed;
    for (Slot& s : slots_) {
      if (s.used && pred(const_cast<const K&>(s.key), s.value)) {
        doomed.push_back(s.key);
      }
    }
    for (const K& k : doomed) erase(k);
    return doomed.size();
  }

  /// Visit every entry as f(const K&, V&). Slot order: deterministic but
  /// arbitrary — callers must be order-independent.
  template <typename F>
  void for_each(F&& f) {
    for (Slot& s : slots_) {
      if (s.used) f(const_cast<const K&>(s.key), s.value);
    }
  }

  void clear() noexcept {
    slots_.clear();
    size_ = 0;
  }

 private:
  struct Slot {
    K key{};
    V value{};
    bool used = false;
  };

  [[nodiscard]] std::size_t mask() const noexcept { return slots_.size() - 1; }
  [[nodiscard]] std::size_t ideal(const K& key) const noexcept {
    return static_cast<std::size_t>(Hash{}(key)) & mask();
  }
  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return (i + 1) & mask();
  }
  void erase_slot(std::size_t i) {
    // Knuth's deletion for linear probing: scan to the first empty slot,
    // refilling the hole with any entry whose ideal position lies cyclically
    // at or before it. Entries that hash strictly between the hole and their
    // slot must stay put, but the scan continues past them — stopping at the
    // first perfectly-placed entry would strand later entries behind the
    // hole and corrupt their probe chains.
    for (std::size_t j = next(i); slots_[j].used; j = next(j)) {
      const std::size_t home = ideal(slots_[j].key);
      if (((j - home) & mask()) >= ((j - i) & mask())) {
        slots_[i].key = std::move(slots_[j].key);
        slots_[i].value = std::move(slots_[j].value);
        i = j;
      }
    }
    slots_[i].used = false;
    slots_[i].key = K{};
    slots_[i].value = V{};  // release resources held by the vacated slot
    --size_;
  }

  void reserve_one() {
    // Grow at 7/8 load; doubling keeps the mask usable and the layout a pure
    // function of the operation sequence.
    if (slots_.empty()) {
      slots_.resize(16);
    } else if ((size_ + 1) * 8 > slots_.size() * 7) {
      std::vector<Slot> old(std::move(slots_));
      slots_.clear();
      slots_.resize(old.size() * 2);
      for (Slot& s : old) {
        if (!s.used) continue;
        for (std::size_t i = ideal(s.key);; i = next(i)) {
          if (slots_[i].used) continue;
          slots_[i].used = true;
          slots_[i].key = std::move(s.key);
          slots_[i].value = std::move(s.value);
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

/// Chunked arena with stable addresses: 64 values per chunk, O(1) free-list
/// reuse, no relocation ever. Mirrors the event engine's callable slab.
template <typename V>
class Slab {
 public:
  static constexpr std::size_t kChunkShift = 6;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  Slab() = default;
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;
  ~Slab() {
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(live_.size()); ++i) {
      if (live_[i]) slot_ptr(i)->~V();
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Construct a value, returning its stable index.
  template <typename... Args>
  std::uint32_t emplace(Args&&... args) {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(live_.size());
      if ((idx >> kChunkShift) == chunks_.size()) {
        chunks_.push_back(std::make_unique<Chunk>());
      }
      live_.push_back(false);
    }
    ::new (static_cast<void*>(slot_ptr(idx))) V(std::forward<Args>(args)...);
    live_[idx] = true;
    ++size_;
    return idx;
  }

  void erase(std::uint32_t idx) {
    require(idx < live_.size() && live_[idx], "Slab::erase: dead index");
    slot_ptr(idx)->~V();
    live_[idx] = false;
    free_.push_back(idx);
    --size_;
  }

  [[nodiscard]] V& operator[](std::uint32_t idx) noexcept { return *slot_ptr(idx); }
  [[nodiscard]] const V& operator[](std::uint32_t idx) const noexcept {
    return *const_cast<Slab*>(this)->slot_ptr(idx);
  }

 private:
  struct Chunk {
    alignas(V) unsigned char raw[sizeof(V) * kChunkSize];
  };

  [[nodiscard]] V* slot_ptr(std::uint32_t idx) noexcept {
    return std::launder(reinterpret_cast<V*>(
        chunks_[idx >> kChunkShift]->raw + sizeof(V) * (idx & (kChunkSize - 1))));
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<bool> live_;
  std::vector<std::uint32_t> free_;
  std::size_t size_ = 0;
};

/// FlatMap index over a Slab of values: dense hashed lookup, stable value
/// addresses. Replaces unordered_map<K, unique_ptr<V>> — one flat probe plus
/// one arena access instead of a node walk, and no per-entry allocation
/// after warm-up.
template <typename K, typename V, typename Hash = DenseHash<K>>
class SlabMap {
 public:
  SlabMap() = default;
  SlabMap(const SlabMap&) = delete;
  SlabMap& operator=(const SlabMap&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return slab_.size(); }
  [[nodiscard]] bool empty() const noexcept { return slab_.size() == 0; }
  [[nodiscard]] bool contains(const K& key) const noexcept {
    return index_.contains(key);
  }

  /// Stable pointer to the mapped value, or nullptr. Survives inserts and
  /// co_awaits (only erase(key) of this entry invalidates it).
  [[nodiscard]] V* find(const K& key) noexcept {
    std::uint32_t* idx = index_.find(key);
    return idx ? &slab_[*idx] : nullptr;
  }

  /// Insert V(args...) if absent. Returns {stable value pointer, inserted}.
  template <typename... Args>
  std::pair<V*, bool> try_emplace(const K& key, Args&&... args) {
    auto [idx, fresh] = index_.try_emplace(key);
    if (!fresh) return {&slab_[*idx], false};
    *idx = slab_.emplace(std::forward<Args>(args)...);
    return {&slab_[*idx], true};
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  bool erase(const K& key) {
    std::uint32_t* idx = index_.find(key);
    if (!idx) return false;
    slab_.erase(*idx);
    index_.erase(key);
    return true;
  }

  /// Visit every entry as f(const K&, V&); deterministic but arbitrary order.
  template <typename F>
  void for_each(F&& f) {
    index_.for_each([&](const K& k, std::uint32_t idx) { f(k, slab_[idx]); });
  }

 private:
  FlatMap<K, std::uint32_t, Hash> index_;
  Slab<V> slab_;
};

}  // namespace sim
