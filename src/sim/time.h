// Simulated time for the discrete-event engine.
//
// All simulated durations and instants are signed 64-bit nanosecond counts.
// The paper reports costs in microseconds and milliseconds; the helpers below
// keep call sites readable (`usec(140)`, `msec(1.27)`).
#pragma once

#include <cstdint>

namespace sim {

/// A simulated instant or duration, in nanoseconds.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// Whole nanoseconds.
constexpr Time nsec(std::int64_t n) noexcept { return n; }
/// Whole microseconds.
constexpr Time usec(std::int64_t n) noexcept { return n * kMicrosecond; }
/// Whole milliseconds.
constexpr Time msec(std::int64_t n) noexcept { return n * kMillisecond; }
/// Whole seconds.
constexpr Time sec(std::int64_t n) noexcept { return n * kSecond; }

/// Fractional microseconds (e.g. `usecf(0.8)` for 0.8 us/byte wire time).
constexpr Time usecf(double n) noexcept {
  return static_cast<Time>(n * static_cast<double>(kMicrosecond));
}
/// Fractional milliseconds.
constexpr Time msecf(double n) noexcept {
  return static_cast<Time>(n * static_cast<double>(kMillisecond));
}

/// Convert a duration to floating-point microseconds (for reporting).
constexpr double to_us(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}
/// Convert a duration to floating-point milliseconds (for reporting).
constexpr double to_ms(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
/// Convert a duration to floating-point seconds (for reporting).
constexpr double to_sec(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace sim
