#include "sim/sync.h"

namespace sim {

// User-declared constructor required: GCC 12 double-destroys aggregate
// awaiter temporaries (see the note in cpu.cpp).
struct CondVar::WaitAwaiter {
  WaitAwaiter(CondVar& c, std::shared_ptr<WaitState> st, Time t)
      : cv(c), state(std::move(st)), timeout(t) {}
  CondVar& cv;
  std::shared_ptr<WaitState> state;
  Time timeout;  // < 0 means no timeout

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    state->handle = h;
    cv.waiters_.push_back(state);
    if (timeout >= 0) {
      auto st = state;
      CondVar* self = &cv;
      st->timeout_shot = cv.sim_->after(timeout, [self, st] {
        self->settle_and_resume(st, /*timed_out=*/true);
      });
    }
  }
  bool await_resume() const noexcept { return !state->timed_out; }
};

Co<void> CondVar::wait() {
  WaitAwaiter awaiter(*this, std::make_shared<WaitState>(), /*timeout=*/-1);
  co_await awaiter;
}

Co<bool> CondVar::wait_for(Time timeout) {
  WaitAwaiter awaiter(*this, std::make_shared<WaitState>(), std::max<Time>(timeout, 0));
  const bool notified = co_await awaiter;
  co_return notified;
}

void CondVar::settle_and_resume(const std::shared_ptr<WaitState>& st, bool timed_out) {
  // Inert when this settle *is* the timeout firing: the engine frees the
  // event's slot before invoking its callback.
  st->timeout_shot.cancel();
  st->timed_out = timed_out;
  // Remove from the wait list (it is near the front in the common case).
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (it->get() == st.get()) {
      waiters_.erase(it);
      break;
    }
  }
  sim_->after(0, [st] { st->handle.resume(); });
}

void CondVar::notify_one() {
  if (waiters_.empty()) return;
  settle_and_resume(waiters_.front(), /*timed_out=*/false);
}

void CondVar::notify_all() {
  while (!waiters_.empty()) settle_and_resume(waiters_.front(), /*timed_out=*/false);
}

std::size_t CondVar::waiter_count() const noexcept { return waiters_.size(); }

Co<void> Mutex::lock() {
  ++acquisitions_;
  if (!locked_) {
    locked_ = true;
    co_return;
  }
  ++contentions_;
  do {
    co_await cv_.wait();
  } while (locked_);
  locked_ = true;
}

void Mutex::unlock() {
  require(locked_, "Mutex::unlock: not locked");
  locked_ = false;
  cv_.notify_one();
}

Co<void> Semaphore::acquire() {
  while (count_ <= 0) co_await cv_.wait();
  --count_;
}

void Semaphore::release(std::int64_t n) {
  count_ += n;
  for (std::int64_t i = 0; i < n; ++i) cv_.notify_one();
}

}  // namespace sim
