// Synchronization primitives for simulated threads.
//
// Everything is cooperative and single-host-threaded: a "blocked" activity is
// simply a suspended coroutine parked on a wait list. Wakeups are delivered
// through the Simulator event queue so resumption order is deterministic and
// never re-enters the notifier's stack.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "sim/co.h"
#include "sim/require.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace sim {

/// A condition variable for simulated activities.
///
/// There is no associated mutex: the simulation is cooperative, so the usual
/// lost-wakeup race cannot occur between checking a predicate and suspending
/// (no preemption happens between the check and `co_await wait()`).
/// Callers must still re-check predicates after waking (notify_all, timeouts).
class CondVar {
 public:
  explicit CondVar(Simulator& s) : sim_(&s) {}

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Suspend until notified.
  [[nodiscard]] Co<void> wait();

  /// Suspend until notified or until `timeout` elapses.
  /// Returns true if notified, false on timeout.
  [[nodiscard]] Co<bool> wait_for(Time timeout);

  /// Wake the longest-waiting activity (if any).
  void notify_one();

  /// Wake every currently waiting activity.
  void notify_all();

  [[nodiscard]] std::size_t waiter_count() const noexcept;

 private:
  struct WaitState {
    std::coroutine_handle<> handle;
    bool timed_out = false;
    // Live while a wait_for() deadline is queued; settling cancels it, so a
    // timeout can never fire for an already-notified waiter (and needs no
    // "settled" flag to check).
    EventHandle timeout_shot;
  };
  struct WaitAwaiter;

  void settle_and_resume(const std::shared_ptr<WaitState>& st, bool timed_out);

  Simulator* sim_;
  std::deque<std::shared_ptr<WaitState>> waiters_;
};

/// A mutual-exclusion lock for simulated activities.
///
/// Uncontended acquisition is free in simulated time; the cost of lock
/// operations, where it matters (the paper counts lock() calls), is charged
/// by the layer above via the CostModel. Contended acquirers queue FIFO.
class Mutex {
 public:
  explicit Mutex(Simulator& s) : cv_(s) {}

  [[nodiscard]] Co<void> lock();
  void unlock();

  [[nodiscard]] bool locked() const noexcept { return locked_; }
  /// Total lock() calls (the paper's §4.2 profiling counts these).
  [[nodiscard]] std::uint64_t acquisitions() const noexcept { return acquisitions_; }
  /// How many lock() calls had to wait.
  [[nodiscard]] std::uint64_t contentions() const noexcept { return contentions_; }

 private:
  CondVar cv_;
  bool locked_ = false;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contentions_ = 0;
};

/// RAII guard over Mutex. Acquire with `co_await Lock::acquire(m)`.
class [[nodiscard]] Lock {
 public:
  static Co<Lock> acquire(Mutex& m) {
    co_await m.lock();
    co_return Lock(m);
  }
  Lock(Lock&& o) noexcept : mutex_(std::exchange(o.mutex_, nullptr)) {}
  Lock(const Lock&) = delete;
  Lock& operator=(const Lock&) = delete;
  Lock& operator=(Lock&&) = delete;
  ~Lock() {
    if (mutex_ != nullptr) mutex_->unlock();
  }

 private:
  explicit Lock(Mutex& m) : mutex_(&m) {}
  Mutex* mutex_;
};

/// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Simulator& s, std::int64_t initial) : cv_(s), count_(initial) {}

  [[nodiscard]] Co<void> acquire();
  void release(std::int64_t n = 1);
  [[nodiscard]] std::int64_t count() const noexcept { return count_; }

 private:
  CondVar cv_;
  std::int64_t count_;
};

/// A bounded FIFO channel between simulated activities.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& s, std::size_t capacity = static_cast<std::size_t>(-1))
      : not_empty_(s), not_full_(s), capacity_(capacity) {
    require(capacity_ > 0, "Channel: capacity must be positive");
  }

  /// Blocking send (waits while full).
  Co<void> send(T value) {
    while (items_.size() >= capacity_) co_await not_full_.wait();
    items_.push_back(std::move(value));
    not_empty_.notify_one();
  }

  /// Blocking receive (waits while empty).
  Co<T> recv() {
    while (items_.empty()) co_await not_empty_.wait();
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    co_return value;
  }

  /// Receive with timeout; nullopt on timeout.
  Co<std::optional<T>> recv_for(Time timeout) {
    if (items_.empty()) {
      const bool notified = co_await not_empty_.wait_for(timeout);
      if (!notified && items_.empty()) co_return std::nullopt;
      // A notify can race with another receiver; loop via recursion-free retry.
      while (items_.empty()) {
        const bool again = co_await not_empty_.wait_for(timeout);
        if (!again && items_.empty()) co_return std::nullopt;
      }
    }
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    co_return value;
  }

  bool try_send(T value) {
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

 private:
  std::deque<T> items_;
  CondVar not_empty_;
  CondVar not_full_;
  std::size_t capacity_;
};

}  // namespace sim
