// Interned metric handles for hot-path instrumentation.
//
// The registry's string-keyed accessors walk two trees per event
// (Metrics::node(id), then counter(name)); at millions of protocol events per
// sweep that resolution dominates the cost of the increment itself. A handle
// resolves the registry slot once and then records through a cached pointer
// into the dense slab.
//
// Resolution is *lazy*: the slot is interned on the first add/record, not at
// handle construction. That keeps the observable metric set identical to the
// old per-event lookups — a metric that never fires (e.g. rpc.timeouts in a
// fault-free run) never appears in reports, which tests/metrics asserts — and
// makes a handle on a detached hub a two-branch no-op.
//
// Typical use, one line per instrumentation site:
//
//   // members, resolved from the kernel's simulator at construction:
//   metrics::NodeMetrics nm_{kernel_->sim().metrics(), kernel_->node()};
//   metrics::CounterHandle m_calls_ = nm_.counter("rpc.calls");
//   ...
//   m_calls_.add();  // hot path
#pragma once

#include <cstdint>

#include "metrics/registry.h"

namespace metrics {

class CounterHandle {
 public:
  CounterHandle() = default;
  CounterHandle(MetricsRegistry* reg, const char* name)
      : reg_(reg), name_(name) {}

  void add(std::uint64_t n = 1) {
    if (cached_ == nullptr) {
      if (reg_ == nullptr) return;
      cached_ = &reg_->counter(name_);
    }
    cached_->add(n);
  }

 private:
  MetricsRegistry::Counter* cached_ = nullptr;
  MetricsRegistry* reg_ = nullptr;
  const char* name_ = nullptr;
};

class GaugeHandle {
 public:
  GaugeHandle() = default;
  GaugeHandle(MetricsRegistry* reg, const char* name)
      : reg_(reg), name_(name) {}

  void set(double v) {
    if (cached_ == nullptr) {
      if (reg_ == nullptr) return;
      cached_ = &reg_->gauge(name_);
    }
    cached_->set(v);
  }

 private:
  MetricsRegistry::Gauge* cached_ = nullptr;
  MetricsRegistry* reg_ = nullptr;
  const char* name_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  HistogramHandle(MetricsRegistry* reg, const char* name)
      : reg_(reg), name_(name) {}

  void record(std::uint64_t value, std::uint64_t n = 1) {
    if (cached_ == nullptr) {
      if (reg_ == nullptr) return;
      cached_ = &reg_->histogram(name_);
    }
    cached_->record(value, n);
  }

 private:
  Histogram* cached_ = nullptr;
  MetricsRegistry* reg_ = nullptr;
  const char* name_ = nullptr;
};

/// Factory bound to one node's registry (or inert when the hub is absent):
/// `NodeMetrics(sim.metrics(), node_id).counter("rpc.calls")`.
class NodeMetrics {
 public:
  NodeMetrics() = default;
  NodeMetrics(Metrics* hub, std::uint32_t node)
      : reg_(hub != nullptr ? &hub->node(node) : nullptr) {}

  [[nodiscard]] CounterHandle counter(const char* name) const {
    return {reg_, name};
  }
  [[nodiscard]] GaugeHandle gauge(const char* name) const {
    return {reg_, name};
  }
  [[nodiscard]] HistogramHandle histogram(const char* name) const {
    return {reg_, name};
  }

 private:
  MetricsRegistry* reg_ = nullptr;
};

}  // namespace metrics
