#include "metrics/report.h"

#include <algorithm>
#include <fstream>

#include "metrics/json.h"

#ifndef AMOEBA_GIT_DESCRIBE
#define AMOEBA_GIT_DESCRIBE "unknown"
#endif

namespace metrics {

std::string_view better_name(Better b) noexcept {
  switch (b) {
    case Better::kLower: return "lower";
    case Better::kHigher: return "higher";
    case Better::kInfo: return "info";
  }
  return "info";
}

void RunReport::set_config(std::string key, std::string value) {
  config_.emplace_back(std::move(key), JsonWriter::quote(value));
}

void RunReport::set_config(std::string key, std::int64_t value) {
  config_.emplace_back(std::move(key), std::to_string(value));
}

void RunReport::set_config(std::string key, std::uint64_t value) {
  config_.emplace_back(std::move(key), std::to_string(value));
}

void RunReport::set_config(std::string key, double value) {
  JsonWriter w;
  w.value(value);
  config_.emplace_back(std::move(key), w.take());
}

void RunReport::set_config(std::string key, bool value) {
  config_.emplace_back(std::move(key), value ? "true" : "false");
}

void RunReport::add_metric(std::string name, double value, Better better,
                           std::string unit) {
  for (Metric& m : metrics_) {
    if (m.name == name) {
      m.value = value;
      m.better = better;
      m.unit = std::move(unit);
      return;
    }
  }
  metrics_.push_back(Metric{std::move(name), value, better, std::move(unit)});
}

void RunReport::add_histogram(std::string name, const Histogram& h) {
  histograms_.emplace_back(std::move(name), h);
}

void RunReport::add_ledger(std::string name, const sim::Ledger& ledger) {
  ledgers_.emplace_back(std::move(name), ledger);
}

void RunReport::add_series(
    std::string name, sim::Time window_ns,
    std::vector<std::pair<std::string, std::vector<double>>> columns) {
  series_.push_back(Series{std::move(name), window_ns, std::move(columns)});
}

void RunReport::add_registry(const MetricsRegistry& reg,
                             const std::string& prefix) {
  for (const auto& [name, c] : reg.counters()) {
    add_metric(prefix + name, static_cast<double>(c->value), Better::kInfo,
               "count");
  }
  for (const auto& [name, g] : reg.gauges()) {
    add_metric(prefix + name, g->value, Better::kInfo);
  }
  for (const auto& [name, h] : reg.histograms()) {
    add_histogram(prefix + name, *h);
  }
}

const char* RunReport::git_stamp() noexcept { return AMOEBA_GIT_DESCRIBE; }

std::string RunReport::json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kSchema);
  w.key("schema_version");
  w.value(static_cast<std::int64_t>(kSchemaVersion));
  w.key("bench");
  w.value(bench_);
  w.key("git");
  w.value(AMOEBA_GIT_DESCRIBE);

  w.key("config");
  w.begin_object();
  for (const auto& [key, raw] : config_) {
    w.key(key);
    w.raw(raw);
  }
  w.end_object();

  w.key("metrics");
  w.begin_object();
  // Name order keeps reports diffable regardless of insertion order.
  std::vector<const Metric*> sorted;
  sorted.reserve(metrics_.size());
  for (const Metric& m : metrics_) sorted.push_back(&m);
  std::sort(sorted.begin(), sorted.end(),
            [](const Metric* a, const Metric* b) { return a->name < b->name; });
  for (const Metric* m : sorted) {
    w.key(m->name);
    w.begin_object();
    w.key("value");
    w.value(m->value);
    w.key("better");
    w.value(better_name(m->better));
    if (!m->unit.empty()) {
      w.key("unit");
      w.value(m->unit);
    }
    w.end_object();
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(h.count());
    w.key("sum");
    w.value(h.sum());
    w.key("min");
    w.value(h.min());
    w.key("max");
    w.value(h.max());
    w.key("p50");
    w.value(h.percentile(50));
    w.key("p90");
    w.value(h.percentile(90));
    w.key("p99");
    w.value(h.percentile(99));
    w.key("buckets");
    w.begin_array();
    for (const Histogram::Bucket& b : h.nonzero_buckets()) {
      w.begin_array();
      w.value(b.lower);
      w.value(b.upper);
      w.value(b.count);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("ledgers");
  w.begin_object();
  for (const auto& [name, ledger] : ledgers_) {
    w.key(name);
    w.raw(ledger.json());
  }
  w.end_object();

  // Only present when telemetry ran: reports without it keep their exact
  // pre-series bytes, so committed baselines stay valid.
  if (!series_.empty()) {
    w.key("series");
    w.begin_object();
    for (const Series& s : series_) {
      w.key(s.name);
      w.begin_object();
      w.key("window_ns");
      w.value(static_cast<std::int64_t>(s.window_ns));
      std::size_t windows = 0;
      for (const auto& [cname, values] : s.columns) {
        windows = std::max(windows, values.size());
      }
      w.key("windows");
      w.value(static_cast<std::uint64_t>(windows));
      w.key("columns");
      w.begin_object();
      for (const auto& [cname, values] : s.columns) {
        w.key(cname);
        w.begin_array();
        for (double v : values) w.value(v);
        w.end_array();
      }
      w.end_object();
      w.end_object();
    }
    w.end_object();
  }

  w.end_object();
  std::string out = w.take();
  out += '\n';
  return out;
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << json();
  f.flush();
  return f.good();
}

}  // namespace metrics
