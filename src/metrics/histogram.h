// Log-bucketed latency histogram.
//
// Values (nanoseconds, counts — any non-negative integers) land in buckets
// with 16 linear sub-buckets per power of two, HdrHistogram-style: values
// below 32 are recorded exactly, larger values with a relative bucket width
// of at most 1/16 (6.25%). That bounds the error of every reported
// percentile, which is what the histogram test asserts against sorted-sample
// percentiles. Merging histograms is element-wise addition, so cross-node
// aggregation is associative and loss-free.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace metrics {

class Histogram {
 public:
  /// log2 of the number of linear sub-buckets per power of two.
  static constexpr unsigned kSubBucketBits = 4;
  static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBucketBits;

  void record(std::uint64_t value, std::uint64_t n = 1);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  /// Exact extrema (not bucketed).
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Nearest-rank percentile, `p` in [0, 100]. Returns the upper bound of the
  /// bucket holding the rank-th smallest sample (so estimates never
  /// under-report), exact for p=100 (the tracked max) and for values < 32.
  /// Returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;

  /// Element-wise addition; associative and commutative.
  void merge(const Histogram& other);

  void reset();

  [[nodiscard]] bool operator==(const Histogram& other) const noexcept;

  /// Non-empty buckets as [lower, upper] inclusive value ranges, ascending.
  struct Bucket {
    std::uint64_t lower = 0;
    std::uint64_t upper = 0;
    std::uint64_t count = 0;
  };
  [[nodiscard]] std::vector<Bucket> nonzero_buckets() const;

  // Bucket index math, exposed for the tests.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept;
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t index) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index) noexcept;

 private:
  std::vector<std::uint64_t> counts_;  // grown on demand, index = bucket_index
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

}  // namespace metrics
