// Regression comparison between two RunReports or two SweepReports.
//
// amoeba-runreport/*: walks the `metrics` sections of an old and a new
// report, computes the relative delta for every metric present in both, and
// flags a regression when a direction-tagged metric ("better":
// "lower"/"higher") moves the wrong way by more than the threshold.
// Histogram percentiles (p50/p90/p99, max) are compared as lower-is-better
// latencies.
//
// amoeba-sweepreport/*: compares per-cell metric *means*, with CI-overlap
// noise gating — a wrong-direction move beyond the threshold only regresses
// when the two 95% confidence intervals are disjoint; overlapping intervals
// mark the delta `noise_gated` instead. Multi-seed sweeps carry real
// dispersion, so gating on the point estimate alone would flag noise.
//
// amoeba-profile/*: compares per-mechanism on-path time and per-operation
// latency percentiles as lower-is-better, but the comparison is *advisory*:
// the CLI reports profile regressions without failing (attribution splits
// move with profiler refinements). Run-report `series` sections flatten to
// informational per-column means.
//
// Mixing schemas is a comparison error. The report_compare CLI is a thin
// wrapper; the logic lives here so tests can drive it directly.
#pragma once

#include <string>
#include <vector>

#include "metrics/json.h"

namespace metrics {

struct CompareOptions {
  /// Relative change (percent) beyond which a wrong-direction move regresses.
  double threshold_pct = 5.0;
  /// Also list informational metrics that changed (never gate on them).
  bool show_info = false;
};

struct MetricDelta {
  std::string name;
  double old_value = 0.0;
  double new_value = 0.0;
  /// Relative change in percent ((new - old) / |old| * 100); 0 when both 0.
  double delta_pct = 0.0;
  std::string better;  // "lower", "higher", "info"
  bool regression = false;
  bool improvement = false;
  /// Sweep reports only: 95% CI half-widths of the two means.
  double old_ci = 0.0;
  double new_ci = 0.0;
  /// Sweep reports only: the mean moved beyond the threshold in the wrong
  /// direction, but the confidence intervals overlap — treated as noise,
  /// not a regression.
  bool noise_gated = false;
};

struct CompareResult {
  /// Non-empty when either input is not a parseable RunReport.
  std::string error;
  std::vector<MetricDelta> deltas;       // tracked metrics in both reports
  std::vector<std::string> only_old;     // tracked metrics that disappeared
  std::vector<std::string> only_new;     // tracked metrics that appeared
  /// One entry per `only_new` name, carrying the new report's value so a
  /// renderer can show the row instead of a bare name. A metric the baseline
  /// has never seen has no direction to regress in, so these are always
  /// "info" and never gate — refresh the baseline to start tracking them.
  std::vector<MetricDelta> added;
  bool regressed = false;
  /// amoeba-profile/* comparisons are warn-only by default: regressions are
  /// reported but the CLI exits 0 unless the caller opts into gating.
  bool advisory = false;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

[[nodiscard]] CompareResult compare_reports(const JsonValue& old_report,
                                            const JsonValue& new_report,
                                            const CompareOptions& options = {});

/// Convenience: parse both JSON texts and compare (errors reported in the
/// result, never thrown).
[[nodiscard]] CompareResult compare_report_texts(
    const std::string& old_text, const std::string& new_text,
    const CompareOptions& options = {});

}  // namespace metrics
