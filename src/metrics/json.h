// Minimal JSON support for the metrics subsystem: a streaming writer (used by
// the RunReport serializer) and a small recursive-descent parser (used by
// report_compare and the tests). No external dependencies; covers exactly the
// JSON subset RunReports emit — objects, arrays, strings, finite numbers,
// booleans and null.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace metrics {

/// Streaming JSON writer with comma/indent management. Keys and values must
/// alternate correctly inside objects; misuse trips a sim::require-style
/// assert in debug builds via the internal state checks.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object key; must be followed by exactly one value (or container).
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::int64_t i);
  void value(std::uint64_t u);
  void value(bool b);
  void null();

  /// Splice pre-serialized JSON (e.g. sim::Ledger::json()) as a value.
  void raw(std::string_view json);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

  /// Escape `s` into a quoted JSON string literal.
  static std::string quote(std::string_view s);

 private:
  void comma_for_value();
  void newline_indent();

  std::string out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> wrote_element_;
  bool after_key_ = false;
};

/// Parsed JSON value. Object member order is preserved (reports are written
/// in deterministic order, and diffs read better that way).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr if absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  [[nodiscard]] bool is_object() const noexcept { return type == Type::kObject; }
  [[nodiscard]] bool is_number() const noexcept { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
};

/// Parses `text`; on failure returns nullopt and, if `error` is non-null,
/// stores a one-line description with the byte offset.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace metrics
