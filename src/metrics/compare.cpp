#include "metrics/compare.h"

#include <cmath>
#include <map>

namespace metrics {
namespace {

struct Tracked {
  double value = 0.0;
  std::string better;
};

/// Flattens a report into name -> tracked metric: the `metrics` section
/// verbatim, plus the latency percentiles of every histogram.
bool flatten(const JsonValue& report, std::map<std::string, Tracked>& out,
             std::string& error) {
  if (!report.is_object()) {
    error = "not a JSON object";
    return false;
  }
  const JsonValue* schema = report.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string.rfind("amoeba-runreport/", 0) != 0) {
    error = "missing or foreign \"schema\" tag (expected amoeba-runreport/*)";
    return false;
  }
  if (const JsonValue* m = report.find("metrics"); m != nullptr && m->is_object()) {
    for (const auto& [name, entry] : m->object) {
      const JsonValue* value = entry.find("value");
      if (value == nullptr || !value->is_number()) continue;
      const JsonValue* better = entry.find("better");
      out[name] = Tracked{value->number, better != nullptr && better->is_string()
                                             ? better->string
                                             : "info"};
    }
  }
  if (const JsonValue* hs = report.find("histograms");
      hs != nullptr && hs->is_object()) {
    for (const auto& [name, h] : hs->object) {
      for (const char* q : {"p50", "p90", "p99", "max"}) {
        if (const JsonValue* v = h.find(q); v != nullptr && v->is_number()) {
          out[name + "." + q] = Tracked{v->number, "lower"};
        }
      }
      if (const JsonValue* c = h.find("count"); c != nullptr && c->is_number()) {
        out[name + ".count"] = Tracked{c->number, "info"};
      }
    }
  }
  return true;
}

}  // namespace

CompareResult compare_reports(const JsonValue& old_report,
                              const JsonValue& new_report,
                              const CompareOptions& options) {
  CompareResult result;
  std::map<std::string, Tracked> old_metrics;
  std::map<std::string, Tracked> new_metrics;
  std::string err;
  if (!flatten(old_report, old_metrics, err)) {
    result.error = "old report: " + err;
    return result;
  }
  if (!flatten(new_report, new_metrics, err)) {
    result.error = "new report: " + err;
    return result;
  }

  for (const auto& [name, old_m] : old_metrics) {
    const auto it = new_metrics.find(name);
    if (it == new_metrics.end()) {
      if (old_m.better != "info") result.only_old.push_back(name);
      continue;
    }
    const Tracked& new_m = it->second;
    MetricDelta d;
    d.name = name;
    d.old_value = old_m.value;
    d.new_value = new_m.value;
    // Direction tags should agree; if they changed between versions, trust
    // the new report.
    d.better = new_m.better;
    if (old_m.value == 0.0 && new_m.value == 0.0) {
      d.delta_pct = 0.0;
    } else if (old_m.value == 0.0) {
      d.delta_pct = new_m.value > 0 ? 100.0 : -100.0;
    } else {
      d.delta_pct =
          (new_m.value - old_m.value) / std::fabs(old_m.value) * 100.0;
    }
    const bool moved = std::fabs(d.delta_pct) > options.threshold_pct;
    if (d.better == "lower") {
      d.regression = moved && d.delta_pct > 0;
      d.improvement = moved && d.delta_pct < 0;
    } else if (d.better == "higher") {
      d.regression = moved && d.delta_pct < 0;
      d.improvement = moved && d.delta_pct > 0;
    }
    result.regressed = result.regressed || d.regression;
    if (d.better != "info" || options.show_info) {
      result.deltas.push_back(std::move(d));
    }
  }
  for (const auto& [name, new_m] : new_metrics) {
    if (new_m.better != "info" && !old_metrics.contains(name)) {
      result.only_new.push_back(name);
    }
  }
  return result;
}

CompareResult compare_report_texts(const std::string& old_text,
                                   const std::string& new_text,
                                   const CompareOptions& options) {
  CompareResult result;
  std::string err;
  const std::optional<JsonValue> old_report = parse_json(old_text, &err);
  if (!old_report) {
    result.error = "old report: " + err;
    return result;
  }
  err.clear();
  const std::optional<JsonValue> new_report = parse_json(new_text, &err);
  if (!new_report) {
    result.error = "new report: " + err;
    return result;
  }
  return compare_reports(*old_report, *new_report, options);
}

}  // namespace metrics
