#include "metrics/compare.h"

#include <cmath>
#include <map>

namespace metrics {
namespace {

struct Tracked {
  double value = 0.0;
  std::string better;
  // Sweep means only: 95% CI half-width and whether one was present.
  double ci = 0.0;
  bool has_ci = false;
};

enum class Schema { kUnknown, kRunReport, kSweepReport, kProfile };

Schema schema_of(const JsonValue& report) {
  if (!report.is_object()) return Schema::kUnknown;
  const JsonValue* schema = report.find("schema");
  if (schema == nullptr || !schema->is_string()) return Schema::kUnknown;
  if (schema->string.rfind("amoeba-runreport/", 0) == 0) {
    return Schema::kRunReport;
  }
  if (schema->string.rfind("amoeba-sweepreport/", 0) == 0) {
    return Schema::kSweepReport;
  }
  if (schema->string.rfind("amoeba-profile/", 0) == 0) {
    return Schema::kProfile;
  }
  return Schema::kUnknown;
}

/// Flattens a run report into name -> tracked metric: the `metrics` section
/// verbatim, plus the latency percentiles of every histogram.
bool flatten(const JsonValue& report, std::map<std::string, Tracked>& out,
             std::string& error) {
  if (schema_of(report) != Schema::kRunReport) {
    error =
        "missing or foreign \"schema\" tag (expected amoeba-runreport/* or "
        "amoeba-sweepreport/*)";
    return false;
  }
  if (const JsonValue* m = report.find("metrics"); m != nullptr && m->is_object()) {
    for (const auto& [name, entry] : m->object) {
      const JsonValue* value = entry.find("value");
      if (value == nullptr || !value->is_number()) continue;
      const JsonValue* better = entry.find("better");
      out[name] = Tracked{value->number, better != nullptr && better->is_string()
                                             ? better->string
                                             : "info"};
    }
  }
  if (const JsonValue* hs = report.find("histograms");
      hs != nullptr && hs->is_object()) {
    for (const auto& [name, h] : hs->object) {
      for (const char* q : {"p50", "p90", "p99", "max"}) {
        if (const JsonValue* v = h.find(q); v != nullptr && v->is_number()) {
          out[name + "." + q] = Tracked{v->number, "lower"};
        }
      }
      if (const JsonValue* c = h.find("count"); c != nullptr && c->is_number()) {
        out[name + ".count"] = Tracked{c->number, "info"};
      }
    }
  }
  // Time-series telemetry rides along informationally: per-column window
  // means, never gated (windowed rates are workload-phase dependent).
  if (const JsonValue* ss = report.find("series");
      ss != nullptr && ss->is_object()) {
    for (const auto& [sname, s] : ss->object) {
      const JsonValue* cols = s.find("columns");
      if (cols == nullptr || !cols->is_object()) continue;
      for (const auto& [cname, values] : cols->object) {
        if (!values.is_array() || values.array.empty()) continue;
        double sum = 0.0;
        std::size_t n = 0;
        for (const JsonValue& v : values.array) {
          if (!v.is_number()) continue;
          sum += v.number;
          ++n;
        }
        if (n == 0) continue;
        out["series." + sname + "." + cname + ".mean"] =
            Tracked{sum / static_cast<double>(n), "info"};
      }
    }
  }
  return true;
}

/// Flattens an amoeba-profile/v1 document: per-mechanism on-path time and
/// per-operation latency percentiles gate as lower-is-better; counts,
/// off-path time and residuals ride along informationally.
bool flatten_profile(const JsonValue& report,
                     std::map<std::string, Tracked>& out, std::string& error) {
  const JsonValue* ms = report.find("mechanisms");
  if (ms == nullptr || !ms->is_object()) {
    error = "profile has no \"mechanisms\" object";
    return false;
  }
  for (const auto& [name, m] : ms->object) {
    if (const JsonValue* v = m.find("on_path_ns");
        v != nullptr && v->is_number()) {
      out["mechanisms." + name + ".on_path_ns"] = Tracked{v->number, "lower"};
    }
    for (const char* q : {"off_path_ns", "total_ns", "count"}) {
      if (const JsonValue* v = m.find(q); v != nullptr && v->is_number()) {
        out["mechanisms." + name + "." + q] = Tracked{v->number, "info"};
      }
    }
  }
  if (const JsonValue* ops = report.find("ops");
      ops != nullptr && ops->is_object()) {
    for (const char* kind : {"rpc", "group"}) {
      const JsonValue* k = ops->find(kind);
      if (k == nullptr || !k->is_object()) continue;
      for (const char* q : {"p50_ns", "p99_ns", "max_ns"}) {
        if (const JsonValue* v = k->find(q); v != nullptr && v->is_number()) {
          out[std::string("ops.") + kind + "." + q] = Tracked{v->number, "lower"};
        }
      }
      if (const JsonValue* v = k->find("count");
          v != nullptr && v->is_number()) {
        out[std::string("ops.") + kind + ".count"] = Tracked{v->number, "info"};
      }
    }
  }
  if (const JsonValue* rs = report.find("residuals");
      rs != nullptr && rs->is_object()) {
    for (const auto& [name, v] : rs->object) {
      if (v.is_number()) out["residuals." + name] = Tracked{v.number, "info"};
    }
  }
  return true;
}

/// Flattens a sweep report into "cell/metric.stat" -> tracked metric. The
/// direction-tagged entry is the mean (with its CI for overlap gating);
/// p95 and the replicate count ride along as informational.
bool flatten_sweep(const JsonValue& report, std::map<std::string, Tracked>& out,
                   std::string& error) {
  const JsonValue* cells = report.find("cells");
  if (cells == nullptr || !cells->is_object()) {
    error = "sweep report has no \"cells\" object";
    return false;
  }
  for (const auto& [cell, body] : cells->object) {
    const JsonValue* ms = body.find("metrics");
    if (ms == nullptr || !ms->is_object()) continue;
    for (const auto& [metric, m] : ms->object) {
      const JsonValue* mean = m.find("mean");
      if (mean == nullptr || !mean->is_number()) continue;
      const std::string base = cell + "/" + metric;
      Tracked t;
      t.value = mean->number;
      const JsonValue* better = m.find("better");
      t.better = better != nullptr && better->is_string() ? better->string
                                                          : "info";
      if (const JsonValue* ci = m.find("ci95");
          ci != nullptr && ci->is_number()) {
        t.ci = ci->number;
        t.has_ci = true;
      }
      out[base + ".mean"] = std::move(t);
      if (const JsonValue* p95 = m.find("p95");
          p95 != nullptr && p95->is_number()) {
        out[base + ".p95"] = Tracked{p95->number, "info", 0.0, false};
      }
      if (const JsonValue* n = m.find("n"); n != nullptr && n->is_number()) {
        out[base + ".n"] = Tracked{n->number, "info", 0.0, false};
      }
    }
  }
  return true;
}

}  // namespace

CompareResult compare_reports(const JsonValue& old_report,
                              const JsonValue& new_report,
                              const CompareOptions& options) {
  CompareResult result;
  const Schema old_schema = schema_of(old_report);
  const Schema new_schema = schema_of(new_report);
  if (old_schema != Schema::kUnknown && new_schema != Schema::kUnknown &&
      old_schema != new_schema) {
    result.error =
        "schema mismatch: cannot compare reports of different schemas "
        "(run report / sweep report / profile)";
    return result;
  }
  const Schema schema = old_schema;
  // Profiles are advisory by default: their per-mechanism splits shift with
  // attribution refinements, so the CLI reports but does not gate on them.
  result.advisory = schema == Schema::kProfile;

  const auto flatten_any = [&](const JsonValue& report,
                               std::map<std::string, Tracked>& out,
                               std::string& err) {
    switch (schema) {
      case Schema::kSweepReport: return flatten_sweep(report, out, err);
      case Schema::kProfile: return flatten_profile(report, out, err);
      default: return flatten(report, out, err);
    }
  };
  std::map<std::string, Tracked> old_metrics;
  std::map<std::string, Tracked> new_metrics;
  std::string err;
  if (!flatten_any(old_report, old_metrics, err)) {
    result.error = "old report: " + err;
    return result;
  }
  if (!flatten_any(new_report, new_metrics, err)) {
    result.error = "new report: " + err;
    return result;
  }

  for (const auto& [name, old_m] : old_metrics) {
    const auto it = new_metrics.find(name);
    if (it == new_metrics.end()) {
      if (old_m.better != "info") result.only_old.push_back(name);
      continue;
    }
    const Tracked& new_m = it->second;
    MetricDelta d;
    d.name = name;
    d.old_value = old_m.value;
    d.new_value = new_m.value;
    // Direction tags should agree; if they changed between versions, trust
    // the new report.
    d.better = new_m.better;
    if (old_m.value == 0.0 && new_m.value == 0.0) {
      d.delta_pct = 0.0;
    } else if (old_m.value == 0.0) {
      d.delta_pct = new_m.value > 0 ? 100.0 : -100.0;
    } else {
      d.delta_pct =
          (new_m.value - old_m.value) / std::fabs(old_m.value) * 100.0;
    }
    const bool moved = std::fabs(d.delta_pct) > options.threshold_pct;
    // Sweep means carry dispersion: a move whose 95% confidence intervals
    // still overlap is indistinguishable from seed noise and never gates.
    bool overlap = false;
    if (old_m.has_ci || new_m.has_ci) {
      d.old_ci = old_m.ci;
      d.new_ci = new_m.ci;
      overlap = old_m.value - old_m.ci <= new_m.value + new_m.ci &&
                new_m.value - new_m.ci <= old_m.value + old_m.ci;
    }
    if (d.better == "lower") {
      d.regression = moved && d.delta_pct > 0;
      d.improvement = moved && d.delta_pct < 0;
    } else if (d.better == "higher") {
      d.regression = moved && d.delta_pct < 0;
      d.improvement = moved && d.delta_pct > 0;
    }
    if ((d.regression || d.improvement) && overlap) {
      d.regression = false;
      d.improvement = false;
      d.noise_gated = true;
    }
    result.regressed = result.regressed || d.regression;
    if (d.better != "info" || options.show_info) {
      result.deltas.push_back(std::move(d));
    }
  }
  for (const auto& [name, new_m] : new_metrics) {
    if (new_m.better != "info" && !old_metrics.contains(name)) {
      result.only_new.push_back(name);
      // Surface the value too: a row the baseline predates is rendered as an
      // informational line, never a failure — the baseline refresh is what
      // promotes it to a gated metric.
      MetricDelta d;
      d.name = name;
      d.new_value = new_m.value;
      d.better = "info";
      result.added.push_back(std::move(d));
    }
  }
  return result;
}

CompareResult compare_report_texts(const std::string& old_text,
                                   const std::string& new_text,
                                   const CompareOptions& options) {
  CompareResult result;
  std::string err;
  const std::optional<JsonValue> old_report = parse_json(old_text, &err);
  if (!old_report) {
    result.error = "old report: " + err;
    return result;
  }
  err.clear();
  const std::optional<JsonValue> new_report = parse_json(new_text, &err);
  if (!new_report) {
    result.error = "new report: " + err;
    return result;
  }
  return compare_reports(*old_report, *new_report, options);
}

}  // namespace metrics
