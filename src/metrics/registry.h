// Per-node metrics registry and the simulation-wide hub.
//
// The Ledger (sim/ledger.h) accounts simulated *time* per mechanism; the
// registry accounts *events and distributions*: protocol counters (calls,
// fragments, retransmits), sampled gauges (wire utilisation, queue peaks) and
// log-bucketed latency histograms (RPC and group round trips). Like the
// Tracer, recording is pure observation — it never schedules events, draws
// random numbers, or charges simulated time, so runs with metrics on or off
// are time- and trace-identical (asserted by tests/metrics).
//
// A metrics::Metrics hub attaches to the Simulator the same way a Tracer
// does: instrumented sites do
//   if (auto* mx = sim.metrics()) mx->node(id).counter("rpc.calls").add();
// so a disabled hub costs one pointer test.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "metrics/histogram.h"
#include "sim/simulator.h"

namespace metrics {

class MetricsRegistry {
 public:
  struct Counter {
    std::uint64_t value = 0;
    void add(std::uint64_t n = 1) noexcept { value += n; }
  };

  struct Gauge {
    double value = 0.0;
    void set(double v) noexcept { value = v; }
  };

  /// Find-or-create; returned references are stable (map nodes never move).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Name-ordered views for deterministic serialization.
  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges()
      const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>&
  histograms() const noexcept {
    return histograms_;
  }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Cross-node aggregation: counters and gauges add, histograms merge
  /// (all associative).
  void merge(const MetricsRegistry& other);

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// The per-run hub: one registry per node plus a global one for metrics that
/// belong to no single station (the wire, the switch). Attaches to the
/// simulator on construction, detaches on destruction (the simulator must
/// outlive it).
class Metrics {
 public:
  explicit Metrics(sim::Simulator& s);
  ~Metrics();

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  [[nodiscard]] MetricsRegistry& node(std::uint32_t id) { return nodes_[id]; }
  [[nodiscard]] MetricsRegistry& global() noexcept { return global_; }

  [[nodiscard]] const std::map<std::uint32_t, MetricsRegistry>& nodes()
      const noexcept {
    return nodes_;
  }

  /// Global registry plus every node registry, merged.
  [[nodiscard]] MetricsRegistry aggregate() const;

 private:
  sim::Simulator* sim_;
  MetricsRegistry global_;
  std::map<std::uint32_t, MetricsRegistry> nodes_;
};

}  // namespace metrics
