// Per-node metrics registry and the simulation-wide hub.
//
// The Ledger (sim/ledger.h) accounts simulated *time* per mechanism; the
// registry accounts *events and distributions*: protocol counters (calls,
// fragments, retransmits), sampled gauges (wire utilisation, queue peaks) and
// log-bucketed latency histograms (RPC and group round trips). Like the
// Tracer, recording is pure observation — it never schedules events, draws
// random numbers, or charges simulated time, so runs with metrics on or off
// are time- and trace-identical (asserted by tests/metrics).
//
// A metrics::Metrics hub attaches to the Simulator the same way a Tracer
// does. Hot-path instrumentation goes through interned handles
// (metrics/handles.h) that cache a pointer into the dense slab below; the
// string-keyed accessors here are the resolution path, not the per-event
// path. Storage is a deque slab (stable addresses, cache-dense) with a
// name-ordered pointer index for deterministic serialization.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "metrics/histogram.h"
#include "sim/simulator.h"

namespace metrics {

class MetricsRegistry {
 public:
  struct Counter {
    std::uint64_t value = 0;
    void add(std::uint64_t n = 1) noexcept { value += n; }
  };

  struct Gauge {
    double value = 0.0;
    void set(double v) noexcept { value = v; }
  };

  MetricsRegistry() = default;
  // The name index stores pointers into the slab, so copies rebuild it by
  // merging; moves keep it valid (deque moves preserve element addresses).
  MetricsRegistry(const MetricsRegistry& other) { merge(other); }
  MetricsRegistry& operator=(const MetricsRegistry& other);
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  /// Find-or-create; returned references are stable (slab entries never
  /// move).
  Counter& counter(std::string_view name) { return counters_.intern(name); }
  Gauge& gauge(std::string_view name) { return gauges_.intern(name); }
  Histogram& histogram(std::string_view name) {
    return histograms_.intern(name);
  }

  // Name-ordered pointer views for deterministic serialization.
  using CounterMap = std::map<std::string, Counter*, std::less<>>;
  using GaugeMap = std::map<std::string, Gauge*, std::less<>>;
  using HistogramMap = std::map<std::string, Histogram*, std::less<>>;

  [[nodiscard]] const CounterMap& counters() const noexcept {
    return counters_.index;
  }
  [[nodiscard]] const GaugeMap& gauges() const noexcept {
    return gauges_.index;
  }
  [[nodiscard]] const HistogramMap& histograms() const noexcept {
    return histograms_.index;
  }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.index.empty() && gauges_.index.empty() &&
           histograms_.index.empty();
  }

  /// Cross-node aggregation: counters and gauges add, histograms merge
  /// (all associative).
  void merge(const MetricsRegistry& other);

 private:
  template <typename T>
  struct Family {
    std::deque<T> slab;
    std::map<std::string, T*, std::less<>> index;

    T& intern(std::string_view name) {
      const auto it = index.find(name);
      if (it != index.end()) return *it->second;
      T& slot = slab.emplace_back();
      index.emplace(std::string(name), &slot);
      return slot;
    }
  };

  Family<Counter> counters_;
  Family<Gauge> gauges_;
  Family<Histogram> histograms_;
};

/// The per-run hub: one registry per node plus a global one for metrics that
/// belong to no single station (the wire, the switch). Attaches to the
/// simulator on construction, detaches on destruction (the simulator must
/// outlive it).
class Metrics {
 public:
  explicit Metrics(sim::Simulator& s);
  ~Metrics();

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  [[nodiscard]] MetricsRegistry& node(std::uint32_t id) { return nodes_[id]; }
  [[nodiscard]] MetricsRegistry& global() noexcept { return global_; }

  [[nodiscard]] const std::map<std::uint32_t, MetricsRegistry>& nodes()
      const noexcept {
    return nodes_;
  }

  /// Global registry plus every node registry, merged.
  [[nodiscard]] MetricsRegistry aggregate() const;

 private:
  sim::Simulator* sim_;
  MetricsRegistry global_;
  std::map<std::uint32_t, MetricsRegistry> nodes_;
};

}  // namespace metrics
