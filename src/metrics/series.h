// Windowed time-series telemetry over a running simulation.
//
// A SeriesSampler attaches to the Simulator's per-step observer hook and
// closes fixed simulated-time windows as the dispatch loop crosses their
// boundaries. At each close it polls its registered sources *host-side*:
//
//  * gauge    — instantaneous value at window close (queue depths),
//  * rate     — cumulative counter, reported as delta/second over the window
//               (deliveries/s, retransmits/s, bytes/s; with a scale factor,
//               segment busy-time deltas become utilisation fractions),
//  * hist     — cumulative histogram, reported as windowed p50/p99 computed
//               from bucket-count deltas (two columns, `<name>.p50` and
//               `<name>.p99`).
//
// The sampler is pure observation, like Tracer and Metrics: it never
// schedules events, draws random numbers, or charges simulated time, so an
// enabled sampler leaves traces byte-identical (the fixture digest test runs
// with it on to prove exactly that). Results serialize as the `series`
// section of run reports and as summary scalars for sweep trials.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "metrics/histogram.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace metrics {

class SeriesSampler final : public sim::StepObserver {
 public:
  /// Attaches to the simulator's step-observer slot; detaches on destruction
  /// (if still attached). Windows are [k*window, (k+1)*window).
  SeriesSampler(sim::Simulator& s, sim::Time window);
  ~SeriesSampler();

  SeriesSampler(const SeriesSampler&) = delete;
  SeriesSampler& operator=(const SeriesSampler&) = delete;

  /// Instantaneous value polled at each window close.
  void add_gauge(std::string name, std::function<double()> poll);

  /// Cumulative counter; the column reports (delta * scale) / window_seconds.
  /// scale=1 gives events/second; scale=1e-9 over a busy-time counter in
  /// nanoseconds gives a utilisation fraction.
  void add_rate(std::string name, std::function<double()> poll,
                double scale = 1.0);

  /// Cumulative histogram; emits windowed p50/p99 columns computed from
  /// bucket-count deltas (0 for windows with no new samples).
  void add_histogram(std::string name, std::function<Histogram()> poll);

  void on_step(sim::Time now) override;

  /// Close the final (possibly partial) window at simulation end. Idempotent
  /// per end time; call before reading columns.
  void finish(sim::Time end);

  [[nodiscard]] sim::Time window() const noexcept { return window_; }
  [[nodiscard]] std::size_t windows() const noexcept { return windows_; }

  struct Column {
    std::string name;
    std::vector<double> values;  // one per closed window
  };
  /// Columns in registration order (histogram sources contribute two).
  [[nodiscard]] const std::vector<Column>& columns() const noexcept {
    return columns_;
  }

  /// Per-column summary scalars for sweep trials: `<name>.mean` and
  /// `<name>.max` over the closed windows.
  [[nodiscard]] std::vector<std::pair<std::string, double>> summary() const;

 private:
  void close_window();

  struct Source {
    enum class Kind : std::uint8_t { kGauge, kRate, kHist };
    Kind kind;
    std::function<double()> poll;
    std::function<Histogram()> poll_hist;
    double scale = 1.0;
    double prev = 0.0;       // rate: last cumulative value
    Histogram prev_hist;     // hist: last cumulative snapshot
    std::size_t column = 0;  // first column index (hist uses two)
  };

  sim::Simulator* sim_;
  sim::Time window_;
  sim::Time next_close_ = 0;
  std::size_t windows_ = 0;
  std::vector<Source> sources_;
  std::vector<Column> columns_;
};

}  // namespace metrics
