// Machine-readable run reports.
//
// A RunReport is the versioned JSON artifact a bench binary emits with
// `--json=FILE`: schema tag, bench name, git describe, the run configuration,
// named scalar metrics (each tagged with the direction in which change is a
// regression), latency histograms with precomputed percentiles, and
// per-mechanism ledger sections. report_compare consumes two of these and
// flags regressions, so the numbers that matter are the ones written here.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/histogram.h"
#include "metrics/registry.h"
#include "sim/ledger.h"

namespace metrics {

/// Which direction of change counts as a regression for a metric.
enum class Better : std::uint8_t {
  kLower,   // latencies, costs: increases regress
  kHigher,  // throughputs, rates: decreases regress
  kInfo,    // informational; never gates
};

[[nodiscard]] std::string_view better_name(Better b) noexcept;

class RunReport {
 public:
  static constexpr std::string_view kSchema = "amoeba-runreport/v1";
  static constexpr int kSchemaVersion = 1;

  explicit RunReport(std::string bench) : bench_(std::move(bench)) {}

  /// The `git describe --always --dirty` stamp every report carries (baked
  /// in at configure time). Lets writers refuse or flag `-dirty` baselines.
  [[nodiscard]] static const char* git_stamp() noexcept;

  // Run configuration (testbed shape, seed, flags).
  void set_config(std::string key, std::string value);
  void set_config(std::string key, std::int64_t value);
  void set_config(std::string key, std::uint64_t value);
  void set_config(std::string key, double value);
  void set_config(std::string key, bool value);

  /// A tracked scalar. Names are unique; re-adding overwrites.
  void add_metric(std::string name, double value, Better better,
                  std::string unit = {});

  /// A latency histogram, serialized with p50/p90/p99/max and its buckets.
  void add_histogram(std::string name, const Histogram& h);

  /// A per-mechanism time ledger section (e.g. one per binding).
  void add_ledger(std::string name, const sim::Ledger& ledger);

  /// A time-series section (from metrics::SeriesSampler): window length, and
  /// one value per closed window per column. Serialized under a top-level
  /// `series` key (emitted only when at least one series was added, so
  /// reports without telemetry keep their exact historical bytes).
  void add_series(std::string name, sim::Time window_ns,
                  std::vector<std::pair<std::string, std::vector<double>>>
                      columns);

  /// Import a whole registry: counters and gauges become informational
  /// metrics, histograms become histogram sections. `prefix` namespaces the
  /// entries (e.g. "user.").
  void add_registry(const MetricsRegistry& reg, const std::string& prefix = {});

  [[nodiscard]] std::string json() const;

  /// Writes the report to `path`. Returns false (with the OS error intact in
  /// errno) if the file cannot be opened or written.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  struct Metric {
    std::string name;
    double value = 0.0;
    Better better = Better::kInfo;
    std::string unit;
  };

  struct Series {
    std::string name;
    sim::Time window_ns = 0;
    std::vector<std::pair<std::string, std::vector<double>>> columns;
  };

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> config_;  // key -> raw JSON
  std::vector<Metric> metrics_;
  std::vector<std::pair<std::string, Histogram>> histograms_;
  std::vector<std::pair<std::string, sim::Ledger>> ledgers_;
  std::vector<Series> series_;
};

}  // namespace metrics
