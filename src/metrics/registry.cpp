#include "metrics/registry.h"

namespace metrics {

MetricsRegistry& MetricsRegistry::operator=(const MetricsRegistry& other) {
  if (this == &other) return *this;
  counters_ = Family<Counter>{};
  gauges_ = Family<Gauge>{};
  histograms_ = Family<Histogram>{};
  merge(other);
  return *this;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_.index) {
    counter(name).value += c->value;
  }
  for (const auto& [name, g] : other.gauges_.index) {
    gauge(name).value += g->value;
  }
  for (const auto& [name, h] : other.histograms_.index) {
    histogram(name).merge(*h);
  }
}

Metrics::Metrics(sim::Simulator& s) : sim_(&s) { s.set_metrics(this); }

Metrics::~Metrics() {
  if (sim_->metrics() == this) sim_->set_metrics(nullptr);
}

MetricsRegistry Metrics::aggregate() const {
  MetricsRegistry out;
  out.merge(global_);
  for (const auto& [id, reg] : nodes_) out.merge(reg);
  return out;
}

}  // namespace metrics
