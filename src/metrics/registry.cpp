#include "metrics/registry.h"

namespace metrics {

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).value += c.value;
  for (const auto& [name, g] : other.gauges_) gauge(name).value += g.value;
  for (const auto& [name, h] : other.histograms_) histogram(name).merge(h);
}

Metrics::Metrics(sim::Simulator& s) : sim_(&s) { s.set_metrics(this); }

Metrics::~Metrics() {
  if (sim_->metrics() == this) sim_->set_metrics(nullptr);
}

MetricsRegistry Metrics::aggregate() const {
  MetricsRegistry out = global_;
  for (const auto& [id, reg] : nodes_) out.merge(reg);
  return out;
}

}  // namespace metrics
