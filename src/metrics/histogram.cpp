#include "metrics/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace metrics {

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const unsigned h = 63U - static_cast<unsigned>(std::countl_zero(value));
  const std::uint64_t sub =
      (value >> (h - kSubBucketBits)) & (kSubBuckets - 1);
  return static_cast<std::size_t>(
      ((static_cast<std::uint64_t>(h) - kSubBucketBits + 1) << kSubBucketBits) +
      sub);
}

std::uint64_t Histogram::bucket_lower(std::size_t index) noexcept {
  if (index < 2 * kSubBuckets) return index;  // exact range
  const unsigned h =
      static_cast<unsigned>(index >> kSubBucketBits) + kSubBucketBits - 1;
  const std::uint64_t sub = index & (kSubBuckets - 1);
  return (kSubBuckets + sub) << (h - kSubBucketBits);
}

std::uint64_t Histogram::bucket_upper(std::size_t index) noexcept {
  if (index < 2 * kSubBuckets) return index;  // exact range
  return bucket_lower(index + 1) - 1;
}

void Histogram::record(std::uint64_t value, std::uint64_t n) {
  if (n == 0) return;
  const std::size_t idx = bucket_index(value);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += n;
  count_ += n;
  sum_ += value * n;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

std::uint64_t Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      // The rank-th sample is inside this bucket; its upper bound bounds the
      // true value from above, and the tracked max bounds the last bucket.
      return std::min(bucket_upper(i), max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::reset() {
  counts_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<std::uint64_t>::max();
  max_ = 0;
}

bool Histogram::operator==(const Histogram& other) const noexcept {
  if (count_ != other.count_ || sum_ != other.sum_ || max_ != other.max_ ||
      min() != other.min()) {
    return false;
  }
  // Trailing zero buckets are irrelevant.
  const std::size_t n = std::max(counts_.size(), other.counts_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < counts_.size() ? counts_[i] : 0;
    const std::uint64_t b = i < other.counts_.size() ? other.counts_[i] : 0;
    if (a != b) return false;
  }
  return true;
}

std::vector<Histogram::Bucket> Histogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out.push_back(Bucket{bucket_lower(i), bucket_upper(i), counts_[i]});
  }
  return out;
}

}  // namespace metrics
