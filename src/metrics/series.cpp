#include "metrics/series.h"

#include <algorithm>
#include <map>

namespace metrics {
namespace {

// Nearest-rank percentile over the bucket-count delta between two cumulative
// snapshots (cur - prev). Returns the upper bound of the bucket holding the
// rank-th new sample, 0 if the window recorded nothing.
std::uint64_t delta_percentile(const Histogram& prev, const Histogram& cur,
                               double p) {
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> delta;
  for (const Histogram::Bucket& b : cur.nonzero_buckets()) {
    delta[b.lower] = {b.upper, b.count};
  }
  for (const Histogram::Bucket& b : prev.nonzero_buckets()) {
    auto it = delta.find(b.lower);
    if (it != delta.end()) it->second.second -= b.count;
  }
  std::uint64_t total = 0;
  for (const auto& [lower, uc] : delta) total += uc.second;
  if (total == 0) return 0;
  auto rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(total) +
                                         0.999999);
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t seen = 0;
  for (const auto& [lower, uc] : delta) {
    seen += uc.second;
    if (seen >= rank) return uc.first;
  }
  return 0;
}

}  // namespace

SeriesSampler::SeriesSampler(sim::Simulator& s, sim::Time window)
    : sim_(&s), window_(window), next_close_(window) {
  sim_->set_step_observer(this);
}

SeriesSampler::~SeriesSampler() {
  if (sim_->step_observer() == this) sim_->set_step_observer(nullptr);
}

void SeriesSampler::add_gauge(std::string name, std::function<double()> poll) {
  Source src;
  src.kind = Source::Kind::kGauge;
  src.poll = std::move(poll);
  src.column = columns_.size();
  columns_.push_back(Column{std::move(name), {}});
  sources_.push_back(std::move(src));
}

void SeriesSampler::add_rate(std::string name, std::function<double()> poll,
                             double scale) {
  Source src;
  src.kind = Source::Kind::kRate;
  src.poll = std::move(poll);
  src.scale = scale;
  src.prev = src.poll();
  src.column = columns_.size();
  columns_.push_back(Column{std::move(name), {}});
  sources_.push_back(std::move(src));
}

void SeriesSampler::add_histogram(std::string name,
                                  std::function<Histogram()> poll) {
  Source src;
  src.kind = Source::Kind::kHist;
  src.poll_hist = std::move(poll);
  src.prev_hist = src.poll_hist();
  src.column = columns_.size();
  columns_.push_back(Column{name + ".p50", {}});
  columns_.push_back(Column{name + ".p99", {}});
  sources_.push_back(std::move(src));
}

void SeriesSampler::close_window() {
  const double secs = sim::to_sec(window_);
  for (Source& src : sources_) {
    switch (src.kind) {
      case Source::Kind::kGauge:
        columns_[src.column].values.push_back(src.poll());
        break;
      case Source::Kind::kRate: {
        const double cur = src.poll();
        columns_[src.column].values.push_back((cur - src.prev) * src.scale /
                                              secs);
        src.prev = cur;
        break;
      }
      case Source::Kind::kHist: {
        Histogram cur = src.poll_hist();
        columns_[src.column].values.push_back(
            static_cast<double>(delta_percentile(src.prev_hist, cur, 50.0)));
        columns_[src.column + 1].values.push_back(
            static_cast<double>(delta_percentile(src.prev_hist, cur, 99.0)));
        src.prev_hist = std::move(cur);
        break;
      }
    }
  }
  ++windows_;
}

void SeriesSampler::on_step(sim::Time now) {
  // An idle stretch can jump several boundaries at once; close each window
  // separately so rate columns show the zeros.
  while (now >= next_close_) {
    close_window();
    next_close_ += window_;
  }
}

void SeriesSampler::finish(sim::Time end) {
  while (next_close_ <= end) {
    close_window();
    next_close_ += window_;
  }
  if (end > next_close_ - window_) {
    close_window();  // trailing partial window
    next_close_ += window_;
  }
}

std::vector<std::pair<std::string, double>> SeriesSampler::summary() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(columns_.size() * 2);
  for (const Column& c : columns_) {
    double sum = 0.0;
    double mx = 0.0;
    for (double v : c.values) {
      sum += v;
      mx = std::max(mx, v);
    }
    const double mean =
        c.values.empty() ? 0.0 : sum / static_cast<double>(c.values.size());
    out.emplace_back(c.name + ".mean", mean);
    out.emplace_back(c.name + ".max", mx);
  }
  return out;
}

}  // namespace metrics
