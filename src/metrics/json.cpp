#include "metrics/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace metrics {

// --- Writer ------------------------------------------------------------------

void JsonWriter::comma_for_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!wrote_element_.empty()) {
    if (wrote_element_.back()) out_ += ',';
    wrote_element_.back() = true;
    newline_indent();
  }
}

void JsonWriter::newline_indent() {
  out_ += '\n';
  out_.append(wrote_element_.size() * 2, ' ');
}

void JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  wrote_element_.push_back(false);
}

void JsonWriter::end_object() {
  const bool had_elements = wrote_element_.back();
  wrote_element_.pop_back();
  if (had_elements) newline_indent();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  wrote_element_.push_back(false);
}

void JsonWriter::end_array() {
  const bool had_elements = wrote_element_.back();
  wrote_element_.pop_back();
  if (had_elements) newline_indent();
  out_ += ']';
}

void JsonWriter::key(std::string_view k) {
  comma_for_value();
  out_ += quote(k);
  out_ += ": ";
  after_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  comma_for_value();
  out_ += quote(s);
}

void JsonWriter::value(double d) {
  comma_for_value();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no Inf/NaN
    return;
  }
  char buf[32];
  // Shortest round-trip representation keeps committed baselines diffable.
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, d);
  out_.append(buf, ec == std::errc() ? end : buf);
}

void JsonWriter::value(std::int64_t i) {
  comma_for_value();
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, i);
  out_.append(buf, ec == std::errc() ? end : buf);
}

void JsonWriter::value(std::uint64_t u) {
  comma_for_value();
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, u);
  out_.append(buf, ec == std::errc() ? end : buf);
}

void JsonWriter::value(bool b) {
  comma_for_value();
  out_ += b ? "true" : "false";
}

void JsonWriter::null() {
  comma_for_value();
  out_ += "null";
}

void JsonWriter::raw(std::string_view json) {
  comma_for_value();
  out_ += json;
}

std::string JsonWriter::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// --- Parser ------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view k) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, v] : object) {
    if (name == k) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after top-level value");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const char* what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(what) + " at byte " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      }
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        if (literal("true")) return true;
        fail("bad literal");
        return false;
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        if (literal("false")) return true;
        fail("bad literal");
        return false;
      case 'n':
        out.type = JsonValue::Type::kNull;
        if (literal("null")) return true;
        fail("bad literal");
        return false;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string k;
      if (!parse_string(k)) return false;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        return false;
      }
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(k), std::move(v));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) {
        fail("expected ',' or '}'");
        return false;
      }
    }
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) {
        fail("expected ',' or ']'");
        return false;
      }
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      fail("expected string");
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          const auto [end, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || end != text_.data() + pos_ + 4) {
            fail("bad \\u escape");
            return false;
          }
          pos_ += 4;
          // Reports only ever escape control characters; encode as UTF-8 for
          // the BMP, which is all \uXXXX can express without surrogates.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(JsonValue& out) {
    out.type = JsonValue::Type::kNumber;
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const auto [end, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, out.number);
    if (ec != std::errc() || end != text_.data() + pos_ || pos_ == start) {
      fail("bad number");
      return false;
    }
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace metrics
