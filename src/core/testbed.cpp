#include "core/testbed.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "panda/pan_sys.h"
#include "sim/require.h"

namespace core {

namespace {

/// Sum of one named counter across every node registry (0 where absent).
std::function<double()> sum_counter(metrics::Metrics* hub, std::string name) {
  return [hub, name = std::move(name)]() {
    double total = 0.0;
    for (const auto& [id, reg] : hub->nodes()) {
      const auto it = reg.counters().find(name);
      if (it != reg.counters().end()) {
        total += static_cast<double>(it->second->value);
      }
    }
    return total;
  };
}

/// Merge of one named histogram across every node registry.
std::function<metrics::Histogram()> merge_histogram(metrics::Metrics* hub,
                                                    std::string name) {
  return [hub, name = std::move(name)]() {
    metrics::Histogram merged;
    for (const auto& [id, reg] : hub->nodes()) {
      const auto it = reg.histograms().find(name);
      if (it != reg.histograms().end()) merged.merge(*it->second);
    }
    return merged;
  };
}

}  // namespace

Testbed::Testbed(TestbedConfig config) : config_(std::move(config)) {
  // The sampler attaches a step observer to one engine; it has no meaning
  // across concurrently running partitions.
  sim::require(config_.series_window == 0 || config_.partitions <= 1,
               "Testbed: series_window requires partitions == 1");
  const bool modern =
      config_.preset == Preset::kModern ||
      (config_.preset == Preset::kAuto && config_.binding == Binding::kBypass);
  if (modern) {
    // Modern silicon: replace the 1995 cost/wire parameters wholesale (a
    // caller who wants custom modern numbers sets preset = kPaper and fills
    // `costs`/`network` explicitly).
    config_.costs = amoeba::CostModel::modern();
    config_.network.wire.ns_per_byte = 1;  // ~8 Gbit/s
    config_.network.wire.propagation = sim::nsec(400);
    config_.network.wire.mtu = 4096;
    config_.network.switch_forward_latency = sim::nsec(500);
  }
  amoeba::WorldConfig wc;
  wc.network = config_.network;
  wc.costs = config_.costs;
  wc.seed = config_.seed;
  wc.partitions = config_.partitions;
  wc.threads = config_.threads;
  // The sampler polls counter/histogram deltas, so telemetry implies metrics.
  wc.metrics = config_.metrics || config_.series_window > 0;
  world_ = std::make_unique<amoeba::World>(wc);
  if (config_.trace) {
    // One tracer per engine: a node records into its own partition's tracer
    // without cross-thread sharing; trace_events() merges deterministically.
    sim::PartitionedSimulator& ps = world_->partitioned();
    for (unsigned p = 0; p < ps.partitions(); ++p) {
      tracers_.push_back(std::make_unique<trace::Tracer>(ps.engine(p)));
    }
  }
  world_->add_nodes(config_.nodes);

  if (config_.series_window > 0) {
    series_ = std::make_unique<metrics::SeriesSampler>(world_->sim(),
                                                       config_.series_window);
    net::Network& net = world_->network();
    for (std::size_t i = 0; i < net.segment_count(); ++i) {
      net::Segment& seg = net.segment(i);
      const std::string base = "net.seg" + std::to_string(i);
      series_->add_gauge(base + ".queue_depth", [&seg] {
        return static_cast<double>(seg.queue_depth());
      });
      // busy-time delta in ns over the window duration = utilisation fraction.
      series_->add_rate(
          base + ".utilisation",
          [&seg] { return static_cast<double>(seg.busy_time()); }, 1e-9);
      series_->add_rate(base + ".bytes_per_s", [&seg] {
        return static_cast<double>(seg.bytes_carried());
      });
    }
    metrics::Metrics* hub = world_->metrics();
    series_->add_rate("rpc.calls_per_s", sum_counter(hub, "rpc.calls"));
    series_->add_rate("rpc.retransmits_per_s",
                      sum_counter(hub, "rpc.retransmits"));
    series_->add_rate("group.deliveries_per_s",
                      sum_counter(hub, "group.deliveries"));
    series_->add_rate("group.retransmits_per_s",
                      sum_counter(hub, "group.retransmits"));
    series_->add_rate("flip.delivers_per_s", sum_counter(hub, "flip.delivers"));
    series_->add_histogram("rpc.latency_ns",
                           merge_histogram(hub, "rpc.latency_ns"));
    series_->add_histogram("group.send_latency_ns",
                           merge_histogram(hub, "group.send_latency_ns"));
  }

  panda::ClusterConfig cc;
  cc.binding = config_.binding;
  for (NodeId i = 0; i < config_.nodes; ++i) cc.nodes.push_back(i);
  cc.sequencer = config_.sequencer;
  cc.replicated_sequencer = config_.replicated_sequencer;
  cc.sequencer_replicas = config_.sequencer_replicas;
  cc.group_history = config_.group_history;
  for (NodeId i = 0; i < config_.nodes; ++i) {
    pandas_.push_back(panda::make_panda(world_->kernel(i), cc));
  }
}

void Testbed::start() {
  for (auto& p : pandas_) p->start();
}

std::vector<trace::Event> Testbed::trace_events() const {
  std::vector<trace::Event> merged;
  for (const auto& tr : tracers_) {
    merged.insert(merged.end(), tr->events().begin(), tr->events().end());
  }
  // Each per-engine stream is already time-ordered; a stable sort on time
  // alone keeps intra-partition order and breaks cross-partition ties by
  // partition index (the concatenation order) — a pure function of the
  // simulation state, never of thread scheduling.
  std::stable_sort(
      merged.begin(), merged.end(),
      [](const trace::Event& a, const trace::Event& b) { return a.t < b.t; });
  return merged;
}

namespace {

using amoeba::Thread;
using panda::PanSys;
using panda::SysMsg;

/// Ping-pong at the pan_sys level. `multicast` switches the transport.
sim::Time measure_sys_latency(std::size_t bytes, int rounds, bool multicast) {
  amoeba::World world;
  world.add_nodes(2);
  PanSys a(world.kernel(0));
  PanSys b(world.kernel(1));

  int remaining = rounds + 1;  // one warm-up round
  sim::Time window_start = 0;
  sim::Time window_end = 0;
  int pongs = 0;

  // B echoes everything back from within the upcall.
  b.register_handler(PanSys::Module::kRpc, [&](SysMsg m) -> sim::Co<void> {
    Thread* daemon = b.daemon_thread();
    if (multicast) {
      co_await b.multicast(*daemon, PanSys::Module::kRpc, std::move(m.payload));
    } else {
      co_await b.unicast(*daemon, m.src, PanSys::Module::kRpc,
                         std::move(m.payload));
    }
  });
  // A re-sends on each pong until `remaining` hits zero.
  a.register_handler(PanSys::Module::kRpc, [&](SysMsg m) -> sim::Co<void> {
    ++pongs;
    if (pongs == 1) window_start = world.sim().now();  // warm-up done
    if (--remaining <= 0) {
      window_end = world.sim().now();
      co_return;
    }
    Thread* daemon = a.daemon_thread();
    if (multicast) {
      co_await a.multicast(*daemon, PanSys::Module::kRpc, std::move(m.payload));
    } else {
      co_await a.unicast(*daemon, m.src, PanSys::Module::kRpc,
                         std::move(m.payload));
    }
  });
  a.start();
  b.start();
  world.kernel(0).start_thread("kick", [&](Thread& self) -> sim::Co<void> {
    co_await a.unicast(self, 1, PanSys::Module::kRpc, net::Payload::zeros(bytes));
  });
  world.sim().run();
  sim::require(window_end > window_start, "sys latency: ping-pong never finished");
  // Each round is two one-way trips.
  return (window_end - window_start) / (2 * rounds);
}

}  // namespace

sim::Time measure_sys_unicast_latency(std::size_t bytes, int rounds) {
  return measure_sys_latency(bytes, rounds, /*multicast=*/false);
}

sim::Time measure_sys_multicast_latency(std::size_t bytes, int rounds) {
  return measure_sys_latency(bytes, rounds, /*multicast=*/true);
}

namespace {

/// Optional observation attachments for a latency run. Tracing and telemetry
/// are pure observation, so any combination leaves the measured latency
/// identical to the plain routine.
struct ObserveOpts {
  sim::Time series_window = 0;
  SeriesCapture* series = nullptr;
  TracedRun* traced = nullptr;
  /// When set, receives the simulator clock at the end of the run — the
  /// sim-seconds numerator of the BM_SimRate host-speed gauge.
  sim::Time* total_sim_time = nullptr;
};

void harvest(Testbed& bed, sim::Time latency, const ObserveOpts& opts) {
  if (opts.total_sim_time != nullptr) *opts.total_sim_time = bed.sim().now();
  if (opts.series != nullptr && bed.series() != nullptr) {
    bed.series()->finish(bed.sim().now());
    opts.series->window = bed.series()->window();
    opts.series->columns = bed.series()->columns();
    opts.series->summary = bed.series()->summary();
  }
  if (opts.traced != nullptr && bed.tracer() != nullptr) {
    opts.traced->events = bed.tracer()->events();
    opts.traced->ledger = bed.world().aggregate_ledger();
    opts.traced->latency = latency;
  }
}

sim::Time rpc_latency_run(Binding binding, std::size_t bytes, int rounds,
                          std::uint64_t seed, const ObserveOpts& opts) {
  TestbedConfig cfg;
  cfg.binding = binding;
  cfg.nodes = 2;
  cfg.seed = seed;
  cfg.trace = opts.traced != nullptr;
  cfg.series_window = opts.series_window;
  Testbed bed(cfg);
  bed.panda(1).set_rpc_handler(
      [&bed](Thread& upcall, panda::RpcTicket t, net::Payload) -> sim::Co<void> {
        // Reply from within the upcall, empty reply (Table 1 methodology).
        co_await bed.panda(1).rpc_reply(upcall, t, net::Payload());
      });
  bed.start();
  sim::Time elapsed = 0;
  Thread& client = bed.world().kernel(0).create_thread("client");
  sim::spawn([](panda::Panda& p, Thread& self, sim::Simulator& s,
                std::size_t sz, int n, sim::Time& out) -> sim::Co<void> {
    (void)co_await p.rpc(self, 1, net::Payload::zeros(sz));  // warm-up
    const sim::Time t0 = s.now();
    for (int i = 0; i < n; ++i) {
      (void)co_await p.rpc(self, 1, net::Payload::zeros(sz));
    }
    out = (s.now() - t0) / n;
  }(bed.panda(0), client, bed.sim(), bytes, rounds, elapsed));
  bed.sim().run();
  sim::require(elapsed > 0, "rpc latency: no result");
  harvest(bed, elapsed, opts);
  return elapsed;
}

sim::Time group_latency_run(Binding binding, std::size_t bytes, int rounds,
                            std::uint64_t seed, const ObserveOpts& opts) {
  TestbedConfig cfg;
  cfg.binding = binding;
  cfg.nodes = 2;
  cfg.sequencer = 1;  // "the sequencer (which is on the other processor)"
  cfg.seed = seed;
  cfg.trace = opts.traced != nullptr;
  cfg.series_window = opts.series_window;
  Testbed bed(cfg);
  for (NodeId n = 0; n < 2; ++n) {
    bed.panda(n).set_group_handler(
        [](Thread&, NodeId, std::uint32_t, net::Payload) -> sim::Co<void> {
          co_return;
        });
  }
  bed.start();
  sim::Time elapsed = 0;
  Thread& sender = bed.world().kernel(0).create_thread("sender");
  sim::spawn([](panda::Panda& p, Thread& self, sim::Simulator& s,
                std::size_t sz, int n, sim::Time& out) -> sim::Co<void> {
    co_await p.group_send(self, net::Payload::zeros(sz));  // warm-up
    const sim::Time t0 = s.now();
    for (int i = 0; i < n; ++i) {
      co_await p.group_send(self, net::Payload::zeros(sz));
    }
    out = (s.now() - t0) / n;
  }(bed.panda(0), sender, bed.sim(), bytes, rounds, elapsed));
  bed.sim().run();
  sim::require(elapsed > 0, "group latency: no result");
  harvest(bed, elapsed, opts);
  return elapsed;
}

}  // namespace

sim::Time measure_rpc_latency(Binding binding, std::size_t bytes, int rounds,
                              std::uint64_t seed) {
  return rpc_latency_run(binding, bytes, rounds, seed, {});
}

sim::Time measure_group_latency(Binding binding, std::size_t bytes, int rounds,
                                std::uint64_t seed) {
  return group_latency_run(binding, bytes, rounds, seed, {});
}

sim::Time rpc_loop_sim_time(Binding binding, std::size_t bytes, int rounds,
                            std::uint64_t seed) {
  ObserveOpts opts;
  sim::Time total = 0;
  opts.total_sim_time = &total;
  (void)rpc_latency_run(binding, bytes, rounds, seed, opts);
  return total;
}

TracedRun traced_rpc_run(Binding binding, std::size_t bytes, int rounds,
                         std::uint64_t seed) {
  TracedRun run;
  ObserveOpts opts;
  opts.traced = &run;
  (void)rpc_latency_run(binding, bytes, rounds, seed, opts);
  return run;
}

TracedRun traced_group_run(Binding binding, std::size_t bytes, int rounds,
                           std::uint64_t seed) {
  TracedRun run;
  ObserveOpts opts;
  opts.traced = &run;
  (void)group_latency_run(binding, bytes, rounds, seed, opts);
  return run;
}

sim::Time measure_rpc_latency_series(Binding binding, std::size_t bytes,
                                     int rounds, std::uint64_t seed,
                                     sim::Time window, SeriesCapture& series) {
  ObserveOpts opts;
  opts.series_window = window;
  opts.series = &series;
  return rpc_latency_run(binding, bytes, rounds, seed, opts);
}

sim::Time measure_group_latency_series(Binding binding, std::size_t bytes,
                                       int rounds, std::uint64_t seed,
                                       sim::Time window,
                                       SeriesCapture& series) {
  ObserveOpts opts;
  opts.series_window = window;
  opts.series = &series;
  return group_latency_run(binding, bytes, rounds, seed, opts);
}

double measure_rpc_throughput_kbs(Binding binding, std::size_t request_bytes,
                                  int rounds, std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.binding = binding;
  cfg.nodes = 2;
  cfg.seed = seed;
  Testbed bed(cfg);
  bed.panda(1).set_rpc_handler(
      [&bed](Thread& upcall, panda::RpcTicket t, net::Payload) -> sim::Co<void> {
        co_await bed.panda(1).rpc_reply(upcall, t, net::Payload());
      });
  bed.start();
  sim::Time elapsed = 0;
  Thread& client = bed.world().kernel(0).create_thread("client");
  sim::spawn([](panda::Panda& p, Thread& self, sim::Simulator& s,
                std::size_t sz, int n, sim::Time& out) -> sim::Co<void> {
    (void)co_await p.rpc(self, 1, net::Payload::zeros(sz));  // warm-up
    const sim::Time t0 = s.now();
    for (int i = 0; i < n; ++i) {
      (void)co_await p.rpc(self, 1, net::Payload::zeros(sz));
    }
    out = s.now() - t0;
  }(bed.panda(0), client, bed.sim(), request_bytes, rounds, elapsed));
  bed.sim().run();
  sim::require(elapsed > 0, "rpc throughput: no result");
  const double bytes_total = static_cast<double>(request_bytes) * rounds;
  return bytes_total / 1024.0 / sim::to_sec(elapsed);
}

double measure_group_throughput_kbs(Binding binding, std::size_t members,
                                    std::size_t message_bytes,
                                    int messages_per_member,
                                    std::uint64_t seed, bool replicated) {
  TestbedConfig cfg;
  cfg.binding = binding;
  cfg.nodes = members;
  cfg.seed = seed;
  cfg.replicated_sequencer = replicated;
  Testbed bed(cfg);
  std::uint64_t delivered_bytes = 0;
  sim::Time last_delivery = 0;
  for (NodeId n = 0; n < members; ++n) {
    bed.panda(n).set_group_handler(
        [&delivered_bytes, &last_delivery, &bed, n](
            Thread&, NodeId, std::uint32_t, net::Payload msg) -> sim::Co<void> {
          if (n == 0) {
            delivered_bytes += msg.size();
            last_delivery = bed.sim().now();
          }
          co_return;
        });
  }
  bed.start();
  int finished = 0;
  for (NodeId n = 0; n < members; ++n) {
    Thread& t = bed.world().kernel(n).create_thread("sender");
    sim::spawn([](panda::Panda& p, Thread& self, std::size_t sz, int k,
                  int& done) -> sim::Co<void> {
      for (int i = 0; i < k; ++i) {
        co_await p.group_send(self, net::Payload::zeros(sz));
      }
      ++done;
    }(bed.panda(n), t, message_bytes, messages_per_member, finished));
  }
  if (replicated) {
    // The Paxos leader's lease renewal keeps the event queue alive forever,
    // so run to a horizon far past the transfer instead of to quiescence.
    bed.sim().run_until(sim::msec(5000));
  } else {
    bed.sim().run();
  }
  sim::require(finished == static_cast<int>(members),
               "group throughput: senders did not finish");
  // Trailing protocol timers (flow-control/watchdog quiet periods) run after
  // the last delivery; they are not part of the transfer.
  const sim::Time elapsed = last_delivery;
  return static_cast<double>(delivered_bytes) / 1024.0 / sim::to_sec(elapsed);
}

}  // namespace core
