// The experiment testbed: a booted processor pool with one Panda instance
// per node, plus the measurement routines that regenerate the paper's
// tables. Shared by the calibration tests and the benchmark binaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "amoeba/world.h"
#include "metrics/series.h"
#include "panda/panda.h"
#include "sim/ledger.h"
#include "trace/tracer.h"

namespace core {

using amoeba::NodeId;
using panda::Binding;

/// Hardware-era preset applied on top of `costs`/`network` defaults.
enum class Preset : std::uint8_t {
  /// kPaper for the kernel/user bindings, kModern for the bypass binding —
  /// the bypass hardware simply does not exist on the 1995 testbed.
  kAuto,
  /// The paper's 50 MHz SPARC / 10 Mbit/s Ethernet numbers (the defaults).
  kPaper,
  /// 2020s server: CostModel::modern() plus a multi-Gbit, sub-microsecond
  /// wire (overrides `costs` and the network wire/switch parameters).
  kModern,
};

struct TestbedConfig {
  Binding binding = Binding::kUserSpace;
  Preset preset = Preset::kAuto;
  std::size_t nodes = 2;
  NodeId sequencer = 0;
  /// Replicated-sequencer mode: the sequencer role is a multi-Paxos replica
  /// set of `sequencer_replicas` nodes (led from `sequencer`); survives
  /// sequencer crashes by election. Works with either binding.
  bool replicated_sequencer = false;
  std::size_t sequencer_replicas = 3;
  /// Classic sequencer history capacity (forces status rounds when small).
  std::size_t group_history = 512;
  std::uint64_t seed = 42;
  amoeba::CostModel costs;
  net::NetworkConfig network;
  /// Attach a trace::Tracer to the simulator: every protocol lifecycle event
  /// (send, fragment, wire, drop, interrupt, deliver, retransmit, charge) is
  /// recorded. Off by default — recording never perturbs simulated time.
  bool trace = false;
  /// Attach a metrics::Metrics hub (counters, gauges, latency histograms) to
  /// the simulator. Off by default; same no-perturbation contract as trace.
  bool metrics = false;
  /// Windowed time-series telemetry: when > 0, attach a
  /// metrics::SeriesSampler with this window (implies `metrics`). Each window
  /// close polls segment queue depth/utilisation/bytes, protocol counter
  /// rates and windowed latency percentiles — host-side only, so an enabled
  /// sampler never perturbs the simulated event sequence.
  sim::Time series_window = 0;
  /// Partition the pool's segments across this many engines (conservative
  /// parallel core; 1 = the classic single-engine path). Runs must then go
  /// through world().partitioned() (or world().run()/run_until()).
  unsigned partitions = 1;
  /// Worker team size for lookahead windows, capped at `partitions`.
  /// threads == 1 executes the same windows inline — never affects results.
  unsigned threads = 1;
};

/// A booted pool: world + per-node Panda instances (started lazily so tests
/// can install handlers first).
class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  [[nodiscard]] amoeba::World& world() noexcept { return *world_; }
  [[nodiscard]] sim::Simulator& sim() noexcept { return world_->sim(); }
  [[nodiscard]] panda::Panda& panda(NodeId n) { return *pandas_.at(n); }
  [[nodiscard]] std::size_t node_count() const noexcept { return pandas_.size(); }
  [[nodiscard]] const TestbedConfig& config() const noexcept { return config_; }
  /// Non-null iff config.trace was set. With partitions > 1 this is
  /// partition 0's tracer; trace_events() merges all partitions.
  [[nodiscard]] trace::Tracer* tracer() noexcept {
    return tracers_.empty() ? nullptr : tracers_.front().get();
  }
  /// All traced events across partitions, merged by time (ties keep lower
  /// partitions first — deterministic for any thread count). Empty when
  /// config.trace was off.
  [[nodiscard]] std::vector<trace::Event> trace_events() const;
  /// Non-null iff config.metrics was set (the hub lives in the World).
  [[nodiscard]] metrics::Metrics* metrics() noexcept { return world_->metrics(); }
  /// Non-null iff config.series_window was set. Call finish() on it after the
  /// run before reading columns.
  [[nodiscard]] metrics::SeriesSampler* series() noexcept { return series_.get(); }

  /// Start every Panda instance (after handlers are installed).
  void start();

 private:
  TestbedConfig config_;
  std::unique_ptr<amoeba::World> world_;
  // Declared after world_: destroyed first, detaching from the simulators.
  // One tracer per partition engine; [0] is the classic tracer.
  std::vector<std::unique_ptr<trace::Tracer>> tracers_;
  std::unique_ptr<metrics::SeriesSampler> series_;
  std::vector<std::unique_ptr<panda::Panda>> pandas_;
};

// --- Table 1 / Table 2 measurement routines ---------------------------------
// Each boots a fresh deterministic testbed, runs warm-up rounds first (route
// caches), and returns averages, mirroring the paper's methodology ("average
// values of 10 runs with little variation"). The `seed` parameter selects the
// testbed RNG stream so sweep replicates measure genuinely different runs;
// the default reproduces the committed BENCH_table1/2 baselines.

/// System-layer (pan_sys over FLIP) one-way latency, user process to user
/// process, replies sent from within the upcall (Table 1, "unicast user").
[[nodiscard]] sim::Time measure_sys_unicast_latency(std::size_t bytes,
                                                    int rounds = 10);

/// Same with hardware multicast to a 2-member group (Table 1, "multicast").
[[nodiscard]] sim::Time measure_sys_multicast_latency(std::size_t bytes,
                                                      int rounds = 10);

/// Full RPC latency: request of `bytes`, empty reply (Table 1, RPC columns).
[[nodiscard]] sim::Time measure_rpc_latency(Binding binding, std::size_t bytes,
                                            int rounds = 10,
                                            std::uint64_t seed = 42);

/// Total simulated time of a complete RPC-loop run (boot + warm-up +
/// `rounds` calls of `bytes` each): the sim-seconds numerator of the
/// BM_SimRate sim-seconds-per-host-second gauge in bench_sim_engine.
[[nodiscard]] sim::Time rpc_loop_sim_time(Binding binding, std::size_t bytes,
                                          int rounds = 10,
                                          std::uint64_t seed = 42);

/// Group latency: 2 members, sequencer on the other machine, sender waits
/// for its own message (Table 1, group columns).
[[nodiscard]] sim::Time measure_group_latency(Binding binding, std::size_t bytes,
                                              int rounds = 10,
                                              std::uint64_t seed = 42);

/// RPC throughput in KB/s: stream of 8000-byte requests with empty replies
/// (Table 2).
[[nodiscard]] double measure_rpc_throughput_kbs(Binding binding,
                                                std::size_t request_bytes = 8000,
                                                int rounds = 25,
                                                std::uint64_t seed = 42);

/// Group throughput in KB/s: several members sending 8000-byte messages in
/// parallel until the Ethernet saturates (Table 2). With `replicated` the
/// sequencer is the 3-replica multi-Paxos set instead of the classic single
/// sequencer (the paxos:: rows of the extended Table 2).
[[nodiscard]] double measure_group_throughput_kbs(Binding binding,
                                                  std::size_t members = 4,
                                                  std::size_t message_bytes = 8000,
                                                  int messages_per_member = 12,
                                                  std::uint64_t seed = 42,
                                                  bool replicated = false);

// --- Profiler / telemetry entry points --------------------------------------

/// A fully traced measurement run: the raw event stream feeds the causal
/// profiler (trace/profile.h), the ledger is the run's aggregate mechanism
/// accounting (the profiler's conservation reference), and `latency` is the
/// same per-round average the plain measure_* routine returns.
struct TracedRun {
  std::vector<trace::Event> events;
  sim::Ledger ledger;
  sim::Time latency = 0;
};

/// measure_rpc_latency with tracing on; identical workload and timings (the
/// tracer never perturbs simulated time).
[[nodiscard]] TracedRun traced_rpc_run(Binding binding, std::size_t bytes,
                                       int rounds = 10,
                                       std::uint64_t seed = 42);

/// measure_group_latency with tracing on.
[[nodiscard]] TracedRun traced_group_run(Binding binding, std::size_t bytes,
                                         int rounds = 10,
                                         std::uint64_t seed = 42);

/// Windowed telemetry captured alongside a measurement: the closed windows'
/// summary scalars (`<column>.mean` / `<column>.max`) plus the raw columns
/// for run-report `series` sections.
struct SeriesCapture {
  sim::Time window = 0;
  std::vector<metrics::SeriesSampler::Column> columns;
  std::vector<std::pair<std::string, double>> summary;
};

/// measure_rpc_latency with a SeriesSampler attached (window > 0); the
/// capture is written to `series`. Latency result matches the plain routine.
[[nodiscard]] sim::Time measure_rpc_latency_series(Binding binding,
                                                   std::size_t bytes,
                                                   int rounds,
                                                   std::uint64_t seed,
                                                   sim::Time window,
                                                   SeriesCapture& series);

/// measure_group_latency with a SeriesSampler attached.
[[nodiscard]] sim::Time measure_group_latency_series(Binding binding,
                                                     std::size_t bytes,
                                                     int rounds,
                                                     std::uint64_t seed,
                                                     sim::Time window,
                                                     SeriesCapture& series);

}  // namespace core
