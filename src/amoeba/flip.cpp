#include "amoeba/flip.h"

#include <algorithm>
#include <utility>

#include "amoeba/kernel.h"
#include "metrics/registry.h"
#include "sim/require.h"
#include "trace/tracer.h"

namespace amoeba {

namespace {

constexpr int kMaxLocateAttempts = 5;
constexpr sim::Time kLocateRetryInterval = sim::msec(10);

struct FragmentHeader {
  std::uint8_t type = 0;
  std::uint8_t flags = 0;
  FlipAddr dst = kNoFlipAddr;
  FlipAddr src = kNoFlipAddr;
  std::uint32_t msg_id = 0;
  std::uint32_t offset = 0;
  std::uint32_t total_len = 0;
};

net::Payload serialize_fragment(net::Writer& w, const FragmentHeader& h,
                                const net::Payload& data) {
  w.u8(h.type).u8(h.flags).u16(0);
  w.u64(h.dst).u64(h.src);
  w.u32(h.msg_id).u32(h.offset).u32(h.total_len);
  w.payload(data);
  return w.take();
}

FragmentHeader parse_fragment(net::Reader& r) {
  FragmentHeader h;
  h.type = r.u8();
  h.flags = r.u8();
  (void)r.u16();
  h.dst = r.u64();
  h.src = r.u64();
  h.msg_id = r.u32();
  h.offset = r.u32();
  h.total_len = r.u32();
  return h;
}

}  // namespace

Flip::Flip(Kernel& kernel) : kernel_(&kernel), sweep_timer_(kernel.sim()) {
  const metrics::NodeMetrics nm(kernel.sim().metrics(), kernel.node());
  m_sends_ = nm.counter("flip.sends");
  m_fragments_ = nm.counter("flip.fragments");
  m_delivers_ = nm.counter("flip.delivers");
  kernel_->nic().set_rx_handler([this](const net::Frame& f) { on_frame(f); });
  // Every kernel owns its kernel endpoint implicitly for LOCATE replies.
}

void Flip::register_endpoint(FlipAddr addr, FlipHandler handler) {
  sim::require(!is_flip_group(addr), "Flip: group address used as endpoint");
  endpoints_[addr] = std::move(handler);
}

void Flip::unregister_endpoint(FlipAddr addr) { endpoints_.erase(addr); }

void Flip::register_group(FlipAddr group, FlipHandler handler) {
  sim::require(is_flip_group(group), "Flip: endpoint address used as group");
  groups_[group] = std::move(handler);
  kernel_->nic().join_multicast(flip_group_mac(group));
}

void Flip::unregister_group(FlipAddr group) {
  groups_.erase(group);
  kernel_->nic().leave_multicast(flip_group_mac(group));
}

std::size_t Flip::fragment_count(std::size_t bytes) const noexcept {
  const std::size_t capacity =
      kernel_->nic().segment().wire().mtu - kHeaderBytes;
  if (bytes == 0) return 1;
  return (bytes + capacity - 1) / capacity;
}

sim::Co<void> Flip::unicast(FlipAddr dst, net::Payload message, sim::Prio prio) {
  const FlipAddr src = kernel_flip_addr(kernel_->node());
  // Local destination? FLIP delivers without touching the wire.
  if (endpoints_.contains(dst)) {
    const CostModel& c = kernel_->costs();
    co_await kernel_->charge(prio, sim::Mechanism::kProtocolProcessing,
                             c.flip_send_per_message);
    ++messages_sent_;
    m_sends_.add();
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kFlipSend, dst, 0,
                 message.size(), 1);
      tr->record(kernel_->node(), trace::EventKind::kFlipDeliver, src, 0,
                 message.size(), 1);
    }
    co_await deliver(FlipMessage(dst, src, std::move(message)));
    co_return;
  }
  const net::MacAddr* route = route_cache_.find(dst);
  if (!route) {
    auto& pending = locating_[dst];
    pending.queued.push_back(std::move(message));
    if (!pending.retry.active()) locate_tick(dst);
    co_return;  // unreliable: will go out once located, or vanish
  }
  co_await send_fragments(*route, dst, src, std::move(message), prio);
}

sim::Co<void> Flip::multicast(FlipAddr group, net::Payload message, sim::Prio prio) {
  sim::require(is_flip_group(group), "Flip::multicast: not a group address");
  co_await send_fragments(flip_group_mac(group), group,
                          kernel_flip_addr(kernel_->node()), std::move(message),
                          prio);
}

sim::Co<void> Flip::send_fragments(net::MacAddr dst_mac, FlipAddr dst, FlipAddr src,
                                   net::Payload message, sim::Prio prio) {
  const CostModel& c = kernel_->costs();
  const std::size_t capacity =
      kernel_->nic().segment().wire().mtu - kHeaderBytes;
  const std::uint32_t msg_id = next_msg_id_++;
  ++messages_sent_;

  m_sends_.add();
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kFlipSend, dst, msg_id,
               message.size());
  }
  co_await kernel_->charge(prio, sim::Mechanism::kProtocolProcessing,
                           c.flip_send_per_message);

  std::size_t offset = 0;
  do {
    const std::size_t chunk = std::min(capacity, message.size() - offset);
    co_await kernel_->charge(prio, sim::Mechanism::kProtocolProcessing,
                             c.flip_send_per_fragment);
    FragmentHeader h;
    h.type = static_cast<std::uint8_t>(FrameType::kData);
    h.flags = is_flip_group(dst) ? 1 : 0;
    h.dst = dst;
    h.src = src;
    h.msg_id = msg_id;
    h.offset = static_cast<std::uint32_t>(offset);
    h.total_len = static_cast<std::uint32_t>(message.size());
    net::Frame frame;
    frame.dst = dst_mac;
    frame.id = (static_cast<std::uint64_t>(kernel_->node()) << 48) |
               (static_cast<std::uint64_t>(msg_id) << 16) |
               static_cast<std::uint64_t>(offset / std::max<std::size_t>(capacity, 1));
    frame.payload = serialize_fragment(frame_writer_, h, message.slice(offset, chunk));
    m_fragments_.add();
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kFragment, frame.id,
                 msg_id, src, chunk);
    }
    kernel_->nic().send(std::move(frame));
    offset += chunk;
  } while (offset < message.size());
}

void Flip::on_frame(const net::Frame& frame) { sim::spawn(handle_frame(frame)); }

sim::Co<void> Flip::handle_frame(net::Frame frame) {
  const CostModel& c = kernel_->costs();
  const auto type = static_cast<FrameType>(frame.payload.byte_at(0));
  switch (type) {
    case FrameType::kData:
      co_await kernel_->charge(sim::Prio::kInterrupt,
                               sim::Mechanism::kInterruptDispatch,
                               c.interrupt_dispatch + c.flip_recv_per_fragment);
      co_await handle_data(frame);
      break;
    case FrameType::kLocate:
      co_await kernel_->charge(sim::Prio::kInterrupt,
                               sim::Mechanism::kInterruptDispatch,
                               c.interrupt_dispatch);
      co_await handle_locate(frame);
      break;
    case FrameType::kHereIs:
      co_await kernel_->charge(sim::Prio::kInterrupt,
                               sim::Mechanism::kInterruptDispatch,
                               c.interrupt_dispatch);
      handle_here_is(frame);
      break;
  }
}

sim::Co<void> Flip::handle_data(const net::Frame& frame) {
  net::Reader r(frame.payload);
  const FragmentHeader h = parse_fragment(r);
  net::Payload data = r.rest();

  // Nothing here for this destination? Stale frame; drop.
  const bool group = is_flip_group(h.dst);
  if (group ? !groups_.contains(h.dst) : !endpoints_.contains(h.dst)) co_return;

  if (h.offset == 0 && data.size() == h.total_len) {
    // Single-fragment message: no reassembly state needed.
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kFlipDeliver, h.src,
                 h.msg_id, data.size());
    }
    co_await deliver(FlipMessage(h.dst, h.src, std::move(data)));
    co_return;
  }

  const ReassemblyKey key{h.src, h.msg_id};
  auto [ra, fresh] = reassembly_.try_emplace(key);
  const CostModel& c = kernel_->costs();
  const std::size_t capacity =
      kernel_->nic().segment().wire().mtu - kHeaderBytes;
  if (fresh) {
    ra->dst = h.dst;
    ra->total = h.total_len;
    ra->buf = reasm_pool_.acquire(h.total_len);
    ra->have.assign((h.total_len + capacity - 1) / capacity, false);
    ra->deadline = kernel_->sim().now() + c.reassembly_timeout;
    if (!sweep_timer_.pending()) {
      sweep_timer_.schedule(c.reassembly_timeout, [this] { sweep_reassembly(); });
    }
  }
  const std::size_t slot = h.offset / capacity;
  if (slot < ra->have.size() && !ra->have[slot]) {
    ra->have[slot] = true;
    data.copy_out(0, data.size(), ra->buf->data() + h.offset);
    ra->received += data.size();
    // The fragment bytes really move into the reassembly buffer; charge the
    // copy per byte at the same rate as every other message copy so the
    // paper's copy accounting covers all memory traffic. Charging occupies
    // the CPU, so this handler suspends here: the sibling fragment that
    // completes the message, or the timeout sweep, may erase the reassembly
    // entry before we resume — and a concurrent arrival may insert, which in
    // a flat table also relocates entries. Re-find and stand down if gone.
    co_await kernel_->charge(sim::Prio::kInterrupt, sim::Mechanism::kUserKernelCopy,
                             c.copy_ns_per_byte * static_cast<sim::Time>(data.size()));
    ra = reassembly_.find(key);
    if (!ra) co_return;
  }
  if (ra->received == ra->total) {
    net::Payload whole =
        net::Payload::from_shared(ra->buf, ra->buf->data(), ra->total);
    const FlipAddr src = h.src;
    const FlipAddr dst = ra->dst;
    reassembly_.erase(key);
    co_await kernel_->charge(sim::Prio::kInterrupt,
                             sim::Mechanism::kProtocolProcessing,
                             c.flip_reassembly);
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kFlipDeliver, src,
                 h.msg_id, whole.size());
    }
    co_await deliver(FlipMessage(dst, src, std::move(whole)));
  }
}

sim::Co<void> Flip::deliver(FlipMessage message) {
  const bool group = is_flip_group(message.dst);
  auto& table = group ? groups_ : endpoints_;
  // Slab-backed: the handler's address is stable even if registrations land
  // while the charge below has us suspended.
  FlipHandler* handler = table.find(message.dst);
  if (!handler) co_return;
  ++messages_delivered_;
  m_delivers_.add();
  co_await kernel_->charge(sim::Prio::kInterrupt,
                           sim::Mechanism::kProtocolProcessing,
                           kernel_->costs().flip_deliver_per_message);
  co_await (*handler)(std::move(message));
}

sim::Co<void> Flip::handle_locate(net::Frame frame) {
  net::Reader r(frame.payload);
  const FragmentHeader h = parse_fragment(r);
  const net::MacAddr requester_mac = r.u32();
  if (!endpoints_.contains(h.dst)) co_return;  // not ours
  FragmentHeader reply;
  reply.type = static_cast<std::uint8_t>(FrameType::kHereIs);
  reply.dst = h.dst;  // the located address
  reply.src = kernel_flip_addr(kernel_->node());
  net::Writer w;
  w.u32(kernel_->nic().mac());
  net::Frame out;
  out.dst = requester_mac;
  out.payload = serialize_fragment(frame_writer_, reply, w.take());
  kernel_->nic().send(std::move(out));
}

void Flip::handle_here_is(const net::Frame& frame) {
  net::Reader r(frame.payload);
  const FragmentHeader h = parse_fragment(r);
  const net::MacAddr owner_mac = r.u32();
  route_cache_[h.dst] = owner_mac;
  const auto it = locating_.find(h.dst);
  if (it == locating_.end()) return;
  it->second.retry.cancel();  // resolved: no further locate broadcasts
  auto queued = std::move(it->second.queued);
  locating_.erase(it);
  for (auto& message : queued) {
    sim::spawn(send_fragments(owner_mac, h.dst, kernel_flip_addr(kernel_->node()),
                              std::move(message), sim::Prio::kKernel));
  }
}

void Flip::locate_tick(FlipAddr dst) {
  const auto it = locating_.find(dst);
  if (it == locating_.end()) return;  // resolved meanwhile
  PendingLocate& pending = it->second;
  if (pending.attempts >= kMaxLocateAttempts) {
    locating_.erase(it);  // give up; queued messages vanish (unreliable layer)
    return;
  }
  ++pending.attempts;
  ++locates_sent_;
  if (pending.attempts > 1) {
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kRetransmit, dst,
                 trace::kReasonLocateRetry);
    }
  }
  FragmentHeader h;
  h.type = static_cast<std::uint8_t>(FrameType::kLocate);
  h.dst = dst;
  h.src = kernel_flip_addr(kernel_->node());
  net::Writer w;
  w.u32(kernel_->nic().mac());
  net::Frame frame;
  frame.dst = net::kBroadcast;
  frame.payload = serialize_fragment(frame_writer_, h, w.take());
  kernel_->nic().send(std::move(frame));
  pending.retry = kernel_->sim().after(kLocateRetryInterval,
                                       [this, dst] { locate_tick(dst); });
}

void Flip::sweep_reassembly() {
  const sim::Time now = kernel_->sim().now();
  // Expiry is per-entry; erasure order is unobservable.
  reassembly_timeouts_ += reassembly_.erase_if(
      [now](const ReassemblyKey&, const Reassembly& ra) {
        return ra.deadline <= now;
      });
  if (!reassembly_.empty()) {
    sweep_timer_.schedule(kernel_->costs().reassembly_timeout / 2,
                          [this] { sweep_reassembly(); });
  }
}

}  // namespace amoeba
