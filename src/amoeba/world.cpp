#include "amoeba/world.h"

#include "sim/require.h"

namespace amoeba {

World::World(WorldConfig config)
    : config_(config), sim_(config.seed), network_(sim_, config.network) {}

Kernel& World::add_node() {
  const NodeId id = network_.add_node();
  kernels_.push_back(
      std::make_unique<Kernel>(sim_, network_.nic(id), config_.costs, id));
  return *kernels_.back();
}

void World::add_nodes(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) (void)add_node();
}

Kernel& World::kernel(NodeId id) {
  sim::require(id < kernels_.size(), "World::kernel: unknown node");
  return *kernels_[id];
}

sim::Ledger World::aggregate_ledger() const {
  sim::Ledger total;
  for (const auto& k : kernels_) total += k->ledger();
  return total;
}

}  // namespace amoeba
