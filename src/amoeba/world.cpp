#include "amoeba/world.h"

#include <cstdio>
#include <string>

#include "sim/require.h"

namespace amoeba {

World::World(WorldConfig config)
    : config_(config),
      psim_(sim::PartitionedSimulator::Config{config.partitions,
                                              config.threads, config.seed}),
      metrics_(config.metrics
                   ? std::make_unique<metrics::Metrics>(psim_.engine(0))
                   : nullptr),
      network_(psim_, config.network) {
  // The hub's intern maps are not synchronized, so concurrent windows must
  // not record into it: metrics on a multi-partition world needs threads==1.
  sim::require(!(metrics_ && psim_.partitions() > 1 && psim_.threads() > 1),
               "World: metrics with partitions > 1 requires threads == 1");
  // Every engine resolves the same hub, so per-node registries keep working
  // wherever the node's partition lands.
  for (unsigned p = 1; p < psim_.partitions(); ++p) {
    psim_.engine(p).set_metrics(metrics_.get());
  }
}

World::~World() {
  // Metrics's own dtor only detaches from engine 0.
  for (unsigned p = 1; p < psim_.partitions(); ++p) {
    psim_.engine(p).set_metrics(nullptr);
  }
}

Kernel& World::add_node() {
  const NodeId id = network_.add_node();
  kernels_.push_back(std::make_unique<Kernel>(
      network_.node_simulator(id), network_.nic(id), config_.costs, id));
  return *kernels_.back();
}

void World::add_nodes(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) (void)add_node();
}

Kernel& World::kernel(NodeId id) {
  sim::require(id < kernels_.size(), "World::kernel: unknown node");
  return *kernels_[id];
}

sim::Ledger World::aggregate_ledger() const {
  sim::Ledger total;
  for (const auto& k : kernels_) total += k->ledger();
  return total;
}

void World::snapshot_net_metrics() {
  if (!metrics_) return;
  metrics::MetricsRegistry& g = metrics_->global();
  char name[64];
  for (std::size_t i = 0; i < network_.segment_count(); ++i) {
    const net::Segment& seg = network_.segment(i);
    std::snprintf(name, sizeof name, "net.segment%zu.", i);
    const std::string prefix = name;
    g.gauge(prefix + "utilization").set(seg.utilization());
    g.gauge(prefix + "frames").set(static_cast<double>(seg.frames_carried()));
    g.gauge(prefix + "bytes").set(static_cast<double>(seg.bytes_carried()));
    g.gauge(prefix + "dropped").set(static_cast<double>(seg.frames_dropped()));
    g.gauge(prefix + "queue_peak").set(static_cast<double>(seg.queue_peak()));
  }
  g.gauge("net.switch.frames_forwarded")
      .set(static_cast<double>(network_.backbone().frames_forwarded()));
  g.gauge("net.bytes_carried")
      .set(static_cast<double>(network_.total_bytes_carried()));
  for (net::NodeId id = 0; id < network_.node_count(); ++id) {
    const net::Nic& nic = network_.nic(id);
    metrics::MetricsRegistry& reg = metrics_->node(id);
    reg.gauge("nic.rx_frames").set(static_cast<double>(nic.rx_frames()));
    reg.gauge("nic.tx_frames").set(static_cast<double>(nic.tx_frames()));
    reg.gauge("nic.rx_dropped").set(static_cast<double>(nic.rx_dropped()));
  }
}

}  // namespace amoeba
