#include "amoeba/world.h"

#include <cstdio>
#include <string>

#include "sim/require.h"

namespace amoeba {

World::World(WorldConfig config)
    : config_(config),
      sim_(config.seed),
      metrics_(config.metrics ? std::make_unique<metrics::Metrics>(sim_)
                              : nullptr),
      network_(sim_, config.network) {}

Kernel& World::add_node() {
  const NodeId id = network_.add_node();
  kernels_.push_back(
      std::make_unique<Kernel>(sim_, network_.nic(id), config_.costs, id));
  return *kernels_.back();
}

void World::add_nodes(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) (void)add_node();
}

Kernel& World::kernel(NodeId id) {
  sim::require(id < kernels_.size(), "World::kernel: unknown node");
  return *kernels_[id];
}

sim::Ledger World::aggregate_ledger() const {
  sim::Ledger total;
  for (const auto& k : kernels_) total += k->ledger();
  return total;
}

void World::snapshot_net_metrics() {
  if (!metrics_) return;
  metrics::MetricsRegistry& g = metrics_->global();
  char name[64];
  for (std::size_t i = 0; i < network_.segment_count(); ++i) {
    const net::Segment& seg = network_.segment(i);
    std::snprintf(name, sizeof name, "net.segment%zu.", i);
    const std::string prefix = name;
    g.gauge(prefix + "utilization").set(seg.utilization());
    g.gauge(prefix + "frames").set(static_cast<double>(seg.frames_carried()));
    g.gauge(prefix + "bytes").set(static_cast<double>(seg.bytes_carried()));
    g.gauge(prefix + "dropped").set(static_cast<double>(seg.frames_dropped()));
    g.gauge(prefix + "queue_peak").set(static_cast<double>(seg.queue_peak()));
  }
  g.gauge("net.switch.frames_forwarded")
      .set(static_cast<double>(network_.backbone().frames_forwarded()));
  g.gauge("net.bytes_carried")
      .set(static_cast<double>(network_.total_bytes_carried()));
  for (net::NodeId id = 0; id < network_.node_count(); ++id) {
    const net::Nic& nic = network_.nic(id);
    metrics::MetricsRegistry& reg = metrics_->node(id);
    reg.gauge("nic.rx_frames").set(static_cast<double>(nic.rx_frames()));
    reg.gauge("nic.tx_frames").set(static_cast<double>(nic.tx_frames()));
    reg.gauge("nic.rx_dropped").set(static_cast<double>(nic.rx_dropped()));
  }
}

}  // namespace amoeba
