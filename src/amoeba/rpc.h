// Amoeba's kernel-space RPC: the 3-way protocol (§2, §4.2).
//
// The client's `trans` traps into the kernel and blocks; the kernel sends the
// request, retransmits it on a timer, and on reply arrival "immediately
// delivers the reply message to the blocked client thread" and sends an
// explicit acknowledgement (the third message — Panda's 2-way protocol
// piggybacks this ack instead). Servers call `get_request` to wait for work
// and must send the reply from the *same thread* via `put_reply` — the
// restriction that forces the kernel-space Panda binding to re-introduce a
// context switch for blocked guarded Orca operations.
//
// At-most-once semantics: the server keeps a per-(client, transaction) table;
// duplicate requests of an in-progress transaction are dropped, duplicates of
// a completed one re-send the cached reply. The client's explicit ack (or a
// TTL) clears the cache.
#pragma once

#include <cstdint>
#include <deque>

#include "amoeba/flip.h"
#include "amoeba/kernel.h"
#include "metrics/handles.h"
#include "net/buffer.h"
#include "sim/co.h"
#include "sim/flat_map.h"
#include "sim/timer.h"

namespace amoeba {

/// A service ("port" in Amoeba terms): location independent; FLIP finds the
/// node currently serving it.
using ServiceId = std::uint32_t;

[[nodiscard]] constexpr FlipAddr service_flip_addr(ServiceId svc) noexcept {
  return 0x00A0'0000'0000'0000ULL | svc;
}

enum class RpcStatus : std::uint8_t { kOk, kTimeout };

struct RpcResult {
  RpcResult() = default;
  RpcResult(RpcStatus s, net::Payload r) : status(s), reply(std::move(r)) {}
  RpcStatus status = RpcStatus::kTimeout;
  net::Payload reply;
};

/// What get_request hands the server thread. put_reply must be called by the
/// same thread that received the handle.
struct RpcRequestHandle {
  RpcRequestHandle() = default;
  RpcRequestHandle(NodeId c, std::uint32_t t, ServiceId s, net::Payload p,
                   ThreadId owner)
      : client(c), trans_id(t), service(s), payload(std::move(p)),
        server_thread(owner) {}
  NodeId client = 0;
  std::uint32_t trans_id = 0;
  ServiceId service = 0;
  net::Payload payload;
  ThreadId server_thread = kNoThread;
};

class KernelRpc {
 public:
  explicit KernelRpc(Kernel& kernel) : kernel_(&kernel) {
    const metrics::NodeMetrics nm(kernel.sim().metrics(), kernel.node());
    m_calls_ = nm.counter("rpc.calls");
    m_timeouts_ = nm.counter("rpc.timeouts");
    m_retransmits_ = nm.counter("rpc.retransmits");
    m_latency_ = nm.histogram("rpc.latency_ns");
  }

  KernelRpc(const KernelRpc&) = delete;
  KernelRpc& operator=(const KernelRpc&) = delete;

  /// Client: perform a transaction (request out, block, reply back).
  [[nodiscard]] sim::Co<RpcResult> trans(Thread& self, ServiceId svc,
                                         net::Payload request);

  /// Server: block until a request for `svc` arrives. The first call
  /// registers this node as the server for `svc`.
  [[nodiscard]] sim::Co<RpcRequestHandle> get_request(Thread& self, ServiceId svc);

  /// Server: reply to a request. Must be called from the thread that issued
  /// the matching get_request (Amoeba kernel restriction).
  [[nodiscard]] sim::Co<void> put_reply(Thread& self, const RpcRequestHandle& req,
                                        net::Payload reply);

  [[nodiscard]] std::uint64_t requests_served() const noexcept { return served_count_; }
  [[nodiscard]] std::uint64_t retransmissions() const noexcept { return retransmits_; }
  [[nodiscard]] std::uint64_t duplicates_dropped() const noexcept { return dup_dropped_; }

 private:
  enum class MsgType : std::uint8_t {
    kRequest = 1,
    kReply = 2,
    kAck = 3,
    kServerBusy = 4,  // keepalive: request received, reply pending
  };

  struct ClientCall {
    Thread* thread = nullptr;
    bool done = false;
    RpcStatus status = RpcStatus::kTimeout;
    net::Payload reply;
    net::Payload wire;  // serialized request, kept for retransmission
    FlipAddr dst = kNoFlipAddr;
    sim::EventHandle retransmit;  // next retransmit_tick; cancelled on reply
    int sends = 0;
  };

  struct PendingRequest {
    PendingRequest() = default;
    PendingRequest(NodeId c, std::uint32_t t, net::Payload p)
        : client(c), trans_id(t), payload(std::move(p)) {}
    NodeId client = 0;
    std::uint32_t trans_id = 0;
    net::Payload payload;
  };

  struct Service {
    std::deque<PendingRequest> pending;
    std::deque<Thread*> waiting;
  };

  struct ServedEntry {
    bool replied = false;
    ServiceId service = 0;
    net::Payload cached_reply;  // valid once replied
    sim::Time expires = 0;
  };

  [[nodiscard]] sim::Co<void> on_message(FlipMessage m);
  [[nodiscard]] sim::Co<void> on_request(NodeId client, std::uint32_t trans_id,
                                         ServiceId svc, net::Payload payload);
  [[nodiscard]] sim::Co<void> on_reply(std::uint32_t trans_id, ServiceId svc,
                                       net::Payload payload);
  void on_ack(NodeId client, std::uint32_t trans_id);

  void ensure_client_endpoint();
  void ensure_service_endpoint(ServiceId svc);
  void retransmit_tick(std::uint32_t trans_id);
  void gc_served();

  [[nodiscard]] net::Payload make_header(MsgType type, std::uint32_t trans_id,
                                         ServiceId svc,
                                         const net::Payload& body);

  Kernel* kernel_;
  net::Writer hdr_writer_;
  metrics::CounterHandle m_calls_;
  metrics::CounterHandle m_timeouts_;
  metrics::CounterHandle m_retransmits_;
  metrics::HistogramHandle m_latency_;
  bool client_endpoint_ready_ = false;
  std::uint32_t next_trans_ = 1;
  // Hot per-packet state lives in flat/slab containers (sim/flat_map.h):
  // calls_ and services_ hand out pointers that must survive inserts while a
  // coroutine is suspended, so they get slab-backed stable addresses; the
  // reply cache is keyed by the packed (client, trans_id) word and never
  // escapes a reference across a suspension.
  sim::SlabMap<std::uint32_t, ClientCall> calls_;
  sim::SlabMap<ServiceId, Service> services_;
  sim::FlatMap<std::uint64_t, ServedEntry> served_;
  sim::Timer gc_timer_{kernel_->sim()};
  std::uint64_t served_count_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t dup_dropped_ = 0;
};

}  // namespace amoeba
