// FLIP (Fast Local Internet Protocol) — Amoeba's network layer.
//
// FLIP provides location-transparent, unreliable unicast and multicast of
// arbitrarily sized messages (Kaashoek et al., ACM TOCS 1993). This model
// implements the properties the paper's protocols rely on:
//
//   * location transparency: endpoints are 64-bit addresses; the kernel
//     resolves an unknown address with a broadcast LOCATE / HERE-IS exchange
//     and caches the route;
//   * fragmentation: messages are split into <=1500-byte Ethernet frames in
//     the kernel and reassembled at the receiver ("the nonlinear relation
//     between latency and message length is due to the fragmentation
//     performed by the low-level FLIP primitives in the Amoeba kernel",
//     §4.1);
//   * group communication: a multicast address maps onto hardware Ethernet
//     multicast, so reaching a group costs one transmission;
//   * unreliability: lost fragments mean the whole message silently never
//     arrives (reassembly state times out); reliability is the business of
//     the RPC/group protocols above.
//
// Handlers run at interrupt priority. A sender never receives its own
// multicast from the wire (Ethernet NICs do not loop back); protocol code
// that needs self-delivery does it locally.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "metrics/handles.h"
#include "net/buffer.h"
#include "net/frame.h"
#include "sim/co.h"
#include "sim/cpu.h"
#include "sim/flat_map.h"
#include "sim/timer.h"

namespace amoeba {

class Kernel;

using FlipAddr = std::uint64_t;

inline constexpr FlipAddr kNoFlipAddr = 0;
inline constexpr FlipAddr kFlipGroupBit = 0x8000'0000'0000'0000ULL;

[[nodiscard]] constexpr bool is_flip_group(FlipAddr a) noexcept {
  return (a & kFlipGroupBit) != 0;
}

/// The FLIP address of node `n`'s kernel itself (used by LOCATE replies and
/// kernel-to-kernel protocol traffic).
[[nodiscard]] constexpr FlipAddr kernel_flip_addr(std::uint32_t node) noexcept {
  return 0x00F0'0000'0000'0000ULL | node;
}

/// A reassembled FLIP message as handed to an endpoint.
///
/// User-declared constructor by project rule: aggregate temporaries inside
/// co_await expressions are miscompiled by GCC 12 (see sim/co.h).
struct FlipMessage {
  FlipMessage() = default;
  FlipMessage(FlipAddr d, FlipAddr s, net::Payload p)
      : dst(d), src(s), payload(std::move(p)) {}
  FlipAddr dst = kNoFlipAddr;
  FlipAddr src = kNoFlipAddr;
  net::Payload payload;
};

/// Endpoint upcall; runs at interrupt priority on the receiving node's CPU.
using FlipHandler = std::function<sim::Co<void>(FlipMessage)>;

class Flip {
 public:
  /// Bytes of FLIP header per fragment (32, per CostModel::flip_header).
  static constexpr std::size_t kHeaderBytes = 32;

  explicit Flip(Kernel& kernel);

  Flip(const Flip&) = delete;
  Flip& operator=(const Flip&) = delete;

  /// Register a point-to-point endpoint on this node.
  void register_endpoint(FlipAddr addr, FlipHandler handler);
  void unregister_endpoint(FlipAddr addr);

  /// Join a multicast group address: subscribes the NIC to the hardware
  /// multicast address and installs the delivery handler.
  void register_group(FlipAddr group, FlipHandler handler);
  void unregister_group(FlipAddr group);

  /// Send a message to a point-to-point address. Fragments, resolves the
  /// route (broadcast LOCATE on cache miss), charges kernel send costs at
  /// `prio`, and completes once every fragment is handed to the NIC.
  /// Unreliable: undeliverable or lost messages vanish silently.
  [[nodiscard]] sim::Co<void> unicast(FlipAddr dst, net::Payload message,
                                      sim::Prio prio = sim::Prio::kKernel);

  /// Send a message to a multicast group (hardware multicast; one wire
  /// transmission per fragment regardless of member count).
  [[nodiscard]] sim::Co<void> multicast(FlipAddr group, net::Payload message,
                                        sim::Prio prio = sim::Prio::kKernel);

  /// Number of fragments a message of `bytes` occupies on the wire.
  [[nodiscard]] std::size_t fragment_count(std::size_t bytes) const noexcept;

  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return messages_delivered_;
  }
  [[nodiscard]] std::uint64_t reassembly_timeouts() const noexcept {
    return reassembly_timeouts_;
  }
  [[nodiscard]] std::uint64_t locates_sent() const noexcept { return locates_sent_; }

 private:
  enum class FrameType : std::uint8_t {
    kData = 1,
    kLocate = 2,
    kHereIs = 3,
  };

  struct ReassemblyKey {
    FlipAddr src = kNoFlipAddr;
    std::uint32_t msg_id = 0;
    bool operator==(const ReassemblyKey&) const noexcept = default;
  };
  struct ReassemblyKeyHash {
    [[nodiscard]] std::uint64_t operator()(const ReassemblyKey& k) const noexcept {
      return sim::mix64(k.src ^ (static_cast<std::uint64_t>(k.msg_id) << 32));
    }
  };
  struct Reassembly {
    FlipAddr dst = kNoFlipAddr;
    std::size_t total = 0;
    std::size_t received = 0;
    // Pooled: recycled once the delivered message releases it.
    std::shared_ptr<std::vector<std::uint8_t>> buf;
    std::vector<bool> have;  // per fragment slot
    sim::Time deadline = 0;
  };
  struct PendingLocate {
    std::deque<net::Payload> queued;  // serialized messages awaiting a route
    int attempts = 0;
    sim::EventHandle retry;  // the next locate_tick, cancelled on resolution
  };

  void on_frame(const net::Frame& frame);
  [[nodiscard]] sim::Co<void> handle_frame(net::Frame frame);
  [[nodiscard]] sim::Co<void> handle_data(const net::Frame& frame);
  [[nodiscard]] sim::Co<void> handle_locate(net::Frame frame);
  void handle_here_is(const net::Frame& frame);
  [[nodiscard]] sim::Co<void> deliver(FlipMessage message);

  [[nodiscard]] sim::Co<void> send_fragments(net::MacAddr dst_mac, FlipAddr dst,
                                             FlipAddr src, net::Payload message,
                                             sim::Prio prio);
  void locate_tick(FlipAddr dst);
  void sweep_reassembly();

  Kernel* kernel_;
  // Host-side fast path: a reusable frame serializer, a pool of reassembly
  // buffers, and interned metric handles (all invisible to simulated time).
  net::Writer frame_writer_;
  net::BufferPool reasm_pool_;
  metrics::CounterHandle m_sends_;
  metrics::CounterHandle m_fragments_;
  metrics::CounterHandle m_delivers_;
  // Per-packet lookups go through flat tables (sim/flat_map.h). Handlers
  // live in a slab: a suspended handler coroutine points into its own
  // std::function object, which therefore must not relocate when another
  // endpoint registers. The locate table stays node-based — it is cold by
  // definition (one entry per unresolved address, touched at most every
  // retry interval).
  sim::SlabMap<FlipAddr, FlipHandler> endpoints_;
  sim::SlabMap<FlipAddr, FlipHandler> groups_;
  sim::FlatMap<FlipAddr, net::MacAddr> route_cache_;
  std::unordered_map<FlipAddr, PendingLocate> locating_;
  sim::FlatMap<ReassemblyKey, Reassembly, ReassemblyKeyHash> reassembly_;
  sim::Timer sweep_timer_;
  std::uint32_t next_msg_id_ = 1;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t reassembly_timeouts_ = 0;
  std::uint64_t locates_sent_ = 0;
};

/// Hardware multicast address for a FLIP group.
[[nodiscard]] constexpr net::MacAddr flip_group_mac(FlipAddr group) noexcept {
  return net::multicast_group(static_cast<std::uint32_t>(group & 0x00FF'FFFF));
}

}  // namespace amoeba
