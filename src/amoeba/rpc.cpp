#include "amoeba/rpc.h"

#include <utility>

#include "metrics/registry.h"
#include "sim/require.h"
#include "trace/tracer.h"

namespace amoeba {

namespace {

/// The client-side RPC endpoint of a node's kernel (replies arrive here).
[[nodiscard]] constexpr FlipAddr rpc_client_addr(NodeId node) noexcept {
  return 0x00A1'0000'0000'0000ULL | node;
}

/// Trace key for one transaction: globally unique across clients.
[[nodiscard]] constexpr std::uint64_t trans_key(NodeId client,
                                                std::uint32_t trans_id) noexcept {
  return (static_cast<std::uint64_t>(client) << 32) | trans_id;
}

}  // namespace

net::Payload KernelRpc::make_header(MsgType type, std::uint32_t trans_id,
                                    ServiceId svc, const net::Payload& body) {
  net::Writer& w = hdr_writer_;
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(trans_id);
  w.u32(kernel_->node());
  w.u32(svc);
  // Pad the protocol header to Amoeba's 56 bytes (§4.2: "56 bytes").
  w.zeros(kernel_->costs().amoeba_rpc_header - w.size());
  w.payload(body);
  return w.take();
}

void KernelRpc::ensure_client_endpoint() {
  if (client_endpoint_ready_) return;
  client_endpoint_ready_ = true;
  // Return the handler coroutine directly: a `co_await on_message(...)`
  // wrapper would add one suspended frame per delivered packet for nothing.
  kernel_->flip().register_endpoint(
      rpc_client_addr(kernel_->node()),
      [this](FlipMessage m) { return on_message(std::move(m)); });
}

void KernelRpc::ensure_service_endpoint(ServiceId svc) {
  if (!services_.try_emplace(svc).second) return;
  kernel_->flip().register_endpoint(
      service_flip_addr(svc),
      [this](FlipMessage m) { return on_message(std::move(m)); });
}

sim::Co<RpcResult> KernelRpc::trans(Thread& self, ServiceId svc,
                                    net::Payload request) {
  ensure_client_endpoint();
  const CostModel& c = kernel_->costs();
  const sim::Time t0 = kernel_->sim().now();
  co_await kernel_->syscall_enter();
  co_await kernel_->copy_boundary(request.size());
  co_await kernel_->charge(sim::Prio::kKernel, sim::Mechanism::kProtocolProcessing,
                           c.rpc_protocol_processing);

  const std::uint32_t trans_id = next_trans_++;
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kRpcSend,
               trans_key(kernel_->node(), trans_id), svc, request.size());
  }
  ClientCall* raw = calls_.try_emplace(trans_id).first;
  raw->thread = &self;
  raw->wire = make_header(MsgType::kRequest, trans_id, svc, request);
  raw->dst = service_flip_addr(svc);

  ++raw->sends;
  co_await kernel_->flip().unicast(raw->dst, raw->wire, sim::Prio::kKernel);
  raw->retransmit = kernel_->sim().after(
      c.rpc_retransmit_interval, [this, trans_id] { retransmit_tick(trans_id); });

  while (!raw->done) co_await self.block();

  RpcResult result(raw->status, std::move(raw->reply));
  calls_.erase(trans_id);
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kRpcDone,
               trans_key(kernel_->node(), trans_id),
               result.status == RpcStatus::kOk ? 0 : 1);
  }
  co_await kernel_->syscall_return(c.amoeba_stub_stack_depth);
  m_calls_.add();
  if (result.status == RpcStatus::kOk) {
    m_latency_.record(static_cast<std::uint64_t>(kernel_->sim().now() - t0));
  } else {
    m_timeouts_.add();
  }
  co_return result;
}

void KernelRpc::retransmit_tick(std::uint32_t trans_id) {
  // The tick is cancelled when the call settles, so a live fire always finds
  // an unfinished call.
  ClientCall* found = calls_.find(trans_id);
  if (!found) return;
  ClientCall& call = *found;
  const CostModel& c = kernel_->costs();
  if (call.sends > c.rpc_max_retransmits) {
    call.done = true;
    call.status = RpcStatus::kTimeout;
    call.thread->unblock();
    return;
  }
  ++call.sends;
  ++retransmits_;
  m_retransmits_.add();
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kRetransmit,
               trans_key(kernel_->node(), trans_id),
               trace::kReasonClientRetry);
  }
  sim::spawn(kernel_->flip().unicast(call.dst, call.wire, sim::Prio::kKernel));
  call.retransmit = kernel_->sim().after(
      c.rpc_retransmit_interval, [this, trans_id] { retransmit_tick(trans_id); });
}

sim::Co<RpcRequestHandle> KernelRpc::get_request(Thread& self, ServiceId svc) {
  ensure_service_endpoint(svc);
  const CostModel& c = kernel_->costs();
  co_await kernel_->syscall_enter();
  Service& service = services_[svc];
  while (service.pending.empty()) {
    service.waiting.push_back(&self);
    co_await self.block();
  }
  PendingRequest req = std::move(service.pending.front());
  service.pending.pop_front();
  co_await kernel_->copy_boundary(req.payload.size());
  co_await kernel_->syscall_return(c.amoeba_stub_stack_depth);
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kUpcall,
               trans_key(req.client, req.trans_id), 1);
  }
  co_return RpcRequestHandle(req.client, req.trans_id, svc, std::move(req.payload),
                             self.id());
}

sim::Co<void> KernelRpc::put_reply(Thread& self, const RpcRequestHandle& req,
                                   net::Payload reply) {
  sim::require(self.id() == req.server_thread,
               "Amoeba RPC: put_reply must be issued by the thread that called "
               "get_request");
  const CostModel& c = kernel_->costs();
  co_await kernel_->syscall_enter();
  co_await kernel_->copy_boundary(reply.size());
  co_await kernel_->charge(sim::Prio::kKernel, sim::Mechanism::kProtocolProcessing,
                           c.rpc_protocol_processing);

  auto& entry = served_[trans_key(req.client, req.trans_id)];
  entry.replied = true;
  entry.service = req.service;
  entry.cached_reply = make_header(MsgType::kReply, req.trans_id, req.service, reply);
  entry.expires = kernel_->sim().now() + c.reply_cache_ttl;
  if (!gc_timer_.pending()) {
    gc_timer_.schedule(c.reply_cache_ttl, [this] { gc_served(); });
  }
  ++served_count_;

  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kRpcReply,
               trans_key(req.client, req.trans_id));
  }
  co_await kernel_->flip().unicast(rpc_client_addr(req.client), entry.cached_reply,
                                   sim::Prio::kKernel);
  co_await kernel_->syscall_return(c.amoeba_stub_stack_depth);
}

sim::Co<void> KernelRpc::on_message(FlipMessage m) {
  net::Reader r(m.payload);
  const auto type = static_cast<MsgType>(r.u8());
  const std::uint32_t trans_id = r.u32();
  const NodeId peer = r.u32();
  const ServiceId svc = r.u32();
  net::Payload body =
      m.payload.slice(kernel_->costs().amoeba_rpc_header,
                      m.payload.size() - kernel_->costs().amoeba_rpc_header);
  switch (type) {
    case MsgType::kRequest:
      co_await on_request(peer, trans_id, svc, std::move(body));
      break;
    case MsgType::kReply:
      co_await on_reply(trans_id, svc, std::move(body));
      break;
    case MsgType::kAck:
      on_ack(peer, trans_id);
      break;
    case MsgType::kServerBusy: {
      // The server is alive and still working: keep retransmitting (as a
      // liveness probe) but never give up on this transaction.
      ClientCall* call = calls_.find(trans_id);
      if (call && !call->done) call->sends = 1;
      break;
    }
  }
}

sim::Co<void> KernelRpc::on_request(NodeId client, std::uint32_t trans_id,
                                    ServiceId svc, net::Payload payload) {
  const CostModel& c = kernel_->costs();
  co_await kernel_->charge(sim::Prio::kInterrupt,
                           sim::Mechanism::kProtocolProcessing,
                           c.rpc_protocol_processing);
  const std::uint64_t key = trans_key(client, trans_id);
  if (ServedEntry* entry = served_.find(key)) {
    if (entry->replied) {
      // Client missed the reply: resend the cached one.
      ++retransmits_;
      m_retransmits_.add();
      if (auto* tr = kernel_->sim().tracer()) {
        tr->record(kernel_->node(), trace::EventKind::kRetransmit,
                   trans_key(client, trans_id), trace::kReasonCachedReply);
      }
      co_await kernel_->flip().unicast(rpc_client_addr(client),
                                       entry->cached_reply,
                                       sim::Prio::kKernel);
    } else {
      ++dup_dropped_;
      // Still being served (e.g. a long-blocking guarded operation): tell
      // the client we are alive so it does not abort the transaction.
      net::Payload busy =
          make_header(MsgType::kServerBusy, trans_id, svc, net::Payload());
      sim::spawn(kernel_->flip().unicast(rpc_client_addr(client), std::move(busy),
                                         sim::Prio::kKernel));
    }
    co_return;
  }
  Service* found = services_.find(svc);
  if (!found) co_return;  // nobody serves this here

  // The exactly-once commit point: from here on the transaction is in
  // served_ and every duplicate is absorbed above.
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kRpcExec,
               trans_key(client, trans_id));
  }
  ServedEntry& fresh = served_[key];
  fresh.replied = false;
  fresh.expires = kernel_->sim().now() + c.reply_cache_ttl;
  if (!gc_timer_.pending()) {
    gc_timer_.schedule(c.reply_cache_ttl, [this] { gc_served(); });
  }
  Service& service = *found;
  service.pending.emplace_back(client, trans_id, std::move(payload));
  if (!service.waiting.empty()) {
    Thread* server = service.waiting.front();
    service.waiting.pop_front();
    // "At the server machine both ... implementations cause one context
    //  switch and two address space crossings."
    co_await kernel_->dispatch(*server);
  }
}

sim::Co<void> KernelRpc::on_reply(std::uint32_t trans_id, ServiceId svc,
                                  net::Payload payload) {
  const CostModel& c = kernel_->costs();
  co_await kernel_->charge(sim::Prio::kInterrupt,
                           sim::Mechanism::kProtocolProcessing,
                           c.rpc_protocol_processing);
  ClientCall* found = calls_.find(trans_id);
  if (found && !found->done) {
    ClientCall& call = *found;
    call.retransmit.cancel();
    call.done = true;
    call.status = RpcStatus::kOk;
    call.reply = std::move(payload);
    // "Amoeba immediately delivers the reply message to the blocked client
    //  thread; no context switches are needed since no other thread was
    //  scheduled between sending the request and receiving the reply."
    co_await kernel_->copy_boundary(call.reply.size());
    co_await kernel_->dispatch(*call.thread);
  }
  // Third leg of the 3-way protocol: the explicit acknowledgement, sent to
  // the server's service endpoint (off the client's critical path).
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kAck,
               trans_key(kernel_->node(), trans_id), 1);
  }
  net::Payload ack = make_header(MsgType::kAck, trans_id, svc, net::Payload());
  sim::spawn(kernel_->flip().unicast(service_flip_addr(svc), std::move(ack),
                                     sim::Prio::kKernel));
}

void KernelRpc::on_ack(NodeId client, std::uint32_t trans_id) {
  served_.erase(trans_key(client, trans_id));
}

void KernelRpc::gc_served() {
  const sim::Time now = kernel_->sim().now();
  // Only *completed* transactions age out; an in-progress one (e.g. a
  // guarded Orca operation parked as a continuation) must keep its
  // duplicate suppression no matter how long it blocks. Erasure order is
  // unobservable, so the flat map's erase_if is safe here.
  served_.erase_if([now](std::uint64_t, const ServedEntry& e) {
    return e.replied && e.expires <= now;
  });
  if (!served_.empty()) {
    gc_timer_.schedule(kernel_->costs().reply_cache_ttl / 2, [this] { gc_served(); });
  }
}

}  // namespace amoeba
