// The per-node Amoeba microkernel model.
//
// A Kernel owns the node's CPU, its cost ledger, and the FLIP network layer,
// and provides the thread and cost-charging primitives the protocol stacks
// are built from. Threads are kernel-level (Amoeba provides only kernel
// threads), so signalling and blocking cross the user/kernel boundary — the
// source of several of the paper's measured overheads.
//
// Context-switch accounting follows the paper's mechanism: the kernel tracks
// which thread's register/address-space context is loaded on the CPU.
// Dispatching a thread whose context is loaded is cheap (the kernel-space
// RPC client resuming after a reply: "no context switches are needed since
// no other thread was scheduled between sending the request and receiving
// the reply"); dispatching any other thread charges a full switch (70 us, or
// 110/60 us on the interrupt-handler-to-thread path of §4.3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "amoeba/cost_model.h"
#include "net/network.h"
#include "net/nic.h"
#include "sim/co.h"
#include "sim/cpu.h"
#include "sim/ledger.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace amoeba {

using NodeId = net::NodeId;
using ThreadId = std::uint64_t;
inline constexpr ThreadId kNoThread = 0;

class Kernel;
class Flip;

/// A kernel-scheduled thread: an identity plus a park/unpark point.
/// Wakeups are token-counted so an unblock that races ahead of the block is
/// not lost.
class Thread {
 public:
  Thread(Kernel& kernel, ThreadId id, std::string name);

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  [[nodiscard]] ThreadId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Kernel& kernel() noexcept { return *kernel_; }

  /// Park until a wakeup token arrives.
  [[nodiscard]] sim::Co<void> block();

  /// Park until a wakeup token arrives or `timeout` passes.
  /// Returns false on timeout.
  [[nodiscard]] sim::Co<bool> block_for(sim::Time timeout);

  /// Deposit a wakeup token (cost-free: callers charge dispatch costs via
  /// Kernel::dispatch*, which call this).
  void unblock();

 private:
  Kernel* kernel_;
  ThreadId id_;
  std::string name_;
  sim::CondVar cv_;
  int tokens_ = 0;
};

class Kernel {
 public:
  Kernel(sim::Simulator& s, net::Nic& nic, const CostModel& costs, NodeId node);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] sim::Simulator& sim() noexcept { return *sim_; }
  [[nodiscard]] net::Nic& nic() noexcept { return *nic_; }
  [[nodiscard]] sim::Cpu& cpu() noexcept { return cpu_; }
  [[nodiscard]] sim::Ledger& ledger() noexcept { return ledger_; }
  [[nodiscard]] const sim::Ledger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] const CostModel& costs() const noexcept { return costs_; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] Flip& flip() noexcept { return *flip_; }

  // --- Threads -------------------------------------------------------------

  /// Create a thread object (identity only; pair with spawn of its body).
  Thread& create_thread(std::string name);

  /// Create a thread and launch its body as a detached activity.
  Thread& start_thread(std::string name,
                       std::function<sim::Co<void>(Thread&)> body);

  /// The thread whose context is currently loaded (kNoThread if none yet).
  [[nodiscard]] ThreadId loaded_context() const noexcept { return loaded_ctx_; }

  /// Record that `t` is now running (called by compute and dispatch paths).
  void note_running(ThreadId t) noexcept { loaded_ctx_ = t; }

  // --- Cost charging -------------------------------------------------------
  // Each helper occupies the node CPU for the charged time and records the
  // charge in the ledger.

  [[nodiscard]] sim::Co<void> charge(sim::Prio prio, sim::Mechanism m, sim::Time cost,
                                     std::uint64_t count = 1);

  /// User->kernel trap (window save + crossing).
  [[nodiscard]] sim::Co<void> syscall_enter();

  /// Kernel->user return; `stack_depth` windows fault back in via underflow
  /// traps (Amoeba restores only the topmost window).
  [[nodiscard]] sim::Co<void> syscall_return(int stack_depth);

  /// Copy `bytes` across the user/kernel boundary.
  [[nodiscard]] sim::Co<void> copy_boundary(std::size_t bytes);

  /// The untuned user-level FLIP interface's address-translation cost.
  [[nodiscard]] sim::Co<void> user_flip_translation();

  /// Dispatch `target` from ordinary (thread) context: charges a full
  /// context switch unless target's context is loaded, then wakes it.
  [[nodiscard]] sim::Co<void> dispatch(Thread& target);

  /// Dispatch `target` from an interrupt handler (§4.3's 110/60 us path).
  [[nodiscard]] sim::Co<void> dispatch_from_interrupt(Thread& target);

  /// Signal another thread from user code: kernel-mediated (syscall +
  /// signal delivery + return traps) followed by a dispatch. This is the
  /// "about 50 us" crossing+trap bundle of §4.2 plus the switch proper.
  [[nodiscard]] sim::Co<void> signal_thread(Thread& target, int stack_depth);

  /// Application compute: occupies the CPU at kUser priority, preemptible by
  /// interrupts and daemon threads. Charges a context switch first if some
  /// other thread's context is loaded (the resumption of a preempted
  /// process).
  [[nodiscard]] sim::Co<void> compute(Thread& self, sim::Time amount);

  /// Charge an uncontended user-space lock operation.
  [[nodiscard]] sim::Co<void> lock_op();

 private:
  sim::Simulator* sim_;
  net::Nic* nic_;
  CostModel costs_;
  NodeId node_;
  sim::Cpu cpu_;
  sim::Ledger ledger_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::uint64_t next_thread_ = 1;
  ThreadId loaded_ctx_ = kNoThread;
  std::unique_ptr<Flip> flip_;
};

}  // namespace amoeba
