// Calibrated mechanism costs for the simulated Amoeba 5.2 / SPARC testbed.
//
// Every constant is tied to a measurement the paper reports for its 50 MHz
// SPARC "Tsunami" boards (§4). The protocol stacks charge these at the same
// code points the paper's analysis enumerates, so both the absolute Table 1
// latencies and the user-vs-kernel deltas are reproduced mechanistically
// rather than curve-fitted per experiment.
#pragma once

#include <cstddef>

#include "sim/time.h"

namespace amoeba {

struct CostModel {
  // --- Thread scheduling -------------------------------------------------
  // "We measured inside the Amoeba kernel that the total overhead of the two
  //  context switches is about 140 us" (§4.2) => 70 us per switch when the
  // dispatched thread's context is NOT loaded.
  sim::Time context_switch = sim::usec(70);
  // Resuming the thread whose context is still loaded (the kernel-space RPC
  // client: "no context switches are needed since no other thread was
  // scheduled between sending the request and receiving the reply").
  sim::Time resume_loaded = sim::usec(15);
  // Dispatching a thread from a (software) interrupt handler: "the interrupt
  // handler first runs to completion, then the scheduler is invoked, and
  // finally the context of the current thread can be saved ... about 110 us"
  // (§4.3); with the target context still loaded "this effectively reduces
  // the context switch time to 60 us".
  sim::Time interrupt_thread_switch = sim::usec(110);
  sim::Time interrupt_thread_switch_loaded = sim::usec(60);

  // --- SPARC register windows / kernel crossings --------------------------
  // Six fixed-size register windows; Amoeba restores only the topmost window
  // on syscall return, so returns down a deep call stack fault windows back
  // in through underflow traps "handled in software ... about 6 us per trap".
  int register_windows = 6;
  sim::Time underflow_trap = sim::usec(6);
  sim::Time overflow_trap = sim::usec(6);
  // One user->kernel crossing (trap entry, saving in-use windows).
  sim::Time syscall_enter = sim::usec(12);
  // Kernel->user return excluding underflow traps (charged per faulted
  // window on top of this).
  sim::Time syscall_return = sim::usec(5);
  // Waking a blocked thread via a kernel signal issued from user code. The
  // crossing+trap bundle on this path is "about 50 us" (§4.2); the value
  // here is the part beyond the generic enter/return costs.
  sim::Time signal_delivery = sim::usec(9);

  // --- FLIP / driver path --------------------------------------------------
  // Per-syscall user-to-kernel buffer bookkeeping on the *user-accessible*
  // FLIP interface, which "has not yet been optimized: for instance,
  // user-to-kernel address translation can be sped up considerably". The
  // residual gaps the paper attributes to this are ~54 us per RPC (4 user
  // FLIP boundary passes) and ~30 us per group message (2 passes at the
  // sequencer).
  sim::Time user_flip_translation = sim::usec(20);
  // Kernel FLIP send processing: fixed per message + per emitted fragment.
  sim::Time flip_send_per_message = sim::usec(85);
  sim::Time flip_send_per_fragment = sim::usec(70);
  // Receive side: per-fragment interrupt service + FLIP input processing.
  sim::Time interrupt_dispatch = sim::usec(25);
  sim::Time flip_recv_per_fragment = sim::usec(70);
  // Input-queue and buffer management per delivered message.
  sim::Time flip_deliver_per_message = sim::usec(75);
  // Reassembly bookkeeping per completed message.
  sim::Time flip_reassembly = sim::usec(10);
  // Copying message data across the user/kernel boundary (~20 MB/s on the
  // 50 MHz SPARC; visible as the supralinear latency growth in Table 1).
  sim::Time copy_ns_per_byte = sim::nsec(50);
  // Delivering a completed message to a process blocked in a receive call
  // (queue handling before the dispatch cost proper).
  sim::Time deliver_to_process = sim::usec(15);

  // --- Protocol-level costs ------------------------------------------------
  // Panda's portable user-level fragmentation code duplicates what FLIP
  // already does: "an overhead of about 20 us per message" per direction.
  sim::Time user_fragmentation_layer = sim::usec(20);
  // Generic protocol state-machine work per RPC/group protocol action.
  sim::Time rpc_protocol_processing = sim::usec(30);
  sim::Time group_protocol_processing = sim::usec(80);
  // Acquiring/releasing an uncontended user-space lock is cheap: "the
  // overhead is negligible in comparison to context switching and trapping
  // costs" — but we still charge and count it (the user-space RPC does 7x
  // more lock() calls, §4.2).
  sim::Time lock_op = sim::nsec(400);

  // --- Header sizes (bytes on the wire) ------------------------------------
  // "the user-space implementation uses slightly larger headers (64 bytes
  //  vs. 56 bytes)" for RPC; for the group protocols the user-space headers
  // are smaller ("small headers of 40 bytes, whereas the kernel-space
  // implementation prepends each data message with a 52 byte header").
  std::size_t panda_rpc_header = 64;
  std::size_t amoeba_rpc_header = 56;
  std::size_t panda_group_header = 40;
  std::size_t amoeba_group_header = 52;
  // FLIP network-layer header carried by every fragment.
  std::size_t flip_header = 32;

  // --- Retransmission timers ----------------------------------------------
  sim::Time rpc_retransmit_interval = sim::msec(100);
  int rpc_max_retransmits = 8;
  sim::Time reply_cache_ttl = sim::msec(500);
  sim::Time group_retransmit_request_delay = sim::msec(5);
  sim::Time reassembly_timeout = sim::msec(50);

  // Typical call-stack depth (in register windows) when returning from a
  // syscall issued by deeply layered Panda code vs. the flat Amoeba stubs;
  // determines how many underflow traps a return takes.
  int panda_stack_depth = 6;
  int amoeba_stub_stack_depth = 2;

  // --- Kernel-bypass (RDMA-style) binding ---------------------------------
  // The bypass transport never crosses the user/kernel boundary and never
  // dispatches a thread from an interrupt: the initiator rings a doorbell
  // (an MMIO write), the NIC walks the work queue and DMAs frames, and
  // completion is discovered by *polling* a completion queue. These numbers
  // model a 2020s commodity RNIC and are the same under both presets — the
  // 1995 testbed simply has no bypass hardware, so a bypass binding always
  // implies modern silicon for its own path.
  sim::Time bypass_doorbell = sim::nsec(100);        // MMIO doorbell write
  sim::Time bypass_wqe = sim::nsec(150);             // NIC WQE fetch/process
  sim::Time bypass_cq_poll = sim::nsec(75);          // CQ poll + CQE reap
  sim::Time bypass_remote_access = sim::nsec(200);   // target-NIC one-sided op
  // NIC DMA engine throughput (charged on the *total* bytes of a transfer,
  // not per byte, so sub-ns/byte rates stay representable in integer time).
  std::size_t bypass_dma_bytes_per_ns = 16;          // ~16 GB/s
  // Registering (pinning) a memory region: fixed driver cost + per-4KiB-page
  // page-table pin. Paid once at setup, never on the data path.
  sim::Time bypass_reg_base = sim::usec(10);
  sim::Time bypass_reg_per_page = sim::nsec(250);
  // Transport header prepended to every bypass frame (magic, opcode, PSN,
  // cumulative ack, message id/offset/total, wr id, rkey, remote address).
  std::size_t bypass_header = 48;
  // Protocol-level CPU work per RPC/group action in the bypass stacks (the
  // thin demultiplexing layer above the verbs, not the verbs themselves).
  sim::Time bypass_protocol_processing = sim::nsec(250);
  // Hardware go-back-N reliability: retransmit timer on the oldest unacked
  // PSN, and the delayed-ack coalescing window at the receiver.
  sim::Time bypass_retransmit_interval = sim::usec(100);
  sim::Time bypass_ack_delay = sim::usec(5);

  /// Modern-hardware preset (core::Preset::kModern): the 1995 SPARC numbers
  /// replaced by 2020s-server equivalents so the paper's accounting
  /// methodology can be replayed against a contemporary data point. The
  /// bypass_* fields are identical in both presets; this rescales the
  /// *legacy-stack* mechanisms (a ~3 GHz core against the 50 MHz Tsunami).
  [[nodiscard]] static CostModel modern() {
    CostModel c;
    c.context_switch = sim::usec(2);
    c.resume_loaded = sim::nsec(400);
    c.interrupt_thread_switch = sim::usec(3);
    c.interrupt_thread_switch_loaded = sim::nsec(1500);
    c.underflow_trap = sim::nsec(100);
    c.overflow_trap = sim::nsec(100);
    c.syscall_enter = sim::nsec(300);
    c.syscall_return = sim::nsec(150);
    c.signal_delivery = sim::nsec(250);
    c.user_flip_translation = sim::nsec(500);
    c.flip_send_per_message = sim::usec(2);
    c.flip_send_per_fragment = sim::nsec(1500);
    c.interrupt_dispatch = sim::nsec(600);
    c.flip_recv_per_fragment = sim::nsec(1500);
    c.flip_deliver_per_message = sim::nsec(1800);
    c.flip_reassembly = sim::nsec(250);
    c.copy_ns_per_byte = sim::nsec(1);  // ~1 GB/s conservative touch-copy
    c.deliver_to_process = sim::nsec(400);
    c.user_fragmentation_layer = sim::nsec(500);
    c.rpc_protocol_processing = sim::nsec(750);
    c.group_protocol_processing = sim::usec(2);
    c.lock_op = sim::nsec(20);
    c.rpc_retransmit_interval = sim::msec(1);
    c.reply_cache_ttl = sim::msec(50);
    c.group_retransmit_request_delay = sim::usec(100);
    c.reassembly_timeout = sim::msec(1);
    return c;
  }
};

}  // namespace amoeba
