// Amoeba's kernel-space totally-ordered group communication
// (Kaashoek's sequencer protocol, §2/§4.3).
//
// One member node hosts the sequencer. For small messages (the PB method)
// the sender's kernel forwards the message point-to-point to the sequencer,
// which stamps the next sequence number and multicasts it to the group. For
// large messages (the BB method) the sender multicasts the body itself and
// the sequencer multicasts a short accept carrying the sequence number —
// "for large messages ... the senders broadcast messages themselves and the
// sequencer broadcasts (small) acknowledgement messages".
//
// Receivers deliver strictly in sequence-number order; a gap triggers a
// retransmission request to the sequencer, which answers from its history
// buffer. The history is bounded: members piggyback their delivery horizon
// on requests, and when the buffer fills the sequencer runs an explicit
// status round before accepting more traffic ("several mechanisms to prevent
// overflow of the history buffer").
//
// grp_send is blocking: "the calling thread is suspended until the message
// has returned from the sequencer". In this kernel-space implementation the
// sequencer runs at interrupt level ("the Amoeba group code is invoked from
// within the (software) interrupt handler"), so sequencing costs no thread
// switch and no user/kernel crossing — the property that makes the
// kernel-space LEQ application win in §5.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "amoeba/flip.h"
#include "amoeba/kernel.h"
#include "metrics/handles.h"
#include "net/buffer.h"
#include "paxos/paxos.h"
#include "sim/co.h"

namespace amoeba {

using GroupId = std::uint32_t;
using SeqNo = std::uint32_t;

[[nodiscard]] constexpr FlipAddr group_flip_addr(GroupId g) noexcept {
  return kFlipGroupBit | 0x00B0'0000'0000'0000ULL | g;
}
[[nodiscard]] constexpr FlipAddr group_sequencer_addr(GroupId g) noexcept {
  return 0x00B1'0000'0000'0000ULL | g;
}
/// Per-member endpoint for point-to-point retransmissions from the sequencer.
[[nodiscard]] constexpr FlipAddr group_member_addr(GroupId g, NodeId node) noexcept {
  return 0x00B2'0000'0000'0000ULL | (static_cast<FlipAddr>(g & 0xFFFF) << 32) | node;
}

struct GroupConfig {
  std::vector<NodeId> members;
  std::size_t sequencer_index = 0;
  /// Sequencer history capacity (messages); small values exercise the
  /// overflow-prevention protocol.
  std::size_t history_capacity = 256;
  /// Messages larger than this use the BB method (sender broadcasts the
  /// body; sequencer broadcasts a short accept).
  std::size_t bb_threshold = 1400;
  /// Sender retries its request if its message is not sequenced in time.
  sim::Time send_retry_interval = sim::msec(100);
  /// Delay before a gap triggers a retransmission request (allows simple
  /// reordering to resolve itself).
  sim::Time gap_request_delay = sim::msec(5);

  /// Replicated-sequencer mode: instead of one sequencer node, `replicas`
  /// runs a multi-Paxos core (paxos::Participant); the current leader plays
  /// the sequencer role and survives crashes by election. The classic
  /// sequencer fields (sequencer_index, history_capacity, bb_threshold) are
  /// ignored in this mode.
  bool replicated = false;
  std::vector<NodeId> replicas;
  sim::Time paxos_lease = sim::msec(60);
  sim::Time paxos_tick = sim::msec(10);

  [[nodiscard]] NodeId sequencer_node() const { return members.at(sequencer_index); }
};

struct GroupMsg {
  GroupMsg() = default;
  GroupMsg(NodeId s, SeqNo n, net::Payload p)
      : sender(s), seqno(n), payload(std::move(p)) {}
  NodeId sender = 0;
  SeqNo seqno = 0;
  net::Payload payload;
};

class KernelGroup {
 public:
  explicit KernelGroup(Kernel& kernel) : kernel_(&kernel) {
    const metrics::NodeMetrics nm(kernel.sim().metrics(), kernel.node());
    m_sends_ = nm.counter("group.sends");
    m_retransmits_ = nm.counter("group.retransmits");
    m_deliveries_ = nm.counter("group.deliveries");
    m_send_latency_ = nm.histogram("group.send_latency_ns");
  }

  KernelGroup(const KernelGroup&) = delete;
  KernelGroup& operator=(const KernelGroup&) = delete;

  /// Join a group. Every member calls this with an identical config; the
  /// node at `sequencer_index` additionally becomes the sequencer.
  void join(GroupId gid, GroupConfig config);

  /// Blocking totally-ordered send (returns once this member has delivered
  /// its own message, i.e. it has been sequenced and come back).
  [[nodiscard]] sim::Co<void> send(Thread& self, GroupId gid, net::Payload msg);

  /// Blocking receive of the next message in total order.
  [[nodiscard]] sim::Co<GroupMsg> receive(Thread& self, GroupId gid);

  /// Sequenced leave / re-join (replicated mode only): the membership change
  /// goes through the ordered log, so every member agrees on the exact slot
  /// the caller's delivery window closes / reopens.
  [[nodiscard]] sim::Co<void> leave(Thread& self, GroupId gid);
  [[nodiscard]] sim::Co<void> rejoin(Thread& self, GroupId gid);

  /// Fault injection: this node stops participating in the group — timers
  /// cancelled, ingress dropped, the Paxos core (if any) silenced. Blocked
  /// send() callers on this node never return (their node is dead).
  void crash(GroupId gid);

  /// Messages delivered to this member so far (high-water mark of seqno).
  [[nodiscard]] SeqNo delivered_up_to(GroupId gid) const;

  // Introspection for tests and benchmarks.
  [[nodiscard]] std::uint64_t sequenced_count(GroupId gid) const;
  [[nodiscard]] std::uint64_t retransmit_requests() const noexcept { return retreqs_; }
  [[nodiscard]] std::uint64_t status_rounds() const noexcept { return status_rounds_; }
  [[nodiscard]] std::uint64_t bb_sends() const noexcept { return bb_sends_; }
  /// Views adopted by this member (replicated mode; 0 in classic mode).
  [[nodiscard]] std::uint64_t view_changes(GroupId gid) const;

 private:
  enum class MsgType : std::uint8_t {
    kRequest = 1,      // member -> sequencer (PB: body included)
    kBody = 2,         // member -> group (BB: body broadcast by sender)
    kAcceptFull = 3,   // sequencer -> group (PB: seqno + body)
    kAcceptRef = 4,    // sequencer -> group (BB: seqno + uid reference)
    kRetransReq = 5,   // member -> sequencer (I'm missing `seqno`)
    kRetrans = 6,      // sequencer -> member (one sequenced message, full)
    kStatusReq = 7,    // sequencer -> group (report your horizon)
    kStatus = 8,       // member -> sequencer (piggyback is implicit elsewhere)
    kPax = 9,          // replicated mode: body is one paxos::Participant wire
  };

  struct Header;

  struct PendingSend {
    Thread* thread = nullptr;
    std::uint64_t uid = 0;
    net::Payload wire;      // serialized request/body, for retries
    net::Payload body;      // app payload (replicated mode rebuilds requests)
    paxos::CmdKind cmd = paxos::CmdKind::kApp;
    bool bb = false;
    bool done = false;
    sim::EventHandle retry;  // next send_retry_tick; cancelled on completion
    int sends = 0;
  };

  struct SequencedMsg {
    SequencedMsg() = default;
    SequencedMsg(SeqNo n, NodeId s, std::uint64_t u, net::Payload p)
        : seqno(n), sender(s), uid(u), payload(std::move(p)) {}
    SeqNo seqno = 0;
    NodeId sender = 0;
    std::uint64_t uid = 0;
    net::Payload payload;
    bool bb = false;
  };

  struct SequencerState {
    SeqNo next_seqno = 1;
    std::deque<SequencedMsg> history;
    // uid -> seqno for every message accepted for sequencing. An entry is
    // created (seqno 0) when the message is held pending and kept after its
    // history slot is trimmed — until it ages out of `retired` — so a
    // sender's late retry is answered from history or dropped, never
    // sequenced a second time.
    std::unordered_map<std::uint64_t, SeqNo> sequenced_uids;
    std::deque<std::uint64_t> retired;  // trimmed uids, oldest first
    std::unordered_map<NodeId, SeqNo> member_horizon;
    std::deque<SequencedMsg> pending;  // waiting for history space
    bool status_round_active = false;
    std::uint64_t total_sequenced = 0;
    // Tail-loss watchdog (see the user-space counterpart for rationale).
    sim::EventHandle lag_probe;
    sim::Time last_progress = 0;
  };

  struct MemberState {
    GroupConfig config;
    bool is_sequencer = false;
    SeqNo next_expected = 1;
    std::map<SeqNo, SequencedMsg> out_of_order;
    std::unordered_map<std::uint64_t, net::Payload> bb_bodies;
    // Accepts that arrived before their (BB) body.
    std::unordered_map<std::uint64_t, SequencedMsg> pending_accepts;
    std::deque<GroupMsg> inbox;
    std::deque<Thread*> waiting_receivers;
    std::unordered_map<std::uint64_t, PendingSend*> sends_in_flight;
    sim::EventHandle gap_probe;  // pending gap-request; cancelled as gaps close
    std::unique_ptr<SequencerState> seq;  // non-null on the sequencer node
    bool crashed = false;
    // Replicated mode: the Paxos core and its timer.
    std::unique_ptr<paxos::Participant> pax;
    sim::EventHandle pax_tick;
  };

  [[nodiscard]] sim::Co<void> on_group_message(GroupId gid, FlipMessage m);
  [[nodiscard]] sim::Co<void> on_sequencer_message(GroupId gid, FlipMessage m);

  // Sequencer side.
  [[nodiscard]] sim::Co<void> sequence(GroupId gid, MemberState& ms, NodeId sender,
                                       std::uint64_t uid, net::Payload body,
                                       bool bb, SeqNo sender_horizon);
  [[nodiscard]] sim::Co<void> emit_accept(GroupId gid, MemberState& ms,
                                          const SequencedMsg& sm, bool bb);
  [[nodiscard]] sim::Co<void> run_status_round(GroupId gid, MemberState& ms);
  void trim_history(MemberState& ms);
  void arm_lag_watchdog(GroupId gid);
  void lag_watchdog_tick(GroupId gid);
  [[nodiscard]] sim::Co<void> drain_pending(GroupId gid, MemberState& ms);

  // Member side.
  [[nodiscard]] sim::Co<void> accept(GroupId gid, MemberState& ms, SequencedMsg sm);
  [[nodiscard]] sim::Co<void> deliver_in_order(GroupId gid, MemberState& ms);
  void arm_gap_timer(GroupId gid);
  void send_retry_tick(GroupId gid, std::uint64_t uid);

  // Replicated mode: submit a command, flush a core invocation's output
  // (sends, decisions, wakeups) through the kernel stack, keep the tick armed.
  [[nodiscard]] sim::Co<void> paxos_submit(Thread& self, GroupId gid,
                                           paxos::CmdKind cmd, net::Payload msg);
  [[nodiscard]] sim::Co<void> pax_flush(GroupId gid, MemberState& ms,
                                        paxos::Out out);
  void arm_pax_tick(GroupId gid);

  [[nodiscard]] net::Payload make_wire(MsgType type, GroupId gid, SeqNo seqno,
                                       NodeId sender, std::uint64_t uid,
                                       SeqNo horizon,
                                       const net::Payload& body);

  [[nodiscard]] MemberState& state(GroupId gid);
  [[nodiscard]] const MemberState& state(GroupId gid) const;

  Kernel* kernel_;
  net::Writer wire_writer_;
  metrics::CounterHandle m_sends_;
  metrics::CounterHandle m_retransmits_;
  metrics::CounterHandle m_deliveries_;
  metrics::HistogramHandle m_send_latency_;
  std::map<GroupId, MemberState> groups_;
  std::uint64_t next_uid_ = 1;
  std::uint64_t retreqs_ = 0;
  std::uint64_t status_rounds_ = 0;
  std::uint64_t bb_sends_ = 0;
};

}  // namespace amoeba
