// A processor pool: simulator + network topology + one Amoeba kernel per
// node. This is the substrate every protocol test, benchmark and application
// run builds on.
#pragma once

#include <memory>
#include <vector>

#include "amoeba/cost_model.h"
#include "amoeba/kernel.h"
#include "metrics/registry.h"
#include "net/network.h"
#include "sim/ledger.h"
#include "sim/partition.h"
#include "sim/simulator.h"

namespace amoeba {

struct WorldConfig {
  net::NetworkConfig network;
  CostModel costs;
  std::uint64_t seed = 42;
  /// Attach a metrics hub to the simulator. Recording is pure observation
  /// (no sim-time charges, no RNG draws), so turning this on never changes a
  /// run's event sequence — a property the no-perturbation test asserts.
  bool metrics = false;
  /// Partition the pool across this many engines (segments dealt
  /// round-robin); 1 is the classic single-engine path.
  unsigned partitions = 1;
  /// Worker team size for lookahead windows, capped at `partitions`; 1 runs
  /// windows inline on the caller — results never depend on this knob.
  unsigned threads = 1;
};

class World {
 public:
  explicit World(WorldConfig config = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Boot a node: NIC on the pool topology plus a kernel.
  Kernel& add_node();

  /// Boot `n` nodes at once.
  void add_nodes(std::size_t n);

  [[nodiscard]] Kernel& kernel(NodeId id);
  [[nodiscard]] std::size_t node_count() const noexcept { return kernels_.size(); }
  /// Partition 0's engine — "the" simulator of a single-partition world.
  [[nodiscard]] sim::Simulator& sim() noexcept { return psim_.engine(0); }
  /// The parallel driver. Runs with partitions > 1 must go through its
  /// run()/run_until() (or the helpers below), never a single engine's.
  [[nodiscard]] sim::PartitionedSimulator& partitioned() noexcept {
    return psim_;
  }
  /// Run to quiescence across all partitions. Returns events executed.
  std::size_t run() { return psim_.run(); }
  /// Run through simulated time t across all partitions.
  void run_until(sim::Time t) { psim_.run_until(t); }
  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] const CostModel& costs() const noexcept { return config_.costs; }

  /// Sum of all per-node mechanism ledgers.
  [[nodiscard]] sim::Ledger aggregate_ledger() const;

  /// The attached metrics hub, or nullptr when WorldConfig::metrics is off.
  [[nodiscard]] metrics::Metrics* metrics() noexcept { return metrics_.get(); }

  /// Snapshot network-layer state (segment utilisation/bytes/drops/queue
  /// peaks, switch forwards, per-node NIC counters) into the metrics hub's
  /// gauges. Call after the run of interest; no-op without a hub.
  void snapshot_net_metrics();

 private:
  WorldConfig config_;
  sim::PartitionedSimulator psim_;
  std::unique_ptr<metrics::Metrics> metrics_;
  net::Network network_;
  std::vector<std::unique_ptr<Kernel>> kernels_;
};

}  // namespace amoeba
