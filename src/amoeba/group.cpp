#include "amoeba/group.h"

#include <algorithm>
#include <utility>

#include "metrics/registry.h"
#include "sim/require.h"
#include "trace/tracer.h"

namespace amoeba {

namespace {
constexpr std::size_t kHeaderFixed = 28;  // serialized fields before padding
}

net::Payload KernelGroup::make_wire(MsgType type, GroupId gid, SeqNo seqno,
                                    NodeId sender, std::uint64_t uid, SeqNo horizon,
                                    const net::Payload& body) {
  net::Writer& w = wire_writer_;
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(0).u16(0);
  w.u32(gid);
  w.u32(seqno);
  w.u32(sender);
  w.u64(uid);
  w.u32(horizon);
  // Pad to the kernel protocol's 52-byte header (§4.3: "52 byte header").
  w.zeros(kernel_->costs().amoeba_group_header - kHeaderFixed);
  w.payload(body);
  return w.take();
}

void KernelGroup::join(GroupId gid, GroupConfig config) {
  sim::require(!groups_.contains(gid), "KernelGroup::join: already a member");
  sim::require(!config.members.empty(), "KernelGroup::join: empty group");
  MemberState& ms = groups_[gid];
  ms.config = std::move(config);
  if (ms.config.replicated) {
    // The sequencer role is a replicated state machine; no single node owns
    // the group_sequencer_addr endpoint.
    paxos::Config pc;
    pc.replicas = ms.config.replicas;
    pc.self = kernel_->node();
    pc.members = ms.config.members;
    pc.group = gid;
    pc.lease = ms.config.paxos_lease;
    pc.tick = ms.config.paxos_tick;
    ms.pax = std::make_unique<paxos::Participant>(kernel_->sim(), std::move(pc));
    kernel_->flip().register_group(
        group_flip_addr(gid), [this, gid](FlipMessage m) {
          return on_group_message(gid, std::move(m));
        });
    kernel_->flip().register_endpoint(
        group_member_addr(gid, kernel_->node()),
        [this, gid](FlipMessage m) {
          return on_group_message(gid, std::move(m));
        });
    return;
  }
  ms.is_sequencer = ms.config.sequencer_node() == kernel_->node();
  if (ms.is_sequencer) {
    ms.seq = std::make_unique<SequencerState>();
    kernel_->flip().register_endpoint(
        group_sequencer_addr(gid), [this, gid](FlipMessage m) {
          return on_sequencer_message(gid, std::move(m));
        });
  }
  kernel_->flip().register_group(
      group_flip_addr(gid), [this, gid](FlipMessage m) {
        return on_group_message(gid, std::move(m));
      });
  // Point-to-point retransmissions from the sequencer arrive here.
  kernel_->flip().register_endpoint(
      group_member_addr(gid, kernel_->node()),
      [this, gid](FlipMessage m) {
        return on_group_message(gid, std::move(m));
      });
}

KernelGroup::MemberState& KernelGroup::state(GroupId gid) {
  const auto it = groups_.find(gid);
  sim::require(it != groups_.end(), "KernelGroup: not a member of this group");
  return it->second;
}

const KernelGroup::MemberState& KernelGroup::state(GroupId gid) const {
  const auto it = groups_.find(gid);
  sim::require(it != groups_.end(), "KernelGroup: not a member of this group");
  return it->second;
}

SeqNo KernelGroup::delivered_up_to(GroupId gid) const {
  const MemberState& ms = state(gid);
  return ms.pax ? ms.pax->applied() : ms.next_expected - 1;
}

std::uint64_t KernelGroup::sequenced_count(GroupId gid) const {
  const MemberState& ms = state(gid);
  if (ms.pax) return ms.pax->sequenced_count();
  return ms.seq ? ms.seq->total_sequenced : 0;
}

std::uint64_t KernelGroup::view_changes(GroupId gid) const {
  const MemberState& ms = state(gid);
  return ms.pax ? ms.pax->view_changes() : 0;
}

void KernelGroup::crash(GroupId gid) {
  MemberState& ms = state(gid);
  if (ms.crashed) return;
  ms.crashed = true;
  ms.gap_probe.cancel();
  ms.pax_tick.cancel();
  if (ms.seq) ms.seq->lag_probe.cancel();
  for (auto& [uid, ps] : ms.sends_in_flight) ps->retry.cancel();
  if (ms.pax) ms.pax->crash();
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kCrash, 0, 0, 0, gid);
  }
}


sim::Co<void> KernelGroup::send(Thread& self, GroupId gid, net::Payload msg) {
  MemberState& ms = state(gid);
  if (ms.pax) {
    co_await paxos_submit(self, gid, paxos::CmdKind::kApp, std::move(msg));
    co_return;
  }
  const CostModel& c = kernel_->costs();
  const sim::Time t0 = kernel_->sim().now();
  co_await kernel_->syscall_enter();
  co_await kernel_->copy_boundary(msg.size());
  co_await kernel_->charge(sim::Prio::kKernel, sim::Mechanism::kProtocolProcessing,
                           c.group_protocol_processing);

  const std::uint64_t uid =
      (static_cast<std::uint64_t>(kernel_->node()) << 32) | next_uid_++;
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kGroupSend, uid, 0,
               msg.size(), gid);
  }
  const bool bb = msg.size() > ms.config.bb_threshold;
  const SeqNo horizon = ms.next_expected - 1;

  auto ps = std::make_unique<PendingSend>();
  ps->thread = &self;
  ps->uid = uid;
  ps->bb = bb;
  PendingSend* raw = ps.get();
  ms.sends_in_flight.emplace(uid, raw);
  // Keep ownership alongside the in-flight map entry.
  std::unique_ptr<PendingSend> owner = std::move(ps);

  if (ms.is_sequencer) {
    if (bb) {
      // The members still need the body: broadcast it before sequencing
      // locally (the accept will follow the body fragments on the wire).
      ++bb_sends_;
      ms.bb_bodies.emplace(uid, msg);
      net::Payload body_wire =
          make_wire(MsgType::kBody, gid, 0, kernel_->node(), uid, horizon, msg);
      co_await kernel_->flip().multicast(group_flip_addr(gid),
                                         std::move(body_wire), sim::Prio::kKernel);
    }
    // Local sequencing: no wire hop to the sequencer.
    co_await sequence(gid, ms, kernel_->node(), uid, msg, bb, horizon);
  } else if (bb) {
    ++bb_sends_;
    ms.bb_bodies.emplace(uid, msg);  // own body for self-delivery
    raw->wire = make_wire(MsgType::kBody, gid, 0, kernel_->node(), uid, horizon, msg);
    co_await kernel_->flip().multicast(group_flip_addr(gid), raw->wire,
                                       sim::Prio::kKernel);
  } else {
    raw->wire =
        make_wire(MsgType::kRequest, gid, 0, kernel_->node(), uid, horizon, msg);
    co_await kernel_->flip().unicast(group_sequencer_addr(gid), raw->wire,
                                     sim::Prio::kKernel);
  }

  if (!ms.is_sequencer) {
    raw->retry = kernel_->sim().after(
        ms.config.send_retry_interval,
        [this, gid, uid] { send_retry_tick(gid, uid); });
  }

  // "the calling thread is suspended until the message has returned from the
  //  sequencer"
  while (!raw->done) co_await self.block();

  ms.sends_in_flight.erase(uid);
  co_await kernel_->syscall_return(c.amoeba_stub_stack_depth);
  m_sends_.add();
  m_send_latency_.record(static_cast<std::uint64_t>(kernel_->sim().now() - t0));
}

sim::Co<void> KernelGroup::leave(Thread& self, GroupId gid) {
  sim::require(state(gid).pax != nullptr,
               "KernelGroup::leave: replicated mode only");
  co_await paxos_submit(self, gid, paxos::CmdKind::kLeave, net::Payload());
}

sim::Co<void> KernelGroup::rejoin(Thread& self, GroupId gid) {
  sim::require(state(gid).pax != nullptr,
               "KernelGroup::rejoin: replicated mode only");
  co_await paxos_submit(self, gid, paxos::CmdKind::kJoin, net::Payload());
}

sim::Co<void> KernelGroup::paxos_submit(Thread& self, GroupId gid,
                                        paxos::CmdKind cmd, net::Payload msg) {
  MemberState& ms = state(gid);
  const CostModel& c = kernel_->costs();
  const sim::Time t0 = kernel_->sim().now();
  co_await kernel_->syscall_enter();
  co_await kernel_->copy_boundary(msg.size());
  co_await kernel_->charge(sim::Prio::kKernel,
                           sim::Mechanism::kProtocolProcessing,
                           c.group_protocol_processing);

  const std::uint64_t uid =
      (static_cast<std::uint64_t>(kernel_->node()) << 32) | next_uid_++;
  if (cmd == paxos::CmdKind::kApp) {
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kGroupSend, uid, 0,
                 msg.size(), gid);
    }
  }
  auto ps = std::make_unique<PendingSend>();
  ps->thread = &self;
  ps->uid = uid;
  ps->cmd = cmd;
  ps->body = msg;
  PendingSend* raw = ps.get();
  ms.sends_in_flight.emplace(uid, raw);
  std::unique_ptr<PendingSend> owner = std::move(ps);

  net::Payload req = ms.pax->make_request(cmd, uid, msg, /*escalated=*/false);
  if (ms.pax->is_leader()) {
    // Leader-local sequencing: the request never touches the wire — the
    // replicated analogue of the classic sequencer sending to itself.
    paxos::Out out;
    ms.pax->on_wire(req, out);
    co_await pax_flush(gid, ms, std::move(out));
  } else {
    net::Payload wire = make_wire(MsgType::kPax, gid, 0, kernel_->node(), 0, 0,
                                  req);
    co_await kernel_->flip().unicast(group_member_addr(gid, ms.pax->leader()),
                                     std::move(wire), sim::Prio::kKernel);
  }
  if (!raw->done && !ms.crashed) {
    raw->retry = kernel_->sim().after(
        ms.config.send_retry_interval,
        [this, gid, uid] { send_retry_tick(gid, uid); });
  }

  while (!raw->done) co_await self.block();

  ms.sends_in_flight.erase(uid);
  co_await kernel_->syscall_return(c.amoeba_stub_stack_depth);
  m_sends_.add();
  m_send_latency_.record(static_cast<std::uint64_t>(kernel_->sim().now() - t0));
}

void KernelGroup::send_retry_tick(GroupId gid, std::uint64_t uid) {
  MemberState& ms = state(gid);
  if (ms.crashed) return;
  // The retry is cancelled when the send completes, so a live fire always
  // finds an unfinished send.
  const auto it = ms.sends_in_flight.find(uid);
  if (it == ms.sends_in_flight.end()) return;
  PendingSend& pending = *it->second;
  ++pending.sends;
  m_retransmits_.add();
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kRetransmit, uid,
               trace::kReasonGroupSendRetry);
  }
  if (ms.pax) {
    // Rebuild the request (the leader may have moved). After two quiet
    // retries, escalate to the whole group: any replica relays, and the
    // escalation itself is election fuel at the replicas.
    const bool escalate = pending.sends >= 2;
    net::Payload req = ms.pax->make_request(pending.cmd, uid, pending.body,
                                            escalate);
    if (ms.pax->is_leader()) {
      paxos::Out out;
      ms.pax->on_wire(req, out);
      sim::spawn(pax_flush(gid, ms, std::move(out)));
    } else {
      net::Payload wire = make_wire(MsgType::kPax, gid, 0, kernel_->node(), 0,
                                    0, req);
      if (escalate) {
        // A multicast is a single frame, i.e. a single loss draw: dropped,
        // it silences the whole round. Pair it with a direct copy to the
        // believed leader so one drop cannot erase the escalation.
        sim::spawn(kernel_->flip().unicast(
            group_member_addr(gid, ms.pax->leader()), wire,
            sim::Prio::kKernel));
        sim::spawn(kernel_->flip().multicast(group_flip_addr(gid),
                                             std::move(wire),
                                             sim::Prio::kKernel));
      } else {
        sim::spawn(kernel_->flip().unicast(
            group_member_addr(gid, ms.pax->leader()), std::move(wire),
            sim::Prio::kKernel));
      }
    }
    // Backoff caps at 4x, not the classic 16x: with a replica set the group
    // repairs itself, and a sender sleeping seconds past an election is the
    // only way a surviving send can miss a bounded failover window.
    const sim::Time backoff =
        ms.config.send_retry_interval * (1LL << std::min(pending.sends, 2));
    pending.retry = kernel_->sim().after(
        backoff, [this, gid, uid] { send_retry_tick(gid, uid); });
    return;
  }
  if (pending.bb) {
    sim::spawn(kernel_->flip().multicast(group_flip_addr(gid), pending.wire,
                                         sim::Prio::kKernel));
  } else {
    sim::spawn(kernel_->flip().unicast(group_sequencer_addr(gid), pending.wire,
                                       sim::Prio::kKernel));
  }
  // Exponential backoff: under saturation the first attempt is often just
  // queued behind other traffic, not lost.
  const sim::Time backoff =
      ms.config.send_retry_interval * (1LL << std::min(pending.sends, 4));
  pending.retry = kernel_->sim().after(
      backoff, [this, gid, uid] { send_retry_tick(gid, uid); });
}

sim::Co<GroupMsg> KernelGroup::receive(Thread& self, GroupId gid) {
  MemberState& ms = state(gid);
  const CostModel& c = kernel_->costs();
  co_await kernel_->syscall_enter();
  while (ms.inbox.empty()) {
    ms.waiting_receivers.push_back(&self);
    co_await self.block();
  }
  GroupMsg msg = std::move(ms.inbox.front());
  ms.inbox.pop_front();
  co_await kernel_->copy_boundary(msg.payload.size());
  co_await kernel_->syscall_return(c.amoeba_stub_stack_depth);
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kUpcall, msg.seqno, 2);
  }
  co_return msg;
}

// --- Wire ingress -----------------------------------------------------------

namespace {
struct ParsedHeader {
  std::uint8_t type;
  GroupId gid;
  SeqNo seqno;
  NodeId sender;
  std::uint64_t uid;
  SeqNo horizon;
};
}  // namespace

struct KernelGroup::Header {
  static ParsedHeader parse(const net::Payload& p, std::size_t header_bytes,
                            net::Payload& body_out) {
    net::Reader r(p);
    ParsedHeader h{};
    h.type = r.u8();
    (void)r.u8();
    (void)r.u16();
    h.gid = r.u32();
    h.seqno = r.u32();
    h.sender = r.u32();
    h.uid = r.u64();
    h.horizon = r.u32();
    body_out = p.slice(header_bytes, p.size() - header_bytes);
    return h;
  }
};

sim::Co<void> KernelGroup::on_group_message(GroupId gid, FlipMessage m) {
  MemberState& ms = state(gid);
  if (ms.crashed) co_return;  // a dead node's NIC hears nothing
  const CostModel& c = kernel_->costs();
  co_await kernel_->charge(sim::Prio::kInterrupt,
                           sim::Mechanism::kProtocolProcessing,
                           c.group_protocol_processing);
  net::Payload body;
  const ParsedHeader h =
      Header::parse(m.payload, c.amoeba_group_header, body);
  switch (static_cast<MsgType>(h.type)) {
    case MsgType::kPax: {
      if (ms.pax) {
        // The Paxos core runs at interrupt level, exactly where the classic
        // sequencer logic runs — the kernel-space half of the paper's axis.
        paxos::Out out;
        ms.pax->on_wire(body, out);
        co_await pax_flush(gid, ms, std::move(out));
      }
      break;
    }
    case MsgType::kBody: {
      ms.bb_bodies.emplace(h.uid, body);
      // An accept that raced ahead of this body can now be honoured.
      if (const auto pa = ms.pending_accepts.find(h.uid);
          pa != ms.pending_accepts.end()) {
        SequencedMsg sm = std::move(pa->second);
        ms.pending_accepts.erase(pa);
        sm.payload = ms.bb_bodies.at(h.uid);
        co_await accept(gid, ms, std::move(sm));
      }
      if (ms.is_sequencer) {
        SequencerState& seq = *ms.seq;
        if (const auto it = seq.sequenced_uids.find(h.uid);
            it != seq.sequenced_uids.end()) {
          // Duplicate body. Still held pending (seqno 0): the real accept is
          // coming, drop. Otherwise the sender missed the accept: resend
          // only the *small* accept (the sender already has the body) —
          // resending the full payload under load would melt the saturated
          // wire.
          if (it->second == 0) break;
          if (auto* tr = kernel_->sim().tracer()) {
            tr->record(kernel_->node(), trace::EventKind::kRetransmit,
                       it->second, trace::kReasonSequencerResend);
          }
          net::Payload wire = make_wire(MsgType::kAcceptRef, gid, it->second,
                                        h.sender, h.uid, 0, net::Payload());
          co_await kernel_->flip().unicast(group_member_addr(gid, h.sender),
                                           std::move(wire), sim::Prio::kKernel);
        } else {
          co_await sequence(gid, ms, h.sender, h.uid, std::move(body),
                            /*bb=*/true, h.horizon);
        }
      }
      break;
    }
    case MsgType::kAcceptFull:
    case MsgType::kRetrans:
      ms.pending_accepts.erase(h.uid);
      co_await accept(gid, ms, SequencedMsg(h.seqno, h.sender, h.uid, std::move(body)));
      break;
    case MsgType::kAcceptRef: {
      const auto it = ms.bb_bodies.find(h.uid);
      if (it == ms.bb_bodies.end()) {
        // Body not here yet (in flight, or lost): remember the accept; the
        // body's arrival or the gap-driven retransmission completes it.
        ms.pending_accepts.emplace(h.uid,
                                   SequencedMsg(h.seqno, h.sender, h.uid,
                                                net::Payload()));
        break;
      }
      net::Payload full = it->second;
      co_await accept(gid, ms, SequencedMsg(h.seqno, h.sender, h.uid, std::move(full)));
      break;
    }
    case MsgType::kStatusReq: {
      net::Payload wire = make_wire(MsgType::kStatus, gid, 0, kernel_->node(), 0,
                                    ms.next_expected - 1, net::Payload());
      co_await kernel_->flip().unicast(group_sequencer_addr(gid), std::move(wire),
                                       sim::Prio::kKernel);
      break;
    }
    default:
      break;
  }
}

sim::Co<void> KernelGroup::on_sequencer_message(GroupId gid, FlipMessage m) {
  MemberState& ms = state(gid);
  if (ms.crashed) co_return;
  sim::require(ms.is_sequencer, "sequencer message arrived at a non-sequencer");
  const CostModel& c = kernel_->costs();
  // "the sequencer runs entirely inside the Amoeba kernel" — processed at
  // interrupt level, no crossings, no thread switch.
  co_await kernel_->charge(sim::Prio::kInterrupt,
                           sim::Mechanism::kProtocolProcessing,
                           c.group_protocol_processing);
  net::Payload body;
  const ParsedHeader h = Header::parse(m.payload, c.amoeba_group_header, body);
  SequencerState& seq = *ms.seq;
  switch (static_cast<MsgType>(h.type)) {
    case MsgType::kRequest: {
      seq.member_horizon[h.sender] =
          std::max(seq.member_horizon[h.sender], h.horizon);
      if (const auto it = seq.sequenced_uids.find(h.uid);
          it != seq.sequenced_uids.end()) {
        // Duplicate: resend the accept content straight to the sender. A
        // pending hold (seqno 0) or a trimmed slot resends nothing — the
        // accept is still coming, or every horizon (the sender's included)
        // already passed it.
        for (const SequencedMsg& sm : seq.history) {
          if (sm.seqno == it->second) {
            if (auto* tr = kernel_->sim().tracer()) {
              tr->record(kernel_->node(), trace::EventKind::kRetransmit,
                         sm.seqno, trace::kReasonSequencerResend);
            }
            net::Payload wire = make_wire(MsgType::kRetrans, gid, sm.seqno,
                                          sm.sender, sm.uid, 0, sm.payload);
            co_await kernel_->flip().unicast(group_member_addr(gid, h.sender),
                                             std::move(wire), sim::Prio::kKernel);
            break;
          }
        }
        co_return;
      }
      co_await sequence(gid, ms, h.sender, h.uid, std::move(body), /*bb=*/false,
                        h.horizon);
      break;
    }
    case MsgType::kRetransReq: {
      ++retreqs_;
      seq.member_horizon[h.sender] =
          std::max(seq.member_horizon[h.sender], h.horizon);
      for (const SequencedMsg& sm : seq.history) {
        if (sm.seqno == h.seqno) {
          if (auto* tr = kernel_->sim().tracer()) {
            tr->record(kernel_->node(), trace::EventKind::kRetransmit,
                       sm.seqno, trace::kReasonSequencerResend);
          }
          net::Payload wire = make_wire(MsgType::kRetrans, gid, sm.seqno, sm.sender,
                                        sm.uid, 0, sm.payload);
          co_await kernel_->flip().unicast(group_member_addr(gid, h.sender),
                                           std::move(wire), sim::Prio::kKernel);
          break;
        }
      }
      break;
    }
    case MsgType::kStatus: {
      seq.member_horizon[h.sender] =
          std::max(seq.member_horizon[h.sender], h.horizon);
      trim_history(ms);
      co_await drain_pending(gid, ms);
      break;
    }
    default:
      break;
  }
}

sim::Co<void> KernelGroup::sequence(GroupId gid, MemberState& ms, NodeId sender,
                                    std::uint64_t uid, net::Payload body, bool bb,
                                    SeqNo sender_horizon) {
  SequencerState& seq = *ms.seq;
  seq.member_horizon[sender] = std::max(seq.member_horizon[sender], sender_horizon);
  trim_history(ms);
  if (seq.history.size() >= ms.config.history_capacity) {
    // History full: hold the message and solicit horizons from the members.
    // The seqno-0 dedup entry makes retries of the held message no-ops.
    seq.sequenced_uids[uid] = 0;
    SequencedMsg sm(0, sender, uid, std::move(body));
    sm.bb = bb;
    seq.pending.push_back(std::move(sm));
    if (!seq.status_round_active) {
      co_await run_status_round(gid, ms);
      // Our own horizon may already free space (single-member groups, or a
      // sequencer that lags no one).
      trim_history(ms);
      co_await drain_pending(gid, ms);
    }
    co_return;
  }
  SequencedMsg sm(seq.next_seqno++, sender, uid, std::move(body));
  sm.bb = bb;
  if (auto* tr = kernel_->sim().tracer()) {
    tr->record(kernel_->node(), trace::EventKind::kSeqnoAssign, sm.seqno,
               sender, uid, gid);
  }
  seq.sequenced_uids[uid] = sm.seqno;
  seq.history.push_back(sm);
  ++seq.total_sequenced;
  seq.last_progress = kernel_->sim().now();
  co_await emit_accept(gid, ms, sm, bb);
  arm_lag_watchdog(gid);
}

void KernelGroup::arm_lag_watchdog(GroupId gid) {
  MemberState& ms = state(gid);
  if (ms.seq->lag_probe.active()) return;
  ms.seq->lag_probe = kernel_->sim().after(
      sim::msec(200), [this, gid] { lag_watchdog_tick(gid); });
}

void KernelGroup::lag_watchdog_tick(GroupId gid) {
  MemberState& ms = state(gid);
  SequencerState& seq = *ms.seq;
  // Probe only once sequencing has gone quiet (see user-space counterpart).
  if (kernel_->sim().now() - seq.last_progress < sim::msec(200)) {
    ms.seq->lag_probe = kernel_->sim().after(
        sim::msec(200), [this, gid] { lag_watchdog_tick(gid); });
    return;
  }
  const SeqNo target = seq.next_seqno - 1;
  bool lagging = false;
  for (const NodeId member : ms.config.members) {
    const SeqNo h = member == kernel_->node()
                        ? ms.next_expected - 1
                        : (seq.member_horizon.contains(member)
                               ? seq.member_horizon.at(member)
                               : 0);
    if (h >= target) continue;
    lagging = true;
    for (const SequencedMsg& sm : seq.history) {
      if (sm.seqno == h + 1) {
        if (auto* tr = kernel_->sim().tracer()) {
          tr->record(kernel_->node(), trace::EventKind::kRetransmit, sm.seqno,
                     trace::kReasonLagWatchdog);
        }
        net::Payload wire = make_wire(MsgType::kRetrans, gid, sm.seqno,
                                      sm.sender, sm.uid, 0, sm.payload);
        sim::spawn(kernel_->flip().unicast(group_member_addr(gid, member),
                                           std::move(wire), sim::Prio::kKernel));
        break;
      }
    }
  }
  if (lagging) {
    net::Payload probe = make_wire(MsgType::kStatusReq, gid, 0, kernel_->node(),
                                   0, 0, net::Payload());
    sim::spawn(kernel_->flip().multicast(group_flip_addr(gid), std::move(probe),
                                         sim::Prio::kKernel));
    ms.seq->lag_probe = kernel_->sim().after(
        sim::msec(200), [this, gid] { lag_watchdog_tick(gid); });
  }
}

sim::Co<void> KernelGroup::emit_accept(GroupId gid, MemberState& ms,
                                       const SequencedMsg& sm, bool bb) {
  if (bb) {
    net::Payload wire = make_wire(MsgType::kAcceptRef, gid, sm.seqno, sm.sender,
                                  sm.uid, 0, net::Payload());
    co_await kernel_->flip().multicast(group_flip_addr(gid), std::move(wire),
                                       sim::Prio::kKernel);
  } else {
    net::Payload wire = make_wire(MsgType::kAcceptFull, gid, sm.seqno, sm.sender,
                                  sm.uid, 0, sm.payload);
    co_await kernel_->flip().multicast(group_flip_addr(gid), std::move(wire),
                                       sim::Prio::kKernel);
  }
  // The sequencer's NIC does not hear its own multicast: deliver locally.
  co_await accept(gid, ms, sm);
}

sim::Co<void> KernelGroup::run_status_round(GroupId gid, MemberState& ms) {
  SequencerState& seq = *ms.seq;
  seq.status_round_active = true;
  ++status_rounds_;
  seq.member_horizon[kernel_->node()] = ms.next_expected - 1;
  net::Payload wire = make_wire(MsgType::kStatusReq, gid, 0, kernel_->node(), 0, 0,
                                net::Payload());
  co_await kernel_->flip().multicast(group_flip_addr(gid), std::move(wire),
                                     sim::Prio::kKernel);
}

void KernelGroup::trim_history(MemberState& ms) {
  SequencerState& seq = *ms.seq;
  if (ms.config.members.size() > 1 &&
      seq.member_horizon.size() < ms.config.members.size()) {
    // Some member has never reported: only trim against known horizons if
    // everyone has reported at least once.
    return;
  }
  SeqNo min_horizon = ms.next_expected - 1;  // the sequencer's own horizon
  for (const NodeId member : ms.config.members) {
    if (member == kernel_->node()) continue;
    const auto it = seq.member_horizon.find(member);
    if (it == seq.member_horizon.end()) return;
    min_horizon = std::min(min_horizon, it->second);
  }
  while (!seq.history.empty() && seq.history.front().seqno <= min_horizon) {
    // Keep the dedup entry past the trim: a retry of this message may still
    // be in flight (it was racing the accept when the sender completed), and
    // without the entry it would be sequenced a second time under a fresh
    // seqno. Entries age out of the bounded `retired` FIFO instead.
    seq.retired.push_back(seq.history.front().uid);
    seq.history.pop_front();
  }
  const std::size_t keep =
      std::max<std::size_t>(256, 4 * ms.config.history_capacity);
  while (seq.retired.size() > keep) {
    seq.sequenced_uids.erase(seq.retired.front());
    seq.retired.pop_front();
  }
}

sim::Co<void> KernelGroup::drain_pending(GroupId gid, MemberState& ms) {
  SequencerState& seq = *ms.seq;
  while (!seq.pending.empty() &&
         seq.history.size() < ms.config.history_capacity) {
    seq.status_round_active = false;
    SequencedMsg sm = std::move(seq.pending.front());
    seq.pending.pop_front();
    sm.seqno = seq.next_seqno++;
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kSeqnoAssign, sm.seqno,
                 sm.sender, sm.uid, gid);
    }
    seq.sequenced_uids[sm.uid] = sm.seqno;
    seq.history.push_back(sm);
    ++seq.total_sequenced;
    co_await emit_accept(gid, ms, sm, sm.bb);
  }
}

sim::Co<void> KernelGroup::accept(GroupId gid, MemberState& ms, SequencedMsg sm) {
  if (sm.seqno < ms.next_expected) co_return;  // duplicate
  ms.out_of_order.emplace(sm.seqno, std::move(sm));
  co_await deliver_in_order(gid, ms);
  if (!ms.out_of_order.empty()) arm_gap_timer(gid);
}

sim::Co<void> KernelGroup::deliver_in_order(GroupId gid, MemberState& ms) {
  // All ordering-relevant bookkeeping happens synchronously (no suspension),
  // so concurrent accept() activities cannot interleave inbox pushes out of
  // order. The dispatch cost charges — which do suspend — run afterwards.
  std::vector<Thread*> unblocked_senders;
  std::vector<Thread*> woken_receivers;
  while (true) {
    const auto it = ms.out_of_order.find(ms.next_expected);
    if (it == ms.out_of_order.end()) break;
    SequencedMsg sm = std::move(it->second);
    ms.out_of_order.erase(it);
    ++ms.next_expected;
    ms.gap_probe.cancel();
    ms.bb_bodies.erase(sm.uid);

    if (sm.sender == kernel_->node()) {
      // Our own message came back: complete the blocking grp_send. In-kernel
      // unblock — "does not require an expensive address space crossing".
      const auto sit = ms.sends_in_flight.find(sm.uid);
      if (sit != ms.sends_in_flight.end() && !sit->second->done) {
        sit->second->done = true;
        sit->second->retry.cancel();
        unblocked_senders.push_back(sit->second->thread);
      }
    }
    m_deliveries_.add();
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kGroupDeliver, sm.seqno,
                 sm.sender, sm.payload.size(), gid);
    }
    ms.inbox.emplace_back(sm.sender, sm.seqno, std::move(sm.payload));
    if (!ms.waiting_receivers.empty()) {
      woken_receivers.push_back(ms.waiting_receivers.front());
      ms.waiting_receivers.pop_front();
    }
  }
  // The interrupt handler finishes delivery to the waiting receive() thread
  // before the blocked grp_send is resumed — the receive dispatch is on the
  // sender's critical path (group latency exceeds RPC latency in Table 1
  // even though both are two network hops).
  for (Thread* receiver : woken_receivers) {
    co_await kernel_->dispatch_from_interrupt(*receiver);
  }
  for (Thread* sender : unblocked_senders) co_await kernel_->dispatch(*sender);
}

sim::Co<void> KernelGroup::pax_flush(GroupId gid, MemberState& ms,
                                     paxos::Out out) {
  // Bookkeeping first, synchronously — mirrors deliver_in_order: inbox pushes
  // happen in slot order before any dispatch can interleave another flush.
  std::vector<Thread*> unblocked_senders;
  std::vector<Thread*> woken_receivers;
  const auto complete = [&](std::uint64_t uid) {
    const auto sit = ms.sends_in_flight.find(uid);
    if (sit != ms.sends_in_flight.end() && !sit->second->done) {
      sit->second->done = true;
      sit->second->retry.cancel();
      unblocked_senders.push_back(sit->second->thread);
    }
  };
  for (paxos::Decision& d : out.decisions) {
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kGroupDeliver, d.seqno,
                 d.sender, d.payload.size(), gid);
    }
    if (d.kind != paxos::CmdKind::kApp) continue;  // noop/membership slots
    m_deliveries_.add();
    if (d.sender == kernel_->node()) complete(d.uid);
    ms.inbox.emplace_back(d.sender, d.seqno, std::move(d.payload));
    if (!ms.waiting_receivers.empty()) {
      woken_receivers.push_back(ms.waiting_receivers.front());
      ms.waiting_receivers.pop_front();
    }
  }
  if (out.activated) complete(out.activated_uid);
  if (out.deactivated) complete(out.deactivated_uid);

  for (paxos::Send& s : out.sends) {
    if (!s.multicast && s.dst == kernel_->node()) {
      // Core asked us to talk to ourselves (possible transiently around a
      // view change): short-circuit without touching the wire.
      paxos::Out self_out;
      ms.pax->on_wire(s.wire, self_out);
      co_await pax_flush(gid, ms, std::move(self_out));
      continue;
    }
    net::Payload wire = make_wire(MsgType::kPax, gid, 0, kernel_->node(), 0, 0,
                                  s.wire);
    if (s.multicast) {
      co_await kernel_->flip().multicast(group_flip_addr(gid), std::move(wire),
                                         sim::Prio::kKernel);
    } else {
      co_await kernel_->flip().unicast(group_member_addr(gid, s.dst),
                                       std::move(wire), sim::Prio::kKernel);
    }
  }

  if (out.view_changed && !ms.crashed) {
    // Re-aim in-flight requests at the new leader right away instead of
    // waiting out the retry backoff.
    std::vector<std::uint64_t> uids;
    for (const auto& [uid, ps] : ms.sends_in_flight) {
      if (!ps->done) uids.push_back(uid);
    }
    std::sort(uids.begin(), uids.end());
    for (const std::uint64_t uid : uids) {
      const auto sit = ms.sends_in_flight.find(uid);
      if (sit == ms.sends_in_flight.end() || sit->second->done) continue;
      PendingSend& pending = *sit->second;
      net::Payload req = ms.pax->make_request(pending.cmd, uid, pending.body,
                                              pending.sends >= 2);
      if (ms.pax->is_leader()) {
        paxos::Out self_out;
        ms.pax->on_wire(req, self_out);
        co_await pax_flush(gid, ms, std::move(self_out));
      } else {
        net::Payload wire = make_wire(MsgType::kPax, gid, 0, kernel_->node(),
                                      0, 0, req);
        co_await kernel_->flip().unicast(
            group_member_addr(gid, ms.pax->leader()), std::move(wire),
            sim::Prio::kKernel);
      }
    }
  }

  for (Thread* receiver : woken_receivers) {
    co_await kernel_->dispatch_from_interrupt(*receiver);
  }
  for (Thread* sender : unblocked_senders) co_await kernel_->dispatch(*sender);
  arm_pax_tick(gid);
}

void KernelGroup::arm_pax_tick(GroupId gid) {
  MemberState& ms = state(gid);
  if (!ms.pax || ms.crashed || ms.pax_tick.active() || !ms.pax->need_tick()) {
    return;
  }
  ms.pax_tick = kernel_->sim().after(ms.config.paxos_tick, [this, gid] {
    MemberState& m = state(gid);
    if (!m.pax || m.crashed) return;
    paxos::Out out;
    m.pax->on_tick(out);
    sim::spawn(pax_flush(gid, m, std::move(out)));  // flush re-arms the tick
  });
}

void KernelGroup::arm_gap_timer(GroupId gid) {
  MemberState& ms = state(gid);
  if (ms.gap_probe.active()) return;
  ms.gap_probe = kernel_->sim().after(ms.config.gap_request_delay, [this, gid] {
    MemberState& m = state(gid);
    if (m.out_of_order.empty()) return;
    if (auto* tr = kernel_->sim().tracer()) {
      tr->record(kernel_->node(), trace::EventKind::kRetransmit,
                 m.next_expected, trace::kReasonGapRequest);
    }
    net::Payload wire = make_wire(MsgType::kRetransReq, gid, m.next_expected,
                                  kernel_->node(), 0, m.next_expected - 1,
                                  net::Payload());
    sim::spawn(kernel_->flip().unicast(group_sequencer_addr(gid), std::move(wire),
                                       sim::Prio::kKernel));
    arm_gap_timer(gid);  // keep asking until the gap closes
  });
}

}  // namespace amoeba
