#include "amoeba/kernel.h"

#include <utility>

#include "amoeba/flip.h"
#include "sim/require.h"
#include "trace/tracer.h"

namespace amoeba {

Thread::Thread(Kernel& kernel, ThreadId id, std::string name)
    : kernel_(&kernel), id_(id), name_(std::move(name)), cv_(kernel.sim()) {}

sim::Co<void> Thread::block() {
  while (tokens_ == 0) co_await cv_.wait();
  --tokens_;
}

sim::Co<bool> Thread::block_for(sim::Time timeout) {
  const sim::Time deadline = kernel_->sim().now() + timeout;
  while (tokens_ == 0) {
    const sim::Time left = deadline - kernel_->sim().now();
    if (left <= 0) co_return false;
    (void)co_await cv_.wait_for(left);
  }
  --tokens_;
  co_return true;
}

void Thread::unblock() {
  ++tokens_;
  cv_.notify_one();
}

Kernel::Kernel(sim::Simulator& s, net::Nic& nic, const CostModel& costs, NodeId node)
    : sim_(&s), nic_(&nic), costs_(costs), node_(node), cpu_(s) {
  flip_ = std::make_unique<Flip>(*this);
}

Kernel::~Kernel() = default;

Thread& Kernel::create_thread(std::string name) {
  const ThreadId id = (static_cast<ThreadId>(node_) << 20) | next_thread_++;
  threads_.push_back(std::make_unique<Thread>(*this, id, std::move(name)));
  return *threads_.back();
}

namespace {
// The function object must outlive the coroutine it creates (a lambda
// coroutine's frame references its closure). Holding it as a parameter of
// this wrapper coroutine guarantees that.
sim::Co<void> run_thread_body(std::function<sim::Co<void>(Thread&)> body,
                              Thread& t) {
  co_await body(t);
}
}  // namespace

Thread& Kernel::start_thread(std::string name,
                             std::function<sim::Co<void>(Thread&)> body) {
  Thread& t = create_thread(std::move(name));
  sim::spawn(run_thread_body(std::move(body), t));
  return t;
}

sim::Co<void> Kernel::charge(sim::Prio prio, sim::Mechanism m, sim::Time cost,
                             std::uint64_t count) {
  ledger_.add(m, cost, count);
  // Mirror every ledger charge into the trace so the TraceChecker can prove
  // the aggregate accounting equals the event stream.
  if (auto* tr = sim_->tracer()) {
    tr->record(node_, trace::EventKind::kCharge, static_cast<std::uint64_t>(m),
               static_cast<std::uint64_t>(cost), count);
  }
  co_await cpu_.run(cost, prio);
}

sim::Co<void> Kernel::syscall_enter() {
  co_await charge(sim::Prio::kKernel, sim::Mechanism::kSyscallCrossing,
                  costs_.syscall_enter);
}

sim::Co<void> Kernel::syscall_return(int stack_depth) {
  const int traps = std::min(stack_depth, costs_.register_windows);
  co_await charge(sim::Prio::kKernel, sim::Mechanism::kSyscallCrossing,
                  costs_.syscall_return);
  if (traps > 0) {
    co_await charge(sim::Prio::kKernel, sim::Mechanism::kUnderflowTrap,
                    costs_.underflow_trap * traps,
                    static_cast<std::uint64_t>(traps));
  }
}

sim::Co<void> Kernel::copy_boundary(std::size_t bytes) {
  if (bytes == 0) co_return;
  co_await charge(sim::Prio::kKernel, sim::Mechanism::kUserKernelCopy,
                  costs_.copy_ns_per_byte * static_cast<sim::Time>(bytes));
}

sim::Co<void> Kernel::user_flip_translation() {
  co_await charge(sim::Prio::kKernel, sim::Mechanism::kAddressTranslation,
                  costs_.user_flip_translation);
}

sim::Co<void> Kernel::dispatch(Thread& target) {
  if (loaded_ctx_ == target.id()) {
    co_await charge(sim::Prio::kKernel, sim::Mechanism::kSignal, costs_.resume_loaded);
  } else {
    co_await charge(sim::Prio::kKernel, sim::Mechanism::kContextSwitch,
                    costs_.context_switch);
  }
  loaded_ctx_ = target.id();
  target.unblock();
}

sim::Co<void> Kernel::dispatch_from_interrupt(Thread& target) {
  if (loaded_ctx_ == target.id()) {
    co_await charge(sim::Prio::kInterrupt, sim::Mechanism::kThreadSwitch,
                    costs_.interrupt_thread_switch_loaded);
  } else {
    co_await charge(sim::Prio::kInterrupt, sim::Mechanism::kThreadSwitch,
                    costs_.interrupt_thread_switch);
  }
  loaded_ctx_ = target.id();
  target.unblock();
}

sim::Co<void> Kernel::signal_thread(Thread& target, int stack_depth) {
  // The signalling thread traps into the kernel, delivers the signal, and
  // returns through `stack_depth` underflow traps (the daemon "is using all
  // register windows" when it enters the kernel, §4.2).
  co_await syscall_enter();
  co_await charge(sim::Prio::kKernel, sim::Mechanism::kSignal, costs_.signal_delivery);
  co_await dispatch(target);
  co_await syscall_return(stack_depth);
}

sim::Co<void> Kernel::compute(Thread& self, sim::Time amount) {
  if (loaded_ctx_ != self.id()) {
    // Resuming a preempted/descheduled process costs a full switch.
    co_await charge(sim::Prio::kUser, sim::Mechanism::kContextSwitch,
                    costs_.context_switch);
    loaded_ctx_ = self.id();
  }
  std::uint64_t thread_preemptions = 0;
  co_await cpu_.run(amount, sim::Prio::kUser, &thread_preemptions);
  // Every time thread-level work (a daemon, the sequencer, syscall service)
  // preempted this compute slice, the process was switched out and back in:
  // "the overhead of preempting the Orca process ... for each incoming
  // message" (§5).
  if (thread_preemptions > 0) {
    co_await charge(sim::Prio::kUser, sim::Mechanism::kContextSwitch,
                    costs_.context_switch *
                        static_cast<sim::Time>(thread_preemptions),
                    thread_preemptions);
  }
  // The CPU may have served interrupts/daemons meanwhile; if they dispatched
  // other threads, loaded_ctx_ reflects that and the next compute() charges
  // the resume switch. Re-assert only if nothing intervened.
  if (loaded_ctx_ == kNoThread) loaded_ctx_ = self.id();
}

sim::Co<void> Kernel::lock_op() {
  co_await charge(sim::Prio::kUserHigh, sim::Mechanism::kLockOp, costs_.lock_op);
}

}  // namespace amoeba
