// Metrics recording is pure observation: running the identical seeded
// workload with the metrics hub attached and detached must produce
// byte-identical protocol traces and the same final simulated time — metrics
// never schedule events, draw random numbers, or charge simulated time.
// Asserted across both bindings and every fault mode, on top of the same
// fault-injection workload the trace determinism tests use.
#include <gtest/gtest.h>

#include "metrics/registry.h"
#include "../trace/fault_workload.h"

namespace {

using core::Binding;
using trace_test::Fault;
using trace_test::run_fault_workload;
using trace_test::WorkloadResult;

class NoPerturbation
    : public testing::TestWithParam<std::tuple<Binding, Fault>> {};

TEST_P(NoPerturbation, MetricsOnAndOffAreTraceIdentical) {
  const auto [binding, fault] = GetParam();
  constexpr std::uint64_t kSeed = 20260806;
  WorkloadResult off = run_fault_workload(binding, kSeed, fault, false);
  WorkloadResult on = run_fault_workload(binding, kSeed, fault, true);

  // The hub is attached only in the instrumented run...
  EXPECT_EQ(off.bed->metrics(), nullptr);
  ASSERT_NE(on.bed->metrics(), nullptr);

  // ...and it changed nothing observable: same outcomes, same event-by-event
  // trace, same clock at the end, same per-mechanism time accounting.
  EXPECT_EQ(off.rpc_ok, on.rpc_ok);
  EXPECT_EQ(off.orders, on.orders);
  EXPECT_EQ(off.bed->sim().now(), on.bed->sim().now());
  EXPECT_EQ(off.ledger.total_time(), on.ledger.total_time());
  ASSERT_NE(off.bed->tracer(), nullptr);
  ASSERT_NE(on.bed->tracer(), nullptr);
  EXPECT_EQ(off.bed->tracer()->events(), on.bed->tracer()->events());
}

INSTANTIATE_TEST_SUITE_P(
    AllBindingsAndFaults, NoPerturbation,
    testing::Combine(testing::Values(Binding::kKernelSpace,
                                     Binding::kUserSpace),
                     testing::Values(Fault::kNone, Fault::kLoss,
                                     Fault::kDuplication, Fault::kReorder)));

TEST(MetricsWorkload, CountersMatchTheWorkloadShape) {
  // 4 nodes x 4 RPCs each; nodes 0 and 2 broadcast 3 group messages each,
  // delivered on all 4 nodes. With no faults the aggregated counters must
  // equal those exact counts, on both bindings.
  for (const Binding binding : {Binding::kKernelSpace, Binding::kUserSpace}) {
    WorkloadResult r = run_fault_workload(binding, 7, Fault::kNone, true);
    ASSERT_NE(r.bed->metrics(), nullptr);
    const metrics::MetricsRegistry agg = r.bed->metrics()->aggregate();
    EXPECT_EQ(agg.counters().at("rpc.calls")->value, 16U);
    EXPECT_EQ(agg.counters().at("group.sends")->value, 6U);
    EXPECT_EQ(agg.counters().at("group.deliveries")->value, 24U);
    EXPECT_EQ(agg.counters().count("rpc.timeouts"), 0U);  // fault-free run
    // Every completed RPC contributed one latency sample.
    EXPECT_EQ(agg.histograms().at("rpc.latency_ns")->count(), 16U);
    EXPECT_EQ(agg.histograms().at("group.send_latency_ns")->count(), 6U);
  }
}

TEST(MetricsWorkload, FaultsShowUpAsRetransmits) {
  // Under 10% frame loss the protocols must retransmit; the counters see it.
  WorkloadResult r =
      run_fault_workload(Binding::kKernelSpace, 11, Fault::kLoss, true);
  const metrics::MetricsRegistry agg = r.bed->metrics()->aggregate();
  const auto it = agg.counters().find("rpc.retransmits");
  const auto git = agg.counters().find("group.retransmits");
  const std::uint64_t retrans =
      (it != agg.counters().end() ? it->second->value : 0) +
      (git != agg.counters().end() ? git->second->value : 0);
  EXPECT_GT(retrans, 0U);
}

}  // namespace
