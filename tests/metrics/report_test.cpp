// RunReport JSON emission round-trips through the bundled parser with all
// schema fields intact, and report comparison flags regressions in the right
// direction (and only beyond the threshold).
#include <gtest/gtest.h>

#include <string>

#include "metrics/compare.h"
#include "metrics/json.h"
#include "metrics/report.h"
#include "sim/ledger.h"

namespace {

using metrics::Better;
using metrics::CompareOptions;
using metrics::CompareResult;
using metrics::JsonValue;
using metrics::RunReport;

/// Builds a report with one metric of each direction, like a bench would.
RunReport make_report(double latency_ms, double throughput_kbs,
                      double info_value) {
  RunReport r("unit_test");
  r.set_config("seed", std::uint64_t{42});
  r.set_config("nodes", std::int64_t{4});
  r.set_config("quick", false);
  r.set_config("label", std::string("hello \"quoted\" world"));
  r.add_metric("rpc.latency.ms", latency_ms, Better::kLower, "ms");
  r.add_metric("rpc.throughput.kbs", throughput_kbs, Better::kHigher, "KB/s");
  r.add_metric("host.time.ns", info_value, Better::kInfo, "ns");
  return r;
}

TEST(RunReport, JsonRoundTripsThroughParser) {
  RunReport report = make_report(1.5, 900.0, 12345.0);
  metrics::Histogram h;
  h.record(1000);
  h.record(2000);
  h.record(300000);
  report.add_histogram("rpc.latency_ns", h);
  sim::Ledger ledger;
  ledger.add(sim::Mechanism::kContextSwitch, sim::usec(10), 2);
  report.add_ledger("user", ledger);

  std::string err;
  const std::optional<JsonValue> parsed = metrics::parse_json(report.json(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  ASSERT_TRUE(parsed->is_object());

  // Versioned schema header.
  const JsonValue* schema = parsed->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, RunReport::kSchema);
  const JsonValue* version = parsed->find("schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number, RunReport::kSchemaVersion);
  EXPECT_EQ(parsed->find("bench")->string, "unit_test");
  ASSERT_NE(parsed->find("git"), nullptr);  // stamped at build time

  // Config round-trips with types (and string escaping) intact.
  const JsonValue* config = parsed->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->find("seed")->number, 42.0);
  EXPECT_EQ(config->find("nodes")->number, 4.0);
  EXPECT_EQ(config->find("quick")->boolean, false);
  EXPECT_EQ(config->find("label")->string, "hello \"quoted\" world");

  // Metrics carry value, direction and unit.
  const JsonValue* ms = parsed->find("metrics");
  ASSERT_NE(ms, nullptr);
  const JsonValue* lat = ms->find("rpc.latency.ms");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("value")->number, 1.5);
  EXPECT_EQ(lat->find("better")->string, "lower");
  EXPECT_EQ(lat->find("unit")->string, "ms");
  EXPECT_EQ(ms->find("rpc.throughput.kbs")->find("better")->string, "higher");
  EXPECT_EQ(ms->find("host.time.ns")->find("better")->string, "info");

  // Histogram section: summary stats plus the bucket array.
  const JsonValue* hist = parsed->find("histograms")->find("rpc.latency_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->number, 3.0);
  EXPECT_EQ(hist->find("min")->number, 1000.0);
  EXPECT_EQ(hist->find("max")->number, 300000.0);
  EXPECT_GE(hist->find("p50")->number, 2000.0);
  ASSERT_TRUE(hist->find("buckets")->is_array());
  EXPECT_EQ(hist->find("buckets")->array.size(), 3U);

  // Ledger section spliced in as raw JSON.
  const JsonValue* led = parsed->find("ledgers")->find("user");
  ASSERT_NE(led, nullptr);
  EXPECT_TRUE(led->is_object());
}

TEST(RunReport, ReAddingAMetricOverwrites) {
  RunReport r("unit_test");
  r.add_metric("x", 1.0, Better::kLower);
  r.add_metric("x", 2.0, Better::kHigher);
  std::string err;
  const std::optional<JsonValue> parsed = metrics::parse_json(r.json(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  const JsonValue* x = parsed->find("metrics")->find("x");
  EXPECT_EQ(x->find("value")->number, 2.0);
  EXPECT_EQ(x->find("better")->string, "higher");
}

TEST(RunReport, AddRegistryImportsWithPrefix) {
  metrics::MetricsRegistry reg;
  reg.counter("rpc.calls").add(16);
  reg.gauge("wire.util").set(0.5);
  reg.histogram("rpc.latency_ns").record(777);

  RunReport r("unit_test");
  r.add_registry(reg, "user.");
  std::string err;
  const std::optional<JsonValue> parsed = metrics::parse_json(r.json(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  const JsonValue* calls = parsed->find("metrics")->find("user.rpc.calls");
  ASSERT_NE(calls, nullptr);
  EXPECT_EQ(calls->find("value")->number, 16.0);
  EXPECT_EQ(calls->find("better")->string, "info");  // registry imports never gate
  EXPECT_NE(parsed->find("metrics")->find("user.wire.util"), nullptr);
  EXPECT_NE(parsed->find("histograms")->find("user.rpc.latency_ns"), nullptr);
}

TEST(Compare, IdenticalReportsAreClean) {
  const std::string text = make_report(1.5, 900.0, 1.0).json();
  const CompareResult r = metrics::compare_report_texts(text, text);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.regressed);
  for (const auto& d : r.deltas) {
    EXPECT_FALSE(d.regression) << d.name;
    EXPECT_EQ(d.delta_pct, 0.0) << d.name;
  }
}

TEST(Compare, LowerBetterIncreaseRegresses) {
  const std::string old_text = make_report(1.0, 900.0, 1.0).json();
  const std::string new_text = make_report(1.2, 900.0, 1.0).json();  // +20% latency
  const CompareResult r = metrics::compare_report_texts(old_text, new_text);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.regressed);
  bool found = false;
  for (const auto& d : r.deltas) {
    if (d.name == "rpc.latency.ms") {
      found = true;
      EXPECT_TRUE(d.regression);
      EXPECT_NEAR(d.delta_pct, 20.0, 1e-6);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Compare, LowerBetterDecreaseImproves) {
  const std::string old_text = make_report(1.0, 900.0, 1.0).json();
  const std::string new_text = make_report(0.8, 900.0, 1.0).json();
  const CompareResult r = metrics::compare_report_texts(old_text, new_text);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.regressed);
  for (const auto& d : r.deltas) {
    if (d.name == "rpc.latency.ms") {
      EXPECT_TRUE(d.improvement);
      EXPECT_FALSE(d.regression);
    }
  }
}

TEST(Compare, HigherBetterDecreaseRegresses) {
  const std::string old_text = make_report(1.0, 1000.0, 1.0).json();
  const std::string new_text = make_report(1.0, 800.0, 1.0).json();  // -20% tput
  const CompareResult r = metrics::compare_report_texts(old_text, new_text);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.regressed);
}

TEST(Compare, HigherBetterIncreaseDoesNotRegress) {
  const std::string old_text = make_report(1.0, 1000.0, 1.0).json();
  const std::string new_text = make_report(1.0, 1500.0, 1.0).json();
  const CompareResult r = metrics::compare_report_texts(old_text, new_text);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.regressed);
}

TEST(Compare, InfoMetricsNeverGate) {
  const std::string old_text = make_report(1.0, 1000.0, 1.0).json();
  const std::string new_text = make_report(1.0, 1000.0, 500.0).json();  // +49900%
  const CompareResult r = metrics::compare_report_texts(old_text, new_text);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.regressed);
}

TEST(Compare, ThresholdIsAStrictBoundary) {
  CompareOptions opt;
  opt.threshold_pct = 10.0;
  // Integer-valued doubles so the relative delta is exact.
  const std::string old_text = make_report(100.0, 1000.0, 1.0).json();
  // Exactly +10%: not "beyond" the threshold, so no regression.
  const CompareResult at = metrics::compare_report_texts(
      old_text, make_report(110.0, 1000.0, 1.0).json(), opt);
  ASSERT_TRUE(at.ok()) << at.error;
  EXPECT_FALSE(at.regressed);
  // Just past it: regression.
  const CompareResult past = metrics::compare_report_texts(
      old_text, make_report(112.0, 1000.0, 1.0).json(), opt);
  ASSERT_TRUE(past.ok()) << past.error;
  EXPECT_TRUE(past.regressed);
}

TEST(Compare, HistogramPercentilesCompareAsLatencies) {
  RunReport old_r("unit_test");
  metrics::Histogram fast;
  for (int i = 0; i < 100; ++i) fast.record(1000);
  old_r.add_histogram("lat", fast);

  RunReport new_r("unit_test");
  metrics::Histogram slow;
  for (int i = 0; i < 100; ++i) slow.record(2000);  // 2x worse everywhere
  new_r.add_histogram("lat", slow);

  const CompareResult r =
      metrics::compare_report_texts(old_r.json(), new_r.json());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.regressed);
  bool p99_flagged = false;
  for (const auto& d : r.deltas) {
    if (d.name == "lat.p99") p99_flagged = d.regression;
  }
  EXPECT_TRUE(p99_flagged);
}

TEST(Compare, DisappearedAndNewMetricsAreListed) {
  RunReport old_r("unit_test");
  old_r.add_metric("gone.ms", 1.0, Better::kLower);
  old_r.add_metric("both.ms", 1.0, Better::kLower);
  RunReport new_r("unit_test");
  new_r.add_metric("both.ms", 1.0, Better::kLower);
  new_r.add_metric("fresh.ms", 1.0, Better::kLower);
  const CompareResult r =
      metrics::compare_report_texts(old_r.json(), new_r.json());
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.only_old.size(), 1U);
  EXPECT_EQ(r.only_old[0], "gone.ms");
  ASSERT_EQ(r.only_new.size(), 1U);
  EXPECT_EQ(r.only_new[0], "fresh.ms");
  EXPECT_FALSE(r.regressed);  // presence changes never gate by themselves
}

TEST(Compare, RejectsForeignOrMalformedInput) {
  const std::string good = make_report(1.0, 1.0, 1.0).json();
  const CompareResult not_json = metrics::compare_report_texts("{oops", good);
  EXPECT_FALSE(not_json.ok());
  const CompareResult wrong_schema = metrics::compare_report_texts(
      R"({"schema": "something-else/v1", "metrics": {}})", good);
  EXPECT_FALSE(wrong_schema.ok());
  const CompareResult not_object = metrics::compare_report_texts("[1,2]", good);
  EXPECT_FALSE(not_object.ok());
}

}  // namespace
