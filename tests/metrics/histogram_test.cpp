// Histogram percentile math against ground truth: nearest-rank percentiles
// computed from the sorted raw samples must match the histogram's answer
// within the documented bucket resolution (1/16 relative width), and merging
// must be associative, commutative and loss-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "metrics/histogram.h"

namespace {

using metrics::Histogram;

/// Nearest-rank percentile of the raw samples (the definition the histogram
/// approximates): the ceil(p/100 * n)-th smallest sample.
std::uint64_t sample_percentile(std::vector<std::uint64_t> samples, double p) {
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) return samples.front();
  if (p >= 100.0) return samples.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  return samples[rank - 1];
}

/// Asserts the documented accuracy contract for every interesting percentile:
/// never under-reports, and over-reports by at most one bucket width
/// (exact below 32, <= 1/16 relative above).
void expect_percentiles_within_resolution(const Histogram& h,
                                          const std::vector<std::uint64_t>& samples) {
  for (const double p : {0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    const std::uint64_t exact = sample_percentile(samples, p);
    const std::uint64_t est = h.percentile(p);
    EXPECT_GE(est, exact) << "p=" << p;
    const std::uint64_t slack = exact < 32 ? 0 : exact / Histogram::kSubBuckets;
    EXPECT_LE(est, exact + slack) << "p=" << p;
  }
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.sum(), 0U);
  EXPECT_EQ(h.min(), 0U);
  EXPECT_EQ(h.max(), 0U);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0U);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

TEST(Histogram, SmallValuesAreExact) {
  // Values below 32 get their own bucket, so every percentile is exact.
  Histogram h;
  std::vector<std::uint64_t> samples;
  for (std::uint64_t v = 0; v < 32; ++v) {
    for (std::uint64_t k = 0; k <= v; ++k) {
      h.record(v);
      samples.push_back(v);
    }
  }
  for (const double p : {1.0, 10.0, 50.0, 90.0, 99.0}) {
    EXPECT_EQ(h.percentile(p), sample_percentile(samples, p)) << "p=" << p;
  }
}

TEST(Histogram, TracksExactExtremaCountAndSum) {
  Histogram h;
  h.record(7);
  h.record(123456789);
  h.record(1000, 3);
  EXPECT_EQ(h.count(), 5U);
  EXPECT_EQ(h.sum(), 7U + 123456789U + 3U * 1000U);
  EXPECT_EQ(h.min(), 7U);
  EXPECT_EQ(h.max(), 123456789U);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum()) / 5.0);
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram h;
  h.record(100);
  h.record(200000);
  EXPECT_EQ(h.percentile(0), 100U);     // p<=0 -> exact min
  EXPECT_EQ(h.percentile(-5), 100U);
  EXPECT_EQ(h.percentile(100), 200000U);  // p>=100 -> exact max
  EXPECT_EQ(h.percentile(150), 200000U);
  // Estimates never exceed the tracked max, even though the max's bucket
  // upper bound does.
  EXPECT_LE(h.percentile(99.999), h.max());
}

TEST(Histogram, UniformDistributionWithinResolution) {
  std::mt19937_64 rng(12345);
  std::uniform_int_distribution<std::uint64_t> dist(1, 5'000'000);
  Histogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = dist(rng);
    h.record(v);
    samples.push_back(v);
  }
  expect_percentiles_within_resolution(h, samples);
}

TEST(Histogram, HeavyTailWithinResolution) {
  // Latency-shaped data: lognormal with a long tail, the case the relative
  // (rather than absolute) bucket width exists for.
  std::mt19937_64 rng(99);
  std::lognormal_distribution<double> dist(12.0, 1.5);
  Histogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<std::uint64_t>(dist(rng));
    h.record(v);
    samples.push_back(v);
  }
  expect_percentiles_within_resolution(h, samples);
}

TEST(Histogram, BimodalWithinResolution) {
  // Fast path vs retransmission path: two separated modes.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint64_t> fast(1'000, 2'000);
  std::uniform_int_distribution<std::uint64_t> slow(900'000, 1'100'000);
  Histogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = (i % 10 == 0) ? slow(rng) : fast(rng);
    h.record(v);
    samples.push_back(v);
  }
  expect_percentiles_within_resolution(h, samples);
}

TEST(Histogram, BucketMathBoundsEveryValue) {
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<std::uint64_t> dist(0, 1ULL << 40);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = i < 100 ? static_cast<std::uint64_t>(i) : dist(rng);
    const std::size_t idx = Histogram::bucket_index(v);
    const std::uint64_t lo = Histogram::bucket_lower(idx);
    const std::uint64_t hi = Histogram::bucket_upper(idx);
    ASSERT_LE(lo, v);
    ASSERT_GE(hi, v);
    // Relative width contract: at most 1/16 of the bucket's lower bound
    // (exact single-value buckets below 32).
    if (v >= 32) {
      ASSERT_LE(hi - lo + 1, lo / Histogram::kSubBuckets) << "v=" << v;
    } else {
      ASSERT_EQ(lo, hi);
    }
  }
}

TEST(Histogram, BucketsArePartition) {
  // Consecutive buckets tile the value space with no gaps or overlaps.
  for (std::size_t idx = 0; idx < 1000; ++idx) {
    ASSERT_EQ(Histogram::bucket_upper(idx) + 1, Histogram::bucket_lower(idx + 1));
  }
}

TEST(Histogram, MergeMatchesSingleHistogram) {
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<std::uint64_t> dist(0, 10'000'000);
  Histogram all;
  Histogram parts[4];
  for (int i = 0; i < 8000; ++i) {
    const std::uint64_t v = dist(rng);
    all.record(v);
    parts[i % 4].record(v);
  }
  Histogram merged;
  for (const Histogram& p : parts) merged.merge(p);
  EXPECT_EQ(merged, all);
  EXPECT_EQ(merged.percentile(99), all.percentile(99));
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  std::mt19937_64 rng(555);
  std::lognormal_distribution<double> dist(10.0, 2.0);
  Histogram a;
  Histogram b;
  Histogram c;
  for (int i = 0; i < 1000; ++i) {
    a.record(static_cast<std::uint64_t>(dist(rng)));
    b.record(static_cast<std::uint64_t>(dist(rng)));
    c.record(static_cast<std::uint64_t>(dist(rng)));
  }
  // (a + b) + c
  Histogram left = a;
  left.merge(b);
  left.merge(c);
  // a + (b + c)
  Histogram right = b;
  right.merge(c);
  Histogram right_total = a;
  right_total.merge(right);
  EXPECT_EQ(left, right_total);
  // b + a == a + b
  Histogram ab = a;
  ab.merge(b);
  Histogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.record(12345);
  a.record(67);
  const Histogram before = a;
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a, before);
  empty.merge(a);
  EXPECT_EQ(empty, a);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.record(1000, 50);
  h.reset();
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.sum(), 0U);
  EXPECT_EQ(h.min(), 0U);
  EXPECT_EQ(h.max(), 0U);
  Histogram empty;
  EXPECT_EQ(h, empty);
}

TEST(Histogram, NonzeroBucketsCoverAllSamples) {
  Histogram h;
  h.record(5, 2);
  h.record(100000, 3);
  std::uint64_t total = 0;
  for (const Histogram::Bucket& b : h.nonzero_buckets()) {
    EXPECT_LE(b.lower, b.upper);
    total += b.count;
  }
  EXPECT_EQ(total, h.count());
}

}  // namespace
