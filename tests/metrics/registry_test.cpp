// MetricsRegistry find-or-create semantics, cross-node aggregation, and the
// hub's tracer-style attach/detach contract on the simulator.
#include <gtest/gtest.h>

#include <utility>

#include "metrics/handles.h"
#include "metrics/registry.h"
#include "sim/simulator.h"

namespace {

using metrics::Metrics;
using metrics::MetricsRegistry;

TEST(MetricsRegistry, FindOrCreateReturnsStableEntries) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  MetricsRegistry::Counter& c = reg.counter("rpc.calls");
  c.add();
  c.add(4);
  // Same name finds the same counter; different names don't alias.
  EXPECT_EQ(reg.counter("rpc.calls").value, 5U);
  EXPECT_EQ(reg.counter("rpc.timeouts").value, 0U);
  EXPECT_EQ(reg.counters().size(), 2U);

  reg.gauge("wire.util").set(0.75);
  EXPECT_DOUBLE_EQ(reg.gauge("wire.util").value, 0.75);

  reg.histogram("rpc.latency_ns").record(1000);
  EXPECT_EQ(reg.histogram("rpc.latency_ns").count(), 1U);
  EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistry, MergeAddsCountersAndGaugesAndMergesHistograms) {
  MetricsRegistry a;
  a.counter("rpc.calls").add(3);
  a.gauge("nic.rx_frames").set(10.0);
  a.histogram("lat").record(100);

  MetricsRegistry b;
  b.counter("rpc.calls").add(2);
  b.counter("rpc.timeouts").add(1);  // only in b
  b.gauge("nic.rx_frames").set(7.0);
  b.histogram("lat").record(200);

  a.merge(b);
  EXPECT_EQ(a.counter("rpc.calls").value, 5U);
  EXPECT_EQ(a.counter("rpc.timeouts").value, 1U);
  EXPECT_DOUBLE_EQ(a.gauge("nic.rx_frames").value, 17.0);
  EXPECT_EQ(a.histogram("lat").count(), 2U);
  EXPECT_EQ(a.histogram("lat").min(), 100U);
  EXPECT_EQ(a.histogram("lat").max(), 200U);
}

TEST(Metrics, AttachesAndDetachesLikeATracer) {
  sim::Simulator s;
  EXPECT_EQ(s.metrics(), nullptr);
  {
    Metrics hub(s);
    EXPECT_EQ(s.metrics(), &hub);
    // The instrumented-site idiom.
    if (auto* mx = s.metrics()) mx->node(3).counter("rpc.calls").add();
    EXPECT_EQ(hub.node(3).counter("rpc.calls").value, 1U);
  }
  EXPECT_EQ(s.metrics(), nullptr);  // detached on destruction
}

TEST(Metrics, AggregateMergesGlobalAndAllNodes) {
  sim::Simulator s;
  Metrics hub(s);
  hub.global().counter("net.bytes").add(1000);
  hub.node(0).counter("rpc.calls").add(4);
  hub.node(1).counter("rpc.calls").add(6);
  hub.node(0).histogram("lat").record(50);
  hub.node(1).histogram("lat").record(150);

  const MetricsRegistry agg = hub.aggregate();
  EXPECT_EQ(agg.counters().at("net.bytes")->value, 1000U);
  EXPECT_EQ(agg.counters().at("rpc.calls")->value, 10U);
  EXPECT_EQ(agg.histograms().at("lat")->count(), 2U);
  EXPECT_EQ(agg.histograms().at("lat")->max(), 150U);
  EXPECT_EQ(hub.nodes().size(), 2U);
}

TEST(MetricsRegistry, CopyAndMoveKeepViewsConsistent) {
  MetricsRegistry a;
  a.counter("rpc.calls").add(7);
  a.histogram("lat").record(100);

  // Copy rebuilds the pointer index against the copy's own slab.
  MetricsRegistry b = a;
  b.counter("rpc.calls").add(1);
  EXPECT_EQ(a.counters().at("rpc.calls")->value, 7U);
  EXPECT_EQ(b.counters().at("rpc.calls")->value, 8U);
  EXPECT_NE(a.counters().at("rpc.calls"), b.counters().at("rpc.calls"));

  // Move keeps the index valid (deque elements don't move).
  MetricsRegistry c = std::move(b);
  EXPECT_EQ(c.counters().at("rpc.calls")->value, 8U);
  EXPECT_EQ(c.histograms().at("lat")->count(), 1U);
}

TEST(Handles, ResolveLazilyAndRecordThroughCachedSlot) {
  sim::Simulator s;
  Metrics hub(s);
  const metrics::NodeMetrics nm(s.metrics(), 2);
  metrics::CounterHandle calls = nm.counter("rpc.calls");
  metrics::CounterHandle timeouts = nm.counter("rpc.timeouts");
  metrics::HistogramHandle lat = nm.histogram("rpc.latency_ns");

  // Lazy interning: nothing exists until the first record, so a metric that
  // never fires never appears (the fault-free-run property).
  EXPECT_TRUE(hub.node(2).empty());
  calls.add();
  calls.add(2);
  lat.record(500);
  EXPECT_EQ(hub.node(2).counter("rpc.calls").value, 3U);
  EXPECT_EQ(hub.node(2).histogram("rpc.latency_ns").count(), 1U);
  EXPECT_EQ(hub.node(2).counters().count("rpc.timeouts"), 0U);
  (void)timeouts;
}

TEST(Handles, DetachedHubMakesHandlesInert) {
  const metrics::NodeMetrics nm(nullptr, 0);
  metrics::CounterHandle c = nm.counter("x");
  metrics::HistogramHandle h = nm.histogram("y");
  metrics::GaugeHandle g = nm.gauge("z");
  c.add();
  h.record(1);
  g.set(1.0);  // no crash, no effect
}

}  // namespace
