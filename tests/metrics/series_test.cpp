// SeriesSampler: window bookkeeping, the three source kinds, and the
// pure-observation contract (attaching a sampler never perturbs the
// simulation's event sequence).
#include <gtest/gtest.h>

#include <vector>

#include "metrics/histogram.h"
#include "metrics/series.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace metrics {
namespace {

// Schedules one no-op event per timestamp so the dispatch loop actually
// crosses the window boundaries.
void tick_at(sim::Simulator& s, std::initializer_list<sim::Time> ts) {
  for (sim::Time t : ts) s.at(t, [] {});
}

TEST(Series, RateColumnsArePerWindowDeltas) {
  sim::Simulator s;
  SeriesSampler sampler(s, sim::usec(200));
  long sent = 0;
  sampler.add_rate("sends", [&] { return static_cast<double>(sent); });

  s.at(sim::usec(100), [&] { ++sent; });
  s.at(sim::usec(300), [&] { ++sent; });
  s.at(sim::usec(500), [&] { sent += 2; });
  tick_at(s, {sim::usec(250), sim::usec(450), sim::usec(650)});
  s.run_until(sim::usec(650));
  sampler.finish(sim::usec(650));

  // Windows [0,200), [200,400), [400,600), and the partial [600,650): one
  // send in each of the first two, two in the third, none in the tail.
  ASSERT_EQ(sampler.windows(), 4u);
  ASSERT_EQ(sampler.columns().size(), 1u);
  const std::vector<double> want = {5000.0, 5000.0, 10000.0, 0.0};
  EXPECT_EQ(sampler.columns()[0].name, "sends");
  EXPECT_EQ(sampler.columns()[0].values, want);
}

TEST(Series, GaugeSamplesAtWindowClose) {
  sim::Simulator s;
  SeriesSampler sampler(s, sim::usec(100));
  double depth = 0;
  sampler.add_gauge("queue_depth", [&] { return depth; });

  s.at(sim::usec(50), [&] { depth = 3; });
  s.at(sim::usec(150), [&] { depth = 7; });
  tick_at(s, {sim::usec(120), sim::usec(220)});
  s.run_until(sim::usec(220));
  sampler.finish(sim::usec(220));

  ASSERT_EQ(sampler.windows(), 3u);
  const std::vector<double> want = {3.0, 7.0, 7.0};
  EXPECT_EQ(sampler.columns()[0].values, want);
}

TEST(Series, RateScaleTurnsBusyTimeIntoUtilisation) {
  sim::Simulator s;
  SeriesSampler sampler(s, sim::msec(1));
  double busy_ns = 0;
  sampler.add_rate("util", [&] { return busy_ns; }, 1e-9);

  // 400 us of busy time accrued inside a 1 ms window -> 0.4 utilisation.
  s.at(sim::usec(500), [&] { busy_ns = static_cast<double>(sim::usec(400)); });
  tick_at(s, {sim::msec(1) + 1});
  s.run_until(sim::msec(1) + 1);
  sampler.finish(sim::msec(1) + 1);

  ASSERT_GE(sampler.windows(), 1u);
  EXPECT_DOUBLE_EQ(sampler.columns()[0].values[0], 0.4);
}

TEST(Series, HistogramEmitsWindowedQuantiles) {
  sim::Simulator s;
  SeriesSampler sampler(s, sim::usec(100));
  Histogram h;
  sampler.add_histogram("lat", [&] { return h; });

  s.at(sim::usec(10), [&] {
    for (int i = 0; i < 100; ++i) h.record(sim::usec(50));
  });
  // Second window's new samples are all slower; windowed quantiles must
  // reflect only the delta, not the cumulative distribution.
  s.at(sim::usec(110), [&] {
    for (int i = 0; i < 100; ++i) h.record(sim::usec(900));
  });
  tick_at(s, {sim::usec(150), sim::usec(250)});
  s.run_until(sim::usec(250));
  sampler.finish(sim::usec(250));

  const auto& cols = sampler.columns();
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0].name, "lat.p50");
  EXPECT_EQ(cols[1].name, "lat.p99");
  ASSERT_EQ(sampler.windows(), 3u);
  EXPECT_LT(cols[0].values[0], static_cast<double>(sim::usec(100)));
  EXPECT_GT(cols[0].values[1], static_cast<double>(sim::usec(500)));
  // No new samples in the final partial window.
  EXPECT_EQ(cols[0].values[2], 0.0);
  EXPECT_EQ(cols[1].values[2], 0.0);
}

TEST(Series, SummaryReportsMeanAndMax) {
  sim::Simulator s;
  SeriesSampler sampler(s, sim::usec(100));
  double v = 0;
  sampler.add_gauge("g", [&] { return v; });
  s.at(sim::usec(50), [&] { v = 2; });
  s.at(sim::usec(150), [&] { v = 6; });
  tick_at(s, {sim::usec(120), sim::usec(220)});
  s.run_until(sim::usec(220));
  sampler.finish(sim::usec(220));

  const auto sum = sampler.summary();
  ASSERT_EQ(sum.size(), 2u);
  EXPECT_EQ(sum[0].first, "g.mean");
  EXPECT_DOUBLE_EQ(sum[0].second, (2.0 + 6.0 + 6.0) / 3.0);
  EXPECT_EQ(sum[1].first, "g.max");
  EXPECT_DOUBLE_EQ(sum[1].second, 6.0);
}

TEST(Series, FinishIsIdempotentAndDetachOnDestruction) {
  sim::Simulator s;
  {
    SeriesSampler sampler(s, sim::usec(100));
    double v = 1;
    sampler.add_gauge("g", [&] { return v; });
    tick_at(s, {sim::usec(250)});
    s.run_until(sim::usec(250));
    sampler.finish(sim::usec(250));
    const std::size_t n = sampler.windows();
    sampler.finish(sim::usec(250));
    EXPECT_EQ(sampler.windows(), n);
    EXPECT_EQ(s.step_observer(), &sampler);
  }
  EXPECT_EQ(s.step_observer(), nullptr);
}

TEST(Series, ObservationOnlyNeverSchedules) {
  // Run the same event program with and without a sampler attached; the
  // dispatch order and final clock must be identical.
  auto run = [](bool sampled) {
    sim::Simulator s;
    std::vector<sim::Time> order;
    SeriesSampler* sampler = nullptr;
    SeriesSampler local(s, sim::usec(50));
    if (sampled) {
      sampler = &local;
      double dummy = 0;
      sampler->add_gauge("d", [&] { return dummy; });
    } else {
      s.set_step_observer(nullptr);
    }
    for (int i = 1; i <= 10; ++i) {
      s.at(sim::usec(i * 37), [&order, &s] { order.push_back(s.now()); });
    }
    s.run_until(sim::usec(400));
    return order;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace metrics
