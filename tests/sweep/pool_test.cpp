// Work-stealing pool: every task runs exactly once under stress, the first
// exception cancels the remainder and is rethrown on the caller, and the
// slot-writing discipline yields thread-count-independent results.
#include "sweep/pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace sweep {
namespace {

TEST(Pool, ResolveThreads) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(Pool, RunsEveryTaskExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    constexpr std::size_t kTasks = 500;
    std::vector<std::atomic<int>> runs(kTasks);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i) {
      tasks.push_back([&runs, i] { runs[i].fetch_add(1); });
    }
    PoolOptions options;
    options.threads = threads;
    run_tasks(std::move(tasks), options);
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(runs[i].load(), 1) << "task " << i << " threads " << threads;
    }
  }
}

TEST(Pool, EmptyTaskListIsANoOp) {
  run_tasks({});  // must not hang or crash
}

TEST(Pool, MoreThreadsThanTasks) {
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 3; ++i) tasks.push_back([&ran] { ran.fetch_add(1); });
  PoolOptions options;
  options.threads = 16;
  run_tasks(std::move(tasks), options);
  EXPECT_EQ(ran.load(), 3);
}

TEST(Pool, FirstExceptionPropagatesToCaller) {
  for (unsigned threads : {1u, 4u}) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 20; ++i) tasks.push_back([] {});
    tasks.push_back([] { throw std::runtime_error("trial 20 exploded"); });
    for (int i = 0; i < 20; ++i) tasks.push_back([] {});
    PoolOptions options;
    options.threads = threads;
    try {
      run_tasks(std::move(tasks), options);
      FAIL() << "expected the task's exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "trial 20 exploded");
    }
  }
}

TEST(Pool, FailureCancelsNotYetStartedTasks) {
  // One worker, serial index order: the throw at index 3 must prevent every
  // later task from starting.
  std::atomic<int> started{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&started, i] {
      started.fetch_add(1);
      if (i == 3) throw std::runtime_error("stop");
    });
  }
  PoolOptions options;
  options.threads = 1;
  EXPECT_THROW(run_tasks(std::move(tasks), options), std::runtime_error);
  EXPECT_EQ(started.load(), 4);
}

TEST(Pool, FailureCancelsAcrossWorkers) {
  // Multi-worker: after the failing task, far fewer than all tasks start.
  // Already-running tasks may finish, so allow slack for in-flight work.
  // The failing index sits at the *back* of the last worker's deque (workers
  // pop their own back first), so it runs among the first tasks.
  constexpr std::size_t kTasks = 400;
  constexpr std::size_t kFailing = 399;  // back of worker 3's queue
  std::atomic<int> started{0};
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back([&started, i] {
      started.fetch_add(1);
      if (i == kFailing) throw std::runtime_error("early failure");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  PoolOptions options;
  options.threads = 4;
  EXPECT_THROW(run_tasks(std::move(tasks), options), std::runtime_error);
  EXPECT_LT(static_cast<std::size_t>(started.load()), kTasks);
}

TEST(Pool, ProgressReportsEveryCompletionMonotonically) {
  static constexpr std::size_t kTasks = 64;
  std::mutex mu;
  std::vector<std::size_t> seen;
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < kTasks; ++i) tasks.push_back([] {});
  PoolOptions options;
  options.threads = 4;
  options.progress = [&mu, &seen](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, kTasks);
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(done);
  };
  run_tasks(std::move(tasks), options);
  ASSERT_EQ(seen.size(), kTasks);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i + 1);  // serialised by the pool: strictly 1..N
  }
}

TEST(Pool, SlotResultsAreIdenticalForAnyThreadCount) {
  // The determinism discipline the sweep runner relies on: tasks write only
  // their own slot, so the gathered vector is schedule-independent.
  constexpr std::size_t kTasks = 200;
  auto run_with = [](unsigned threads) {
    std::vector<std::string> slots(kTasks);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < kTasks; ++i) {
      tasks.push_back([&slots, i] {
        slots[i] = "task-" + std::to_string(i * i % 97);
      });
    }
    PoolOptions options;
    options.threads = threads;
    run_tasks(std::move(tasks), options);
    return slots;
  };
  const auto serial = run_with(1);
  EXPECT_EQ(serial, run_with(2));
  EXPECT_EQ(serial, run_with(8));
}

}  // namespace
}  // namespace sweep
