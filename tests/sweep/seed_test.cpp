// Per-trial seed derivation: a trial's seed must be a pure function of
// (base seed, cell assignment, replicate) — invariant under axis order,
// value order, and matrix growth — and distinct trials must get distinct,
// well-mixed seeds.
#include "sweep/seed.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <set>
#include <string>
#include <utility>

namespace sweep {
namespace {

std::uint64_t derive(std::uint64_t base,
                     std::initializer_list<std::pair<const char*, const char*>>
                         binds,
                     std::uint64_t rep) {
  SeedDeriver d(base);
  for (const auto& [axis, value] : binds) d.bind(axis, value);
  return d.seed(rep);
}

TEST(SeedDeriver, IndependentOfBindOrder) {
  const auto a = derive(42, {{"binding", "user"}, {"nodes", "8"}}, 0);
  const auto b = derive(42, {{"nodes", "8"}, {"binding", "user"}}, 0);
  EXPECT_EQ(a, b);
}

TEST(SeedDeriver, SensitiveToEveryComponent) {
  const auto base = derive(42, {{"binding", "user"}, {"nodes", "8"}}, 0);
  EXPECT_NE(base, derive(43, {{"binding", "user"}, {"nodes", "8"}}, 0));
  EXPECT_NE(base, derive(42, {{"binding", "kernel"}, {"nodes", "8"}}, 0));
  EXPECT_NE(base, derive(42, {{"binding", "user"}, {"nodes", "16"}}, 0));
  EXPECT_NE(base, derive(42, {{"binding", "user"}, {"nodes", "8"}}, 1));
}

TEST(SeedDeriver, AxisAndValueBoundariesMatter) {
  // "a=bc" vs "ab=c": the pair is mixed as a pair, not as a concatenation.
  EXPECT_NE(derive(42, {{"a", "bc"}}, 0), derive(42, {{"ab", "c"}}, 0));
  // Swapping which axis holds which value changes the trial.
  EXPECT_NE(derive(42, {{"a", "b"}, {"c", "d"}}, 0),
            derive(42, {{"a", "d"}, {"c", "b"}}, 0));
}

TEST(SeedDeriver, RepZeroIsNotTheBaseSeed) {
  SeedDeriver d(42);
  d.bind("x", "y");
  EXPECT_NE(d.seed(0), 42u);
}

TEST(SeedDeriver, SeedsAreWellDistributed) {
  // 1000 derived seeds from near-identical inputs: all distinct, and no
  // obvious low-bit structure (each of the low 8 bits set roughly half the
  // time).
  std::set<std::uint64_t> seen;
  int bit_counts[8] = {};
  for (int v = 0; v < 100; ++v) {
    for (std::uint64_t rep = 0; rep < 10; ++rep) {
      SeedDeriver d(42);
      d.bind("nodes", std::to_string(v));
      const std::uint64_t s = d.seed(rep);
      seen.insert(s);
      for (int b = 0; b < 8; ++b) bit_counts[b] += (s >> b) & 1;
    }
  }
  EXPECT_EQ(seen.size(), 1000u);
  for (int b = 0; b < 8; ++b) {
    EXPECT_GT(bit_counts[b], 400) << "bit " << b;
    EXPECT_LT(bit_counts[b], 600) << "bit " << b;
  }
}

TEST(SplitMix64, MatchesReferenceVectors) {
  // Reference outputs of the SplitMix64 algorithm for state 0: the first
  // three values of the stream (state += golden gamma, then finalize).
  EXPECT_EQ(splitmix64(0x0000000000000000ULL), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(0x9E3779B97F4A7C15ULL), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64(0x3C6EF372FE94F82AULL), 0x06C45D188009454FULL);
}

}  // namespace
}  // namespace sweep
