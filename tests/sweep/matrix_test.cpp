// Scenario-matrix expansion: shape, cell naming, coordinate layout, and —
// the property the subsystem exists for — seed stability under matrix edits.
#include "sweep/matrix.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "sim/require.h"

namespace sweep {
namespace {

Matrix table_matrix() {
  Matrix m;
  m.axis("binding", {"user", "kernel"});
  m.axis("nodes", {"1", "8"});
  m.seeds(3, 42);
  return m;
}

TEST(Matrix, ExpandsFullCrossProduct) {
  const Matrix m = table_matrix();
  EXPECT_EQ(m.cell_count(), 4u);
  EXPECT_EQ(m.trial_count(), 12u);
  const std::vector<Trial> trials = m.expand();
  ASSERT_EQ(trials.size(), 12u);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(trials[i].index, i);
  }
  // Replicates of a cell are adjacent; first axis is slowest.
  EXPECT_EQ(trials[0].cell, "binding=user/nodes=1");
  EXPECT_EQ(trials[2].cell, "binding=user/nodes=1");
  EXPECT_EQ(trials[3].cell, "binding=user/nodes=8");
  EXPECT_EQ(trials[6].cell, "binding=kernel/nodes=1");
  EXPECT_EQ(trials[11].cell, "binding=kernel/nodes=8");
  EXPECT_EQ(trials[0].rep, 0u);
  EXPECT_EQ(trials[2].rep, 2u);
}

TEST(Matrix, ValueLookupFollowsCoords) {
  const Matrix m = table_matrix();
  const std::vector<Trial> trials = m.expand();
  EXPECT_EQ(m.value(trials[0], "binding"), "user");
  EXPECT_EQ(m.value(trials[11], "binding"), "kernel");
  EXPECT_EQ(m.value(trials[11], "nodes"), "8");
  EXPECT_THROW((void)m.value(trials[0], "no_such_axis"), sim::SimError);
}

TEST(Matrix, SeedsAreDistinctAcrossTrials) {
  const std::vector<Trial> trials = table_matrix().expand();
  std::set<std::uint64_t> seeds;
  for (const Trial& t : trials) seeds.insert(t.seed);
  EXPECT_EQ(seeds.size(), trials.size());
}

// The anti-`seed + i` property: appending a value to an axis must not
// change the seed of any pre-existing trial.
TEST(Matrix, AppendingAxisValueKeepsExistingSeeds) {
  std::map<std::string, std::uint64_t> before;
  for (const Trial& t : table_matrix().expand()) {
    before[t.cell + "#" + std::to_string(t.rep)] = t.seed;
  }

  Matrix grown;
  grown.axis("binding", {"user", "kernel"});
  grown.axis("nodes", {"1", "8", "16", "32"});  // two new values
  grown.seeds(3, 42);
  for (const Trial& t : grown.expand()) {
    const auto it = before.find(t.cell + "#" + std::to_string(t.rep));
    if (it != before.end()) {
      EXPECT_EQ(t.seed, it->second) << t.cell << " rep " << t.rep;
    }
  }
}

// Adding a whole new axis leaves trials of other axes' cells with new cell
// names, but reordering existing axes/values must not move any seed.
TEST(Matrix, ReorderingAxesAndValuesKeepsSeeds) {
  std::map<std::string, std::uint64_t> before;
  for (const Trial& t : table_matrix().expand()) {
    // Key on the unordered cell assignment, not the rendered name.
    before["nodes=" + t.cell.substr(t.cell.find("nodes=") + 6) +
           "|binding=" + (t.cell.find("user") != std::string::npos ? "user"
                                                                   : "kernel") +
           "#" + std::to_string(t.rep)] = t.seed;
  }

  Matrix reordered;
  reordered.axis("nodes", {"8", "1"});          // axis order and value order
  reordered.axis("binding", {"kernel", "user"});  // both flipped
  reordered.seeds(3, 42);
  std::size_t matched = 0;
  for (const Trial& t : reordered.expand()) {
    const std::string nodes = reordered.value(t, "nodes");
    const std::string binding = reordered.value(t, "binding");
    const auto it = before.find("nodes=" + nodes + "|binding=" + binding +
                                "#" + std::to_string(t.rep));
    ASSERT_NE(it, before.end());
    EXPECT_EQ(t.seed, it->second) << t.cell << " rep " << t.rep;
    ++matched;
  }
  EXPECT_EQ(matched, 12u);
}

TEST(Matrix, EmptyAxisAndZeroSeedsAreLoudErrors) {
  Matrix m;
  m.axis("binding", {});
  EXPECT_THROW((void)m.expand(), sim::SimError);

  Matrix z;
  z.axis("binding", {"user"});
  z.seeds(0, 42);
  EXPECT_THROW((void)z.expand(), sim::SimError);
}

TEST(Matrix, NoAxesMeansOneCell) {
  Matrix m;
  m.seeds(4, 7);
  const std::vector<Trial> trials = m.expand();
  ASSERT_EQ(trials.size(), 4u);
  EXPECT_EQ(trials[0].cell, "");
  std::set<std::uint64_t> seeds;
  for (const Trial& t : trials) seeds.insert(t.seed);
  EXPECT_EQ(seeds.size(), 4u);
}

}  // namespace
}  // namespace sweep
