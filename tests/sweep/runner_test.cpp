// End-to-end sweep runner: trials fan out, samples aggregate per cell, and —
// the acceptance criterion — the report JSON is byte-identical for any
// worker-thread count.
#include "sweep/runner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sweep/matrix.h"
#include "sweep/seed.h"

namespace sweep {
namespace {

using metrics::Better;

Matrix small_matrix() {
  Matrix m;
  m.axis("binding", {"user", "kernel"});
  m.axis("nodes", {"1", "8"});
  m.seeds(5, 42);
  return m;
}

// A deterministic stand-in for a simulation: values are pure functions of the
// trial seed, like a seeded Testbed run.
std::vector<Sample> fake_trial(const Trial& t) {
  const double latency = 50.0 + static_cast<double>(splitmix64(t.seed) % 1000);
  const double throughput = 800.0 + static_cast<double>(t.seed % 100);
  return {
      {"latency.us", latency, Better::kLower, "us"},
      {"throughput.kbs", throughput, Better::kHigher, "kb/s"},
  };
}

TEST(Runner, AggregatesEveryCellAndMetric) {
  const SweepReport report = run_sweep(small_matrix(), fake_trial, "unit");
  // 4 cells x 2 metrics.
  EXPECT_EQ(report.cell_metric_count(), 8u);
  const auto entries = report.sorted_entries();
  ASSERT_EQ(entries.size(), 8u);
  for (const auto* e : entries) {
    EXPECT_EQ(e->stats.n, 5u);
    EXPECT_GE(e->stats.min, 50.0);
    EXPECT_LE(e->stats.p50, e->stats.p95);
    EXPECT_LE(e->stats.min, e->stats.mean);
    EXPECT_LE(e->stats.mean, e->stats.max);
  }
  EXPECT_EQ(entries[0]->cell, "binding=kernel/nodes=1");  // name-sorted
  EXPECT_EQ(entries[0]->metric, "latency.us");
  EXPECT_EQ(entries[1]->metric, "throughput.kbs");
}

TEST(Runner, ReportBytesAreThreadCountInvariant) {
  auto run_with = [](unsigned threads) {
    SweepOptions options;
    options.threads = threads;
    return run_sweep(small_matrix(), fake_trial, "unit", options).json();
  };
  const std::string serial = run_with(1);
  EXPECT_EQ(serial, run_with(2));
  EXPECT_EQ(serial, run_with(8));
}

TEST(Runner, TrialExceptionPropagates) {
  const TrialFn failing = [](const Trial& t) -> std::vector<Sample> {
    if (t.index == 7) throw std::runtime_error("simulated trial failure");
    return {{"m", 1.0, Better::kInfo, ""}};
  };
  EXPECT_THROW((void)run_sweep(small_matrix(), failing, "unit"),
               std::runtime_error);
}

TEST(Runner, MetricMissingFromSomeReplicatesAggregatesOverReporters) {
  const TrialFn sparse = [](const Trial& t) -> std::vector<Sample> {
    std::vector<Sample> out = {{"always", 1.0, Better::kInfo, ""}};
    if (t.rep % 2 == 0) out.push_back({"sometimes", 2.0, Better::kInfo, ""});
    return out;
  };
  const SweepReport report = run_sweep(small_matrix(), sparse, "unit");
  for (const auto* e : report.sorted_entries()) {
    if (e->metric == "always") {
      EXPECT_EQ(e->stats.n, 5u);
    } else {
      EXPECT_EQ(e->metric, "sometimes");
      EXPECT_EQ(e->stats.n, 3u);  // reps 0, 2, 4
    }
  }
}

TEST(Runner, ConfigRecordsMatrixShapeNotThreads) {
  SweepOptions options;
  options.threads = 3;
  const std::string json =
      run_sweep(small_matrix(), fake_trial, "unit", options).json();
  EXPECT_NE(json.find("\"schema\": \"amoeba-sweepreport/v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"seeds_per_cell\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"base_seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"axis.binding\""), std::string::npos);
  EXPECT_EQ(json.find("thread"), std::string::npos);
}

TEST(Runner, AggregateTrialsMatchesManualStats) {
  Matrix m;
  m.axis("a", {"x"});
  m.seeds(3, 1);
  const std::vector<Trial> trials = m.expand();
  std::vector<std::vector<Sample>> results = {
      {{"v", 1.0, Better::kLower, "u"}},
      {{"v", 3.0, Better::kLower, "u"}},
      {{"v", 2.0, Better::kLower, "u"}},
  };
  const SweepReport report = aggregate_trials(m, trials, results, "unit");
  const auto entries = report.sorted_entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0]->cell, "a=x");
  EXPECT_DOUBLE_EQ(entries[0]->stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(entries[0]->stats.stddev, 1.0);
  EXPECT_DOUBLE_EQ(entries[0]->stats.p50, 2.0);
  EXPECT_EQ(entries[0]->better, Better::kLower);
  EXPECT_EQ(entries[0]->unit, "u");
}

}  // namespace
}  // namespace sweep
