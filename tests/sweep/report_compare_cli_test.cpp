// End-to-end exit-code contract of the report_compare CLI (bench/
// report_compare.cpp), driven through the real binary: 0 = no regression
// (including CI-overlap noise and --warn-only), 1 = regression, 2 = usage,
// unreadable input, or schema mismatch. The in-process comparison logic is
// covered by compare_sweep_test.cpp; this suite pins the process boundary
// that CI scripts depend on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "../trace/mini_traces.h"
#include "metrics/report.h"
#include "sweep/report.h"
#include "sweep/stats.h"
#include "trace/profile.h"

#ifndef REPORT_COMPARE_BIN
#error "REPORT_COMPARE_BIN must point at the report_compare executable"
#endif

namespace {

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return path;
}

std::string sweep_text(double mean, double ci95) {
  sweep::Stats s;
  s.n = 5;
  s.mean = mean;
  s.min = mean - ci95;
  s.max = mean + ci95;
  s.p50 = mean;
  s.p95 = mean + ci95;
  s.ci95 = ci95;
  sweep::SweepReport r("cli");
  r.add("binding=user/nodes=8", "elapsed.sec", s, metrics::Better::kLower, "s");
  return r.json();
}

std::string run_text(double value) {
  metrics::RunReport r("cli");
  r.add_metric("elapsed.sec", value, metrics::Better::kLower, "s");
  return r.json();
}

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  // ctest runs each test case as its own process in parallel; the capture
  // file must be unique per test (and per process) to avoid collisions.
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string out_path = ::testing::TempDir() + "report_compare_out_" +
                               info->name() + "_" +
                               std::to_string(::getpid()) + ".txt";
  const std::string cmd = std::string(REPORT_COMPARE_BIN) + " " + args + " > " +
                          out_path + " 2>&1";
  const int status = std::system(cmd.c_str());
  CliResult r;
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(out_path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  r.output = ss.str();
  return r;
}

TEST(ReportCompareCli, CleanComparisonExitsZero) {
  const std::string a = write_temp("rc_same_old.json", sweep_text(100.0, 2.0));
  const std::string b = write_temp("rc_same_new.json", sweep_text(100.5, 2.0));
  const CliResult r = run_cli(a + " " + b);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("RESULT: ok"), std::string::npos) << r.output;
}

TEST(ReportCompareCli, DisjointRegressionExitsOne) {
  const std::string a = write_temp("rc_reg_old.json", sweep_text(100.0, 2.0));
  const std::string b = write_temp("rc_reg_new.json", sweep_text(120.0, 3.0));
  const CliResult r = run_cli(a + " " + b);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("REGRESSED"), std::string::npos) << r.output;
}

TEST(ReportCompareCli, CiOverlapNeverGatesTheExitCode) {
  // The same +20% move, but the 95% confidence intervals share ground: the
  // CLI must report it as noise and exit 0 so flaky cells cannot fail CI.
  const std::string a = write_temp("rc_noise_old.json", sweep_text(100.0, 15.0));
  const std::string b = write_temp("rc_noise_new.json", sweep_text(120.0, 15.0));
  const CliResult r = run_cli(a + " " + b);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("ci-overlap"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("REGRESSED"), std::string::npos) << r.output;
}

TEST(ReportCompareCli, WarnOnlyExitsZeroOnARealRegression) {
  const std::string a = write_temp("rc_warn_old.json", sweep_text(100.0, 2.0));
  const std::string b = write_temp("rc_warn_new.json", sweep_text(120.0, 3.0));
  const CliResult r = run_cli("--warn-only " + a + " " + b);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // The regression is still reported loudly, only the gate is disarmed.
  EXPECT_NE(r.output.find("REGRESSED"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("(warn-only)"), std::string::npos) << r.output;
}

std::string gated_rows_text(double simrate, double host_sec) {
  // The CI sim_engine shape in miniature: one deterministic headline row
  // (higher-better) next to a host-time row (lower-better, machine-noisy).
  metrics::RunReport r("cli");
  r.add_metric("simrate.rpc_kernel", simrate, metrics::Better::kHigher,
               "sim_s/s");
  r.add_metric("host.elapsed.sec", host_sec, metrics::Better::kLower, "s");
  return r.json();
}

TEST(ReportCompareCli, GatePatternArmsOnlyMatchingRows) {
  const std::string a =
      write_temp("rc_gate_old.json", gated_rows_text(100.0, 1.0));
  // Only the ungated host-time row regresses: reported, but exit 0.
  const std::string b =
      write_temp("rc_gate_host.json", gated_rows_text(100.0, 2.0));
  const CliResult soft = run_cli("--gate=simrate. " + a + " " + b);
  EXPECT_EQ(soft.exit_code, 0) << soft.output;
  EXPECT_NE(soft.output.find("REGRESSED"), std::string::npos) << soft.output;
  EXPECT_NE(soft.output.find("no --gate row regressed"), std::string::npos)
      << soft.output;
  // The gated headline row regresses: exit 1.
  const std::string c =
      write_temp("rc_gate_sim.json", gated_rows_text(50.0, 1.0));
  const CliResult hard = run_cli("--gate=simrate. " + a + " " + c);
  EXPECT_EQ(hard.exit_code, 1) << hard.output;
}

TEST(ReportCompareCli, GatePatternsAreRepeatable) {
  const std::string a =
      write_temp("rc_gates_old.json", gated_rows_text(100.0, 1.0));
  const std::string b =
      write_temp("rc_gates_new.json", gated_rows_text(100.0, 2.0));
  // The second pattern matches the regressed host row, so the run fails.
  const CliResult r =
      run_cli("--gate=simrate. --gate=host.elapsed " + a + " " + b);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(run_cli("--gate= " + a + " " + b).exit_code, 2);
}

TEST(ReportCompareCli, MixedSchemasExitTwo) {
  const std::string a = write_temp("rc_mix_old.json", run_text(100.0));
  const std::string b = write_temp("rc_mix_new.json", sweep_text(100.0, 2.0));
  const CliResult r = run_cli(a + " " + b);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("schema mismatch"), std::string::npos) << r.output;
}

TEST(ReportCompareCli, UnreadableInputExitsTwo) {
  const std::string a = write_temp("rc_lone.json", sweep_text(100.0, 2.0));
  const CliResult r = run_cli(a + " " + ::testing::TempDir() + "rc_absent.json");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(ReportCompareCli, UsageErrorsExitTwo) {
  EXPECT_EQ(run_cli("").exit_code, 2);
  const std::string a = write_temp("rc_usage.json", sweep_text(100.0, 2.0));
  EXPECT_EQ(run_cli("--no-such-flag " + a + " " + a).exit_code, 2);
  EXPECT_EQ(run_cli("--threshold=banana " + a + " " + a).exit_code, 2);
}

std::string profile_text(bool slow) {
  // The same hand-authored RPC trace, with the server's protocol-processing
  // charge doubled in the "slow" variant: a 2x on-path regression in exactly
  // one mechanism.
  std::vector<trace::Event> ev = trace_test::linear_rpc();
  if (slow) {
    for (trace::Event& e : ev) {
      if (e.kind == trace::EventKind::kCharge &&
          e.a == static_cast<std::uint64_t>(
                     sim::Mechanism::kProtocolProcessing)) {
        e.b *= 2;
      }
    }
  }
  return trace::profile_json(trace::profile_trace(ev), "cli");
}

TEST(ReportCompareCli, ProfileRegressionIsAdvisoryByDefault) {
  const std::string a = write_temp("rc_prof_old.json", profile_text(false));
  const std::string b = write_temp("rc_prof_new.json", profile_text(true));
  const CliResult r = run_cli(a + " " + b);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("REGRESSED"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("(profile: advisory)"), std::string::npos)
      << r.output;
}

TEST(ReportCompareCli, GateProfilesArmsTheExitCode) {
  const std::string a = write_temp("rc_gprof_old.json", profile_text(false));
  const std::string b = write_temp("rc_gprof_new.json", profile_text(true));
  const CliResult r = run_cli("--gate-profiles " + a + " " + b);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("REGRESSED"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("(profile: advisory)"), std::string::npos)
      << r.output;
}

TEST(ReportCompareCli, IdenticalProfilesExitZero) {
  const std::string a = write_temp("rc_eqprof_old.json", profile_text(false));
  const std::string b = write_temp("rc_eqprof_new.json", profile_text(false));
  const CliResult r = run_cli("--gate-profiles " + a + " " + b);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("RESULT: ok"), std::string::npos) << r.output;
}

TEST(ReportCompareCli, ProfileAgainstRunReportExitsTwo) {
  const std::string a = write_temp("rc_pmix_old.json", profile_text(false));
  const std::string b = write_temp("rc_pmix_new.json", run_text(100.0));
  const CliResult r = run_cli(a + " " + b);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("schema mismatch"), std::string::npos) << r.output;
}

TEST(ReportCompareCli, SeriesColumnsSurfaceAsInfoLines) {
  // Run reports carrying a `series` section expose per-column means as
  // informational rows: visible under --show-info, never gating the exit
  // code no matter how far they move.
  const auto text = [](double mean) {
    metrics::RunReport r("cli");
    r.add_metric("elapsed.sec", 1.0, metrics::Better::kLower, "s");
    r.add_series("wire0", sim::usec(500),
                 {{"util", {mean, mean + 0.2}},
                  {"queue_depth", {1.0, 3.0}}});
    return r.json();
  };
  const std::string a = write_temp("rc_ser_old.json", text(0.2));
  const std::string b = write_temp("rc_ser_new.json", text(0.6));
  const CliResult r = run_cli("--show-info " + a + " " + b);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("series.wire0.util.mean"), std::string::npos)
      << r.output;
  // Without the flag the telemetry stays out of the table and out of the
  // gate.
  const CliResult quiet = run_cli(a + " " + b);
  EXPECT_EQ(quiet.exit_code, 0) << quiet.output;
  EXPECT_EQ(quiet.output.find("series.wire0"), std::string::npos)
      << quiet.output;
}

TEST(ReportCompareCli, ThresholdWidensTheGate) {
  // +20% regresses at the default threshold but passes at --threshold=25.
  const std::string a = write_temp("rc_thr_old.json", sweep_text(100.0, 2.0));
  const std::string b = write_temp("rc_thr_new.json", sweep_text(120.0, 3.0));
  EXPECT_EQ(run_cli(a + " " + b).exit_code, 1);
  EXPECT_EQ(run_cli("--threshold=25 " + a + " " + b).exit_code, 0);
}

}  // namespace
