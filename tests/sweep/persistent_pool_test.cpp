#include "sweep/persistent_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sweep {
namespace {

TEST(PersistentPool, RunExecutesEveryTaskExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u}) {
    PersistentPool pool(threads);
    std::vector<std::atomic<int>> hits(23);
    pool.run(hits.size(), [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << threads << " threads";
  }
}

TEST(PersistentPool, ZeroThreadsClampsToOne) {
  PersistentPool pool(0);
  EXPECT_EQ(pool.threads(), 1u);
}

TEST(PersistentPool, InlinePathRunsInIndexOrder) {
  // threads == 1 is the deterministic reference path: tasks run on the
  // caller in index order, exactly like a plain loop.
  PersistentPool pool(1);
  std::vector<std::size_t> order;
  pool.run(8, [&order](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> want(8);
  std::iota(want.begin(), want.end(), 0u);
  EXPECT_EQ(order, want);
}

TEST(PersistentPool, BarrierPublishesWorkerWrites) {
  // Plain (non-atomic) per-slot writes, read by the caller after barrier():
  // the round join is the happens-before edge the partitioned engine relies
  // on when it hands partition state between workers across windows.
  PersistentPool pool(4);
  std::vector<std::size_t> slots(64, 0);
  pool.submit(slots.size(), [&slots](std::size_t i) { slots[i] = i * i; });
  pool.barrier();
  for (std::size_t i = 0; i < slots.size(); ++i) EXPECT_EQ(slots[i], i * i);
}

TEST(PersistentPool, RoundsReuseTheSameWorkers) {
  // Thousands of short rounds — the lookahead-window shape. Every round must
  // see all its tasks complete before the next is submitted.
  PersistentPool pool(3);
  std::vector<int> counts(5, 0);
  for (int round = 0; round < 2000; ++round) {
    pool.run(counts.size(), [&counts](std::size_t i) { ++counts[i]; });
  }
  for (const int c : counts) EXPECT_EQ(c, 2000);
}

TEST(PersistentPool, BarrierIsANoOpWithoutARound) {
  PersistentPool pool(2);
  pool.barrier();  // nothing submitted: must not hang or throw
  pool.run(3, [](std::size_t) {});
  pool.barrier();  // round already joined by run()
}

TEST(PersistentPool, FirstExceptionPropagatesAndCancelsTheRest) {
  for (const unsigned threads : {1u, 4u}) {
    PersistentPool pool(threads);
    std::atomic<int> executed{0};
    EXPECT_THROW(
        pool.run(100,
                 [&executed](std::size_t i) {
                   if (i == 3) throw std::runtime_error("boom");
                   executed.fetch_add(1, std::memory_order_relaxed);
                 }),
        std::runtime_error);
    // Unstarted tasks were cancelled: strictly fewer than the full round ran.
    EXPECT_LT(executed.load(), 99);
    // The pool survives a failed round and runs the next one normally.
    std::atomic<int> after{0};
    pool.run(10, [&after](std::size_t) {
      after.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(after.load(), 10);
  }
}

TEST(PersistentPool, InlineExceptionDropsTheRemainingTasksInOrder) {
  PersistentPool pool(1);
  std::vector<std::size_t> ran;
  EXPECT_THROW(pool.run(6,
                        [&ran](std::size_t i) {
                          if (i == 2) throw std::runtime_error("boom");
                          ran.push_back(i);
                        }),
               std::runtime_error);
  // Index order up to the failure; everything after is cancelled.
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1}));
}

}  // namespace
}  // namespace sweep
