// report_compare on amoeba-sweepreport/v1: per-cell means gate with
// CI-overlap noise suppression, schema mixing is a loud error, and the
// existing exit semantics (regressed flag, only_old/only_new) carry over.
#include "metrics/compare.h"

#include <gtest/gtest.h>

#include <string>

#include "metrics/report.h"
#include "sweep/report.h"
#include "sweep/stats.h"

namespace sweep {
namespace {

using metrics::Better;
using metrics::CompareOptions;
using metrics::CompareResult;
using metrics::MetricDelta;
using metrics::compare_report_texts;

Stats make_stats(double mean, double ci95, std::size_t n = 5) {
  Stats s;
  s.n = n;
  s.mean = mean;
  s.min = mean - ci95;
  s.max = mean + ci95;
  s.p50 = mean;
  s.p95 = mean + ci95;
  s.ci95 = ci95;
  return s;
}

std::string sweep_text(double mean, double ci95,
                       Better better = Better::kLower) {
  SweepReport r("unit");
  r.add("binding=user/nodes=8", "elapsed.sec", make_stats(mean, ci95), better,
        "s");
  return r.json();
}

const MetricDelta* find_delta(const CompareResult& result,
                              const std::string& name) {
  for (const MetricDelta& d : result.deltas) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

constexpr const char* kMean = "binding=user/nodes=8/elapsed.sec.mean";

TEST(CompareSweep, DisjointIntervalsGateARegression) {
  // 100 +/- 2 -> 120 +/- 3: +20% on a lower-is-better mean, CIs disjoint.
  const CompareResult result =
      compare_report_texts(sweep_text(100.0, 2.0), sweep_text(120.0, 3.0));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.regressed);
  const MetricDelta* d = find_delta(result, kMean);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->regression);
  EXPECT_FALSE(d->noise_gated);
  EXPECT_DOUBLE_EQ(d->old_ci, 2.0);
  EXPECT_DOUBLE_EQ(d->new_ci, 3.0);
  EXPECT_NEAR(d->delta_pct, 20.0, 1e-9);
}

TEST(CompareSweep, OverlappingIntervalsSuppressTheSameMove) {
  // Same +20% move, but the intervals share ground: noise, not a regression.
  const CompareResult result =
      compare_report_texts(sweep_text(100.0, 15.0), sweep_text(120.0, 15.0));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_FALSE(result.regressed);
  const MetricDelta* d = find_delta(result, kMean);
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->regression);
  EXPECT_FALSE(d->improvement);
  EXPECT_TRUE(d->noise_gated);
}

TEST(CompareSweep, OverlapAlsoGatesImprovements) {
  const CompareResult result =
      compare_report_texts(sweep_text(120.0, 15.0), sweep_text(100.0, 15.0));
  ASSERT_TRUE(result.ok()) << result.error;
  const MetricDelta* d = find_delta(result, kMean);
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->improvement);
  EXPECT_TRUE(d->noise_gated);
}

TEST(CompareSweep, DisjointImprovementReportsAsImprovement) {
  const CompareResult result =
      compare_report_texts(sweep_text(120.0, 2.0), sweep_text(100.0, 2.0));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_FALSE(result.regressed);
  const MetricDelta* d = find_delta(result, kMean);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->improvement);
  EXPECT_FALSE(d->noise_gated);
}

TEST(CompareSweep, ZeroCiDegradesToPointComparison) {
  // Single-seed cells have ci95 = 0; a real move must still gate.
  const CompareResult result =
      compare_report_texts(sweep_text(100.0, 0.0), sweep_text(120.0, 0.0));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.regressed);
}

TEST(CompareSweep, SmallMoveInsideThresholdNeverFlags) {
  const CompareResult result =
      compare_report_texts(sweep_text(100.0, 0.1), sweep_text(102.0, 0.1));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_FALSE(result.regressed);
  const MetricDelta* d = find_delta(result, kMean);
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->regression);
  EXPECT_FALSE(d->noise_gated);  // never moved, so nothing was gated
}

TEST(CompareSweep, HigherIsBetterDirectionRespected) {
  const CompareResult drop = compare_report_texts(
      sweep_text(1000.0, 1.0, Better::kHigher),
      sweep_text(800.0, 1.0, Better::kHigher));
  ASSERT_TRUE(drop.ok()) << drop.error;
  EXPECT_TRUE(drop.regressed);
}

TEST(CompareSweep, CellsAppearingAndDisappearingAreListed) {
  SweepReport old_r("unit");
  old_r.add("binding=user", "elapsed.sec", make_stats(1.0, 0.1),
            Better::kLower, "s");
  old_r.add("binding=kernel", "elapsed.sec", make_stats(1.0, 0.1),
            Better::kLower, "s");
  SweepReport new_r("unit");
  new_r.add("binding=user", "elapsed.sec", make_stats(1.0, 0.1),
            Better::kLower, "s");
  new_r.add("binding=virtual", "elapsed.sec", make_stats(1.0, 0.1),
            Better::kLower, "s");
  const CompareResult result =
      compare_report_texts(old_r.json(), new_r.json());
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.only_old.size(), 1u);
  EXPECT_EQ(result.only_old[0], "binding=kernel/elapsed.sec.mean");
  ASSERT_EQ(result.only_new.size(), 1u);
  EXPECT_EQ(result.only_new[0], "binding=virtual/elapsed.sec.mean");
}

TEST(CompareSweep, MixedSchemasAreAComparisonError) {
  metrics::RunReport run("unit");
  run.add_metric("elapsed.sec", 1.0, Better::kLower, "s");
  const CompareResult result =
      compare_report_texts(run.json(), sweep_text(1.0, 0.1));
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("schema mismatch"), std::string::npos)
      << result.error;
}

TEST(CompareSweep, RunReportsStillCompareAsBefore) {
  metrics::RunReport old_r("unit");
  old_r.add_metric("latency.us", 100.0, Better::kLower, "us");
  metrics::RunReport new_r("unit");
  new_r.add_metric("latency.us", 120.0, Better::kLower, "us");
  const CompareResult result =
      compare_report_texts(old_r.json(), new_r.json());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.regressed);  // run reports carry no CI; no gating
}

}  // namespace
}  // namespace sweep
