// Statistical aggregation: known-answer checks for mean/stddev/percentiles,
// the Student-t critical values behind the 95% CI, and the order-independence
// that makes sweep reports byte-stable.
#include "sweep/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace sweep {
namespace {

TEST(Stats, EmptyInputIsAllZero) {
  const Stats s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.ci95, 0.0);
}

TEST(Stats, SingleSample) {
  const Stats s = summarize({7.5});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_EQ(s.stddev, 0.0);  // n-1 denominator undefined; reported as 0
  EXPECT_EQ(s.ci95, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
  EXPECT_DOUBLE_EQ(s.p50, 7.5);
  EXPECT_DOUBLE_EQ(s.p95, 7.5);
}

TEST(Stats, KnownSampleSet) {
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population stddev 2, sample stddev
  // sqrt(32/7).
  const Stats s = summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.1380899352993947, 1e-12);  // sqrt(32/7)
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  // Nearest-rank: p50 -> ceil(0.5*8)=4th of sorted -> 4; p95 -> ceil(7.6)=8th
  // -> 9.
  EXPECT_DOUBLE_EQ(s.p50, 4.0);
  EXPECT_DOUBLE_EQ(s.p95, 9.0);
  // ci95 = t(7) * stddev / sqrt(8), t(7) = 2.365.
  EXPECT_NEAR(s.ci95, t_critical_95(7) * s.stddev / std::sqrt(8.0), 1e-12);
}

TEST(Stats, TCriticalValues) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(7), 2.365, 1e-3);
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_95(1000), 1.96, 1e-2);
  // Monotone non-increasing in df.
  double prev = t_critical_95(1);
  for (std::size_t df = 2; df <= 200; ++df) {
    const double t = t_critical_95(df);
    EXPECT_LE(t, prev) << "df " << df;
    prev = t;
  }
}

TEST(Stats, OrderIndependentToTheByte) {
  std::vector<double> samples;
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> dist(0.0, 1e6);
  for (int i = 0; i < 257; ++i) samples.push_back(dist(rng));

  const Stats a = summarize(samples);
  std::vector<double> shuffled = samples;
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  const Stats b = summarize(shuffled);
  // Bitwise equality, not EXPECT_NEAR: summation happens over the sorted
  // samples, so permuting the input must not change a single bit.
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.ci95, b.ci95);
}

TEST(Stats, IntervalsOverlap) {
  EXPECT_TRUE(intervals_overlap(0.0, 2.0, 1.0, 3.0));
  EXPECT_TRUE(intervals_overlap(1.0, 3.0, 0.0, 2.0));
  EXPECT_TRUE(intervals_overlap(0.0, 1.0, 1.0, 2.0));  // touching counts
  EXPECT_FALSE(intervals_overlap(0.0, 1.0, 1.5, 2.0));
  EXPECT_TRUE(intervals_overlap(1.0, 1.0, 1.0, 1.0));  // degenerate points
  EXPECT_FALSE(intervals_overlap(1.0, 1.0, 2.0, 2.0));
}

}  // namespace
}  // namespace sweep
