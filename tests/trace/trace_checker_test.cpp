// The seed-sweep fault-injection suite: for many seeds, both protocol
// bindings, and each fault model, the protocols must still deliver their
// guarantees — and the TraceChecker must be able to prove it from the event
// trace alone.
#include "trace/checker.h"

#include <gtest/gtest.h>

#include <string>

#include "fault_workload.h"

namespace trace {
namespace {

using core::Binding;
using trace_test::Fault;
using trace_test::WorkloadResult;
using trace_test::run_fault_workload;

constexpr std::uint64_t kSeeds = 50;

std::string violations_to_string(const std::vector<std::string>& v) {
  std::string out;
  for (const std::string& s : v) {
    out += "  ";
    out += s;
    out += '\n';
  }
  return out;
}

void sweep(Binding binding, Fault fault) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    WorkloadResult r = run_fault_workload(binding, seed, fault);

    // The workload itself succeeded despite the faults.
    ASSERT_EQ(r.rpc_ok, r.rpc_total);
    for (std::size_t n = 0; n < r.orders.size(); ++n) {
      ASSERT_EQ(r.orders[n].size(),
                static_cast<std::size_t>(r.group_sends))
          << "node " << n << " missed group deliveries";
      ASSERT_EQ(r.orders[n], r.orders[0]) << "node " << n << " order differs";
    }

    // The trace proves it: exactly-once, total order, frame lineage, loss
    // recovery, and ledger consistency all hold.
    TraceChecker checker(r.bed->tracer()->events());
    const auto violations = checker.check_all(&r.ledger);
    ASSERT_TRUE(violations.empty()) << violations_to_string(violations);
  }
}

TEST(TraceCheckerSweep, KernelBindingUnderLoss) {
  sweep(Binding::kKernelSpace, Fault::kLoss);
}

TEST(TraceCheckerSweep, UserBindingUnderLoss) {
  sweep(Binding::kUserSpace, Fault::kLoss);
}

TEST(TraceCheckerSweep, KernelBindingUnderDuplication) {
  sweep(Binding::kKernelSpace, Fault::kDuplication);
}

TEST(TraceCheckerSweep, UserBindingUnderDuplication) {
  sweep(Binding::kUserSpace, Fault::kDuplication);
}

TEST(TraceCheckerSweep, KernelBindingUnderReorder) {
  sweep(Binding::kKernelSpace, Fault::kReorder);
}

TEST(TraceCheckerSweep, UserBindingUnderReorder) {
  sweep(Binding::kUserSpace, Fault::kReorder);
}

// The checker is not vacuous: it flags a trace whose invariants are broken.
TEST(TraceChecker, DetectsForgedDoubleExecution) {
  WorkloadResult r =
      run_fault_workload(Binding::kKernelSpace, 7, Fault::kNone);
  std::vector<Event> forged = r.bed->tracer()->events();
  // Duplicate the first server execution event: "exactly-once" must fail.
  for (const Event& e : forged) {
    if (e.kind == EventKind::kRpcExec) {
      forged.push_back(e);
      break;
    }
  }
  TraceChecker checker(forged);
  EXPECT_FALSE(checker.check_exactly_once_rpc().empty());
}

TEST(TraceChecker, DetectsForgedOrderGap) {
  WorkloadResult r =
      run_fault_workload(Binding::kKernelSpace, 7, Fault::kNone);
  std::vector<Event> forged = r.bed->tracer()->events();
  // Remove one delivery: the per-member gapless order must fail.
  for (auto it = forged.begin(); it != forged.end(); ++it) {
    if (it->kind == EventKind::kGroupDeliver) {
      forged.erase(it);
      break;
    }
  }
  TraceChecker checker(forged);
  EXPECT_FALSE(checker.check_total_order().empty());
}

TEST(TraceChecker, DetectsUnrecoveredDataLoss) {
  WorkloadResult r =
      run_fault_workload(Binding::kKernelSpace, 7, Fault::kNone);
  std::vector<Event> forged = r.bed->tracer()->events();
  std::erase_if(forged,
                [](const Event& e) { return e.kind == EventKind::kRetransmit; });
  // A data-class frame drop with no retransmission anywhere in the trace.
  Event drop;
  drop.t = forged.empty() ? 0 : forged.back().t;
  drop.node = kNoNode;
  drop.kind = EventKind::kFrameDrop;
  drop.d = (kClassData << 1) | 0;
  forged.push_back(drop);
  TraceChecker checker(forged);
  EXPECT_FALSE(checker.check_loss_recovery().empty());
}

}  // namespace
}  // namespace trace
