// The seed-sweep fault-injection suite: for many seeds, both protocol
// bindings, and each fault model, the protocols must still deliver their
// guarantees — and the TraceChecker must be able to prove it from the event
// trace alone.
//
// The 50 seeds of each sweep fan out over the sweep::run_tasks work-stealing
// pool (one isolated single-threaded simulation per seed), so the suite's
// wall-clock scales down with host cores. Each trial reduces to a verdict
// digest on its worker; all asserting happens on the main thread, and a
// dedicated test proves the pooled digests are byte-identical to serial
// execution of the same trials.
#include "trace/checker.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "sweep/pool.h"
#include "fault_workload.h"

namespace trace {
namespace {

using core::Binding;
using trace_test::Fault;
using trace_test::WorkloadResult;
using trace_test::run_fault_workload;

constexpr std::uint64_t kSeeds = 50;

/// Runs one (binding, seed, fault) trial and reduces it to a verdict digest:
/// workload outcome, per-node delivery orders, and every checker violation,
/// all in one deterministic string. A passing trial's digest ends in
/// "violations=0"; any divergence (wrong order, missed delivery, invariant
/// violation) lands in the bytes.
std::string trial_digest(Binding binding, std::uint64_t seed, Fault fault) {
  WorkloadResult r = run_fault_workload(binding, seed, fault);
  std::string d = "seed=" + std::to_string(seed);
  d += " rpc=" + std::to_string(r.rpc_ok) + "/" + std::to_string(r.rpc_total);
  d += " group_sends=" + std::to_string(r.group_sends);
  for (std::size_t n = 0; n < r.orders.size(); ++n) {
    d += " node" + std::to_string(n) + "=[";
    for (std::size_t i = 0; i < r.orders[n].size(); ++i) {
      if (i != 0) d += ',';
      d += std::to_string(r.orders[n][i]);
    }
    d += ']';
  }
  TraceChecker checker(r.bed->tracer()->events());
  const auto violations = checker.check_all(&r.ledger);
  for (const std::string& v : violations) d += " VIOLATION: " + v;
  d += " violations=" + std::to_string(violations.size());
  return d;
}

/// Does the digest describe a fully successful trial? (All RPCs ok, every
/// node delivered every group send in node 0's order, no violations.)
void expect_trial_ok(const std::string& digest) {
  ASSERT_NE(digest.find(" rpc=16/16 "), std::string::npos) << digest;
  ASSERT_NE(digest.find(" violations=0"), std::string::npos) << digest;
  // All four nodes must report the same order as node 0, and node 0 must
  // have delivered every group send.
  const auto node0 = digest.find("node0=[");
  ASSERT_NE(node0, std::string::npos) << digest;
  const auto end0 = digest.find(']', node0);
  const std::string order0 = digest.substr(node0 + 7, end0 - (node0 + 7));
  const auto gs = digest.find(" group_sends=");
  ASSERT_NE(gs, std::string::npos) << digest;
  const auto sends = std::strtoull(digest.c_str() + gs + 13, nullptr, 10);
  std::size_t delivered = order0.empty() ? 0 : 1;
  for (const char c : order0) delivered += c == ',' ? 1 : 0;
  ASSERT_EQ(delivered, sends) << "missed group deliveries: " << digest;
  for (int n = 1; n < 4; ++n) {
    const std::string want = "node" + std::to_string(n) + "=[" + order0 + "]";
    ASSERT_NE(digest.find(want), std::string::npos)
        << "node " << n << " order differs: " << digest;
  }
}

/// Fan the 50 seeds out across the pool, then assert on the main thread.
void sweep(Binding binding, Fault fault) {
  std::vector<std::string> digests(kSeeds);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kSeeds);
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    tasks.push_back([binding, seed, fault, &digests] {
      digests[seed - 1] = trial_digest(binding, seed, fault);
    });
  }
  sweep::run_tasks(std::move(tasks));
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_trial_ok(digests[seed - 1]);
  }
}

TEST(TraceCheckerSweep, KernelBindingUnderLoss) {
  sweep(Binding::kKernelSpace, Fault::kLoss);
}

TEST(TraceCheckerSweep, UserBindingUnderLoss) {
  sweep(Binding::kUserSpace, Fault::kLoss);
}

TEST(TraceCheckerSweep, KernelBindingUnderDuplication) {
  sweep(Binding::kKernelSpace, Fault::kDuplication);
}

TEST(TraceCheckerSweep, UserBindingUnderDuplication) {
  sweep(Binding::kUserSpace, Fault::kDuplication);
}

TEST(TraceCheckerSweep, KernelBindingUnderReorder) {
  sweep(Binding::kKernelSpace, Fault::kReorder);
}

TEST(TraceCheckerSweep, UserBindingUnderReorder) {
  sweep(Binding::kUserSpace, Fault::kReorder);
}

// Pooled execution must not change any verdict: rerun a slice of the sweep
// serially on this thread and compare byte-for-byte against a 4-worker pool.
// (Each trial is an isolated simulation, so this holds by construction; this
// test is the committed proof.)
TEST(TraceCheckerSweep, PooledVerdictsMatchSerialByteForByte) {
  constexpr std::uint64_t kSlice = 10;
  struct Spec {
    Binding binding;
    Fault fault;
  };
  const std::vector<Spec> specs = {
      {Binding::kKernelSpace, Fault::kLoss},
      {Binding::kUserSpace, Fault::kDuplication},
  };

  std::vector<std::string> serial;
  for (const Spec& s : specs) {
    for (std::uint64_t seed = 1; seed <= kSlice; ++seed) {
      serial.push_back(trial_digest(s.binding, seed, s.fault));
    }
  }

  std::vector<std::string> pooled(serial.size());
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::uint64_t seed = 1; seed <= kSlice; ++seed) {
      const std::size_t slot = i * kSlice + (seed - 1);
      const Spec s = specs[i];
      tasks.push_back([s, seed, slot, &pooled] {
        pooled[slot] = trial_digest(s.binding, seed, s.fault);
      });
    }
  }
  sweep::PoolOptions options;
  options.threads = 4;
  sweep::run_tasks(std::move(tasks), options);

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << "trial " << i;
  }
}

// The checker is not vacuous: it flags a trace whose invariants are broken.
TEST(TraceChecker, DetectsForgedDoubleExecution) {
  WorkloadResult r =
      run_fault_workload(Binding::kKernelSpace, 7, Fault::kNone);
  std::vector<Event> forged = r.bed->tracer()->events();
  // Duplicate the first server execution event: "exactly-once" must fail.
  for (const Event& e : forged) {
    if (e.kind == EventKind::kRpcExec) {
      forged.push_back(e);
      break;
    }
  }
  TraceChecker checker(forged);
  EXPECT_FALSE(checker.check_exactly_once_rpc().empty());
}

TEST(TraceChecker, DetectsForgedOrderGap) {
  WorkloadResult r =
      run_fault_workload(Binding::kKernelSpace, 7, Fault::kNone);
  std::vector<Event> forged = r.bed->tracer()->events();
  // Remove one delivery: the per-member gapless order must fail.
  for (auto it = forged.begin(); it != forged.end(); ++it) {
    if (it->kind == EventKind::kGroupDeliver) {
      forged.erase(it);
      break;
    }
  }
  TraceChecker checker(forged);
  EXPECT_FALSE(checker.check_total_order().empty());
}

TEST(TraceChecker, DetectsUnrecoveredDataLoss) {
  WorkloadResult r =
      run_fault_workload(Binding::kKernelSpace, 7, Fault::kNone);
  std::vector<Event> forged = r.bed->tracer()->events();
  std::erase_if(forged,
                [](const Event& e) { return e.kind == EventKind::kRetransmit; });
  // A data-class frame drop with no retransmission anywhere in the trace.
  Event drop;
  drop.t = forged.empty() ? 0 : forged.back().t;
  drop.node = kNoNode;
  drop.kind = EventKind::kFrameDrop;
  drop.d = (kClassData << 1) | 0;
  forged.push_back(drop);
  TraceChecker checker(forged);
  EXPECT_FALSE(checker.check_loss_recovery().empty());
}

}  // namespace
}  // namespace trace
