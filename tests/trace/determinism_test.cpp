// Determinism regression: the simulation is a pure function of its seed, and
// the event trace is a complete enough observation to prove it — two runs
// with the same seed produce byte-identical traces even under randomized
// frame loss, and different seeds actually diverge.
#include <gtest/gtest.h>

#include "fault_workload.h"
#include "trace/tracer.h"

namespace trace {
namespace {

using core::Binding;
using trace_test::Fault;
using trace_test::WorkloadResult;
using trace_test::run_fault_workload;

TEST(Determinism, SameSeedSameTrace) {
  for (const Binding binding : {Binding::kKernelSpace, Binding::kUserSpace}) {
    WorkloadResult a = run_fault_workload(binding, 99, Fault::kLoss);
    WorkloadResult b = run_fault_workload(binding, 99, Fault::kLoss);
    ASSERT_FALSE(a.bed->tracer()->events().empty());
    // Event-by-event equality: same times, nodes, kinds, and arguments.
    EXPECT_EQ(a.bed->tracer()->events(), b.bed->tracer()->events());
    EXPECT_EQ(a.bed->sim().now(), b.bed->sim().now());
  }
}

TEST(Determinism, DifferentSeedDifferentTrace) {
  // Under loss injection the seed drives which frames drop, so distinct
  // seeds must produce observably different histories.
  WorkloadResult a =
      run_fault_workload(Binding::kKernelSpace, 1, Fault::kLoss);
  WorkloadResult b =
      run_fault_workload(Binding::kKernelSpace, 2, Fault::kLoss);
  EXPECT_NE(a.bed->tracer()->events(), b.bed->tracer()->events());
}

TEST(Determinism, EventsNeverPostdateTheRun) {
  // Recording is observation only: no event is stamped past the end of the
  // run, and the stream is monotone in time.
  WorkloadResult traced =
      run_fault_workload(Binding::kUserSpace, 5, Fault::kLoss);
  const auto& events = traced.bed->tracer()->events();
  ASSERT_FALSE(events.empty());
  EXPECT_LE(events.back().t, traced.bed->sim().now());
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_LE(events[i - 1].t, events[i].t);
  }
}

}  // namespace
}  // namespace trace
