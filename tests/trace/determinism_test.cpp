// Determinism regression: the simulation is a pure function of its seed, and
// the event trace is a complete enough observation to prove it — two runs
// with the same seed produce byte-identical traces even under randomized
// frame loss, and different seeds actually diverge.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>

#include "fault_workload.h"
#include "net/segment.h"
#include "trace/tracer.h"
#include "trace_digest.h"

namespace trace {
namespace {

using core::Binding;
using trace_test::Fault;
using trace_test::WorkloadResult;
using trace_test::run_fault_workload;

TEST(Determinism, SameSeedSameTrace) {
  for (const Binding binding : {Binding::kKernelSpace, Binding::kUserSpace}) {
    WorkloadResult a = run_fault_workload(binding, 99, Fault::kLoss);
    WorkloadResult b = run_fault_workload(binding, 99, Fault::kLoss);
    ASSERT_FALSE(a.bed->tracer()->events().empty());
    // Event-by-event equality: same times, nodes, kinds, and arguments.
    EXPECT_EQ(a.bed->tracer()->events(), b.bed->tracer()->events());
    EXPECT_EQ(a.bed->sim().now(), b.bed->sim().now());
  }
}

TEST(Determinism, DifferentSeedDifferentTrace) {
  // Under loss injection the seed drives which frames drop, so distinct
  // seeds must produce observably different histories.
  WorkloadResult a =
      run_fault_workload(Binding::kKernelSpace, 1, Fault::kLoss);
  WorkloadResult b =
      run_fault_workload(Binding::kKernelSpace, 2, Fault::kLoss);
  EXPECT_NE(a.bed->tracer()->events(), b.bed->tracer()->events());
}

TEST(Determinism, EventsNeverPostdateTheRun) {
  // Recording is observation only: no event is stamped past the end of the
  // run, and the stream is monotone in time.
  WorkloadResult traced =
      run_fault_workload(Binding::kUserSpace, 5, Fault::kLoss);
  const auto& events = traced.bed->tracer()->events();
  ASSERT_FALSE(events.empty());
  EXPECT_LE(events.back().t, traced.bed->sim().now());
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_LE(events[i - 1].t, events[i].t);
  }
}

TEST(Determinism, EnabledSamplerDoesNotPerturbTheTrace) {
  // The series sampler is pure observation: running the identical workload
  // with windowed telemetry enabled must leave the event trace — timestamps
  // included — byte-identical, while actually closing windows and producing
  // columns. This is the same property the fixture test below then pins
  // against committed digests.
  for (const Binding binding : {Binding::kKernelSpace, Binding::kUserSpace}) {
    WorkloadResult plain = run_fault_workload(binding, 99, Fault::kLoss);
    WorkloadResult sampled =
        run_fault_workload(binding, 99, Fault::kLoss, /*metrics=*/false,
                           /*replicated=*/false,
                           /*series_window=*/sim::usec(500));
    ASSERT_NE(sampled.bed->series(), nullptr);
    sampled.bed->series()->finish(sampled.bed->sim().now());
    EXPECT_GT(sampled.bed->series()->windows(), 0u);
    EXPECT_FALSE(sampled.bed->series()->columns().empty());
    EXPECT_EQ(plain.bed->tracer()->events(),
              sampled.bed->tracer()->events());
    EXPECT_EQ(plain.bed->sim().now(), sampled.bed->sim().now());
  }
}

TEST(Determinism, DeliveryCoalescingIsByteInvisible) {
  // Same-tick delivery coalescing (Segment::enqueue_delivery) relabels
  // engine sequence numbers but must not move, drop, or reorder a single
  // observable event. Replay full protocol workloads — fragmentation, loss
  // retransmits, group multicast — with the batcher disabled and compare the
  // complete event streams (every field, timestamps included) against the
  // default batched runs. The committed fixture digests below were generated
  // before the batcher existed, so this pins the same property a second,
  // sharper way: batched == unbatched == the pre-batching engine.
  for (const Binding binding : {Binding::kKernelSpace, Binding::kUserSpace}) {
    for (const std::uint64_t seed : {7u, 99u}) {
      ASSERT_TRUE(net::Segment::delivery_coalescing());
      WorkloadResult batched = run_fault_workload(binding, seed, Fault::kLoss);
      net::Segment::set_delivery_coalescing(false);
      WorkloadResult plain = run_fault_workload(binding, seed, Fault::kLoss);
      net::Segment::set_delivery_coalescing(true);
      ASSERT_FALSE(batched.bed->tracer()->events().empty());
      EXPECT_EQ(batched.bed->tracer()->events(),
                plain.bed->tracer()->events());
      EXPECT_EQ(batched.bed->sim().now(), plain.bed->sim().now());
    }
  }
}

TEST(Determinism, EngineRefactorFixtures) {
  // The committed fixture file pins the exact trace (length + digest over
  // every event field, timestamps included) of each (variant, fault, seed)
  // workload — the classic sequencer on both bindings plus the replicated
  // (multi-Paxos) sequencer on both. A scheduling-core change that moves any
  // observable protocol event fails here; regenerate the file with
  // tests/make_trace_fixtures only when the shift is intentional. The runs
  // here deliberately carry a live SeriesSampler the generator did not:
  // matching digests prove windowed telemetry is observation-only.
  std::ifstream in(ENGINE_TRACE_FIXTURES);
  ASSERT_TRUE(in.is_open()) << "missing " << ENGINE_TRACE_FIXTURES;
  std::map<std::tuple<int, int, std::uint64_t>,
           std::pair<std::size_t, std::string>>
      want;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    int variant = 0;
    int fault = 0;
    std::uint64_t seed = 0;
    std::size_t events = 0;
    std::string digest;
    fields >> variant >> fault >> seed >> events >> digest;
    ASSERT_FALSE(fields.fail()) << "malformed fixture line: " << line;
    want[{variant, fault, seed}] = {events, digest};
  }
  ASSERT_EQ(want.size(), 40u) << "expected 5 variants x 4 faults x 2 seeds";

  for (const auto& [key, expected] : want) {
    const auto [variant, fault, seed] = key;
    WorkloadResult r = run_fault_workload(
        static_cast<trace_test::Variant>(variant), seed,
        static_cast<Fault>(fault), /*metrics=*/false,
        /*series_window=*/sim::usec(500));
    const auto& events = r.bed->tracer()->events();
    char digest[17];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(
                      trace_test::trace_digest(events)));
    EXPECT_EQ(events.size(), expected.first)
        << "variant=" << variant << " fault=" << fault << " seed=" << seed;
    EXPECT_EQ(std::string(digest), expected.second)
        << "variant=" << variant << " fault=" << fault << " seed=" << seed;
  }
}

}  // namespace
}  // namespace trace
