// Canonical digest over a protocol event trace.
//
// The engine-refactor fixtures (fixtures/engine_traces.txt) pin the exact
// trace each (binding, fault, seed) workload produced under the event engine
// that generated them. A digest mismatch means the scheduling core changed
// observable behaviour: event times, ordering of equal-timestamp events, or
// the Rng draw sequence. `make_trace_fixtures` regenerates the file when a
// change moves traces *intentionally*.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/tracer.h"

namespace trace_test {

/// FNV-1a over every field of every event, in stream order. 64-bit: a single
/// flipped bit anywhere in the trace changes the digest.
inline std::uint64_t trace_digest(const std::vector<trace::Event>& events) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  for (const trace::Event& e : events) {
    mix(static_cast<std::uint64_t>(e.t));
    mix(e.node);
    mix(static_cast<std::uint64_t>(e.kind));
    mix(e.a);
    mix(e.b);
    mix(e.c);
    mix(e.d);
  }
  return h;
}

}  // namespace trace_test
