// Shared traced failover workload: a 5-node pool running a totally-ordered
// group load while the sequencer node crashes mid-stream (optionally under
// frame loss). Drives all four group variants — {kernel, user} binding ×
// {classic, replicated} sequencer — so the crash-failover sweeps and the
// trace fixtures exercise the same code path.
//
// With the replicated sequencer (3-replica multi-Paxos on nodes 0-2, led
// from node 0) the run survives the crash: a follower replica is elected,
// recovers the log, and every surviving send completes. With the classic
// single sequencer the same crash is fatal — senders retry forever and the
// run is truncated at the horizon; the result records how much was lost.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/testbed.h"
#include "trace/checker.h"

namespace failover_test {

/// When the sequencer (node 0) crashes, relative to the send burst.
enum class CrashPoint {
  kNone,   // fault-free baseline
  kEarly,  // during the first sends
  kMid,    // mid-burst
  kLate,   // after most sends landed
};

[[nodiscard]] inline sim::Time crash_time(CrashPoint p) {
  switch (p) {
    case CrashPoint::kEarly: return sim::msec(3);
    case CrashPoint::kMid: return sim::msec(12);
    case CrashPoint::kLate: return sim::msec(40);
    case CrashPoint::kNone: break;
  }
  return 0;
}

[[nodiscard]] inline const char* crash_point_name(CrashPoint p) {
  switch (p) {
    case CrashPoint::kEarly: return "early";
    case CrashPoint::kMid: return "mid";
    case CrashPoint::kLate: return "late";
    case CrashPoint::kNone: break;
  }
  return "none";
}

struct FailoverResult {
  // The testbed owns the tracer; keep it alive while the trace is inspected.
  std::unique_ptr<core::Testbed> bed;
  int sends_attempted = 0;
  int sends_completed = 0;
  /// Delivered (seqno) streams per node, in delivery order.
  std::vector<std::vector<std::uint32_t>> orders;
  /// check_all() over the run's trace (ledger included).
  std::vector<std::string> violations;
  /// Max views adopted by any surviving node (0 in classic mode).
  std::uint64_t view_changes = 0;
  sim::Ledger ledger;
};

/// Nodes 1-4 each send five 512-byte group messages, start times staggered
/// so the burst spans the crash window; node 0 hosts the (lead) sequencer
/// and crashes at `crash_time(crash)`. All randomness (loss draws included)
/// comes from the seeded simulator Rng, so (binding, replicated, seed,
/// crash, loss) fully determines the run.
inline FailoverResult run_failover_workload(core::Binding binding,
                                            bool replicated,
                                            std::uint64_t seed,
                                            CrashPoint crash = CrashPoint::kNone,
                                            bool loss = false) {
  constexpr std::size_t kNodes = 5;
  constexpr int kSendsPerNode = 5;
  core::TestbedConfig cfg;
  cfg.binding = binding;
  cfg.nodes = kNodes;
  cfg.sequencer = 0;
  cfg.replicated_sequencer = replicated;
  cfg.sequencer_replicas = 3;
  cfg.seed = seed;
  cfg.trace = true;
  auto bed = std::make_unique<core::Testbed>(cfg);
  core::Testbed* bp = bed.get();

  if (loss) {
    net::Segment& wire = bp->world().network().segment(0);
    sim::Rng& rng = bp->sim().rng();
    wire.set_loss_hook([&rng](const net::Frame&) { return rng.bernoulli(0.05); });
  }

  FailoverResult r;
  r.orders.resize(kNodes);
  for (core::NodeId n = 0; n < kNodes; ++n) {
    bp->panda(n).set_group_handler(
        [&r, n](amoeba::Thread&, core::NodeId, std::uint32_t seqno,
                net::Payload) -> sim::Co<void> {
          r.orders[n].push_back(seqno);
          co_return;
        });
  }
  bp->start();

  for (core::NodeId n = 1; n < kNodes; ++n) {
    amoeba::Thread& driver = bp->world().kernel(n).create_thread("driver");
    sim::spawn([](core::Testbed& b, amoeba::Thread& self, core::NodeId src,
                  FailoverResult& out) -> sim::Co<void> {
      // Stagger start and inter-send spacing so the burst straddles every
      // crash point.
      (void)co_await self.block_for(sim::msec(2) * src);
      for (int i = 0; i < kSendsPerNode; ++i) {
        ++out.sends_attempted;
        co_await b.panda(src).group_send(self, net::Payload::zeros(512));
        ++out.sends_completed;
        (void)co_await self.block_for(sim::msec(4));
      }
    }(*bp, driver, n, r));
  }

  if (crash != CrashPoint::kNone) {
    bp->sim().after(crash_time(crash), [bp] { bp->panda(0).group_crash(); });
  }

  // A crashed classic sequencer leaves senders retrying forever, so the run
  // never quiesces; bound it. Two seconds is far past the replicated
  // protocol's election + catch-up + delivery of every surviving send.
  bp->sim().run_until(sim::msec(2000));

  for (core::NodeId n = 0; n < kNodes; ++n) {
    r.view_changes = std::max(r.view_changes, bp->panda(n).group_view_changes());
  }
  r.ledger = bp->world().aggregate_ledger();
  trace::TraceChecker checker(bp->tracer()->events());
  r.violations = checker.check_all(&r.ledger);
  r.bed = std::move(bed);
  return r;
}

}  // namespace failover_test
