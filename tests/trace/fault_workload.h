// Shared traced fault-injection workload for the trace tests: a 4-node pool
// running a mixed RPC + totally-ordered-group load while the Ethernet
// misbehaves (loss, duplication, or reordering), with every protocol event
// recorded by an attached Tracer.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/testbed.h"

namespace trace_test {

enum class Fault {
  kNone,
  kLoss,         // 10% of frames dropped on the wire
  kDuplication,  // 15% of frames delivered twice
  kReorder,      // uniform 0-400 us extra delivery latency per frame
};

/// Group-protocol variants for the fixture matrix. The numeric values are
/// the first column of fixtures/engine_traces.txt; 0 and 1 predate the
/// replicated sequencer and must keep their meaning (and their fixture rows)
/// forever.
enum class Variant {
  kKernel = 0,      // classic single sequencer, kernel-space binding
  kUser = 1,        // classic single sequencer, user-space binding
  kKernelPaxos = 2, // replicated (multi-Paxos) sequencer, kernel-space
  kUserPaxos = 3,   // replicated (multi-Paxos) sequencer, user-space
  kBypass = 4,      // classic single sequencer, kernel-bypass binding
};

[[nodiscard]] inline core::Binding variant_binding(Variant v) {
  if (v == Variant::kBypass) return core::Binding::kBypass;
  return (v == Variant::kKernel || v == Variant::kKernelPaxos)
             ? core::Binding::kKernelSpace
             : core::Binding::kUserSpace;
}

[[nodiscard]] inline bool variant_replicated(Variant v) {
  return v == Variant::kKernelPaxos || v == Variant::kUserPaxos;
}

struct WorkloadResult {
  // The testbed owns the tracer; keep it alive while the trace is inspected.
  std::unique_ptr<core::Testbed> bed;
  int rpc_ok = 0;
  int rpc_total = 0;
  int group_sends = 0;
  std::vector<std::vector<std::uint32_t>> orders;  // delivered seqnos per node
  sim::Ledger ledger;
};

/// Every node calls its neighbour four times; nodes 0 and 2 each broadcast
/// three group messages. All randomness (fault draws included) comes from the
/// seeded simulator Rng, so a (binding, seed, fault) triple fully determines
/// the run.
inline WorkloadResult run_fault_workload(core::Binding binding,
                                         std::uint64_t seed, Fault fault,
                                         bool metrics = false,
                                         bool replicated = false,
                                         sim::Time series_window = 0,
                                         unsigned partitions = 1,
                                         unsigned threads = 1) {
  constexpr std::size_t kNodes = 4;
  core::TestbedConfig cfg;
  cfg.binding = binding;
  cfg.nodes = kNodes;
  cfg.sequencer = 0;
  cfg.replicated_sequencer = replicated;
  cfg.sequencer_replicas = 3;
  cfg.seed = seed;
  cfg.trace = true;
  cfg.metrics = metrics;
  cfg.series_window = series_window;
  cfg.partitions = partitions;
  cfg.threads = threads;
  auto bed = std::make_unique<core::Testbed>(cfg);
  core::Testbed* bp = bed.get();

  net::Segment& wire = bp->world().network().segment(0);
  sim::Rng& rng = bp->sim().rng();
  switch (fault) {
    case Fault::kNone:
      break;
    case Fault::kLoss:
      wire.set_loss_hook(
          [&rng](const net::Frame&) { return rng.bernoulli(0.10); });
      break;
    case Fault::kDuplication:
      wire.set_dup_hook(
          [&rng](const net::Frame&) { return rng.bernoulli(0.15); });
      break;
    case Fault::kReorder:
      wire.set_delay_hook([&rng](const net::Frame&) {
        return static_cast<sim::Time>(rng.uniform(0, sim::usec(400)));
      });
      break;
  }

  WorkloadResult r;
  r.orders.resize(kNodes);
  for (core::NodeId n = 0; n < kNodes; ++n) {
    bp->panda(n).set_rpc_handler(
        [bp, n](amoeba::Thread& upcall, panda::RpcTicket t,
                net::Payload req) -> sim::Co<void> {
          co_await bp->panda(n).rpc_reply(upcall, t, std::move(req));
        });
    bp->panda(n).set_group_handler(
        [&r, n](amoeba::Thread&, core::NodeId, std::uint32_t seqno,
                net::Payload) -> sim::Co<void> {
          r.orders[n].push_back(seqno);
          co_return;
        });
  }
  bp->start();

  for (core::NodeId n = 0; n < kNodes; ++n) {
    amoeba::Thread& driver =
        bp->world().kernel(n).create_thread("driver");
    sim::spawn([](core::Testbed& b, amoeba::Thread& self, core::NodeId src,
                  WorkloadResult& out) -> sim::Co<void> {
      const core::NodeId dst = (src + 1) % kNodes;
      for (int i = 0; i < 4; ++i) {
        ++out.rpc_total;
        panda::RpcReply reply = co_await b.panda(src).rpc(
            self, dst, net::Payload::zeros(128 * (i + 1)));
        if (reply.status == panda::RpcStatus::kOk) ++out.rpc_ok;
        if (src % 2 == 0 && i < 3) {
          ++out.group_sends;
          co_await b.panda(src).group_send(self, net::Payload::zeros(256));
        }
      }
    }(*bp, driver, n, r));
  }
  // world().run()/run_until() route through the partitioned driver; with
  // partitions == 1 they delegate to the exact single-engine path.
  if (replicated) {
    // The Paxos leader keeps renewing its lease, so the event queue never
    // drains; a fixed horizon (generous against the worst retry backoff)
    // replaces quiescence and keeps the trace a pure function of the seed.
    bp->world().run_until(sim::msec(1000));
  } else {
    bp->world().run();
  }
  r.ledger = bp->world().aggregate_ledger();
  r.bed = std::move(bed);
  return r;
}

/// Variant-code front-end for the fixture matrix (see Variant above).
inline WorkloadResult run_fault_workload(Variant variant, std::uint64_t seed,
                                         Fault fault, bool metrics = false,
                                         sim::Time series_window = 0,
                                         unsigned partitions = 1,
                                         unsigned threads = 1) {
  return run_fault_workload(variant_binding(variant), seed, fault, metrics,
                            variant_replicated(variant), series_window,
                            partitions, threads);
}

}  // namespace trace_test
