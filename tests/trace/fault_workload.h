// Shared traced fault-injection workload for the trace tests: a 4-node pool
// running a mixed RPC + totally-ordered-group load while the Ethernet
// misbehaves (loss, duplication, or reordering), with every protocol event
// recorded by an attached Tracer.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/testbed.h"

namespace trace_test {

enum class Fault {
  kNone,
  kLoss,         // 10% of frames dropped on the wire
  kDuplication,  // 15% of frames delivered twice
  kReorder,      // uniform 0-400 us extra delivery latency per frame
};

struct WorkloadResult {
  // The testbed owns the tracer; keep it alive while the trace is inspected.
  std::unique_ptr<core::Testbed> bed;
  int rpc_ok = 0;
  int rpc_total = 0;
  int group_sends = 0;
  std::vector<std::vector<std::uint32_t>> orders;  // delivered seqnos per node
  sim::Ledger ledger;
};

/// Every node calls its neighbour four times; nodes 0 and 2 each broadcast
/// three group messages. All randomness (fault draws included) comes from the
/// seeded simulator Rng, so a (binding, seed, fault) triple fully determines
/// the run.
inline WorkloadResult run_fault_workload(core::Binding binding,
                                         std::uint64_t seed, Fault fault,
                                         bool metrics = false) {
  constexpr std::size_t kNodes = 4;
  core::TestbedConfig cfg;
  cfg.binding = binding;
  cfg.nodes = kNodes;
  cfg.sequencer = 0;
  cfg.seed = seed;
  cfg.trace = true;
  cfg.metrics = metrics;
  auto bed = std::make_unique<core::Testbed>(cfg);
  core::Testbed* bp = bed.get();

  net::Segment& wire = bp->world().network().segment(0);
  sim::Rng& rng = bp->sim().rng();
  switch (fault) {
    case Fault::kNone:
      break;
    case Fault::kLoss:
      wire.set_loss_hook(
          [&rng](const net::Frame&) { return rng.bernoulli(0.10); });
      break;
    case Fault::kDuplication:
      wire.set_dup_hook(
          [&rng](const net::Frame&) { return rng.bernoulli(0.15); });
      break;
    case Fault::kReorder:
      wire.set_delay_hook([&rng](const net::Frame&) {
        return static_cast<sim::Time>(rng.uniform(0, sim::usec(400)));
      });
      break;
  }

  WorkloadResult r;
  r.orders.resize(kNodes);
  for (core::NodeId n = 0; n < kNodes; ++n) {
    bp->panda(n).set_rpc_handler(
        [bp, n](amoeba::Thread& upcall, panda::RpcTicket t,
                net::Payload req) -> sim::Co<void> {
          co_await bp->panda(n).rpc_reply(upcall, t, std::move(req));
        });
    bp->panda(n).set_group_handler(
        [&r, n](amoeba::Thread&, core::NodeId, std::uint32_t seqno,
                net::Payload) -> sim::Co<void> {
          r.orders[n].push_back(seqno);
          co_return;
        });
  }
  bp->start();

  for (core::NodeId n = 0; n < kNodes; ++n) {
    amoeba::Thread& driver =
        bp->world().kernel(n).create_thread("driver");
    sim::spawn([](core::Testbed& b, amoeba::Thread& self, core::NodeId src,
                  WorkloadResult& out) -> sim::Co<void> {
      const core::NodeId dst = (src + 1) % kNodes;
      for (int i = 0; i < 4; ++i) {
        ++out.rpc_total;
        panda::RpcReply reply = co_await b.panda(src).rpc(
            self, dst, net::Payload::zeros(128 * (i + 1)));
        if (reply.status == panda::RpcStatus::kOk) ++out.rpc_ok;
        if (src % 2 == 0 && i < 3) {
          ++out.group_sends;
          co_await b.panda(src).group_send(self, net::Payload::zeros(256));
        }
      }
    }(*bp, driver, n, r));
  }
  bp->sim().run();
  r.ledger = bp->world().aggregate_ledger();
  r.bed = std::move(bed);
  return r;
}

}  // namespace trace_test
