// Parallel-core determinism: the partitioned engine is a drop-in for the
// classic single-engine core. The committed engine-trace fixtures must replay
// byte-identical at partitions ∈ {2, 4} (the 4-node pool maps onto partition
// 0, so the windowed driver must preserve the exact (time, seq) order), and a
// genuinely multi-partition topology must produce results that are a pure
// function of (topology, partitions, seed) — never of the worker-team size.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "fault_workload.h"
#include "trace/tracer.h"
#include "trace_digest.h"

namespace trace {
namespace {

using trace_test::Fault;
using trace_test::WorkloadResult;
using trace_test::run_fault_workload;

[[nodiscard]] std::string digest_of(const std::vector<trace::Event>& events) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    trace_test::trace_digest(events)));
  return buf;
}

TEST(PartitionDeterminism, FixturesReplayByteIdenticalAtAnyPartitionCount) {
  // Same fixture file, same parse, same digests as
  // Determinism.EngineRefactorFixtures — but every workload now runs through
  // the partitioned driver with 2 and 4 engines and a matching worker team.
  // (The sampler-equivalence test already proves series_window is
  // observation-only, so comparing these sampler-less runs against the
  // committed digests is exact.)
  std::ifstream in(ENGINE_TRACE_FIXTURES);
  ASSERT_TRUE(in.is_open()) << "missing " << ENGINE_TRACE_FIXTURES;
  std::map<std::tuple<int, int, std::uint64_t>,
           std::pair<std::size_t, std::string>>
      want;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    int variant = 0;
    int fault = 0;
    std::uint64_t seed = 0;
    std::size_t events = 0;
    std::string digest;
    fields >> variant >> fault >> seed >> events >> digest;
    ASSERT_FALSE(fields.fail()) << "malformed fixture line: " << line;
    want[{variant, fault, seed}] = {events, digest};
  }
  ASSERT_EQ(want.size(), 40u) << "expected 5 variants x 4 faults x 2 seeds";

  for (const unsigned partitions : {2u, 4u}) {
    for (const auto& [key, expected] : want) {
      const auto [variant, fault, seed] = key;
      WorkloadResult r = run_fault_workload(
          static_cast<trace_test::Variant>(variant), seed,
          static_cast<Fault>(fault), /*metrics=*/false,
          /*series_window=*/0, partitions, /*threads=*/partitions);
      const std::vector<trace::Event> events = r.bed->trace_events();
      EXPECT_EQ(events.size(), expected.first)
          << "partitions=" << partitions << " variant=" << variant
          << " fault=" << fault << " seed=" << seed;
      EXPECT_EQ(digest_of(events), expected.second)
          << "partitions=" << partitions << " variant=" << variant
          << " fault=" << fault << " seed=" << seed;
    }
  }
}

// --- Multi-segment workload: segments genuinely spread across engines -------

/// Eight nodes, two per segment: four segments, so partitions ∈ {2, 4} place
/// traffic on distinct engines and every RPC to the ring neighbour two hops
/// away crosses a partition boundary. All result slots are per-node (written
/// only from that node's engine), so the workload itself is race-free under
/// any worker-team size.
struct MultiSegResult {
  std::unique_ptr<core::Testbed> bed;
  std::array<int, 8> rpc_ok{};
  std::array<int, 8> rpc_total{};
  std::vector<std::vector<std::uint32_t>> orders;  // delivered seqnos per node
};

[[nodiscard]] MultiSegResult run_multi_segment(unsigned partitions,
                                               unsigned threads,
                                               std::uint64_t seed) {
  constexpr std::size_t kNodes = 8;
  core::TestbedConfig cfg;
  cfg.binding = core::Binding::kUserSpace;
  cfg.nodes = kNodes;
  cfg.sequencer = 0;
  cfg.seed = seed;
  cfg.trace = true;
  cfg.network.nodes_per_segment = 2;
  cfg.partitions = partitions;
  cfg.threads = threads;
  auto bed = std::make_unique<core::Testbed>(cfg);
  core::Testbed* bp = bed.get();

  MultiSegResult r;
  r.orders.resize(kNodes);
  for (core::NodeId n = 0; n < kNodes; ++n) {
    bp->panda(n).set_rpc_handler(
        [bp, n](amoeba::Thread& upcall, panda::RpcTicket t,
                net::Payload req) -> sim::Co<void> {
          co_await bp->panda(n).rpc_reply(upcall, t, std::move(req));
        });
    bp->panda(n).set_group_handler(
        [&r, n](amoeba::Thread&, core::NodeId, std::uint32_t seqno,
                net::Payload) -> sim::Co<void> {
          r.orders[n].push_back(seqno);
          co_return;
        });
  }
  bp->start();

  for (core::NodeId n = 0; n < kNodes; ++n) {
    amoeba::Thread& driver = bp->world().kernel(n).create_thread("driver");
    sim::spawn([](core::Testbed& b, amoeba::Thread& self, core::NodeId src,
                  MultiSegResult& out) -> sim::Co<void> {
      const core::NodeId dst = (src + 1) % kNodes;
      for (int i = 0; i < 4; ++i) {
        ++out.rpc_total[src];
        panda::RpcReply reply = co_await b.panda(src).rpc(
            self, dst, net::Payload::zeros(96 * (i + 1)));
        if (reply.status == panda::RpcStatus::kOk) ++out.rpc_ok[src];
        if ((src == 0 || src == 4) && i < 3) {
          co_await b.panda(src).group_send(self, net::Payload::zeros(200));
        }
      }
    }(*bp, driver, n, r));
  }
  bp->world().run();
  r.bed = std::move(bed);
  return r;
}

void expect_protocol_outcomes(const MultiSegResult& r, const char* label) {
  for (std::size_t n = 0; n < 8; ++n) {
    EXPECT_EQ(r.rpc_total[n], 4) << label << " node " << n;
    EXPECT_EQ(r.rpc_ok[n], 4) << label << " node " << n;
    // Every member delivered all six group messages (three each from nodes
    // 0 and 4) in one total order.
    EXPECT_EQ(r.orders[n].size(), 6u) << label << " node " << n;
    EXPECT_EQ(r.orders[n], r.orders[0]) << label << " node " << n;
  }
}

TEST(PartitionDeterminism, MultiSegmentResultsAreThreadCountInvariant) {
  // For a fixed partition count the merged trace digest — every event field,
  // timestamps included — must not depend on how many workers execute the
  // windows. threads == 1 is the inline reference schedule; 2 and 4 race the
  // same windows across a real team.
  for (const unsigned partitions : {2u, 4u}) {
    std::string reference_digest;
    std::size_t reference_events = 0;
    for (const unsigned threads : {1u, 2u, 4u}) {
      MultiSegResult r = run_multi_segment(partitions, threads, /*seed=*/11);
      ASSERT_GT(r.bed->world().partitioned().windows(), 0u)
          << partitions << "p/" << threads << "t";
      ASSERT_GT(r.bed->world().partitioned().cross_posts(), 0u)
          << partitions << "p/" << threads << "t";
      expect_protocol_outcomes(r, "multi-segment");
      const std::vector<trace::Event> events = r.bed->trace_events();
      ASSERT_FALSE(events.empty());
      if (threads == 1) {
        reference_digest = digest_of(events);
        reference_events = events.size();
      } else {
        EXPECT_EQ(events.size(), reference_events)
            << partitions << "p/" << threads << "t";
        EXPECT_EQ(digest_of(events), reference_digest)
            << partitions << "p/" << threads << "t";
      }
    }
  }
}

TEST(PartitionDeterminism, MultiSegmentSinglePartitionBaselineAgrees) {
  // The same workload on the classic single-engine path reaches the same
  // protocol outcomes — the parallel core changes the execution schedule,
  // never what the protocols do.
  MultiSegResult r = run_multi_segment(/*partitions=*/1, /*threads=*/1, 11);
  EXPECT_EQ(r.bed->world().partitioned().windows(), 0u);
  expect_protocol_outcomes(r, "baseline");
}

}  // namespace
}  // namespace trace
