// Regression test for sequencer history-buffer wrap (classic protocol, both
// bindings): with a history far smaller than the burst, the sequencer must
// stall new sequencing, run status rounds to learn member horizons, trim,
// and drain — and no member may ever see a gap, even while frames drop.
#include <gtest/gtest.h>

#include <vector>

#include "core/testbed.h"
#include "trace/checker.h"

namespace {

using core::Binding;

class HistoryWrap : public ::testing::TestWithParam<Binding> {};

INSTANTIATE_TEST_SUITE_P(Bindings, HistoryWrap,
                         ::testing::Values(Binding::kKernelSpace,
                                           Binding::kUserSpace));

TEST_P(HistoryWrap, TinyHistoryUnderLossForcesStatusRoundsWithoutGaps) {
  constexpr std::size_t kNodes = 4;
  constexpr int kSendsPerNode = 12;
  core::TestbedConfig cfg;
  cfg.binding = GetParam();
  cfg.nodes = kNodes;
  cfg.sequencer = 0;
  cfg.group_history = 6;  // far below the 48-message burst: must wrap
  cfg.seed = 21;
  cfg.trace = true;
  core::Testbed bed(cfg);

  net::Segment& wire = bed.world().network().segment(0);
  sim::Rng& rng = bed.sim().rng();
  wire.set_loss_hook([&rng](const net::Frame&) { return rng.bernoulli(0.08); });

  std::vector<std::vector<std::uint32_t>> orders(kNodes);
  for (core::NodeId n = 0; n < kNodes; ++n) {
    bed.panda(n).set_group_handler(
        [&orders, n](amoeba::Thread&, core::NodeId, std::uint32_t seqno,
                     net::Payload) -> sim::Co<void> {
          orders[n].push_back(seqno);
          co_return;
        });
  }
  bed.start();

  int completed = 0;
  for (core::NodeId n = 0; n < kNodes; ++n) {
    amoeba::Thread& driver = bed.world().kernel(n).create_thread("driver");
    sim::spawn([](core::Testbed& b, amoeba::Thread& self, core::NodeId src,
                  int& done) -> sim::Co<void> {
      for (int i = 0; i < kSendsPerNode; ++i) {
        co_await b.panda(src).group_send(self, net::Payload::zeros(256));
        ++done;
      }
    }(bed, driver, n, completed));
  }
  bed.sim().run();

  EXPECT_EQ(completed, static_cast<int>(kNodes) * kSendsPerNode);
  EXPECT_GT(bed.panda(cfg.sequencer).group_status_rounds(), 0u)
      << "a 6-slot history under a 48-message burst must overflow";
  for (const auto& o : orders) {
    ASSERT_EQ(o.size(), kNodes * kSendsPerNode);
    for (std::size_t i = 0; i < o.size(); ++i) {
      ASSERT_EQ(o[i], i + 1) << "gap after history wrap";
    }
  }
  sim::Ledger ledger = bed.world().aggregate_ledger();
  trace::TraceChecker checker(bed.tracer()->events());
  for (const auto& v : checker.check_all(&ledger)) ADD_FAILURE() << v;
}

}  // namespace
