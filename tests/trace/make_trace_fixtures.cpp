// Regenerates tests/trace/fixtures/engine_traces.txt: one line per
// (binding, fault, seed) combination of the shared fault workload, recording
// the trace length, the final simulated time, and the trace digest.
//
//   ./build/tests/make_trace_fixtures > tests/trace/fixtures/engine_traces.txt
//
// The committed file is the behaviour contract for the event engine: a
// refactor of the scheduling core must reproduce every line byte-for-byte
// (see determinism_test.cpp, EngineRefactorFixtures). Regenerate only when a
// change is *supposed* to alter protocol timing, and say so in the PR.
#include <cinttypes>
#include <cstdio>

#include "fault_workload.h"
#include "trace_digest.h"

int main() {
  using core::Binding;
  using trace_test::Fault;

  // The final drained sim().now() is deliberately NOT recorded: tombstone
  // no-op events (cancelled timers that still fire) advance it, and removing
  // them via real cancellation is allowed to change when the queue drains.
  // The digest pins the timestamp of every *observable* protocol event.
  std::printf("# binding fault seed events digest\n");
  for (const Binding binding : {Binding::kKernelSpace, Binding::kUserSpace}) {
    for (const Fault fault : {Fault::kNone, Fault::kLoss, Fault::kDuplication,
                              Fault::kReorder}) {
      for (const std::uint64_t seed : {7ULL, 99ULL}) {
        trace_test::WorkloadResult r =
            trace_test::run_fault_workload(binding, seed, fault);
        const auto& events = r.bed->tracer()->events();
        std::printf("%d %d %" PRIu64 " %zu %016" PRIx64 "\n",
                    static_cast<int>(binding), static_cast<int>(fault), seed,
                    events.size(), trace_test::trace_digest(events));
      }
    }
  }
  return 0;
}
