// Regenerates tests/trace/fixtures/engine_traces.txt: one line per
// (variant, fault, seed) combination of the shared fault workload, recording
// the trace length, the final simulated time, and the trace digest.
//
//   ./build/tests/make_trace_fixtures > tests/trace/fixtures/engine_traces.txt
//
// The committed file is the behaviour contract for the event engine: a
// refactor of the scheduling core must reproduce every line byte-for-byte
// (see determinism_test.cpp, EngineRefactorFixtures). Regenerate only when a
// change is *supposed* to alter protocol timing, and say so in the PR.
#include <cinttypes>
#include <cstdio>

#include "fault_workload.h"
#include "trace_digest.h"

int main() {
  using trace_test::Fault;
  using trace_test::Variant;

  // The final drained sim().now() is deliberately NOT recorded: tombstone
  // no-op events (cancelled timers that still fire) advance it, and removing
  // them via real cancellation is allowed to change when the queue drains.
  // The digest pins the timestamp of every *observable* protocol event.
  std::printf("# variant fault seed events digest\n");
  for (const Variant variant :
       {Variant::kKernel, Variant::kUser, Variant::kKernelPaxos,
        Variant::kUserPaxos, Variant::kBypass}) {
    for (const Fault fault : {Fault::kNone, Fault::kLoss, Fault::kDuplication,
                              Fault::kReorder}) {
      for (const std::uint64_t seed : {7ULL, 99ULL}) {
        trace_test::WorkloadResult r =
            trace_test::run_fault_workload(variant, seed, fault);
        const auto& events = r.bed->tracer()->events();
        std::printf("%d %d %" PRIu64 " %zu %016" PRIx64 "\n",
                    static_cast<int>(variant), static_cast<int>(fault), seed,
                    events.size(), trace_test::trace_digest(events));
      }
    }
  }
  return 0;
}
