// Crash-failover proofs for the replicated (multi-Paxos) sequencer, on both
// protocol bindings. Each test drives tests/trace/failover_workload.h and
// asserts through trace::TraceChecker: gapless membership-aware total order,
// agreement on every slot's content, and no loss across the failover.
#include <gtest/gtest.h>

#include <vector>

#include "tests/trace/failover_workload.h"

namespace {

using core::Binding;
using failover_test::CrashPoint;
using failover_test::FailoverResult;
using failover_test::run_failover_workload;

class Failover : public ::testing::TestWithParam<Binding> {};

INSTANTIATE_TEST_SUITE_P(Bindings, Failover,
                         ::testing::Values(Binding::kKernelSpace,
                                           Binding::kUserSpace));

void expect_clean(const FailoverResult& r) {
  for (const auto& v : r.violations) ADD_FAILURE() << v;
}

void expect_orders_agree(const FailoverResult& r, core::NodeId skip) {
  // Every surviving member's delivered stream must be identical.
  const std::vector<std::uint32_t>* ref = nullptr;
  for (core::NodeId n = 0; n < r.orders.size(); ++n) {
    if (n == skip) continue;
    if (ref == nullptr) {
      ref = &r.orders[n];
      continue;
    }
    EXPECT_EQ(*ref, r.orders[n]) << "node " << n << " diverged";
  }
}

TEST_P(Failover, FaultFreeReplicatedRunIsCleanAndElectionFree) {
  FailoverResult r = run_failover_workload(GetParam(), /*replicated=*/true,
                                           /*seed=*/7, CrashPoint::kNone);
  EXPECT_EQ(r.sends_attempted, 20);
  EXPECT_EQ(r.sends_completed, 20);
  EXPECT_EQ(r.view_changes, 0u) << "stable leader should never be deposed";
  expect_clean(r);
  expect_orders_agree(r, /*skip=*/static_cast<core::NodeId>(-1));
}

TEST_P(Failover, SurvivesLeaderCrashMidStream) {
  FailoverResult r = run_failover_workload(GetParam(), /*replicated=*/true,
                                           /*seed=*/7, CrashPoint::kMid);
  EXPECT_EQ(r.sends_attempted, 20);
  EXPECT_EQ(r.sends_completed, 20)
      << "every surviving sender must complete after failover";
  EXPECT_GE(r.view_changes, 1u) << "the crash must force an election";
  expect_clean(r);
  expect_orders_agree(r, /*skip=*/0);
}

TEST_P(Failover, SurvivesLeaderCrashUnderFrameLoss) {
  FailoverResult r =
      run_failover_workload(GetParam(), /*replicated=*/true,
                            /*seed=*/99, CrashPoint::kEarly, /*loss=*/true);
  EXPECT_EQ(r.sends_completed, r.sends_attempted);
  EXPECT_GE(r.view_changes, 1u);
  expect_clean(r);
  expect_orders_agree(r, /*skip=*/0);
}

TEST_P(Failover, ClassicSequencerCrashLosesTheTail) {
  FailoverResult r = run_failover_workload(GetParam(), /*replicated=*/false,
                                           /*seed=*/7, CrashPoint::kMid);
  // Senders block forever once the sequencer dies, so later attempts never
  // even start: the classic protocol loses the whole tail of the burst.
  EXPECT_LT(r.sends_completed, 20)
      << "the single-sequencer protocol cannot survive its sequencer";
  EXPECT_EQ(r.view_changes, 0u);
}

TEST_P(Failover, SequencedLeaveAndRejoinKeepTheCheckerClean) {
  // A plain member leaves mid-stream and rejoins later. Both membership
  // changes ride the ordered log, so the member's delivery window closes and
  // reopens at slots every node agrees on — the membership-aware checker
  // proves it.
  constexpr std::size_t kNodes = 5;
  core::TestbedConfig cfg;
  cfg.binding = GetParam();
  cfg.nodes = kNodes;
  cfg.sequencer = 0;
  cfg.replicated_sequencer = true;
  cfg.sequencer_replicas = 3;
  cfg.seed = 11;
  cfg.trace = true;
  core::Testbed bed(cfg);

  std::vector<std::vector<std::uint32_t>> orders(kNodes);
  for (core::NodeId n = 0; n < kNodes; ++n) {
    bed.panda(n).set_group_handler(
        [&orders, n](amoeba::Thread&, core::NodeId, std::uint32_t seqno,
                     net::Payload) -> sim::Co<void> {
          orders[n].push_back(seqno);
          co_return;
        });
  }
  bed.start();

  int completed = 0;
  for (core::NodeId n = 1; n <= 3; ++n) {
    amoeba::Thread& driver = bed.world().kernel(n).create_thread("driver");
    sim::spawn([](core::Testbed& b, amoeba::Thread& self, core::NodeId src,
                  int& done) -> sim::Co<void> {
      (void)co_await self.block_for(sim::msec(2) * src);
      for (int i = 0; i < 5; ++i) {
        co_await b.panda(src).group_send(self, net::Payload::zeros(512));
        ++done;
        (void)co_await self.block_for(sim::msec(8));
      }
    }(bed, driver, n, completed));
  }
  bool rejoined = false;
  amoeba::Thread& churn = bed.world().kernel(4).create_thread("churn");
  sim::spawn([](core::Testbed& b, amoeba::Thread& self, int& done,
                bool& back) -> sim::Co<void> {
    for (int i = 0; i < 2; ++i) {
      co_await b.panda(4).group_send(self, net::Payload::zeros(512));
      ++done;
    }
    co_await b.panda(4).group_leave(self);
    (void)co_await self.block_for(sim::msec(25));
    co_await b.panda(4).group_rejoin(self);
    back = true;
    for (int i = 0; i < 2; ++i) {
      co_await b.panda(4).group_send(self, net::Payload::zeros(512));
      ++done;
    }
  }(bed, churn, completed, rejoined));

  bed.sim().run_until(sim::msec(2000));

  EXPECT_EQ(completed, 19) << "every send (3x5 + 2+2) must complete";
  EXPECT_TRUE(rejoined);
  sim::Ledger ledger = bed.world().aggregate_ledger();
  trace::TraceChecker checker(bed.tracer()->events());
  for (const auto& v : checker.check_all(&ledger)) ADD_FAILURE() << v;
  // The churning node missed the slots sequenced while it was out.
  EXPECT_LT(orders[4].size(), orders[1].size());
  // Its stream is still a gapless window view of everyone else's stream:
  // strictly increasing, and identical to the common order when restricted
  // to its windows (the checker proved gaplessness per window already).
  for (std::size_t i = 1; i < orders[4].size(); ++i) {
    EXPECT_LT(orders[4][i - 1], orders[4][i]);
  }
  EXPECT_EQ(orders[1], orders[2]);
  EXPECT_EQ(orders[1], orders[3]);
}

TEST_P(Failover, FiftySeedCrashSweepStaysClean) {
  // The headline proof: across 50 seeds and every crash point, the
  // replicated sequencer never loses a message and never breaks total order.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const CrashPoint crash = seed % 3 == 0   ? CrashPoint::kEarly
                             : seed % 3 == 1 ? CrashPoint::kMid
                                             : CrashPoint::kLate;
    FailoverResult r = run_failover_workload(GetParam(), /*replicated=*/true,
                                             seed, crash, /*loss=*/seed % 2 == 0);
    EXPECT_EQ(r.sends_completed, r.sends_attempted)
        << "seed " << seed << " crash " << failover_test::crash_point_name(crash);
    EXPECT_GE(r.view_changes, 1u) << "seed " << seed;
    for (const auto& v : r.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << v;
    }
    expect_orders_agree(r, /*skip=*/0);
  }
}

}  // namespace
