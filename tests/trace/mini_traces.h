// Hand-authored miniature traces for the causal profiler tests.
//
// Each builder returns a fully deterministic `amoeba-trace`-shaped event
// vector exercising one linking scenario: a clean linear RPC, a fragmented
// group send through the sequencer, a request retransmit after a dropped
// frame, and a reply-loss recovery through the server's cached-reply resend.
// Field encodings mirror the real instrumentation sites (tracer.h): frame
// ids embed (node << 48 | msg_id << 16 | fragment index), kCharge carries
// (mechanism, cost ns, count).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/ledger.h"
#include "sim/time.h"
#include "trace/tracer.h"

namespace trace_test {

inline constexpr std::uint64_t kClientAddr = 111;   // node 0's FLIP point
inline constexpr std::uint64_t kServerAddr = 112;   // node 1's FLIP point
inline constexpr std::uint64_t kMemberAddr = 113;   // node 2's FLIP point
inline constexpr std::uint64_t kServiceAddr = 999;  // unmappable service addr
inline constexpr std::uint64_t kGroupAddr = 888;    // multicast group addr

[[nodiscard]] inline std::uint64_t frame_id(std::uint64_t node,
                                            std::uint64_t msg,
                                            std::uint64_t frag) {
  return (node << 48) | (msg << 16) | frag;
}

[[nodiscard]] inline std::uint64_t macs(std::uint64_t src, std::uint64_t dst) {
  return ((src + 1) << 32) | (dst + 1);
}

class MiniTrace {
 public:
  MiniTrace& at(sim::Time t_us, std::uint32_t node, trace::EventKind kind,
                std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0,
                std::uint64_t d = 0) {
    ev_.push_back(trace::Event{sim::usec(t_us), node, kind, a, b, c, d});
    return *this;
  }

  MiniTrace& charge(sim::Time t_us, std::uint32_t node, sim::Mechanism m,
                    sim::Time cost_us, std::uint64_t count = 1) {
    return at(t_us, node, trace::EventKind::kCharge,
              static_cast<std::uint64_t>(m),
              static_cast<std::uint64_t>(sim::usec(cost_us)), count);
  }

  [[nodiscard]] std::vector<trace::Event> take() { return std::move(ev_); }

 private:
  std::vector<trace::Event> ev_;
};

/// One clean 8-byte RPC, client node 0 -> server node 1, no faults. Charges:
/// one context switch before the op (off-path), one syscall crossing inside
/// the client's send window (on-path), one protocol charge inside the
/// server's exec->reply window (on-path), one context switch after kRpcDone
/// (off-path).
[[nodiscard]] inline std::vector<trace::Event> linear_rpc() {
  using K = trace::EventKind;
  MiniTrace m;
  m.charge(2, 0, sim::Mechanism::kContextSwitch, 5);
  m.at(10, 0, K::kRpcSend, /*key=*/1, /*server=*/1, /*bytes=*/8);
  m.charge(20, 0, sim::Mechanism::kSyscallCrossing, 5);
  m.at(30, 0, K::kFlipSend, kServiceAddr, /*msg=*/1, 88);
  m.at(40, 0, K::kFragment, frame_id(0, 1, 0), 1, kClientAddr, 88);
  m.at(40, 0, K::kWireTx, frame_id(0, 1, 0), 120, macs(0, 1));
  m.at(60, 1, K::kInterrupt, frame_id(0, 1, 0), 120, macs(0, 1));
  m.at(70, 1, K::kFlipDeliver, kClientAddr, 1, 88);
  m.at(75, 1, K::kUpcall, 1, /*rpc=*/1);
  m.at(80, 1, K::kRpcExec, 1);
  m.charge(85, 1, sim::Mechanism::kProtocolProcessing, 3);
  m.at(90, 1, K::kRpcReply, 1);
  m.at(100, 1, K::kFlipSend, kServiceAddr - 1, 1, 80);
  m.at(110, 1, K::kFragment, frame_id(1, 1, 0), 1, kServerAddr, 80);
  m.at(110, 1, K::kWireTx, frame_id(1, 1, 0), 112, macs(1, 0));
  m.at(130, 0, K::kInterrupt, frame_id(1, 1, 0), 112, macs(1, 0));
  m.at(140, 0, K::kFlipDeliver, kServerAddr, 1, 80);
  m.at(150, 0, K::kRpcDone, 1, /*ok=*/0);
  m.charge(160, 0, sim::Mechanism::kContextSwitch, 5);
  return m.take();
}

/// One totally-ordered group send: sender node 0, sequencer node 1, third
/// member node 2. The request to the sequencer fragments into two wire
/// frames; the sequencer's ordered broadcast delivers at both other members
/// (two interrupts for one frame). The uncharged wait between the
/// sequencer's FLIP delivery and kSeqnoAssign is sequencer queueing.
[[nodiscard]] inline std::vector<trace::Event> fragmented_group_send() {
  using K = trace::EventKind;
  MiniTrace m;
  m.at(10, 0, K::kGroupSend, /*uid=*/7, 0, /*bytes=*/256);
  m.at(20, 0, K::kFlipSend, kServiceAddr, /*msg=*/1, 300);
  m.at(30, 0, K::kFragment, frame_id(0, 1, 0), 1, kClientAddr, 200);
  m.at(30, 0, K::kWireTx, frame_id(0, 1, 0), 232, macs(0, 1));
  m.at(45, 0, K::kFragment, frame_id(0, 1, 1), 1, kClientAddr, 100);
  m.at(45, 0, K::kWireTx, frame_id(0, 1, 1), 132, macs(0, 1));
  m.at(55, 1, K::kInterrupt, frame_id(0, 1, 0), 232, macs(0, 1));
  m.at(62, 1, K::kInterrupt, frame_id(0, 1, 1), 132, macs(0, 1));
  m.at(70, 1, K::kFlipDeliver, kClientAddr, 1, 300);
  m.at(80, 1, K::kSeqnoAssign, /*seqno=*/1, /*sender=*/0, /*uid=*/7, 0);
  m.at(90, 1, K::kGroupDeliver, 1, 0, 256, 0);
  m.at(100, 1, K::kFlipSend, kGroupAddr, /*msg=*/1, 300);
  m.at(110, 1, K::kFragment, frame_id(1, 1, 0), 1, kServerAddr, 300);
  m.at(110, 1, K::kWireTx, frame_id(1, 1, 0), 332, macs(1, 0));
  m.at(130, 0, K::kInterrupt, frame_id(1, 1, 0), 332, macs(1, 0));
  m.at(131, 2, K::kInterrupt, frame_id(1, 1, 0), 332, macs(1, 2));
  m.at(140, 0, K::kFlipDeliver, kServerAddr, 1, 300);
  m.at(145, 2, K::kFlipDeliver, kServerAddr, 1, 300);
  m.at(150, 0, K::kGroupDeliver, 1, 0, 256, 0);
  m.at(155, 2, K::kGroupDeliver, 1, 0, 256, 0);
  return m.take();
}

/// A request frame dropped on the wire, recovered by a client retry: the
/// first FLIP instance never delivers, the retransmit branch carries the op.
[[nodiscard]] inline std::vector<trace::Event> retransmit_branch() {
  using K = trace::EventKind;
  MiniTrace m;
  m.at(10, 0, K::kRpcSend, 1, 1, 8);
  m.at(20, 0, K::kFlipSend, kServiceAddr, /*msg=*/1, 88);
  m.at(30, 0, K::kFragment, frame_id(0, 1, 0), 1, kClientAddr, 88);
  m.at(30, 0, K::kWireTx, frame_id(0, 1, 0), 120, macs(0, 1));
  m.at(40, trace::kNoNode, K::kFrameDrop, frame_id(0, 1, 0), 120, macs(0, 1),
       (trace::kClassData << 1) | 0);
  m.at(100, 0, K::kRetransmit, 1, trace::kReasonClientRetry);
  m.at(110, 0, K::kFlipSend, kServiceAddr, /*msg=*/2, 88);
  m.at(120, 0, K::kFragment, frame_id(0, 2, 0), 2, kClientAddr, 88);
  m.at(120, 0, K::kWireTx, frame_id(0, 2, 0), 120, macs(0, 1));
  m.at(140, 1, K::kInterrupt, frame_id(0, 2, 0), 120, macs(0, 1));
  m.at(150, 1, K::kFlipDeliver, kClientAddr, 2, 88);
  m.at(160, 1, K::kRpcExec, 1);
  m.at(170, 1, K::kRpcReply, 1);
  m.at(180, 1, K::kFlipSend, kServiceAddr - 1, 1, 80);
  m.at(190, 1, K::kFragment, frame_id(1, 1, 0), 1, kServerAddr, 80);
  m.at(190, 1, K::kWireTx, frame_id(1, 1, 0), 112, macs(1, 0));
  m.at(210, 0, K::kInterrupt, frame_id(1, 1, 0), 112, macs(1, 0));
  m.at(220, 0, K::kFlipDeliver, kServerAddr, 1, 80);
  m.at(230, 0, K::kRpcDone, 1, 0);
  return m.take();
}

/// The *reply* frame dropped: the client retries after the server already
/// executed, the server answers the duplicate with a cached reply (no second
/// kRpcExec), and the op completes through the resent reply.
[[nodiscard]] inline std::vector<trace::Event> dropped_reply_recovery() {
  using K = trace::EventKind;
  MiniTrace m;
  m.at(10, 0, K::kRpcSend, 1, 1, 8);
  m.at(20, 0, K::kFlipSend, kServiceAddr, /*msg=*/1, 88);
  m.at(30, 0, K::kFragment, frame_id(0, 1, 0), 1, kClientAddr, 88);
  m.at(30, 0, K::kWireTx, frame_id(0, 1, 0), 120, macs(0, 1));
  m.at(50, 1, K::kInterrupt, frame_id(0, 1, 0), 120, macs(0, 1));
  m.at(60, 1, K::kFlipDeliver, kClientAddr, 1, 88);
  m.at(80, 1, K::kRpcExec, 1);
  m.at(90, 1, K::kRpcReply, 1);
  m.at(100, 1, K::kFlipSend, kServiceAddr - 1, /*msg=*/1, 80);
  m.at(110, 1, K::kFragment, frame_id(1, 1, 0), 1, kServerAddr, 80);
  m.at(110, 1, K::kWireTx, frame_id(1, 1, 0), 112, macs(1, 0));
  m.at(120, trace::kNoNode, K::kFrameDrop, frame_id(1, 1, 0), 112, macs(1, 0),
       (trace::kClassData << 1) | 0);
  m.at(200, 0, K::kRetransmit, 1, trace::kReasonClientRetry);
  m.at(210, 0, K::kFlipSend, kServiceAddr, /*msg=*/2, 88);
  m.at(215, 0, K::kFragment, frame_id(0, 2, 0), 2, kClientAddr, 88);
  m.at(215, 0, K::kWireTx, frame_id(0, 2, 0), 120, macs(0, 1));
  m.at(230, 1, K::kInterrupt, frame_id(0, 2, 0), 120, macs(0, 1));
  m.at(240, 1, K::kFlipDeliver, kClientAddr, 2, 88);
  m.at(250, 1, K::kRetransmit, 1, trace::kReasonCachedReply);
  m.at(260, 1, K::kFlipSend, kServiceAddr - 1, /*msg=*/2, 80);
  m.at(265, 1, K::kFragment, frame_id(1, 2, 0), 2, kServerAddr, 80);
  m.at(265, 1, K::kWireTx, frame_id(1, 2, 0), 112, macs(1, 0));
  m.at(280, 0, K::kInterrupt, frame_id(1, 2, 0), 112, macs(1, 0));
  m.at(290, 0, K::kFlipDeliver, kServerAddr, 2, 80);
  m.at(300, 0, K::kRpcDone, 1, 0);
  return m.take();
}

}  // namespace trace_test
