// Causal-DAG reconstruction on hand-authored miniature traces: every
// scenario is small enough to reason about the expected critical path by
// hand, so these tests pin the linking semantics event by event.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mini_traces.h"
#include "trace/causal.h"

namespace trace {
namespace {

using trace_test::dropped_reply_recovery;
using trace_test::fragmented_group_send;
using trace_test::linear_rpc;
using trace_test::retransmit_branch;

std::vector<EventKind> path_kinds(const std::vector<Event>& ev,
                                  const Operation& op) {
  std::vector<EventKind> kinds;
  kinds.reserve(op.critical_path.size());
  for (std::uint32_t i : op.critical_path) kinds.push_back(ev[i].kind);
  return kinds;
}

bool path_has(const Operation& op, std::uint32_t idx) {
  return std::find(op.critical_path.begin(), op.critical_path.end(), idx) !=
         op.critical_path.end();
}

std::uint32_t index_of(const std::vector<Event>& ev, EventKind k,
                       sim::Time t) {
  for (std::uint32_t i = 0; i < ev.size(); ++i) {
    if (ev[i].kind == k && ev[i].t == t) return i;
  }
  return kNoOp;
}

TEST(Causal, LinearRpcFullPath) {
  const std::vector<Event> ev = linear_rpc();
  const CausalGraph g = build_causal_graph(ev);
  ASSERT_EQ(g.ops.size(), 1u);
  const Operation& op = g.ops[0];
  EXPECT_EQ(op.kind, Operation::Kind::kRpc);
  EXPECT_EQ(op.key, 1u);
  EXPECT_TRUE(op.complete);
  EXPECT_TRUE(op.ok);
  EXPECT_EQ(op.initiator, 0u);
  EXPECT_EQ(op.responder, 1u);
  EXPECT_EQ(op.start, sim::usec(10));
  EXPECT_EQ(op.end, sim::usec(150));

  // The full request + reply journey, hop by hop.
  const std::vector<EventKind> want = {
      EventKind::kRpcSend,     EventKind::kFlipSend, EventKind::kFragment,
      EventKind::kWireTx,      EventKind::kInterrupt, EventKind::kFlipDeliver,
      EventKind::kUpcall,      EventKind::kRpcExec,  EventKind::kRpcReply,
      EventKind::kFlipSend,    EventKind::kFragment, EventKind::kWireTx,
      EventKind::kInterrupt,   EventKind::kFlipDeliver, EventKind::kRpcDone};
  EXPECT_EQ(path_kinds(ev, op), want);

  // Every non-charge event belongs to the op; charges are joined later by
  // the profiler, never claimed by the graph.
  for (std::uint32_t i = 0; i < ev.size(); ++i) {
    if (ev[i].kind == EventKind::kCharge) {
      EXPECT_EQ(g.op_of[i], kNoOp) << "event " << i;
    } else {
      EXPECT_EQ(g.op_of[i], 0u) << "event " << i;
    }
  }

  // Causal edges never point forward in time.
  for (std::uint32_t i = 0; i < ev.size(); ++i) {
    for (std::uint32_t p : g.preds[i]) {
      EXPECT_LE(ev[p].t, ev[i].t);
    }
  }
}

TEST(Causal, FragmentedGroupSendThroughSequencer) {
  const std::vector<Event> ev = fragmented_group_send();
  const CausalGraph g = build_causal_graph(ev);
  ASSERT_EQ(g.ops.size(), 1u);
  const Operation& op = g.ops[0];
  EXPECT_EQ(op.kind, Operation::Kind::kGroup);
  EXPECT_TRUE(op.complete);
  EXPECT_EQ(op.initiator, 0u);
  EXPECT_EQ(op.responder, 1u);  // the sequencer
  // The terminal is the *last* member delivery: the makespan.
  EXPECT_EQ(op.end, sim::usec(155));
  ASSERT_FALSE(op.critical_path.empty());
  EXPECT_EQ(ev[op.critical_path.front()].kind, EventKind::kGroupSend);
  EXPECT_EQ(ev[op.critical_path.back()].kind, EventKind::kGroupDeliver);
  EXPECT_EQ(ev[op.critical_path.back()].node, 2u);

  // The path runs through the seqno assignment and the ordered broadcast.
  EXPECT_TRUE(path_has(op, index_of(ev, EventKind::kSeqnoAssign,
                                        sim::usec(80))));
  // Reassembly completes with the *second* fragment, so the path carries the
  // later interrupt of the two-frame request...
  EXPECT_TRUE(path_has(op, index_of(ev, EventKind::kInterrupt,
                                        sim::usec(62))));
  EXPECT_FALSE(path_has(op, index_of(ev, EventKind::kInterrupt,
                                         sim::usec(55))));
  // ...and the broadcast reaches node 2 via its own interrupt of the shared
  // frame.
  EXPECT_TRUE(path_has(op, index_of(ev, EventKind::kInterrupt,
                                        sim::usec(131))));

  // Both request fragments are claimed by the op even though only one is on
  // the critical path, as are all three group deliveries.
  for (std::uint32_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(g.op_of[i], 0u) << "event " << i;
  }
}

TEST(Causal, RetransmitBranchCarriesTheOp) {
  const std::vector<Event> ev = retransmit_branch();
  const CausalGraph g = build_causal_graph(ev);
  ASSERT_EQ(g.ops.size(), 1u);
  const Operation& op = g.ops[0];
  EXPECT_TRUE(op.complete);
  EXPECT_TRUE(op.ok);

  // The dropped first attempt and the retransmission marker both belong to
  // the op.
  const std::uint32_t drop =
      index_of(ev, EventKind::kFrameDrop, sim::usec(40));
  const std::uint32_t retrans =
      index_of(ev, EventKind::kRetransmit, sim::usec(100));
  ASSERT_NE(drop, kNoOp);
  ASSERT_NE(retrans, kNoOp);
  EXPECT_EQ(g.op_of[drop], 0u);
  EXPECT_EQ(g.op_of[retrans], 0u);

  // The critical path tells the whole loss story: first attempt, the drop
  // that destroyed it, the retransmit it forced, and the second attempt
  // that delivered.
  EXPECT_TRUE(path_has(op, index_of(ev, EventKind::kWireTx,
                                        sim::usec(30))));
  EXPECT_TRUE(path_has(op, drop));
  EXPECT_TRUE(path_has(op, retrans));
  EXPECT_TRUE(path_has(op, index_of(ev, EventKind::kFlipSend,
                                        sim::usec(110))));
  // The retransmit is rooted at the drop, not teleported back to kRpcSend.
  ASSERT_FALSE(g.preds[retrans].empty());
  std::uint32_t root = g.preds[retrans].front();
  for (std::uint32_t p : g.preds[retrans]) {
    if (ev[p].t > ev[root].t) root = p;
  }
  EXPECT_EQ(ev[root].kind, EventKind::kFrameDrop);
}

TEST(Causal, DroppedReplyRecoversThroughCachedResend) {
  const std::vector<Event> ev = dropped_reply_recovery();
  const CausalGraph g = build_causal_graph(ev);
  ASSERT_EQ(g.ops.size(), 1u) << "the duplicate request must not mint an op";
  const Operation& op = g.ops[0];
  EXPECT_TRUE(op.complete);
  EXPECT_TRUE(op.ok);
  EXPECT_EQ(op.end, sim::usec(300));

  // Everything — the dropped reply, the client retry, the cached resend —
  // is claimed by the single op.
  for (std::uint32_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(g.op_of[i], 0u) << "event " << i;
  }

  // kRpcDone rides the cached-reply instance's delivery, and the path keeps
  // the whole loss story upstream: the first reply attempt, its drop, and
  // the server's one-and-only execution.
  EXPECT_TRUE(path_has(op, index_of(ev, EventKind::kFlipDeliver,
                                        sim::usec(290))));
  EXPECT_TRUE(path_has(op, index_of(ev, EventKind::kWireTx,
                                        sim::usec(110))));
  EXPECT_TRUE(path_has(op, index_of(ev, EventKind::kFrameDrop,
                                        sim::usec(120))));
  EXPECT_TRUE(path_has(op, index_of(ev, EventKind::kRpcExec,
                                        sim::usec(80))));
  // The server's cached-reply retransmit is rooted at the duplicate
  // request's local delivery, not teleported back to kRpcSend.
  const std::uint32_t cached =
      index_of(ev, EventKind::kRetransmit, sim::usec(250));
  ASSERT_NE(cached, kNoOp);
  ASSERT_FALSE(g.preds[cached].empty());
  const std::uint32_t root = *std::max_element(g.preds[cached].begin(),
                                               g.preds[cached].end());
  EXPECT_EQ(ev[root].kind, EventKind::kFlipDeliver);
  EXPECT_EQ(ev[root].t, sim::usec(240));
}

TEST(Causal, PureFunctionOfTheEventVector) {
  const std::vector<Event> ev = dropped_reply_recovery();
  const CausalGraph a = build_causal_graph(ev);
  const CausalGraph b = build_causal_graph(ev);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].events, b.ops[i].events);
    EXPECT_EQ(a.ops[i].critical_path, b.ops[i].critical_path);
  }
  EXPECT_EQ(a.preds, b.preds);
  EXPECT_EQ(a.op_of, b.op_of);
}

}  // namespace
}  // namespace trace
