#include "trace/tracer.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "core/testbed.h"
#include "trace/checker.h"
#include "trace/chrome_export.h"
#include "trace/dissect.h"

namespace trace {
namespace {

using amoeba::Thread;
using core::Binding;

/// Runs a small two-node ping-pong workload; returns final simulated time and
/// the aggregate ledger. When `bed_out` is given the caller keeps the testbed
/// (and with it the trace) alive.
struct RunResult {
  sim::Time end_time = 0;
  sim::Ledger ledger;
};

RunResult run_workload(bool traced, std::unique_ptr<core::Testbed>* bed_out) {
  core::TestbedConfig cfg;
  cfg.nodes = 2;
  cfg.trace = traced;
  auto bed = std::make_unique<core::Testbed>(cfg);
  core::Testbed* bp = bed.get();
  bed->panda(1).set_rpc_handler(
      [bp](Thread& upcall, panda::RpcTicket t, net::Payload p) -> sim::Co<void> {
        co_await bp->panda(1).rpc_reply(upcall, t, std::move(p));
      });
  bed->start();
  Thread& client = bed->world().kernel(0).create_thread("client");
  sim::spawn([](core::Testbed& b, Thread& self) -> sim::Co<void> {
    for (int i = 0; i < 5; ++i) {
      (void)co_await b.panda(0).rpc(self, 1, net::Payload::zeros(800));
    }
  }(*bed, client));
  bed->sim().run();
  RunResult r;
  r.end_time = bed->sim().now();
  r.ledger = bed->world().aggregate_ledger();
  if (bed_out != nullptr) *bed_out = std::move(bed);
  return r;
}

TEST(Tracer, RecordsTimestampedOrderedEvents) {
  std::unique_ptr<core::Testbed> bed;
  run_workload(/*traced=*/true, &bed);
  const auto& events = bed->tracer()->events();
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t, events[i].t) << "trace not time-ordered at " << i;
  }
  EXPECT_EQ(bed->tracer()->count(EventKind::kRpcSend), 5u);
  EXPECT_EQ(bed->tracer()->count(EventKind::kRpcDone), 5u);
  bed->tracer()->clear();
  EXPECT_TRUE(bed->tracer()->events().empty());
}

TEST(Tracer, TracingDoesNotPerturbSimulatedTimeOrLedger) {
  const RunResult off = run_workload(/*traced=*/false, nullptr);
  std::unique_ptr<core::Testbed> bed;
  const RunResult on = run_workload(/*traced=*/true, &bed);
  EXPECT_EQ(off.end_time, on.end_time);
  for (std::size_t i = 0; i < static_cast<std::size_t>(sim::Mechanism::kCount);
       ++i) {
    const auto m = static_cast<sim::Mechanism>(i);
    EXPECT_EQ(off.ledger.get(m).count, on.ledger.get(m).count)
        << sim::mechanism_name(m);
    EXPECT_EQ(off.ledger.get(m).total, on.ledger.get(m).total)
        << sim::mechanism_name(m);
  }
}

TEST(Tracer, ChargeEventsReconcileWithTheLedger) {
  std::unique_ptr<core::Testbed> bed;
  const RunResult r = run_workload(/*traced=*/true, &bed);
  TraceChecker checker(bed->tracer()->events());
  EXPECT_TRUE(checker.check_ledger(r.ledger).empty());
  EXPECT_TRUE(checker.check_all(&r.ledger).empty());
}

TEST(Tracer, UntracedSimulatorHasNullTracer) {
  sim::Simulator s;
  EXPECT_EQ(s.tracer(), nullptr);
  {
    Tracer tr(s);
    EXPECT_EQ(s.tracer(), &tr);
  }
  EXPECT_EQ(s.tracer(), nullptr);  // detached on destruction
}

// --- Chrome export ----------------------------------------------------------

/// Minimal recursive-descent JSON well-formedness check — no third-party
/// parser in the repo, and the exporter emits a small enough dialect (objects,
/// arrays, strings without escapes we don't produce, numbers) to verify here.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(ChromeExport, EmitsWellFormedJsonWithExpectedContent) {
  std::unique_ptr<core::Testbed> bed;
  run_workload(/*traced=*/true, &bed);
  const std::string json = chrome_trace_json(bed->tracer()->events());
  EXPECT_TRUE(JsonScanner(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"rpc_send\""), std::string::npos);
  EXPECT_NE(json.find("\"interrupt\""), std::string::npos);
  EXPECT_NE(json.find("charge:"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(ChromeExport, EmptyTraceIsStillValidJson) {
  const std::string json = chrome_trace_json({});
  EXPECT_TRUE(JsonScanner(json).valid()) << json;
}

// --- Frame classifier -------------------------------------------------------

TEST(Dissect, ShortOrNonDataFramesAreMeta) {
  const std::uint8_t tiny[4] = {0, 0, 0, 0};
  EXPECT_EQ(dissect_frame_class(tiny, sizeof tiny), kClassMeta);
}

}  // namespace
}  // namespace trace
