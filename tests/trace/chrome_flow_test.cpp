// Chrome exporter flow events: causal edges serialize as "s"/"t"/"f" flow
// steps along each operation's protocol chain, pinned byte-for-byte by a
// committed golden file (regenerate by deleting the file and re-running this
// test binary with CHROME_EXPORT_GOLDEN_WRITE=1 in the environment, then
// inspect the diff).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "mini_traces.h"
#include "trace/chrome_export.h"

#ifndef CHROME_EXPORT_GOLDEN
#error "CHROME_EXPORT_GOLDEN must point at the committed golden file"
#endif

namespace trace {
namespace {

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ChromeFlow, RpcFlowStepsFollowTheCausalChain) {
  const std::string json = chrome_trace_json(trace_test::linear_rpc());
  // One flow start, terminated with a binding-point "f", stepping through
  // the four protocol events of the RPC.
  EXPECT_EQ(count_of(json, "\"name\":\"rpc-flow\""), 4u);
  EXPECT_EQ(count_of(json, "\"ph\":\"s\""), 1u);
  EXPECT_EQ(count_of(json, "\"ph\":\"t\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\":\"f\""), 1u);
  EXPECT_EQ(count_of(json, "\"bp\":\"e\""), 1u);
  EXPECT_NE(json.find("\"cat\":\"causal\""), std::string::npos);
}

TEST(ChromeFlow, GroupFlowFansOutPerDelivery) {
  const std::string json =
      chrome_trace_json(trace_test::fragmented_group_send());
  EXPECT_GE(count_of(json, "\"name\":\"group-flow\""), 3u);
  EXPECT_EQ(count_of(json, "\"ph\":\"s\""), 1u);
}

TEST(ChromeFlow, GoldenFileIsByteExact) {
  const std::string json = chrome_trace_json(trace_test::linear_rpc());
  const char* path = CHROME_EXPORT_GOLDEN;
  if (std::getenv("CHROME_EXPORT_GOLDEN_WRITE") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << json;
    GTEST_SKIP() << "rewrote " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << path;
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(json, want.str())
      << "chrome exporter output drifted from the committed golden; if the "
         "change is intentional, regenerate with CHROME_EXPORT_GOLDEN_WRITE=1";
}

}  // namespace
}  // namespace trace
