// Critical-path attribution: exact bucket placement on hand-authored
// traces, and the conservation invariant + byte determinism + the paper's
// headline gap on real Testbed traces (clean and fault-injected).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/testbed.h"
#include "fault_workload.h"
#include "mini_traces.h"
#include "trace/profile.h"

namespace trace {
namespace {

using core::Binding;
using trace_test::Fault;
using trace_test::WorkloadResult;
using trace_test::run_fault_workload;

const MechanismSlice& slice(const Profile& p, sim::Mechanism m) {
  return p.mechanisms[static_cast<std::size_t>(m)];
}

TEST(Profile, LinearRpcAttributionIsExact) {
  const Profile p = profile_trace(trace_test::linear_rpc());
  EXPECT_EQ(p.ops_total, 1u);
  EXPECT_EQ(p.ops_complete, 1u);
  EXPECT_EQ(p.rpc.count, 1u);
  EXPECT_EQ(p.rpc.p50, sim::usec(140));

  std::string why;
  EXPECT_TRUE(conservation_ok(p, &why)) << why;

  // The two context switches bracket the op (before kRpcSend / after
  // kRpcDone): charged time, but off every critical-path window.
  const MechanismSlice& ctx = slice(p, sim::Mechanism::kContextSwitch);
  EXPECT_EQ(ctx.count, 2u);
  EXPECT_EQ(ctx.on_path, 0);
  EXPECT_EQ(ctx.off_path, sim::usec(10));
  // The syscall crossing sits inside the client's send window and the
  // protocol charge inside the server's exec->reply window: both on-path.
  EXPECT_EQ(slice(p, sim::Mechanism::kSyscallCrossing).on_path, sim::usec(5));
  EXPECT_EQ(slice(p, sim::Mechanism::kSyscallCrossing).off_path, 0);
  EXPECT_EQ(slice(p, sim::Mechanism::kProtocolProcessing).on_path,
            sim::usec(3));

  // Both wire hops (20 us each) are wire occupancy; the 100 us of on-node
  // path time minus the 8 us of on-path charges is CPU queueing; nothing is
  // unnameable.
  EXPECT_EQ(p.residuals.wire_occupancy, sim::usec(40));
  EXPECT_EQ(p.residuals.cpu_queue, sim::usec(92));
  EXPECT_EQ(p.residuals.medium_wait, 0);
  EXPECT_EQ(p.residuals.sequencer_queue, 0);
  EXPECT_EQ(p.residuals.unattributed, 0);

  // Every critical-path nanosecond is accounted for: on-path charges plus
  // the residual categories reconstruct the operation's latency exactly.
  EXPECT_EQ(p.on_path_total() + p.residuals.wire_occupancy +
                p.residuals.medium_wait + p.residuals.cpu_queue +
                p.residuals.sequencer_queue + p.residuals.unattributed,
            p.rpc.total);
}

TEST(Profile, GroupSendSequencerQueueResidual) {
  const Profile p = profile_trace(trace_test::fragmented_group_send());
  EXPECT_EQ(p.group.count, 1u);
  // Makespan: kGroupSend at 10 us, last member delivery at 155 us.
  EXPECT_EQ(p.group.p50, sim::usec(145));
  std::string why;
  EXPECT_TRUE(conservation_ok(p, &why)) << why;
  // The uncharged 10 us between the sequencer's FLIP delivery (70) and
  // kSeqnoAssign (80) is ordering wait, not generic CPU queueing.
  EXPECT_EQ(p.residuals.sequencer_queue, sim::usec(10));
  EXPECT_EQ(p.residuals.unattributed, 0);
}

TEST(Profile, FaultMinisConserve) {
  for (auto maker : {trace_test::retransmit_branch,
                     trace_test::dropped_reply_recovery}) {
    const Profile p = profile_trace(maker());
    EXPECT_EQ(p.ops_complete, 1u);
    std::string why;
    EXPECT_TRUE(conservation_ok(p, &why)) << why;
  }
}

TEST(Profile, ConservesAgainstTheRealRpcLedger) {
  // The trace-side Ledger (rebuilt from kCharge events) must equal the
  // in-sim aggregate exactly, and attribution must conserve against it —
  // for both bindings.
  for (const Binding b : {Binding::kKernelSpace, Binding::kUserSpace}) {
    const core::TracedRun run = core::traced_rpc_run(b, 8);
    ASSERT_FALSE(run.events.empty());
    const Profile p = profile_trace(run.events);
    std::string why;
    EXPECT_TRUE(conservation_ok(p, &why)) << why;
    for (std::size_t m = 0;
         m < static_cast<std::size_t>(sim::Mechanism::kCount); ++m) {
      const auto mech = static_cast<sim::Mechanism>(m);
      EXPECT_EQ(p.ledger.get(mech).total, run.ledger.get(mech).total)
          << sim::mechanism_name(mech);
      EXPECT_EQ(p.ledger.get(mech).count, run.ledger.get(mech).count)
          << sim::mechanism_name(mech);
    }
    EXPECT_GT(p.ops_complete, 0u);
    EXPECT_EQ(p.residuals.unattributed, 0) << "RPC linking left gaps";
  }
}

TEST(Profile, ConservesAgainstTheRealGroupLedger) {
  for (const Binding b : {Binding::kKernelSpace, Binding::kUserSpace}) {
    const core::TracedRun run = core::traced_group_run(b, 8);
    const Profile p = profile_trace(run.events);
    std::string why;
    EXPECT_TRUE(conservation_ok(p, &why)) << why;
    EXPECT_EQ(p.ledger.total_time(), run.ledger.total_time());
    EXPECT_GT(p.group.count, 0u);
  }
}

TEST(Profile, ConservesUnderFaultInjection) {
  // Loss, duplication, and reordering produce retransmit branches, dropped
  // frames, and duplicate deliveries; attribution must stay exact through
  // all of them, on both bindings.
  for (const Binding b : {Binding::kKernelSpace, Binding::kUserSpace}) {
    for (const Fault f :
         {Fault::kLoss, Fault::kDuplication, Fault::kReorder}) {
      WorkloadResult r = run_fault_workload(b, 7, f);
      const Profile p = profile_trace(r.bed->tracer()->events());
      std::string why;
      EXPECT_TRUE(conservation_ok(p, &why))
          << "fault=" << static_cast<int>(f) << ": " << why;
      EXPECT_EQ(p.ledger.total_time(), r.ledger.total_time());
      // 16 RPCs and 6 group sends are issued; every one must be
      // reconstructed as an operation even when recovery branches pile up.
      EXPECT_GE(p.ops_total, 22u);
    }
  }
}

TEST(Profile, HeadlineGapReproducedFromTracesAlone) {
  const core::TracedRun user = core::traced_rpc_run(Binding::kUserSpace, 8);
  const core::TracedRun kernel =
      core::traced_rpc_run(Binding::kKernelSpace, 8);
  const Profile pu = profile_trace(user.events);
  const Profile pk = profile_trace(kernel.events);
  std::string why;
  EXPECT_TRUE(check_headline_gap(pu, pk, &why)) << why;
}

TEST(Profile, RealTraceJsonIsByteDeterministic) {
  const core::TracedRun a = core::traced_rpc_run(Binding::kUserSpace, 8);
  const core::TracedRun b = core::traced_rpc_run(Binding::kUserSpace, 8);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(profile_json(profile_trace(a.events), "t"),
            profile_json(profile_trace(b.events), "t"));
  EXPECT_EQ(folded_stacks(profile_trace(a.events)),
            folded_stacks(profile_trace(b.events)));
}

TEST(Profile, JsonAndFoldedAreByteDeterministic) {
  const std::vector<Event> ev = trace_test::dropped_reply_recovery();
  const Profile a = profile_trace(ev);
  const Profile b = profile_trace(ev);
  EXPECT_EQ(profile_json(a, "mini"), profile_json(b, "mini"));
  EXPECT_EQ(folded_stacks(a), folded_stacks(b));
  EXPECT_NE(profile_json(a, "mini").find("\"schema\": \"amoeba-profile/v1\""),
            std::string::npos);
}

}  // namespace
}  // namespace trace
