// Calibration guard: Table 1 and Table 2 of the paper, asserted as bands.
//
// Absolute values must land within ±15% of the paper's measurements (the
// substrate is a calibrated simulation of the 50 MHz SPARC testbed), and the
// qualitative shape — who wins, where fragmentation steps are, where the BB
// method kicks in — must hold exactly.
#include <gtest/gtest.h>

#include "core/testbed.h"

namespace core {
namespace {

constexpr double kBand = 0.15;

void expect_close_ms(sim::Time measured, double paper_ms, const char* what) {
  const double ms = sim::to_ms(measured);
  EXPECT_GE(ms, paper_ms * (1.0 - kBand)) << what;
  EXPECT_LE(ms, paper_ms * (1.0 + kBand)) << what;
}

struct LatencyCase {
  std::size_t bytes;
  double paper_ms;
};

// --- Table 1: system layer ---------------------------------------------------

class UnicastLatency : public ::testing::TestWithParam<LatencyCase> {};
TEST_P(UnicastLatency, MatchesPaperBand) {
  expect_close_ms(measure_sys_unicast_latency(GetParam().bytes),
                  GetParam().paper_ms, "unicast");
}
INSTANTIATE_TEST_SUITE_P(Table1, UnicastLatency,
                         ::testing::Values(LatencyCase{0, 0.53},
                                           LatencyCase{1024, 1.50},
                                           LatencyCase{2048, 2.50},
                                           LatencyCase{3072, 3.72},
                                           LatencyCase{4096, 4.18}));

class MulticastLatency : public ::testing::TestWithParam<LatencyCase> {};
TEST_P(MulticastLatency, MatchesPaperBand) {
  expect_close_ms(measure_sys_multicast_latency(GetParam().bytes),
                  GetParam().paper_ms, "multicast");
}
INSTANTIATE_TEST_SUITE_P(Table1, MulticastLatency,
                         ::testing::Values(LatencyCase{0, 0.62},
                                           LatencyCase{1024, 1.58},
                                           LatencyCase{2048, 2.55},
                                           LatencyCase{3072, 3.74},
                                           LatencyCase{4096, 4.23}));

// --- Table 1: RPC ------------------------------------------------------------

struct RpcCase {
  std::size_t bytes;
  double paper_user_ms;
  double paper_kernel_ms;
};

class RpcLatency : public ::testing::TestWithParam<RpcCase> {};
TEST_P(RpcLatency, MatchesPaperBandAndOrdering) {
  const sim::Time user = measure_rpc_latency(Binding::kUserSpace, GetParam().bytes);
  const sim::Time kernel =
      measure_rpc_latency(Binding::kKernelSpace, GetParam().bytes);
  expect_close_ms(user, GetParam().paper_user_ms, "rpc user");
  expect_close_ms(kernel, GetParam().paper_kernel_ms, "rpc kernel");
  // The headline shape: kernel space is faster, by a sub-millisecond margin.
  EXPECT_GT(user, kernel);
  EXPECT_LT(user - kernel, sim::msecf(0.5));
}
INSTANTIATE_TEST_SUITE_P(Table1, RpcLatency,
                         ::testing::Values(RpcCase{0, 1.56, 1.27},
                                           RpcCase{1024, 2.53, 2.23},
                                           RpcCase{2048, 3.60, 3.40},
                                           RpcCase{3072, 4.77, 4.48},
                                           RpcCase{4096, 5.27, 5.06}));

// --- Table 1: group ----------------------------------------------------------

class GroupLatency : public ::testing::TestWithParam<RpcCase> {};
TEST_P(GroupLatency, MatchesPaperBandAndOrdering) {
  const sim::Time user =
      measure_group_latency(Binding::kUserSpace, GetParam().bytes);
  const sim::Time kernel =
      measure_group_latency(Binding::kKernelSpace, GetParam().bytes);
  expect_close_ms(user, GetParam().paper_user_ms, "group user");
  expect_close_ms(kernel, GetParam().paper_kernel_ms, "group kernel");
  EXPECT_GT(user, kernel);
  EXPECT_LT(user - kernel, sim::msecf(0.8));
}
INSTANTIATE_TEST_SUITE_P(Table1, GroupLatency,
                         ::testing::Values(RpcCase{0, 1.67, 1.44},
                                           RpcCase{1024, 3.59, 3.38},
                                           RpcCase{2048, 3.67, 3.44},
                                           RpcCase{3072, 4.84, 4.56},
                                           RpcCase{4096, 5.35, 5.25}));

// --- Shape properties --------------------------------------------------------

TEST(Table1Shape, ThreeAndFourKilobyteRowsAreClose) {
  // Both 3 KB and 4 KB take three packets, so their latencies are much
  // closer than 2 KB vs 3 KB (§4.1).
  const sim::Time u2 = measure_sys_unicast_latency(2048);
  const sim::Time u3 = measure_sys_unicast_latency(3072);
  const sim::Time u4 = measure_sys_unicast_latency(4096);
  EXPECT_LT(u4 - u3, u3 - u2);
}

TEST(Table1Shape, MulticastCostsTheSameAsUnicast) {
  // "The two primitives are almost equally expensive, because Ethernet
  //  provides multicast in hardware."
  const sim::Time uni = measure_sys_unicast_latency(1024);
  const sim::Time mc = measure_sys_multicast_latency(1024);
  const double ratio = static_cast<double>(mc) / static_cast<double>(uni);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.2);
}

// --- Table 2: throughput -----------------------------------------------------

TEST(Table2, RpcThroughputBandsAndOrdering) {
  const double user = measure_rpc_throughput_kbs(Binding::kUserSpace);
  const double kernel = measure_rpc_throughput_kbs(Binding::kKernelSpace);
  // Paper: 825 KB/s user, 897 KB/s kernel.
  EXPECT_NEAR(user, 825.0, 825.0 * kBand);
  EXPECT_NEAR(kernel, 897.0, 897.0 * kBand);
  EXPECT_GT(kernel, user);
}

TEST(Table2, GroupThroughputSaturatesTheEthernetForBothBindings) {
  const double user = measure_group_throughput_kbs(Binding::kUserSpace);
  const double kernel = measure_group_throughput_kbs(Binding::kKernelSpace);
  // Paper: 941 KB/s for both — the wire is the bottleneck.
  EXPECT_NEAR(user, 941.0, 941.0 * kBand);
  EXPECT_NEAR(kernel, 941.0, 941.0 * kBand);
  const double ratio = user / kernel;
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

}  // namespace
}  // namespace core
