#include "net/switch.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/frame.h"
#include "net/network.h"
#include "net/nic.h"
#include "sim/simulator.h"
#include "trace/tracer.h"

namespace net {
namespace {

Frame make_frame(MacAddr dst, std::size_t bytes, std::uint64_t id = 0) {
  Frame f;
  f.dst = dst;
  f.payload = Payload::zeros(bytes);
  f.id = id;
  return f;
}

/// A 17-node pool: nodes 0-7 on segment 0, 8-15 on segment 1, 16 on
/// segment 2 — enough topology for genuine egress contention.
struct Pool {
  sim::Simulator s;
  Network n{s};
  Pool() {
    for (int i = 0; i < 17; ++i) n.add_node();
  }
};

TEST(Switch, LocalUnicastStaysOffOtherSegments) {
  Pool p;
  int remote_got = 0;
  p.n.nic(8).set_rx_handler([&](const Frame&) { ++remote_got; });
  p.n.nic(1).set_rx_handler([](const Frame&) {});
  p.n.nic(0).send(make_frame(Network::mac_of(1), 100));
  p.s.run();
  EXPECT_EQ(p.n.backbone().frames_forwarded(), 0u);
  EXPECT_EQ(remote_got, 0);
  // The far segments never carried the frame.
  EXPECT_EQ(p.n.segment(1).frames_carried(), 0u);
  EXPECT_EQ(p.n.segment(2).frames_carried(), 0u);
}

TEST(Switch, ForwardedFrameKeepsIdentityAndPayload) {
  Pool p;
  Frame seen;
  p.n.nic(9).set_rx_handler([&](const Frame& f) { seen = f; });
  p.n.nic(0).send(make_frame(Network::mac_of(9), 321, /*id=*/0xABCDu));
  p.s.run();
  EXPECT_EQ(seen.id, 0xABCDu);
  EXPECT_EQ(seen.src, Network::mac_of(0));
  EXPECT_EQ(seen.dst, Network::mac_of(9));
  EXPECT_EQ(seen.payload.size(), 321u);
  EXPECT_EQ(p.n.backbone().frames_forwarded(), 1u);
}

TEST(Switch, BroadcastFloodsEveryOtherSegmentButNotIngress) {
  Pool p;
  p.n.nic(0).send(make_frame(kBroadcast, 64));
  p.s.run();
  // One forwarded copy per non-ingress segment.
  EXPECT_EQ(p.n.backbone().frames_forwarded(), 2u);
  EXPECT_EQ(p.n.segment(0).frames_carried(), 1u);  // the original only
  EXPECT_EQ(p.n.segment(1).frames_carried(), 1u);
  EXPECT_EQ(p.n.segment(2).frames_carried(), 1u);
}

TEST(Switch, EgressContentionSerializesFifo) {
  Pool p;
  // Two senders on *different* ingress segments target the lone node on
  // segment 2: their ingress transmissions overlap in time, so the forwarded
  // frames contend for the same egress medium.
  std::vector<std::uint64_t> order;
  std::vector<sim::Time> arrivals;
  p.n.nic(16).set_rx_handler([&](const Frame& f) {
    order.push_back(f.id);
    arrivals.push_back(p.s.now());
  });
  const std::size_t bytes = 500;
  p.n.nic(0).send(make_frame(Network::mac_of(16), bytes, /*id=*/1));
  p.n.nic(8).send(make_frame(Network::mac_of(16), bytes, /*id=*/2));
  p.s.run();
  ASSERT_EQ(order.size(), 2u);
  // The egress segment transmits one frame at a time: the second arrival is
  // exactly one wire time after the first (it queued behind it).
  const WireParams wp = p.n.config().wire;
  EXPECT_EQ(arrivals[1], arrivals[0] + wire_time(wp, bytes));
}

TEST(Switch, EgressContentionOrderIsDeterministic) {
  std::vector<std::uint64_t> first_order;
  for (int run = 0; run < 2; ++run) {
    Pool p;
    std::vector<std::uint64_t> order;
    p.n.nic(16).set_rx_handler([&](const Frame& f) { order.push_back(f.id); });
    p.n.nic(0).send(make_frame(Network::mac_of(16), 500, /*id=*/1));
    p.n.nic(8).send(make_frame(Network::mac_of(16), 500, /*id=*/2));
    p.s.run();
    ASSERT_EQ(order.size(), 2u);
    if (run == 0) {
      first_order = order;
    } else {
      EXPECT_EQ(order, first_order);
    }
  }
}

TEST(Switch, ShorterFrameWinsTheEgressRace) {
  Pool p;
  std::vector<std::uint64_t> order;
  p.n.nic(16).set_rx_handler([&](const Frame& f) { order.push_back(f.id); });
  // The 100-byte frame clears its ingress segment well before the 1400-byte
  // one, so it must reach the egress first regardless of tie-breaks.
  p.n.nic(8).send(make_frame(Network::mac_of(16), 1400, /*id=*/2));
  p.n.nic(0).send(make_frame(Network::mac_of(16), 100, /*id=*/1));
  p.s.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2}));
}

/// Records every delivery the switch routes through the seam, then performs
/// the default direct scheduling so the frame still flows.
struct RecordingPort final : DeliveryPort {
  struct Call {
    Segment* from;
    Segment* to;
    sim::Time t;
    sim::Time now;  // ingress-side clock at the moment of forwarding
    std::uint64_t id;
  };
  std::vector<Call> calls;
  DirectDeliveryPort direct;
  void deliver(Segment& from, Segment& to, sim::Time t, Frame frame,
               const Attachment* originator) override {
    calls.push_back({&from, &to, t, from.simulator().now(), frame.id});
    direct.deliver(from, to, t, std::move(frame), originator);
  }
};

TEST(Switch, UnicastForwardingGoesThroughTheDeliveryPort) {
  Pool p;
  RecordingPort port;
  p.n.backbone().set_delivery_port(port);
  int got = 0;
  p.n.nic(9).set_rx_handler([&](const Frame&) { ++got; });
  p.n.nic(0).send(make_frame(Network::mac_of(9), 200, /*id=*/5));
  p.s.run();
  ASSERT_EQ(port.calls.size(), 1u);
  EXPECT_EQ(port.calls[0].from, &p.n.segment(0));
  EXPECT_EQ(port.calls[0].to, &p.n.segment(1));
  EXPECT_EQ(port.calls[0].id, 5u);
  // The seam sees the arrival stamped exactly one store-and-forward latency
  // after the ingress-side forwarding instant — the timestamp the partitioned
  // port relies on for its conservative-safety proof.
  EXPECT_EQ(port.calls[0].t,
            port.calls[0].now + p.n.config().switch_forward_latency);
  EXPECT_GE(port.calls[0].now, wire_time(p.n.config().wire, 200));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(p.n.backbone().frames_forwarded(), port.calls.size());
}

TEST(Switch, FloodingRoutesEveryCopyThroughTheDeliveryPort) {
  Pool p;
  RecordingPort port;
  p.n.backbone().set_delivery_port(port);
  p.n.nic(0).send(make_frame(kBroadcast, 64));
  p.s.run();
  // One seam call per non-ingress segment, in port order.
  ASSERT_EQ(port.calls.size(), 2u);
  EXPECT_EQ(port.calls[0].to, &p.n.segment(1));
  EXPECT_EQ(port.calls[1].to, &p.n.segment(2));
  EXPECT_EQ(port.calls[0].from, &p.n.segment(0));
  EXPECT_EQ(port.calls[1].from, &p.n.segment(0));
}

TEST(Switch, ForwardedFrameTracesWireTxOnBothSegments) {
  Pool p;
  trace::Tracer tr(p.s);
  p.n.nic(9).set_rx_handler([](const Frame&) {});
  p.n.nic(0).send(make_frame(Network::mac_of(9), 200, /*id=*/77));
  p.s.run();
  int wire_txs = 0;
  for (const trace::Event& e : tr.events()) {
    if (e.kind == trace::EventKind::kWireTx && e.a == 77) ++wire_txs;
  }
  // Once on the ingress segment, once on the egress segment.
  EXPECT_EQ(wire_txs, 2);
  // The receiver took exactly one interrupt for it.
  int interrupts = 0;
  for (const trace::Event& e : tr.events()) {
    if (e.kind == trace::EventKind::kInterrupt && e.a == 77) {
      ++interrupts;
      EXPECT_EQ(e.node, 9u);
    }
  }
  EXPECT_EQ(interrupts, 1);
}

}  // namespace
}  // namespace net
