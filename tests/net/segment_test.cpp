#include "net/segment.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/frame.h"
#include "net/nic.h"
#include "sim/require.h"
#include "sim/simulator.h"

namespace net {
namespace {

class NetFixture : public ::testing::Test {
 protected:
  sim::Simulator s;
  WireParams wp;
};

Frame make_frame(MacAddr dst, std::size_t payload_bytes, std::uint64_t id = 0) {
  Frame f;
  f.dst = dst;
  f.payload = Payload::zeros(payload_bytes);
  f.id = id;
  return f;
}

TEST_F(NetFixture, WireTimeMatchesTenMegabit) {
  // 1024 bytes + 38 overhead at 0.8 us/byte = 849.6 us.
  EXPECT_EQ(wire_time(wp, 1024), (1024 + 38) * 800);
  // Minimum frame: 46-byte payload floor.
  EXPECT_EQ(wire_time(wp, 0), (46 + 38) * 800);
  EXPECT_EQ(wire_time(wp, 10), (46 + 38) * 800);
}

TEST_F(NetFixture, UnicastDeliveredToAddresseeOnly) {
  Segment seg(s, wp);
  Nic a(1, seg);
  Nic b(2, seg);
  Nic c(3, seg);
  int b_got = 0;
  int c_got = 0;
  b.set_rx_handler([&](const Frame&) { ++b_got; });
  c.set_rx_handler([&](const Frame&) { ++c_got; });
  a.send(make_frame(/*dst=*/2, 100));
  s.run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 0);
  EXPECT_EQ(b.rx_frames(), 1u);
  EXPECT_EQ(a.tx_frames(), 1u);
}

TEST_F(NetFixture, SenderDoesNotHearItself) {
  Segment seg(s, wp);
  Nic a(1, seg);
  Nic b(2, seg);
  int a_got = 0;
  a.set_rx_handler([&](const Frame&) { ++a_got; });
  b.set_rx_handler([](const Frame&) {});
  a.send(make_frame(kBroadcast, 10));
  s.run();
  EXPECT_EQ(a_got, 0);
}

TEST_F(NetFixture, BroadcastReachesEveryOtherStation) {
  Segment seg(s, wp);
  Nic a(1, seg);
  std::vector<std::unique_ptr<Nic>> others;
  int total = 0;
  for (MacAddr m = 2; m <= 9; ++m) {
    others.push_back(std::make_unique<Nic>(m, seg));
    others.back()->set_rx_handler([&](const Frame&) { ++total; });
  }
  a.send(make_frame(kBroadcast, 64));
  s.run();
  EXPECT_EQ(total, 8);
}

TEST_F(NetFixture, MulticastNeedsSubscription) {
  Segment seg(s, wp);
  Nic a(1, seg);
  Nic member(2, seg);
  Nic outsider(3, seg);
  const MacAddr group = multicast_group(5);
  member.join_multicast(group);
  int member_got = 0;
  int outsider_got = 0;
  member.set_rx_handler([&](const Frame&) { ++member_got; });
  outsider.set_rx_handler([&](const Frame&) { ++outsider_got; });
  a.send(make_frame(group, 64));
  s.run();
  EXPECT_EQ(member_got, 1);
  EXPECT_EQ(outsider_got, 0);
  member.leave_multicast(group);
  a.send(make_frame(group, 64));
  s.run();
  EXPECT_EQ(member_got, 1);
}

TEST_F(NetFixture, DeliveryTimeIsWireTimePlusPropagation) {
  Segment seg(s, wp);
  Nic a(1, seg);
  Nic b(2, seg);
  sim::Time arrival = -1;
  b.set_rx_handler([&](const Frame&) { arrival = s.now(); });
  a.send(make_frame(2, 1024));
  s.run();
  EXPECT_EQ(arrival, wire_time(wp, 1024) + wp.propagation);
}

TEST_F(NetFixture, MediumSerializesBackToBackFrames) {
  Segment seg(s, wp);
  Nic a(1, seg);
  Nic b(2, seg);
  std::vector<sim::Time> arrivals;
  b.set_rx_handler([&](const Frame&) { arrivals.push_back(s.now()); });
  a.send(make_frame(2, 1000));
  a.send(make_frame(2, 1000));
  a.send(make_frame(2, 1000));
  s.run();
  ASSERT_EQ(arrivals.size(), 3u);
  const sim::Time t = wire_time(wp, 1000);
  EXPECT_EQ(arrivals[0], t + wp.propagation);
  EXPECT_EQ(arrivals[1], 2 * t + wp.propagation);
  EXPECT_EQ(arrivals[2], 3 * t + wp.propagation);
}

TEST_F(NetFixture, ContendingSendersShareTheMediumFairly) {
  Segment seg(s, wp);
  Nic a(1, seg);
  Nic b(2, seg);
  Nic sink(3, seg);
  std::vector<MacAddr> order;
  sink.set_rx_handler([&](const Frame& f) { order.push_back(f.src); });
  a.send(make_frame(3, 500));
  b.send(make_frame(3, 500));
  a.send(make_frame(3, 500));
  s.run();
  EXPECT_EQ(order, (std::vector<MacAddr>{1, 2, 1}));
}

TEST_F(NetFixture, OversizedFrameIsRejected) {
  Segment seg(s, wp);
  Nic a(1, seg);
  EXPECT_THROW(a.send(make_frame(2, wp.mtu + 1)), sim::SimError);
}

TEST_F(NetFixture, WireLossDropsAfterConsumingBandwidth) {
  Segment seg(s, wp);
  Nic a(1, seg);
  Nic b(2, seg);
  int got = 0;
  b.set_rx_handler([&](const Frame&) { ++got; });
  seg.set_loss_hook([](const Frame& f) { return f.id == 1; });
  a.send(make_frame(2, 100, /*id=*/1));
  a.send(make_frame(2, 100, /*id=*/2));
  s.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(seg.frames_dropped(), 1u);
  EXPECT_EQ(seg.frames_carried(), 2u);  // the lost frame still burned wire time
}

TEST_F(NetFixture, ReceiverDropHook) {
  Segment seg(s, wp);
  Nic a(1, seg);
  Nic b(2, seg);
  int got = 0;
  b.set_rx_handler([&](const Frame&) { ++got; });
  b.set_rx_drop_hook([](const Frame&) { return true; });
  a.send(make_frame(2, 100));
  s.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(b.rx_dropped(), 1u);
}

TEST_F(NetFixture, UtilizationReflectsLoad) {
  Segment seg(s, wp);
  Nic a(1, seg);
  Nic b(2, seg);
  b.set_rx_handler([](const Frame&) {});
  // Saturate: queue 10 frames back to back.
  for (int i = 0; i < 10; ++i) a.send(make_frame(2, 1400));
  s.run();
  EXPECT_GT(seg.utilization(), 0.95);
  EXPECT_EQ(seg.bytes_carried(), 14000u);
}

}  // namespace
}  // namespace net
