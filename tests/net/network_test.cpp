#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/require.h"
#include "sim/simulator.h"

namespace net {
namespace {

Frame make_frame(MacAddr dst, std::size_t bytes) {
  Frame f;
  f.dst = dst;
  f.payload = Payload::zeros(bytes);
  return f;
}

TEST(Network, SegmentsFillEightAtATime) {
  sim::Simulator s;
  Network n(s);
  for (int i = 0; i < 32; ++i) n.add_node();
  EXPECT_EQ(n.node_count(), 32u);
  EXPECT_EQ(n.segment_count(), 4u);
  EXPECT_EQ(n.backbone().port_count(), 4u);
}

TEST(Network, SeventeenNodesNeedThreeSegments) {
  sim::Simulator s;
  Network n(s);
  for (int i = 0; i < 17; ++i) n.add_node();
  EXPECT_EQ(n.segment_count(), 3u);
}

TEST(Network, IntraSegmentUnicastDoesNotCrossTheSwitch) {
  sim::Simulator s;
  Network n(s);
  const NodeId a = n.add_node();
  const NodeId b = n.add_node();
  int got = 0;
  n.nic(b).set_rx_handler([&](const Frame&) { ++got; });
  n.nic(a).send(make_frame(Network::mac_of(b), 100));
  s.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(n.backbone().frames_forwarded(), 0u);
}

TEST(Network, InterSegmentUnicastIsForwardedOnce) {
  sim::Simulator s;
  Network n(s);
  for (int i = 0; i < 16; ++i) n.add_node();
  int got = 0;
  n.nic(9).set_rx_handler([&](const Frame&) { ++got; });
  n.nic(0).send(make_frame(Network::mac_of(9), 100));
  s.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(n.backbone().frames_forwarded(), 1u);
}

TEST(Network, InterSegmentLatencyExceedsIntraSegment) {
  sim::Simulator s;
  Network n(s);
  for (int i = 0; i < 16; ++i) n.add_node();
  sim::Time local = -1;
  sim::Time remote = -1;
  n.nic(1).set_rx_handler([&](const Frame&) { local = s.now(); });
  n.nic(9).set_rx_handler([&](const Frame&) { remote = s.now(); });
  n.nic(0).send(make_frame(Network::mac_of(1), 200));
  s.run();
  const sim::Time local_elapsed = local;
  sim::Simulator s2;  // fresh clock for the remote case
  Network n2(s2);
  for (int i = 0; i < 16; ++i) n2.add_node();
  n2.nic(9).set_rx_handler([&](const Frame&) { remote = s2.now(); });
  n2.nic(0).send(make_frame(Network::mac_of(9), 200));
  s2.run();
  EXPECT_GT(remote, local_elapsed);
}

TEST(Network, BroadcastFloodsAllSegments) {
  sim::Simulator s;
  Network n(s);
  for (int i = 0; i < 32; ++i) n.add_node();
  int total = 0;
  for (NodeId i = 1; i < 32; ++i) {
    n.nic(i).set_rx_handler([&](const Frame&) { ++total; });
  }
  n.nic(0).send(make_frame(kBroadcast, 64));
  s.run();
  EXPECT_EQ(total, 31);
  // Forwarded once per other segment.
  EXPECT_EQ(n.backbone().frames_forwarded(), 3u);
}

TEST(Network, MulticastReachesMembersAcrossSegments) {
  sim::Simulator s;
  Network n(s);
  for (int i = 0; i < 32; ++i) n.add_node();
  const MacAddr group = multicast_group(1);
  int got = 0;
  for (NodeId i : {3u, 12u, 25u}) {
    n.nic(i).join_multicast(group);
    n.nic(i).set_rx_handler([&](const Frame&) { ++got; });
  }
  n.nic(0).send(make_frame(group, 64));
  s.run();
  EXPECT_EQ(got, 3);
}

TEST(Network, NoSelfEchoAcrossSwitch) {
  sim::Simulator s;
  Network n(s);
  for (int i = 0; i < 16; ++i) n.add_node();
  int sender_got = 0;
  n.nic(0).set_rx_handler([&](const Frame&) { ++sender_got; });
  n.nic(0).send(make_frame(kBroadcast, 64));
  s.run();
  EXPECT_EQ(sender_got, 0);
}

TEST(Network, TotalBytesAggregatesSegments) {
  sim::Simulator s;
  Network n(s);
  for (int i = 0; i < 16; ++i) n.add_node();
  n.nic(9).set_rx_handler([](const Frame&) {});
  n.nic(0).send(make_frame(Network::mac_of(9), 1000));
  s.run();
  // Carried on both the ingress and egress segment.
  EXPECT_EQ(n.total_bytes_carried(), 2000u);
}

TEST(Network, UnknownNodeThrows) {
  sim::Simulator s;
  Network n(s);
  n.add_node();
  EXPECT_THROW((void)n.nic(5), sim::SimError);
}

}  // namespace
}  // namespace net
