#include "net/nic.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/frame.h"
#include "net/segment.h"
#include "sim/simulator.h"
#include "trace/tracer.h"

namespace net {
namespace {

Frame make_frame(MacAddr dst, std::size_t bytes, std::uint64_t id = 0) {
  Frame f;
  f.dst = dst;
  f.payload = Payload::zeros(bytes);
  f.id = id;
  return f;
}

class NicFixture : public ::testing::Test {
 protected:
  sim::Simulator s;
  WireParams wp;
};

TEST_F(NicFixture, SendStampsSourceAndCountsTx) {
  Segment seg(s, wp);
  Nic a(1, seg);
  Nic b(2, seg);
  Frame seen;
  b.set_rx_handler([&](const Frame& f) { seen = f; });
  a.send(make_frame(2, 100));
  s.run();
  EXPECT_EQ(seen.src, 1u);
  EXPECT_EQ(a.tx_frames(), 1u);
  EXPECT_EQ(b.rx_frames(), 1u);
}

TEST_F(NicFixture, HardwareFilterTakesNoInterruptForOthers) {
  Segment seg(s, wp);
  trace::Tracer tr(s);
  Nic a(1, seg);
  Nic b(2, seg);
  Nic c(3, seg);
  b.set_rx_handler([](const Frame&) {});
  c.set_rx_handler([](const Frame&) {});
  a.send(make_frame(2, 100));
  s.run();
  // Only the addressee interrupted; the bystander's counters are untouched.
  EXPECT_EQ(b.rx_frames(), 1u);
  EXPECT_EQ(c.rx_frames(), 0u);
  EXPECT_EQ(tr.count(trace::EventKind::kInterrupt), 1u);
  EXPECT_EQ(tr.events().back().node, 1u);  // node = mac - 1
}

TEST_F(NicFixture, MulticastMembershipGatesTheInterrupt) {
  Segment seg(s, wp);
  trace::Tracer tr(s);
  Nic a(1, seg);
  Nic m(2, seg);
  const MacAddr group = multicast_group(7);
  m.set_rx_handler([](const Frame&) {});
  a.send(make_frame(group, 64));
  s.run();
  EXPECT_EQ(tr.count(trace::EventKind::kInterrupt), 0u);
  m.join_multicast(group);
  EXPECT_TRUE(m.member_of(group));
  a.send(make_frame(group, 64));
  s.run();
  EXPECT_EQ(tr.count(trace::EventKind::kInterrupt), 1u);
  m.leave_multicast(group);
  a.send(make_frame(group, 64));
  s.run();
  EXPECT_EQ(tr.count(trace::EventKind::kInterrupt), 1u);
}

TEST_F(NicFixture, InterruptEventCarriesFrameIdentity) {
  Segment seg(s, wp);
  trace::Tracer tr(s);
  Nic a(1, seg);
  Nic b(2, seg);
  b.set_rx_handler([](const Frame&) {});
  a.send(make_frame(2, 300, /*id=*/0x42));
  s.run();
  ASSERT_EQ(tr.count(trace::EventKind::kInterrupt), 1u);
  const trace::Event& e = tr.events().back();
  EXPECT_EQ(e.a, 0x42u);
  EXPECT_EQ(e.b, 300u);
  EXPECT_EQ(e.c, (std::uint64_t{1} << 32) | 2u);
}

TEST_F(NicFixture, ReceiverDropTracesFrameDropAtTheNic) {
  Segment seg(s, wp);
  trace::Tracer tr(s);
  Nic a(1, seg);
  Nic b(2, seg);
  int got = 0;
  b.set_rx_handler([&](const Frame&) { ++got; });
  b.set_rx_drop_hook([](const Frame&) { return true; });
  a.send(make_frame(2, 100, /*id=*/5));
  s.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(b.rx_dropped(), 1u);
  EXPECT_EQ(b.rx_frames(), 0u);
  ASSERT_EQ(tr.count(trace::EventKind::kFrameDrop), 1u);
  const trace::Event& e = tr.events().back();
  EXPECT_EQ(e.node, 1u);       // the receiver's node, not the wire
  EXPECT_EQ(e.d & 1, 1u);      // drop site = nic
}

TEST_F(NicFixture, WireDropTracesFrameDropOnTheWire) {
  Segment seg(s, wp);
  trace::Tracer tr(s);
  Nic a(1, seg);
  Nic b(2, seg);
  b.set_rx_handler([](const Frame&) {});
  seg.set_loss_hook([](const Frame&) { return true; });
  a.send(make_frame(2, 100));
  s.run();
  ASSERT_EQ(tr.count(trace::EventKind::kFrameDrop), 1u);
  const trace::Event& e = tr.events().back();
  EXPECT_EQ(e.node, trace::kNoNode);
  EXPECT_EQ(e.d & 1, 0u);      // drop site = wire
  EXPECT_EQ(tr.count(trace::EventKind::kInterrupt), 0u);
}

TEST_F(NicFixture, DuplicationHookDeliversTwiceForOneTransmission) {
  Segment seg(s, wp);
  Nic a(1, seg);
  Nic b(2, seg);
  int got = 0;
  b.set_rx_handler([&](const Frame&) { ++got; });
  seg.set_dup_hook([](const Frame&) { return true; });
  a.send(make_frame(2, 100));
  s.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(b.rx_frames(), 2u);
  EXPECT_EQ(seg.frames_carried(), 1u);  // the medium was occupied once
}

TEST_F(NicFixture, DelayHookReordersAgainstLaterFrames) {
  Segment seg(s, wp);
  Nic a(1, seg);
  Nic b(2, seg);
  std::vector<std::uint64_t> order;
  b.set_rx_handler([&](const Frame& f) { order.push_back(f.id); });
  // Hold the first frame long enough that the second overtakes it.
  seg.set_delay_hook([this](const Frame& f) {
    return f.id == 1 ? 4 * wire_time(wp, 100) : sim::Time{0};
  });
  a.send(make_frame(2, 100, /*id=*/1));
  a.send(make_frame(2, 100, /*id=*/2));
  s.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 1}));
}

}  // namespace
}  // namespace net
